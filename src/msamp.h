// Umbrella header: the complete public API of the millisampler-repro
// library.  Include this (or the individual subsystem headers) from
// downstream code:
//
//   * sim/        — discrete-event engine and time units;
//   * net/        — packets, links, NIC (GRO), shared-buffer ToR (DT+ECN),
//                   rack topology;
//   * transport/  — DCTCP / Cubic TCP over the simulated network;
//   * core/       — Millisampler: tc filter, flow sketch, sampler daemon,
//                   SyncMillisampler, run records + compression;
//   * workload/   — task taxonomy, burst processes, placement, diurnal
//                   profiles, validation tools;
//   * fleet/      — fleet-scale fluid simulation, dataset, aggregations;
//   * analysis/   — burst detection, contention, loss association,
//                   rack classification;
//   * util/       — RNG, statistics, tables, ASCII plots.
#pragma once

#include "analysis/burst_detect.h"
#include "analysis/burst_stats.h"
#include "analysis/contention.h"
#include "analysis/diagnose.h"
#include "analysis/loss_assoc.h"
#include "analysis/rack_classify.h"
#include "analysis/trace_io.h"
#include "core/clock_model.h"
#include "core/counters.h"
#include "core/encoding.h"
#include "core/flow_sketch.h"
#include "core/interpolate.h"
#include "core/pcap_baseline.h"
#include "core/run_record.h"
#include "core/run_store.h"
#include "core/sampler.h"
#include "core/sync_controller.h"
#include "core/tc_filter.h"
#include "fleet/aggregate.h"
#include "fleet/config.h"
#include "fleet/dataset.h"
#include "fleet/fleet_runner.h"
#include "fleet/fluid_rack.h"
#include "fleet/merge.h"
#include "fleet/shard.h"
#include "net/host.h"
#include "net/link.h"
#include "net/nic.h"
#include "net/packet.h"
#include "net/shared_buffer.h"
#include "net/switch.h"
#include "net/switch_probe.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "transport/cc.h"
#include "transport/cubic.h"
#include "transport/dctcp.h"
#include "transport/swift.h"
#include "transport/tcp_connection.h"
#include "transport/transport_host.h"
#include "util/ascii_plot.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/burst_generator_tool.h"
#include "workload/burst_process.h"
#include "workload/diurnal.h"
#include "workload/incast.h"
#include "workload/multicast_tool.h"
#include "workload/packet_rack_driver.h"
#include "workload/placement.h"
#include "workload/region_id.h"
#include "workload/task.h"

#include "workload/incast.h"

namespace msamp::workload {

IncastDriver::IncastDriver(sim::Simulator& simulator,
                           std::vector<transport::TransportHost*> senders,
                           transport::TransportHost& receiver,
                           net::FlowId first_flow, const IncastConfig& config)
    : config_(config) {
  connections_.reserve(senders.size());
  round_target_.assign(senders.size(), 0);
  for (std::size_t i = 0; i < senders.size(); ++i) {
    auto conn = std::make_unique<transport::TcpConnection>(
        simulator, first_flow + i, *senders[i], receiver, config_.tcp);
    const std::size_t idx = i;
    conn->set_on_delivered([this, idx](std::int64_t delivered) {
      if (done_ && delivered >= round_target_[idx]) {
        round_target_[idx] = INT64_MAX;  // count each connection once
        if (--outstanding_ == 0) {
          auto cb = std::move(done_);
          done_ = nullptr;
          cb();
        }
      }
    });
    connections_.push_back(std::move(conn));
  }
}

void IncastDriver::trigger(std::function<void()> done) {
  done_ = std::move(done);
  outstanding_ = connections_.size();
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    round_target_[i] =
        connections_[i]->stats().delivered_bytes + config_.bytes_per_sender;
    connections_[i]->send_app_data(config_.bytes_per_sender);
  }
}

std::int64_t IncastDriver::total_delivered() const {
  std::int64_t total = 0;
  for (const auto& c : connections_) total += c->stats().delivered_bytes;
  return total;
}

std::int64_t IncastDriver::total_retx_bytes() const {
  std::int64_t total = 0;
  for (const auto& c : connections_) total += c->stats().retx_bytes;
  return total;
}

std::uint64_t IncastDriver::total_timeouts() const {
  std::uint64_t total = 0;
  for (const auto& c : connections_) total += c->stats().timeouts;
  return total;
}

}  // namespace msamp::workload

// Per-server millisecond-granularity traffic generator with closed-loop
// feedback, used by the fleet-scale fluid simulator.
//
// Each server alternates between background traffic and bursts (arrivals ~
// Poisson, lengths ~ lognormal, offered intensity ~ uniform, all from the
// task's TrafficProfile).  An aggregate "rate factor" stands in for the
// combined DCTCP behavior of the server's senders:
//
//   * ECN marks scale the factor down proportionally to the marked
//     fraction, weighted by the task's adaptivity (the §8.2 mechanism that
//     lets long bursts adapt while mid-length ones overflow first);
//   * drops halve the factor and schedule the dropped bytes for
//     re-arrival a few milliseconds later as retransmissions (which is
//     what Millisampler's in_retx counter observes, §4.6);
//   * heavy incast imposes a demand floor — with many senders, even one
//     congestion window each exceeds the queue's drain rate (§3, §8.2).
#pragma once

#include <cstdint>
#include <deque>

#include "core/flow_sketch.h"
#include "util/rng.h"
#include "workload/task.h"

namespace msamp::workload {

/// Environment parameters for a burst process.
struct BurstProcessConfig {
  double line_rate_gbps = 12.5;
  double rtt_ms = 0.1;          ///< in-rack RTT, for the incast floor
  std::int64_t mss = 1460;
  double diurnal = 1.0;         ///< hour-of-day multiplier
  double intensity = 1.0;       ///< rack load scalar (scales burst rate)
};

/// Demand produced for one 1ms step.
struct StepDemand {
  std::int64_t bytes = 0;       ///< offered toward the ToR queue
  std::int64_t retx_bytes = 0;  ///< portion of `bytes` that is retransmitted data
  double conns = 0.0;           ///< ground-truth active connection count
  std::uint64_t sketch[2] = {0, 0};  ///< flow sketch of the active set
  bool in_burst = false;        ///< ground truth (analysis uses measured util)
  /// How smoothly the senders pace packets (the task's adaptivity):
  /// adapted DCTCP senders spread packets across the RTT and rarely
  /// collide in the buffer, oblivious incast clumps do.
  double smoothness = 0.5;
};

/// The generator.  One instance per server per observation window.
class BurstProcess {
 public:
  /// `flow_base` makes connection ids unique across servers.
  BurstProcess(const TrafficProfile& profile, const BurstProcessConfig& config,
               std::uint64_t flow_base, util::Rng rng);

  /// Starts an observation window: draws whether the server is in its
  /// active regime, resets transient state (but not the persistent rate
  /// factor of adaptive tasks).
  void begin_run();

  /// Advances one millisecond and returns the offered demand.
  StepDemand step();

  /// Feedback from the fluid switch for the previous step: fraction of the
  /// server's delivered bytes that were CE-marked, and bytes dropped at
  /// the ToR queue.  Applied with one step of delay (~ several RTTs).
  void on_feedback(double marked_fraction, std::int64_t dropped_bytes);

  /// Current aggregate rate factor (tests / diagnostics).
  double rate_factor() const noexcept { return rate_factor_; }
  bool in_burst() const noexcept { return burst_remaining_ms_ > 0; }
  bool active_regime() const noexcept { return active_regime_; }

 private:
  void rebuild_flow_set(double mean_conns);
  void maybe_start_burst();
  std::int64_t line_bytes_per_ms() const;

  TrafficProfile profile_;
  BurstProcessConfig config_;
  std::uint64_t flow_base_;
  util::Rng rng_;

  bool active_regime_ = true;
  double run_rate_mult_ = 1.0;  ///< per-window burst-rate multiplier
  int burst_remaining_ms_ = 0;
  double burst_intensity_ = 0.0;  ///< fraction of line rate this burst
  double rate_factor_ = 1.0;
  double pending_marked_ = 0.0;
  std::int64_t pending_dropped_ = 0;

  int conns_current_ = 0;
  core::FlowSketch flow_sketch_;
  std::uint64_t next_flow_salt_ = 0;

  int step_index_ = 0;
  /// Retransmissions awaiting re-arrival: (due step, bytes).
  std::deque<std::pair<int, std::int64_t>> retx_pipeline_;
};

}  // namespace msamp::workload

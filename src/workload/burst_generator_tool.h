// The burst-generator validation tool of §4.5: a client periodically asks a
// server (in another rack / behind the fabric) to transmit a burst of a
// fixed volume over TCP.  Requests fire on the *client's local clock*, so
// five clients in one rack produce near-simultaneous 1.8MB (~3ms) bursts —
// the ground truth for validating contention detection (Figure 4).
#pragma once

#include <cstdint>
#include <memory>

#include "sim/simulator.h"
#include "transport/tcp_connection.h"
#include "transport/transport_host.h"

namespace msamp::workload {

/// Tool parameters (paper values: 1.8MB bursts, ~3ms at 12.5Gb/s... the
/// request period is chosen by the experimenter).
struct BurstGeneratorConfig {
  std::int64_t burst_volume = 1800 * 1000;  // 1.8 MBytes, as in §4.5
  sim::SimDuration period = 200 * sim::kMillisecond;
  transport::TcpConfig tcp;
};

/// One client-server burst generator pair.
class BurstGeneratorTool {
 public:
  /// `client` receives the bursts; `server` sends them on request.
  /// `data_flow` / `request_flow` must be unique across the simulation.
  /// `client_clock_offset` shifts the request schedule onto the client's
  /// local clock, as in the paper's tool.
  BurstGeneratorTool(sim::Simulator& simulator,
                     transport::TransportHost& client,
                     transport::TransportHost& server,
                     net::FlowId data_flow, net::FlowId request_flow,
                     const BurstGeneratorConfig& config,
                     sim::SimDuration client_clock_offset);

  /// Issues requests every `period` (client clock) until `until`.
  void start(sim::SimTime until);

  std::uint64_t bursts_requested() const noexcept { return requested_; }
  std::int64_t bytes_delivered() const {
    return connection_->stats().delivered_bytes;
  }
  const transport::TcpConnection& connection() const { return *connection_; }

 private:
  void send_request();

  sim::Simulator& simulator_;
  transport::TransportHost& client_;
  transport::TransportHost& server_;
  net::FlowId request_flow_;
  BurstGeneratorConfig config_;
  sim::SimDuration clock_offset_;
  sim::SimTime until_ = 0;
  std::uint64_t requested_ = 0;
  std::unique_ptr<transport::TcpConnection> connection_;
};

}  // namespace msamp::workload

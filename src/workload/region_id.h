// Region identifiers for the two measured regions.
#pragma once

#include <cstdint>
#include <string_view>

namespace msamp::workload {

/// The two data-center regions of the study (§5).
enum class RegionId : std::uint8_t { kRegA = 0, kRegB = 1 };

inline constexpr std::string_view region_name(RegionId r) {
  return r == RegionId::kRegA ? "RegA" : "RegB";
}

}  // namespace msamp::workload

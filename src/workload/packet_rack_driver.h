// Packet-level rack workload driver: the same task-profile workloads the
// fluid simulator integrates per millisecond, realized as actual TCP
// connections over the packet simulator.  Every server gets a pool of
// long-lived DCTCP connections from remote hosts; bursts are fan-in
// request waves (conns_inside connections each carrying a share of the
// burst volume), background is a trickle on the standing pool.
//
// Used by the fluid-vs-packet cross-check (bench_crosscheck_fluid_vs_packet)
// to show the fleet-scale model's statistics are consistent with real
// transport dynamics, and available as an honest (if slower) rack workload
// for experiments that need packet-level fidelity.
#pragma once

#include <memory>
#include <vector>

#include "net/topology.h"
#include "transport/tcp_connection.h"
#include "transport/transport_host.h"
#include "util/rng.h"
#include "workload/task.h"

namespace msamp::workload {

/// Driver parameters.
struct PacketRackDriverConfig {
  /// Tasks per server (size must equal the rack's server count).
  std::vector<TaskKind> server_tasks;
  /// Rack load scalar, like RackMeta::intensity.
  double intensity = 1.0;
  /// Hour-of-day multiplier.
  double diurnal = 1.0;
  /// Remote hosts available as senders (cycled across connections).
  int senders_per_server = 8;
  transport::TcpConfig tcp;
};

/// The driver.  Construct after the rack; call start() to begin generating
/// and let the simulator run.
class PacketRackDriver {
 public:
  PacketRackDriver(sim::Simulator& simulator, net::Rack& rack,
                   const PacketRackDriverConfig& config, util::Rng rng);
  ~PacketRackDriver();

  PacketRackDriver(const PacketRackDriver&) = delete;
  PacketRackDriver& operator=(const PacketRackDriver&) = delete;

  /// Starts background and burst generation until `until` (absolute time).
  void start(sim::SimTime until);

  /// Total bytes delivered to all servers so far.
  std::int64_t total_delivered() const;

  /// Total retransmitted bytes across all connections.
  std::int64_t total_retx_bytes() const;

  /// Number of burst waves issued.
  std::uint64_t bursts_issued() const noexcept { return bursts_; }

 private:
  struct ServerState {
    TaskKind task;
    bool active_regime = true;
    double rate_mult = 1.0;
    transport::TransportHost* host = nullptr;
    /// Standing connection pool (background + burst carriers).
    std::vector<std::unique_ptr<transport::TcpConnection>> pool;
  };

  void schedule_next_burst(int server);
  void issue_burst(int server);
  void schedule_background(int server);

  sim::Simulator& simulator_;
  net::Rack& rack_;
  PacketRackDriverConfig config_;
  util::Rng rng_;
  sim::SimTime until_ = 0;
  std::uint64_t bursts_ = 0;
  net::FlowId next_flow_ = 50000;

  std::vector<std::unique_ptr<transport::TransportHost>> server_hosts_;
  std::vector<std::unique_ptr<transport::TransportHost>> remote_hosts_;
  std::vector<ServerState> servers_;
};

}  // namespace msamp::workload

// Service placement (§7.1): which task (service instance) runs on each
// server of each rack.  The generator reproduces the placement patterns the
// paper measures:
//
//   * RegA: ~80% "typical" racks with a diverse service mix (median 14
//     distinct tasks; the dominant task holds ~25% of servers) and ~20%
//     ML-dense racks where ONE machine-learning service occupies 60-100%
//     of the servers (median 8 distinct tasks) — the cause of the bimodal
//     contention distribution;
//   * RegB: uniformly diverse racks (median 15 distinct tasks, moderate
//     dominant share) with a per-rack ML lean that spreads contention
//     fairly evenly.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "workload/region_id.h"
#include "workload/task.h"

namespace msamp::workload {

/// One service instance (a "task" in the paper's terminology).
struct Service {
  int id = 0;
  TaskKind kind = TaskKind::kQuiet;
};

/// Placement + load metadata for one rack.
struct RackMeta {
  int rack_id = 0;                  ///< global rack index
  RegionId region = RegionId::kRegA;
  bool ml_dense = false;            ///< ground-truth RegA-High style rack
  std::vector<int> server_service;  ///< service id per server
  std::vector<TaskKind> server_kind;///< task kind per server
  double intensity = 1.0;           ///< per-rack load scalar

  /// Number of distinct services on the rack (Figure 10's metric).
  int distinct_tasks() const;
  /// Fraction of servers running the most common service (Figure 11).
  double dominant_share() const;
};

/// Region-level placement knobs; defaults reproduce the paper's patterns.
struct PlacementConfig {
  RegionId region = RegionId::kRegA;
  int num_racks = 96;
  int servers_per_rack = 92;

  /// Size and composition of the region's service pool.  Weights index
  /// TaskKind order: {ml, web, cache, storage, batch, quiet}.
  int pool_services = 160;
  double pool_weights[kNumTaskKinds] = {0.04, 0.28, 0.24, 0.2, 0.14, 0.10};

  /// Fraction of racks that are ML-dense (RegA-style co-location).
  double ml_dense_fraction = 0.20;
  /// ML-dense dominant share range (fraction of servers on the ML task).
  double ml_share_lo = 0.60, ml_share_hi = 1.0;

  /// Distinct services per typical rack ~ clamped Normal(mean, sd).
  double distinct_mean = 14.0, distinct_sd = 4.0;
  int distinct_min = 5, distinct_max = 32;

  /// Per-rack intensity scalar ~ lognormal(mu, sigma).
  double intensity_mu = 0.25, intensity_sigma = 0.45;

  /// RegB-style spread: each (non-ML-dense) rack gets an ML server share
  /// drawn uniformly in [0, ml_lean_max].
  double ml_lean_max = 0.0;
};

/// Paper-shaped defaults for each region.
PlacementConfig default_placement(RegionId region, int num_racks,
                                  int servers_per_rack);

/// Generates all racks of a region.  `first_rack_id` offsets global ids.
std::vector<RackMeta> generate_racks(const PlacementConfig& config,
                                     int first_rack_id, util::Rng& rng);

}  // namespace msamp::workload

#include "workload/packet_rack_driver.h"

#include <algorithm>
#include <cmath>

namespace msamp::workload {

PacketRackDriver::PacketRackDriver(sim::Simulator& simulator, net::Rack& rack,
                                   const PacketRackDriverConfig& config,
                                   util::Rng rng)
    : simulator_(simulator), rack_(rack), config_(config), rng_(rng) {
  const int servers = rack.num_servers();
  for (int s = 0; s < servers; ++s) {
    server_hosts_.push_back(
        std::make_unique<transport::TransportHost>(rack.server(s)));
  }
  for (int r = 0; r < rack.num_remotes(); ++r) {
    remote_hosts_.push_back(
        std::make_unique<transport::TransportHost>(rack.remote(r)));
  }

  servers_.resize(static_cast<std::size_t>(servers));
  for (int s = 0; s < servers; ++s) {
    ServerState& state = servers_[static_cast<std::size_t>(s)];
    state.task = s < static_cast<int>(config_.server_tasks.size())
                     ? config_.server_tasks[static_cast<std::size_t>(s)]
                     : TaskKind::kQuiet;
    const TrafficProfile& profile = profile_for(state.task);
    state.active_regime = rng_.bernoulli(profile.active_run_prob);
    state.rate_mult = rng_.lognormal(-0.55, 0.95);
    state.host = server_hosts_[static_cast<std::size_t>(s)].get();
    // Standing pool sized for the burst fan-in; remote senders cycled.
    const int pool_size = std::max(
        1, std::min(static_cast<int>(profile.conns_inside),
                    config_.senders_per_server * rack_.num_remotes()));
    for (int c = 0; c < pool_size; ++c) {
      auto& sender = *remote_hosts_[static_cast<std::size_t>(
          (s * 13 + c) % rack_.num_remotes())];
      state.pool.push_back(std::make_unique<transport::TcpConnection>(
          simulator_, next_flow_++, sender, *state.host, config_.tcp));
    }
  }
}

PacketRackDriver::~PacketRackDriver() = default;

void PacketRackDriver::start(sim::SimTime until) {
  until_ = until;
  for (int s = 0; s < rack_.num_servers(); ++s) {
    schedule_next_burst(s);
    schedule_background(s);
  }
}

void PacketRackDriver::schedule_next_burst(int server) {
  ServerState& state = servers_[static_cast<std::size_t>(server)];
  const TrafficProfile& profile = profile_for(state.task);
  double rate_hz = profile.burst_rate_hz * config_.diurnal *
                   config_.intensity * state.rate_mult;
  if (!state.active_regime) rate_hz *= 0.02;
  rate_hz = std::max(rate_hz, 1e-3);
  const auto gap = static_cast<sim::SimDuration>(
      rng_.exponential(rate_hz) * static_cast<double>(sim::kSecond));
  simulator_.schedule_in(gap, [this, server] {
    if (simulator_.now() >= until_) return;
    issue_burst(server);
    schedule_next_burst(server);
  });
}

void PacketRackDriver::issue_burst(int server) {
  ServerState& state = servers_[static_cast<std::size_t>(server)];
  const TrafficProfile& profile = profile_for(state.task);
  ++bursts_;
  // Burst volume = intensity x length at line rate, split across the
  // fan-in; TCP dynamics then decide the actual delivery shape.
  const double len_ms =
      rng_.lognormal(profile.burst_len_mu, profile.burst_len_sigma);
  const double u = rng_.uniform();
  const double burst_intensity =
      profile.intensity_lo +
      (profile.intensity_hi - profile.intensity_lo) * u * u * u * u;
  const double line_bytes_per_ms = 12.5e9 / 8.0 / 1000.0;
  const auto volume = static_cast<std::int64_t>(
      std::max(1.0, len_ms) * burst_intensity * line_bytes_per_ms);
  const auto fan_in = std::max<std::size_t>(
      1, std::min(state.pool.size(),
                  static_cast<std::size_t>(rng_.poisson(
                      std::max(profile.conns_inside, 1.0)))));
  const std::int64_t per_sender =
      std::max<std::int64_t>(1, volume / static_cast<std::int64_t>(fan_in));
  for (std::size_t c = 0; c < fan_in; ++c) {
    state.pool[c]->send_app_data(per_sender);
  }
}

void PacketRackDriver::schedule_background(int server) {
  ServerState& state = servers_[static_cast<std::size_t>(server)];
  const TrafficProfile& profile = profile_for(state.task);
  // Background trickle: small responses on one pool connection, sized so
  // the average matches background_util.
  const double line_bps = 12.5e9 / 8.0;
  const double bg_bytes_per_sec = line_bps * profile.background_util *
                                  config_.diurnal *
                                  std::min(config_.intensity, 2.0);
  const std::int64_t chunk = 16 << 10;
  const double rate_hz = std::max(bg_bytes_per_sec / static_cast<double>(chunk), 1.0);
  const auto gap = static_cast<sim::SimDuration>(
      rng_.exponential(rate_hz) * static_cast<double>(sim::kSecond));
  simulator_.schedule_in(gap, [this, server, chunk] {
    if (simulator_.now() >= until_) return;
    ServerState& st = servers_[static_cast<std::size_t>(server)];
    st.pool[rng_.uniform_int(st.pool.size())]->send_app_data(chunk);
    schedule_background(server);
  });
}

std::int64_t PacketRackDriver::total_delivered() const {
  std::int64_t total = 0;
  for (const auto& state : servers_) {
    for (const auto& conn : state.pool) {
      total += conn->stats().delivered_bytes;
    }
  }
  return total;
}

std::int64_t PacketRackDriver::total_retx_bytes() const {
  std::int64_t total = 0;
  for (const auto& state : servers_) {
    for (const auto& conn : state.pool) total += conn->stats().retx_bytes;
  }
  return total;
}

}  // namespace msamp::workload

#include "workload/burst_process.h"

#include <algorithm>
#include <cmath>

namespace msamp::workload {

BurstProcess::BurstProcess(const TrafficProfile& profile,
                           const BurstProcessConfig& config,
                           std::uint64_t flow_base, util::Rng rng)
    : profile_(profile), config_(config), flow_base_(flow_base), rng_(rng) {
  begin_run();
}

std::int64_t BurstProcess::line_bytes_per_ms() const {
  return static_cast<std::int64_t>(config_.line_rate_gbps * 1e9 / 8.0 / 1000.0);
}

void BurstProcess::begin_run() {
  active_regime_ = rng_.bernoulli(profile_.active_run_prob);
  // Heavy-tailed per-window burst rate: the p90 server run sees ~5x the
  // median's bursts per second (Figure 6).
  run_rate_mult_ = rng_.lognormal(-0.55, 0.95);
  burst_remaining_ms_ = 0;
  pending_marked_ = 0.0;
  pending_dropped_ = 0;
  retx_pipeline_.clear();
  step_index_ = 0;
  // Non-persistent (poorly adapting, short-lived) senders start each window
  // at full rate; adapted long-running senders keep their operating point.
  if (profile_.adaptivity < 0.7) rate_factor_ = 1.0;
  rebuild_flow_set(profile_.conns_outside);
}

void BurstProcess::rebuild_flow_set(double mean_conns) {
  conns_current_ = static_cast<int>(
      std::max<std::uint64_t>(1, rng_.poisson(std::max(mean_conns, 0.5))));
  flow_sketch_.clear();
  for (int i = 0; i < conns_current_; ++i) {
    // Fresh salts per rebuild: connection churn between phases.
    flow_sketch_.add(flow_base_ + next_flow_salt_++);
  }
}

void BurstProcess::maybe_start_burst() {
  // Poisson burst arrivals; the active-regime gate reproduces the paper's
  // "34% of server runs are bursty" statistic, and the rack intensity
  // scalar + diurnal multiplier scale load (§7.2's volume correlation).
  double rate_hz = profile_.burst_rate_hz * config_.diurnal *
                   config_.intensity * run_rate_mult_;
  if (!active_regime_) rate_hz *= 0.02;
  const double p = std::min(rate_hz / 1000.0, 0.95);
  if (!rng_.bernoulli(p)) return;

  const double len_ms =
      rng_.lognormal(profile_.burst_len_mu, profile_.burst_len_sigma);
  burst_remaining_ms_ = std::max(1, static_cast<int>(std::lround(len_ms)));
  // Skewed intensity draw: most bursts run at 55-90% of the drain rate
  // (the paper's in-burst median utilization is 65.5%); only the tail
  // arrives faster than the downlink drains and builds real queues.
  const double u = rng_.uniform();
  burst_intensity_ = profile_.intensity_lo +
                     (profile_.intensity_hi - profile_.intensity_lo) *
                         u * u * u * u;
  if (profile_.adaptivity < 0.7) rate_factor_ = 1.0;  // fresh senders
  rebuild_flow_set(profile_.conns_inside);
}

void BurstProcess::on_feedback(double marked_fraction,
                               std::int64_t dropped_bytes) {
  pending_marked_ = marked_fraction;
  pending_dropped_ += dropped_bytes;
}

StepDemand BurstProcess::step() {
  // 1. Apply last step's congestion feedback (one-step lag ~ several RTTs).
  if (pending_marked_ > 0.0) {
    rate_factor_ *=
        1.0 - profile_.adaptivity * std::min(pending_marked_, 1.0) / 2.0;
  }
  if (pending_dropped_ > 0) {
    // Loss halves every sender (DCTCP falls back to loss recovery too),
    // and the dropped bytes come back as retransmissions a few ms later
    // (fast-retransmit + requeue latency).
    rate_factor_ *= 0.5;
    const int lag =
        2 + static_cast<int>(std::min(rng_.exponential(0.8), 6.0));
    retx_pipeline_.emplace_back(step_index_ + lag, pending_dropped_);
    pending_dropped_ = 0;
  }
  if (pending_marked_ <= 0.0) {
    // Additive recovery toward full offered rate.
    rate_factor_ += 0.02 + 0.10 * profile_.adaptivity;
  }
  pending_marked_ = 0.0;
  rate_factor_ = std::clamp(rate_factor_, 0.02, 1.0);

  // 2. Burst state machine.
  const bool was_bursting = burst_remaining_ms_ > 0;
  if (was_bursting) {
    --burst_remaining_ms_;
    if (burst_remaining_ms_ == 0) rebuild_flow_set(profile_.conns_outside);
  } else {
    maybe_start_burst();
  }
  const bool bursting = burst_remaining_ms_ > 0;

  // 3. Offered demand.
  const auto line = static_cast<double>(line_bytes_per_ms());
  double demand = line * profile_.background_util * config_.diurnal *
                  std::min(config_.intensity, 2.0) * rng_.uniform(0.5, 1.5);
  if (bursting) {
    const double offered = line * burst_intensity_;
    double throttled = offered * rate_factor_;
    // Incast floor: with C senders, one congestion window each per RTT
    // cannot be reduced further; many-connection bursts keep arriving hot
    // no matter what congestion control does (§8.2, Figure 19).
    const double floor = static_cast<double>(conns_current_) *
                         static_cast<double>(config_.mss) / config_.rtt_ms;
    throttled = std::max(throttled, std::min(floor, offered));
    demand += throttled;
  }

  StepDemand out;
  out.in_burst = bursting;
  out.smoothness = profile_.adaptivity;
  out.conns = conns_current_;
  out.sketch[0] = flow_sketch_.word(0);
  out.sketch[1] = flow_sketch_.word(1);

  // 4. Due retransmissions re-arrive on top of fresh demand.
  std::int64_t retx = 0;
  while (!retx_pipeline_.empty() && retx_pipeline_.front().first <= step_index_) {
    retx += retx_pipeline_.front().second;
    retx_pipeline_.pop_front();
  }
  out.retx_bytes = retx;
  out.bytes = static_cast<std::int64_t>(demand) + retx;

  ++step_index_;
  return out;
}

}  // namespace msamp::workload

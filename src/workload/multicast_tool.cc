#include "workload/multicast_tool.h"

namespace msamp::workload {

MulticastTool::MulticastTool(sim::Simulator& simulator, net::Host& sender,
                             const MulticastToolConfig& config)
    : simulator_(simulator), sender_(sender), config_(config) {}

void MulticastTool::start(sim::SimTime until) {
  until_ = until;
  send_burst();
}

void MulticastTool::send_burst() {
  if (simulator_.now() >= until_) return;
  ++bursts_;
  const sim::SimDuration spacing =
      sim::serialize_time(config_.packet_bytes, config_.pace_gbps);
  for (int i = 0; i < config_.packets_per_burst; ++i) {
    simulator_.schedule_in(spacing * i, [this] {
      net::Packet pkt;
      pkt.flow = 0;  // raw tool traffic
      pkt.src = sender_.id();
      pkt.dst = config_.group;
      pkt.bytes = config_.packet_bytes;
      sender_.send(pkt);
    });
  }
  simulator_.schedule_in(config_.period, [this] { send_burst(); });
}

}  // namespace msamp::workload

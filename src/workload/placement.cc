#include "workload/placement.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace msamp::workload {

int RackMeta::distinct_tasks() const {
  std::vector<int> ids = server_service;
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return static_cast<int>(ids.size());
}

double RackMeta::dominant_share() const {
  if (server_service.empty()) return 0.0;
  std::unordered_map<int, int> counts;
  int best = 0;
  for (int s : server_service) best = std::max(best, ++counts[s]);
  return static_cast<double>(best) /
         static_cast<double>(server_service.size());
}

PlacementConfig default_placement(RegionId region, int num_racks,
                                  int servers_per_rack) {
  PlacementConfig cfg;
  cfg.region = region;
  cfg.num_racks = num_racks;
  cfg.servers_per_rack = servers_per_rack;
  if (region == RegionId::kRegB) {
    // RegB: no dense ML co-location, but a per-rack ML lean that spreads
    // average contention fairly uniformly (Fig 9), slightly more services
    // per rack (Fig 10) and a wider intensity spread.
    cfg.ml_dense_fraction = 0.0;
    cfg.ml_lean_max = 0.55;
    cfg.distinct_mean = 15.0;
    cfg.intensity_mu = 0.3;
    cfg.intensity_sigma = 0.6;
    // RegB's service mix leans more on adaptive storage/batch tasks and a
    // few more ML services: high contention with comparatively fewer
    // collision-prone incast bursts (Table 2: RegB is less lossy than
    // RegA-Typical despite more contention).
    cfg.pool_weights[0] = 0.08;
    cfg.pool_weights[1] = 0.20;  // web
    cfg.pool_weights[2] = 0.18;  // cache
    cfg.pool_weights[3] = 0.26;  // storage
    cfg.pool_weights[4] = 0.18;  // batch
  }
  return cfg;
}

namespace {

/// Builds the region service pool according to the kind weights.
std::vector<Service> build_pool(const PlacementConfig& cfg, util::Rng& rng) {
  std::vector<Service> pool;
  pool.reserve(static_cast<std::size_t>(cfg.pool_services));
  double total = 0.0;
  for (double w : cfg.pool_weights) total += w;
  for (int i = 0; i < cfg.pool_services; ++i) {
    double u = rng.uniform() * total;
    int kind = 0;
    for (; kind < kNumTaskKinds - 1; ++kind) {
      u -= cfg.pool_weights[kind];
      if (u <= 0.0) break;
    }
    pool.push_back({i, static_cast<TaskKind>(kind)});
  }
  return pool;
}

}  // namespace

std::vector<RackMeta> generate_racks(const PlacementConfig& cfg,
                                     int first_rack_id, util::Rng& rng) {
  std::vector<Service> pool = build_pool(cfg, rng);
  // The single fleet-wide ML service that placement densely co-locates
  // (the paper found the top task of every RegA-High rack was the same
  // ML task), plus the serving-flavor ML service used for the RegB lean.
  // Both get dedicated ids above the pool.
  const Service ml_service{cfg.pool_services, TaskKind::kMlTraining};
  const Service ml_serving{cfg.pool_services + 1, TaskKind::kMlInference};

  std::vector<RackMeta> racks;
  racks.reserve(static_cast<std::size_t>(cfg.num_racks));
  const int num_dense = static_cast<int>(
      std::lround(cfg.ml_dense_fraction * cfg.num_racks));

  for (int r = 0; r < cfg.num_racks; ++r) {
    RackMeta rack;
    rack.rack_id = first_rack_id + r;
    rack.region = cfg.region;
    rack.ml_dense = r < num_dense;  // shuffled below
    rack.intensity = rng.lognormal(cfg.intensity_mu, cfg.intensity_sigma);
    rack.server_service.resize(static_cast<std::size_t>(cfg.servers_per_rack));
    rack.server_kind.resize(static_cast<std::size_t>(cfg.servers_per_rack));

    const int n = cfg.servers_per_rack;
    int next_server = 0;

    if (rack.ml_dense) {
      // ML-dense rack: the ML service takes 60-100% of the servers.
      const double share = rng.uniform(cfg.ml_share_lo, cfg.ml_share_hi);
      const int ml_servers = std::clamp(
          static_cast<int>(std::lround(share * n)), 1, n);
      for (; next_server < ml_servers; ++next_server) {
        rack.server_service[static_cast<std::size_t>(next_server)] =
            ml_service.id;
        rack.server_kind[static_cast<std::size_t>(next_server)] =
            ml_service.kind;
      }
    }

    // Remaining servers: draw a set of distinct services, then assign with
    // exponential weights so one service dominates moderately (~25% of
    // servers for the median typical rack).
    const int remaining = n - next_server;
    if (remaining > 0) {
      int distinct = std::clamp(
          static_cast<int>(std::lround(
              rng.normal(cfg.distinct_mean, cfg.distinct_sd))),
          cfg.distinct_min, cfg.distinct_max);
      if (rack.ml_dense) distinct = std::max(3, distinct / 2);
      distinct = std::min(distinct, remaining);

      // RegB-style ML lean: some of the remaining servers run the shared
      // ML service without dense co-location.
      int lean_servers = 0;
      if (cfg.ml_lean_max > 0.0) {
        lean_servers = static_cast<int>(
            std::lround(rng.uniform(0.0, cfg.ml_lean_max) * remaining));
      }

      std::vector<Service> chosen;
      chosen.reserve(static_cast<std::size_t>(distinct));
      for (int i = 0; i < distinct; ++i) {
        chosen.push_back(pool[rng.uniform_int(pool.size())]);
      }
      std::vector<double> weights(chosen.size());
      double wtotal = 0.0;
      for (auto& w : weights) {
        w = rng.exponential(1.0);
        wtotal += w;
      }
      for (int s = 0; s < remaining; ++s) {
        const std::size_t idx = static_cast<std::size_t>(next_server + s);
        if (s < lean_servers) {
          rack.server_service[idx] = ml_serving.id;
          rack.server_kind[idx] = ml_serving.kind;
          continue;
        }
        double u = rng.uniform() * wtotal;
        std::size_t pick = 0;
        for (; pick + 1 < weights.size(); ++pick) {
          u -= weights[pick];
          if (u <= 0.0) break;
        }
        rack.server_service[idx] = chosen[pick].id;
        rack.server_kind[idx] = chosen[pick].kind;
      }
    }
    racks.push_back(std::move(rack));
  }

  // Shuffle so ML-dense racks are not clustered at low rack ids.
  rng.shuffle(racks);
  for (int r = 0; r < cfg.num_racks; ++r) {
    racks[static_cast<std::size_t>(r)].rack_id = first_rack_id + r;
  }
  return racks;
}

}  // namespace msamp::workload

#include "workload/diurnal.h"

namespace msamp::workload {
namespace {

// Hourly multipliers, hand-shaped to the paper's Figure 13: RegA rises
// sharply into hours 4-10 (ML training waves plus user morning traffic),
// RegB has a smoother swing peaking late in the local day.
constexpr double kRegA[24] = {
    0.86, 0.84, 0.84, 0.88, 1.05, 1.12, 1.18, 1.20, 1.18, 1.15, 1.10, 1.02,
    0.97, 0.94, 0.92, 0.92, 0.93, 0.95, 0.97, 0.99, 1.00, 0.97, 0.92, 0.88};
constexpr double kRegB[24] = {
    0.90, 0.86, 0.84, 0.83, 0.84, 0.87, 0.92, 0.97, 1.01, 1.05, 1.08, 1.10,
    1.11, 1.12, 1.13, 1.14, 1.14, 1.13, 1.11, 1.08, 1.04, 1.00, 0.96, 0.92};

}  // namespace

double diurnal_multiplier(RegionId region, int hour) {
  const int h = ((hour % 24) + 24) % 24;
  return region == RegionId::kRegA ? kRegA[h] : kRegB[h];
}

}  // namespace msamp::workload

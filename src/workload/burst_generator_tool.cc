#include "workload/burst_generator_tool.h"

namespace msamp::workload {

BurstGeneratorTool::BurstGeneratorTool(
    sim::Simulator& simulator, transport::TransportHost& client,
    transport::TransportHost& server, net::FlowId data_flow,
    net::FlowId request_flow, const BurstGeneratorConfig& config,
    sim::SimDuration client_clock_offset)
    : simulator_(simulator),
      client_(client),
      server_(server),
      request_flow_(request_flow),
      config_(config),
      clock_offset_(client_clock_offset) {
  // Long-lived data connection server -> client that carries the bursts.
  connection_ = std::make_unique<transport::TcpConnection>(
      simulator_, data_flow, server_, client_, config_.tcp);
  // The server reacts to request packets by writing one burst volume into
  // the connection.
  server_.register_flow(request_flow_, [this](const net::Packet& pkt) {
    if (!pkt.is_ack) connection_->send_app_data(config_.burst_volume);
  });
}

void BurstGeneratorTool::start(sim::SimTime until) {
  until_ = until;
  // Fire the first request at the next period boundary of the client's
  // local clock, so co-located clients with synchronized clocks request
  // near-simultaneously.
  const sim::SimTime local_now = simulator_.now() + clock_offset_;
  const sim::SimDuration to_boundary =
      config_.period - (local_now % config_.period);
  simulator_.schedule_in(to_boundary, [this] { send_request(); });
}

void BurstGeneratorTool::send_request() {
  if (simulator_.now() >= until_) return;
  ++requested_;
  net::Packet req;
  req.flow = request_flow_;
  req.src = client_.host().id();
  req.dst = server_.host().id();
  req.bytes = 100;
  client_.host().send(req);
  simulator_.schedule_in(config_.period, [this] { send_request(); });
}

}  // namespace msamp::workload

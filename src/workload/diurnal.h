// Diurnal load profiles (§7.2): hour-of-day multipliers applied to burst
// rates and background utilization.  RegA's ML-heavy load peaks between
// hours 4 and 10 (the paper measures a 27.6% contention increase there);
// RegB shows a broader, evening-leaning diurnal swing.
#pragma once

#include "workload/region_id.h"

namespace msamp::workload {

/// Load multiplier for `region` at local `hour` (0-23).  Averages ~1.0
/// across the day; shape differs per region.
double diurnal_multiplier(RegionId region, int hour);

/// The busy hour the paper uses for the cross-rack contention CDF
/// (6am-7am local time, §7.1).
inline constexpr int kBusyHour = 6;

}  // namespace msamp::workload

// The multicast validation tool of §4.5: sends periodic rate-limited bursts
// to a rack-local multicast address; the ToR replicates each packet to all
// subscribed servers, which should therefore observe the burst in the same
// Millisampler sample if host clocks are aligned (Figure 3).
#pragma once

#include <cstdint>

#include "net/host.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace msamp::workload {

/// Tool parameters; defaults reproduce the paper's validation setup
/// (bursts every 100ms, multicast rate-limited well below line rate).
struct MulticastToolConfig {
  net::HostId group = net::kMulticastBase + 1;
  sim::SimDuration period = 100 * sim::kMillisecond;
  int packets_per_burst = 160;
  int packet_bytes = 1500;
  /// Pacing rate of the burst (the multicast limiter keeps Figure 3's
  /// bursts around 2 Gb/s).
  double pace_gbps = 2.0;
};

/// Periodic multicast burst sender.
class MulticastTool {
 public:
  MulticastTool(sim::Simulator& simulator, net::Host& sender,
                const MulticastToolConfig& config);

  /// Sends bursts every `period` until `until` (simulation time).
  void start(sim::SimTime until);

  std::uint64_t bursts_sent() const noexcept { return bursts_; }

 private:
  void send_burst();

  sim::Simulator& simulator_;
  net::Host& sender_;
  MulticastToolConfig config_;
  sim::SimTime until_ = 0;
  std::uint64_t bursts_ = 0;
};

}  // namespace msamp::workload

#include "workload/task.h"

namespace msamp::workload {
namespace {

// Calibration notes (targets from the paper, RegA unless noted):
//   * per-server bursty time fraction = burst_rate_hz * mean_len; a typical
//     (web/cache-mix) rack of ~92 servers should average ~1-2 simultaneous
//     bursts (Fig 9 "typical"), an ML-dense rack ~7.5 (Fig 9 "high");
//   * median burst length ~2ms, p90 ~8ms (Fig 7); burst volume median
//     ~1.8MB (§6), implied by intensity * length at 12.5Gb/s;
//   * connections inside a burst ~2.7x outside (Fig 8);
//   * ML bursts are long, few-flow and adaptive; web/cache bursts are
//     short, high-incast and poorly adapted (§8 mechanisms).
constexpr TrafficProfile kProfiles[kNumTaskKinds] = {
    // kMlTraining: long adaptive bursts from few fat flows.
    {.burst_rate_hz = 27.0,
     .burst_len_mu = 0.90,   // exp(0.90) ~ 2.5ms median
     .burst_len_sigma = 0.75,
     .intensity_lo = 0.55,
     .intensity_hi = 1.3,
     .background_util = 0.042,
     .conns_outside = 4.0,
     .conns_inside = 12.0,
     .adaptivity = 0.90,
     .active_run_prob = 0.85},
    // kWeb: short, heavy-incast request fan-ins.
    {.burst_rate_hz = 8.0,
     .burst_len_mu = 0.10,   // ~1.1ms median
     .burst_len_sigma = 0.75,
     .intensity_lo = 0.6,
     .intensity_hi = 1.7,
     .background_util = 0.019,
     .conns_outside = 14.0,
     .conns_inside = 55.0,
     .adaptivity = 0.35,
     .active_run_prob = 0.21},
    // kCache: frequent short reads with the heaviest incast.
    {.burst_rate_hz = 12.0,
     .burst_len_mu = 0.10,
     .burst_len_sigma = 0.7,
     .intensity_lo = 0.55,
     .intensity_hi = 1.8,
     .background_util = 0.03,
     .conns_outside = 18.0,
     .conns_inside = 70.0,
     .adaptivity = 0.40,
     .active_run_prob = 0.22},
    // kStorage: moderate-length transfers, moderate fan-in.
    {.burst_rate_hz = 5.0,
     .burst_len_mu = 1.10,   // ~3ms median
     .burst_len_sigma = 0.75,
     .intensity_lo = 0.6,
     .intensity_hi = 1.6,
     .background_util = 0.034,
     .conns_outside = 8.0,
     .conns_inside = 18.0,
     .adaptivity = 0.60,
     .active_run_prob = 0.16},
    // kBatch: rare long scans, few flows.
    {.burst_rate_hz = 2.5,
     .burst_len_mu = 1.80,
     .burst_len_sigma = 0.85,
     .intensity_lo = 0.55,
     .intensity_hi = 1.2,
     .background_util = 0.019,
     .conns_outside = 4.0,
     .conns_inside = 8.0,
     .adaptivity = 0.70,
     .active_run_prob = 0.11},
    // kQuiet: near-idle servers (placeholder comment kept below).
    {.burst_rate_hz = 1.0,
     .burst_len_mu = 0.2,
     .burst_len_sigma = 0.5,
     .intensity_lo = 0.5,
     .intensity_hi = 0.8,
     .background_util = 0.012,
     .conns_outside = 3.0,
     .conns_inside = 7.0,
     .adaptivity = 0.50,
     .active_run_prob = 0.03},
    // kMlInference: episodic serving waves — inactive most windows, heavy
    // adaptive bursting when a wave is in flight.
    {.burst_rate_hz = 75.0,
     .burst_len_mu = 0.80,   // ~2.2ms median
     .burst_len_sigma = 0.60,
     .intensity_lo = 0.55,
     .intensity_hi = 1.3,
     .background_util = 0.038,
     .conns_outside = 5.0,
     .conns_inside = 14.0,
     .adaptivity = 0.85,
     .active_run_prob = 0.32},
};

constexpr std::string_view kNames[kNumTaskKinds] = {
    "ml_training", "web", "cache", "storage",
    "batch",       "quiet", "ml_inference",
};

}  // namespace

const TrafficProfile& profile_for(TaskKind kind) {
  return kProfiles[static_cast<int>(kind)];
}

std::string_view task_name(TaskKind kind) {
  return kNames[static_cast<int>(kind)];
}

}  // namespace msamp::workload

// Task (service) taxonomy and per-task traffic profiles.
//
// In the studied fleet each server typically runs a single task, and rack-
// level traffic behavior follows from which tasks placement puts together
// (§7.1).  We model a small catalog of task archetypes whose parameters
// encode the mechanisms the paper identifies:
//
//   * ML training       — frequent, long, adaptive, few-flow bursts; dense
//                         co-location of this task creates the RegA-High
//                         racks (high but stable contention, lower loss);
//   * ML inference      — RegB's spread-out ML flavor: episodic but intense;
//   * web / cache       — short high-incast bursts with poor in-burst
//                         adaptation: the loss-prone regime of §8;
//   * storage / batch   — intermediate profiles;
//   * quiet             — mostly-idle servers (the fleet median link
//                         utilization is 6.4%).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace msamp::workload {

/// Task archetypes.
enum class TaskKind : std::uint8_t {
  kMlTraining = 0,
  kWeb,
  kCache,
  kStorage,
  kBatch,
  kQuiet,
  /// RegB-style ML serving: active in fewer windows than training, but
  /// bursting hard when active — spreads contention without inflating the
  /// bursty-server-run share.
  kMlInference,
};
inline constexpr int kNumTaskKinds = 7;

/// Per-task traffic parameters consumed by BurstProcess.  Rates are for the
/// busy hour; the diurnal profile scales them by hour of day.
struct TrafficProfile {
  /// Mean burst arrivals per second when the server is in its active
  /// regime.
  double burst_rate_hz = 5.0;
  /// Burst duration ~ lognormal(mu, sigma), in milliseconds.
  double burst_len_mu = 0.7;     // exp(0.7) ~ 2ms median
  double burst_len_sigma = 0.7;
  /// Offered arrival rate at the ToR queue during a burst, as a multiple
  /// of the server line rate, drawn uniformly in [lo, hi] per burst.
  /// Values above 1 model fabric-side arrival outrunning the 12.5G
  /// downlink drain — the regime that actually builds queues (§3).
  double intensity_lo = 0.55;
  double intensity_hi = 1.0;
  /// Mean link utilization outside bursts (fraction of line rate).
  double background_util = 0.05;
  /// Mean number of concurrent connections outside / inside bursts.
  double conns_outside = 8.0;
  double conns_inside = 25.0;
  /// How well the endpoints adapt to ECN within a burst (0 = oblivious,
  /// 1 = ideal DCTCP).  Low-adaptivity tasks are the ones whose mid-length
  /// bursts overflow the buffer before feedback takes hold (§8.2).
  /// Adaptivity >= 0.7 additionally makes the aggregate rate factor
  /// persist across bursts (long-running adapted senders, the RegA-High
  /// mechanism); otherwise each burst starts at full offered rate.
  double adaptivity = 0.5;
  /// Probability that the server is in its active (bursty) regime during a
  /// given ~2s observation window; otherwise only background traffic.
  double active_run_prob = 0.5;
};

/// Profile for a task kind (fleet defaults; see task.cc for calibration
/// notes).
const TrafficProfile& profile_for(TaskKind kind);

/// Human-readable task name.
std::string_view task_name(TaskKind kind);

}  // namespace msamp::workload

// Incast driver for the packet-level simulator: N remote senders each open
// a TCP connection to one rack server and transmit simultaneously on
// trigger.  This is the "heavy incast" pattern of §3 — many senders whose
// single congestion windows together overflow the shared buffer — used by
// the examples and the loss-mechanism experiments.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "transport/tcp_connection.h"
#include "transport/transport_host.h"

namespace msamp::workload {

/// Incast parameters.
struct IncastConfig {
  std::int64_t bytes_per_sender = 64 * 1024;
  transport::TcpConfig tcp;
};

/// One fan-in group.
class IncastDriver {
 public:
  /// Creates connections sender[i] -> receiver with flow ids starting at
  /// `first_flow`.
  IncastDriver(sim::Simulator& simulator,
               std::vector<transport::TransportHost*> senders,
               transport::TransportHost& receiver, net::FlowId first_flow,
               const IncastConfig& config);

  /// Starts one synchronized round; `done` fires when every sender's data
  /// has been delivered.
  void trigger(std::function<void()> done);

  /// Total bytes delivered across all connections so far.
  std::int64_t total_delivered() const;

  /// Sum of retransmitted bytes across connections (loss signal).
  std::int64_t total_retx_bytes() const;

  /// Sum of timeouts across connections.
  std::uint64_t total_timeouts() const;

  std::size_t fanout() const noexcept { return connections_.size(); }
  const transport::TcpConnection& connection(std::size_t i) const {
    return *connections_.at(i);
  }

 private:
  IncastConfig config_;
  std::vector<std::unique_ptr<transport::TcpConnection>> connections_;
  std::vector<std::int64_t> round_target_;
  std::size_t outstanding_ = 0;
  std::function<void()> done_;
};

}  // namespace msamp::workload

// Dataset-level aggregations: the §6-§8 analyses (per-class burst/loss
// summaries, loss-rate curves, busy-hour contention) as reusable library
// functions.  The figure benches and the fleet_report example are thin
// printers over these.
//
// All aggregations read a mapped `DatasetView` and walk the v6 columns
// directly — no record materialization, so a cluster-scale day streams
// through them with bounded RSS.
#pragma once

#include <array>
#include <unordered_map>
#include <vector>

#include "analysis/rack_classify.h"
#include "fleet/dataset_view.h"

namespace msamp::fleet {

/// rack_id -> measured class, for O(1) burst classification.
using ClassMap = std::unordered_map<std::uint32_t, analysis::RackClass>;

/// Builds the class map from the dataset's rack table.
ClassMap build_class_map(const DatasetView& view);

/// Class of one burst (RegB bursts are always kRegB).
analysis::RackClass burst_class(std::uint8_t region, std::uint32_t rack_id,
                                const ClassMap& classes);

/// Row-access overload for call sites holding a materialized record.
inline analysis::RackClass burst_class(const BurstRecord& burst,
                                       const ClassMap& classes) {
  return burst_class(burst.region, burst.rack_id, classes);
}

/// Per-class burst summary — the rows of Table 2.
struct ClassBurstStats {
  long bursts = 0;
  long contended = 0;
  long lossy = 0;

  double pct_contended() const {
    return bursts == 0 ? 0.0 : 100.0 * static_cast<double>(contended) /
                                   static_cast<double>(bursts);
  }
  double pct_lossy() const {
    return bursts == 0 ? 0.0 : 100.0 * static_cast<double>(lossy) /
                                   static_cast<double>(bursts);
  }
};

/// Table 2: one summary per rack class, indexed by RackClass value.
std::array<ClassBurstStats, analysis::kNumRackClasses> table2_summary(
    const DatasetView& view, const ClassMap& classes);

/// One bucket of a loss-rate curve.
struct LossBucket {
  double lo = 0.0;   ///< bucket lower edge (inclusive)
  double hi = 0.0;   ///< bucket upper edge (exclusive; last bucket clamps)
  long bursts = 0;
  long lossy = 0;

  double pct_lossy() const {
    return bursts == 0 ? 0.0 : 100.0 * static_cast<double>(lossy) /
                                   static_cast<double>(bursts);
  }
};

/// Figure 16: % lossy bursts vs max contention for one class.
std::vector<LossBucket> loss_by_contention(const DatasetView& view,
                                           const ClassMap& classes,
                                           analysis::RackClass rack_class,
                                           int bin_width, int max_contention);

/// Contended/non-contended filter for the Figure 18/19 curves.
enum class BurstFilter { kAll, kContended, kNonContended };

/// Figure 18: % lossy bursts vs burst length (1ms bins up to max_len_ms,
/// longer bursts clamp into the last bin) for one class.
std::vector<LossBucket> loss_by_length(const DatasetView& view,
                                       const ClassMap& classes,
                                       analysis::RackClass rack_class,
                                       BurstFilter filter, int max_len_ms);

/// Figure 19: % lossy bursts vs average in-burst connection count.
std::vector<LossBucket> loss_by_connections(const DatasetView& view,
                                            const ClassMap& classes,
                                            analysis::RackClass rack_class,
                                            BurstFilter filter, int bin_width,
                                            int num_bins);

/// Figure 9: busy-hour average rack contentions for one region.
std::vector<double> busy_hour_contention(const DatasetView& view,
                                         workload::RegionId region,
                                         int busy_hour);

}  // namespace msamp::fleet

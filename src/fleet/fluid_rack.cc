#include "fleet/fluid_rack.h"

#include <algorithm>
#include <cstddef>
#include <type_traits>

#include "util/simd/simd.h"
#include "workload/diurnal.h"

namespace msamp::fleet {

// The SIMD stages below read StepDemand::bytes as a strided i64 column; pin
// the layout so a struct edit cannot silently skew the gather.
static_assert(std::is_standard_layout_v<workload::StepDemand>);
static_assert(offsetof(workload::StepDemand, bytes) == 0,
              "bytes must be the first StepDemand field");
static_assert(sizeof(workload::StepDemand) % sizeof(std::int64_t) == 0,
              "StepDemand must be a whole number of 64-bit words");

FluidRack::FluidRack(const workload::RackMeta& rack, const FleetConfig& config,
                     int hour, util::Rng rng)
    : config_(config), rng_(rng), num_servers_(static_cast<int>(rack.server_kind.size())) {
  drain_per_ms_ =
      static_cast<std::int64_t>(config.line_rate_gbps * 1e9 / 8.0 / 1000.0);
  reserve_ = config.buffer.reserve_per_queue;
  alpha_ = config.buffer.alpha;
  ecn_threshold_ = config.buffer.ecn_threshold;

  // Same shared-pool carve-out as net::SharedBuffer.
  const int quads = config.buffer.quadrants;
  int max_in_quadrant = 0;
  for (int q = 0; q < quads; ++q) {
    int cnt = 0;
    for (int i = q; i < num_servers_; i += quads) ++cnt;
    max_in_quadrant = std::max(max_in_quadrant, cnt);
  }
  shared_capacity_per_quadrant_ = std::max<std::int64_t>(
      0, config.buffer.total_bytes / quads - max_in_quadrant * reserve_);
  shared_used_.assign(static_cast<std::size_t>(quads), 0);
  quad_transient_.assign(static_cast<std::size_t>(quads), 0);
  bursting_prev_.assign(static_cast<std::size_t>(num_servers_), 0);
  fabric_carry_.assign(static_cast<std::size_t>(num_servers_), 0);
  policy_ = net::make_policy(config.buffer, num_servers_);
  queues_per_quadrant_.assign(static_cast<std::size_t>(quads), 0);
  for (int s = 0; s < num_servers_; ++s) {
    ++queues_per_quadrant_[static_cast<std::size_t>(s % quads)];
  }
  queues_.assign(static_cast<std::size_t>(num_servers_), Queue{});

  const double diurnal = workload::diurnal_multiplier(rack.region, hour);
  core::ClockModelConfig clock_cfg = config.clocks;
  util::Rng clock_rng = rng_.fork(0x17);
  core::ClockModel clocks(clock_cfg, num_servers_, clock_rng);

  processes_.reserve(static_cast<std::size_t>(num_servers_));
  filters_.reserve(static_cast<std::size_t>(num_servers_));
  clock_offsets_.reserve(static_cast<std::size_t>(num_servers_));
  for (int s = 0; s < num_servers_; ++s) {
    workload::BurstProcessConfig bp;
    bp.line_rate_gbps = config.line_rate_gbps;
    bp.rtt_ms = config.rtt_ms;
    bp.mss = config.mss;
    bp.diurnal = diurnal;
    bp.intensity = rack.intensity;
    const std::uint64_t flow_base =
        (static_cast<std::uint64_t>(rack.rack_id) << 32) |
        (static_cast<std::uint64_t>(s) << 20) | 1u;
    processes_.emplace_back(
        workload::profile_for(rack.server_kind[static_cast<std::size_t>(s)]),
        bp, flow_base, rng_.fork(static_cast<std::uint64_t>(s) + 100));

    core::TcFilterConfig fc;
    fc.num_cpus = config.filter_cpus;
    fc.num_buckets = config.samples_per_run;
    filters_.push_back(std::make_unique<core::TcFilter>(fc));
    clock_offsets_.push_back(clocks.offset(s));
  }
}

void FluidRack::step(sim::SimTime now, bool sampling, FluidRackResult* result) {
  const int quads = static_cast<int>(shared_used_.size());
  // Snapshot shared occupancy (including last step's transient component)
  // so every queue sees the same DT limit this step — packets interleave
  // within the millisecond in reality.
  std::vector<std::int64_t> shared_snapshot(shared_used_.size());
  for (std::size_t q = 0; q < shared_used_.size(); ++q) {
    shared_snapshot[q] = shared_used_[q] + quad_transient_[q];
  }
  std::vector<std::int64_t> new_transient(shared_used_.size(), 0);

  // Simultaneously bursting servers per quadrant (last step's view): the
  // collision count for the sub-ms micro-drop model below.
  std::vector<int> quad_bursting(shared_used_.size(), 0);
  for (int s = 0; s < num_servers_; ++s) {
    if (bursting_prev_[static_cast<std::size_t>(s)] != 0) {
      ++quad_bursting[static_cast<std::size_t>(s % quads)];
    }
  }

  // Workload demands for this step; optionally shaped by the fabric stage
  // before they reach the ToR downlinks (§8.1).
  std::vector<workload::StepDemand> demands(
      static_cast<std::size_t>(num_servers_));
  for (int s = 0; s < num_servers_; ++s) {
    demands[static_cast<std::size_t>(s)] =
        processes_[static_cast<std::size_t>(s)].step();
  }
  if (config_.fabric.enabled) {
    // 1. Smoothing: a slice of each server's arrivals sits in the fabric's
    //    deep buffers for one step (bytes conserved via the carry).
    for (int s = 0; s < num_servers_; ++s) {
      auto& d = demands[static_cast<std::size_t>(s)];
      auto& carry = fabric_carry_[static_cast<std::size_t>(s)];
      const auto held = static_cast<std::int64_t>(
          config_.fabric.smoothing * static_cast<double>(d.bytes));
      const std::int64_t released = carry;
      carry = held;
      d.bytes = d.bytes - held + released;
      // Transit through the fabric's deep buffers also paces the packets:
      // the stream leaves clumpier senders smoother than it found them.
      d.smoothness =
          1.0 - (1.0 - d.smoothness) * (1.0 - config_.fabric.smoothing);
      // Holding back fresh bytes must not leave retx exceeding the total.
      d.retx_bytes = std::min(d.retx_bytes, d.bytes);
    }
    // 2. Uplink cap: the rack's aggregate arrival cannot exceed the trunk;
    //    the excess is discarded upstream (fabric congestion discards) and
    //    retransmitted by the senders like any other loss.
    const auto uplink_per_ms = static_cast<std::int64_t>(
        config_.fabric.uplink_gbps * 1e9 / 8.0 / 1000.0);
    constexpr std::size_t kDemandStride =
        sizeof(workload::StepDemand) / sizeof(std::int64_t);
    std::vector<std::int64_t> demand_col(demands.size());
    util::simd::gather_stride_i64(
        reinterpret_cast<const std::int64_t*>(demands.data()), kDemandStride,
        demands.size(), demand_col.data());
    const std::int64_t aggregate =
        util::simd::sum_i64(demand_col.data(), demand_col.size());
    if (aggregate > uplink_per_ms) {
      const double keep = static_cast<double>(uplink_per_ms) /
                          static_cast<double>(aggregate);
      for (int s = 0; s < num_servers_; ++s) {
        auto& d = demands[static_cast<std::size_t>(s)];
        const auto kept =
            static_cast<std::int64_t>(keep * static_cast<double>(d.bytes));
        const std::int64_t trimmed = d.bytes - kept;
        d.bytes = kept;
        d.retx_bytes = std::min(d.retx_bytes, kept);
        if (trimmed > 0) {
          processes_[static_cast<std::size_t>(s)].on_feedback(0.0, trimmed);
          if (result != nullptr) result->fabric_drop_bytes += trimmed;
        }
      }
    }
  }

  // --- admission limits under the configured sharing policy ---
  // Phase 1 walks the servers in order making the policy calls (their
  // internal-state update sequence must match the old fused loop exactly),
  // phase 2 hands the admission arithmetic to the element-wise SIMD kernel,
  // and phase 3 below replays the rest of the per-server pipeline. All the
  // math between the phases is integer, so the split is byte-identical.
  const auto n_servers = static_cast<std::size_t>(num_servers_);
  std::vector<std::int64_t> demand_bytes(n_servers);
  std::vector<std::int64_t> limit_v(n_servers);
  std::vector<std::int64_t> qlen_v(n_servers);
  std::vector<std::int64_t> free_shared_v(n_servers);
  std::vector<std::int64_t> accepted_v(n_servers);
  constexpr std::size_t kDemandStride =
      sizeof(workload::StepDemand) / sizeof(std::int64_t);
  util::simd::gather_stride_i64(
      reinterpret_cast<const std::int64_t*>(demands.data()), kDemandStride,
      n_servers, demand_bytes.data());
  for (int s = 0; s < num_servers_; ++s) {
    const auto si = static_cast<std::size_t>(s);
    const Queue& q = queues_[si];
    const int quad = s % quads;
    const workload::StepDemand& d = demands[si];
    free_shared_v[si] = std::max<std::int64_t>(
        shared_capacity_per_quadrant_ -
            shared_snapshot[static_cast<std::size_t>(quad)],
        0);
    net::PolicyQueueState ps;
    ps.queue_len = q.len;
    ps.shared_len = std::max<std::int64_t>(q.len - reserve_, 0);
    ps.free_shared = free_shared_v[si];
    ps.shared_capacity = shared_capacity_per_quadrant_;
    ps.queues_in_quadrant = queues_per_quadrant_[static_cast<std::size_t>(quad)];
    ps.arriving_bytes = d.bytes;
    ps.drain_bytes_per_ms = drain_per_ms_;
    limit_v[si] = reserve_ + policy_->policy_limit(s, ps);
    // The whole step's demand is one arrival observation, accepted or not
    // (kBurstAbsorbDt keys burst freshness off offered demand).
    policy_->on_enqueue(s, d.bytes);
    qlen_v[si] = q.len;
  }
  // The queue drains while it fills, so up to (limit - len) + drain bytes
  // fit within the step: accepted = min(demand, max(limit - len, 0) + drain).
  util::simd::dt_admit_i64(demand_bytes.data(), limit_v.data(), qlen_v.data(),
                           drain_per_ms_, accepted_v.data(), n_servers);

  for (int s = 0; s < num_servers_; ++s) {
    auto& proc = processes_[static_cast<std::size_t>(s)];
    Queue& q = queues_[static_cast<std::size_t>(s)];
    const int quad = s % quads;

    const workload::StepDemand& d = demands[static_cast<std::size_t>(s)];

    const std::int64_t free_shared =
        free_shared_v[static_cast<std::size_t>(s)];
    const std::int64_t limit = limit_v[static_cast<std::size_t>(s)];
    std::int64_t accepted = accepted_v[static_cast<std::size_t>(s)];
    std::int64_t dropped = d.bytes - accepted;

    // Sub-millisecond collision drops: when several bursts share a
    // quadrant, their packet clumps interleave and momentarily poke above
    // the DT limit even though each queue's millisecond average fits.
    // The collision probability grows with the number of co-bursting
    // queues and with the burst's incast degree (many senders arrive in
    // tighter clumps); one collision costs about a clump of packets.
    // This is the mechanism behind Figures 16 and 19.
    const bool hot = accepted > drain_per_ms_ / 2;
    if (hot && quad_bursting[static_cast<std::size_t>(quad)] >
                   (bursting_prev_[static_cast<std::size_t>(s)] ? 1 : 0)) {
      const int others = quad_bursting[static_cast<std::size_t>(quad)] -
                         (bursting_prev_[static_cast<std::size_t>(s)] ? 1 : 0);
      const double incast = std::clamp(d.conns / 40.0, 0.15, 2.0);
      const double load = static_cast<double>(accepted) /
                          static_cast<double>(drain_per_ms_);
      // Paced (adapted) senders spread their packets over the RTT and
      // rarely collide; oblivious incast clumps collide often.  A policy
      // that grants this queue more headroom than deployed DT absorbs
      // clumps that would otherwise poke above the limit (and vice versa
      // for tighter policies like static partitioning).
      const double clumpiness = (1.0 - d.smoothness) * (1.0 - d.smoothness);
      const std::int64_t dt_limit =
          reserve_ + static_cast<std::int64_t>(
                         alpha_ * static_cast<double>(free_shared));
      const double headroom = std::clamp(
          static_cast<double>(dt_limit) /
              static_cast<double>(std::max<std::int64_t>(limit, 1)),
          0.25, 4.0);
      const double p_collision =
          std::min(0.30, 0.08 * others * incast * clumpiness *
                             std::min(load, 1.5) * headroom);
      if (rng_.bernoulli(p_collision)) {
        const auto clump = static_cast<std::int64_t>(
            std::min(static_cast<double>(accepted) * 0.5,
                     d.conns * static_cast<double>(config_.mss) *
                         rng_.uniform(0.5, 2.0)));
        accepted -= clump;
        dropped += clump;
      }
    }
    bursting_prev_[static_cast<std::size_t>(s)] = hot ? 1 : 0;

    // Retransmission content of the accepted bytes (proportional share).
    const std::int64_t accepted_retx =
        d.bytes > 0 ? static_cast<std::int64_t>(
                          static_cast<double>(d.retx_bytes) *
                          static_cast<double>(accepted) /
                          static_cast<double>(d.bytes))
                    : 0;

    // --- ECN marking: fraction of the step the queue spent above K ---
    const std::int64_t q0 = q.len;
    const std::int64_t q1 =
        std::max<std::int64_t>(0, q.len + accepted - drain_per_ms_);
    double mark_frac = 0.0;
    const std::int64_t hi = std::max(q0, q1);
    const std::int64_t lo = std::min(q0, q1);
    if (lo >= ecn_threshold_) {
      mark_frac = 1.0;
    } else if (hi > ecn_threshold_) {
      mark_frac = static_cast<double>(hi - ecn_threshold_) /
                  static_cast<double>(std::max<std::int64_t>(hi - lo, 1));
    }
    const auto marked =
        static_cast<std::int64_t>(mark_frac * static_cast<double>(accepted));

    // --- queue update with composition tracking ---
    const std::int64_t before_total = q.len + accepted;
    q.retx_part += accepted_retx;
    q.ecn_part += marked;
    const std::int64_t delivered = std::min(before_total, drain_per_ms_);
    std::int64_t delivered_retx = 0, delivered_ecn = 0;
    if (before_total > 0) {
      const double frac = static_cast<double>(delivered) /
                          static_cast<double>(before_total);
      delivered_retx = static_cast<std::int64_t>(
          frac * static_cast<double>(q.retx_part));
      delivered_ecn = static_cast<std::int64_t>(
          frac * static_cast<double>(q.ecn_part));
    }
    q.len = before_total - delivered;
    q.retx_part -= delivered_retx;
    q.ecn_part -= delivered_ecn;
    shared_used_[static_cast<std::size_t>(quad)] +=
        std::max<std::int64_t>(q.len - reserve_, 0) -
        std::max<std::int64_t>(q0 - reserve_, 0);
    // ~30% of a step's arrivals sit in the buffer at any instant within
    // the millisecond (sub-ms interleaving), visible to next step's limit.
    new_transient[static_cast<std::size_t>(quad)] += (accepted * 3) / 10;

    // --- congestion feedback to the senders (applied next step) ---
    proc.on_feedback(
        accepted > 0 ? static_cast<double>(marked) / static_cast<double>(accepted)
                     : 0.0,
        dropped);

    // --- measurement: delivered traffic through the real tc filter ---
    if (sampling) {
      core::SegmentBatch batch;
      batch.in_bytes = delivered;
      batch.in_retx_bytes = delivered_retx;
      batch.in_ecn_bytes = delivered_ecn;
      // Server egress is ACK-dominated for this ingress-heavy fleet slice.
      batch.out_bytes = delivered / 32 + 1500;
      batch.sketch[0] = d.sketch[0];
      batch.sketch[1] = d.sketch[1];
      filters_[static_cast<std::size_t>(s)]->process_batch(
          0, batch, now + clock_offsets_[static_cast<std::size_t>(s)]);
    }

    if (result != nullptr) {
      result->offered_bytes += d.bytes;
      result->delivered_bytes += delivered;
      result->drop_bytes += dropped;
      result->ecn_bytes += delivered_ecn;
    }
  }
  quad_transient_ = new_transient;
}

FluidRackResult FluidRack::run() {
  FluidRackResult result;
  sim::SimTime now = 0;
  for (int t = 0; t < config_.warmup_ms; ++t) {
    step(now, /*sampling=*/false, nullptr);
    now += sim::kMillisecond;
  }
  for (auto& f : filters_) f->enable(sim::kMillisecond);
  // One extra step beyond the bucket count lets late-started (clock-offset)
  // filters fill their last bucket before the window closes.
  for (int t = 0; t <= config_.samples_per_run; ++t) {
    step(now, /*sampling=*/true, &result);
    now += sim::kMillisecond;
  }
  std::vector<core::RunRecord> records;
  records.reserve(filters_.size());
  for (int s = 0; s < num_servers_; ++s) {
    core::RunRecord r;
    r.host = static_cast<net::HostId>(s);
    r.start = filters_[static_cast<std::size_t>(s)]->start_time();
    r.interval = sim::kMillisecond;
    r.buckets = filters_[static_cast<std::size_t>(s)]->read_aggregated();
    records.push_back(std::move(r));
  }
  result.sync = core::combine_runs(records);
  return result;
}

}  // namespace msamp::fleet

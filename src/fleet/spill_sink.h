// SpillSink: the disk-backed WindowSink.  DatasetBuilder (fleet/shard.h)
// accumulates a whole shard's records in RAM before `Dataset::save`
// writes them out; SpillSink instead streams each completed window's
// records to per-COLUMN spill files as `run_fleet` hands them over (one
// spill per v6 column, so the final assembly is pure file concatenation),
// keeping a generation process's peak RSS at a few spill-chunk buffers
// plus the per-window count table and at most two exemplars — never the
// shard's records.  `finalize()` assembles the spills into a v6 dataset
// file byte-identical to `DatasetBuilder` + `Dataset::save` (both paths
// share the fleet/wire.h layout arithmetic, so this is structural, and
// tests/test_spill_sink.cc proves it with a byte compare), written via
// the same atomic-rename discipline: a crashed or killed process never
// leaves a partial output file, only spill temps that the next attempt
// truncates — which is what makes cluster worker retries idempotent.
#pragma once

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fleet/shard.h"
#include "fleet/wire.h"
#include "util/status.h"

namespace msamp::fleet {

class SpillSink final : public WindowSink {
 public:
  /// Total spill-buffer flush budget: bounds the sum of the in-RAM
  /// per-column buffers and the copy buffer `finalize()` streams the
  /// spill files through.
  static constexpr std::size_t kDefaultChunkBytes = std::size_t{1} << 20;

  /// Streams `shard`'s windows toward `out_path`.  Spill temps live next
  /// to the output (`<out_path>.spill-*`); an existing temp from a
  /// crashed attempt is truncated, so retries are idempotent.  Throws
  /// std::invalid_argument on an invalid shard, std::runtime_error when
  /// the spill files cannot be opened.
  SpillSink(const FleetConfig& config, ShardSpec shard, std::string out_path,
            std::size_t chunk_bytes = kDefaultChunkBytes);

  /// Removes the spill temps (never a finished output file).
  ~SpillSink() override;

  SpillSink(const SpillSink&) = delete;
  SpillSink& operator=(const SpillSink&) = delete;

  /// Windows must arrive in canonical order with no gaps (the runner
  /// guarantees this); anything else throws std::logic_error.
  void on_window(std::size_t window, WindowRecords&& records) override;

  /// Assembles header + spill files into `out_path` via atomic rename and
  /// deletes the temps.  Call once, after `run_fleet` completed the whole
  /// shard range (else std::logic_error).  Returns an error Status (with
  /// path and reason) on I/O failure.
  util::Status finalize();

  const std::string& out_path() const { return out_; }

 private:
  struct Spill {
    std::filesystem::path path;
    std::ofstream file;
    wire::Writer buf;
  };

  /// One spill file per column of one v6 record section.
  struct SectionSpills {
    std::vector<Spill> cols;
    std::uint64_t records = 0;
  };

  void open_section(SectionSpills& s, const char* name, std::size_t n_cols);
  void flush(Spill& s);
  void flush_full_buffers();

  FleetConfig config_;
  ShardSpec shard_;
  std::string out_;
  std::size_t chunk_bytes_;
  std::size_t col_chunk_bytes_;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t window_begin_ = 0;
  std::uint64_t window_end_ = 0;
  std::vector<WindowCounts> counts_;
  std::vector<RackInfo> racks_;
  ExemplarRun low_exemplar_;
  ExemplarRun high_exemplar_;
  SectionSpills runs_;
  SectionSpills servers_;
  SectionSpills bursts_;
  bool finalized_ = false;
};

}  // namespace msamp::fleet

#include "fleet/dataset.h"

#include <filesystem>
#include <fstream>

#include "fleet/wire.h"

namespace msamp::fleet {

analysis::RackClass Dataset::class_of(std::uint32_t rack_id) const {
  for (const auto& r : racks) {
    if (r.rack_id == rack_id) {
      return static_cast<analysis::RackClass>(r.rack_class);
    }
  }
  return analysis::RackClass::kRegATypical;
}

std::vector<std::uint8_t> Dataset::serialize() const {
  wire::Writer w;
  wire::put_header(w, *this);
  wire::put_records(w, window_counts);
  wire::put_records(w, racks);
  wire::put_records(w, rack_runs);
  wire::put_records(w, server_runs);
  wire::put_records(w, bursts);
  wire::put_exemplar(w, low_contention_example);
  wire::put_exemplar(w, high_contention_example);
  return std::move(w.out);
}

bool Dataset::deserialize(const std::vector<std::uint8_t>& blob) {
  wire::Reader r(blob);
  std::uint32_t magic = 0, version = 0;
  if (!r.get(&magic) || magic != wire::kMagic) return false;
  if (!r.get(&version) || version != wire::kVersion) return false;
  if (!r.get(&fingerprint)) return false;
  if (!wire::get_config(r, &config)) return false;
  if (!r.get(&shard.index) || !r.get(&shard.count)) return false;
  if (!shard.valid()) return false;
  if (!r.get(&window_begin) || !r.get(&window_end)) return false;
  // The shard's window range must be exactly what the canonical balanced
  // partition assigns it for this config's day.
  const std::uint64_t total =
      2ull * static_cast<std::uint64_t>(config.racks_per_region) *
      static_cast<std::uint64_t>(config.hours);
  if (window_begin != shard.begin(static_cast<std::size_t>(total)) ||
      window_end != shard.end(static_cast<std::size_t>(total))) {
    return false;
  }
  if (!wire::get_records(r, &window_counts)) return false;
  if (window_counts.size() != window_end - window_begin) return false;
  if (!wire::get_records(r, &racks) || !wire::get_records(r, &rack_runs) ||
      !wire::get_records(r, &server_runs) || !wire::get_records(r, &bursts)) {
    return false;
  }
  // The record vectors must agree with the per-window count table.
  std::uint64_t n_runs = 0, n_servers = 0, n_bursts = 0;
  for (const auto& c : window_counts) {
    n_runs += c.has_run ? 1 : 0;
    n_servers += c.server_runs;
    n_bursts += c.bursts;
  }
  if (n_runs != rack_runs.size() || n_servers != server_runs.size() ||
      n_bursts != bursts.size()) {
    return false;
  }
  if (!wire::get_exemplar(r, &low_contention_example) ||
      !wire::get_exemplar(r, &high_contention_example)) {
    return false;
  }
  return r.pos == blob.size();
}

bool Dataset::save(const std::string& path) const {
  std::error_code ec;
  const std::filesystem::path target(path);
  const auto parent = target.parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  // Write to a sibling temp file first and atomically rename it over the
  // target, so a crash mid-write can never leave a truncated dataset that
  // a later run would try (and fail) to parse.
  std::filesystem::path tmp = target;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    const auto blob = serialize();
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
    if (!out) {
      out.close();
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::filesystem::rename(tmp, target, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

bool Dataset::load(const std::string& path) {
  // A directory can be opened for reading on Linux, and seeking it yields
  // either -1 or a bogus huge offset depending on the filesystem — both of
  // which would drive an absurd buffer allocation below.
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec)) return false;
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return false;
  const std::streamoff end = in.tellg();
  if (end < 0) return false;
  const auto size = static_cast<std::size_t>(end);
  in.seekg(0);
  std::vector<std::uint8_t> blob(size);
  in.read(reinterpret_cast<char*>(blob.data()),
          static_cast<std::streamsize>(size));
  if (!in) return false;
  return deserialize(blob);
}

}  // namespace msamp::fleet

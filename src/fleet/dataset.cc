#include "fleet/dataset.h"

#include <cstring>
#include <filesystem>
#include <fstream>

namespace msamp::fleet {
namespace {

constexpr std::uint32_t kMagic = 0x4d464c54;  // "MFLT"
constexpr std::uint32_t kVersion = 3;

struct Writer {
  std::vector<std::uint8_t> out;
  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto old = out.size();
    out.resize(old + sizeof(T));
    std::memcpy(out.data() + old, &v, sizeof(T));
  }
  template <typename T>
  void put_vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put(static_cast<std::uint64_t>(v.size()));
    const auto old = out.size();
    out.resize(old + v.size() * sizeof(T));
    if (!v.empty()) std::memcpy(out.data() + old, v.data(), v.size() * sizeof(T));
  }
};

struct Reader {
  const std::vector<std::uint8_t>& in;
  std::size_t pos = 0;
  template <typename T>
  bool get(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos + sizeof(T) > in.size()) return false;
    std::memcpy(v, in.data() + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }
  template <typename T>
  bool get_vec(std::vector<T>* v) {
    std::uint64_t n = 0;
    if (!get(&n)) return false;
    if (n > (in.size() - pos) / sizeof(T)) return false;
    v->resize(static_cast<std::size_t>(n));
    if (n != 0) {
      std::memcpy(v->data(), in.data() + pos,
                  static_cast<std::size_t>(n) * sizeof(T));
      pos += static_cast<std::size_t>(n) * sizeof(T);
    }
    return true;
  }
};

void put_exemplar(Writer& w, const ExemplarRun& e) {
  w.put(e.rack_id);
  w.put(e.avg_contention);
  w.put(e.num_servers);
  w.put(e.num_samples);
  w.put_vec(e.raster);
  w.put_vec(e.contention);
}

bool get_exemplar(Reader& r, ExemplarRun* e) {
  return r.get(&e->rack_id) && r.get(&e->avg_contention) &&
         r.get(&e->num_servers) && r.get(&e->num_samples) &&
         r.get_vec(&e->raster) && r.get_vec(&e->contention);
}

}  // namespace

analysis::RackClass Dataset::class_of(std::uint32_t rack_id) const {
  for (const auto& r : racks) {
    if (r.rack_id == rack_id) {
      return static_cast<analysis::RackClass>(r.rack_class);
    }
  }
  return analysis::RackClass::kRegATypical;
}

std::vector<std::uint8_t> Dataset::serialize() const {
  Writer w;
  w.put(kMagic);
  w.put(kVersion);
  w.put(fingerprint);
  w.put_vec(racks);
  w.put_vec(rack_runs);
  w.put_vec(server_runs);
  w.put_vec(bursts);
  put_exemplar(w, low_contention_example);
  put_exemplar(w, high_contention_example);
  return std::move(w.out);
}

bool Dataset::deserialize(const std::vector<std::uint8_t>& blob) {
  Reader r{blob};
  std::uint32_t magic = 0, version = 0;
  if (!r.get(&magic) || magic != kMagic) return false;
  if (!r.get(&version) || version != kVersion) return false;
  if (!r.get(&fingerprint)) return false;
  if (!r.get_vec(&racks) || !r.get_vec(&rack_runs) ||
      !r.get_vec(&server_runs) || !r.get_vec(&bursts)) {
    return false;
  }
  if (!get_exemplar(r, &low_contention_example) ||
      !get_exemplar(r, &high_contention_example)) {
    return false;
  }
  return r.pos == blob.size();
}

bool Dataset::save(const std::string& path) const {
  std::error_code ec;
  const std::filesystem::path target(path);
  const auto parent = target.parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  // Write to a sibling temp file first and atomically rename it over the
  // target, so a crash mid-write can never leave a truncated dataset that
  // a later run would try (and fail) to parse.
  std::filesystem::path tmp = target;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    const auto blob = serialize();
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
    if (!out) {
      out.close();
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::filesystem::rename(tmp, target, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

bool Dataset::load(const std::string& path) {
  // A directory can be opened for reading on Linux, and seeking it yields
  // either -1 or a bogus huge offset depending on the filesystem — both of
  // which would drive an absurd buffer allocation below.
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec)) return false;
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return false;
  const std::streamoff end = in.tellg();
  if (end < 0) return false;
  const auto size = static_cast<std::size_t>(end);
  in.seekg(0);
  std::vector<std::uint8_t> blob(size);
  in.read(reinterpret_cast<char*>(blob.data()),
          static_cast<std::streamsize>(size));
  if (!in) return false;
  return deserialize(blob);
}

}  // namespace msamp::fleet

#include "fleet/dataset.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "fleet/dataset_view.h"
#include "fleet/wire.h"

namespace msamp::fleet {

namespace {

/// Row-wise v4/v5 parse (the pre-v6 deserialize, config codec selected by
/// `version`).  Validation mirrors what it always did; failures now say
/// why and where.
util::Status legacy_deserialize(Dataset& ds,
                                const std::vector<std::uint8_t>& blob,
                                std::uint32_t version) {
  wire::Reader r(blob);
  r.pos = 8;  // caller already checked magic + version
  if (!r.get(&ds.fingerprint)) {
    return util::Status::error("truncated header", {}, 8);
  }
  if (!wire::get_config_legacy(r, &ds.config, version)) {
    return util::Status::error("corrupt serialized FleetConfig", {}, 16);
  }
  if (!r.get(&ds.shard.index) || !r.get(&ds.shard.count) ||
      !ds.shard.valid()) {
    return util::Status::error("invalid shard header", {},
                               static_cast<std::int64_t>(r.pos));
  }
  if (!r.get(&ds.window_begin) || !r.get(&ds.window_end)) {
    return util::Status::error("truncated header", {},
                               static_cast<std::int64_t>(r.pos));
  }
  // The shard's window range must be exactly what the canonical balanced
  // partition assigns it for this config's day.
  const std::uint64_t total =
      2ull * static_cast<std::uint64_t>(ds.config.racks_per_region) *
      static_cast<std::uint64_t>(ds.config.hours);
  if (ds.window_begin != ds.shard.begin(static_cast<std::size_t>(total)) ||
      ds.window_end != ds.shard.end(static_cast<std::size_t>(total))) {
    return util::Status::error(
        "window range is not the canonical slice for shard " +
            std::to_string(ds.shard.index) + "/" +
            std::to_string(ds.shard.count),
        {}, static_cast<std::int64_t>(r.pos));
  }
  if (!wire::get_records(r, &ds.window_counts)) {
    return util::Status::error("corrupt window-count section", {},
                               static_cast<std::int64_t>(r.pos));
  }
  if (ds.window_counts.size() != ds.window_end - ds.window_begin) {
    return util::Status::error("window-count section length mismatch", {},
                               static_cast<std::int64_t>(r.pos));
  }
  if (!wire::get_records(r, &ds.racks) ||
      !wire::get_records(r, &ds.rack_runs) ||
      !wire::get_records(r, &ds.server_runs) ||
      !wire::get_records(r, &ds.bursts)) {
    return util::Status::error("corrupt record section", {},
                               static_cast<std::int64_t>(r.pos));
  }
  // The record vectors must agree with the per-window count table.
  std::uint64_t n_runs = 0, n_servers = 0, n_bursts = 0;
  for (const auto& c : ds.window_counts) {
    n_runs += c.has_run ? 1 : 0;
    n_servers += c.server_runs;
    n_bursts += c.bursts;
  }
  if (n_runs != ds.rack_runs.size() || n_servers != ds.server_runs.size() ||
      n_bursts != ds.bursts.size()) {
    return util::Status::error(
        "record sections disagree with the window-count table", {},
        static_cast<std::int64_t>(r.pos));
  }
  if (!wire::get_exemplar(r, &ds.low_contention_example) ||
      !wire::get_exemplar(r, &ds.high_contention_example)) {
    return util::Status::error("corrupt exemplar section", {},
                               static_cast<std::int64_t>(r.pos));
  }
  if (r.pos != blob.size()) {
    return util::Status::error("trailing garbage after the exemplars", {},
                               static_cast<std::int64_t>(r.pos));
  }
  return util::Status::ok();
}

}  // namespace

analysis::RackClass Dataset::class_of(std::uint32_t rack_id) const {
  for (const auto& r : racks) {
    if (r.rack_id == rack_id) {
      return static_cast<analysis::RackClass>(r.rack_class);
    }
  }
  return analysis::RackClass::kRegATypical;
}

std::vector<std::uint8_t> Dataset::serialize() const {
  wire::SectionCounts counts;
  counts.windows = window_counts.size();
  counts.racks = racks.size();
  counts.rack_runs = rack_runs.size();
  counts.server_runs = server_runs.size();
  counts.bursts = bursts.size();
  counts.exemplar_bytes = wire::exemplar_wire_bytes(low_contention_example) +
                          wire::exemplar_wire_bytes(high_contention_example);
  const wire::V6Layout lay = wire::v6_layout(counts);

  wire::Writer w;
  w.out.reserve(static_cast<std::size_t>(lay.file_bytes));
  wire::V6Header h;
  h.fingerprint = fingerprint;
  h.config = config;
  h.shard = shard;
  h.window_begin = window_begin;
  h.window_end = window_end;
  h.counts = counts;
  h.dir = lay.dir;
  wire::put_header_v6(w, h);

  // Window directory: counts columns, then the running record offsets
  // (prefix sums over the counts; the first window starts at 0).
  const auto& wcols = lay.columns[wire::kSecWindows];
  wire::pad_to(w, wcols[0]);
  for (const auto& c : window_counts) w.put(c.has_run);
  wire::pad_to(w, wcols[1]);
  for (const auto& c : window_counts) w.put(c.server_runs);
  wire::pad_to(w, wcols[2]);
  for (const auto& c : window_counts) w.put(c.bursts);
  wire::pad_to(w, wcols[3]);
  std::uint64_t off = 0;
  for (const auto& c : window_counts) {
    w.put(off);
    off += c.has_run ? 1 : 0;
  }
  wire::pad_to(w, wcols[4]);
  off = 0;
  for (const auto& c : window_counts) {
    w.put(off);
    off += c.server_runs;
  }
  wire::pad_to(w, wcols[5]);
  off = 0;
  for (const auto& c : window_counts) {
    w.put(off);
    off += c.bursts;
  }

  const auto put_section = [&w](const auto& records, const auto& cols) {
    for (std::size_t c = 0; c < cols.size(); ++c) {
      wire::pad_to(w, cols[c]);
      for (const auto& rec : records) wire::put_column(w, rec, c);
    }
  };
  put_section(racks, lay.columns[wire::kSecRacks]);
  put_section(rack_runs, lay.columns[wire::kSecRackRuns]);
  put_section(server_runs, lay.columns[wire::kSecServerRuns]);
  put_section(bursts, lay.columns[wire::kSecBursts]);

  wire::pad_to(w, lay.columns[wire::kSecExemplars][0]);
  wire::put_exemplar(w, low_contention_example);
  wire::put_exemplar(w, high_contention_example);
  if (w.out.size() != lay.file_bytes) std::abort();  // layout is the law
  return std::move(w.out);
}

bool Dataset::deserialize(const std::vector<std::uint8_t>& blob) {
  DatasetView v;
  if (!DatasetView::attach(blob.data(), blob.size(), &v)) return false;
  *this = from_view(v);
  return true;
}

util::Status Dataset::save(const std::string& path) const {
  std::error_code ec;
  const std::filesystem::path target(path);
  const auto parent = target.parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  // Write to a sibling temp file first and atomically rename it over the
  // target, so a crash mid-write can never leave a truncated dataset that
  // a later run would try (and fail) to parse.
  std::filesystem::path tmp = target;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return util::Status::error("cannot open temp file for writing",
                                 tmp.string());
    }
    const auto blob = serialize();
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
    if (!out) {
      out.close();
      std::filesystem::remove(tmp, ec);
      return util::Status::error("write failed", tmp.string());
    }
  }
  std::filesystem::rename(tmp, target, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return util::Status::error("rename failed: " + ec.message(), path);
  }
  return util::Status::ok();
}

util::Status Dataset::load(const std::string& path) {
  // A directory can be opened for reading on Linux, and seeking it yields
  // either -1 or a bogus huge offset depending on the filesystem — both of
  // which would drive an absurd buffer allocation below.
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec)) {
    return util::Status::error("not a regular file", path);
  }
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return util::Status::error("cannot open for reading", path);
  const std::streamoff end = in.tellg();
  if (end < 0) return util::Status::error("cannot determine size", path);
  const auto size = static_cast<std::size_t>(end);
  in.seekg(0);
  std::vector<std::uint8_t> blob(size);
  in.read(reinterpret_cast<char*>(blob.data()),
          static_cast<std::streamsize>(size));
  if (!in) return util::Status::error("read failed", path);

  wire::Reader r(blob);
  std::uint32_t magic = 0, version = 0;
  if (!r.get(&magic) || magic != wire::kMagic) {
    return util::Status::error("not a dataset file (bad magic)", path, 0);
  }
  if (!r.get(&version)) {
    return util::Status::error("truncated header", path, 4);
  }
  if (version == wire::kVersion) {
    return util::Status::error(
        "v6 columnar dataset; use Dataset::open_mapped (msampctl "
        "query/report) — the legacy loader only reads v4/v5 files, which "
        "`msampctl migrate` rewrites to v6",
        path, 4);
  }
  if (version < wire::kLegacyVersionMin ||
      version > wire::kLegacyVersionMax) {
    return util::Status::error(
        "unsupported dataset version " + std::to_string(version), path, 4);
  }
  return legacy_deserialize(*this, blob, version).with_path(path);
}

}  // namespace msamp::fleet

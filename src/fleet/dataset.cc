#include "fleet/dataset.h"

#include <cstring>
#include <filesystem>
#include <fstream>

namespace msamp::fleet {
namespace {

constexpr std::uint32_t kMagic = 0x4d464c54;  // "MFLT"
// Wire-format version.  Bump whenever the serialized layout changes (new
// fields, reordered fields, record shape changes): old cache files then
// fail to parse and are regenerated.  v4: field-wise records (no struct
// padding on the wire), serialized FleetConfig, and the shard header.
constexpr std::uint32_t kVersion = 4;

struct Writer {
  std::vector<std::uint8_t> out;
  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(!std::is_class_v<T>, "serialize records field by field");
    const auto old = out.size();
    out.resize(old + sizeof(T));
    std::memcpy(out.data() + old, &v, sizeof(T));
  }
  template <typename T>
  void put_vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T> && !std::is_class_v<T>);
    put(static_cast<std::uint64_t>(v.size()));
    const auto old = out.size();
    out.resize(old + v.size() * sizeof(T));
    if (!v.empty()) std::memcpy(out.data() + old, v.data(), v.size() * sizeof(T));
  }
};

struct Reader {
  const std::vector<std::uint8_t>& in;
  std::size_t pos = 0;
  template <typename T>
  bool get(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(!std::is_class_v<T>, "deserialize records field by field");
    if (pos + sizeof(T) > in.size()) return false;
    std::memcpy(v, in.data() + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }
  template <typename T>
  bool get_vec(std::vector<T>* v) {
    std::uint64_t n = 0;
    if (!get(&n)) return false;
    if (n > (in.size() - pos) / sizeof(T)) return false;
    v->resize(static_cast<std::size_t>(n));
    if (n != 0) {
      std::memcpy(v->data(), in.data() + pos,
                  static_cast<std::size_t>(n) * sizeof(T));
      pos += static_cast<std::size_t>(n) * sizeof(T);
    }
    return true;
  }
  std::size_t remaining() const { return in.size() - pos; }
};

// --- field-wise record codecs ------------------------------------------
// Every record is written member by member so the file never contains
// compiler-inserted padding bytes: that is what lets shards generated in
// different processes merge into bytes identical to a single-process run.
// `wire_size` is the serialized size, used to bound hostile counts before
// any allocation.

void put_record(Writer& w, const WindowCounts& c) {
  w.put(c.has_run);
  w.put(c.server_runs);
  w.put(c.bursts);
}
bool get_record(Reader& r, WindowCounts* c) {
  return r.get(&c->has_run) && r.get(&c->server_runs) && r.get(&c->bursts);
}
constexpr std::size_t wire_size(const WindowCounts*) { return 9; }

void put_record(Writer& w, const RackInfo& v) {
  w.put(v.rack_id);
  w.put(v.region);
  w.put(v.ml_dense);
  w.put(v.distinct_tasks);
  w.put(v.dominant_share);
  w.put(v.intensity);
  w.put(v.busy_hour_avg_contention);
  w.put(v.rack_class);
}
bool get_record(Reader& r, RackInfo* v) {
  return r.get(&v->rack_id) && r.get(&v->region) && r.get(&v->ml_dense) &&
         r.get(&v->distinct_tasks) && r.get(&v->dominant_share) &&
         r.get(&v->intensity) && r.get(&v->busy_hour_avg_contention) &&
         r.get(&v->rack_class);
}
constexpr std::size_t wire_size(const RackInfo*) { return 21; }

void put_record(Writer& w, const RackRunRecord& v) {
  w.put(v.rack_id);
  w.put(v.region);
  w.put(v.hour);
  w.put(v.usable);
  w.put(v.avg_contention);
  w.put(v.min_active_contention);
  w.put(v.p90_contention);
  w.put(v.max_contention);
  w.put(v.in_bytes);
  w.put(v.drop_bytes);
  w.put(v.ecn_bytes);
}
bool get_record(Reader& r, RackRunRecord* v) {
  return r.get(&v->rack_id) && r.get(&v->region) && r.get(&v->hour) &&
         r.get(&v->usable) && r.get(&v->avg_contention) &&
         r.get(&v->min_active_contention) && r.get(&v->p90_contention) &&
         r.get(&v->max_contention) && r.get(&v->in_bytes) &&
         r.get(&v->drop_bytes) && r.get(&v->ecn_bytes);
}
constexpr std::size_t wire_size(const RackRunRecord*) { return 41; }

void put_record(Writer& w, const ServerRunRecord& v) {
  w.put(v.rack_id);
  w.put(v.region);
  w.put(v.hour);
  w.put(v.bursty);
  w.put(v.avg_util);
  w.put(v.util_inside);
  w.put(v.util_outside);
  w.put(v.bursts_per_sec);
  w.put(v.conns_inside);
  w.put(v.conns_outside);
}
bool get_record(Reader& r, ServerRunRecord* v) {
  return r.get(&v->rack_id) && r.get(&v->region) && r.get(&v->hour) &&
         r.get(&v->bursty) && r.get(&v->avg_util) && r.get(&v->util_inside) &&
         r.get(&v->util_outside) && r.get(&v->bursts_per_sec) &&
         r.get(&v->conns_inside) && r.get(&v->conns_outside);
}
constexpr std::size_t wire_size(const ServerRunRecord*) { return 31; }

void put_record(Writer& w, const BurstRecord& v) {
  w.put(v.rack_id);
  w.put(v.region);
  w.put(v.hour);
  w.put(v.len_ms);
  w.put(v.volume_bytes);
  w.put(v.max_contention);
  w.put(v.avg_conns);
  w.put(v.contended);
  w.put(v.lossy);
}
bool get_record(Reader& r, BurstRecord* v) {
  return r.get(&v->rack_id) && r.get(&v->region) && r.get(&v->hour) &&
         r.get(&v->len_ms) && r.get(&v->volume_bytes) &&
         r.get(&v->max_contention) && r.get(&v->avg_conns) &&
         r.get(&v->contended) && r.get(&v->lossy);
}
constexpr std::size_t wire_size(const BurstRecord*) { return 20; }

template <typename T>
void put_records(Writer& w, const std::vector<T>& v) {
  w.put(static_cast<std::uint64_t>(v.size()));
  for (const auto& e : v) put_record(w, e);
}

template <typename T>
bool get_records(Reader& r, std::vector<T>* v) {
  std::uint64_t n = 0;
  if (!r.get(&n)) return false;
  // Bound the count by the bytes actually left, so a hostile length can
  // never drive a huge allocation before the per-record reads fail.
  if (n > r.remaining() / wire_size(static_cast<const T*>(nullptr))) {
    return false;
  }
  v->clear();
  v->reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    T e;
    if (!get_record(r, &e)) return false;
    v->push_back(e);
  }
  return true;
}

// FleetConfig travels with the dataset so a merge (and `report`) can see
// the scale and classification knobs without re-supplying them.  `threads`
// is deliberately not serialized: it is execution detail, never data.
void put_config(Writer& w, const FleetConfig& c) {
  w.put(c.seed);
  w.put(static_cast<std::int32_t>(c.racks_per_region));
  w.put(static_cast<std::int32_t>(c.servers_per_rack));
  w.put(static_cast<std::int32_t>(c.hours));
  w.put(static_cast<std::int32_t>(c.samples_per_run));
  w.put(static_cast<std::int32_t>(c.warmup_ms));
  w.put(c.line_rate_gbps);
  w.put(c.buffer.total_bytes);
  w.put(static_cast<std::int32_t>(c.buffer.quadrants));
  w.put(c.buffer.reserve_per_queue);
  w.put(c.buffer.alpha);
  w.put(c.buffer.ecn_threshold);
  w.put(static_cast<std::uint8_t>(c.buffer.policy));
  w.put(c.buffer.burst_alpha_boost);
  w.put(c.rtt_ms);
  w.put(static_cast<std::int64_t>(c.mss));
  w.put(static_cast<std::uint8_t>(c.fabric.enabled ? 1 : 0));
  w.put(c.fabric.uplink_gbps);
  w.put(c.fabric.smoothing);
  w.put(static_cast<std::int32_t>(c.filter_cpus));
  w.put(static_cast<std::int64_t>(c.clocks.offset_stddev));
  w.put(static_cast<std::int64_t>(c.clocks.offset_max));
  w.put(static_cast<std::int32_t>(c.loss.rtt_shift_samples));
  w.put(static_cast<std::int32_t>(c.loss.lag_samples));
  w.put(c.classify.high_threshold);
}

bool get_config(Reader& r, FleetConfig* c) {
  std::int32_t racks = 0, servers = 0, hours = 0, samples = 0, warmup = 0;
  std::int32_t quadrants = 0, filter_cpus = 0, rtt_shift = 0, lag = 0;
  std::uint8_t policy = 0, fabric_enabled = 0;
  std::int64_t mss = 0, stddev = 0, offmax = 0;
  if (!(r.get(&c->seed) && r.get(&racks) && r.get(&servers) &&
        r.get(&hours) && r.get(&samples) && r.get(&warmup) &&
        r.get(&c->line_rate_gbps) && r.get(&c->buffer.total_bytes) &&
        r.get(&quadrants) && r.get(&c->buffer.reserve_per_queue) &&
        r.get(&c->buffer.alpha) && r.get(&c->buffer.ecn_threshold) &&
        r.get(&policy) && r.get(&c->buffer.burst_alpha_boost) &&
        r.get(&c->rtt_ms) && r.get(&mss) && r.get(&fabric_enabled) &&
        r.get(&c->fabric.uplink_gbps) && r.get(&c->fabric.smoothing) &&
        r.get(&filter_cpus) && r.get(&stddev) && r.get(&offmax) &&
        r.get(&rtt_shift) && r.get(&lag) &&
        r.get(&c->classify.high_threshold))) {
    return false;
  }
  // The scale fields size window ranges and allocations downstream; reject
  // negatives (and an out-of-range policy byte) as corruption up front.
  if (racks < 0 || servers < 0 || hours < 0 || samples < 0 || warmup < 0) {
    return false;
  }
  if (policy > static_cast<std::uint8_t>(net::BufferPolicy::kBurstAbsorbDt)) {
    return false;
  }
  c->racks_per_region = racks;
  c->servers_per_rack = servers;
  c->hours = hours;
  c->samples_per_run = samples;
  c->warmup_ms = warmup;
  c->buffer.quadrants = quadrants;
  c->buffer.policy = static_cast<net::BufferPolicy>(policy);
  c->mss = mss;
  c->fabric.enabled = fabric_enabled != 0;
  c->filter_cpus = filter_cpus;
  c->clocks.offset_stddev = stddev;
  c->clocks.offset_max = offmax;
  c->loss.rtt_shift_samples = rtt_shift;
  c->loss.lag_samples = lag;
  c->threads = 0;  // execution detail; never travels with data
  return true;
}

void put_exemplar(Writer& w, const ExemplarRun& e) {
  w.put(e.rack_id);
  w.put(e.avg_contention);
  w.put(e.num_servers);
  w.put(e.num_samples);
  w.put_vec(e.raster);
  w.put_vec(e.contention);
}

bool get_exemplar(Reader& r, ExemplarRun* e) {
  return r.get(&e->rack_id) && r.get(&e->avg_contention) &&
         r.get(&e->num_servers) && r.get(&e->num_samples) &&
         r.get_vec(&e->raster) && r.get_vec(&e->contention);
}

}  // namespace

analysis::RackClass Dataset::class_of(std::uint32_t rack_id) const {
  for (const auto& r : racks) {
    if (r.rack_id == rack_id) {
      return static_cast<analysis::RackClass>(r.rack_class);
    }
  }
  return analysis::RackClass::kRegATypical;
}

std::vector<std::uint8_t> Dataset::serialize() const {
  Writer w;
  w.put(kMagic);
  w.put(kVersion);
  w.put(fingerprint);
  put_config(w, config);
  w.put(shard.index);
  w.put(shard.count);
  w.put(window_begin);
  w.put(window_end);
  put_records(w, window_counts);
  put_records(w, racks);
  put_records(w, rack_runs);
  put_records(w, server_runs);
  put_records(w, bursts);
  put_exemplar(w, low_contention_example);
  put_exemplar(w, high_contention_example);
  return std::move(w.out);
}

bool Dataset::deserialize(const std::vector<std::uint8_t>& blob) {
  Reader r{blob};
  std::uint32_t magic = 0, version = 0;
  if (!r.get(&magic) || magic != kMagic) return false;
  if (!r.get(&version) || version != kVersion) return false;
  if (!r.get(&fingerprint)) return false;
  if (!get_config(r, &config)) return false;
  if (!r.get(&shard.index) || !r.get(&shard.count)) return false;
  if (!shard.valid()) return false;
  if (!r.get(&window_begin) || !r.get(&window_end)) return false;
  // The shard's window range must be exactly what the canonical balanced
  // partition assigns it for this config's day.
  const std::uint64_t total =
      2ull * static_cast<std::uint64_t>(config.racks_per_region) *
      static_cast<std::uint64_t>(config.hours);
  if (window_begin != shard.begin(static_cast<std::size_t>(total)) ||
      window_end != shard.end(static_cast<std::size_t>(total))) {
    return false;
  }
  if (!get_records(r, &window_counts)) return false;
  if (window_counts.size() != window_end - window_begin) return false;
  if (!get_records(r, &racks) || !get_records(r, &rack_runs) ||
      !get_records(r, &server_runs) || !get_records(r, &bursts)) {
    return false;
  }
  // The record vectors must agree with the per-window count table.
  std::uint64_t n_runs = 0, n_servers = 0, n_bursts = 0;
  for (const auto& c : window_counts) {
    n_runs += c.has_run ? 1 : 0;
    n_servers += c.server_runs;
    n_bursts += c.bursts;
  }
  if (n_runs != rack_runs.size() || n_servers != server_runs.size() ||
      n_bursts != bursts.size()) {
    return false;
  }
  if (!get_exemplar(r, &low_contention_example) ||
      !get_exemplar(r, &high_contention_example)) {
    return false;
  }
  return r.pos == blob.size();
}

bool Dataset::save(const std::string& path) const {
  std::error_code ec;
  const std::filesystem::path target(path);
  const auto parent = target.parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  // Write to a sibling temp file first and atomically rename it over the
  // target, so a crash mid-write can never leave a truncated dataset that
  // a later run would try (and fail) to parse.
  std::filesystem::path tmp = target;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    const auto blob = serialize();
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
    if (!out) {
      out.close();
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::filesystem::rename(tmp, target, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

bool Dataset::load(const std::string& path) {
  // A directory can be opened for reading on Linux, and seeking it yields
  // either -1 or a bogus huge offset depending on the filesystem — both of
  // which would drive an absurd buffer allocation below.
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec)) return false;
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return false;
  const std::streamoff end = in.tellg();
  if (end < 0) return false;
  const auto size = static_cast<std::size_t>(end);
  in.seekg(0);
  std::vector<std::uint8_t> blob(size);
  in.read(reinterpret_cast<char*>(blob.data()),
          static_cast<std::streamsize>(size));
  if (!in) return false;
  return deserialize(blob);
}

}  // namespace msamp::fleet

// Millisecond-granularity fluid simulation of one rack for one observation
// window.  Same admission arithmetic as net::SharedBuffer — the configured
// net::BufferSharingPolicy caps each queue's shared usage (Dynamic
// Threshold in the deployed fleet) — applied per 1ms step per queue, with:
//   * per-queue drain at server line rate;
//   * static-threshold ECN marking (fraction of the step the queue spent
//     above 120KB);
//   * drops of arrivals exceeding the DT limit, fed back to the workload
//     (rate cut + retransmission re-arrival a few ms later);
//   * every delivered byte pushed through a real core::TcFilter, so the
//     output is an honest SyncMillisampler run assembled by the same
//     combine/align/trim pipeline as the packet-level path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/sync_controller.h"
#include "core/tc_filter.h"
#include "fleet/config.h"
#include "net/buffer_policy.h"
#include "util/rng.h"
#include "workload/burst_process.h"
#include "workload/placement.h"

namespace msamp::fleet {

/// Output of one rack window.
struct FluidRackResult {
  core::SyncRun sync;               ///< aligned per-server measurement
  std::int64_t offered_bytes = 0;   ///< bytes offered to the ToR downlinks
  std::int64_t delivered_bytes = 0; ///< bytes delivered to servers
  std::int64_t drop_bytes = 0;      ///< ToR congestion discards
  std::int64_t ecn_bytes = 0;       ///< CE-marked delivered bytes
  std::int64_t fabric_drop_bytes = 0;  ///< upstream fabric discards
};

/// One-shot fluid simulation of a rack observation window.
class FluidRack {
 public:
  /// `hour` selects the diurnal multiplier; `rng` seeds all randomness.
  FluidRack(const workload::RackMeta& rack, const FleetConfig& config,
            int hour, util::Rng rng);

  /// Runs warmup + sampled window and returns the combined result.
  FluidRackResult run();

 private:
  struct Queue {
    std::int64_t len = 0;
    std::int64_t retx_part = 0;  ///< bytes of `len` that are retransmissions
    std::int64_t ecn_part = 0;   ///< bytes of `len` carrying CE
  };

  void step(sim::SimTime now, bool sampling, FluidRackResult* result);

  FleetConfig config_;  // by value: callers may pass temporaries
  util::Rng rng_;
  int num_servers_;
  std::int64_t drain_per_ms_;
  std::int64_t reserve_;
  std::int64_t shared_capacity_per_quadrant_;
  double alpha_;
  std::int64_t ecn_threshold_;
  /// The sharing discipline charging queues for shared-pool usage.  All
  /// policy state (e.g. kBurstAbsorbDt's arrival history) lives inside.
  std::unique_ptr<net::BufferSharingPolicy> policy_;
  std::vector<int> queues_per_quadrant_;

  std::vector<workload::BurstProcess> processes_;
  std::vector<Queue> queues_;
  std::vector<std::int64_t> shared_used_;  ///< per quadrant
  /// Sub-ms transient occupancy per quadrant: packets of every active
  /// queue interleave within the millisecond, so a slice of each queue's
  /// arrivals transiently occupies shared buffer even when the ms-average
  /// backlog is zero.  This is what couples rack contention to the DT
  /// limit every queue actually experiences (Figure 16's mechanism).
  std::vector<std::int64_t> quad_transient_;
  /// Which servers were bursting last step (per-quadrant collision counts).
  std::vector<std::uint8_t> bursting_prev_;
  /// Fabric stage: bytes buffered upstream per server, released next step.
  std::vector<std::int64_t> fabric_carry_;
  std::vector<std::unique_ptr<core::TcFilter>> filters_;
  std::vector<sim::SimDuration> clock_offsets_;
};

}  // namespace msamp::fleet

// The reproduction dataset: compact per-burst / per-server-run / per-rack-
// run records distilled from every SyncMillisampler window (the raw series
// would be the paper's 8.16B samples; the analyses of §6-§8 only need these
// summaries).  Includes binary (de)serialization so bench binaries share
// one generated dataset through a disk cache.
//
// Datasets are shard-aware: a file carries a shard header (which contiguous
// slice of the canonical window sequence it covers, plus per-window record
// counts), so partial datasets produced by `run_fleet(config, shard, sink)`
// are first-class files that `merge_datasets` can validate and fold back
// into the full day, byte-identical to a single-process run.  The wire
// format writes every record field-by-field (no struct padding ever reaches
// the file), which is what makes "byte-identical across processes and
// machines" a checkable contract rather than an ABI accident.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/rack_classify.h"
#include "fleet/config.h"
#include "util/status.h"
#include "workload/region_id.h"

namespace msamp::fleet {

class DatasetView;

/// Which contiguous slice of the canonical (hour-major, rack-minor) window
/// sequence a generation run covers.  `{0, 1}` is the full day.  The
/// partition is deterministic and balanced: shard i of n owns windows
/// [total*i/n, total*(i+1)/n), so every window belongs to exactly one
/// shard, shards differ in size by at most one window, and `count` may
/// exceed the window count (trailing shards are empty).
struct ShardSpec {
  std::uint32_t index = 0;
  std::uint32_t count = 1;

  bool valid() const { return count >= 1 && index < count; }
  /// True when this spec covers the whole canonical window range.
  bool full_range() const { return count == 1; }

  std::size_t begin(std::size_t total_windows) const {
    return static_cast<std::size_t>(
        static_cast<std::uint64_t>(total_windows) * index / count);
  }
  std::size_t end(std::size_t total_windows) const {
    return static_cast<std::size_t>(
        static_cast<std::uint64_t>(total_windows) * (index + 1) / count);
  }
};

/// Per-window record counts, serialized in the shard header so a merge can
/// pre-size the folded vectors and validate every shard's contribution
/// against what its windows actually produced.
struct WindowCounts {
  std::uint8_t has_run = 0;        ///< window produced a RackRunRecord
  std::uint32_t server_runs = 0;
  std::uint32_t bursts = 0;
};

/// One detected burst (drives Table 2 and Figures 7, 16, 18, 19).
struct BurstRecord {
  std::uint32_t rack_id = 0;
  std::uint8_t region = 0;  ///< RegionId
  std::uint8_t hour = 0;
  std::uint16_t len_ms = 0;
  float volume_bytes = 0.0f;
  std::uint16_t max_contention = 0;  ///< max over the burst's samples
  float avg_conns = 0.0f;            ///< mean connection estimate in-burst
  std::uint8_t contended = 0;        ///< saw contention >= 2 at any sample
  std::uint8_t lossy = 0;            ///< retx attributed to this burst
};

/// One server's observation window (Figures 6, 8; §6 utilization stats).
struct ServerRunRecord {
  std::uint32_t rack_id = 0;
  std::uint8_t region = 0;
  std::uint8_t hour = 0;
  std::uint8_t bursty = 0;
  float avg_util = 0.0f;
  float util_inside = 0.0f;
  float util_outside = 0.0f;
  float bursts_per_sec = 0.0f;
  float conns_inside = 0.0f;
  float conns_outside = 0.0f;
};

/// One rack observation window (Figures 9, 12-15, 17; Table 1).
struct RackRunRecord {
  std::uint32_t rack_id = 0;
  std::uint8_t region = 0;
  std::uint8_t hour = 0;
  std::uint8_t usable = 0;        ///< p90 contention > 0 (§7.3 exclusion)
  float avg_contention = 0.0f;
  std::uint16_t min_active_contention = 0;
  std::uint16_t p90_contention = 0;
  std::uint16_t max_contention = 0;
  double in_bytes = 0.0;          ///< delivered ingress volume this window
  double drop_bytes = 0.0;        ///< switch congestion discards
  double ecn_bytes = 0.0;
};

/// Static per-rack metadata + derived classification.
struct RackInfo {
  std::uint32_t rack_id = 0;
  std::uint8_t region = 0;
  std::uint8_t ml_dense = 0;      ///< placement ground truth
  std::uint16_t distinct_tasks = 0;
  float dominant_share = 0.0f;
  float intensity = 0.0f;
  float busy_hour_avg_contention = 0.0f;
  std::uint8_t rack_class = 0;    ///< analysis::RackClass, measured
};

/// Raster + contention series of one exemplar run (Figure 5).
struct ExemplarRun {
  std::uint32_t rack_id = 0;
  float avg_contention = 0.0f;
  std::uint16_t num_servers = 0;
  std::uint16_t num_samples = 0;
  /// Row-major [server][sample] burstiness bits.
  std::vector<std::uint8_t> raster;
  std::vector<std::uint16_t> contention;
};

/// The distilled dataset — the full day, or one shard of it.  A shard
/// carries the complete rack table (placement is cheap and identical in
/// every shard) but only the run/burst records of its window range, and
/// leaves the busy-hour classification fields zeroed; `merge_datasets`
/// recomputes them once coverage is complete.
struct Dataset {
  std::uint64_t fingerprint = 0;  ///< FleetConfig::fingerprint() at creation
  FleetConfig config;             ///< serialized except `threads` (0 on load)
  ShardSpec shard;                ///< which slice of the day this holds
  std::uint64_t window_begin = 0;  ///< first canonical window index covered
  std::uint64_t window_end = 0;    ///< one past the last covered window
  /// One entry per covered window, in canonical order.
  std::vector<WindowCounts> window_counts;
  std::vector<RackInfo> racks;
  std::vector<RackRunRecord> rack_runs;
  std::vector<ServerRunRecord> server_runs;
  std::vector<BurstRecord> bursts;
  ExemplarRun low_contention_example;
  ExemplarRun high_contention_example;

  /// Measured class of a rack (RegA-Typical / RegA-High / RegB).
  analysis::RackClass class_of(std::uint32_t rack_id) const;

  /// Serializes to the current (v6, columnar) wire format.
  std::vector<std::uint8_t> serialize() const;
  /// Parses a v6 blob (validated through DatasetView::attach, then
  /// materialized via from_view).
  bool deserialize(const std::vector<std::uint8_t>& blob);

  /// Writes the v6 file atomically (temp + rename).
  util::Status save(const std::string& path) const;

  /// The LEGACY materializing loader: reads row-wise v4/v5 files only,
  /// for `msampctl migrate` and old caches.  A v6 file is rejected with a
  /// Status pointing at `open_mapped`; new read paths should use
  /// `open_mapped` + DatasetView (or `from_view` when rows are needed).
  util::Status load(const std::string& path);

  /// Maps a v6 file read-only with zero-copy column access (the read path
  /// of every bench/analysis consumer; see fleet/dataset_view.h).
  static util::Status open_mapped(const std::string& path, DatasetView* out);

  /// Materializes a Dataset from a view, so write-side callers (builders,
  /// merges, tests) keep working with owned vectors.
  static Dataset from_view(const DatasetView& view);
};

}  // namespace msamp::fleet

// The reproduction dataset: compact per-burst / per-server-run / per-rack-
// run records distilled from every SyncMillisampler window (the raw series
// would be the paper's 8.16B samples; the analyses of §6-§8 only need these
// summaries).  Includes binary (de)serialization so bench binaries share
// one generated dataset through a disk cache.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/rack_classify.h"
#include "fleet/config.h"
#include "workload/region_id.h"

namespace msamp::fleet {

/// One detected burst (drives Table 2 and Figures 7, 16, 18, 19).
struct BurstRecord {
  std::uint32_t rack_id = 0;
  std::uint8_t region = 0;  ///< RegionId
  std::uint8_t hour = 0;
  std::uint16_t len_ms = 0;
  float volume_bytes = 0.0f;
  std::uint16_t max_contention = 0;  ///< max over the burst's samples
  float avg_conns = 0.0f;            ///< mean connection estimate in-burst
  std::uint8_t contended = 0;        ///< saw contention >= 2 at any sample
  std::uint8_t lossy = 0;            ///< retx attributed to this burst
};

/// One server's observation window (Figures 6, 8; §6 utilization stats).
struct ServerRunRecord {
  std::uint32_t rack_id = 0;
  std::uint8_t region = 0;
  std::uint8_t hour = 0;
  std::uint8_t bursty = 0;
  float avg_util = 0.0f;
  float util_inside = 0.0f;
  float util_outside = 0.0f;
  float bursts_per_sec = 0.0f;
  float conns_inside = 0.0f;
  float conns_outside = 0.0f;
};

/// One rack observation window (Figures 9, 12-15, 17; Table 1).
struct RackRunRecord {
  std::uint32_t rack_id = 0;
  std::uint8_t region = 0;
  std::uint8_t hour = 0;
  std::uint8_t usable = 0;        ///< p90 contention > 0 (§7.3 exclusion)
  float avg_contention = 0.0f;
  std::uint16_t min_active_contention = 0;
  std::uint16_t p90_contention = 0;
  std::uint16_t max_contention = 0;
  double in_bytes = 0.0;          ///< delivered ingress volume this window
  double drop_bytes = 0.0;        ///< switch congestion discards
  double ecn_bytes = 0.0;
};

/// Static per-rack metadata + derived classification.
struct RackInfo {
  std::uint32_t rack_id = 0;
  std::uint8_t region = 0;
  std::uint8_t ml_dense = 0;      ///< placement ground truth
  std::uint16_t distinct_tasks = 0;
  float dominant_share = 0.0f;
  float intensity = 0.0f;
  float busy_hour_avg_contention = 0.0f;
  std::uint8_t rack_class = 0;    ///< analysis::RackClass, measured
};

/// Raster + contention series of one exemplar run (Figure 5).
struct ExemplarRun {
  std::uint32_t rack_id = 0;
  float avg_contention = 0.0f;
  std::uint16_t num_servers = 0;
  std::uint16_t num_samples = 0;
  /// Row-major [server][sample] burstiness bits.
  std::vector<std::uint8_t> raster;
  std::vector<std::uint16_t> contention;
};

/// The full distilled dataset.
struct Dataset {
  std::uint64_t fingerprint = 0;  ///< FleetConfig::fingerprint() at creation
  FleetConfig config;
  std::vector<RackInfo> racks;
  std::vector<RackRunRecord> rack_runs;
  std::vector<ServerRunRecord> server_runs;
  std::vector<BurstRecord> bursts;
  ExemplarRun low_contention_example;
  ExemplarRun high_contention_example;

  /// Measured class of a rack (RegA-Typical / RegA-High / RegB).
  analysis::RackClass class_of(std::uint32_t rack_id) const;

  std::vector<std::uint8_t> serialize() const;
  bool deserialize(const std::vector<std::uint8_t>& blob);

  bool save(const std::string& path) const;
  bool load(const std::string& path);
};

}  // namespace msamp::fleet

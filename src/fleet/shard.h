// Streaming shard generation: the types `run_fleet(config, shard, sink)`
// produces and consumes.
//
// The canonical window sequence is hour-major, rack-minor: window w covers
// hour (w / racks) and rack (w % racks), racks numbered RegA then RegB —
// exactly the order the original serial sweep used.  A ShardSpec owns a
// contiguous slice of that sequence; the runner simulates the slice's
// windows concurrently and streams each completed window's records into a
// WindowSink strictly in canonical order, so a sink can write to disk (or
// fold incrementally) without ever holding the whole day in RAM.
//
// DatasetBuilder is the standard in-memory sink: it accumulates one
// shard's records into a `Dataset` whose shard header `merge_datasets`
// (fleet/merge.h) later validates and folds — byte-identical to a
// single-process run.
#pragma once

#include <cstddef>
#include <vector>

#include "fleet/dataset.h"
#include "workload/placement.h"

namespace msamp::fleet {

/// Exemplar-candidate bits carried by a window (Figure 5 capture; the
/// first qualifying window in canonical order wins).
constexpr std::uint8_t kLowExemplar = 1;
constexpr std::uint8_t kHighExemplar = 2;

/// Everything one (region, hour, rack) window contributes to the Dataset.
struct WindowRecords {
  bool has_run = false;
  RackRunRecord rack_run;
  std::vector<ServerRunRecord> server_runs;
  std::vector<BurstRecord> bursts;
  std::uint8_t exemplar_kind = 0;  ///< kLowExemplar / kHighExemplar bits
  ExemplarRun exemplar;

  WindowCounts counts() const {
    WindowCounts c;
    c.has_run = has_run ? 1 : 0;
    c.server_runs = static_cast<std::uint32_t>(server_runs.size());
    c.bursts = static_cast<std::uint32_t>(bursts.size());
    return c;
  }
};

/// Receives each completed window of a shard, strictly in canonical
/// window order.  Calls are always serial (never concurrent), but they
/// arrive on the runner's consumer thread when the pool has more than one
/// lane — on the calling thread only in single-lane runs — so a sink must
/// not assume thread identity (thread-locals, thread-affine handles).
/// Implementations decide what to keep: DatasetBuilder accumulates in
/// RAM; a custom sink can stream straight to disk or fold running
/// statistics.
class WindowSink {
 public:
  virtual ~WindowSink() = default;
  /// `window` is the absolute canonical window index (not shard-relative).
  virtual void on_window(std::size_t window, WindowRecords&& records) = 0;
};

/// The deterministic rack table both regions contribute for `config`
/// (placement only; cheap).  Every shard regenerates the identical table,
/// which is what lets partial datasets carry the full rack list.
std::vector<workload::RackMeta> fleet_racks(const FleetConfig& config);

/// The `Dataset::racks` table for `config`: `fleet_racks` distilled into
/// serializable RackInfo records with the classification fields zeroed.
/// Shared by every sink (DatasetBuilder, SpillSink) so each shard carries
/// the identical table, which `merge_shards` validates.
std::vector<RackInfo> dataset_rack_table(const FleetConfig& config);

/// Sink that assembles one shard's stream into a `Dataset` with a filled
/// shard header.  For the full-range shard, `take()` also runs the
/// busy-hour classification, matching the historic `run_fleet` output;
/// partial shards leave classification to `merge_datasets`.
class DatasetBuilder final : public WindowSink {
 public:
  explicit DatasetBuilder(const FleetConfig& config, ShardSpec shard = {});

  /// Windows must arrive in canonical order with no gaps (the runner
  /// guarantees this); anything else throws std::logic_error.
  void on_window(std::size_t window, WindowRecords&& records) override;

  /// Finalizes and returns the dataset.  Call once, after `run_fleet`.
  Dataset take();

 private:
  Dataset ds_;
};

/// Recomputes every rack's busy-hour average contention and measured
/// class from `ds.rack_runs` (§7.1 bimodal split), using
/// `ds.config.classify`.  Requires full-day coverage to be meaningful;
/// both the full-range DatasetBuilder and `merge_datasets` call it, which
/// is what keeps merged bytes identical to a single-process run.
void finalize_classification(Dataset& ds);

}  // namespace msamp::fleet

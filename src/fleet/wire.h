// Internal wire-format codecs for the dataset file format, shared by
// three writers that must produce byte-identical output by construction:
// `Dataset::serialize` (whole-blob, fleet/dataset.cc), the disk-backed
// `fleet::SpillSink` (streaming append, fleet/spill_sink.cc), and the
// streaming `fleet::merge_shards` (column-at-a-time copy, fleet/merge.cc).
//
// v6 is columnar: the file is a fixed header plus six sections (window
// directory, racks, rack runs, server runs, bursts, exemplars).  Each
// record section stores one page-aligned, fixed-width little-endian column
// per field, so `Dataset::open_mapped` can hand out typed spans straight
// over the mapping — zero copies, bounded RSS — while the window directory
// (per-window counts plus running record offsets) gives O(1) window
// slicing.  Every column value is written member by member: the file never
// contains compiler-inserted padding, which is what lets shards generated
// in different processes merge into bytes identical to a single-process
// run.  Gap bytes between columns are always zero.
//
// This header is wire-format code for msamp_lint purposes: whole-struct
// `sizeof(<RecordType>)` copies are banned here exactly as in dataset.cc
// (the codec templates' `sizeof(T)` is guarded by the static_asserts).
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <type_traits>
#include <vector>

#include "fleet/dataset.h"
#include "util/status.h"

namespace msamp::fleet::wire {

inline constexpr std::uint32_t kMagic = 0x4d464c54;  // "MFLT"
// Wire-format version.  Bump whenever the serialized layout changes (new
// fields, reordered fields, record shape changes): old cache files then
// fail to parse and are regenerated.  v4: field-wise row records, serialized
// FleetConfig, and the shard header.  v5: kDelayDriven policy parameters
// (SharedBufferConfig::delay) in the serialized config.  v6: columnar
// sections with page-aligned columns and a per-window directory; the
// legacy row layouts (v4/v5) are still readable by `Dataset::load` so
// `msampctl migrate` can rewrite old files.
inline constexpr std::uint32_t kVersion = 6;
inline constexpr std::uint32_t kLegacyVersionMin = 4;
inline constexpr std::uint32_t kLegacyVersionMax = 5;

/// Every column starts on a page boundary: mmap'd spans are naturally
/// aligned for their element type and readahead streams whole columns.
inline constexpr std::uint64_t kSegmentAlign = 4096;

/// Widest column element the v6 format stores (u64/i64/double). SIMD loads
/// over mapped columns rely on column offsets — and the mapping base —
/// being at least this aligned; DatasetView::init rejects a misaligned
/// base with a util::Status instead of handing out UB spans.
inline constexpr std::uint64_t kMaxColumnAlign = 8;
static_assert(kSegmentAlign % kMaxColumnAlign == 0,
              "page-aligned columns must imply element alignment");
static_assert(kMaxColumnAlign >= alignof(double) &&
                  kMaxColumnAlign >= alignof(std::uint64_t),
              "kMaxColumnAlign must cover the widest column element");

constexpr std::uint64_t align_segment(std::uint64_t off) {
  return (off + kSegmentAlign - 1) / kSegmentAlign * kSegmentAlign;
}

struct Writer {
  std::vector<std::uint8_t> out;
  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(!std::is_class_v<T>, "serialize records field by field");
    const auto old = out.size();
    out.resize(old + sizeof(T));
    std::memcpy(out.data() + old, &v, sizeof(T));
  }
  template <typename T>
  void put_vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T> && !std::is_class_v<T>);
    put(static_cast<std::uint64_t>(v.size()));
    const auto old = out.size();
    out.resize(old + v.size() * sizeof(T));
    if (!v.empty()) std::memcpy(out.data() + old, v.data(), v.size() * sizeof(T));
  }
};

/// Appends zero bytes until the writer's absolute position is `abs_offset`
/// (used to place the next column on its page boundary).
void pad_to(Writer& w, std::uint64_t abs_offset);

/// Bounds-checked reader over a byte range (a whole serialized blob, or
/// one section of a shard file streamed through a bounded buffer).
struct Reader {
  Reader(const std::uint8_t* bytes, std::size_t count)
      : data(bytes), size(count) {}
  explicit Reader(const std::vector<std::uint8_t>& blob)
      : data(blob.data()), size(blob.size()) {}
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;
  template <typename T>
  bool get(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(!std::is_class_v<T>, "deserialize records field by field");
    if (pos + sizeof(T) > size) return false;
    std::memcpy(v, data + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }
  template <typename T>
  bool get_vec(std::vector<T>* v) {
    std::uint64_t n = 0;
    if (!get(&n)) return false;
    if (n > (size - pos) / sizeof(T)) return false;
    v->resize(static_cast<std::size_t>(n));
    if (n != 0) {
      std::memcpy(v->data(), data + pos,
                  static_cast<std::size_t>(n) * sizeof(T));
      pos += static_cast<std::size_t>(n) * sizeof(T);
    }
    return true;
  }
  std::size_t remaining() const { return size - pos; }
};

// --- v6 columnar layout ------------------------------------------------

/// v6 sections, in file order.
enum Section : std::size_t {
  kSecWindows = 0,   ///< per-window counts + running record offsets
  kSecRacks = 1,     ///< RackInfo columns (full rack table, every shard)
  kSecRackRuns = 2,  ///< RackRunRecord columns
  kSecServerRuns = 3,  ///< ServerRunRecord columns
  kSecBursts = 4,    ///< BurstRecord columns
  kSecExemplars = 5,  ///< two row-encoded ExemplarRun payloads (tiny)
  kNumSections = 6,
};

// Per-section column byte widths, in field order (matching the row codecs
// below and the `put_column` overloads).  The window directory's columns
// are: has_run u8, server_runs u32, bursts u32, then the shard-local
// running record offsets run_off/server_off/burst_off u64 (prefix sums of
// the counts; first window is 0), which give O(1) window slicing.
inline constexpr std::size_t kWindowDirWidths[] = {1, 4, 4, 8, 8, 8};
inline constexpr std::size_t kRackWidths[] = {4, 1, 1, 2, 4, 4, 4, 1};
inline constexpr std::size_t kRackRunWidths[] = {4, 1, 1, 1, 4, 2, 2, 2,
                                                 8, 8, 8};
inline constexpr std::size_t kServerRunWidths[] = {4, 1, 1, 1, 4,
                                                   4, 4, 4, 4, 4};
inline constexpr std::size_t kBurstWidths[] = {4, 1, 1, 2, 4, 2, 4, 1, 1};

inline constexpr std::size_t kWindowDirCols = std::size(kWindowDirWidths);
inline constexpr std::size_t kRackCols = std::size(kRackWidths);
inline constexpr std::size_t kRackRunCols = std::size(kRackRunWidths);
inline constexpr std::size_t kServerRunCols = std::size(kServerRunWidths);
inline constexpr std::size_t kBurstCols = std::size(kBurstWidths);

/// Record counts that fully determine a v6 file's layout (plus the byte
/// length of the row-encoded exemplar section, which is data-dependent).
struct SectionCounts {
  std::uint64_t windows = 0;
  std::uint64_t racks = 0;
  std::uint64_t rack_runs = 0;
  std::uint64_t server_runs = 0;
  std::uint64_t bursts = 0;
  std::uint64_t exemplar_bytes = 0;
};

/// One section-directory entry: absolute offset of the section's first
/// column and total section bytes (last column end minus first offset).
struct SectionExtent {
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
};

/// The complete byte layout of a v6 file, derived deterministically from
/// the section counts: column offsets are assigned in section/field order,
/// each aligned up to kSegmentAlign.
struct V6Layout {
  std::uint64_t header_bytes = 0;
  std::array<std::vector<std::uint64_t>, kNumSections> columns;
  std::array<SectionExtent, kNumSections> dir{};
  std::uint64_t file_bytes = 0;
};

/// Size of the fixed v6 prefix: magic, version, fingerprint, config,
/// shard index/count, window range, four record-count u64s, and the
/// section directory.
std::size_t header_bytes_v6();

/// Serialized size of the FleetConfig codec (version-independent part of
/// the header arithmetic; the v4 codec is this minus the delay fields).
std::size_t config_wire_size();

V6Layout v6_layout(const SectionCounts& counts);

/// Everything in the fixed v6 prefix.  `counts.exemplar_bytes` mirrors
/// `dir[kSecExemplars].bytes` (the count fields on the wire are only the
/// four record counts; the window count is `window_end - window_begin`).
struct V6Header {
  std::uint64_t fingerprint = 0;
  FleetConfig config;
  ShardSpec shard;
  std::uint64_t window_begin = 0;
  std::uint64_t window_end = 0;
  SectionCounts counts;
  std::array<SectionExtent, kNumSections> dir{};
};

void put_header_v6(Writer& w, const V6Header& h);

/// Parses and validates a v6 fixed prefix from the first `available` bytes
/// of a file whose total size is `file_size`.  On success fills `h` and
/// `layout` (recomputed from the counts) after checking: magic/version (a
/// v4/v5 file gets a "run msampctl migrate" error), config decode, a
/// canonical shard window range, a complete rack table
/// (2 * racks_per_region entries), directory == recomputed layout, and
/// `file_size` == layout end.  The error Status carries the failing byte
/// offset; the caller attaches the path.
util::Status read_header_v6(const std::uint8_t* data, std::size_t available,
                            std::uint64_t file_size, V6Header* h,
                            V6Layout* layout);

// Columnar field appenders: append column `col` (field order as in the
// width tables above) of one record to `w`.
void put_column(Writer& w, const RackInfo& v, std::size_t col);
void put_column(Writer& w, const RackRunRecord& v, std::size_t col);
void put_column(Writer& w, const ServerRunRecord& v, std::size_t col);
void put_column(Writer& w, const BurstRecord& v, std::size_t col);

// --- field-wise row codecs ---------------------------------------------
// Still used by: the legacy (v4/v5) reader in `Dataset::load`, the
// exemplar section of v6 (tiny, variable-length), and `legacy_serialize`
// below.  `wire_size` is the serialized row size of one record, used to
// bound hostile counts before any allocation.

void put_record(Writer& w, const WindowCounts& c);
bool get_record(Reader& r, WindowCounts* c);
constexpr std::size_t wire_size(const WindowCounts*) { return 9; }

void put_record(Writer& w, const RackInfo& v);
bool get_record(Reader& r, RackInfo* v);
constexpr std::size_t wire_size(const RackInfo*) { return 21; }

void put_record(Writer& w, const RackRunRecord& v);
bool get_record(Reader& r, RackRunRecord* v);
constexpr std::size_t wire_size(const RackRunRecord*) { return 41; }

void put_record(Writer& w, const ServerRunRecord& v);
bool get_record(Reader& r, ServerRunRecord* v);
constexpr std::size_t wire_size(const ServerRunRecord*) { return 31; }

void put_record(Writer& w, const BurstRecord& v);
bool get_record(Reader& r, BurstRecord* v);
constexpr std::size_t wire_size(const BurstRecord*) { return 20; }

template <typename T>
void put_records(Writer& w, const std::vector<T>& v) {
  w.put(static_cast<std::uint64_t>(v.size()));
  for (const auto& e : v) put_record(w, e);
}

template <typename T>
bool get_records(Reader& r, std::vector<T>* v) {
  std::uint64_t n = 0;
  if (!r.get(&n)) return false;
  // Bound the count by the bytes actually left, so a hostile length can
  // never drive a huge allocation before the per-record reads fail.
  if (n > r.remaining() / wire_size(static_cast<const T*>(nullptr))) {
    return false;
  }
  v->clear();
  v->reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    T e;
    if (!get_record(r, &e)) return false;
    v->push_back(e);
  }
  return true;
}

/// FleetConfig travels with the dataset so a merge (and `report`/`query`)
/// can see the scale and classification knobs without re-supplying them.
/// `threads` is deliberately not serialized: it is execution detail,
/// never data.  The legacy variants read/write the v4 codec (no
/// SharedBufferConfig::delay fields) when `version` is 4.
void put_config(Writer& w, const FleetConfig& c);
bool get_config(Reader& r, FleetConfig* c);
void put_config_legacy(Writer& w, const FleetConfig& c, std::uint32_t version);
bool get_config_legacy(Reader& r, FleetConfig* c, std::uint32_t version);

void put_exemplar(Writer& w, const ExemplarRun& e);
bool get_exemplar(Reader& r, ExemplarRun* e);

/// Serialized size of one exemplar payload (row codec above).
std::size_t exemplar_wire_bytes(const ExemplarRun& e);

/// Serializes `ds` in the legacy row-wise whole-blob layout (version 4 or
/// 5).  Kept only so tests and `msampctl migrate` can exercise the legacy
/// reader; every production writer emits v6.
std::vector<std::uint8_t> legacy_serialize(const Dataset& ds,
                                           std::uint32_t version);

}  // namespace msamp::fleet::wire

// Internal wire-format codecs for the dataset file format, shared by
// three writers that must produce byte-identical output by construction:
// `Dataset::serialize`/`deserialize` (whole-blob, fleet/dataset.cc), the
// disk-backed `fleet::SpillSink` (streaming append, fleet/spill_sink.cc),
// and the streaming `fleet::merge_shards` (section-at-a-time copy,
// fleet/merge.cc).  Every record is written member by member so the file
// never contains compiler-inserted padding bytes: that is what lets shards
// generated in different processes merge into bytes identical to a
// single-process run.
//
// This header is wire-format code for msamp_lint purposes: whole-struct
// `sizeof(<RecordType>)` copies are banned here exactly as in dataset.cc
// (the codec templates' `sizeof(T)` is guarded by the static_asserts).
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "fleet/dataset.h"

namespace msamp::fleet::wire {

inline constexpr std::uint32_t kMagic = 0x4d464c54;  // "MFLT"
// Wire-format version.  Bump whenever the serialized layout changes (new
// fields, reordered fields, record shape changes): old cache files then
// fail to parse and are regenerated.  v4: field-wise records (no struct
// padding on the wire), serialized FleetConfig, and the shard header.
// v5: kDelayDriven policy parameters (SharedBufferConfig::delay) in the
// serialized config.
inline constexpr std::uint32_t kVersion = 5;

struct Writer {
  std::vector<std::uint8_t> out;
  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(!std::is_class_v<T>, "serialize records field by field");
    const auto old = out.size();
    out.resize(old + sizeof(T));
    std::memcpy(out.data() + old, &v, sizeof(T));
  }
  template <typename T>
  void put_vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T> && !std::is_class_v<T>);
    put(static_cast<std::uint64_t>(v.size()));
    const auto old = out.size();
    out.resize(old + v.size() * sizeof(T));
    if (!v.empty()) std::memcpy(out.data() + old, v.data(), v.size() * sizeof(T));
  }
};

/// Bounds-checked reader over a byte range (a whole serialized blob, or
/// one section of a shard file streamed through a bounded buffer).
struct Reader {
  Reader(const std::uint8_t* bytes, std::size_t count)
      : data(bytes), size(count) {}
  explicit Reader(const std::vector<std::uint8_t>& blob)
      : data(blob.data()), size(blob.size()) {}
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;
  template <typename T>
  bool get(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(!std::is_class_v<T>, "deserialize records field by field");
    if (pos + sizeof(T) > size) return false;
    std::memcpy(v, data + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }
  template <typename T>
  bool get_vec(std::vector<T>* v) {
    std::uint64_t n = 0;
    if (!get(&n)) return false;
    if (n > (size - pos) / sizeof(T)) return false;
    v->resize(static_cast<std::size_t>(n));
    if (n != 0) {
      std::memcpy(v->data(), data + pos,
                  static_cast<std::size_t>(n) * sizeof(T));
      pos += static_cast<std::size_t>(n) * sizeof(T);
    }
    return true;
  }
  std::size_t remaining() const { return size - pos; }
};

// --- field-wise record codecs ------------------------------------------
// `wire_size` is the serialized size of one record, used to bound hostile
// counts before any allocation and to locate sections when streaming.

void put_record(Writer& w, const WindowCounts& c);
bool get_record(Reader& r, WindowCounts* c);
constexpr std::size_t wire_size(const WindowCounts*) { return 9; }

void put_record(Writer& w, const RackInfo& v);
bool get_record(Reader& r, RackInfo* v);
constexpr std::size_t wire_size(const RackInfo*) { return 21; }

void put_record(Writer& w, const RackRunRecord& v);
bool get_record(Reader& r, RackRunRecord* v);
constexpr std::size_t wire_size(const RackRunRecord*) { return 41; }

void put_record(Writer& w, const ServerRunRecord& v);
bool get_record(Reader& r, ServerRunRecord* v);
constexpr std::size_t wire_size(const ServerRunRecord*) { return 31; }

void put_record(Writer& w, const BurstRecord& v);
bool get_record(Reader& r, BurstRecord* v);
constexpr std::size_t wire_size(const BurstRecord*) { return 20; }

template <typename T>
void put_records(Writer& w, const std::vector<T>& v) {
  w.put(static_cast<std::uint64_t>(v.size()));
  for (const auto& e : v) put_record(w, e);
}

template <typename T>
bool get_records(Reader& r, std::vector<T>* v) {
  std::uint64_t n = 0;
  if (!r.get(&n)) return false;
  // Bound the count by the bytes actually left, so a hostile length can
  // never drive a huge allocation before the per-record reads fail.
  if (n > r.remaining() / wire_size(static_cast<const T*>(nullptr))) {
    return false;
  }
  v->clear();
  v->reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    T e;
    if (!get_record(r, &e)) return false;
    v->push_back(e);
  }
  return true;
}

/// FleetConfig travels with the dataset so a merge (and `report`) can see
/// the scale and classification knobs without re-supplying them.
/// `threads` is deliberately not serialized: it is execution detail,
/// never data.
void put_config(Writer& w, const FleetConfig& c);
bool get_config(Reader& r, FleetConfig* c);

void put_exemplar(Writer& w, const ExemplarRun& e);
bool get_exemplar(Reader& r, ExemplarRun* e);

/// The fixed-size file prefix up to (and including) the shard header, as
/// written by every producer: magic, version, fingerprint, config, shard
/// index/count, window_begin, window_end.
void put_header(Writer& w, const Dataset& ds);

}  // namespace msamp::fleet::wire

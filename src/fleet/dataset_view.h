// Zero-copy, mmap-backed view of a v6 dataset file.
//
// `Dataset::load` materializes every record into RAM — fine for the
// scaled-down default day, impossible for the cluster-scale days the
// orchestrator can now generate (the paper's full experiment is a
// 2-region x 1000-rack x 24-hour day).  DatasetView instead maps the file
// read-only and hands out typed `std::span`s directly over the mapping:
// the v6 columns are page-aligned and fixed-width, so a span is just
// (base + column offset, count) — no per-record copies, and RSS is
// bounded by the pages the kernel keeps resident, not by file size.
//
// All validation happens once at open (header, section directory vs the
// layout the counts imply, window-directory prefix sums, exemplar
// decode); after that every accessor is a bounds-free pointer add.  The
// view is move-only and unmaps on destruction.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/rack_classify.h"
#include "fleet/dataset.h"
#include "util/status.h"

namespace msamp::fleet {

/// One typed column per field, all the same length.  `operator[]`
/// materializes a record for call sites that want row access; hot loops
/// should read the individual spans instead (that is the point of v6).
struct RackInfoColumns {
  std::span<const std::uint32_t> rack_id;
  std::span<const std::uint8_t> region;
  std::span<const std::uint8_t> ml_dense;
  std::span<const std::uint16_t> distinct_tasks;
  std::span<const float> dominant_share;
  std::span<const float> intensity;
  std::span<const float> busy_hour_avg_contention;
  std::span<const std::uint8_t> rack_class;

  std::size_t size() const { return rack_id.size(); }
  RackInfo operator[](std::size_t i) const;
};

struct RackRunColumns {
  std::span<const std::uint32_t> rack_id;
  std::span<const std::uint8_t> region;
  std::span<const std::uint8_t> hour;
  std::span<const std::uint8_t> usable;
  std::span<const float> avg_contention;
  std::span<const std::uint16_t> min_active_contention;
  std::span<const std::uint16_t> p90_contention;
  std::span<const std::uint16_t> max_contention;
  std::span<const double> in_bytes;
  std::span<const double> drop_bytes;
  std::span<const double> ecn_bytes;

  std::size_t size() const { return rack_id.size(); }
  RackRunRecord operator[](std::size_t i) const;
  RackRunColumns slice(std::size_t off, std::size_t n) const;
};

struct ServerRunColumns {
  std::span<const std::uint32_t> rack_id;
  std::span<const std::uint8_t> region;
  std::span<const std::uint8_t> hour;
  std::span<const std::uint8_t> bursty;
  std::span<const float> avg_util;
  std::span<const float> util_inside;
  std::span<const float> util_outside;
  std::span<const float> bursts_per_sec;
  std::span<const float> conns_inside;
  std::span<const float> conns_outside;

  std::size_t size() const { return rack_id.size(); }
  ServerRunRecord operator[](std::size_t i) const;
  ServerRunColumns slice(std::size_t off, std::size_t n) const;
};

struct BurstColumns {
  std::span<const std::uint32_t> rack_id;
  std::span<const std::uint8_t> region;
  std::span<const std::uint8_t> hour;
  std::span<const std::uint16_t> len_ms;
  std::span<const float> volume_bytes;
  std::span<const std::uint16_t> max_contention;
  std::span<const float> avg_conns;
  std::span<const std::uint8_t> contended;
  std::span<const std::uint8_t> lossy;

  std::size_t size() const { return rack_id.size(); }
  BurstRecord operator[](std::size_t i) const;
  BurstColumns slice(std::size_t off, std::size_t n) const;
};

/// The per-window directory: counts plus shard-local running record
/// offsets (prefix sums; window 0 of the shard starts at offset 0).
struct WindowDirColumns {
  std::span<const std::uint8_t> has_run;
  std::span<const std::uint32_t> server_runs;
  std::span<const std::uint32_t> bursts;
  std::span<const std::uint64_t> run_off;
  std::span<const std::uint64_t> server_off;
  std::span<const std::uint64_t> burst_off;

  std::size_t size() const { return has_run.size(); }
};

/// The canonical identity of one window: hour-major, rack-minor, racks
/// numbered RegA then RegB (see fleet/shard.h).
struct WindowKey {
  std::uint8_t region = 0;  ///< workload::RegionId as stored in records
  std::uint8_t hour = 0;
  std::uint32_t rack_id = 0;       ///< global rack id (RegB offset applied)
  std::uint32_t rack_ordinal = 0;  ///< index into the rack table
};

/// One window's slice of the dataset: its key, and column slices holding
/// exactly this window's records (zero-length when the window produced
/// none).
struct WindowView {
  std::uint64_t index = 0;  ///< absolute canonical window index
  WindowKey key;
  bool has_run = false;
  RackRunColumns rack_run;  ///< size() == has_run ? 1 : 0
  ServerRunColumns server_runs;
  BurstColumns bursts;

  WindowCounts counts() const;
};

/// Read-only handle over a v6 dataset file (or an in-memory blob).
/// Move-only; owns the mapping when opened from a path.
class DatasetView {
 public:
  DatasetView() = default;
  ~DatasetView();
  DatasetView(DatasetView&& other) noexcept;
  DatasetView& operator=(DatasetView&& other) noexcept;
  DatasetView(const DatasetView&) = delete;
  DatasetView& operator=(const DatasetView&) = delete;

  /// Maps `path` read-only and validates it.  On failure the view is
  /// empty (`ok() == false`) and the Status names path/offset/reason.
  static util::Status open(const std::string& path, DatasetView* out);

  /// Attaches to caller-owned bytes (a serialized blob) without mapping.
  /// The bytes must outlive the view.
  static util::Status attach(const std::uint8_t* data, std::size_t size,
                             DatasetView* out);

  bool ok() const { return data_ != nullptr; }
  void close();

  std::uint64_t fingerprint() const { return fingerprint_; }
  const FleetConfig& config() const { return config_; }
  ShardSpec shard() const { return shard_; }
  std::uint64_t window_begin() const { return window_begin_; }
  std::uint64_t window_end() const { return window_end_; }
  /// Windows covered by this file (shard slice).
  std::size_t num_windows() const { return windows_.size(); }
  /// Windows in the whole canonical day for this config.
  std::uint64_t total_windows() const;

  /// The `ordinal`-th covered window (0-based within the shard slice).
  WindowView window(std::size_t ordinal) const;
  /// Canonical key of an absolute window index (need not be covered).
  WindowKey key_of(std::uint64_t absolute_index) const;

  const WindowDirColumns& windows() const { return windows_; }
  const RackInfoColumns& racks() const { return racks_; }
  const RackRunColumns& rack_runs() const { return rack_runs_; }
  const ServerRunColumns& server_runs() const { return server_runs_; }
  const BurstColumns& bursts() const { return bursts_; }
  const ExemplarRun& low_contention_example() const { return low_; }
  const ExemplarRun& high_contention_example() const { return high_; }

  /// Measured class of a rack (RegA-Typical / RegA-High / RegB); mirrors
  /// Dataset::class_of.
  analysis::RackClass class_of(std::uint32_t rack_id) const;

  /// Materializes the rack table (tiny; used by the write-side adapter
  /// and table emitters that want rows).
  std::vector<RackInfo> rack_table() const;

  const std::string& path() const { return path_; }
  std::size_t mapped_bytes() const { return size_; }

 private:
  util::Status init(const std::uint8_t* data, std::size_t size,
                    std::string path);

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  void* map_base_ = nullptr;  ///< non-null when this view owns an mmap
  std::size_t map_len_ = 0;

  std::uint64_t fingerprint_ = 0;
  FleetConfig config_;
  ShardSpec shard_;
  std::uint64_t window_begin_ = 0;
  std::uint64_t window_end_ = 0;
  WindowDirColumns windows_;
  RackInfoColumns racks_;
  RackRunColumns rack_runs_;
  ServerRunColumns server_runs_;
  BurstColumns bursts_;
  ExemplarRun low_;
  ExemplarRun high_;
  std::string path_;
};

/// Rewrites a legacy v4/v5 file (read via `Dataset::load`) as v6 at
/// `out_path`, preserving the stored fingerprint, then re-opens the result
/// and checks fingerprint and counts.  `msampctl migrate` is a thin shell
/// around this.
util::Status migrate_dataset_file(const std::string& in_path,
                                  const std::string& out_path);

}  // namespace msamp::fleet

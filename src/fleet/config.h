// Configuration of the fleet-scale reproduction run: two regions, hourly
// SyncMillisampler collections over a day, paper-parameterized racks.
// Defaults are scaled down from the paper's 1000 racks/region so every
// figure regenerates in seconds; all knobs scale up.
#pragma once

#include <cstdint>

#include "analysis/burst_detect.h"
#include "analysis/loss_assoc.h"
#include "analysis/rack_classify.h"
#include "core/clock_model.h"
#include "net/shared_buffer.h"

namespace msamp::fleet {

/// Optional fabric stage upstream of the rack (§8.1: RegA-High racks also
/// contend in the fabric; its larger-buffer, faster-link ASICs drop a
/// little and smooth bursts before they reach the ToR downlinks).
struct FabricConfig {
  bool enabled = false;
  /// Aggregate rack uplink capacity (4 x 100G in the studied racks).
  double uplink_gbps = 400.0;
  /// Fraction of each server's per-ms arrivals buffered in the fabric and
  /// released the next millisecond (burst smoothing).
  double smoothing = 0.3;
};

/// Fleet experiment knobs.
struct FleetConfig {
  std::uint64_t seed = 42;

  // Scale (paper: ~1000 racks/region, 92 servers/rack, hourly runs for a
  // day, 1ms sampling over ~2s trimmed to ~1.85s).
  int racks_per_region = 96;
  int servers_per_rack = 92;
  int hours = 24;
  int samples_per_run = 700;  ///< 1ms samples per observation window
  int warmup_ms = 60;         ///< settle queues/rate factors before sampling

  // Execution.  Rack windows are simulated concurrently on a deterministic
  // pool (util::ThreadPool); any value here produces byte-identical
  // datasets, which is why `threads` is deliberately excluded from
  // fingerprint().  A positive value is used as given; 0 defers to the
  // MSAMP_THREADS environment variable, else all hardware cores.
  // fingerprint-exempt: execution detail — any thread count produces the
  // same bytes, so hashing it would needlessly re-key every disk cache.
  int threads = 0;  ///< concurrent windows; 0 = MSAMP_THREADS / all cores

  // Rack hardware (§3).
  double line_rate_gbps = 12.5;
  net::SharedBufferConfig buffer{};  // 16MB, 4 quadrants, alpha=1, 120KB ECN
  double rtt_ms = 0.1;
  std::int64_t mss = 1460;
  FabricConfig fabric{};

  // Measurement pipeline.
  int filter_cpus = 1;  ///< fluid path uses 1 vCPU per host (packet sim
                        ///< and tests exercise the full per-CPU machinery)
  core::ClockModelConfig clocks{};
  analysis::LossAssocConfig loss{};
  /// Busy-hour contention threshold splitting RegA-Typical from RegA-High.
  /// Calibrated for 92-server racks; scale it down with servers_per_rack.
  analysis::ClassifyConfig classify{};

  analysis::BurstDetectConfig burst_config() const {
    return {.line_rate_gbps = line_rate_gbps,
            .interval = sim::kMillisecond,
            .threshold_frac = 0.5};
  }

  /// Stable hash of the scale-relevant fields, used to validate the disk
  /// cache of a generated dataset.
  std::uint64_t fingerprint() const;
};

}  // namespace msamp::fleet

#include "fleet/aggregate.h"

#include <algorithm>

namespace msamp::fleet {
namespace {

bool passes(const BurstColumns& bursts, std::size_t i, BurstFilter filter) {
  switch (filter) {
    case BurstFilter::kAll:
      return true;
    case BurstFilter::kContended:
      return bursts.contended[i] != 0;
    case BurstFilter::kNonContended:
      return bursts.contended[i] == 0;
  }
  return true;
}

}  // namespace

ClassMap build_class_map(const DatasetView& view) {
  const RackInfoColumns& racks = view.racks();
  ClassMap out;
  out.reserve(racks.size());
  for (std::size_t i = 0; i < racks.size(); ++i) {
    out[racks.rack_id[i]] =
        static_cast<analysis::RackClass>(racks.rack_class[i]);
  }
  return out;
}

analysis::RackClass burst_class(std::uint8_t region, std::uint32_t rack_id,
                                const ClassMap& classes) {
  if (region == static_cast<std::uint8_t>(workload::RegionId::kRegB)) {
    return analysis::RackClass::kRegB;
  }
  const auto it = classes.find(rack_id);
  return it == classes.end() ? analysis::RackClass::kRegATypical : it->second;
}

std::array<ClassBurstStats, analysis::kNumRackClasses> table2_summary(
    const DatasetView& view, const ClassMap& classes) {
  const BurstColumns& bursts = view.bursts();
  std::array<ClassBurstStats, analysis::kNumRackClasses> out{};
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    const auto cls = burst_class(bursts.region[i], bursts.rack_id[i], classes);
    auto& stats = out[static_cast<std::size_t>(cls)];
    ++stats.bursts;
    stats.contended += bursts.contended[i];
    stats.lossy += bursts.lossy[i];
  }
  return out;
}

std::vector<LossBucket> loss_by_contention(const DatasetView& view,
                                           const ClassMap& classes,
                                           analysis::RackClass rack_class,
                                           int bin_width, int max_contention) {
  const int bins = std::max(1, max_contention / std::max(bin_width, 1));
  std::vector<LossBucket> out(static_cast<std::size_t>(bins));
  for (int b = 0; b < bins; ++b) {
    out[static_cast<std::size_t>(b)].lo = b * bin_width;
    out[static_cast<std::size_t>(b)].hi = (b + 1) * bin_width;
  }
  const BurstColumns& bursts = view.bursts();
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    if (burst_class(bursts.region[i], bursts.rack_id[i], classes) !=
        rack_class) {
      continue;
    }
    const int bin =
        std::min(bursts.max_contention[i] / bin_width, bins - 1);
    auto& bucket = out[static_cast<std::size_t>(bin)];
    ++bucket.bursts;
    bucket.lossy += bursts.lossy[i];
  }
  return out;
}

std::vector<LossBucket> loss_by_length(const DatasetView& view,
                                       const ClassMap& classes,
                                       analysis::RackClass rack_class,
                                       BurstFilter filter, int max_len_ms) {
  std::vector<LossBucket> out(static_cast<std::size_t>(std::max(max_len_ms, 1)));
  for (int len = 1; len <= max_len_ms; ++len) {
    out[static_cast<std::size_t>(len - 1)].lo = len;
    out[static_cast<std::size_t>(len - 1)].hi = len + 1;
  }
  const BurstColumns& bursts = view.bursts();
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    if (burst_class(bursts.region[i], bursts.rack_id[i], classes) !=
            rack_class ||
        !passes(bursts, i, filter)) {
      continue;
    }
    const int len = std::clamp<int>(bursts.len_ms[i], 1, max_len_ms);
    auto& bucket = out[static_cast<std::size_t>(len - 1)];
    ++bucket.bursts;
    bucket.lossy += bursts.lossy[i];
  }
  return out;
}

std::vector<LossBucket> loss_by_connections(const DatasetView& view,
                                            const ClassMap& classes,
                                            analysis::RackClass rack_class,
                                            BurstFilter filter, int bin_width,
                                            int num_bins) {
  std::vector<LossBucket> out(static_cast<std::size_t>(std::max(num_bins, 1)));
  for (int b = 0; b < num_bins; ++b) {
    out[static_cast<std::size_t>(b)].lo = b * bin_width;
    out[static_cast<std::size_t>(b)].hi = (b + 1) * bin_width;
  }
  const BurstColumns& bursts = view.bursts();
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    if (burst_class(bursts.region[i], bursts.rack_id[i], classes) !=
            rack_class ||
        !passes(bursts, i, filter)) {
      continue;
    }
    const int bin = std::min(static_cast<int>(bursts.avg_conns[i]) / bin_width,
                             num_bins - 1);
    auto& bucket = out[static_cast<std::size_t>(bin)];
    ++bucket.bursts;
    bucket.lossy += bursts.lossy[i];
  }
  return out;
}

std::vector<double> busy_hour_contention(const DatasetView& view,
                                         workload::RegionId region,
                                         int busy_hour) {
  const RackRunColumns& runs = view.rack_runs();
  std::vector<double> out;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (runs.region[i] == static_cast<std::uint8_t>(region) &&
        runs.hour[i] == busy_hour) {
      out.push_back(runs.avg_contention[i]);
    }
  }
  return out;
}

}  // namespace msamp::fleet

#include "fleet/aggregate.h"

#include <algorithm>

namespace msamp::fleet {
namespace {

bool passes(const BurstRecord& burst, BurstFilter filter) {
  switch (filter) {
    case BurstFilter::kAll:
      return true;
    case BurstFilter::kContended:
      return burst.contended != 0;
    case BurstFilter::kNonContended:
      return burst.contended == 0;
  }
  return true;
}

}  // namespace

ClassMap build_class_map(const Dataset& dataset) {
  ClassMap out;
  out.reserve(dataset.racks.size());
  for (const auto& rack : dataset.racks) {
    out[rack.rack_id] = static_cast<analysis::RackClass>(rack.rack_class);
  }
  return out;
}

analysis::RackClass burst_class(const BurstRecord& burst,
                                const ClassMap& classes) {
  if (burst.region == static_cast<std::uint8_t>(workload::RegionId::kRegB)) {
    return analysis::RackClass::kRegB;
  }
  const auto it = classes.find(burst.rack_id);
  return it == classes.end() ? analysis::RackClass::kRegATypical : it->second;
}

std::array<ClassBurstStats, analysis::kNumRackClasses> table2_summary(
    const Dataset& dataset, const ClassMap& classes) {
  std::array<ClassBurstStats, analysis::kNumRackClasses> out{};
  for (const auto& burst : dataset.bursts) {
    auto& stats = out[static_cast<std::size_t>(burst_class(burst, classes))];
    ++stats.bursts;
    stats.contended += burst.contended;
    stats.lossy += burst.lossy;
  }
  return out;
}

std::vector<LossBucket> loss_by_contention(const Dataset& dataset,
                                           const ClassMap& classes,
                                           analysis::RackClass rack_class,
                                           int bin_width, int max_contention) {
  const int bins = std::max(1, max_contention / std::max(bin_width, 1));
  std::vector<LossBucket> out(static_cast<std::size_t>(bins));
  for (int b = 0; b < bins; ++b) {
    out[static_cast<std::size_t>(b)].lo = b * bin_width;
    out[static_cast<std::size_t>(b)].hi = (b + 1) * bin_width;
  }
  for (const auto& burst : dataset.bursts) {
    if (burst_class(burst, classes) != rack_class) continue;
    const int bin =
        std::min(burst.max_contention / bin_width, bins - 1);
    auto& bucket = out[static_cast<std::size_t>(bin)];
    ++bucket.bursts;
    bucket.lossy += burst.lossy;
  }
  return out;
}

std::vector<LossBucket> loss_by_length(const Dataset& dataset,
                                       const ClassMap& classes,
                                       analysis::RackClass rack_class,
                                       BurstFilter filter, int max_len_ms) {
  std::vector<LossBucket> out(static_cast<std::size_t>(std::max(max_len_ms, 1)));
  for (int len = 1; len <= max_len_ms; ++len) {
    out[static_cast<std::size_t>(len - 1)].lo = len;
    out[static_cast<std::size_t>(len - 1)].hi = len + 1;
  }
  for (const auto& burst : dataset.bursts) {
    if (burst_class(burst, classes) != rack_class || !passes(burst, filter)) {
      continue;
    }
    const int len = std::clamp<int>(burst.len_ms, 1, max_len_ms);
    auto& bucket = out[static_cast<std::size_t>(len - 1)];
    ++bucket.bursts;
    bucket.lossy += burst.lossy;
  }
  return out;
}

std::vector<LossBucket> loss_by_connections(const Dataset& dataset,
                                            const ClassMap& classes,
                                            analysis::RackClass rack_class,
                                            BurstFilter filter, int bin_width,
                                            int num_bins) {
  std::vector<LossBucket> out(static_cast<std::size_t>(std::max(num_bins, 1)));
  for (int b = 0; b < num_bins; ++b) {
    out[static_cast<std::size_t>(b)].lo = b * bin_width;
    out[static_cast<std::size_t>(b)].hi = (b + 1) * bin_width;
  }
  for (const auto& burst : dataset.bursts) {
    if (burst_class(burst, classes) != rack_class || !passes(burst, filter)) {
      continue;
    }
    const int bin = std::min(static_cast<int>(burst.avg_conns) / bin_width,
                             num_bins - 1);
    auto& bucket = out[static_cast<std::size_t>(bin)];
    ++bucket.bursts;
    bucket.lossy += burst.lossy;
  }
  return out;
}

std::vector<double> busy_hour_contention(const Dataset& dataset,
                                         workload::RegionId region,
                                         int busy_hour) {
  std::vector<double> out;
  for (const auto& rr : dataset.rack_runs) {
    if (rr.region == static_cast<std::uint8_t>(region) &&
        rr.hour == busy_hour) {
      out.push_back(rr.avg_contention);
    }
  }
  return out;
}

}  // namespace msamp::fleet

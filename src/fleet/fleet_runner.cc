#include "fleet/fleet_runner.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <utility>

#include "analysis/burst_stats.h"
#include "analysis/contention.h"
#include "analysis/loss_assoc.h"
#include "fleet/fluid_rack.h"
#include "util/parallel_map.h"
#include "util/thread_pool.h"
#include "workload/diurnal.h"
#include "workload/placement.h"

namespace msamp::fleet {
namespace {

std::uint64_t fnv_step(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * 0x100000001b3ULL;
}

/// Captures a Figure-5-style exemplar from a sync run.
ExemplarRun make_exemplar(const core::SyncRun& sync,
                          const std::vector<int>& contention,
                          const analysis::BurstDetectConfig& cfg,
                          std::uint32_t rack_id, float avg) {
  ExemplarRun ex;
  ex.rack_id = rack_id;
  ex.avg_contention = avg;
  ex.num_servers = static_cast<std::uint16_t>(sync.num_servers());
  ex.num_samples = static_cast<std::uint16_t>(sync.num_samples());
  const std::int64_t threshold = analysis::burst_threshold_bytes(cfg);
  ex.raster.reserve(static_cast<std::size_t>(ex.num_servers) * ex.num_samples);
  for (const auto& series : sync.series) {
    for (const auto& s : series) {
      ex.raster.push_back(s.in_bytes > threshold ? 1 : 0);
    }
  }
  ex.contention.reserve(contention.size());
  for (int c : contention) {
    ex.contention.push_back(static_cast<std::uint16_t>(c));
  }
  return ex;
}

constexpr std::uint8_t kLowExemplar = 1;
constexpr std::uint8_t kHighExemplar = 2;

/// Everything one (region, hour, rack) window contributes to the Dataset.
/// Windows are simulated concurrently; the reduction into the Dataset
/// happens afterwards, strictly in canonical (hour-major, rack-minor)
/// window order, so the assembled dataset is byte-identical for any
/// thread count.
struct WindowOutput {
  bool has_run = false;
  RackRunRecord rack_run;
  std::vector<ServerRunRecord> server_runs;
  std::vector<BurstRecord> bursts;
  std::uint8_t exemplar_kind = 0;  ///< kLowExemplar / kHighExemplar bits
  ExemplarRun exemplar;
};

/// Simulates one window and runs the analysis pipeline on it.  Depends
/// only on (config, rack, hour) — the RNG forks from the master seed keyed
/// on (rack_id, hour), never on execution order — so windows can run on
/// any thread in any order.
WindowOutput simulate_window(const FleetConfig& config,
                             const analysis::BurstDetectConfig& burst_cfg,
                             const workload::RackMeta& rack, int hour) {
  WindowOutput out;
  util::Rng rng(fnv_step(fnv_step(config.seed, static_cast<std::uint64_t>(
                                                   rack.rack_id) +
                                                   1000003),
                         static_cast<std::uint64_t>(hour) + 17));
  FluidRack fluid(rack, config, hour, rng);
  FluidRackResult res = fluid.run();
  const core::SyncRun& sync = res.sync;
  if (sync.num_samples() == 0) return out;
  out.has_run = true;

  const std::vector<int> contention =
      analysis::contention_series(sync, burst_cfg);
  const analysis::ContentionSummary cs =
      analysis::summarize_contention(contention);

  RackRunRecord& rr = out.rack_run;
  rr.rack_id = static_cast<std::uint32_t>(rack.rack_id);
  rr.region = static_cast<std::uint8_t>(rack.region);
  rr.hour = static_cast<std::uint8_t>(hour);
  rr.usable = cs.usable() ? 1 : 0;
  rr.avg_contention = static_cast<float>(cs.avg);
  rr.min_active_contention = static_cast<std::uint16_t>(cs.min_active);
  rr.p90_contention = static_cast<std::uint16_t>(cs.p90);
  rr.max_contention = static_cast<std::uint16_t>(cs.max);
  rr.in_bytes = static_cast<double>(res.delivered_bytes);
  rr.drop_bytes = static_cast<double>(res.drop_bytes);
  rr.ecn_bytes = static_cast<double>(res.ecn_bytes);

  for (std::size_t s = 0; s < sync.num_servers(); ++s) {
    const auto& series = sync.series[s];
    const auto bursts = analysis::detect_bursts(series, burst_cfg);
    const auto stats = analysis::server_run_stats(series, bursts, burst_cfg);
    ServerRunRecord sr;
    sr.rack_id = rr.rack_id;
    sr.region = rr.region;
    sr.hour = rr.hour;
    sr.bursty = stats.bursty ? 1 : 0;
    sr.avg_util = static_cast<float>(stats.avg_util);
    sr.util_inside = static_cast<float>(stats.util_inside);
    sr.util_outside = static_cast<float>(stats.util_outside);
    sr.bursts_per_sec = static_cast<float>(stats.bursts_per_sec);
    sr.conns_inside = static_cast<float>(stats.conns_inside);
    sr.conns_outside = static_cast<float>(stats.conns_outside);
    out.server_runs.push_back(sr);

    if (bursts.empty()) continue;
    const auto lossy = analysis::lossy_bursts(series, bursts, config.loss);
    for (std::size_t b = 0; b < bursts.size(); ++b) {
      BurstRecord rec;
      rec.rack_id = rr.rack_id;
      rec.region = rr.region;
      rec.hour = rr.hour;
      rec.len_ms = static_cast<std::uint16_t>(bursts[b].len);
      rec.volume_bytes = static_cast<float>(bursts[b].volume_bytes);
      int max_cont = 0;
      double conns = 0.0;
      for (std::size_t k = bursts[b].start;
           k < bursts[b].start + bursts[b].len && k < contention.size();
           ++k) {
        max_cont = std::max(max_cont, contention[k]);
        conns += series[k].connections;
      }
      rec.max_contention = static_cast<std::uint16_t>(max_cont);
      rec.avg_conns =
          static_cast<float>(conns / static_cast<double>(bursts[b].len));
      rec.contended = max_cont >= 2 ? 1 : 0;
      rec.lossy = lossy[b] ? 1 : 0;
      out.bursts.push_back(rec);
    }
  }

  // Exemplar candidates for Figure 5 (captured during the busy hour).
  // Which candidate actually lands in the Dataset is decided during the
  // canonical-order reduction: the first qualifying window wins, exactly
  // as in a serial hour-by-hour, rack-by-rack sweep.
  if (hour == workload::kBusyHour) {
    const double high_cut = config.classify.high_threshold;
    if (cs.avg > 0.1 && cs.avg < high_cut / 4.0 && cs.max <= 4) {
      out.exemplar_kind |= kLowExemplar;
    }
    if (cs.avg > high_cut) {
      out.exemplar_kind |= kHighExemplar;
    }
    if (out.exemplar_kind != 0) {
      out.exemplar = make_exemplar(sync, contention, burst_cfg, rr.rack_id,
                                   rr.avg_contention);
    }
  }
  return out;
}

}  // namespace

// Bump whenever the workload/placement/fluid model changes in a way that
// alters generated data, so stale disk caches are regenerated.
// (Parallelization intentionally did NOT bump this: any thread count
// produces the same bytes as the serial sweep, so old caches stay valid.)
constexpr std::uint64_t kModelVersion = 9;

std::uint64_t FleetConfig::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv_step(h, kModelVersion);
  h = fnv_step(h, seed);
  h = fnv_step(h, static_cast<std::uint64_t>(racks_per_region));
  h = fnv_step(h, static_cast<std::uint64_t>(servers_per_rack));
  h = fnv_step(h, static_cast<std::uint64_t>(hours));
  h = fnv_step(h, static_cast<std::uint64_t>(samples_per_run));
  h = fnv_step(h, static_cast<std::uint64_t>(warmup_ms));
  h = fnv_step(h, static_cast<std::uint64_t>(line_rate_gbps * 1000));
  h = fnv_step(h, static_cast<std::uint64_t>(buffer.total_bytes));
  h = fnv_step(h, static_cast<std::uint64_t>(buffer.alpha * 1000));
  h = fnv_step(h, static_cast<std::uint64_t>(buffer.ecn_threshold));
  h = fnv_step(h, static_cast<std::uint64_t>(filter_cpus));
  h = fnv_step(h, static_cast<std::uint64_t>(classify.high_threshold * 100));
  h = fnv_step(h, static_cast<std::uint64_t>(buffer.policy));
  h = fnv_step(h, fabric.enabled ? 1u : 0u);
  h = fnv_step(h, static_cast<std::uint64_t>(fabric.uplink_gbps));
  h = fnv_step(h, static_cast<std::uint64_t>(fabric.smoothing * 1000));
  // `threads` is deliberately absent: thread count never changes the data.
  return h;
}

Dataset run_fleet(const FleetConfig& config,
                  std::function<void(double)> progress) {
  Dataset ds;
  ds.config = config;
  ds.fingerprint = config.fingerprint();

  util::Rng master(config.seed);
  const analysis::BurstDetectConfig burst_cfg = config.burst_config();

  // --- placements for both regions (cheap; stays serial) ---
  std::vector<workload::RackMeta> racks;
  for (const auto region : {workload::RegionId::kRegA, workload::RegionId::kRegB}) {
    util::Rng place_rng = master.fork(static_cast<std::uint64_t>(region) + 7);
    const auto cfg = workload::default_placement(
        region, config.racks_per_region, config.servers_per_rack);
    auto region_racks = workload::generate_racks(
        cfg, static_cast<int>(racks.size()), place_rng);
    racks.insert(racks.end(), region_racks.begin(), region_racks.end());
  }
  for (const auto& rack : racks) {
    RackInfo info;
    info.rack_id = static_cast<std::uint32_t>(rack.rack_id);
    info.region = static_cast<std::uint8_t>(rack.region);
    info.ml_dense = rack.ml_dense ? 1 : 0;
    info.distinct_tasks = static_cast<std::uint16_t>(rack.distinct_tasks());
    info.dominant_share = static_cast<float>(rack.dominant_share());
    info.intensity = static_cast<float>(rack.intensity);
    ds.racks.push_back(info);
  }

  // --- one SyncMillisampler window per rack per hour ---
  // Window w covers hour (w / racks) and rack (w % racks): the same
  // hour-major, rack-minor order the serial sweep used.  Each window is
  // simulated independently (its RNG is keyed on (seed, rack_id, hour))
  // on whichever pool lane picks it up, then the results are folded into
  // the Dataset in canonical window order below.
  const std::size_t total_windows =
      racks.size() * static_cast<std::size_t>(config.hours);
  util::ThreadPool pool(config.threads);
  std::mutex progress_mu;
  std::size_t completed = 0;
  const std::vector<WindowOutput> windows =
      util::parallel_map(pool, total_windows, [&](std::size_t w) {
        const int hour = static_cast<int>(w / racks.size());
        const workload::RackMeta& rack = racks[w % racks.size()];
        WindowOutput out = simulate_window(config, burst_cfg, rack, hour);
        if (progress) {
          // Serialized and strictly increasing: each completion bumps the
          // counter exactly once, and total/total is exactly 1.0.
          std::lock_guard<std::mutex> lock(progress_mu);
          ++completed;
          progress(static_cast<double>(completed) /
                   static_cast<double>(total_windows));
        }
        return out;
      });
  if (progress && total_windows == 0) progress(1.0);

  // --- canonical-order reduction, pre-sized from per-window counts so the
  // multi-million-record vectors at paper scale fill without reallocating ---
  std::size_t n_rack_runs = 0, n_server_runs = 0, n_bursts = 0;
  for (const auto& out : windows) {
    n_rack_runs += out.has_run ? 1 : 0;
    n_server_runs += out.server_runs.size();
    n_bursts += out.bursts.size();
  }
  ds.rack_runs.reserve(n_rack_runs);
  ds.server_runs.reserve(n_server_runs);
  ds.bursts.reserve(n_bursts);
  bool have_low = false, have_high = false;
  for (const auto& out : windows) {
    if (!out.has_run) continue;
    ds.rack_runs.push_back(out.rack_run);
    ds.server_runs.insert(ds.server_runs.end(), out.server_runs.begin(),
                          out.server_runs.end());
    ds.bursts.insert(ds.bursts.end(), out.bursts.begin(), out.bursts.end());
    if (!have_low && (out.exemplar_kind & kLowExemplar) != 0) {
      ds.low_contention_example = out.exemplar;
      have_low = true;
    }
    if (!have_high && (out.exemplar_kind & kHighExemplar) != 0) {
      ds.high_contention_example = out.exemplar;
      have_high = true;
    }
  }

  // --- busy-hour classification (RegA bimodal split, §7.1) ---
  for (auto& info : ds.racks) {
    double sum = 0.0;
    int n = 0;
    for (const auto& rr : ds.rack_runs) {
      if (rr.rack_id == info.rack_id &&
          rr.hour == static_cast<std::uint8_t>(workload::kBusyHour)) {
        sum += rr.avg_contention;
        ++n;
      }
    }
    info.busy_hour_avg_contention =
        n > 0 ? static_cast<float>(sum / n) : 0.0f;
    info.rack_class = static_cast<std::uint8_t>(analysis::classify_rack(
        static_cast<workload::RegionId>(info.region),
        info.busy_hour_avg_contention, config.classify));
  }
  return ds;
}

const Dataset& shared_dataset(const FleetConfig& config,
                              const std::string& cache_path) {
  static std::mutex mu;
  static std::unique_ptr<Dataset> cached;
  std::lock_guard<std::mutex> lock(mu);
  if (cached && cached->fingerprint == config.fingerprint()) return *cached;
  auto ds = std::make_unique<Dataset>();
  if (ds->load(cache_path) && ds->fingerprint == config.fingerprint()) {
    cached = std::move(ds);
    return *cached;
  }
  *ds = run_fleet(config);
  ds->save(cache_path);
  cached = std::move(ds);
  return *cached;
}

}  // namespace msamp::fleet

#include "fleet/fleet_runner.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <ranges>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/burst_stats.h"
#include "analysis/contention.h"
#include "analysis/loss_assoc.h"
#include "fleet/dataset_view.h"
#include "fleet/fluid_rack.h"
#include "fleet/spill_sink.h"
#include "util/spsc_ring.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "workload/diurnal.h"
#include "workload/placement.h"

namespace msamp::fleet {
namespace {

std::uint64_t fnv_step(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * 0x100000001b3ULL;
}

/// Captures a Figure-5-style exemplar from a sync run.
ExemplarRun make_exemplar(const core::SyncRun& sync,
                          const std::vector<int>& contention,
                          const analysis::BurstDetectConfig& cfg,
                          std::uint32_t rack_id, float avg) {
  ExemplarRun ex;
  ex.rack_id = rack_id;
  ex.avg_contention = avg;
  ex.num_servers = static_cast<std::uint16_t>(sync.num_servers());
  ex.num_samples = static_cast<std::uint16_t>(sync.num_samples());
  const std::int64_t threshold = analysis::burst_threshold_bytes(cfg);
  ex.raster.reserve(static_cast<std::size_t>(ex.num_servers) * ex.num_samples);
  for (const auto& series : sync.series) {
    for (const auto& s : series) {
      ex.raster.push_back(s.in_bytes > threshold ? 1 : 0);
    }
  }
  ex.contention.reserve(contention.size());
  for (int c : contention) {
    ex.contention.push_back(static_cast<std::uint16_t>(c));
  }
  return ex;
}

/// Simulates one window and runs the analysis pipeline on it.  Depends
/// only on (config, rack, hour) — the RNG forks from the master seed keyed
/// on (rack_id, hour), never on execution order — so windows can run on
/// any thread in any order.
WindowRecords simulate_window(const FleetConfig& config,
                              const analysis::BurstDetectConfig& burst_cfg,
                              const workload::RackMeta& rack, int hour) {
  WindowRecords out;
  util::Rng rng(fnv_step(fnv_step(config.seed, static_cast<std::uint64_t>(
                                                   rack.rack_id) +
                                                   1000003),
                         static_cast<std::uint64_t>(hour) + 17));
  FluidRack fluid(rack, config, hour, rng);
  FluidRackResult res = fluid.run();
  const core::SyncRun& sync = res.sync;
  if (sync.num_samples() == 0) return out;
  out.has_run = true;

  const std::vector<int> contention =
      analysis::contention_series(sync, burst_cfg);
  const analysis::ContentionSummary cs =
      analysis::summarize_contention(contention);

  RackRunRecord& rr = out.rack_run;
  rr.rack_id = static_cast<std::uint32_t>(rack.rack_id);
  rr.region = static_cast<std::uint8_t>(rack.region);
  rr.hour = static_cast<std::uint8_t>(hour);
  rr.usable = cs.usable() ? 1 : 0;
  rr.avg_contention = static_cast<float>(cs.avg);
  rr.min_active_contention = static_cast<std::uint16_t>(cs.min_active);
  rr.p90_contention = static_cast<std::uint16_t>(cs.p90);
  rr.max_contention = static_cast<std::uint16_t>(cs.max);
  rr.in_bytes = static_cast<double>(res.delivered_bytes);
  rr.drop_bytes = static_cast<double>(res.drop_bytes);
  rr.ecn_bytes = static_cast<double>(res.ecn_bytes);

  for (std::size_t s = 0; s < sync.num_servers(); ++s) {
    const auto& series = sync.series[s];
    const auto bursts = analysis::detect_bursts(series, burst_cfg);
    const auto stats = analysis::server_run_stats(series, bursts, burst_cfg);
    ServerRunRecord sr;
    sr.rack_id = rr.rack_id;
    sr.region = rr.region;
    sr.hour = rr.hour;
    sr.bursty = stats.bursty ? 1 : 0;
    sr.avg_util = static_cast<float>(stats.avg_util);
    sr.util_inside = static_cast<float>(stats.util_inside);
    sr.util_outside = static_cast<float>(stats.util_outside);
    sr.bursts_per_sec = static_cast<float>(stats.bursts_per_sec);
    sr.conns_inside = static_cast<float>(stats.conns_inside);
    sr.conns_outside = static_cast<float>(stats.conns_outside);
    out.server_runs.push_back(sr);

    if (bursts.empty()) continue;
    const auto lossy = analysis::lossy_bursts(series, bursts, config.loss);
    for (std::size_t b = 0; b < bursts.size(); ++b) {
      BurstRecord rec;
      rec.rack_id = rr.rack_id;
      rec.region = rr.region;
      rec.hour = rr.hour;
      rec.len_ms = static_cast<std::uint16_t>(bursts[b].len);
      rec.volume_bytes = static_cast<float>(bursts[b].volume_bytes);
      const std::size_t b_lo = bursts[b].start;
      const std::size_t b_hi =
          std::min(bursts[b].start + bursts[b].len, contention.size());
      int max_cont = 0;
      for (std::size_t k = b_lo; k < b_hi; ++k) {
        max_cont = std::max(max_cont, contention[k]);
      }
      const double conns = util::canonical_sum_over(
          std::views::iota(b_lo, b_hi),
          [&](std::size_t k) { return series[k].connections; });
      rec.max_contention = static_cast<std::uint16_t>(max_cont);
      rec.avg_conns =
          static_cast<float>(conns / static_cast<double>(bursts[b].len));
      rec.contended = max_cont >= 2 ? 1 : 0;
      rec.lossy = lossy[b] ? 1 : 0;
      out.bursts.push_back(rec);
    }
  }

  // Exemplar candidates for Figure 5 (captured during the busy hour).
  // Which candidate actually lands in the Dataset is decided by the sink's
  // canonical-order fold: the first qualifying window wins, exactly as in
  // a serial hour-by-hour, rack-by-rack sweep.
  if (hour == workload::kBusyHour) {
    const double high_cut = config.classify.high_threshold;
    if (cs.avg > 0.1 && cs.avg < high_cut / 4.0 && cs.max <= 4) {
      out.exemplar_kind |= kLowExemplar;
    }
    if (cs.avg > high_cut) {
      out.exemplar_kind |= kHighExemplar;
    }
    if (out.exemplar_kind != 0) {
      out.exemplar = make_exemplar(sync, contention, burst_cfg, rr.rack_id,
                                   rr.avg_contention);
    }
  }
  return out;
}

}  // namespace

// Bump whenever the workload/placement/fluid model changes in a way that
// alters generated data for an unchanged config, so stale disk caches are
// regenerated.  The rules:
//  - model/behavior change (same config, different records) -> bump this;
//  - new config knob entering the data -> add it to fingerprint() below
//    (which re-keys every cache on its own; no version bump needed) —
//    msamp_lint's fingerprint-coverage rule fails the build until every
//    FleetConfig field is either hashed here or `// fingerprint-exempt:`
//    at its declaration (docs/STATIC_ANALYSIS.md);
//  - wire-format change -> bump kVersion in dataset.cc instead.
// (Parallelization and sharding intentionally did NOT bump this: any
// thread count or shard split produces the same bytes as the serial
// sweep, so old caches stay valid across execution strategies.)
constexpr std::uint64_t kModelVersion = 9;

std::uint64_t FleetConfig::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv_step(h, kModelVersion);
  h = fnv_step(h, seed);
  h = fnv_step(h, static_cast<std::uint64_t>(racks_per_region));
  h = fnv_step(h, static_cast<std::uint64_t>(servers_per_rack));
  h = fnv_step(h, static_cast<std::uint64_t>(hours));
  h = fnv_step(h, static_cast<std::uint64_t>(samples_per_run));
  h = fnv_step(h, static_cast<std::uint64_t>(warmup_ms));
  h = fnv_step(h, static_cast<std::uint64_t>(line_rate_gbps * 1000));
  h = fnv_step(h, static_cast<std::uint64_t>(buffer.total_bytes));
  h = fnv_step(h, static_cast<std::uint64_t>(buffer.alpha * 1000));
  h = fnv_step(h, static_cast<std::uint64_t>(buffer.ecn_threshold));
  h = fnv_step(h, static_cast<std::uint64_t>(buffer.reserve_per_queue));
  h = fnv_step(h, static_cast<std::uint64_t>(buffer.quadrants));
  h = fnv_step(h, static_cast<std::uint64_t>(buffer.burst_alpha_boost * 1000));
  h = fnv_step(h, static_cast<std::uint64_t>(buffer.delay.target_delay_ms * 1e6));
  h = fnv_step(h, static_cast<std::uint64_t>(buffer.delay.min_gain * 1000));
  h = fnv_step(h, static_cast<std::uint64_t>(buffer.delay.max_gain * 1000));
  h = fnv_step(h, static_cast<std::uint64_t>(buffer.delay.drain_gbps * 1000));
  h = fnv_step(h, static_cast<std::uint64_t>(filter_cpus));
  h = fnv_step(h, static_cast<std::uint64_t>(classify.high_threshold * 100));
  h = fnv_step(h, static_cast<std::uint64_t>(buffer.policy));
  h = fnv_step(h, fabric.enabled ? 1u : 0u);
  h = fnv_step(h, static_cast<std::uint64_t>(fabric.uplink_gbps));
  h = fnv_step(h, static_cast<std::uint64_t>(fabric.smoothing * 1000));
  h = fnv_step(h, static_cast<std::uint64_t>(rtt_ms * 1e6));
  h = fnv_step(h, static_cast<std::uint64_t>(mss));
  h = fnv_step(h, static_cast<std::uint64_t>(loss.rtt_shift_samples));
  h = fnv_step(h, static_cast<std::uint64_t>(loss.lag_samples));
  h = fnv_step(h, static_cast<std::uint64_t>(clocks.offset_stddev));
  h = fnv_step(h, static_cast<std::uint64_t>(clocks.offset_max));
  // `threads` is deliberately absent: thread count never changes the data
  // (and neither does the shard split — see docs/PERFORMANCE.md).
  return h;
}

void run_fleet(const FleetConfig& config, const ShardSpec& shard,
               WindowSink& sink, std::function<void(double)> progress) {
  if (!shard.valid()) {
    throw std::invalid_argument("invalid shard spec " +
                                std::to_string(shard.index) + "/" +
                                std::to_string(shard.count));
  }
  const std::vector<workload::RackMeta> racks = fleet_racks(config);
  const analysis::BurstDetectConfig burst_cfg = config.burst_config();

  // --- this shard's slice of the canonical window sequence ---
  // Window w covers hour (w / racks) and rack (w % racks): the same
  // hour-major, rack-minor order the serial sweep used.  Each window is
  // simulated independently (its RNG is keyed on (seed, rack_id, hour))
  // on whichever pool lane picks it up; completed windows are handed to
  // the sink strictly in canonical order.
  const std::size_t total_windows =
      racks.size() * static_cast<std::size_t>(config.hours);
  const std::size_t begin = shard.begin(total_windows);
  const std::size_t end = shard.end(total_windows);
  const std::size_t shard_windows = end - begin;

  util::ThreadPool pool(config.threads);
  const int lanes = pool.size();
  std::mutex progress_mu;
  std::size_t completed = 0;
  auto note_progress = [&] {
    if (!progress) return;
    // Serialized and strictly increasing: each completion bumps the
    // counter exactly once, and total/total is exactly 1.0.
    std::lock_guard<std::mutex> lock(progress_mu);
    ++completed;
    progress(static_cast<double>(completed) /
             static_cast<double>(shard_windows));
  };

  if (lanes == 1) {
    // Single lane: simulate and stream straight into the sink — no
    // consumer thread, no rings, and trivially the canonical order.
    for (std::size_t w = begin; w < end; ++w) {
      const int hour = static_cast<int>(w / racks.size());
      const workload::RackMeta& rack = racks[w % racks.size()];
      sink.on_window(w, simulate_window(config, burst_cfg, rack, hour));
      note_progress();
    }
    if (progress && shard_windows == 0) progress(1.0);
    return;
  }

  // Windows are simulated in bounded chunks: each chunk fans out over the
  // pool while a dedicated consumer thread merges completed windows into
  // the sink in canonical order.  Peak memory is one chunk of window
  // records, independent of shard (or day) size.
  //
  // Handoff: each lane owns one SPSC ring and pushes the *slot index* of
  // every window it finishes; the ring's release/acquire edge publishes
  // the slot's contents to the consumer, which marks indices ready and
  // advances a cursor so the sink sees windows strictly in canonical
  // order with no gaps — the bytes cannot depend on which lane ran which
  // window, or in what order.  The rings replace the old mutexed
  // collect-then-drain step on the caller thread.
  const std::size_t chunk_windows =
      std::max<std::size_t>(static_cast<std::size_t>(lanes) * 8, 64);
  constexpr std::size_t kRingCapacity = 256;
  std::vector<std::unique_ptr<util::SpscRing<std::size_t>>> rings;
  rings.reserve(static_cast<std::size_t>(lanes));
  for (int l = 0; l < lanes; ++l) {
    rings.push_back(
        std::make_unique<util::SpscRing<std::size_t>>(kRingCapacity));
  }

  for (std::size_t chunk = begin; chunk < end; chunk += chunk_windows) {
    const std::size_t n = std::min(chunk_windows, end - chunk);
    std::vector<WindowRecords> slots(n);
    // `abort` is the one cross-thread escape hatch: the consumer raises it
    // when the sink throws (so blocked producers stop spinning on a full
    // ring), and the producer side raises it when a body throws (so the
    // consumer stops waiting for windows that will never arrive).
    std::atomic<bool> abort{false};
    std::exception_ptr consumer_error;
    std::thread consumer([&] {
      try {
        std::vector<unsigned char> ready(n, 0);
        std::size_t cursor = 0;
        while (cursor < n && !abort.load(std::memory_order_acquire)) {
          bool popped = false;
          for (auto& ring : rings) {
            std::size_t i = 0;
            while (ring->try_pop(i)) {
              ready[i] = 1;
              popped = true;
            }
          }
          while (cursor < n && ready[cursor]) {
            sink.on_window(chunk + cursor, std::move(slots[cursor]));
            ++cursor;
          }
          if (!popped) std::this_thread::yield();
        }
      } catch (...) {
        consumer_error = std::current_exception();
        abort.store(true, std::memory_order_release);
      }
    });
    try {
      pool.parallel_for(
          n, std::function<void(int, std::size_t)>(
                 [&](int lane, std::size_t i) {
                   const std::size_t w = chunk + i;
                   const int hour = static_cast<int>(w / racks.size());
                   const workload::RackMeta& rack = racks[w % racks.size()];
                   slots[i] = simulate_window(config, burst_cfg, rack, hour);
                   note_progress();
                   while (!rings[static_cast<std::size_t>(lane)]->try_push(
                       std::size_t{i})) {
                     if (abort.load(std::memory_order_acquire)) return;
                     std::this_thread::yield();
                   }
                 }));
    } catch (...) {
      abort.store(true, std::memory_order_release);
      consumer.join();
      throw;
    }
    consumer.join();
    if (consumer_error) std::rethrow_exception(consumer_error);
  }
  if (progress && shard_windows == 0) progress(1.0);
}

Dataset run_fleet(const FleetConfig& config,
                  std::function<void(double)> progress) {
  DatasetBuilder builder(config);
  run_fleet(config, ShardSpec{}, builder, std::move(progress));
  return builder.take();
}

namespace {

/// Serves the shared cache file for `config`: reuses it when the
/// fingerprint matches and it covers the full day (a partial shard file
/// is never silently served), otherwise regenerates it through a
/// SpillSink (bounded RSS even at cluster scale) and maps the result.
/// Callers hold the shared_* mutex.
util::Status ensure_cache_file(const FleetConfig& config,
                               const std::string& cache_path,
                               DatasetView* view) {
  if (Dataset::open_mapped(cache_path, view) &&
      view->fingerprint() == config.fingerprint() &&
      view->shard().full_range()) {
    return util::Status::ok();
  }
  SpillSink sink(config, ShardSpec{}, cache_path);
  run_fleet(config, ShardSpec{}, sink);
  if (auto st = sink.finalize(); !st) return st;
  auto st = Dataset::open_mapped(cache_path, view);
  if (st && view->fingerprint() != config.fingerprint()) {
    return util::Status::error("freshly generated cache has the wrong "
                               "fingerprint",
                               cache_path);
  }
  return st;
}

}  // namespace

const DatasetView& shared_view(const FleetConfig& config,
                               const std::string& cache_path) {
  static std::mutex mu;
  static std::unique_ptr<DatasetView> cached;
  static std::uint64_t cached_fingerprint = 0;
  std::lock_guard<std::mutex> lock(mu);
  if (cached && cached->ok() && cached_fingerprint == config.fingerprint()) {
    return *cached;
  }
  auto view = std::make_unique<DatasetView>();
  if (auto st = ensure_cache_file(config, cache_path, view.get()); !st) {
    throw std::runtime_error("shared_view: " + st.to_string());
  }
  cached = std::move(view);
  cached_fingerprint = config.fingerprint();
  return *cached;
}

const Dataset& shared_dataset(const FleetConfig& config,
                              const std::string& cache_path) {
  static std::mutex mu;
  static std::unique_ptr<Dataset> cached;
  std::lock_guard<std::mutex> lock(mu);
  if (cached && cached->fingerprint == config.fingerprint()) return *cached;
  DatasetView view;
  if (auto st = ensure_cache_file(config, cache_path, &view); !st) {
    throw std::runtime_error("shared_dataset: " + st.to_string());
  }
  cached = std::make_unique<Dataset>(Dataset::from_view(view));
  return *cached;
}

std::uint64_t model_version() noexcept { return kModelVersion; }

}  // namespace msamp::fleet

#include "fleet/dataset_view.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <filesystem>
#include <utility>

#include "fleet/wire.h"

namespace msamp::fleet {

namespace {

template <typename T>
std::span<const T> col_span(const std::uint8_t* base, std::uint64_t offset,
                            std::uint64_t count) {
  // v6 columns are kSegmentAlign-aligned relative to the file start
  // (enforced below and by the static_asserts in wire.h) and init()
  // rejects a base pointer that is not kMaxColumnAlign-aligned, so the
  // cast pointer is always properly aligned for T — a precondition the
  // SIMD kernels reading these spans rely on.
  static_assert(alignof(T) <= wire::kMaxColumnAlign,
                "column element alignment exceeds the v6 guarantee");
  static_assert(std::is_trivially_copyable_v<T>);
  return {reinterpret_cast<const T*>(base + offset),
          static_cast<std::size_t>(count)};
}

}  // namespace

RackInfo RackInfoColumns::operator[](std::size_t i) const {
  RackInfo v;
  v.rack_id = rack_id[i];
  v.region = region[i];
  v.ml_dense = ml_dense[i];
  v.distinct_tasks = distinct_tasks[i];
  v.dominant_share = dominant_share[i];
  v.intensity = intensity[i];
  v.busy_hour_avg_contention = busy_hour_avg_contention[i];
  v.rack_class = rack_class[i];
  return v;
}

RackRunRecord RackRunColumns::operator[](std::size_t i) const {
  RackRunRecord v;
  v.rack_id = rack_id[i];
  v.region = region[i];
  v.hour = hour[i];
  v.usable = usable[i];
  v.avg_contention = avg_contention[i];
  v.min_active_contention = min_active_contention[i];
  v.p90_contention = p90_contention[i];
  v.max_contention = max_contention[i];
  v.in_bytes = in_bytes[i];
  v.drop_bytes = drop_bytes[i];
  v.ecn_bytes = ecn_bytes[i];
  return v;
}

RackRunColumns RackRunColumns::slice(std::size_t off, std::size_t n) const {
  RackRunColumns s;
  s.rack_id = rack_id.subspan(off, n);
  s.region = region.subspan(off, n);
  s.hour = hour.subspan(off, n);
  s.usable = usable.subspan(off, n);
  s.avg_contention = avg_contention.subspan(off, n);
  s.min_active_contention = min_active_contention.subspan(off, n);
  s.p90_contention = p90_contention.subspan(off, n);
  s.max_contention = max_contention.subspan(off, n);
  s.in_bytes = in_bytes.subspan(off, n);
  s.drop_bytes = drop_bytes.subspan(off, n);
  s.ecn_bytes = ecn_bytes.subspan(off, n);
  return s;
}

ServerRunRecord ServerRunColumns::operator[](std::size_t i) const {
  ServerRunRecord v;
  v.rack_id = rack_id[i];
  v.region = region[i];
  v.hour = hour[i];
  v.bursty = bursty[i];
  v.avg_util = avg_util[i];
  v.util_inside = util_inside[i];
  v.util_outside = util_outside[i];
  v.bursts_per_sec = bursts_per_sec[i];
  v.conns_inside = conns_inside[i];
  v.conns_outside = conns_outside[i];
  return v;
}

ServerRunColumns ServerRunColumns::slice(std::size_t off,
                                         std::size_t n) const {
  ServerRunColumns s;
  s.rack_id = rack_id.subspan(off, n);
  s.region = region.subspan(off, n);
  s.hour = hour.subspan(off, n);
  s.bursty = bursty.subspan(off, n);
  s.avg_util = avg_util.subspan(off, n);
  s.util_inside = util_inside.subspan(off, n);
  s.util_outside = util_outside.subspan(off, n);
  s.bursts_per_sec = bursts_per_sec.subspan(off, n);
  s.conns_inside = conns_inside.subspan(off, n);
  s.conns_outside = conns_outside.subspan(off, n);
  return s;
}

BurstRecord BurstColumns::operator[](std::size_t i) const {
  BurstRecord v;
  v.rack_id = rack_id[i];
  v.region = region[i];
  v.hour = hour[i];
  v.len_ms = len_ms[i];
  v.volume_bytes = volume_bytes[i];
  v.max_contention = max_contention[i];
  v.avg_conns = avg_conns[i];
  v.contended = contended[i];
  v.lossy = lossy[i];
  return v;
}

BurstColumns BurstColumns::slice(std::size_t off, std::size_t n) const {
  BurstColumns s;
  s.rack_id = rack_id.subspan(off, n);
  s.region = region.subspan(off, n);
  s.hour = hour.subspan(off, n);
  s.len_ms = len_ms.subspan(off, n);
  s.volume_bytes = volume_bytes.subspan(off, n);
  s.max_contention = max_contention.subspan(off, n);
  s.avg_conns = avg_conns.subspan(off, n);
  s.contended = contended.subspan(off, n);
  s.lossy = lossy.subspan(off, n);
  return s;
}

WindowCounts WindowView::counts() const {
  WindowCounts c;
  c.has_run = has_run ? 1 : 0;
  c.server_runs = static_cast<std::uint32_t>(server_runs.size());
  c.bursts = static_cast<std::uint32_t>(bursts.size());
  return c;
}

DatasetView::~DatasetView() { close(); }

DatasetView::DatasetView(DatasetView&& other) noexcept {
  *this = std::move(other);
}

DatasetView& DatasetView::operator=(DatasetView&& other) noexcept {
  if (this == &other) return *this;
  close();
  data_ = other.data_;
  size_ = other.size_;
  map_base_ = other.map_base_;
  map_len_ = other.map_len_;
  fingerprint_ = other.fingerprint_;
  config_ = other.config_;
  shard_ = other.shard_;
  window_begin_ = other.window_begin_;
  window_end_ = other.window_end_;
  windows_ = other.windows_;
  racks_ = other.racks_;
  rack_runs_ = other.rack_runs_;
  server_runs_ = other.server_runs_;
  bursts_ = other.bursts_;
  low_ = std::move(other.low_);
  high_ = std::move(other.high_);
  path_ = std::move(other.path_);
  other.data_ = nullptr;
  other.size_ = 0;
  other.map_base_ = nullptr;
  other.map_len_ = 0;
  return *this;
}

void DatasetView::close() {
  if (map_base_ != nullptr) {
    ::munmap(map_base_, map_len_);
  }
  map_base_ = nullptr;
  map_len_ = 0;
  data_ = nullptr;
  size_ = 0;
  windows_ = {};
  racks_ = {};
  rack_runs_ = {};
  server_runs_ = {};
  bursts_ = {};
  low_ = {};
  high_ = {};
  path_.clear();
}

util::Status DatasetView::open(const std::string& path, DatasetView* out) {
  out->close();
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec)) {
    return util::Status::error("not a regular file", path);
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return util::Status::error("cannot open for reading", path);
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return util::Status::error("cannot stat", path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return util::Status::error("empty file", path, 0);
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (base == MAP_FAILED) {
    return util::Status::error("mmap failed", path);
  }
  auto status =
      out->init(static_cast<const std::uint8_t*>(base), size, path);
  if (!status) {
    ::munmap(base, size);
    out->close();
    return status;
  }
  out->map_base_ = base;
  out->map_len_ = size;
  return util::Status::ok();
}

util::Status DatasetView::attach(const std::uint8_t* data, std::size_t size,
                                 DatasetView* out) {
  out->close();
  auto status = out->init(data, size, "<memory>");
  if (!status) out->close();
  return status;
}

util::Status DatasetView::init(const std::uint8_t* data, std::size_t size,
                               std::string path) {
  // The zero-copy column spans reinterpret the mapping as u64/double
  // arrays; a misaligned base (possible via attach() on an arbitrary
  // buffer, never via mmap) must fail closed, not hand out UB spans.
  if (reinterpret_cast<std::uintptr_t>(data) % wire::kMaxColumnAlign != 0) {
    return util::Status::error(
        "dataset base pointer is not 8-byte aligned (zero-copy column "
        "access needs an aligned mapping)",
        path);
  }
  wire::V6Header h;
  wire::V6Layout lay;
  if (auto st = wire::read_header_v6(data, size, size, &h, &lay); !st) {
    return st.with_path(path);
  }
  // Layout recomputation guarantees page-aligned column offsets today;
  // keep a cheap runtime tie-out so a future layout change (or a
  // hand-corrupted directory accepted by a weakened header check) can
  // never surface as a misaligned load.
  for (const auto& section : lay.columns) {
    for (const std::uint64_t off : section) {
      if (off % wire::kMaxColumnAlign != 0) {
        return util::Status::error(
            "column offset " + std::to_string(off) +
                " is not aligned for zero-copy access",
            path);
      }
    }
  }
  data_ = data;
  size_ = size;
  fingerprint_ = h.fingerprint;
  config_ = h.config;
  shard_ = h.shard;
  window_begin_ = h.window_begin;
  window_end_ = h.window_end;
  path_ = std::move(path);

  const auto& wcols = lay.columns[wire::kSecWindows];
  const std::uint64_t nw = h.counts.windows;
  windows_.has_run = col_span<std::uint8_t>(data, wcols[0], nw);
  windows_.server_runs = col_span<std::uint32_t>(data, wcols[1], nw);
  windows_.bursts = col_span<std::uint32_t>(data, wcols[2], nw);
  windows_.run_off = col_span<std::uint64_t>(data, wcols[3], nw);
  windows_.server_off = col_span<std::uint64_t>(data, wcols[4], nw);
  windows_.burst_off = col_span<std::uint64_t>(data, wcols[5], nw);

  const auto& rcols = lay.columns[wire::kSecRacks];
  const std::uint64_t nr = h.counts.racks;
  racks_.rack_id = col_span<std::uint32_t>(data, rcols[0], nr);
  racks_.region = col_span<std::uint8_t>(data, rcols[1], nr);
  racks_.ml_dense = col_span<std::uint8_t>(data, rcols[2], nr);
  racks_.distinct_tasks = col_span<std::uint16_t>(data, rcols[3], nr);
  racks_.dominant_share = col_span<float>(data, rcols[4], nr);
  racks_.intensity = col_span<float>(data, rcols[5], nr);
  racks_.busy_hour_avg_contention = col_span<float>(data, rcols[6], nr);
  racks_.rack_class = col_span<std::uint8_t>(data, rcols[7], nr);

  const auto& rrcols = lay.columns[wire::kSecRackRuns];
  const std::uint64_t nrr = h.counts.rack_runs;
  rack_runs_.rack_id = col_span<std::uint32_t>(data, rrcols[0], nrr);
  rack_runs_.region = col_span<std::uint8_t>(data, rrcols[1], nrr);
  rack_runs_.hour = col_span<std::uint8_t>(data, rrcols[2], nrr);
  rack_runs_.usable = col_span<std::uint8_t>(data, rrcols[3], nrr);
  rack_runs_.avg_contention = col_span<float>(data, rrcols[4], nrr);
  rack_runs_.min_active_contention =
      col_span<std::uint16_t>(data, rrcols[5], nrr);
  rack_runs_.p90_contention = col_span<std::uint16_t>(data, rrcols[6], nrr);
  rack_runs_.max_contention = col_span<std::uint16_t>(data, rrcols[7], nrr);
  rack_runs_.in_bytes = col_span<double>(data, rrcols[8], nrr);
  rack_runs_.drop_bytes = col_span<double>(data, rrcols[9], nrr);
  rack_runs_.ecn_bytes = col_span<double>(data, rrcols[10], nrr);

  const auto& scols = lay.columns[wire::kSecServerRuns];
  const std::uint64_t ns = h.counts.server_runs;
  server_runs_.rack_id = col_span<std::uint32_t>(data, scols[0], ns);
  server_runs_.region = col_span<std::uint8_t>(data, scols[1], ns);
  server_runs_.hour = col_span<std::uint8_t>(data, scols[2], ns);
  server_runs_.bursty = col_span<std::uint8_t>(data, scols[3], ns);
  server_runs_.avg_util = col_span<float>(data, scols[4], ns);
  server_runs_.util_inside = col_span<float>(data, scols[5], ns);
  server_runs_.util_outside = col_span<float>(data, scols[6], ns);
  server_runs_.bursts_per_sec = col_span<float>(data, scols[7], ns);
  server_runs_.conns_inside = col_span<float>(data, scols[8], ns);
  server_runs_.conns_outside = col_span<float>(data, scols[9], ns);

  const auto& bcols = lay.columns[wire::kSecBursts];
  const std::uint64_t nb = h.counts.bursts;
  bursts_.rack_id = col_span<std::uint32_t>(data, bcols[0], nb);
  bursts_.region = col_span<std::uint8_t>(data, bcols[1], nb);
  bursts_.hour = col_span<std::uint8_t>(data, bcols[2], nb);
  bursts_.len_ms = col_span<std::uint16_t>(data, bcols[3], nb);
  bursts_.volume_bytes = col_span<float>(data, bcols[4], nb);
  bursts_.max_contention = col_span<std::uint16_t>(data, bcols[5], nb);
  bursts_.avg_conns = col_span<float>(data, bcols[6], nb);
  bursts_.contended = col_span<std::uint8_t>(data, bcols[7], nb);
  bursts_.lossy = col_span<std::uint8_t>(data, bcols[8], nb);

  // The window directory must tie out exactly: offsets are the running
  // sums of the counts, and the totals match the record sections.  After
  // this check every window(ordinal) slice is bounds-safe by construction.
  std::uint64_t runs = 0, servers = 0, bursts = 0;
  for (std::uint64_t i = 0; i < nw; ++i) {
    if (windows_.has_run[i] > 1) {
      return util::Status::error(
          "window directory has_run out of range at window " +
              std::to_string(i),
          path_, static_cast<std::int64_t>(wcols[0] + i));
    }
    if (windows_.run_off[i] != runs || windows_.server_off[i] != servers ||
        windows_.burst_off[i] != bursts) {
      return util::Status::error(
          "window directory offsets disagree with counts at window " +
              std::to_string(i),
          path_, static_cast<std::int64_t>(wcols[3] + i * 8));
    }
    runs += windows_.has_run[i];
    servers += windows_.server_runs[i];
    bursts += windows_.bursts[i];
  }
  if (runs != nrr || servers != ns || bursts != nb) {
    return util::Status::error(
        "window directory totals disagree with the record sections", path_,
        static_cast<std::int64_t>(lay.dir[wire::kSecWindows].offset));
  }

  // Exemplars: the row-encoded tail must decode and consume the section
  // exactly.
  const auto& ex = lay.dir[wire::kSecExemplars];
  wire::Reader er(data + ex.offset, static_cast<std::size_t>(ex.bytes));
  if (!wire::get_exemplar(er, &low_) || !wire::get_exemplar(er, &high_) ||
      er.remaining() != 0) {
    return util::Status::error(
        "corrupt exemplar section", path_,
        static_cast<std::int64_t>(ex.offset + er.pos));
  }
  return util::Status::ok();
}

std::uint64_t DatasetView::total_windows() const {
  return 2ull * static_cast<std::uint64_t>(config_.racks_per_region) *
         static_cast<std::uint64_t>(config_.hours);
}

WindowKey DatasetView::key_of(std::uint64_t absolute_index) const {
  const std::uint64_t total_racks =
      2ull * static_cast<std::uint64_t>(config_.racks_per_region);
  WindowKey k;
  k.rack_ordinal = static_cast<std::uint32_t>(absolute_index % total_racks);
  k.hour = static_cast<std::uint8_t>(absolute_index / total_racks);
  k.rack_id = racks_.rack_id[k.rack_ordinal];
  k.region = racks_.region[k.rack_ordinal];
  return k;
}

WindowView DatasetView::window(std::size_t ordinal) const {
  WindowView v;
  v.index = window_begin_ + ordinal;
  v.key = key_of(v.index);
  v.has_run = windows_.has_run[ordinal] != 0;
  v.rack_run = rack_runs_.slice(
      static_cast<std::size_t>(windows_.run_off[ordinal]),
      v.has_run ? 1 : 0);
  v.server_runs = server_runs_.slice(
      static_cast<std::size_t>(windows_.server_off[ordinal]),
      windows_.server_runs[ordinal]);
  v.bursts =
      bursts_.slice(static_cast<std::size_t>(windows_.burst_off[ordinal]),
                    windows_.bursts[ordinal]);
  return v;
}

analysis::RackClass DatasetView::class_of(std::uint32_t rack_id) const {
  for (std::size_t i = 0; i < racks_.size(); ++i) {
    if (racks_.rack_id[i] == rack_id) {
      return static_cast<analysis::RackClass>(racks_.rack_class[i]);
    }
  }
  return analysis::RackClass::kRegATypical;
}

std::vector<RackInfo> DatasetView::rack_table() const {
  std::vector<RackInfo> out;
  out.reserve(racks_.size());
  for (std::size_t i = 0; i < racks_.size(); ++i) out.push_back(racks_[i]);
  return out;
}

// --- Dataset <-> view adapters -----------------------------------------

util::Status Dataset::open_mapped(const std::string& path,
                                  DatasetView* out) {
  return DatasetView::open(path, out);
}

Dataset Dataset::from_view(const DatasetView& v) {
  Dataset ds;
  ds.fingerprint = v.fingerprint();
  ds.config = v.config();
  ds.shard = v.shard();
  ds.window_begin = v.window_begin();
  ds.window_end = v.window_end();
  const auto& w = v.windows();
  ds.window_counts.reserve(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    WindowCounts c;
    c.has_run = w.has_run[i];
    c.server_runs = w.server_runs[i];
    c.bursts = w.bursts[i];
    ds.window_counts.push_back(c);
  }
  ds.racks = v.rack_table();
  ds.rack_runs.reserve(v.rack_runs().size());
  for (std::size_t i = 0; i < v.rack_runs().size(); ++i) {
    ds.rack_runs.push_back(v.rack_runs()[i]);
  }
  ds.server_runs.reserve(v.server_runs().size());
  for (std::size_t i = 0; i < v.server_runs().size(); ++i) {
    ds.server_runs.push_back(v.server_runs()[i]);
  }
  ds.bursts.reserve(v.bursts().size());
  for (std::size_t i = 0; i < v.bursts().size(); ++i) {
    ds.bursts.push_back(v.bursts()[i]);
  }
  ds.low_contention_example = v.low_contention_example();
  ds.high_contention_example = v.high_contention_example();
  return ds;
}

util::Status migrate_dataset_file(const std::string& in_path,
                                  const std::string& out_path) {
  Dataset ds;
  if (auto st = ds.load(in_path); !st) return st;
  if (auto st = ds.save(out_path); !st) return st;
  // Fingerprint check: the rewritten file must re-open with the stored
  // fingerprint and counts intact (migration is a re-layout, never a
  // recompute — v4 fingerprints came from an older hash and must survive).
  DatasetView check;
  if (auto st = DatasetView::open(out_path, &check); !st) return st;
  if (check.fingerprint() != ds.fingerprint ||
      check.num_windows() != ds.window_counts.size() ||
      check.rack_runs().size() != ds.rack_runs.size() ||
      check.server_runs().size() != ds.server_runs.size() ||
      check.bursts().size() != ds.bursts.size()) {
    return util::Status::error(
        "migrated file disagrees with the source (fingerprint or counts)",
        out_path);
  }
  return util::Status::ok();
}

}  // namespace msamp::fleet

#include "fleet/merge.h"

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <utility>

#include "fleet/shard.h"

namespace msamp::fleet {
namespace {

bool same_rack_info(const RackInfo& a, const RackInfo& b) {
  // Classification fields are intentionally excluded: shards leave them
  // zeroed, and a full-range dataset passed to a single-shard merge has
  // them filled; the merge recomputes them either way.
  return a.rack_id == b.rack_id && a.region == b.region &&
         a.ml_dense == b.ml_dense && a.distinct_tasks == b.distinct_tasks &&
         a.dominant_share == b.dominant_share && a.intensity == b.intensity;
}

}  // namespace

std::optional<Dataset> merge_datasets(std::vector<Dataset> shards,
                                      std::string* error) {
  const auto fail = [&](std::string msg) -> std::optional<Dataset> {
    if (error != nullptr) *error = std::move(msg);
    return std::nullopt;
  };
  if (shards.empty()) return fail("no shards to merge");

  std::sort(shards.begin(), shards.end(),
            [](const Dataset& a, const Dataset& b) {
              return a.shard.index < b.shard.index;
            });
  const Dataset& first = shards.front();
  const std::uint32_t count = first.shard.count;
  if (shards.size() != count) {
    return fail("expected " + std::to_string(count) + " shards (from shard " +
                std::to_string(first.shard.index) + "'s header), got " +
                std::to_string(shards.size()));
  }
  const std::uint64_t total =
      2ull * static_cast<std::uint64_t>(first.config.racks_per_region) *
      static_cast<std::uint64_t>(first.config.hours);

  std::uint64_t n_runs = 0, n_servers = 0, n_bursts = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const Dataset& s = shards[i];
    const std::string who = "shard " + std::to_string(s.shard.index) + "/" +
                            std::to_string(s.shard.count);
    if (s.shard.count != count) {
      return fail(who + ": shard count disagrees with shard " +
                  std::to_string(first.shard.index) + "/" +
                  std::to_string(count));
    }
    if (s.shard.index != i) {
      if (i > 0 && s.shard.index == shards[i - 1].shard.index) {
        return fail("duplicate shard " + std::to_string(s.shard.index) + "/" +
                    std::to_string(count));
      }
      return fail("missing shard " + std::to_string(i) + "/" +
                  std::to_string(count));
    }
    if (s.fingerprint != first.fingerprint) {
      return fail(who + ": fingerprint mismatch (generated from a different "
                        "config, seed, or model version)");
    }
    if (s.window_begin != s.shard.begin(static_cast<std::size_t>(total)) ||
        s.window_end != s.shard.end(static_cast<std::size_t>(total))) {
      return fail(who + ": covers windows [" +
                  std::to_string(s.window_begin) + ", " +
                  std::to_string(s.window_end) +
                  "), not its canonical slice of [0, " +
                  std::to_string(total) + ")");
    }
    if (s.window_counts.size() != s.window_end - s.window_begin) {
      return fail(who + ": window count table has " +
                  std::to_string(s.window_counts.size()) + " entries for " +
                  std::to_string(s.window_end - s.window_begin) + " windows");
    }
    std::uint64_t runs = 0, servers = 0, bursts = 0;
    for (const auto& c : s.window_counts) {
      runs += c.has_run ? 1 : 0;
      servers += c.server_runs;
      bursts += c.bursts;
    }
    if (runs != s.rack_runs.size() || servers != s.server_runs.size() ||
        bursts != s.bursts.size()) {
      return fail(who + ": record vectors disagree with its window count "
                        "table");
    }
    if (s.racks.size() != first.racks.size() ||
        !std::equal(s.racks.begin(), s.racks.end(), first.racks.begin(),
                    same_rack_info)) {
      return fail(who + ": rack table differs from shard " +
                  std::to_string(first.shard.index) + "'s");
    }
    n_runs += runs;
    n_servers += servers;
    n_bursts += bursts;
  }

  Dataset out;
  out.fingerprint = first.fingerprint;
  out.config = first.config;
  out.shard = ShardSpec{};  // full range
  out.window_begin = 0;
  out.window_end = total;
  out.window_counts.reserve(static_cast<std::size_t>(total));
  out.racks = std::move(shards.front().racks);
  out.rack_runs.reserve(static_cast<std::size_t>(n_runs));
  out.server_runs.reserve(static_cast<std::size_t>(n_servers));
  out.bursts.reserve(static_cast<std::size_t>(n_bursts));
  for (Dataset& s : shards) {
    out.window_counts.insert(out.window_counts.end(), s.window_counts.begin(),
                             s.window_counts.end());
    out.rack_runs.insert(out.rack_runs.end(), s.rack_runs.begin(),
                         s.rack_runs.end());
    out.server_runs.insert(out.server_runs.end(), s.server_runs.begin(),
                           s.server_runs.end());
    out.bursts.insert(out.bursts.end(), s.bursts.begin(), s.bursts.end());
    // Shards are canonical-order slices, so the first shard holding an
    // exemplar holds the globally first qualifying window.
    if (out.low_contention_example.num_samples == 0 &&
        s.low_contention_example.num_samples != 0) {
      out.low_contention_example = std::move(s.low_contention_example);
    }
    if (out.high_contention_example.num_samples == 0 &&
        s.high_contention_example.num_samples != 0) {
      out.high_contention_example = std::move(s.high_contention_example);
    }
    // Release each shard's records as soon as they are folded, so peak
    // memory stays one day plus one shard rather than two full days.
    s.window_counts.clear();
    s.window_counts.shrink_to_fit();
    s.rack_runs.clear();
    s.rack_runs.shrink_to_fit();
    s.server_runs.clear();
    s.server_runs.shrink_to_fit();
    s.bursts.clear();
    s.bursts.shrink_to_fit();
  }
  finalize_classification(out);
  return out;
}

}  // namespace msamp::fleet

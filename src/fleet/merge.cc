#include "fleet/merge.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <utility>

#include "fleet/shard.h"
#include "fleet/wire.h"

namespace msamp::fleet {
namespace {

// Bounded buffer for the file-to-file section copies; also the read size
// for header parsing.  The merge's peak memory is a couple of these plus
// the count and rack-run tables.
constexpr std::size_t kCopyChunk = std::size_t{1} << 20;

bool same_rack_info(const RackInfo& a, const RackInfo& b) {
  // Classification fields are intentionally excluded: shards leave them
  // zeroed, and a full-range dataset passed to a single-shard merge has
  // them filled; the merge recomputes them either way.
  return a.rack_id == b.rack_id && a.region == b.region &&
         a.ml_dense == b.ml_dense && a.distinct_tasks == b.distinct_tasks &&
         a.dominant_share == b.dominant_share && a.intensity == b.intensity;
}

// The fixed wire size of a serialized FleetConfig (it contains no
// variable-length fields), so the header prefix can be read in one go.
std::size_t config_wire_size() {
  wire::Writer w;
  wire::put_config(w, FleetConfig{});
  return w.out.size();
}

bool read_exact(std::ifstream& in, std::size_t n, std::vector<std::uint8_t>* out) {
  out->resize(n);
  return n == 0 ||
         static_cast<bool>(in.read(reinterpret_cast<char*>(out->data()),
                                   static_cast<std::streamsize>(n)));
}

/// Everything `merge_shards` needs from one shard file without touching
/// its bulky record sections: the header, the count and rack tables, the
/// rack runs (bounded by one per window), the exemplars, and the file
/// offsets of the server-run and burst sections for the streamed copy.
struct ShardHead {
  std::string path;
  std::uint64_t file_size = 0;
  std::uint64_t fingerprint = 0;
  FleetConfig config;
  ShardSpec shard;
  std::uint64_t window_begin = 0;
  std::uint64_t window_end = 0;
  std::vector<WindowCounts> counts;
  std::vector<RackInfo> racks;
  std::vector<RackRunRecord> rack_runs;
  std::uint64_t servers_count = 0;  ///< section's own length prefix
  std::uint64_t bursts_count = 0;
  std::uint64_t servers_off = 0;  ///< file offset of the section's records
  std::uint64_t bursts_off = 0;
  ExemplarRun low;
  ExemplarRun high;
};

/// Parses the head of one shard file.  On failure fills `*error` with a
/// message prefixed by the path.
bool read_shard_head(const std::string& path, ShardHead* h,
                     std::string* error) {
  const auto fail = [&](const std::string& why) {
    *error = path + ": " + why;
    return false;
  };
  h->path = path;
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec)) {
    return fail("not a regular file");
  }
  h->file_size = std::filesystem::file_size(path, ec);
  if (ec) return fail("cannot stat");
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail("cannot open");

  std::vector<std::uint8_t> buf;
  const std::size_t head_bytes = 4 + 4 + 8 + config_wire_size() + 4 + 4 + 8 + 8;
  if (!read_exact(in, head_bytes, &buf)) return fail("truncated header");
  wire::Reader r(buf);
  std::uint32_t magic = 0, version = 0;
  if (!r.get(&magic) || magic != wire::kMagic) {
    return fail("not a dataset file (bad magic)");
  }
  if (!r.get(&version) || version != wire::kVersion) {
    return fail("unsupported dataset version");
  }
  if (!r.get(&h->fingerprint) || !wire::get_config(r, &h->config) ||
      !r.get(&h->shard.index) || !r.get(&h->shard.count) ||
      !r.get(&h->window_begin) || !r.get(&h->window_end)) {
    return fail("corrupt header");
  }
  if (!h->shard.valid()) return fail("corrupt header (invalid shard spec)");

  // Each fixed-size record section: length prefix, then records.  Counts
  // are bounded by the bytes actually left in the file before any
  // allocation, exactly as in Dataset::deserialize.
  const auto read_section = [&](auto* vec, const char* what) {
    using Rec = typename std::remove_reference_t<decltype(*vec)>::value_type;
    std::vector<std::uint8_t> lenbuf;
    if (!read_exact(in, 8, &lenbuf)) return fail("truncated " + std::string(what));
    wire::Reader lr(lenbuf);
    std::uint64_t n = 0;
    lr.get(&n);
    const std::size_t rec = wire::wire_size(static_cast<const Rec*>(nullptr));
    const auto pos = static_cast<std::uint64_t>(in.tellg());
    if (n > (h->file_size - pos) / rec) {
      return fail("corrupt " + std::string(what) + " section");
    }
    std::vector<std::uint8_t> body;
    if (!read_exact(in, static_cast<std::size_t>(n) * rec, &body)) {
      return fail("truncated " + std::string(what));
    }
    wire::Reader br(body);
    vec->clear();
    vec->reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      Rec e;
      if (!wire::get_record(br, &e)) {
        return fail("corrupt " + std::string(what));
      }
      vec->push_back(e);
    }
    return true;
  };
  if (!read_section(&h->counts, "window count table")) return false;
  if (!read_section(&h->racks, "rack table")) return false;
  if (!read_section(&h->rack_runs, "rack run section")) return false;

  // Server runs and bursts are the bulk of a shard; note where their
  // record bytes live and skip over them — the merge copies the raw bytes.
  const auto skip_section = [&](std::uint64_t* count, std::uint64_t* off,
                                std::size_t rec, const char* what) {
    std::vector<std::uint8_t> lenbuf;
    if (!read_exact(in, 8, &lenbuf)) return fail("truncated " + std::string(what));
    wire::Reader lr(lenbuf);
    lr.get(count);
    *off = static_cast<std::uint64_t>(in.tellg());
    if (*count > (h->file_size - *off) / rec) {
      return fail("corrupt " + std::string(what) + " section");
    }
    in.seekg(static_cast<std::streamoff>(*count * rec), std::ios::cur);
    return static_cast<bool>(in) || fail("truncated " + std::string(what));
  };
  if (!skip_section(&h->servers_count, &h->servers_off,
                    wire::wire_size(static_cast<const ServerRunRecord*>(nullptr)),
                    "server run section")) {
    return false;
  }
  if (!skip_section(&h->bursts_count, &h->bursts_off,
                    wire::wire_size(static_cast<const BurstRecord*>(nullptr)),
                    "burst section")) {
    return false;
  }

  const auto tail_off = static_cast<std::uint64_t>(in.tellg());
  if (!read_exact(in, static_cast<std::size_t>(h->file_size - tail_off), &buf)) {
    return fail("truncated exemplars");
  }
  wire::Reader tr(buf);
  if (!wire::get_exemplar(tr, &h->low) || !wire::get_exemplar(tr, &h->high) ||
      tr.pos != buf.size()) {
    return fail("corrupt exemplars");
  }
  return true;
}

bool copy_section(std::ifstream& in, std::uint64_t off, std::uint64_t bytes,
                  std::ofstream& out) {
  in.seekg(static_cast<std::streamoff>(off));
  if (!in) return false;
  std::vector<char> buf(static_cast<std::size_t>(
      std::min<std::uint64_t>(bytes == 0 ? 1 : bytes, kCopyChunk)));
  std::uint64_t left = bytes;
  while (left > 0) {
    const auto n = static_cast<std::streamsize>(
        std::min<std::uint64_t>(left, buf.size()));
    if (!in.read(buf.data(), n)) return false;
    if (!out.write(buf.data(), n)) return false;
    left -= static_cast<std::uint64_t>(n);
  }
  return true;
}

}  // namespace

bool merge_shards(const std::vector<std::string>& paths,
                  const std::string& out_path, std::string* error,
                  MergeStats* stats) {
  const auto fail = [&](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  if (paths.empty()) return fail("no shards to merge");

  std::vector<ShardHead> shards(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    std::string why;
    if (!read_shard_head(paths[i], &shards[i], &why)) return fail(why);
  }
  std::sort(shards.begin(), shards.end(),
            [](const ShardHead& a, const ShardHead& b) {
              return a.shard.index < b.shard.index;
            });

  const ShardHead& first = shards.front();
  const std::uint32_t count = first.shard.count;
  if (shards.size() != count) {
    return fail("expected " + std::to_string(count) + " shards (from shard " +
                std::to_string(first.shard.index) + "'s header), got " +
                std::to_string(shards.size()));
  }
  const std::uint64_t total =
      2ull * static_cast<std::uint64_t>(first.config.racks_per_region) *
      static_cast<std::uint64_t>(first.config.hours);

  std::uint64_t n_runs = 0, n_servers = 0, n_bursts = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const ShardHead& s = shards[i];
    const std::string who = "shard " + std::to_string(s.shard.index) + "/" +
                            std::to_string(s.shard.count);
    if (s.shard.count != count) {
      return fail(who + ": shard count disagrees with shard " +
                  std::to_string(first.shard.index) + "/" +
                  std::to_string(count));
    }
    if (s.shard.index != i) {
      if (i > 0 && s.shard.index == shards[i - 1].shard.index) {
        return fail("duplicate shard " + std::to_string(s.shard.index) + "/" +
                    std::to_string(count));
      }
      return fail("missing shard " + std::to_string(i) + "/" +
                  std::to_string(count));
    }
    if (s.fingerprint != first.fingerprint) {
      return fail(who + ": fingerprint mismatch (generated from a different "
                        "config, seed, or model version)");
    }
    if (s.window_begin != s.shard.begin(static_cast<std::size_t>(total)) ||
        s.window_end != s.shard.end(static_cast<std::size_t>(total))) {
      return fail(who + ": covers windows [" +
                  std::to_string(s.window_begin) + ", " +
                  std::to_string(s.window_end) +
                  "), not its canonical slice of [0, " +
                  std::to_string(total) + ")");
    }
    if (s.counts.size() != s.window_end - s.window_begin) {
      return fail(who + ": window count table has " +
                  std::to_string(s.counts.size()) + " entries for " +
                  std::to_string(s.window_end - s.window_begin) + " windows");
    }
    std::uint64_t runs = 0, servers = 0, bursts = 0;
    for (const auto& c : s.counts) {
      runs += c.has_run ? 1 : 0;
      servers += c.server_runs;
      bursts += c.bursts;
    }
    if (runs != s.rack_runs.size() || servers != s.servers_count ||
        bursts != s.bursts_count) {
      return fail(who + ": record vectors disagree with its window count "
                        "table");
    }
    if (s.racks.size() != first.racks.size() ||
        !std::equal(s.racks.begin(), s.racks.end(), first.racks.begin(),
                    same_rack_info)) {
      return fail(who + ": rack table differs from shard " +
                  std::to_string(first.shard.index) + "'s");
    }
    n_runs += runs;
    n_servers += servers;
    n_bursts += bursts;
  }

  // Head of the merged day: the rack runs are bounded by one per window,
  // so folding them in memory keeps the streamed merge's footprint at a
  // few dozen bytes per window while letting classification run exactly
  // as it does in DatasetBuilder::take.
  Dataset head;
  head.fingerprint = first.fingerprint;
  head.config = first.config;
  head.shard = ShardSpec{};  // full range
  head.window_begin = 0;
  head.window_end = total;
  head.racks = first.racks;
  head.rack_runs.reserve(static_cast<std::size_t>(n_runs));
  for (const ShardHead& s : shards) {
    head.rack_runs.insert(head.rack_runs.end(), s.rack_runs.begin(),
                          s.rack_runs.end());
  }
  finalize_classification(head);

  wire::Writer w;
  wire::put_header(w, head);
  w.put(total);
  for (const ShardHead& s : shards) {
    for (const auto& c : s.counts) wire::put_record(w, c);
  }
  wire::put_records(w, head.racks);
  wire::put_records(w, head.rack_runs);

  const ExemplarRun* low = nullptr;
  const ExemplarRun* high = nullptr;
  for (const ShardHead& s : shards) {
    // Shards are canonical-order slices, so the first shard holding an
    // exemplar holds the globally first qualifying window.
    if (low == nullptr && s.low.num_samples != 0) low = &s.low;
    if (high == nullptr && s.high.num_samples != 0) high = &s.high;
  }

  std::error_code ec;
  const std::filesystem::path target(out_path);
  const auto parent = target.parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::filesystem::path tmp = target;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return fail("cannot open " + tmp.string());
    out.write(reinterpret_cast<const char*>(w.out.data()),
              static_cast<std::streamsize>(w.out.size()));
    bool ok = static_cast<bool>(out);
    // The bulky sections stream shard-to-output through a bounded buffer.
    const auto stream_sections = [&](std::uint64_t n, auto member_off,
                                     auto member_count, std::size_t rec) {
      wire::Writer len;
      len.put(n);
      out.write(reinterpret_cast<const char*>(len.out.data()),
                static_cast<std::streamsize>(len.out.size()));
      if (!out) return false;
      for (const ShardHead& s : shards) {
        std::ifstream in(s.path, std::ios::binary);
        if (!in) return false;
        if (!copy_section(in, s.*member_off, (s.*member_count) * rec, out)) {
          return false;
        }
      }
      return true;
    };
    ok = ok &&
         stream_sections(n_servers, &ShardHead::servers_off,
                         &ShardHead::servers_count,
                         wire::wire_size(static_cast<const ServerRunRecord*>(nullptr)));
    ok = ok &&
         stream_sections(n_bursts, &ShardHead::bursts_off,
                         &ShardHead::bursts_count,
                         wire::wire_size(static_cast<const BurstRecord*>(nullptr)));
    if (ok) {
      wire::Writer tail;
      wire::put_exemplar(tail, low != nullptr ? *low : ExemplarRun{});
      wire::put_exemplar(tail, high != nullptr ? *high : ExemplarRun{});
      out.write(reinterpret_cast<const char*>(tail.out.data()),
                static_cast<std::streamsize>(tail.out.size()));
      ok = static_cast<bool>(out);
    }
    if (!ok) {
      out.close();
      std::filesystem::remove(tmp, ec);
      return fail("cannot write " + tmp.string());
    }
  }
  std::filesystem::rename(tmp, target, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return fail("cannot rename " + tmp.string() + " to " + out_path + ": " +
                ec.message());
  }
  if (stats != nullptr) {
    stats->fingerprint = first.fingerprint;
    stats->shards = count;
    stats->windows = total;
    stats->rack_runs = n_runs;
    stats->server_runs = n_servers;
    stats->bursts = n_bursts;
    stats->bytes_written = std::filesystem::file_size(target, ec);
  }
  return true;
}

std::optional<Dataset> merge_datasets(std::vector<Dataset> shards,
                                      std::string* error) {
  const auto fail = [&](std::string msg) -> std::optional<Dataset> {
    if (error != nullptr) *error = std::move(msg);
    return std::nullopt;
  };
  if (shards.empty()) return fail("no shards to merge");

  // Spill the shards to a scratch directory and stream them back together
  // — one validation and fold path for both the in-memory and the file
  // API.  The counter keeps concurrent merges in one process apart.
  static std::atomic<std::uint64_t> scratch_counter{0};
  std::error_code ec;
  const auto scratch =
      std::filesystem::temp_directory_path(ec) /
      ("msamp-merge-" + std::to_string(static_cast<long>(::getpid())) + "-" +
       std::to_string(scratch_counter.fetch_add(1)));
  if (ec) return fail("cannot locate a scratch directory: " + ec.message());
  std::filesystem::create_directories(scratch, ec);
  if (ec) {
    return fail("cannot create scratch directory " + scratch.string() + ": " +
                ec.message());
  }
  std::vector<std::string> paths;
  paths.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    auto path = (scratch / ("shard-" + std::to_string(i) + ".bin")).string();
    const bool saved = shards[i].save(path);
    // Release each shard's records as soon as they hit disk, so peak
    // memory stays one shard plus the merged day, never two days.
    shards[i] = Dataset{};
    if (!saved) {
      std::filesystem::remove_all(scratch, ec);
      return fail("cannot write scratch shard " + path);
    }
    paths.push_back(std::move(path));
  }
  const auto merged_path = (scratch / "merged.bin").string();
  std::string why;
  if (!merge_shards(paths, merged_path, &why)) {
    std::filesystem::remove_all(scratch, ec);
    return fail(std::move(why));
  }
  Dataset out;
  const bool loaded = out.load(merged_path);
  std::filesystem::remove_all(scratch, ec);
  if (!loaded) return fail("cannot load merged dataset " + merged_path);
  return out;
}

}  // namespace msamp::fleet

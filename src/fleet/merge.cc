#include "fleet/merge.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <utility>

#include "fleet/dataset_view.h"
#include "fleet/shard.h"
#include "fleet/wire.h"

namespace msamp::fleet {
namespace {

// Flush threshold for the buffered column writes; the merge's peak heap is
// a couple of these plus the count and rack-run tables (the shard record
// bytes stay behind read-only mappings).
constexpr std::size_t kWriteChunk = std::size_t{1} << 20;

bool same_rack_info(const RackInfo& a, const RackInfo& b) {
  // Classification fields are intentionally excluded: shards leave them
  // zeroed, and a full-range dataset passed to a single-shard merge has
  // them filled; the merge recomputes them either way.
  return a.rack_id == b.rack_id && a.region == b.region &&
         a.ml_dense == b.ml_dense && a.distinct_tasks == b.distinct_tasks &&
         a.dominant_share == b.dominant_share && a.intensity == b.intensity;
}

/// Buffered writer onto an ofstream that tracks the absolute position so
/// columns land exactly where the layout says.
struct StreamOut {
  std::ofstream& out;
  std::uint64_t pos = 0;
  wire::Writer buf;

  bool flush() {
    if (!buf.out.empty()) {
      out.write(reinterpret_cast<const char*>(buf.out.data()),
                static_cast<std::streamsize>(buf.out.size()));
      pos += buf.out.size();
      buf.out.clear();
    }
    return static_cast<bool>(out);
  }
  bool flush_if_full() {
    return buf.out.size() < kWriteChunk ? static_cast<bool>(out) : flush();
  }
  bool pad_to(std::uint64_t target) {
    if (!flush()) return false;
    static constexpr char kZeros[4096] = {};
    while (pos < target) {
      const auto n = static_cast<std::streamsize>(
          std::min<std::uint64_t>(target - pos, sizeof(kZeros)));
      if (!out.write(kZeros, n)) return false;
      pos += static_cast<std::uint64_t>(n);
    }
    return true;
  }
  bool write_raw(const void* data, std::size_t bytes) {
    if (!flush()) return false;
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(bytes));
    pos += bytes;
    return static_cast<bool>(out);
  }
};

}  // namespace

util::Status merge_shards(const std::vector<std::string>& paths,
                          const std::string& out_path, MergeStats* stats) {
  if (paths.empty()) return util::Status::error("no shards to merge");

  // Map every shard read-only.  DatasetView::open already validates the
  // header, layout, and window-directory tie-out of each file.
  std::vector<DatasetView> shards(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (auto st = DatasetView::open(paths[i], &shards[i]); !st) return st;
  }
  std::sort(shards.begin(), shards.end(),
            [](const DatasetView& a, const DatasetView& b) {
              return a.shard().index < b.shard().index;
            });

  const DatasetView& first = shards.front();
  const std::uint32_t count = first.shard().count;
  if (shards.size() != count) {
    return util::Status::error(
        "expected " + std::to_string(count) + " shards (from shard " +
        std::to_string(first.shard().index) + "'s header), got " +
        std::to_string(shards.size()));
  }
  const std::uint64_t total = first.total_windows();
  const std::vector<RackInfo> first_racks = first.rack_table();

  std::uint64_t n_runs = 0, n_servers = 0, n_bursts = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const DatasetView& s = shards[i];
    const std::string who = "shard " + std::to_string(s.shard().index) + "/" +
                            std::to_string(s.shard().count);
    if (s.shard().count != count) {
      return util::Status::error(
          who + ": shard count disagrees with shard " +
              std::to_string(first.shard().index) + "/" +
              std::to_string(count),
          s.path());
    }
    if (s.shard().index != i) {
      if (i > 0 && s.shard().index == shards[i - 1].shard().index) {
        return util::Status::error("duplicate shard " +
                                       std::to_string(s.shard().index) + "/" +
                                       std::to_string(count),
                                   s.path());
      }
      return util::Status::error(
          "missing shard " + std::to_string(i) + "/" + std::to_string(count));
    }
    if (s.fingerprint() != first.fingerprint()) {
      return util::Status::error(
          who + ": fingerprint mismatch (generated from a different config, "
                "seed, or model version)",
          s.path());
    }
    const auto racks = s.rack_table();
    if (racks.size() != first_racks.size() ||
        !std::equal(racks.begin(), racks.end(), first_racks.begin(),
                    same_rack_info)) {
      return util::Status::error(
          who + ": rack table differs from shard " +
              std::to_string(first.shard().index) + "'s",
          s.path());
    }
    n_runs += s.rack_runs().size();
    n_servers += s.server_runs().size();
    n_bursts += s.bursts().size();
  }

  // Head of the merged day: the rack runs are bounded by one per window,
  // so folding them in memory keeps the streamed merge's footprint at a
  // few dozen bytes per window while letting classification run exactly
  // as it does in DatasetBuilder::take.
  Dataset head;
  head.fingerprint = first.fingerprint();
  head.config = first.config();
  head.shard = ShardSpec{};  // full range
  head.window_begin = 0;
  head.window_end = total;
  head.racks = first_racks;
  head.rack_runs.reserve(static_cast<std::size_t>(n_runs));
  for (const DatasetView& s : shards) {
    for (std::size_t i = 0; i < s.rack_runs().size(); ++i) {
      head.rack_runs.push_back(s.rack_runs()[i]);
    }
  }
  finalize_classification(head);

  // Shards are canonical-order slices, so the first shard holding an
  // exemplar holds the globally first qualifying window.
  const ExemplarRun* low = nullptr;
  const ExemplarRun* high = nullptr;
  for (const DatasetView& s : shards) {
    if (low == nullptr && s.low_contention_example().num_samples != 0) {
      low = &s.low_contention_example();
    }
    if (high == nullptr && s.high_contention_example().num_samples != 0) {
      high = &s.high_contention_example();
    }
  }
  static const ExemplarRun kEmptyExemplar{};
  if (low == nullptr) low = &kEmptyExemplar;
  if (high == nullptr) high = &kEmptyExemplar;

  wire::SectionCounts counts;
  counts.windows = total;
  counts.racks = head.racks.size();
  counts.rack_runs = n_runs;
  counts.server_runs = n_servers;
  counts.bursts = n_bursts;
  counts.exemplar_bytes =
      wire::exemplar_wire_bytes(*low) + wire::exemplar_wire_bytes(*high);
  const wire::V6Layout lay = wire::v6_layout(counts);

  std::error_code ec;
  const std::filesystem::path target(out_path);
  const auto parent = target.parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::filesystem::path tmp = target;
  tmp += ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) {
      return util::Status::error("cannot open temp file for writing",
                                 tmp.string());
    }
    StreamOut out{file, 0, wire::Writer{}};

    bool ok = true;
    {
      wire::V6Header h;
      h.fingerprint = head.fingerprint;
      h.config = head.config;
      h.shard = head.shard;
      h.window_begin = 0;
      h.window_end = total;
      h.counts = counts;
      h.dir = lay.dir;
      wire::put_header_v6(out.buf, h);
      ok = out.flush();
    }

    // Window directory: the count columns concatenate across shards
    // verbatim; the running record offsets are recomputed globally (a
    // shard's own offsets are shard-local and must not leak into the
    // merged file).
    const auto& wcols = lay.columns[wire::kSecWindows];
    const auto concat_spans = [&](std::uint64_t col_off, auto member) {
      if (!ok) return;
      ok = out.pad_to(col_off);
      for (const DatasetView& s : shards) {
        if (!ok) return;
        const auto span = (s.windows().*member);
        ok = out.write_raw(span.data(), span.size_bytes());
      }
    };
    concat_spans(wcols[0], &WindowDirColumns::has_run);
    concat_spans(wcols[1], &WindowDirColumns::server_runs);
    concat_spans(wcols[2], &WindowDirColumns::bursts);
    const auto global_offsets = [&](std::uint64_t col_off, auto counter) {
      if (!ok) return;
      ok = out.pad_to(col_off);
      std::uint64_t off = 0;
      for (const DatasetView& s : shards) {
        const auto& w = s.windows();
        for (std::size_t i = 0; ok && i < w.size(); ++i) {
          out.buf.put(off);
          off += counter(w, i);
          ok = out.flush_if_full();
        }
      }
      if (ok) ok = out.flush();
    };
    global_offsets(wcols[3], [](const WindowDirColumns& w, std::size_t i) {
      return static_cast<std::uint64_t>(w.has_run[i] != 0 ? 1 : 0);
    });
    global_offsets(wcols[4], [](const WindowDirColumns& w, std::size_t i) {
      return static_cast<std::uint64_t>(w.server_runs[i]);
    });
    global_offsets(wcols[5], [](const WindowDirColumns& w, std::size_t i) {
      return static_cast<std::uint64_t>(w.bursts[i]);
    });

    // Rack table and rack runs: classified/folded in RAM above.
    const auto put_ram_section = [&](const auto& records, const auto& cols) {
      for (std::size_t c = 0; ok && c < cols.size(); ++c) {
        ok = out.pad_to(cols[c]);
        for (const auto& rec : records) {
          if (!ok) break;
          wire::put_column(out.buf, rec, c);
          ok = out.flush_if_full();
        }
        if (ok) ok = out.flush();
      }
    };
    put_ram_section(head.racks, lay.columns[wire::kSecRacks]);
    put_ram_section(head.rack_runs, lay.columns[wire::kSecRackRuns]);

    // The bulky sections: each merged column is the concatenation of the
    // shards' columns, copied straight from the mappings.
    const auto concat_record_col = [&](std::uint64_t col_off, auto span_of) {
      if (!ok) return;
      ok = out.pad_to(col_off);
      for (const DatasetView& s : shards) {
        if (!ok) return;
        const auto span = span_of(s);
        ok = out.write_raw(span.data(), span.size_bytes());
      }
    };
    const auto& scols = lay.columns[wire::kSecServerRuns];
    concat_record_col(scols[0], [](const DatasetView& s) { return s.server_runs().rack_id; });
    concat_record_col(scols[1], [](const DatasetView& s) { return s.server_runs().region; });
    concat_record_col(scols[2], [](const DatasetView& s) { return s.server_runs().hour; });
    concat_record_col(scols[3], [](const DatasetView& s) { return s.server_runs().bursty; });
    concat_record_col(scols[4], [](const DatasetView& s) { return s.server_runs().avg_util; });
    concat_record_col(scols[5], [](const DatasetView& s) { return s.server_runs().util_inside; });
    concat_record_col(scols[6], [](const DatasetView& s) { return s.server_runs().util_outside; });
    concat_record_col(scols[7], [](const DatasetView& s) { return s.server_runs().bursts_per_sec; });
    concat_record_col(scols[8], [](const DatasetView& s) { return s.server_runs().conns_inside; });
    concat_record_col(scols[9], [](const DatasetView& s) { return s.server_runs().conns_outside; });
    const auto& bcols = lay.columns[wire::kSecBursts];
    concat_record_col(bcols[0], [](const DatasetView& s) { return s.bursts().rack_id; });
    concat_record_col(bcols[1], [](const DatasetView& s) { return s.bursts().region; });
    concat_record_col(bcols[2], [](const DatasetView& s) { return s.bursts().hour; });
    concat_record_col(bcols[3], [](const DatasetView& s) { return s.bursts().len_ms; });
    concat_record_col(bcols[4], [](const DatasetView& s) { return s.bursts().volume_bytes; });
    concat_record_col(bcols[5], [](const DatasetView& s) { return s.bursts().max_contention; });
    concat_record_col(bcols[6], [](const DatasetView& s) { return s.bursts().avg_conns; });
    concat_record_col(bcols[7], [](const DatasetView& s) { return s.bursts().contended; });
    concat_record_col(bcols[8], [](const DatasetView& s) { return s.bursts().lossy; });

    if (ok) {
      ok = out.pad_to(lay.columns[wire::kSecExemplars][0]);
      wire::put_exemplar(out.buf, *low);
      wire::put_exemplar(out.buf, *high);
      if (ok) ok = out.flush();
    }
    if (ok && out.pos != lay.file_bytes) ok = false;  // layout is the law
    if (!ok) {
      file.close();
      std::filesystem::remove(tmp, ec);
      return util::Status::error("cannot write", tmp.string());
    }
  }
  std::filesystem::rename(tmp, target, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return util::Status::error(
        "cannot rename " + tmp.string() + ": " + ec.message(), out_path);
  }
  if (stats != nullptr) {
    stats->fingerprint = first.fingerprint();
    stats->shards = count;
    stats->windows = total;
    stats->rack_runs = n_runs;
    stats->server_runs = n_servers;
    stats->bursts = n_bursts;
    stats->bytes_written = std::filesystem::file_size(target, ec);
  }
  return util::Status::ok();
}

std::optional<Dataset> merge_datasets(std::vector<Dataset> shards,
                                      std::string* error) {
  const auto fail = [&](std::string msg) -> std::optional<Dataset> {
    if (error != nullptr) *error = std::move(msg);
    return std::nullopt;
  };
  if (shards.empty()) return fail("no shards to merge");

  // Spill the shards to a scratch directory and stream them back together
  // — one validation and fold path for both the in-memory and the file
  // API.  The counter keeps concurrent merges in one process apart.
  static std::atomic<std::uint64_t> scratch_counter{0};
  std::error_code ec;
  const auto scratch =
      std::filesystem::temp_directory_path(ec) /
      ("msamp-merge-" + std::to_string(static_cast<long>(::getpid())) + "-" +
       std::to_string(scratch_counter.fetch_add(1)));
  if (ec) return fail("cannot locate a scratch directory: " + ec.message());
  std::filesystem::create_directories(scratch, ec);
  if (ec) {
    return fail("cannot create scratch directory " + scratch.string() + ": " +
                ec.message());
  }
  std::vector<std::string> paths;
  paths.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    auto path = (scratch / ("shard-" + std::to_string(i) + ".bin")).string();
    const auto saved = shards[i].save(path);
    // Release each shard's records as soon as they hit disk, so peak
    // memory stays one shard plus the merged day, never two days.
    shards[i] = Dataset{};
    if (!saved) {
      std::filesystem::remove_all(scratch, ec);
      return fail(saved.to_string());
    }
    paths.push_back(std::move(path));
  }
  const auto merged_path = (scratch / "merged.bin").string();
  if (auto st = merge_shards(paths, merged_path); !st) {
    std::filesystem::remove_all(scratch, ec);
    return fail(st.to_string());
  }
  std::optional<Dataset> out;
  {
    DatasetView merged;
    const auto opened = Dataset::open_mapped(merged_path, &merged);
    if (opened) out = Dataset::from_view(merged);
    // the view unmaps before the scratch files go away
  }
  std::filesystem::remove_all(scratch, ec);
  if (!out.has_value()) return fail("cannot open merged dataset " + merged_path);
  return out;
}

}  // namespace msamp::fleet

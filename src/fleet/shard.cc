#include "fleet/shard.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "analysis/rack_classify.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/diurnal.h"

namespace msamp::fleet {

std::vector<workload::RackMeta> fleet_racks(const FleetConfig& config) {
  util::Rng master(config.seed);
  std::vector<workload::RackMeta> racks;
  for (const auto region :
       {workload::RegionId::kRegA, workload::RegionId::kRegB}) {
    util::Rng place_rng = master.fork(static_cast<std::uint64_t>(region) + 7);
    const auto cfg = workload::default_placement(
        region, config.racks_per_region, config.servers_per_rack);
    auto region_racks = workload::generate_racks(
        cfg, static_cast<int>(racks.size()), place_rng);
    racks.insert(racks.end(), region_racks.begin(), region_racks.end());
  }
  return racks;
}

std::vector<RackInfo> dataset_rack_table(const FleetConfig& config) {
  std::vector<RackInfo> out;
  for (const auto& rack : fleet_racks(config)) {
    RackInfo info;
    info.rack_id = static_cast<std::uint32_t>(rack.rack_id);
    info.region = static_cast<std::uint8_t>(rack.region);
    info.ml_dense = rack.ml_dense ? 1 : 0;
    info.distinct_tasks = static_cast<std::uint16_t>(rack.distinct_tasks());
    info.dominant_share = static_cast<float>(rack.dominant_share());
    info.intensity = static_cast<float>(rack.intensity);
    out.push_back(info);
  }
  return out;
}

DatasetBuilder::DatasetBuilder(const FleetConfig& config, ShardSpec shard) {
  if (!shard.valid()) {
    throw std::invalid_argument("invalid shard spec " +
                                std::to_string(shard.index) + "/" +
                                std::to_string(shard.count));
  }
  ds_.config = config;
  ds_.fingerprint = config.fingerprint();
  ds_.shard = shard;
  ds_.racks = dataset_rack_table(config);

  const std::size_t total =
      ds_.racks.size() * static_cast<std::size_t>(config.hours);
  ds_.window_begin = shard.begin(total);
  ds_.window_end = shard.end(total);
  const std::size_t windows =
      static_cast<std::size_t>(ds_.window_end - ds_.window_begin);
  ds_.window_counts.reserve(windows);
  ds_.rack_runs.reserve(windows);
  ds_.server_runs.reserve(windows *
                          static_cast<std::size_t>(config.servers_per_rack));
}

void DatasetBuilder::on_window(std::size_t window, WindowRecords&& records) {
  const std::size_t expected = ds_.window_begin + ds_.window_counts.size();
  if (window != expected || window >= ds_.window_end) {
    throw std::logic_error("DatasetBuilder: window " + std::to_string(window) +
                           " out of order (expected " +
                           std::to_string(expected) + ")");
  }
  ds_.window_counts.push_back(records.counts());
  if (records.has_run) ds_.rack_runs.push_back(records.rack_run);
  ds_.server_runs.insert(ds_.server_runs.end(), records.server_runs.begin(),
                         records.server_runs.end());
  ds_.bursts.insert(ds_.bursts.end(), records.bursts.begin(),
                    records.bursts.end());
  // First qualifying window in canonical order wins, exactly as in a
  // serial hour-by-hour, rack-by-rack sweep.
  if ((records.exemplar_kind & kLowExemplar) != 0 &&
      ds_.low_contention_example.num_samples == 0) {
    ds_.low_contention_example = records.exemplar;
  }
  if ((records.exemplar_kind & kHighExemplar) != 0 &&
      ds_.high_contention_example.num_samples == 0) {
    ds_.high_contention_example = std::move(records.exemplar);
  }
}

Dataset DatasetBuilder::take() {
  if (ds_.window_counts.size() !=
      static_cast<std::size_t>(ds_.window_end - ds_.window_begin)) {
    throw std::logic_error("DatasetBuilder: take() before the shard's "
                           "window range completed");
  }
  if (ds_.shard.full_range()) finalize_classification(ds_);
  return std::move(ds_);
}

void finalize_classification(Dataset& ds) {
  // Busy-hour classification (RegA bimodal split, §7.1).
  for (auto& info : ds.racks) {
    const auto busy_run = [&](const RackRunRecord& rr) {
      return rr.rack_id == info.rack_id &&
             rr.hour == static_cast<std::uint8_t>(workload::kBusyHour);
    };
    // Adding 0.0 for filtered-out runs leaves the fold bytes unchanged
    // (IEEE: x + 0.0 == x for the non-negative contention values).
    const double sum =
        util::canonical_sum_over(ds.rack_runs, [&](const RackRunRecord& rr) {
          return busy_run(rr) ? static_cast<double>(rr.avg_contention) : 0.0;
        });
    int n = 0;
    for (const auto& rr : ds.rack_runs) {
      if (busy_run(rr)) ++n;
    }
    info.busy_hour_avg_contention =
        n > 0 ? static_cast<float>(sum / n) : 0.0f;
    info.rack_class = static_cast<std::uint8_t>(analysis::classify_rack(
        static_cast<workload::RegionId>(info.region),
        info.busy_hour_avg_contention, ds.config.classify));
  }
}

}  // namespace msamp::fleet

#include "fleet/spill_sink.h"

#include <stdexcept>
#include <utility>

namespace msamp::fleet {
namespace {

// Copies `count` bytes from `in` (positioned) to `out` through a buffer of
// at most `chunk` bytes.  Returns false on any stream failure.
bool copy_bytes(std::ifstream& in, std::ofstream& out, std::uint64_t count,
                std::size_t chunk) {
  std::vector<char> buf(std::min<std::uint64_t>(count == 0 ? 1 : count,
                                                std::max<std::size_t>(chunk, 1)));
  std::uint64_t left = count;
  while (left > 0) {
    const auto n = static_cast<std::streamsize>(
        std::min<std::uint64_t>(left, buf.size()));
    if (!in.read(buf.data(), n)) return false;
    if (!out.write(buf.data(), n)) return false;
    left -= static_cast<std::uint64_t>(n);
  }
  return true;
}

}  // namespace

SpillSink::SpillSink(const FleetConfig& config, ShardSpec shard,
                     std::string out_path, std::size_t chunk_bytes)
    : config_(config),
      shard_(shard),
      out_(std::move(out_path)),
      chunk_bytes_(std::max<std::size_t>(chunk_bytes, 64)) {
  if (!shard.valid()) {
    throw std::invalid_argument("invalid shard spec " +
                                std::to_string(shard.index) + "/" +
                                std::to_string(shard.count));
  }
  fingerprint_ = config.fingerprint();
  racks_ = dataset_rack_table(config);
  const std::size_t total =
      racks_.size() * static_cast<std::size_t>(config.hours);
  window_begin_ = shard.begin(total);
  window_end_ = shard.end(total);
  counts_.reserve(static_cast<std::size_t>(window_end_ - window_begin_));

  std::error_code ec;
  const auto parent = std::filesystem::path(out_).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  open_spill(runs_, ".spill-runs");
  open_spill(servers_, ".spill-servers");
  open_spill(bursts_, ".spill-bursts");
}

SpillSink::~SpillSink() {
  std::error_code ec;
  for (Spill* s : {&runs_, &servers_, &bursts_}) {
    if (s->file.is_open()) s->file.close();
    std::filesystem::remove(s->path, ec);
  }
}

void SpillSink::open_spill(Spill& s, const char* suffix) {
  s.path = std::filesystem::path(out_ + suffix);
  // trunc: a leftover temp from a crashed earlier attempt is discarded,
  // which is what keeps a retry byte-identical to a first run.
  s.file.open(s.path, std::ios::binary | std::ios::trunc);
  if (!s.file) {
    throw std::runtime_error("SpillSink: cannot open spill file " +
                             s.path.string());
  }
}

void SpillSink::flush(Spill& s) {
  if (s.buf.out.empty()) return;
  s.file.write(reinterpret_cast<const char*>(s.buf.out.data()),
               static_cast<std::streamsize>(s.buf.out.size()));
  s.buf.out.clear();
}

void SpillSink::on_window(std::size_t window, WindowRecords&& records) {
  const std::size_t expected = window_begin_ + counts_.size();
  if (window != expected || window >= window_end_ || finalized_) {
    throw std::logic_error("SpillSink: window " + std::to_string(window) +
                           " out of order (expected " +
                           std::to_string(expected) + ")");
  }
  counts_.push_back(records.counts());
  if (records.has_run) {
    wire::put_record(runs_.buf, records.rack_run);
    ++runs_.records;
  }
  for (const auto& sr : records.server_runs) {
    wire::put_record(servers_.buf, sr);
  }
  servers_.records += records.server_runs.size();
  for (const auto& b : records.bursts) {
    wire::put_record(bursts_.buf, b);
  }
  bursts_.records += records.bursts.size();
  // First qualifying window in canonical order wins, exactly as in
  // DatasetBuilder (and the historic serial sweep).
  if ((records.exemplar_kind & kLowExemplar) != 0 &&
      low_exemplar_.num_samples == 0) {
    low_exemplar_ = records.exemplar;
  }
  if ((records.exemplar_kind & kHighExemplar) != 0 &&
      high_exemplar_.num_samples == 0) {
    high_exemplar_ = std::move(records.exemplar);
  }
  for (Spill* s : {&runs_, &servers_, &bursts_}) {
    if (s->buf.out.size() >= chunk_bytes_) flush(*s);
  }
}

bool SpillSink::finalize(std::string* error) {
  const auto fail = [&](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  if (finalized_ ||
      counts_.size() != static_cast<std::size_t>(window_end_ - window_begin_)) {
    throw std::logic_error(
        finalized_ ? "SpillSink: finalize() called twice"
                   : "SpillSink: finalize() before the shard's window range "
                     "completed");
  }
  finalized_ = true;
  for (Spill* s : {&runs_, &servers_, &bursts_}) {
    flush(*s);
    s->file.close();
    if (s->file.fail()) {
      return fail("cannot write spill file " + s->path.string());
    }
  }

  // A full-range shard carries the busy-hour classification, exactly as
  // DatasetBuilder::take().  Rack-run records are one per window at most,
  // so reading them back stays far below one spill chunk per window.
  if (shard_.full_range()) {
    Dataset day;
    day.config = config_;
    day.racks = racks_;
    std::ifstream in(runs_.path, std::ios::binary);
    std::vector<std::uint8_t> blob(
        static_cast<std::size_t>(runs_.records) *
        wire::wire_size(static_cast<const RackRunRecord*>(nullptr)));
    if (!blob.empty() &&
        !in.read(reinterpret_cast<char*>(blob.data()),
                 static_cast<std::streamsize>(blob.size()))) {
      return fail("cannot read back spill file " + runs_.path.string());
    }
    wire::Reader r(blob);
    day.rack_runs.reserve(static_cast<std::size_t>(runs_.records));
    for (std::uint64_t i = 0; i < runs_.records; ++i) {
      RackRunRecord rec;
      if (!wire::get_record(r, &rec)) {
        return fail("corrupt spill file " + runs_.path.string());
      }
      day.rack_runs.push_back(rec);
    }
    finalize_classification(day);
    racks_ = std::move(day.racks);
  }

  Dataset head;
  head.fingerprint = fingerprint_;
  head.config = config_;
  head.shard = shard_;
  head.window_begin = window_begin_;
  head.window_end = window_end_;
  wire::Writer w;
  wire::put_header(w, head);
  wire::put_records(w, counts_);
  wire::put_records(w, racks_);

  const std::filesystem::path target(out_);
  std::filesystem::path tmp = target;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return fail("cannot open " + tmp.string());
    out.write(reinterpret_cast<const char*>(w.out.data()),
              static_cast<std::streamsize>(w.out.size()));
    bool ok = static_cast<bool>(out);
    for (Spill* s : {&runs_, &servers_, &bursts_}) {
      if (!ok) break;
      wire::Writer len;
      len.put(s->records);
      out.write(reinterpret_cast<const char*>(len.out.data()),
                static_cast<std::streamsize>(len.out.size()));
      // Non-throwing file_size: a spill file that vanished (or sits on a
      // flaky mount) must surface as fail(...), not as a filesystem_error
      // unwinding through the worker.
      std::error_code size_ec;
      const std::uintmax_t spill_size =
          std::filesystem::file_size(s->path, size_ec);
      std::ifstream in(s->path, std::ios::binary);
      if (!in || size_ec) {
        ok = false;
        break;
      }
      ok = static_cast<bool>(out) &&
           copy_bytes(in, out, static_cast<std::uint64_t>(spill_size),
                      chunk_bytes_);
    }
    if (ok) {
      wire::Writer tail;
      wire::put_exemplar(tail, low_exemplar_);
      wire::put_exemplar(tail, high_exemplar_);
      out.write(reinterpret_cast<const char*>(tail.out.data()),
                static_cast<std::streamsize>(tail.out.size()));
      ok = static_cast<bool>(out);
    }
    if (!ok) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return fail("cannot write " + tmp.string());
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, target, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return fail("cannot rename " + tmp.string() + " to " + out_ + ": " +
                ec.message());
  }
  for (Spill* s : {&runs_, &servers_, &bursts_}) {
    std::filesystem::remove(s->path, ec);
  }
  return true;
}

}  // namespace msamp::fleet

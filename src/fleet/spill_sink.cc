#include "fleet/spill_sink.h"

#include <stdexcept>
#include <utility>

namespace msamp::fleet {
namespace {

// Copies `count` bytes from `in` (positioned) to `out` through a buffer of
// at most `chunk` bytes.  Returns false on any stream failure.
bool copy_bytes(std::ifstream& in, std::ofstream& out, std::uint64_t count,
                std::size_t chunk) {
  std::vector<char> buf(std::min<std::uint64_t>(count == 0 ? 1 : count,
                                                std::max<std::size_t>(chunk, 1)));
  std::uint64_t left = count;
  while (left > 0) {
    const auto n = static_cast<std::streamsize>(
        std::min<std::uint64_t>(left, buf.size()));
    if (!in.read(buf.data(), n)) return false;
    if (!out.write(buf.data(), n)) return false;
    left -= static_cast<std::uint64_t>(n);
  }
  return true;
}

// Writes zero bytes until `pos` reaches `target` (column alignment gaps;
// always zero on the wire).
bool pad_stream(std::ofstream& out, std::uint64_t* pos, std::uint64_t target) {
  static constexpr char kZeros[4096] = {};
  while (*pos < target) {
    const auto n = static_cast<std::streamsize>(
        std::min<std::uint64_t>(target - *pos, sizeof(kZeros)));
    if (!out.write(kZeros, n)) return false;
    *pos += static_cast<std::uint64_t>(n);
  }
  return true;
}

}  // namespace

SpillSink::SpillSink(const FleetConfig& config, ShardSpec shard,
                     std::string out_path, std::size_t chunk_bytes)
    : config_(config),
      shard_(shard),
      out_(std::move(out_path)),
      chunk_bytes_(std::max<std::size_t>(chunk_bytes, 64)) {
  if (!shard.valid()) {
    throw std::invalid_argument("invalid shard spec " +
                                std::to_string(shard.index) + "/" +
                                std::to_string(shard.count));
  }
  // The flush budget is shared across all column buffers, so total spill
  // RSS stays near `chunk_bytes` no matter how many columns v6 has.
  const std::size_t total_cols =
      wire::kRackRunCols + wire::kServerRunCols + wire::kBurstCols;
  col_chunk_bytes_ = std::max<std::size_t>(chunk_bytes_ / total_cols, 64);
  fingerprint_ = config.fingerprint();
  racks_ = dataset_rack_table(config);
  const std::size_t total =
      racks_.size() * static_cast<std::size_t>(config.hours);
  window_begin_ = shard.begin(total);
  window_end_ = shard.end(total);
  counts_.reserve(static_cast<std::size_t>(window_end_ - window_begin_));

  std::error_code ec;
  const auto parent = std::filesystem::path(out_).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  open_section(runs_, "runs", wire::kRackRunCols);
  open_section(servers_, "servers", wire::kServerRunCols);
  open_section(bursts_, "bursts", wire::kBurstCols);
}

SpillSink::~SpillSink() {
  std::error_code ec;
  for (SectionSpills* sec : {&runs_, &servers_, &bursts_}) {
    for (Spill& s : sec->cols) {
      if (s.file.is_open()) s.file.close();
      std::filesystem::remove(s.path, ec);
    }
  }
}

void SpillSink::open_section(SectionSpills& sec, const char* name,
                             std::size_t n_cols) {
  sec.cols.resize(n_cols);
  for (std::size_t c = 0; c < n_cols; ++c) {
    Spill& s = sec.cols[c];
    s.path = std::filesystem::path(out_ + ".spill-" + name + "-c" +
                                   std::to_string(c));
    // trunc: a leftover temp from a crashed earlier attempt is discarded,
    // which is what keeps a retry byte-identical to a first run.
    s.file.open(s.path, std::ios::binary | std::ios::trunc);
    if (!s.file) {
      throw std::runtime_error("SpillSink: cannot open spill file " +
                               s.path.string());
    }
  }
}

void SpillSink::flush(Spill& s) {
  if (s.buf.out.empty()) return;
  s.file.write(reinterpret_cast<const char*>(s.buf.out.data()),
               static_cast<std::streamsize>(s.buf.out.size()));
  s.buf.out.clear();
}

void SpillSink::flush_full_buffers() {
  for (SectionSpills* sec : {&runs_, &servers_, &bursts_}) {
    for (Spill& s : sec->cols) {
      if (s.buf.out.size() >= col_chunk_bytes_) flush(s);
    }
  }
}

void SpillSink::on_window(std::size_t window, WindowRecords&& records) {
  const std::size_t expected = window_begin_ + counts_.size();
  if (window != expected || window >= window_end_ || finalized_) {
    throw std::logic_error("SpillSink: window " + std::to_string(window) +
                           " out of order (expected " +
                           std::to_string(expected) + ")");
  }
  counts_.push_back(records.counts());
  if (records.has_run) {
    for (std::size_t c = 0; c < wire::kRackRunCols; ++c) {
      wire::put_column(runs_.cols[c].buf, records.rack_run, c);
    }
    ++runs_.records;
  }
  for (std::size_t c = 0; c < wire::kServerRunCols; ++c) {
    for (const auto& sr : records.server_runs) {
      wire::put_column(servers_.cols[c].buf, sr, c);
    }
  }
  servers_.records += records.server_runs.size();
  for (std::size_t c = 0; c < wire::kBurstCols; ++c) {
    for (const auto& b : records.bursts) {
      wire::put_column(bursts_.cols[c].buf, b, c);
    }
  }
  bursts_.records += records.bursts.size();
  // First qualifying window in canonical order wins, exactly as in
  // DatasetBuilder (and the historic serial sweep).
  if ((records.exemplar_kind & kLowExemplar) != 0 &&
      low_exemplar_.num_samples == 0) {
    low_exemplar_ = records.exemplar;
  }
  if ((records.exemplar_kind & kHighExemplar) != 0 &&
      high_exemplar_.num_samples == 0) {
    high_exemplar_ = std::move(records.exemplar);
  }
  flush_full_buffers();
}

util::Status SpillSink::finalize() {
  if (finalized_ ||
      counts_.size() != static_cast<std::size_t>(window_end_ - window_begin_)) {
    throw std::logic_error(
        finalized_ ? "SpillSink: finalize() called twice"
                   : "SpillSink: finalize() before the shard's window range "
                     "completed");
  }
  finalized_ = true;
  struct SecMeta {
    SectionSpills* sec;
    const std::size_t* widths;
  };
  const SecMeta metas[] = {{&runs_, wire::kRackRunWidths},
                           {&servers_, wire::kServerRunWidths},
                           {&bursts_, wire::kBurstWidths}};
  for (const auto& m : metas) {
    for (std::size_t c = 0; c < m.sec->cols.size(); ++c) {
      Spill& s = m.sec->cols[c];
      flush(s);
      s.file.close();
      if (s.file.fail()) {
        return util::Status::error("cannot write spill file",
                                   s.path.string());
      }
      // Non-throwing file_size: a spill file that vanished (or sits on a
      // flaky mount) must surface as an error Status, not as a
      // filesystem_error unwinding through the worker.
      std::error_code size_ec;
      const std::uintmax_t spill_size =
          std::filesystem::file_size(s.path, size_ec);
      if (size_ec || spill_size != m.sec->records * m.widths[c]) {
        return util::Status::error("spill file size disagrees with its "
                                   "record count",
                                   s.path.string());
      }
    }
  }

  // A full-range shard carries the busy-hour classification, exactly as
  // DatasetBuilder::take().  Rack-run records are one per window at most,
  // so reading them back stays far below the full record volume.
  if (shard_.full_range()) {
    Dataset day;
    day.config = config_;
    day.racks = racks_;
    day.rack_runs.resize(static_cast<std::size_t>(runs_.records));
    for (std::size_t c = 0; c < wire::kRackRunCols; ++c) {
      std::ifstream in(runs_.cols[c].path, std::ios::binary);
      std::vector<std::uint8_t> blob(static_cast<std::size_t>(
          runs_.records * wire::kRackRunWidths[c]));
      if (!blob.empty() &&
          !in.read(reinterpret_cast<char*>(blob.data()),
                   static_cast<std::streamsize>(blob.size()))) {
        return util::Status::error("cannot read back spill file",
                                   runs_.cols[c].path.string());
      }
      wire::Reader r(blob);
      for (auto& rec : day.rack_runs) {
        bool ok = true;
        switch (c) {
          case 0: ok = r.get(&rec.rack_id); break;
          case 1: ok = r.get(&rec.region); break;
          case 2: ok = r.get(&rec.hour); break;
          case 3: ok = r.get(&rec.usable); break;
          case 4: ok = r.get(&rec.avg_contention); break;
          case 5: ok = r.get(&rec.min_active_contention); break;
          case 6: ok = r.get(&rec.p90_contention); break;
          case 7: ok = r.get(&rec.max_contention); break;
          case 8: ok = r.get(&rec.in_bytes); break;
          case 9: ok = r.get(&rec.drop_bytes); break;
          case 10: ok = r.get(&rec.ecn_bytes); break;
          default: ok = false; break;
        }
        if (!ok) {
          return util::Status::error("corrupt spill file",
                                     runs_.cols[c].path.string());
        }
      }
    }
    finalize_classification(day);
    racks_ = std::move(day.racks);
  }

  wire::SectionCounts counts;
  counts.windows = counts_.size();
  counts.racks = racks_.size();
  counts.rack_runs = runs_.records;
  counts.server_runs = servers_.records;
  counts.bursts = bursts_.records;
  counts.exemplar_bytes = wire::exemplar_wire_bytes(low_exemplar_) +
                          wire::exemplar_wire_bytes(high_exemplar_);
  const wire::V6Layout lay = wire::v6_layout(counts);

  const std::filesystem::path target(out_);
  std::filesystem::path tmp = target;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return util::Status::error("cannot open temp file for writing",
                                 tmp.string());
    }
    std::uint64_t pos = 0;
    const auto write_buf = [&out, &pos](wire::Writer& w) {
      out.write(reinterpret_cast<const char*>(w.out.data()),
                static_cast<std::streamsize>(w.out.size()));
      pos += w.out.size();
      w.out.clear();
      return static_cast<bool>(out);
    };

    bool ok = true;
    {
      wire::Writer head;
      wire::V6Header h;
      h.fingerprint = fingerprint_;
      h.config = config_;
      h.shard = shard_;
      h.window_begin = window_begin_;
      h.window_end = window_end_;
      h.counts = counts;
      h.dir = lay.dir;
      wire::put_header_v6(head, h);
      ok = write_buf(head);
    }

    // Window directory columns, streamed from the in-RAM count table in
    // bounded chunks (the prefix-offset columns are running sums).
    const auto& wcols = lay.columns[wire::kSecWindows];
    wire::Writer buf;
    const auto stream_window_col = [&](std::uint64_t col_off, auto&& emit) {
      if (!ok) return;
      ok = pad_stream(out, &pos, col_off);
      for (const auto& c : counts_) {
        if (!ok) return;
        emit(buf, c);
        if (buf.out.size() >= chunk_bytes_) ok = write_buf(buf);
      }
      if (ok) ok = write_buf(buf);
    };
    stream_window_col(wcols[0], [](wire::Writer& w, const WindowCounts& c) {
      w.put(c.has_run);
    });
    stream_window_col(wcols[1], [](wire::Writer& w, const WindowCounts& c) {
      w.put(c.server_runs);
    });
    stream_window_col(wcols[2], [](wire::Writer& w, const WindowCounts& c) {
      w.put(c.bursts);
    });
    std::uint64_t run_off = 0, server_off = 0, burst_off = 0;
    stream_window_col(wcols[3],
                      [&run_off](wire::Writer& w, const WindowCounts& c) {
                        w.put(run_off);
                        run_off += c.has_run ? 1 : 0;
                      });
    stream_window_col(wcols[4],
                      [&server_off](wire::Writer& w, const WindowCounts& c) {
                        w.put(server_off);
                        server_off += c.server_runs;
                      });
    stream_window_col(wcols[5],
                      [&burst_off](wire::Writer& w, const WindowCounts& c) {
                        w.put(burst_off);
                        burst_off += c.bursts;
                      });

    // Rack table columns (tiny, in RAM).
    const auto& rcols = lay.columns[wire::kSecRacks];
    for (std::size_t c = 0; ok && c < wire::kRackCols; ++c) {
      ok = pad_stream(out, &pos, rcols[c]);
      for (const auto& rec : racks_) wire::put_column(buf, rec, c);
      if (ok) ok = write_buf(buf);
    }

    // Record sections: each column is exactly one spill file.
    const wire::Section sec_ids[] = {wire::kSecRackRuns,
                                     wire::kSecServerRuns, wire::kSecBursts};
    for (std::size_t m = 0; ok && m < std::size(metas); ++m) {
      const auto& cols = lay.columns[sec_ids[m]];
      for (std::size_t c = 0; ok && c < cols.size(); ++c) {
        Spill& s = metas[m].sec->cols[c];
        ok = pad_stream(out, &pos, cols[c]);
        if (!ok) break;
        const std::uint64_t bytes =
            metas[m].sec->records * metas[m].widths[c];
        std::ifstream in(s.path, std::ios::binary);
        ok = in.good() && copy_bytes(in, out, bytes, chunk_bytes_);
        pos += bytes;
      }
    }

    if (ok) {
      ok = pad_stream(out, &pos, lay.columns[wire::kSecExemplars][0]);
      wire::put_exemplar(buf, low_exemplar_);
      wire::put_exemplar(buf, high_exemplar_);
      if (ok) ok = write_buf(buf);
    }
    if (ok && pos != lay.file_bytes) ok = false;  // layout is the law
    if (!ok) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return util::Status::error("cannot write", tmp.string());
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, target, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return util::Status::error("cannot rename over output: " + ec.message(),
                               out_);
  }
  for (SectionSpills* sec : {&runs_, &servers_, &bursts_}) {
    for (Spill& s : sec->cols) std::filesystem::remove(s.path, ec);
  }
  return util::Status::ok();
}

}  // namespace msamp::fleet

// Fleet runner: generates placements for both regions, simulates hourly
// SyncMillisampler windows on every rack for a full day, streams each
// window through the analysis pipeline, and assembles the distilled
// Dataset.  `shared_dataset` adds a disk cache so all bench binaries reuse
// one generation pass.
#pragma once

#include <functional>
#include <string>

#include "fleet/dataset.h"

namespace msamp::fleet {

/// Generates the full dataset.  `progress` (optional) is called after each
/// (region, hour) batch with a fraction in [0, 1].
Dataset run_fleet(const FleetConfig& config,
                  std::function<void(double)> progress = nullptr);

/// Returns a process-wide dataset for `config`, loading it from
/// `cache_path` when the fingerprint matches, otherwise generating and
/// saving it.  The default path keeps bench binaries in one cache.
const Dataset& shared_dataset(const FleetConfig& config = {},
                              const std::string& cache_path =
                                  "bench_out/fleet_dataset.bin");

}  // namespace msamp::fleet

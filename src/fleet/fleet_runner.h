// Fleet runner: generates placements for both regions, simulates hourly
// SyncMillisampler windows on every rack for a full day, streams each
// window through the analysis pipeline, and assembles the distilled
// Dataset.  Windows run concurrently on `FleetConfig::threads` lanes
// (deterministic: every thread count yields byte-identical datasets —
// see docs/PERFORMANCE.md for the contract).
//
// Generation is shard-aware: `run_fleet(config, shard, sink)` simulates
// one contiguous slice of the canonical window sequence and streams each
// completed window into a WindowSink in canonical order, so a day can be
// split across processes and machines and the shard files merged back
// (fleet/merge.h) into bytes identical to a single-process run.  The
// historic `run_fleet(config) -> Dataset` stays as a thin wrapper over
// the full-range shard and a DatasetBuilder sink.  `shared_dataset` adds
// a disk cache so all bench binaries reuse one generation pass.
#pragma once

#include <functional>
#include <string>

#include "fleet/dataset.h"
#include "fleet/shard.h"

namespace msamp::fleet {

/// Simulates the windows of `shard` (its canonical slice of the
/// (region, hour, rack) sequence) on `config.threads` lanes (positive =
/// exact count; 0 = MSAMP_THREADS if set, else all cores) and streams
/// each completed window into `sink` strictly in canonical window order,
/// on the calling thread.  Windows are handed over in bounded chunks, so
/// peak memory is a few chunks of window records — never the whole shard,
/// let alone the whole day.  `progress` (optional) is invoked serially
/// after each completed window with a strictly increasing fraction of the
/// *shard's* windows that ends at exactly 1.0 (also for empty shards).
/// Throws std::invalid_argument if `shard` is invalid.
void run_fleet(const FleetConfig& config, const ShardSpec& shard,
               WindowSink& sink,
               std::function<void(double)> progress = nullptr);

/// Generates the full dataset: the full-range shard streamed into a
/// DatasetBuilder.  Same determinism contract as above — the result is
/// byte-identical for any thread count, and to any shard split merged
/// with merge_datasets.
Dataset run_fleet(const FleetConfig& config,
                  std::function<void(double)> progress = nullptr);

/// Returns a process-wide mapped view of the dataset for `config`,
/// reusing `cache_path` when the fingerprint matches and the file covers
/// the full day (a partial shard file is never silently served),
/// otherwise generating it through a SpillSink (bounded RSS even at
/// cluster scale) and mapping the result.  The default path keeps bench
/// binaries in one cache.  This is the read path of every bench/analysis
/// consumer: records stream from the mapping, zero-copy.  Safe for
/// concurrent first-callers: exactly one thread generates, the rest block
/// and then share the same instance; the cache file is written via an
/// atomic rename so a crashed run never leaves a truncated file.  Throws
/// std::runtime_error when the cache can neither be opened nor rebuilt.
const DatasetView& shared_view(const FleetConfig& config = {},
                               const std::string& cache_path =
                                   "bench_out/fleet_dataset.bin");

/// Materialized variant of `shared_view` for write-side callers that need
/// owned record vectors; same cache file, same regeneration rules.
const Dataset& shared_dataset(const FleetConfig& config = {},
                              const std::string& cache_path =
                                  "bench_out/fleet_dataset.bin");

/// The generator's model version (the kModelVersion constant folded into
/// every FleetConfig fingerprint).  Exposed for `msampctl version` so bug
/// reports pin the exact behavior revision a dataset came from.
std::uint64_t model_version() noexcept;

}  // namespace msamp::fleet

// Fleet runner: generates placements for both regions, simulates hourly
// SyncMillisampler windows on every rack for a full day, streams each
// window through the analysis pipeline, and assembles the distilled
// Dataset.  Windows run concurrently on `FleetConfig::threads` lanes
// (deterministic: every thread count yields byte-identical datasets —
// see docs/PERFORMANCE.md for the contract).  `shared_dataset` adds a
// disk cache so all bench binaries reuse one generation pass.
#pragma once

#include <functional>
#include <string>

#include "fleet/dataset.h"

namespace msamp::fleet {

/// Generates the full dataset.  Windows are simulated on
/// `config.threads` lanes (positive = exact count; 0 = MSAMP_THREADS if
/// set, else all cores); the result is byte-identical for any thread
/// count.  `progress` (optional)
/// is invoked serially after each completed (region, hour, rack) window
/// with a strictly increasing fraction that ends at exactly 1.0.
Dataset run_fleet(const FleetConfig& config,
                  std::function<void(double)> progress = nullptr);

/// Returns a process-wide dataset for `config`, loading it from
/// `cache_path` when the fingerprint matches, otherwise generating and
/// saving it.  The default path keeps bench binaries in one cache.
/// Safe for concurrent first-callers: exactly one thread generates, the
/// rest block and then share the same instance; the cache file is written
/// via an atomic rename so a crashed run never leaves a truncated file.
const Dataset& shared_dataset(const FleetConfig& config = {},
                              const std::string& cache_path =
                                  "bench_out/fleet_dataset.bin");

}  // namespace msamp::fleet

#include "fleet/wire.h"

namespace msamp::fleet::wire {

void put_record(Writer& w, const WindowCounts& c) {
  w.put(c.has_run);
  w.put(c.server_runs);
  w.put(c.bursts);
}
bool get_record(Reader& r, WindowCounts* c) {
  return r.get(&c->has_run) && r.get(&c->server_runs) && r.get(&c->bursts);
}

void put_record(Writer& w, const RackInfo& v) {
  w.put(v.rack_id);
  w.put(v.region);
  w.put(v.ml_dense);
  w.put(v.distinct_tasks);
  w.put(v.dominant_share);
  w.put(v.intensity);
  w.put(v.busy_hour_avg_contention);
  w.put(v.rack_class);
}
bool get_record(Reader& r, RackInfo* v) {
  return r.get(&v->rack_id) && r.get(&v->region) && r.get(&v->ml_dense) &&
         r.get(&v->distinct_tasks) && r.get(&v->dominant_share) &&
         r.get(&v->intensity) && r.get(&v->busy_hour_avg_contention) &&
         r.get(&v->rack_class);
}

void put_record(Writer& w, const RackRunRecord& v) {
  w.put(v.rack_id);
  w.put(v.region);
  w.put(v.hour);
  w.put(v.usable);
  w.put(v.avg_contention);
  w.put(v.min_active_contention);
  w.put(v.p90_contention);
  w.put(v.max_contention);
  w.put(v.in_bytes);
  w.put(v.drop_bytes);
  w.put(v.ecn_bytes);
}
bool get_record(Reader& r, RackRunRecord* v) {
  return r.get(&v->rack_id) && r.get(&v->region) && r.get(&v->hour) &&
         r.get(&v->usable) && r.get(&v->avg_contention) &&
         r.get(&v->min_active_contention) && r.get(&v->p90_contention) &&
         r.get(&v->max_contention) && r.get(&v->in_bytes) &&
         r.get(&v->drop_bytes) && r.get(&v->ecn_bytes);
}

void put_record(Writer& w, const ServerRunRecord& v) {
  w.put(v.rack_id);
  w.put(v.region);
  w.put(v.hour);
  w.put(v.bursty);
  w.put(v.avg_util);
  w.put(v.util_inside);
  w.put(v.util_outside);
  w.put(v.bursts_per_sec);
  w.put(v.conns_inside);
  w.put(v.conns_outside);
}
bool get_record(Reader& r, ServerRunRecord* v) {
  return r.get(&v->rack_id) && r.get(&v->region) && r.get(&v->hour) &&
         r.get(&v->bursty) && r.get(&v->avg_util) && r.get(&v->util_inside) &&
         r.get(&v->util_outside) && r.get(&v->bursts_per_sec) &&
         r.get(&v->conns_inside) && r.get(&v->conns_outside);
}

void put_record(Writer& w, const BurstRecord& v) {
  w.put(v.rack_id);
  w.put(v.region);
  w.put(v.hour);
  w.put(v.len_ms);
  w.put(v.volume_bytes);
  w.put(v.max_contention);
  w.put(v.avg_conns);
  w.put(v.contended);
  w.put(v.lossy);
}
bool get_record(Reader& r, BurstRecord* v) {
  return r.get(&v->rack_id) && r.get(&v->region) && r.get(&v->hour) &&
         r.get(&v->len_ms) && r.get(&v->volume_bytes) &&
         r.get(&v->max_contention) && r.get(&v->avg_conns) &&
         r.get(&v->contended) && r.get(&v->lossy);
}

void put_config(Writer& w, const FleetConfig& c) {
  w.put(c.seed);
  w.put(static_cast<std::int32_t>(c.racks_per_region));
  w.put(static_cast<std::int32_t>(c.servers_per_rack));
  w.put(static_cast<std::int32_t>(c.hours));
  w.put(static_cast<std::int32_t>(c.samples_per_run));
  w.put(static_cast<std::int32_t>(c.warmup_ms));
  w.put(c.line_rate_gbps);
  w.put(c.buffer.total_bytes);
  w.put(static_cast<std::int32_t>(c.buffer.quadrants));
  w.put(c.buffer.reserve_per_queue);
  w.put(c.buffer.alpha);
  w.put(c.buffer.ecn_threshold);
  w.put(static_cast<std::uint8_t>(c.buffer.policy));
  w.put(c.buffer.burst_alpha_boost);
  w.put(c.buffer.delay.target_delay_ms);
  w.put(c.buffer.delay.min_gain);
  w.put(c.buffer.delay.max_gain);
  w.put(c.buffer.delay.drain_gbps);
  w.put(c.rtt_ms);
  w.put(static_cast<std::int64_t>(c.mss));
  w.put(static_cast<std::uint8_t>(c.fabric.enabled ? 1 : 0));
  w.put(c.fabric.uplink_gbps);
  w.put(c.fabric.smoothing);
  w.put(static_cast<std::int32_t>(c.filter_cpus));
  w.put(static_cast<std::int64_t>(c.clocks.offset_stddev));
  w.put(static_cast<std::int64_t>(c.clocks.offset_max));
  w.put(static_cast<std::int32_t>(c.loss.rtt_shift_samples));
  w.put(static_cast<std::int32_t>(c.loss.lag_samples));
  w.put(c.classify.high_threshold);
}

bool get_config(Reader& r, FleetConfig* c) {
  std::int32_t racks = 0, servers = 0, hours = 0, samples = 0, warmup = 0;
  std::int32_t quadrants = 0, filter_cpus = 0, rtt_shift = 0, lag = 0;
  std::uint8_t policy = 0, fabric_enabled = 0;
  std::int64_t mss = 0, stddev = 0, offmax = 0;
  if (!(r.get(&c->seed) && r.get(&racks) && r.get(&servers) &&
        r.get(&hours) && r.get(&samples) && r.get(&warmup) &&
        r.get(&c->line_rate_gbps) && r.get(&c->buffer.total_bytes) &&
        r.get(&quadrants) && r.get(&c->buffer.reserve_per_queue) &&
        r.get(&c->buffer.alpha) && r.get(&c->buffer.ecn_threshold) &&
        r.get(&policy) && r.get(&c->buffer.burst_alpha_boost) &&
        r.get(&c->buffer.delay.target_delay_ms) &&
        r.get(&c->buffer.delay.min_gain) &&
        r.get(&c->buffer.delay.max_gain) &&
        r.get(&c->buffer.delay.drain_gbps) &&
        r.get(&c->rtt_ms) && r.get(&mss) && r.get(&fabric_enabled) &&
        r.get(&c->fabric.uplink_gbps) && r.get(&c->fabric.smoothing) &&
        r.get(&filter_cpus) && r.get(&stddev) && r.get(&offmax) &&
        r.get(&rtt_shift) && r.get(&lag) &&
        r.get(&c->classify.high_threshold))) {
    return false;
  }
  // The scale fields size window ranges and allocations downstream; reject
  // negatives (and an out-of-range policy byte) as corruption up front.
  if (racks < 0 || servers < 0 || hours < 0 || samples < 0 || warmup < 0) {
    return false;
  }
  if (policy > static_cast<std::uint8_t>(net::BufferPolicy::kDelayDriven)) {
    return false;
  }
  c->racks_per_region = racks;
  c->servers_per_rack = servers;
  c->hours = hours;
  c->samples_per_run = samples;
  c->warmup_ms = warmup;
  c->buffer.quadrants = quadrants;
  c->buffer.policy = static_cast<net::BufferPolicy>(policy);
  c->mss = mss;
  c->fabric.enabled = fabric_enabled != 0;
  c->filter_cpus = filter_cpus;
  c->clocks.offset_stddev = stddev;
  c->clocks.offset_max = offmax;
  c->loss.rtt_shift_samples = rtt_shift;
  c->loss.lag_samples = lag;
  c->threads = 0;  // execution detail; never travels with data
  return true;
}

void put_exemplar(Writer& w, const ExemplarRun& e) {
  w.put(e.rack_id);
  w.put(e.avg_contention);
  w.put(e.num_servers);
  w.put(e.num_samples);
  w.put_vec(e.raster);
  w.put_vec(e.contention);
}

bool get_exemplar(Reader& r, ExemplarRun* e) {
  return r.get(&e->rack_id) && r.get(&e->avg_contention) &&
         r.get(&e->num_servers) && r.get(&e->num_samples) &&
         r.get_vec(&e->raster) && r.get_vec(&e->contention);
}

void put_header(Writer& w, const Dataset& ds) {
  w.put(kMagic);
  w.put(kVersion);
  w.put(ds.fingerprint);
  put_config(w, ds.config);
  w.put(ds.shard.index);
  w.put(ds.shard.count);
  w.put(ds.window_begin);
  w.put(ds.window_end);
}

}  // namespace msamp::fleet::wire

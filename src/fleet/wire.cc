#include "fleet/wire.h"

#include <cstdlib>

namespace msamp::fleet::wire {

void pad_to(Writer& w, std::uint64_t abs_offset) {
  // Writers lay columns out strictly forward; a backward pad means the
  // layout arithmetic and the writer disagree, which must never ship.
  if (w.out.size() > abs_offset) std::abort();
  w.out.resize(static_cast<std::size_t>(abs_offset));  // zero-filled
}

void put_record(Writer& w, const WindowCounts& c) {
  w.put(c.has_run);
  w.put(c.server_runs);
  w.put(c.bursts);
}
bool get_record(Reader& r, WindowCounts* c) {
  return r.get(&c->has_run) && r.get(&c->server_runs) && r.get(&c->bursts);
}

void put_record(Writer& w, const RackInfo& v) {
  w.put(v.rack_id);
  w.put(v.region);
  w.put(v.ml_dense);
  w.put(v.distinct_tasks);
  w.put(v.dominant_share);
  w.put(v.intensity);
  w.put(v.busy_hour_avg_contention);
  w.put(v.rack_class);
}
bool get_record(Reader& r, RackInfo* v) {
  return r.get(&v->rack_id) && r.get(&v->region) && r.get(&v->ml_dense) &&
         r.get(&v->distinct_tasks) && r.get(&v->dominant_share) &&
         r.get(&v->intensity) && r.get(&v->busy_hour_avg_contention) &&
         r.get(&v->rack_class);
}

void put_record(Writer& w, const RackRunRecord& v) {
  w.put(v.rack_id);
  w.put(v.region);
  w.put(v.hour);
  w.put(v.usable);
  w.put(v.avg_contention);
  w.put(v.min_active_contention);
  w.put(v.p90_contention);
  w.put(v.max_contention);
  w.put(v.in_bytes);
  w.put(v.drop_bytes);
  w.put(v.ecn_bytes);
}
bool get_record(Reader& r, RackRunRecord* v) {
  return r.get(&v->rack_id) && r.get(&v->region) && r.get(&v->hour) &&
         r.get(&v->usable) && r.get(&v->avg_contention) &&
         r.get(&v->min_active_contention) && r.get(&v->p90_contention) &&
         r.get(&v->max_contention) && r.get(&v->in_bytes) &&
         r.get(&v->drop_bytes) && r.get(&v->ecn_bytes);
}

void put_record(Writer& w, const ServerRunRecord& v) {
  w.put(v.rack_id);
  w.put(v.region);
  w.put(v.hour);
  w.put(v.bursty);
  w.put(v.avg_util);
  w.put(v.util_inside);
  w.put(v.util_outside);
  w.put(v.bursts_per_sec);
  w.put(v.conns_inside);
  w.put(v.conns_outside);
}
bool get_record(Reader& r, ServerRunRecord* v) {
  return r.get(&v->rack_id) && r.get(&v->region) && r.get(&v->hour) &&
         r.get(&v->bursty) && r.get(&v->avg_util) && r.get(&v->util_inside) &&
         r.get(&v->util_outside) && r.get(&v->bursts_per_sec) &&
         r.get(&v->conns_inside) && r.get(&v->conns_outside);
}

void put_record(Writer& w, const BurstRecord& v) {
  w.put(v.rack_id);
  w.put(v.region);
  w.put(v.hour);
  w.put(v.len_ms);
  w.put(v.volume_bytes);
  w.put(v.max_contention);
  w.put(v.avg_conns);
  w.put(v.contended);
  w.put(v.lossy);
}
bool get_record(Reader& r, BurstRecord* v) {
  return r.get(&v->rack_id) && r.get(&v->region) && r.get(&v->hour) &&
         r.get(&v->len_ms) && r.get(&v->volume_bytes) &&
         r.get(&v->max_contention) && r.get(&v->avg_conns) &&
         r.get(&v->contended) && r.get(&v->lossy);
}

// --- columnar field appenders ------------------------------------------
// Column order must match the width tables in wire.h and the field order
// of the row codecs above (the v6 layout is a pure re-layout of the same
// field bytes).

void put_column(Writer& w, const RackInfo& v, std::size_t col) {
  switch (col) {
    case 0: w.put(v.rack_id); return;
    case 1: w.put(v.region); return;
    case 2: w.put(v.ml_dense); return;
    case 3: w.put(v.distinct_tasks); return;
    case 4: w.put(v.dominant_share); return;
    case 5: w.put(v.intensity); return;
    case 6: w.put(v.busy_hour_avg_contention); return;
    case 7: w.put(v.rack_class); return;
    default: std::abort();
  }
}

void put_column(Writer& w, const RackRunRecord& v, std::size_t col) {
  switch (col) {
    case 0: w.put(v.rack_id); return;
    case 1: w.put(v.region); return;
    case 2: w.put(v.hour); return;
    case 3: w.put(v.usable); return;
    case 4: w.put(v.avg_contention); return;
    case 5: w.put(v.min_active_contention); return;
    case 6: w.put(v.p90_contention); return;
    case 7: w.put(v.max_contention); return;
    case 8: w.put(v.in_bytes); return;
    case 9: w.put(v.drop_bytes); return;
    case 10: w.put(v.ecn_bytes); return;
    default: std::abort();
  }
}

void put_column(Writer& w, const ServerRunRecord& v, std::size_t col) {
  switch (col) {
    case 0: w.put(v.rack_id); return;
    case 1: w.put(v.region); return;
    case 2: w.put(v.hour); return;
    case 3: w.put(v.bursty); return;
    case 4: w.put(v.avg_util); return;
    case 5: w.put(v.util_inside); return;
    case 6: w.put(v.util_outside); return;
    case 7: w.put(v.bursts_per_sec); return;
    case 8: w.put(v.conns_inside); return;
    case 9: w.put(v.conns_outside); return;
    default: std::abort();
  }
}

void put_column(Writer& w, const BurstRecord& v, std::size_t col) {
  switch (col) {
    case 0: w.put(v.rack_id); return;
    case 1: w.put(v.region); return;
    case 2: w.put(v.hour); return;
    case 3: w.put(v.len_ms); return;
    case 4: w.put(v.volume_bytes); return;
    case 5: w.put(v.max_contention); return;
    case 6: w.put(v.avg_conns); return;
    case 7: w.put(v.contended); return;
    case 8: w.put(v.lossy); return;
    default: std::abort();
  }
}

// --- config / exemplar codecs ------------------------------------------

void put_config_legacy(Writer& w, const FleetConfig& c,
                       std::uint32_t version) {
  w.put(c.seed);
  w.put(static_cast<std::int32_t>(c.racks_per_region));
  w.put(static_cast<std::int32_t>(c.servers_per_rack));
  w.put(static_cast<std::int32_t>(c.hours));
  w.put(static_cast<std::int32_t>(c.samples_per_run));
  w.put(static_cast<std::int32_t>(c.warmup_ms));
  w.put(c.line_rate_gbps);
  w.put(c.buffer.total_bytes);
  w.put(static_cast<std::int32_t>(c.buffer.quadrants));
  w.put(c.buffer.reserve_per_queue);
  w.put(c.buffer.alpha);
  w.put(c.buffer.ecn_threshold);
  w.put(static_cast<std::uint8_t>(c.buffer.policy));
  w.put(c.buffer.burst_alpha_boost);
  if (version >= 5) {
    w.put(c.buffer.delay.target_delay_ms);
    w.put(c.buffer.delay.min_gain);
    w.put(c.buffer.delay.max_gain);
    w.put(c.buffer.delay.drain_gbps);
  }
  w.put(c.rtt_ms);
  w.put(static_cast<std::int64_t>(c.mss));
  w.put(static_cast<std::uint8_t>(c.fabric.enabled ? 1 : 0));
  w.put(c.fabric.uplink_gbps);
  w.put(c.fabric.smoothing);
  w.put(static_cast<std::int32_t>(c.filter_cpus));
  w.put(static_cast<std::int64_t>(c.clocks.offset_stddev));
  w.put(static_cast<std::int64_t>(c.clocks.offset_max));
  w.put(static_cast<std::int32_t>(c.loss.rtt_shift_samples));
  w.put(static_cast<std::int32_t>(c.loss.lag_samples));
  w.put(c.classify.high_threshold);
}

void put_config(Writer& w, const FleetConfig& c) {
  put_config_legacy(w, c, kVersion);
}

bool get_config_legacy(Reader& r, FleetConfig* c, std::uint32_t version) {
  std::int32_t racks = 0, servers = 0, hours = 0, samples = 0, warmup = 0;
  std::int32_t quadrants = 0, filter_cpus = 0, rtt_shift = 0, lag = 0;
  std::uint8_t policy = 0, fabric_enabled = 0;
  std::int64_t mss = 0, stddev = 0, offmax = 0;
  if (!(r.get(&c->seed) && r.get(&racks) && r.get(&servers) &&
        r.get(&hours) && r.get(&samples) && r.get(&warmup) &&
        r.get(&c->line_rate_gbps) && r.get(&c->buffer.total_bytes) &&
        r.get(&quadrants) && r.get(&c->buffer.reserve_per_queue) &&
        r.get(&c->buffer.alpha) && r.get(&c->buffer.ecn_threshold) &&
        r.get(&policy) && r.get(&c->buffer.burst_alpha_boost))) {
    return false;
  }
  if (version >= 5) {
    if (!(r.get(&c->buffer.delay.target_delay_ms) &&
          r.get(&c->buffer.delay.min_gain) &&
          r.get(&c->buffer.delay.max_gain) &&
          r.get(&c->buffer.delay.drain_gbps))) {
      return false;
    }
  }
  if (!(r.get(&c->rtt_ms) && r.get(&mss) && r.get(&fabric_enabled) &&
        r.get(&c->fabric.uplink_gbps) && r.get(&c->fabric.smoothing) &&
        r.get(&filter_cpus) && r.get(&stddev) && r.get(&offmax) &&
        r.get(&rtt_shift) && r.get(&lag) &&
        r.get(&c->classify.high_threshold))) {
    return false;
  }
  // The scale fields size window ranges and allocations downstream; reject
  // negatives (and an out-of-range policy byte) as corruption up front.
  if (racks < 0 || servers < 0 || hours < 0 || samples < 0 || warmup < 0) {
    return false;
  }
  if (policy > static_cast<std::uint8_t>(net::BufferPolicy::kDelayDriven)) {
    return false;
  }
  c->racks_per_region = racks;
  c->servers_per_rack = servers;
  c->hours = hours;
  c->samples_per_run = samples;
  c->warmup_ms = warmup;
  c->buffer.quadrants = quadrants;
  c->buffer.policy = static_cast<net::BufferPolicy>(policy);
  c->mss = mss;
  c->fabric.enabled = fabric_enabled != 0;
  c->filter_cpus = filter_cpus;
  c->clocks.offset_stddev = stddev;
  c->clocks.offset_max = offmax;
  c->loss.rtt_shift_samples = rtt_shift;
  c->loss.lag_samples = lag;
  c->threads = 0;  // execution detail; never travels with data
  return true;
}

bool get_config(Reader& r, FleetConfig* c) {
  return get_config_legacy(r, c, kVersion);
}

void put_exemplar(Writer& w, const ExemplarRun& e) {
  w.put(e.rack_id);
  w.put(e.avg_contention);
  w.put(e.num_servers);
  w.put(e.num_samples);
  w.put_vec(e.raster);
  w.put_vec(e.contention);
}

bool get_exemplar(Reader& r, ExemplarRun* e) {
  return r.get(&e->rack_id) && r.get(&e->avg_contention) &&
         r.get(&e->num_servers) && r.get(&e->num_samples) &&
         r.get_vec(&e->raster) && r.get_vec(&e->contention);
}

std::size_t exemplar_wire_bytes(const ExemplarRun& e) {
  return 4 + 4 + 2 + 2 + 8 + e.raster.size() + 8 + 2 * e.contention.size();
}

// --- v6 layout ----------------------------------------------------------

std::size_t config_wire_size() {
  Writer w;
  put_config(w, FleetConfig{});
  return w.out.size();
}

std::size_t header_bytes_v6() {
  // magic, version, fingerprint, config, shard index/count, window range,
  // four record-count u64s, section directory.
  return 4 + 4 + 8 + config_wire_size() + 4 + 4 + 8 + 8 + 4 * 8 +
         kNumSections * 16;
}

V6Layout v6_layout(const SectionCounts& counts) {
  struct Spec {
    std::size_t n_cols;
    const std::size_t* widths;
    std::uint64_t count;
  };
  const Spec specs[] = {
      {kWindowDirCols, kWindowDirWidths, counts.windows},
      {kRackCols, kRackWidths, counts.racks},
      {kRackRunCols, kRackRunWidths, counts.rack_runs},
      {kServerRunCols, kServerRunWidths, counts.server_runs},
      {kBurstCols, kBurstWidths, counts.bursts},
  };
  V6Layout lay;
  lay.header_bytes = header_bytes_v6();
  std::uint64_t cursor = lay.header_bytes;
  for (std::size_t s = 0; s < std::size(specs); ++s) {
    auto& cols = lay.columns[s];
    cols.resize(specs[s].n_cols);
    for (std::size_t c = 0; c < specs[s].n_cols; ++c) {
      cursor = align_segment(cursor);
      cols[c] = cursor;
      cursor += specs[s].count * specs[s].widths[c];
    }
    lay.dir[s].offset = cols.front();
    lay.dir[s].bytes = cursor - cols.front();
  }
  cursor = align_segment(cursor);
  lay.columns[kSecExemplars] = {cursor};
  lay.dir[kSecExemplars] = {cursor, counts.exemplar_bytes};
  lay.file_bytes = cursor + counts.exemplar_bytes;
  return lay;
}

void put_header_v6(Writer& w, const V6Header& h) {
  w.put(kMagic);
  w.put(kVersion);
  w.put(h.fingerprint);
  put_config(w, h.config);
  w.put(h.shard.index);
  w.put(h.shard.count);
  w.put(h.window_begin);
  w.put(h.window_end);
  w.put(h.counts.racks);
  w.put(h.counts.rack_runs);
  w.put(h.counts.server_runs);
  w.put(h.counts.bursts);
  for (const auto& d : h.dir) {
    w.put(d.offset);
    w.put(d.bytes);
  }
}

util::Status read_header_v6(const std::uint8_t* data, std::size_t available,
                            std::uint64_t file_size, V6Header* h,
                            V6Layout* layout) {
  const std::size_t need = header_bytes_v6();
  if (available < need || file_size < need) {
    return util::Status::error(
        "truncated header: need " + std::to_string(need) + " bytes, have " +
            std::to_string(file_size < available ? file_size : available),
        {}, static_cast<std::int64_t>(file_size));
  }
  Reader r(data, need);
  std::uint32_t magic = 0, version = 0;
  if (!r.get(&magic) || magic != kMagic) {
    return util::Status::error("not a dataset file (bad magic)", {}, 0);
  }
  if (!r.get(&version)) return util::Status::error("truncated header", {}, 4);
  if (version >= kLegacyVersionMin && version <= kLegacyVersionMax) {
    return util::Status::error(
        "legacy v" + std::to_string(version) +
            " row-wise dataset; rewrite it with `msampctl migrate` (or read "
            "it with the legacy Dataset::load)",
        {}, 4);
  }
  if (version != kVersion) {
    return util::Status::error(
        "unsupported dataset version " + std::to_string(version), {}, 4);
  }
  if (!r.get(&h->fingerprint)) {
    return util::Status::error("truncated header", {}, 8);
  }
  if (!get_config(r, &h->config)) {
    return util::Status::error("corrupt serialized FleetConfig", {}, 16);
  }
  if (!r.get(&h->shard.index) || !r.get(&h->shard.count) ||
      !h->shard.valid()) {
    return util::Status::error("invalid shard header", {},
                               static_cast<std::int64_t>(r.pos));
  }
  if (!r.get(&h->window_begin) || !r.get(&h->window_end)) {
    return util::Status::error("truncated header", {},
                               static_cast<std::int64_t>(r.pos));
  }
  // The shard's window range must be exactly what the canonical balanced
  // partition assigns it for this config's day.
  const std::uint64_t total =
      2ull * static_cast<std::uint64_t>(h->config.racks_per_region) *
      static_cast<std::uint64_t>(h->config.hours);
  if (h->window_begin !=
          h->shard.begin(static_cast<std::size_t>(total)) ||
      h->window_end != h->shard.end(static_cast<std::size_t>(total))) {
    return util::Status::error(
        "window range is not the canonical slice for shard " +
            std::to_string(h->shard.index) + "/" +
            std::to_string(h->shard.count),
        {}, static_cast<std::int64_t>(r.pos));
  }
  h->counts.windows = h->window_end - h->window_begin;
  if (!r.get(&h->counts.racks) || !r.get(&h->counts.rack_runs) ||
      !r.get(&h->counts.server_runs) || !r.get(&h->counts.bursts)) {
    return util::Status::error("truncated header", {},
                               static_cast<std::int64_t>(r.pos));
  }
  // Every shard carries the complete rack table; the window keying of the
  // view (rack = index % total_racks) depends on it.
  if (h->counts.racks !=
      2ull * static_cast<std::uint64_t>(h->config.racks_per_region)) {
    return util::Status::error(
        "rack table has " + std::to_string(h->counts.racks) +
            " entries, expected " +
            std::to_string(2ull * static_cast<std::uint64_t>(
                                      h->config.racks_per_region)),
        {}, static_cast<std::int64_t>(r.pos));
  }
  // Each record type has at least one 1-byte column, so any genuine count
  // is bounded by the file size; reject hostile counts before they can
  // overflow the layout arithmetic below.
  if (h->counts.windows > file_size || h->counts.racks > file_size ||
      h->counts.rack_runs > file_size || h->counts.server_runs > file_size ||
      h->counts.bursts > file_size) {
    return util::Status::error("record count exceeds file size", {},
                               static_cast<std::int64_t>(r.pos));
  }
  const std::int64_t dir_pos = static_cast<std::int64_t>(r.pos);
  for (auto& d : h->dir) {
    if (!r.get(&d.offset) || !r.get(&d.bytes)) {
      return util::Status::error("truncated header", {},
                                 static_cast<std::int64_t>(r.pos));
    }
  }
  h->counts.exemplar_bytes = h->dir[kSecExemplars].bytes;
  if (h->counts.exemplar_bytes > file_size) {
    return util::Status::error("exemplar section exceeds file size", {},
                               dir_pos);
  }
  // The directory must match the layout the counts imply — v6 layout is a
  // pure function of the counts, so any disagreement is corruption.
  *layout = v6_layout(h->counts);
  for (std::size_t s = 0; s < kNumSections; ++s) {
    if (h->dir[s].offset != layout->dir[s].offset ||
        h->dir[s].bytes != layout->dir[s].bytes) {
      return util::Status::error(
          "section directory entry " + std::to_string(s) +
              " disagrees with the layout implied by the record counts",
          {}, dir_pos);
    }
  }
  if (layout->file_bytes != file_size) {
    return util::Status::error(
        "file is " + std::to_string(file_size) + " bytes, layout needs " +
            std::to_string(layout->file_bytes),
        {}, static_cast<std::int64_t>(file_size));
  }
  return util::Status::ok();
}

std::vector<std::uint8_t> legacy_serialize(const Dataset& ds,
                                           std::uint32_t version) {
  Writer w;
  w.put(kMagic);
  w.put(version);
  w.put(ds.fingerprint);
  put_config_legacy(w, ds.config, version);
  w.put(ds.shard.index);
  w.put(ds.shard.count);
  w.put(ds.window_begin);
  w.put(ds.window_end);
  put_records(w, ds.window_counts);
  put_records(w, ds.racks);
  put_records(w, ds.rack_runs);
  put_records(w, ds.server_runs);
  put_records(w, ds.bursts);
  put_exemplar(w, ds.low_contention_example);
  put_exemplar(w, ds.high_contention_example);
  return std::move(w.out);
}

}  // namespace msamp::fleet::wire

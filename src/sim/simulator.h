// Minimal discrete-event simulator: a clock plus a priority queue of
// callbacks.  The packet-level rack simulator (src/net, src/transport) and
// the validation tools (src/workload) are built on it.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace msamp::sim {

/// Discrete-event scheduler.  Single-threaded; events at equal timestamps
/// fire in scheduling (FIFO) order so runs are fully deterministic.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time.
  SimTime now() const noexcept { return now_; }

  /// Schedules `cb` to run at absolute time `when` (clamped to `now()`).
  /// Returns an id usable with `cancel`.
  std::uint64_t schedule_at(SimTime when, Callback cb);

  /// Schedules `cb` to run `delay` from now.
  std::uint64_t schedule_in(SimDuration delay, Callback cb) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(cb));
  }

  /// Cancels a pending event. Cancelling an already-fired or unknown id is
  /// a no-op. Returns true if the event was pending.
  bool cancel(std::uint64_t id);

  /// Runs events until the queue is empty or `limit` is reached (whichever
  /// first); the clock ends at the last fired event (or `limit`).
  void run_until(SimTime limit);

  /// Runs all pending events.
  void run();

  /// Number of events waiting (including cancelled tombstones).
  std::size_t pending() const noexcept { return queue_.size(); }

  /// Total events dispatched, for tests and perf accounting.
  std::uint64_t dispatched() const noexcept { return dispatched_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // FIFO tiebreaker + cancellation handle
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t dispatched_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<std::uint64_t> cancelled_;  // sorted lazily on lookup
};

}  // namespace msamp::sim

// Simulation time: 64-bit signed nanoseconds since the start of the
// simulation.  All layers (packet sim, fluid sim, sampler) share this unit
// so that Millisampler's bucket arithmetic is identical everywhere.
//
// The only sanctioned notion of time: msamp_lint's nondet-time rule bans
// time()/std::chrono wall clocks everywhere but this header
// (docs/STATIC_ANALYSIS.md) — simulated output must never depend on when
// or how fast the host runs.
#pragma once

#include <cstdint>

namespace msamp::sim {

/// Nanoseconds since simulation start.
using SimTime = std::int64_t;

/// Duration in nanoseconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1'000;
inline constexpr SimDuration kMillisecond = 1'000'000;
inline constexpr SimDuration kSecond = 1'000'000'000;

/// Converts a duration to (fractional) milliseconds, for reporting.
constexpr double to_ms(SimDuration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Converts a duration to (fractional) seconds, for reporting.
constexpr double to_sec(SimDuration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Bytes transferable in `d` at `gbps` gigabits per second.
constexpr double bytes_in(SimDuration d, double gbps) noexcept {
  return gbps * 1e9 / 8.0 * to_sec(d);
}

/// Time to serialize `bytes` at `gbps` gigabits per second (rounded to the
/// nearest nanosecond; plain truncation would turn 960.0ns into 959ns when
/// the division lands a hair below the exact value).
constexpr SimDuration serialize_time(std::int64_t bytes, double gbps) noexcept {
  return static_cast<SimDuration>(static_cast<double>(bytes) * 8.0 /
                                      (gbps * 1e9) * 1e9 +
                                  0.5);
}

}  // namespace msamp::sim

#include "sim/simulator.h"

#include <algorithm>

namespace msamp::sim {

std::uint64_t Simulator::schedule_at(SimTime when, Callback cb) {
  if (when < now_) when = now_;
  const std::uint64_t id = next_seq_++;
  queue_.push(Event{when, id, std::move(cb)});
  return id;
}

bool Simulator::cancel(std::uint64_t id) {
  if (id == 0 || id >= next_seq_) return false;
  // Tombstone: the event stays in the heap and is skipped on pop.  The
  // cancelled list is kept sorted for O(log n) membership tests.
  const auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id);
  if (it != cancelled_.end() && *it == id) return false;
  cancelled_.insert(it, id);
  return true;
}

void Simulator::run_until(SimTime limit) {
  while (!queue_.empty() && queue_.top().when <= limit) {
    Event ev = queue_.top();
    queue_.pop();
    const auto it =
        std::lower_bound(cancelled_.begin(), cancelled_.end(), ev.seq);
    if (it != cancelled_.end() && *it == ev.seq) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.when;
    ++dispatched_;
    ev.cb();
  }
  if (now_ < limit) now_ = limit;
}

void Simulator::run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    const auto it =
        std::lower_bound(cancelled_.begin(), cancelled_.end(), ev.seq);
    if (it != cancelled_.end() && *it == ev.seq) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.when;
    ++dispatched_;
    ev.cb();
  }
}

}  // namespace msamp::sim

// The user-space half of Millisampler (§4.1): attaches the tc filter to a
// host, schedules runs, waits for completion, detaches, aggregates the
// per-CPU counters into a RunRecord, and keeps an on-host history of
// serialized runs (the paper keeps ~a week, compressed).
//
// Also supports the periodic mode in which the daemon re-schedules a run
// every `period` ("occasional execution minimizes overhead").
#pragma once

#include <cstdint>
#include <deque>
#include <vector>
#include <functional>

#include "core/clock_model.h"
#include "core/run_record.h"
#include "core/run_store.h"
#include "core/tc_filter.h"
#include "net/host.h"
#include "sim/simulator.h"

namespace msamp::core {

/// Sampler daemon configuration.
struct SamplerConfig {
  TcFilterConfig filter;
  /// Sampling intervals rotated across periodic runs (§4.1: the daemon
  /// schedules 10ms, 1ms and 100µs runs; all rack-level analysis uses
  /// 1ms).  The first entry is the default for ad-hoc runs.
  std::vector<sim::SimDuration> intervals{sim::kMillisecond,
                                          10 * sim::kMillisecond,
                                          100 * sim::kMicrosecond};
  /// Extra wall-clock wait past the nominal run duration before the user
  /// code force-stops and reads the counters.
  sim::SimDuration grace = 100 * sim::kMillisecond;
  /// Number of serialized runs retained on the host.
  std::size_t history_limit = 672;  // a week of 15-minute periodic runs
};

/// Per-host Millisampler daemon.
class Sampler {
 public:
  using RunCallback = std::function<void(const RunRecord&)>;

  /// `clock_offset` shifts packet timestamps into the host's own clock.
  Sampler(sim::Simulator& simulator, net::Host& host,
          sim::SimDuration clock_offset, const SamplerConfig& config);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Starts one run at the given sampling interval.  Returns false if a
  /// run is already active.  `done` fires after the counters are read.
  bool start_run(sim::SimDuration interval, RunCallback done);

  /// Begins periodic collection every `period` (first run immediately).
  void start_periodic(sim::SimDuration period);
  void stop_periodic();

  /// True while a run is attached to the packet path.
  bool active() const noexcept { return active_; }

  /// Compressed run history, newest last (§4.1: compressed on local disk).
  const std::deque<std::vector<std::uint8_t>>& history() const noexcept {
    return history_;
  }

  /// Decompresses run `i` of the history (0 = oldest).
  RunRecord history_run(std::size_t i) const;

  /// Total compressed bytes held (the "few hundred megabytes per week"
  /// budget of §4.2, scaled).
  std::size_t history_bytes() const noexcept;

  TcFilter& filter() noexcept { return filter_; }
  net::Host& host() noexcept { return host_; }
  sim::SimDuration clock_offset() const noexcept { return clock_offset_; }

  /// Total packets inspected while enabled, for overhead accounting.
  std::uint64_t packets_processed() const noexcept { return processed_; }

  /// Attaches an on-disk store: completed runs are persisted there in
  /// addition to the bounded in-memory history (nullptr detaches).
  void set_store(RunStore* store) noexcept { store_ = store; }

 private:
  void attach();
  void detach();
  void finish_run();
  int rss_cpu(const net::Packet& segment) const;

  sim::Simulator& simulator_;
  net::Host& host_;
  sim::SimDuration clock_offset_;
  SamplerConfig config_;
  TcFilter filter_;

  bool active_ = false;
  RunCallback done_;
  std::uint64_t finish_event_ = 0;
  std::uint64_t periodic_event_ = 0;
  sim::SimDuration periodic_period_ = 0;
  std::size_t next_interval_ = 0;  ///< rotation index into config intervals
  std::uint64_t processed_ = 0;
  RunStore* store_ = nullptr;
  std::deque<std::vector<std::uint8_t>> history_;
};

}  // namespace msamp::core

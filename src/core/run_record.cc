#include "core/run_record.h"

#include <cstring>

namespace msamp::core {
namespace {

constexpr std::uint32_t kMagic = 0x4d53414d;  // "MSAM"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  const auto old = out.size();
  out.resize(old + sizeof(T));
  std::memcpy(out.data() + old, &value, sizeof(T));
}

template <typename T>
bool get(const std::vector<std::uint8_t>& in, std::size_t& pos, T* value) {
  if (pos + sizeof(T) > in.size()) return false;
  std::memcpy(value, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return true;
}

}  // namespace

double RunRecord::ingress_utilization(std::size_t i,
                                      double line_rate_gbps) const {
  const double capacity = sim::bytes_in(interval, line_rate_gbps);
  if (capacity <= 0.0 || i >= buckets.size()) return 0.0;
  return static_cast<double>(buckets[i].in_bytes) / capacity;
}

std::int64_t RunRecord::total_ingress_bytes() const noexcept {
  std::int64_t total = 0;
  for (const auto& b : buckets) total += b.in_bytes;
  return total;
}

std::vector<std::uint8_t> RunRecord::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(32 + buckets.size() * 48);
  put(out, kMagic);
  put(out, kVersion);
  put(out, static_cast<std::uint32_t>(host));
  put(out, static_cast<std::int64_t>(start));
  put(out, static_cast<std::int64_t>(interval));
  put(out, static_cast<std::uint64_t>(buckets.size()));
  for (const auto& b : buckets) {
    put(out, b.in_bytes);
    put(out, b.in_retx_bytes);
    put(out, b.out_bytes);
    put(out, b.out_retx_bytes);
    put(out, b.in_ecn_bytes);
    put(out, b.connections);
  }
  return out;
}

bool RunRecord::deserialize(const std::vector<std::uint8_t>& blob) {
  std::size_t pos = 0;
  std::uint32_t magic = 0, version = 0, host32 = 0;
  std::int64_t start64 = 0, interval64 = 0;
  std::uint64_t count = 0;
  if (!get(blob, pos, &magic) || magic != kMagic) return false;
  if (!get(blob, pos, &version) || version != kVersion) return false;
  if (!get(blob, pos, &host32)) return false;
  if (!get(blob, pos, &start64)) return false;
  if (!get(blob, pos, &interval64) || interval64 <= 0) return false;
  if (!get(blob, pos, &count)) return false;
  if (count > (blob.size() - pos) / 48) return false;  // reject bogus sizes
  host = static_cast<net::HostId>(host32);
  start = start64;
  interval = interval64;
  buckets.assign(static_cast<std::size_t>(count), BucketSample{});
  for (auto& b : buckets) {
    if (!get(blob, pos, &b.in_bytes) || !get(blob, pos, &b.in_retx_bytes) ||
        !get(blob, pos, &b.out_bytes) || !get(blob, pos, &b.out_retx_bytes) ||
        !get(blob, pos, &b.in_ecn_bytes) || !get(blob, pos, &b.connections)) {
      return false;
    }
  }
  return pos == blob.size();
}

}  // namespace msamp::core

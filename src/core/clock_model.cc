#include "core/clock_model.h"

#include <algorithm>

namespace msamp::core {

ClockModel::ClockModel(const ClockModelConfig& config, int num_hosts,
                       util::Rng& rng) {
  offsets_.reserve(static_cast<std::size_t>(num_hosts));
  for (int i = 0; i < num_hosts; ++i) {
    const double draw =
        rng.normal(0.0, static_cast<double>(config.offset_stddev));
    const auto clamped = std::clamp(
        static_cast<sim::SimDuration>(draw), -config.offset_max,
        config.offset_max);
    offsets_.push_back(clamped);
  }
}

ClockModel ClockModel::ideal(int num_hosts) {
  return ClockModel(
      std::vector<sim::SimDuration>(static_cast<std::size_t>(num_hosts), 0));
}

}  // namespace msamp::core

#include "core/sampler.h"

#include "core/encoding.h"

namespace msamp::core {
namespace {

std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

Sampler::Sampler(sim::Simulator& simulator, net::Host& host,
                 sim::SimDuration clock_offset, const SamplerConfig& config)
    : simulator_(simulator),
      host_(host),
      clock_offset_(clock_offset),
      config_(config),
      filter_(config.filter) {}

Sampler::~Sampler() {
  if (active_) detach();
  stop_periodic();
}

int Sampler::rss_cpu(const net::Packet& segment) const {
  // RSS-style steering: a flow is pinned to one core, so the per-CPU
  // counters of one connection never contend.
  const std::uint64_t key =
      segment.flow != 0
          ? segment.flow
          : (static_cast<std::uint64_t>(segment.src) << 32) | segment.dst;
  return static_cast<int>(mix64(key) %
                          static_cast<std::uint64_t>(config_.filter.num_cpus));
}

void Sampler::attach() {
  host_.set_segment_hook([this](const net::Packet& segment, bool ingress) {
    // Timestamp with the *host* clock; start-time skew across hosts is what
    // SyncMillisampler's alignment has to absorb.
    const sim::SimTime host_now = simulator_.now() + clock_offset_;
    if (filter_.process(rss_cpu(segment), segment, ingress, host_now)) {
      ++processed_;
    }
  });
}

void Sampler::detach() {
  host_.set_segment_hook(nullptr);
}

bool Sampler::start_run(sim::SimDuration interval, RunCallback done) {
  if (active_) return false;
  active_ = true;
  done_ = std::move(done);
  attach();
  filter_.enable(interval);
  // User code waits the nominal run length plus a grace period, then
  // force-stops, detaches and reads (§4.1).
  const sim::SimDuration nominal =
      interval * static_cast<sim::SimDuration>(config_.filter.num_buckets);
  finish_event_ = simulator_.schedule_in(nominal + config_.grace, [this] {
    finish_event_ = 0;
    finish_run();
  });
  return true;
}

void Sampler::finish_run() {
  filter_.disable();
  detach();
  RunRecord record;
  record.host = host_.id();
  record.start = filter_.start_time();
  record.interval = filter_.interval();
  record.buckets = filter_.read_aggregated();
  history_.push_back(compress_run(record));
  while (history_.size() > config_.history_limit) history_.pop_front();
  if (store_ != nullptr && record.valid()) store_->put(record);
  active_ = false;
  if (done_) {
    auto cb = std::move(done_);
    done_ = nullptr;
    cb(record);
  }
}

void Sampler::start_periodic(sim::SimDuration period) {
  stop_periodic();
  periodic_period_ = period;
  // First run immediately; each completion schedules the next.
  const auto tick = [this](auto&& self) -> void {
    if (!active_ && !config_.intervals.empty()) {
      // Rotate through the configured intervals (10ms / 1ms / 100µs in
      // the production schedule).
      start_run(config_.intervals[next_interval_ % config_.intervals.size()],
                nullptr);
      ++next_interval_;
    }
    periodic_event_ = simulator_.schedule_in(
        periodic_period_, [this, self]() mutable { self(self); });
  };
  tick(tick);
}

void Sampler::stop_periodic() {
  if (periodic_event_ != 0) {
    simulator_.cancel(periodic_event_);
    periodic_event_ = 0;
  }
  periodic_period_ = 0;
}

RunRecord Sampler::history_run(std::size_t i) const {
  if (i < history_.size()) {
    if (auto record = decompress_run(history_[i])) return *record;
  }
  return RunRecord{};
}

std::size_t Sampler::history_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& blob : history_) total += blob.size();
  return total;
}

}  // namespace msamp::core

#include "core/encoding.h"

#include <cmath>

namespace msamp::core {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::optional<std::uint64_t> get_varint(const std::vector<std::uint8_t>& in,
                                        std::size_t& pos) {
  std::uint64_t value = 0;
  int shift = 0;
  while (pos < in.size()) {
    const std::uint8_t byte = in[pos++];
    if (shift >= 63 && byte > 1) return std::nullopt;  // overflow
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift > 63) return std::nullopt;
  }
  return std::nullopt;  // truncated
}

namespace {

constexpr std::uint8_t kMagic = 0xc5;
constexpr std::uint8_t kVersion = 1;

bool is_zero(const BucketSample& b) {
  return b.in_bytes == 0 && b.in_retx_bytes == 0 && b.out_bytes == 0 &&
         b.out_retx_bytes == 0 && b.in_ecn_bytes == 0 && b.connections == 0.0;
}

}  // namespace

std::vector<std::uint8_t> compress_run(const RunRecord& record) {
  std::vector<std::uint8_t> out;
  out.reserve(64 + record.buckets.size() * 4);
  out.push_back(kMagic);
  out.push_back(kVersion);
  put_varint(out, record.host);
  put_varint(out, zigzag(record.start));
  put_varint(out, static_cast<std::uint64_t>(record.interval));
  put_varint(out, record.buckets.size());

  std::size_t i = 0;
  while (i < record.buckets.size()) {
    // Token = (zero-run length, then one non-zero bucket if any remain).
    std::size_t zrun = 0;
    while (i + zrun < record.buckets.size() &&
           is_zero(record.buckets[i + zrun])) {
      ++zrun;
    }
    put_varint(out, zrun);
    i += zrun;
    if (i >= record.buckets.size()) break;
    const BucketSample& b = record.buckets[i++];
    put_varint(out, static_cast<std::uint64_t>(b.in_bytes));
    put_varint(out, static_cast<std::uint64_t>(b.in_retx_bytes));
    put_varint(out, static_cast<std::uint64_t>(b.out_bytes));
    put_varint(out, static_cast<std::uint64_t>(b.out_retx_bytes));
    put_varint(out, static_cast<std::uint64_t>(b.in_ecn_bytes));
    // Connection estimates keep 3 decimal places — far beyond the
    // sketch's own precision.
    put_varint(out, static_cast<std::uint64_t>(
                        std::llround(b.connections * 1000.0)));
  }
  return out;
}

std::optional<RunRecord> decompress_run(
    const std::vector<std::uint8_t>& blob) {
  std::size_t pos = 0;
  if (blob.size() < 2 || blob[pos++] != kMagic) return std::nullopt;
  if (blob[pos++] != kVersion) return std::nullopt;
  RunRecord record;
  const auto host = get_varint(blob, pos);
  const auto start = get_varint(blob, pos);
  const auto interval = get_varint(blob, pos);
  const auto count = get_varint(blob, pos);
  if (!host || !start || !interval || !count) return std::nullopt;
  if (*interval == 0 || *count > 1u << 24) return std::nullopt;
  record.host = static_cast<net::HostId>(*host);
  record.start = unzigzag(*start);
  record.interval = static_cast<sim::SimDuration>(*interval);
  record.buckets.resize(static_cast<std::size_t>(*count));

  std::size_t i = 0;
  while (i < record.buckets.size()) {
    const auto zrun = get_varint(blob, pos);
    if (!zrun || *zrun > record.buckets.size() - i) return std::nullopt;
    i += static_cast<std::size_t>(*zrun);  // zero buckets already default
    if (i >= record.buckets.size()) break;
    BucketSample& b = record.buckets[i++];
    const auto in = get_varint(blob, pos);
    const auto in_retx = get_varint(blob, pos);
    const auto out = get_varint(blob, pos);
    const auto out_retx = get_varint(blob, pos);
    const auto ecn = get_varint(blob, pos);
    const auto conns = get_varint(blob, pos);
    if (!in || !in_retx || !out || !out_retx || !ecn || !conns) {
      return std::nullopt;
    }
    b.in_bytes = static_cast<std::int64_t>(*in);
    b.in_retx_bytes = static_cast<std::int64_t>(*in_retx);
    b.out_bytes = static_cast<std::int64_t>(*out);
    b.out_retx_bytes = static_cast<std::int64_t>(*out_retx);
    b.in_ecn_bytes = static_cast<std::int64_t>(*ecn);
    b.connections = static_cast<double>(*conns) / 1000.0;
  }
  if (pos != blob.size()) return std::nullopt;
  return record;
}

}  // namespace msamp::core

#include "core/run_store.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace msamp::core {
namespace {

namespace fs = std::filesystem;

std::optional<RunRecord> load_blob(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::uint8_t> blob(size);
  in.read(reinterpret_cast<char*>(blob.data()),
          static_cast<std::streamsize>(size));
  if (!in) return std::nullopt;
  return decompress_run(blob);
}

}  // namespace

RunStore::RunStore(const RunStoreConfig& config) : config_(config) {
  std::error_code ec;
  fs::create_directories(config_.directory, ec);
}

bool RunStore::put(const RunRecord& record) {
  if (!record.valid()) return false;
  char name[96];
  std::snprintf(name, sizeof(name), "run_%020" PRId64 "_%" PRId64 ".msr",
                record.start, record.interval);
  const auto blob = compress_run(record);
  std::ofstream out(fs::path(config_.directory) / name, std::ios::binary);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  return static_cast<bool>(out);
}

std::vector<RunStore::Entry> RunStore::entries() const {
  std::vector<Entry> out;
  std::error_code ec;
  for (const auto& dirent : fs::directory_iterator(config_.directory, ec)) {
    const std::string name = dirent.path().filename().string();
    std::int64_t start = 0, interval = 0;
    if (std::sscanf(name.c_str(), "run_%20" SCNd64 "_%" SCNd64 ".msr", &start,
                    &interval) != 2) {
      continue;  // foreign file
    }
    std::error_code size_ec;
    const auto bytes = fs::file_size(dirent.path(), size_ec);
    out.push_back({start, interval, dirent.path().string(),
                   size_ec ? 0 : static_cast<std::size_t>(bytes)});
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.start < b.start; });
  return out;
}

std::vector<RunRecord> RunStore::query(sim::SimTime from,
                                       sim::SimTime to) const {
  std::vector<RunRecord> out;
  for (const auto& entry : entries()) {
    if (entry.start < from || entry.start >= to) continue;
    if (auto record = load_blob(entry.path)) out.push_back(std::move(*record));
  }
  return out;
}

std::optional<RunRecord> RunStore::get(sim::SimTime start) const {
  for (const auto& entry : entries()) {
    if (entry.start == start) return load_blob(entry.path);
  }
  return std::nullopt;
}

std::size_t RunStore::sweep(sim::SimTime now) {
  std::size_t removed = 0;
  auto all = entries();
  std::size_t total = 0;
  for (const auto& entry : all) total += entry.bytes;

  std::error_code ec;
  std::size_t keep_from = 0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    const bool too_old = all[i].start < now - config_.retention;
    const bool over_budget = total > config_.max_bytes;
    if (!too_old && !over_budget) break;
    fs::remove(all[i].path, ec);
    total -= all[i].bytes;
    ++removed;
    keep_from = i + 1;
  }
  (void)keep_from;
  return removed;
}

std::size_t RunStore::size() const { return entries().size(); }

std::size_t RunStore::total_bytes() const {
  std::size_t total = 0;
  for (const auto& entry : entries()) total += entry.bytes;
  return total;
}

}  // namespace msamp::core

#include "core/sync_controller.h"

#include <algorithm>

namespace msamp::core {

SyncRun combine_runs(const std::vector<RunRecord>& records) {
  SyncRun out;
  if (records.empty()) return out;
  out.interval = records.front().interval;

  // Common window across the records that actually started: SyncMillisampler
  // trims to the overlapping interval (§5: the average trimmed run is 1.85s
  // of a nominal 2s).
  sim::SimTime latest_start = -1;
  sim::SimTime earliest_end = -1;
  bool any = false;
  for (const auto& r : records) {
    if (!r.valid()) continue;
    const sim::SimTime end = r.start + r.duration();
    if (!any) {
      latest_start = r.start;
      earliest_end = end;
      any = true;
    } else {
      latest_start = std::max(latest_start, r.start);
      earliest_end = std::min(earliest_end, end);
    }
  }
  if (!any || earliest_end <= latest_start) return out;

  const auto n = static_cast<std::size_t>((earliest_end - latest_start) /
                                          out.interval);
  if (n == 0) return out;
  out.grid_start = latest_start;
  out.hosts.reserve(records.size());
  out.series.reserve(records.size());
  for (const auto& r : records) {
    out.hosts.push_back(r.host);
    if (r.valid()) {
      out.series.push_back(align_series(r, out.grid_start, n));
    } else {
      // An idle server contributes a true all-zero series.
      out.series.emplace_back(n);
    }
  }
  return out;
}

bool SyncController::collect(sim::SimDuration interval,
                             sim::SimDuration lead_time, Done done) {
  if (pending_ || samplers_.empty()) return false;
  pending_ = true;
  done_ = std::move(done);
  records_.clear();
  records_.resize(samplers_.size());
  outstanding_ = samplers_.size();

  simulator_.schedule_in(lead_time, [this, interval] {
    for (std::size_t i = 0; i < samplers_.size(); ++i) {
      const bool ok = samplers_[i]->start_run(
          interval, [this, i](const RunRecord& record) {
            records_[i] = record;
            if (--outstanding_ == 0) {
              pending_ = false;
              if (done_) {
                auto cb = std::move(done_);
                done_ = nullptr;
                cb(combine_runs(records_));
              }
            }
          });
      if (!ok) {
        // A periodic run was still active despite the lead time; count the
        // server as idle rather than deadlocking the collection.
        records_[i] = RunRecord{};
        records_[i].host = samplers_[i]->host().id();
        if (--outstanding_ == 0) {
          pending_ = false;
          if (done_) {
            auto cb = std::move(done_);
            done_ = nullptr;
            cb(combine_runs(records_));
          }
        }
      }
    }
  });
  return true;
}

}  // namespace msamp::core

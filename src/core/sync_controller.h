// SyncMillisampler (§4.4): a centralized control plane that triggers
// concurrent Millisampler runs on every server of a rack, fetches the
// resulting records, aligns them onto a uniform time grid (linear
// interpolation) and trims to the overlapping window.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/interpolate.h"
#include "core/run_record.h"
#include "core/sampler.h"
#include "sim/simulator.h"

namespace msamp::core {

/// The combined, aligned result of one synchronized rack collection.
struct SyncRun {
  sim::SimTime grid_start = -1;      ///< time of sample 0 on the common grid
  sim::SimDuration interval = sim::kMillisecond;
  std::vector<net::HostId> hosts;    ///< one entry per server (row order)
  /// series[s][k] = server s, grid sample k.  Rows for servers that saw no
  /// traffic are all-zero.
  std::vector<std::vector<BucketSample>> series;

  std::size_t num_servers() const noexcept { return series.size(); }
  std::size_t num_samples() const noexcept {
    return series.empty() ? 0 : series.front().size();
  }
  sim::SimDuration duration() const noexcept {
    return interval * static_cast<sim::SimDuration>(num_samples());
  }
};

/// Builds a SyncRun out of per-host run records: the grid spans
/// [max(start), min(end)) over valid records.  Exposed separately from the
/// controller so the fleet-scale fluid simulator can reuse the exact same
/// combination step.
SyncRun combine_runs(const std::vector<RunRecord>& records);

/// The control plane.  Owns no samplers; it coordinates the ones passed in.
class SyncController {
 public:
  using Done = std::function<void(const SyncRun&)>;

  explicit SyncController(sim::Simulator& simulator) : simulator_(simulator) {}

  /// Registers a rack server's sampler.
  void add_sampler(Sampler* sampler) { samplers_.push_back(sampler); }

  /// Schedules a synchronized collection to start `lead_time` from now
  /// (the paper schedules far enough ahead that no periodic run overlaps).
  /// Each sampler samples at `interval`; `done` receives the aligned run.
  /// Returns false if a sync collection is already pending.
  bool collect(sim::SimDuration interval, sim::SimDuration lead_time,
               Done done);

  std::size_t num_samplers() const noexcept { return samplers_.size(); }

 private:
  sim::Simulator& simulator_;
  std::vector<Sampler*> samplers_;
  bool pending_ = false;
  std::size_t outstanding_ = 0;
  std::vector<RunRecord> records_;
  Done done_;
};

}  // namespace msamp::core

// Counter layout of the Millisampler tc filter (§4.1/§4.2).
//
// The kernel side keeps, for every CPU core, an array of `buckets`
// (2000 by default) rows of 64-bit counters plus a 128-bit flow sketch.
// The user-space side aggregates the per-CPU rows into BucketSample values.
#pragma once

#include <cstdint>

#include "core/flow_sketch.h"

namespace msamp::core {

/// One kernel-side counter row: what the eBPF program increments for one
/// CPU and one time bucket.  sizeof(RawBucket) == 56, so a default run
/// (2000 buckets x 32 CPUs) costs 2000*32*56 = ~3.6MB of kernel memory —
/// matching the footprint reported in §4.3.
struct RawBucket {
  std::uint64_t in_bytes = 0;       ///< ingress bytes
  std::uint64_t in_retx_bytes = 0;  ///< ingress bytes with the retx bit
  std::uint64_t out_bytes = 0;      ///< egress bytes
  std::uint64_t out_retx_bytes = 0; ///< egress bytes with the retx bit
  std::uint64_t in_ecn_bytes = 0;   ///< ingress CE-marked bytes
  std::uint64_t sketch[2] = {0, 0}; ///< 128-bit active-connection sketch

  void clear() noexcept { *this = RawBucket{}; }
};
static_assert(sizeof(RawBucket) == 56, "RawBucket layout drifted");

/// One user-space aggregated sample (summed across CPUs for one bucket).
struct BucketSample {
  std::int64_t in_bytes = 0;
  std::int64_t in_retx_bytes = 0;
  std::int64_t out_bytes = 0;
  std::int64_t out_retx_bytes = 0;
  std::int64_t in_ecn_bytes = 0;
  /// Linear-counting estimate of distinct active connections this bucket.
  double connections = 0.0;
};

}  // namespace msamp::core

#include "core/pcap_baseline.h"

#include <cstring>

namespace msamp::core {

PcapBaseline::PcapBaseline(const PcapConfig& config)
    : config_(config), ring_(config.ring_bytes) {}

void PcapBaseline::process(const net::Packet& packet, sim::SimTime now) {
  // Record = 16-byte pcap header + snapped packet bytes.  We materialize a
  // synthetic header region from the packet fields; what matters for the
  // cost comparison is the per-packet copy, which real capture cannot
  // avoid.
  std::uint8_t scratch[256];
  std::memcpy(scratch, &now, sizeof(now));
  std::memcpy(scratch + 8, &packet.bytes, sizeof(packet.bytes));
  std::memcpy(scratch + 12, &packet.flow, sizeof(packet.flow));
  std::memcpy(scratch + 20, &packet.src, sizeof(packet.src));
  std::memcpy(scratch + 24, &packet.dst, sizeof(packet.dst));
  std::memcpy(scratch + 28, &packet.seq, sizeof(packet.seq));
  const std::size_t record =
      16 + (config_.snap_len < sizeof(scratch) ? config_.snap_len
                                               : sizeof(scratch));
  if (used_ + record > ring_.size()) {
    ++dropped_;
    return;
  }
  // Copy into the ring (wrapping), byte-for-byte like the kernel-to-user
  // path.
  std::size_t pos = head_;
  for (std::size_t i = 0; i < record; ++i) {
    ring_[pos] = scratch[i % sizeof(scratch)];
    pos = pos + 1 == ring_.size() ? 0 : pos + 1;
  }
  head_ = pos;
  used_ += record;
  ++captured_;
}

void PcapBaseline::drain(std::size_t bytes) {
  used_ = bytes >= used_ ? 0 : used_ - bytes;
}

}  // namespace msamp::core

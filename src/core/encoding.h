// Compact encoding for stored run records (§4.1: runs are "compressed and
// stored on the host for about a week").  Millisampler data is sparse —
// most buckets on a mostly-idle server-link are zero, and counters are
// small relative to 64 bits — so the codec combines:
//   * LEB128 varints for all integer fields;
//   * zero-run-length tokens for stretches of all-zero buckets.
// A week of periodic runs compresses to a few percent of the raw size on
// typical links, matching the "few hundred megabytes" the paper reports.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/run_record.h"

namespace msamp::core {

/// Appends `value` as a LEB128 varint.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value);

/// Reads a varint at `pos`; returns nullopt on truncation/overflow.
std::optional<std::uint64_t> get_varint(const std::vector<std::uint8_t>& in,
                                        std::size_t& pos);

/// ZigZag helpers for signed fields.
constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Encodes a run record compactly (zero-run + varint).
std::vector<std::uint8_t> compress_run(const RunRecord& record);

/// Decodes a `compress_run` blob; returns nullopt on malformed input.
std::optional<RunRecord> decompress_run(const std::vector<std::uint8_t>& blob);

}  // namespace msamp::core

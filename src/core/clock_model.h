// Host clock model.  SyncMillisampler depends on host clocks being NTP-
// synchronized to sub-millisecond precision (§4.5, interleaved NTP).  Each
// host gets a fixed offset drawn from a truncated normal; the sampler
// timestamps packets with the host clock, and the sync controller aligns
// runs using those (slightly skewed) timestamps — exactly the error source
// the paper's validation experiments quantify.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "util/rng.h"

namespace msamp::core {

/// Clock-distribution parameters.
struct ClockModelConfig {
  /// Standard deviation of per-host offset (interleaved NTP achieves tens
  /// of microseconds; default 50µs).
  sim::SimDuration offset_stddev = 50 * sim::kMicrosecond;
  /// Hard truncation so no host exceeds the paper's sub-ms assumption.
  sim::SimDuration offset_max = 400 * sim::kMicrosecond;
};

/// Immutable set of per-host clock offsets.
class ClockModel {
 public:
  /// Draws `num_hosts` offsets.
  ClockModel(const ClockModelConfig& config, int num_hosts, util::Rng& rng);

  /// A perfectly synchronized model (for unit tests).
  static ClockModel ideal(int num_hosts);

  /// Offset of host `i`: host_time = true_time + offset.
  sim::SimDuration offset(int i) const { return offsets_.at(static_cast<std::size_t>(i)); }

  /// Converts simulator (true) time to host-local time.
  sim::SimTime host_time(int i, sim::SimTime true_time) const {
    return true_time + offset(i);
  }

  int num_hosts() const noexcept { return static_cast<int>(offsets_.size()); }

 private:
  explicit ClockModel(std::vector<sim::SimDuration> offsets)
      : offsets_(std::move(offsets)) {}

  std::vector<sim::SimDuration> offsets_;
};

}  // namespace msamp::core

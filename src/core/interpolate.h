// Series alignment for SyncMillisampler (§4.4): concurrent runs latch their
// start on each host's first packet, so their bucket timestamps differ by
// sub-interval amounts.  To combine them into a single run with uniform
// timestamps we linearly interpolate each series onto a common grid.
#pragma once

#include <cstddef>
#include <vector>

#include "core/run_record.h"
#include "sim/time.h"

namespace msamp::core {

/// Resamples `record`'s buckets at times `grid_start + k*record.interval`
/// for k in [0, n).  Each bucket value is treated as a point sample at its
/// bucket start; grid points between two buckets take the linear blend, and
/// grid points outside the record's span are zero.
std::vector<BucketSample> align_series(const RunRecord& record,
                                       sim::SimTime grid_start, std::size_t n);

/// Linear blend of two samples (t in [0,1]); exposed for tests.
BucketSample lerp_sample(const BucketSample& a, const BucketSample& b,
                         double t);

}  // namespace msamp::core

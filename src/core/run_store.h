// On-host persistent store for Millisampler runs (§4.1-§4.2): the user-
// space daemon compresses each completed run to local disk, keeps about a
// week of history within a byte budget, and serves runs on demand (the
// SyncMillisampler control plane and on-call engineers both read from it).
//
// Layout: one file per run under `directory`, named
//   run_<start_ns>_<interval_ns>.msr
// containing the compress_run() blob.  Retention is enforced by `sweep`:
// first by age, then oldest-first down to the byte budget.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/encoding.h"
#include "core/run_record.h"

namespace msamp::core {

/// Store configuration; defaults mirror the paper's "about a week, a few
/// hundred megabytes" envelope (scaled down for simulation workloads).
struct RunStoreConfig {
  std::string directory = "msamp_runs";
  /// Runs whose start is older than now - retention are deleted by sweep.
  sim::SimDuration retention = 7LL * 24 * 3600 * sim::kSecond;
  /// Hard cap on total stored bytes (oldest runs evicted first).
  std::size_t max_bytes = 256 << 20;
};

/// The store.  All operations are synchronous filesystem accesses; the
/// directory is created on first use.
class RunStore {
 public:
  explicit RunStore(const RunStoreConfig& config);

  /// Persists a completed run.  Returns false for invalid (never-started)
  /// runs or on I/O failure.
  bool put(const RunRecord& record);

  /// Loads every stored run whose start time lies in [from, to), sorted by
  /// start time.  Corrupt files are skipped.
  std::vector<RunRecord> query(sim::SimTime from, sim::SimTime to) const;

  /// Loads the single run with the given exact start time, if present.
  std::optional<RunRecord> get(sim::SimTime start) const;

  /// Applies retention: deletes runs older than `now - retention`, then
  /// evicts oldest-first until within the byte budget.  Returns the number
  /// of files removed.
  std::size_t sweep(sim::SimTime now);

  /// Number of stored runs.
  std::size_t size() const;

  /// Total bytes on disk.
  std::size_t total_bytes() const;

  const RunStoreConfig& config() const noexcept { return config_; }

 private:
  struct Entry {
    sim::SimTime start;
    sim::SimDuration interval;
    std::string path;
    std::size_t bytes;
  };

  /// Scans the directory (sorted by start time).
  std::vector<Entry> entries() const;

  RunStoreConfig config_;
};

}  // namespace msamp::core

// 128-bit direct-bitmap flow sketch (Estan-Varghese linear counting),
// exactly as Millisampler uses per time bucket (§4.2): stateless, precise
// up to about a dozen concurrent connections, saturating around 500.
#pragma once

#include <cstdint>

namespace msamp::core {

/// A 128-bit bitmap counting distinct flow ids.
class FlowSketch {
 public:
  /// Number of bits in the sketch.
  static constexpr int kBits = 128;

  /// Marks a flow as active (hashes the id to one of 128 bits).
  void add(std::uint64_t flow_id) noexcept;

  /// Merges another sketch (bitwise OR) — used when aggregating per-CPU
  /// sketches for the same time bucket.
  void merge(const FlowSketch& other) noexcept {
    words_[0] |= other.words_[0];
    words_[1] |= other.words_[1];
  }

  /// Linear-counting estimate of the number of distinct flows added:
  /// n ≈ -m * ln(zero_bits / m).  When every bit is set the estimate
  /// saturates at -m*ln(1/m) ≈ 621 (the paper's "around 500" regime).
  double estimate() const noexcept;

  /// Number of set bits.
  int popcount() const noexcept;

  bool empty() const noexcept { return words_[0] == 0 && words_[1] == 0; }
  void clear() noexcept { words_[0] = words_[1] = 0; }

  /// Raw word access for serialization.
  std::uint64_t word(int i) const noexcept { return words_[i & 1]; }
  void set_words(std::uint64_t w0, std::uint64_t w1) noexcept {
    words_[0] = w0;
    words_[1] = w1;
  }

 private:
  std::uint64_t words_[2] = {0, 0};
};

}  // namespace msamp::core

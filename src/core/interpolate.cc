#include "core/interpolate.h"

#include <cmath>

namespace msamp::core {

BucketSample lerp_sample(const BucketSample& a, const BucketSample& b,
                         double t) {
  auto mix = [t](std::int64_t x, std::int64_t y) {
    return static_cast<std::int64_t>(
        std::llround(static_cast<double>(x) +
                     t * (static_cast<double>(y) - static_cast<double>(x))));
  };
  BucketSample out;
  out.in_bytes = mix(a.in_bytes, b.in_bytes);
  out.in_retx_bytes = mix(a.in_retx_bytes, b.in_retx_bytes);
  out.out_bytes = mix(a.out_bytes, b.out_bytes);
  out.out_retx_bytes = mix(a.out_retx_bytes, b.out_retx_bytes);
  out.in_ecn_bytes = mix(a.in_ecn_bytes, b.in_ecn_bytes);
  out.connections = a.connections + t * (b.connections - a.connections);
  return out;
}

std::vector<BucketSample> align_series(const RunRecord& record,
                                       sim::SimTime grid_start,
                                       std::size_t n) {
  std::vector<BucketSample> out(n);
  if (!record.valid()) return out;
  const double dt = static_cast<double>(record.interval);
  for (std::size_t k = 0; k < n; ++k) {
    const sim::SimTime t =
        grid_start + static_cast<sim::SimDuration>(k) * record.interval;
    const double x = static_cast<double>(t - record.start) / dt;
    if (x < 0.0) continue;
    const auto i = static_cast<std::size_t>(x);
    if (i >= record.buckets.size()) continue;
    const double frac = x - static_cast<double>(i);
    if (frac == 0.0 || i + 1 >= record.buckets.size()) {
      out[k] = record.buckets[i];
    } else {
      out[k] = lerp_sample(record.buckets[i], record.buckets[i + 1], frac);
    }
  }
  return out;
}

}  // namespace msamp::core

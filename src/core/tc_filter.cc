#include "core/tc_filter.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "util/simd/simd.h"

namespace msamp::core {

// The SIMD row fold reads the per-CPU RawBucket arrays as flat u64 words:
// kRowTallyWords counter words to saturating-add followed by the sketch
// words to OR. Pin the layout so a struct edit cannot silently desync the
// kernel's word schedule.
static_assert(std::is_standard_layout_v<RawBucket>);
static_assert(sizeof(RawBucket) == util::simd::kRowWords * sizeof(std::uint64_t),
              "RawBucket word count drifted from util::simd::kRowWords");
static_assert(offsetof(RawBucket, sketch) ==
                  util::simd::kRowTallyWords * sizeof(std::uint64_t),
              "RawBucket sketch words must follow the counter words");

TcFilter::TcFilter(const TcFilterConfig& config)
    : config_(config),
      percpu_(static_cast<std::size_t>(config.num_cpus) *
              static_cast<std::size_t>(config.num_buckets)) {
  assert(config.num_cpus > 0);
  assert(config.num_buckets > 0);
}

void TcFilter::enable(sim::SimDuration interval) {
  assert(interval > 0);
  for (auto& row : percpu_) row.clear();
  interval_ = interval;
  start_ = -1;
  enabled_ = true;
}

bool TcFilter::process(int cpu, const net::Packet& segment, bool ingress,
                       sim::SimTime now) {
  if (!enabled_) return false;  // the 7ns early-out path of §4.3

  // The first packet of the run latches the start time (§4.1).
  if (start_ < 0) start_ = now;

  const sim::SimTime elapsed = now - start_;
  const auto bucket = elapsed / interval_;
  if (bucket < 0) return false;  // clock stepped backwards; drop the sample
  if (bucket >= config_.num_buckets) {
    // Past the last bucket: clear the enabled flag as the completion signal
    // and stop counting (saves future per-packet work).
    enabled_ = false;
    return false;
  }

  RawBucket& row = percpu_[static_cast<std::size_t>(cpu % config_.num_cpus) *
                               static_cast<std::size_t>(config_.num_buckets) +
                           static_cast<std::size_t>(bucket)];
  const auto bytes = static_cast<std::uint64_t>(segment.bytes);
  if (ingress) {
    row.in_bytes += bytes;
    if (segment.retx_mark) row.in_retx_bytes += bytes;
    if (segment.ce) row.in_ecn_bytes += bytes;
  } else {
    row.out_bytes += bytes;
    if (segment.retx_mark) row.out_retx_bytes += bytes;
  }
  if (config_.count_flows && segment.flow != 0) {
    FlowSketch s;
    s.set_words(row.sketch[0], row.sketch[1]);
    s.add(segment.flow);
    row.sketch[0] = s.word(0);
    row.sketch[1] = s.word(1);
  }
  return true;
}

bool TcFilter::process_batch(int cpu, const SegmentBatch& batch,
                             sim::SimTime now) {
  if (!enabled_) return false;
  if (start_ < 0) start_ = now;
  const sim::SimTime elapsed = now - start_;
  const auto bucket = elapsed / interval_;
  if (bucket < 0) return false;
  if (bucket >= config_.num_buckets) {
    enabled_ = false;
    return false;
  }
  RawBucket& row = percpu_[static_cast<std::size_t>(cpu % config_.num_cpus) *
                               static_cast<std::size_t>(config_.num_buckets) +
                           static_cast<std::size_t>(bucket)];
  row.in_bytes += static_cast<std::uint64_t>(batch.in_bytes);
  row.in_retx_bytes += static_cast<std::uint64_t>(batch.in_retx_bytes);
  row.in_ecn_bytes += static_cast<std::uint64_t>(batch.in_ecn_bytes);
  row.out_bytes += static_cast<std::uint64_t>(batch.out_bytes);
  row.out_retx_bytes += static_cast<std::uint64_t>(batch.out_retx_bytes);
  if (config_.count_flows) {
    row.sketch[0] |= batch.sketch[0];
    row.sketch[1] |= batch.sketch[1];
  }
  return true;
}

std::vector<BucketSample> TcFilter::read_aggregated() const {
  const auto buckets = static_cast<std::size_t>(config_.num_buckets);
  const std::size_t row_words = buckets * util::simd::kRowWords;
  // Fold every CPU's bucket array into one accumulator in a single strided
  // pass per CPU: counter words saturating-add, sketch words OR. Counter
  // sums never approach 2^63 (a full day of line-rate bytes is < 2^50), so
  // the saturating u64 fold and the previous int64 += produce identical
  // bytes; the sketch OR is associative.
  std::vector<std::uint64_t> acc(row_words, 0);
  const auto* words = reinterpret_cast<const std::uint64_t*>(percpu_.data());
  for (int c = 0; c < config_.num_cpus; ++c) {
    util::simd::tally_rows_u64(
        acc.data(), words + static_cast<std::size_t>(c) * row_words,
        row_words);
  }
  std::vector<BucketSample> out(buckets);
  for (std::size_t b = 0; b < buckets; ++b) {
    BucketSample& s = out[b];
    const std::uint64_t* row = acc.data() + b * util::simd::kRowWords;
    s.in_bytes = static_cast<std::int64_t>(row[0]);
    s.in_retx_bytes = static_cast<std::int64_t>(row[1]);
    s.out_bytes = static_cast<std::int64_t>(row[2]);
    s.out_retx_bytes = static_cast<std::int64_t>(row[3]);
    s.in_ecn_bytes = static_cast<std::int64_t>(row[4]);
    FlowSketch sketch;
    sketch.set_words(row[5], row[6]);
    s.connections = sketch.empty() ? 0.0 : sketch.estimate();
  }
  return out;
}

const RawBucket& TcFilter::raw(int cpu, int bucket) const {
  return percpu_.at(static_cast<std::size_t>(cpu % config_.num_cpus) *
                        static_cast<std::size_t>(config_.num_buckets) +
                    static_cast<std::size_t>(bucket));
}

}  // namespace msamp::core

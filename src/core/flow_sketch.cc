#include "core/flow_sketch.h"

#include <bit>
#include <cmath>

namespace msamp::core {
namespace {

// Finalizer from MurmurHash3; good avalanche for sequential flow ids.
std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

void FlowSketch::add(std::uint64_t flow_id) noexcept {
  const std::uint64_t h = mix(flow_id);
  const unsigned bit = static_cast<unsigned>(h & 127u);
  words_[bit >> 6] |= 1ULL << (bit & 63u);
}

int FlowSketch::popcount() const noexcept {
  return std::popcount(words_[0]) + std::popcount(words_[1]);
}

double FlowSketch::estimate() const noexcept {
  const int zeros = kBits - popcount();
  if (zeros == 0) {
    // Fully saturated: report the maximum resolvable estimate.
    return -static_cast<double>(kBits) * std::log(1.0 / kBits);
  }
  return -static_cast<double>(kBits) *
         std::log(static_cast<double>(zeros) / kBits);
}

}  // namespace msamp::core

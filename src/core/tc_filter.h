// The kernel half of Millisampler: an analog of the eBPF tc filter (§4.1).
//
// Faithful state machine:
//   * attach/detach: a detached filter is completely out of the packet
//     path; an attached-but-disabled filter returns near-immediately;
//   * enable(interval): arms a run; the run's start time is latched from
//     the host-clock timestamp of the FIRST observed packet;
//   * per packet: bucket = (now - start) / interval; if bucket is past the
//     last bucket, the filter clears its own enabled flag (signaling
//     completion to user space) and counts nothing;
//   * all counters are per-CPU to stay lock-free; user space aggregates.
#pragma once

#include <cstdint>
#include <vector>

#include "core/counters.h"
#include "net/packet.h"
#include "sim/time.h"

namespace msamp::core {

/// Compile-time-ish feature selection, mirroring which packet features the
/// eBPF program inspects (flow counting is the one §4.3 ablates: 88ns with
/// it, 84ns without).
struct TcFilterConfig {
  int num_cpus = 32;
  int num_buckets = 2000;
  bool count_flows = true;
};

/// A pre-aggregated batch of segments observed within one time bucket.
/// Used by the fleet-scale fluid simulator as a fast path; semantically
/// identical to the equivalent sequence of `process` calls (asserted in
/// tests/test_tc_filter.cc).
struct SegmentBatch {
  std::int64_t in_bytes = 0;
  std::int64_t in_retx_bytes = 0;
  std::int64_t in_ecn_bytes = 0;
  std::int64_t out_bytes = 0;
  std::int64_t out_retx_bytes = 0;
  /// Pre-hashed 128-bit sketch of the flows active in the batch.
  std::uint64_t sketch[2] = {0, 0};
};

/// The in-kernel filter object.
class TcFilter {
 public:
  explicit TcFilter(const TcFilterConfig& config);

  /// Arms a run with the given sampling interval. Clears all counters.
  void enable(sim::SimDuration interval);

  /// Force-stops a run (user-space timeout path).
  void disable() noexcept { enabled_ = false; }

  bool enabled() const noexcept { return enabled_; }

  /// True once the first packet has latched the run start.
  bool started() const noexcept { return start_ >= 0; }

  /// Host-clock time of the first packet of the run (-1 before start).
  sim::SimTime start_time() const noexcept { return start_; }

  sim::SimDuration interval() const noexcept { return interval_; }

  /// The per-packet program.  `now` is the host-clock timestamp; `cpu` is
  /// the core processing the (soft-irq or transmit) path.  Returns true if
  /// the packet was counted.
  bool process(int cpu, const net::Packet& segment, bool ingress,
               sim::SimTime now);

  /// Batched variant of `process`: folds a whole bucket's worth of traffic
  /// in at once.  Identical start-latch / auto-stop semantics.
  bool process_batch(int cpu, const SegmentBatch& batch, sim::SimTime now);

  /// User-space read: sums the per-CPU rows (and ORs the sketches) into
  /// aggregated samples. Valid whether or not the run completed.
  std::vector<BucketSample> read_aggregated() const;

  /// Direct access to a per-CPU row, for tests.
  const RawBucket& raw(int cpu, int bucket) const;

  /// Kernel-side memory footprint in bytes (per §4.3 accounting).
  std::size_t memory_footprint() const noexcept {
    return percpu_.size() * sizeof(RawBucket);
  }

  const TcFilterConfig& config() const noexcept { return config_; }

 private:
  TcFilterConfig config_;
  bool enabled_ = false;
  sim::SimTime start_ = -1;
  sim::SimDuration interval_ = sim::kMillisecond;
  /// Flat [cpu][bucket] array, matching the BPF per-CPU array map layout.
  std::vector<RawBucket> percpu_;
};

}  // namespace msamp::core

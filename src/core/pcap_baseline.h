// A tcpdump-like baseline for the §4.3 performance comparison: per packet,
// build a capture header and copy `snap_len` bytes into a kernel-to-user
// ring buffer.  This is the cost structure Millisampler avoids (in-place
// counting instead of copy-out), and the microbenchmark in
// bench/bench_sampler_perf.cc compares the two per-packet paths and the
// break-even point (the paper reports 271ns/pkt for tcpdump vs 88ns for
// Millisampler, break-even near 33,000 packets per run).
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "sim/time.h"

namespace msamp::core {

/// Capture configuration.
struct PcapConfig {
  std::size_t snap_len = 100;          ///< bytes captured per packet
  std::size_t ring_bytes = 1 << 20;    ///< kernel-to-user ring capacity
};

/// The baseline capturer.
class PcapBaseline {
 public:
  explicit PcapBaseline(const PcapConfig& config);

  /// Processes one packet: serializes a pcap-style record header plus the
  /// first `snap_len` header bytes into the ring.  If the consumer has not
  /// drained enough space the packet is dropped (the overrun loss mode
  /// tcpdump suffers at peak traffic, §4).
  void process(const net::Packet& packet, sim::SimTime now);

  /// Consumer side: frees `bytes` of ring space.
  void drain(std::size_t bytes);

  std::uint64_t captured() const noexcept { return captured_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::size_t ring_used() const noexcept { return used_; }

 private:
  PcapConfig config_;
  std::vector<std::uint8_t> ring_;
  std::size_t head_ = 0;
  std::size_t used_ = 0;
  std::uint64_t captured_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace msamp::core

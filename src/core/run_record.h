// The stored artifact of one Millisampler run: start time, sampling
// interval, and the aggregated per-bucket samples.  Run records are what
// the user-space daemon compresses to local disk (§4.1) and what
// SyncMillisampler's control plane fetches and aligns (§4.4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/counters.h"
#include "net/packet.h"
#include "sim/time.h"

namespace msamp::core {

/// One completed (or empty) Millisampler run on one host.
struct RunRecord {
  net::HostId host = net::kNoHost;
  /// Host-clock time of the first packet; -1 if no packet arrived (the run
  /// never started).
  sim::SimTime start = -1;
  sim::SimDuration interval = sim::kMillisecond;
  std::vector<BucketSample> buckets;

  bool valid() const noexcept { return start >= 0 && !buckets.empty(); }

  /// Run length covered by the buckets.
  sim::SimDuration duration() const noexcept {
    return interval * static_cast<sim::SimDuration>(buckets.size());
  }

  /// Ingress utilization of bucket `i` as a fraction of `line_rate_gbps`.
  double ingress_utilization(std::size_t i, double line_rate_gbps) const;

  /// Total ingress bytes across all buckets.
  std::int64_t total_ingress_bytes() const noexcept;

  /// Serializes to a compact binary blob (the "compressed on local disk"
  /// stand-in; framing + varint-free fixed-width fields).
  std::vector<std::uint8_t> serialize() const;

  /// Parses a blob produced by `serialize`.  Returns false on malformed
  /// input (leaving *this unspecified).
  bool deserialize(const std::vector<std::uint8_t>& blob);
};

}  // namespace msamp::core

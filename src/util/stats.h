// Streaming and batch statistics used by the analysis pipeline and by every
// figure bench: Welford moments, exact percentiles on collected samples,
// empirical CDFs, box-plot summaries and fixed-width histograms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace msamp::util {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class StreamingStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Merges another accumulator (parallel-friendly).
  void merge(const StreamingStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  /// Population variance; 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return n_ == 0 ? 0.0 : max_; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentile of a sample set with linear interpolation between order
/// statistics. `p` is in [0, 100]. Returns 0 for an empty sample.
/// The input is copied; use `percentile_inplace` to avoid the copy.
double percentile(std::vector<double> samples, double p);

/// As `percentile`, but sorts the caller's buffer in place.
double percentile_inplace(std::vector<double>& samples, double p);

/// Five-number summary plus mean, as used for the diurnal box plots
/// (Figures 13 and 14 in the paper).
struct BoxSummary {
  std::size_t count = 0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

/// Computes a BoxSummary; sorts the buffer in place.
BoxSummary box_summary(std::vector<double>& samples);

/// One point of an empirical CDF: `percent` of samples are <= `value`.
struct CdfPoint {
  double value = 0.0;
  double percent = 0.0;
};

/// Empirical CDF of the samples, downsampled to at most `max_points`
/// evenly-spaced quantiles (the figure benches print these series).
std::vector<CdfPoint> empirical_cdf(std::vector<double> samples,
                                    std::size_t max_points = 100);

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp into the
/// first/last bin. Used to bucket bursts by length/connection count for
/// Figures 16, 18 and 19.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const noexcept { return total_; }
  /// Center value of the bin, for plotting.
  double bin_center(std::size_t bin) const;
  /// Lower edge of the bin.
  double bin_lo(std::size_t bin) const;
  double bin_width() const noexcept { return width_; }
  /// Bin index a value falls into (after clamping).
  std::size_t bin_index(double x) const noexcept;

 private:
  double lo_;
  double width_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> counts_;
};

/// Ratio helper that is 0 when the denominator is 0 (loss-percentage math).
double safe_ratio(double num, double den) noexcept;

// --- canonical-order reductions ----------------------------------------
//
// Floating-point addition is not associative, so the order a reduction
// runs in reaches the emitted bytes the moment a compiler vectorizes,
// contracts into FMA, or a thread pool interleaves partial sums.  Every
// float/double reduction on an output path therefore goes through one of
// these helpers, each of which pins a single named addition DAG.
// `canonical_sum_over` (the form every fleet-dataset byte goes through)
// stays a strict left fold.  The contiguous `canonical_sum` is pinned to
// the fixed-width lane-then-tree fold implemented by `util::simd::sum_f64`
// (4 serial accumulator lanes, tree combine `(l0+l2)+(l1+l3)`, serial
// tail), which every ISA path reproduces byte-identically —
// scripts/check_simd_determinism.sh enforces it (docs/SIMD.md,
// docs/PERFORMANCE.md).  msamp_lint's `float-accum-order` rule flags
// ad-hoc `+=` loops.

/// Sum of n doubles in the pinned lane-then-tree order (simd::sum_f64).
double canonical_sum(const double* data, std::size_t n) noexcept;

/// Sum of a vector in the pinned lane-then-tree order.
double canonical_sum(const std::vector<double>& data) noexcept;

/// canonical_sum(data) / data.size(); 0 for an empty vector.
double canonical_mean(const std::vector<double>& data) noexcept;

/// Left-to-right sum of `proj(element)` over any forward range, in range
/// order: `canonical_sum_over(bursts, [](const Burst& b) { return
/// b.bytes; })`.  The one-liner that replaces an ad-hoc `+=` loop.
template <typename Range, typename Proj>
double canonical_sum_over(const Range& range, Proj&& proj) {
  double acc = 0.0;
  for (const auto& x : range) {
    acc = acc + static_cast<double>(proj(x));
  }
  return acc;
}

}  // namespace msamp::util

// Deterministic random number generation for all simulators.
//
// Every experiment in this repository is seeded; nothing reads the wall
// clock or std::random_device.  Rng wraps a xoshiro256++ generator with the
// distributions the workload models need (uniform, normal, lognormal,
// exponential, Pareto, Zipf, Poisson).
//
// This is the only sanctioned randomness source: msamp_lint's
// nondet-random rule bans rand()/random_device everywhere else, and these
// implementation files are the rule's sole path exemption
// (docs/STATIC_ANALYSIS.md).
#pragma once

#include <cstdint>
#include <vector>

namespace msamp::util {

/// Counter-free splittable PRNG (xoshiro256++) with distribution helpers.
///
/// Deliberately not std::mt19937: we want cheap construction (fleet code
/// creates one per server) and stable cross-platform streams.
class Rng {
 public:
  /// Seeds the state via splitmix64 so that nearby seeds give independent
  /// streams.
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Derives an independent generator; `salt` distinguishes children created
  /// from the same parent state.
  Rng fork(std::uint64_t salt) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) noexcept;

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Standard normal via Box-Muller (no cached spare; simple and stateless).
  double normal() noexcept;

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Lognormal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Bounded Pareto on [lo, hi] with tail index alpha.
  double pareto(double lo, double hi, double alpha) noexcept;

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation for large ones).
  std::uint64_t poisson(double mean) noexcept;

  /// Zipf-distributed rank in [0, n) with skew s (s = 0 is uniform).
  /// Uses rejection-inversion; O(1) per draw after O(1) setup per call.
  std::size_t zipf(std::size_t n, double s) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace msamp::util

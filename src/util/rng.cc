#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace msamp::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t salt) noexcept {
  return Rng(next() ^ (salt * 0x9e3779b97f4a7c15ULL) ^ 0xd1b54a32d192ed03ULL);
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) noexcept {
  // Lemire's multiply-shift rejection method for unbiased bounded draws.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0ULL - n) % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() noexcept {
  // Box-Muller; draw u1 away from zero to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) noexcept {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::pareto(double lo, double hi, double alpha) noexcept {
  // Inverse-CDF sampling of the bounded Pareto distribution.
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double x = -(u * ha - u * la - ha) / (ha * la);
  return std::pow(1.0 / x, 1.0 / alpha);
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction for large means.
  const double x = normal(mean, std::sqrt(mean));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

std::size_t Rng::zipf(std::size_t n, double s) noexcept {
  if (n <= 1) return 0;
  if (s <= 0.0) return static_cast<std::size_t>(uniform_int(n));
  // Inverse-CDF on the continuous approximation of the Zipf pmf; adequate
  // for workload skew (we need plausibility, not exact Zipf moments).
  const double nd = static_cast<double>(n);
  if (s == 1.0) {
    const double h = std::log(nd + 1.0);
    const double x = std::exp(uniform() * h) - 1.0;
    auto r = static_cast<std::size_t>(x);
    return r >= n ? n - 1 : r;
  }
  const double e = 1.0 - s;
  const double h = (std::pow(nd + 1.0, e) - 1.0) / e;
  const double x = std::pow(uniform() * h * e + 1.0, 1.0 / e) - 1.0;
  auto r = static_cast<std::size_t>(x);
  return r >= n ? n - 1 : r;
}

}  // namespace msamp::util

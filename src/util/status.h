// util::Status: the error type of the dataset file APIs.  A bare `bool`
// told an operator *that* a 2GB merged day failed to open, never *why* or
// *where*; Status carries the path, the byte offset where parsing gave up
// (when known), and a human-readable reason, so `msampctl` can print
// "day.bin: corrupt burst section (at byte 73728)" instead of a generic
// failure.
//
// Deliberately minimal: no error codes, no payloads.  Callers branch on
// ok()/operator bool and print to_string(); the reason text is the
// contract with the human, not with other code.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace msamp::util {

class [[nodiscard]] Status {
 public:
  /// Default-constructed Status is success.
  Status() = default;

  static Status ok() { return Status(); }

  /// Failure with a reason, an optional subject path, and an optional
  /// byte offset into that file (-1 = no offset).
  static Status error(std::string reason, std::string path = {},
                      std::int64_t offset = -1) {
    Status s;
    s.failed_ = true;
    s.reason_ = std::move(reason);
    s.path_ = std::move(path);
    s.offset_ = offset;
    return s;
  }

  bool is_ok() const { return !failed_; }
  explicit operator bool() const { return !failed_; }

  const std::string& reason() const { return reason_; }
  const std::string& path() const { return path_; }
  bool has_offset() const { return offset_ >= 0; }
  std::int64_t offset() const { return offset_; }

  /// Returns a copy of this Status with `path` filled in (keeps call
  /// sites that discover the path after the failure terse).
  Status with_path(std::string path) const {
    Status s = *this;
    s.path_ = std::move(path);
    return s;
  }

  /// "path: reason (at byte N)" — the one-line operator-facing message.
  std::string to_string() const {
    if (!failed_) return "ok";
    std::string out;
    if (!path_.empty()) out += path_ + ": ";
    out += reason_;
    if (offset_ >= 0) out += " (at byte " + std::to_string(offset_) + ")";
    return out;
  }

 private:
  bool failed_ = false;
  std::string reason_;
  std::string path_;
  std::int64_t offset_ = -1;
};

}  // namespace msamp::util

// Bounded single-producer / single-consumer ring with acquire/release
// handoff and cache-line-padded indices.
//
// The contract is exactly SPSC: one thread pushes, one (different or
// same) thread pops, concurrently.  `try_push` publishes the element with
// a release store of the tail index; `try_pop` observes it with an
// acquire load, so everything the producer wrote before the push —
// including writes to memory the pushed value merely *points at* — is
// visible to the consumer after the pop.  That edge is what lets the
// fleet runner hand whole WindowRecords slots across threads by pushing
// just the slot index.
//
// Head and tail live on separate cache lines (no false sharing between
// producer and consumer), and each side keeps a same-line cached copy of
// the other side's index so the common case touches no shared line at
// all: the producer re-reads `head_` only when the ring looks full, the
// consumer re-reads `tail_` only when it looks empty.
//
// Capacity is rounded up to a power of two; indices are free-running
// (wrap-around is handled by the mask, full/empty by the difference).
// Failed pushes (ring full) and failed pops (ring empty) are tallied in
// an embedded ContentionCounters — observability-only, never consulted
// by the ring itself (see docs/OBSERVABILITY.md).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>

#include "util/contention_counters.h"

namespace msamp::util {

template <typename T>
class SpscRing {
 public:
  /// Fallback when std::hardware_destructive_interference_size is absent;
  /// 64 bytes covers x86-64 and most AArch64 parts.
  static constexpr std::size_t kCacheLine = 64;

  /// Rounds `capacity` up to the next power of two (minimum 2).
  explicit SpscRing(std::size_t capacity)
      : capacity_(round_up_pow2(capacity)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<Slot[]>(capacity_)) {}

  /// Destroys any items still in flight (pushed but never popped).
  ~SpscRing() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    for (std::size_t i = head_.load(std::memory_order_relaxed); i != tail;
         ++i) {
      item(i)->~T();
    }
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side.  Returns false (and counts a full-spin) when the ring
  /// is full; the value is untouched and the caller retries.
  bool try_push(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ == capacity_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ == capacity_) {
        counters_.handoff_full_spins.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    ::new (static_cast<void*>(item(tail))) T(std::move(value));
    tail_.store(tail + 1, std::memory_order_release);
    counters_.handoff_pushes.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  bool try_push(const T& value) {
    T copy(value);
    return try_push(std::move(copy));
  }

  /// Consumer side.  Returns false (and counts an empty-spin) when the
  /// ring is empty; `out` is untouched.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) {
        counters_.handoff_empty_spins.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    T* p = item(head);
    out = std::move(*p);
    p->~T();
    head_.store(head + 1, std::memory_order_release);
    counters_.handoff_pops.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  std::size_t capacity() const noexcept { return capacity_; }

  /// Approximate occupancy — exact only when both sides are quiescent.
  std::size_t size() const noexcept {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }
  bool empty() const noexcept { return size() == 0; }

  /// Observability-only handoff tallies (docs/OBSERVABILITY.md); only the
  /// handoff_* fields of the snapshot are populated.
  ContentionSnapshot contention_snapshot() const noexcept {
    return counters_.snapshot();
  }

 private:
  struct Slot {
    alignas(alignof(T)) unsigned char storage[sizeof(T)];
  };

  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 2;
    while (p < v) p <<= 1;
    return p;
  }

  T* item(std::size_t index) noexcept {
    return std::launder(
        reinterpret_cast<T*>(slots_[index & mask_].storage));
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  const std::unique_ptr<Slot[]> slots_;

  // Producer-owned line: tail plus the producer's cached view of head.
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_ = 0;
  // Consumer-owned line: head plus the consumer's cached view of tail.
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_ = 0;
  // Counters on their own line so tallies never bounce the index lines.
  alignas(kCacheLine) ContentionCounters counters_;
};

}  // namespace msamp::util

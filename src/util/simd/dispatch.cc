// util::simd dispatcher: one-time CPU feature detection, the MSAMP_SIMD
// environment override, and the function-pointer indirection every public
// kernel entry point goes through.
//
// MSAMP_SIMD is read exactly once, at first dispatch; like MSAMP_THREADS it
// is a startup knob, not a runtime control (see docs/REPRODUCING.md). Tests
// and benches switch paths with force_path() instead of mutating the
// environment.
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "util/simd/simd_internal.h"

namespace msamp::util::simd {
namespace {

using internal::KernelTable;

struct DispatchState {
  const KernelTable* active = nullptr;
  IsaPath detected = IsaPath::kScalar;
  std::string env;
  bool env_honored = true;
};

const KernelTable* table_for(IsaPath p) noexcept {
  switch (p) {
    case IsaPath::kScalar:
      return &internal::scalar_table();
    case IsaPath::kSse4:
#if defined(MSAMP_SIMD_HAVE_SSE4)
      return &internal::sse4_table();
#else
      return nullptr;
#endif
    case IsaPath::kAvx2:
#if defined(MSAMP_SIMD_HAVE_AVX2)
      return &internal::avx2_table();
#else
      return nullptr;
#endif
    case IsaPath::kNeon:
#if defined(MSAMP_SIMD_HAVE_NEON)
      return &internal::neon_table();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

bool cpu_supports(IsaPath p) noexcept {
  switch (p) {
    case IsaPath::kScalar:
      return true;
    case IsaPath::kSse4:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("sse4.2") != 0;
#else
      return false;
#endif
    case IsaPath::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case IsaPath::kNeon:
      // AArch64 NEON is architecturally mandatory; if the translation unit
      // was compiled, the CPU has it.
#if defined(MSAMP_SIMD_HAVE_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool path_available(IsaPath p) noexcept {
  return table_for(p) != nullptr && cpu_supports(p);
}

bool parse_path(const char* s, IsaPath* out) noexcept {
  if (std::strcmp(s, "scalar") == 0) {
    *out = IsaPath::kScalar;
  } else if (std::strcmp(s, "sse4") == 0) {
    *out = IsaPath::kSse4;
  } else if (std::strcmp(s, "avx2") == 0) {
    *out = IsaPath::kAvx2;
  } else if (std::strcmp(s, "neon") == 0) {
    *out = IsaPath::kNeon;
  } else {
    return false;
  }
  return true;
}

DispatchState& state() {
  static DispatchState s = [] {
    DispatchState st;
    st.detected = IsaPath::kScalar;
    for (IsaPath p : {IsaPath::kSse4, IsaPath::kAvx2, IsaPath::kNeon}) {
      if (path_available(p)) st.detected = p;
    }
    IsaPath chosen = st.detected;
    // msamp-lint: allow(nondet-getenv) startup-only SIMD path override,
    // documented in docs/REPRODUCING.md; every path is byte-identical.
    if (const char* env = std::getenv("MSAMP_SIMD")) {
      st.env = env;
      IsaPath forced;
      if (st.env == "auto" || st.env.empty()) {
        st.env_honored = true;
      } else if (parse_path(env, &forced) && path_available(forced)) {
        chosen = forced;
        st.env_honored = true;
      } else {
        st.env_honored = false;  // unknown or unavailable: keep detected
      }
    }
    st.active = table_for(chosen);
    return st;
  }();
  return s;
}

std::atomic<const KernelTable*> g_forced{nullptr};

inline const KernelTable& active_table() noexcept {
  if (const KernelTable* t = g_forced.load(std::memory_order_acquire)) {
    return *t;
  }
  return *state().active;
}

}  // namespace

const char* path_name(IsaPath p) noexcept {
  switch (p) {
    case IsaPath::kScalar:
      return "scalar";
    case IsaPath::kSse4:
      return "sse4";
    case IsaPath::kAvx2:
      return "avx2";
    case IsaPath::kNeon:
      return "neon";
  }
  return "unknown";
}

IsaPath active_path() noexcept { return active_table().path; }

IsaPath detected_path() noexcept { return state().detected; }

std::vector<IsaPath> available_paths() {
  std::vector<IsaPath> out;
  for (IsaPath p :
       {IsaPath::kScalar, IsaPath::kSse4, IsaPath::kAvx2, IsaPath::kNeon}) {
    if (path_available(p)) out.push_back(p);
  }
  return out;
}

bool force_path(IsaPath p) noexcept {
  if (!path_available(p)) return false;
  state();  // ensure detection ran so force/unforce is well ordered
  g_forced.store(table_for(p), std::memory_order_release);
  return true;
}

const char* env_request() noexcept { return state().env.c_str(); }

bool env_honored() noexcept { return state().env_honored; }

void add_u64(std::uint64_t* dst, const std::uint64_t* src,
             std::size_t n) noexcept {
  active_table().add_u64(dst, src, n);
}

void saturating_add_u64(std::uint64_t* dst, const std::uint64_t* src,
                        std::size_t n) noexcept {
  active_table().saturating_add_u64(dst, src, n);
}

void or_u64(std::uint64_t* dst, const std::uint64_t* src,
            std::size_t n) noexcept {
  active_table().or_u64(dst, src, n);
}

void tally_rows_u64(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t n_words) noexcept {
  active_table().tally_rows_u64(dst, src, n_words);
}

std::int64_t sum_i64(const std::int64_t* v, std::size_t n) noexcept {
  return active_table().sum_i64(v, n);
}

void threshold_mask_i64(const std::int64_t* v, std::size_t n,
                        std::int64_t threshold,
                        std::uint64_t* mask_words) noexcept {
  active_table().threshold_mask_i64(v, n, threshold, mask_words);
}

std::vector<Run> extract_runs(const std::uint64_t* mask_words, std::size_t n) {
  // Shared scalar pass over the mask words: identical on every path, so run
  // boundaries can never diverge between ISAs.
  std::vector<Run> runs;
  bool open = false;
  std::size_t start = 0;
  const std::size_t words = (n + 63) / 64;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t word = mask_words[w];
    const std::size_t base = w * 64;
    if (word == 0) {
      if (open) {
        runs.push_back({start, base - start});
        open = false;
      }
      continue;
    }
    if (word == ~std::uint64_t{0} && base + 64 <= n) {
      if (!open) {
        start = base;
        open = true;
      }
      continue;
    }
    for (std::size_t b = 0; b < 64 && base + b < n; ++b) {
      if ((word >> b) & 1u) {
        if (!open) {
          start = base + b;
          open = true;
        }
      } else if (open) {
        runs.push_back({start, base + b - start});
        open = false;
      }
    }
  }
  if (open) runs.push_back({start, n - start});
  return runs;
}

void gather_stride_i64(const std::int64_t* base, std::size_t stride_words,
                       std::size_t n, std::int64_t* out) noexcept {
  active_table().gather_stride_i64(base, stride_words, n, out);
}

void dt_admit_i64(const std::int64_t* demand, const std::int64_t* limit,
                  const std::int64_t* queue_len, std::int64_t drain,
                  std::int64_t* accepted, std::size_t n) noexcept {
  active_table().dt_admit_i64(demand, limit, queue_len, drain, accepted, n);
}

double sum_f64(const double* v, std::size_t n) noexcept {
  return active_table().sum_f64(v, n);
}

}  // namespace msamp::util::simd

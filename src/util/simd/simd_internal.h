// Internal plumbing shared by the util::simd dispatcher and the per-ISA
// kernel translation units. Not installed; include only from src/util/simd/.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/simd/simd.h"

namespace msamp::util::simd::internal {

/// One function pointer per kernel. Each ISA translation unit fills a table
/// with its implementations; the dispatcher picks one table at startup and
/// the public entry points in simd.h jump through it.
struct KernelTable {
  IsaPath path;
  void (*add_u64)(std::uint64_t*, const std::uint64_t*, std::size_t);
  void (*saturating_add_u64)(std::uint64_t*, const std::uint64_t*,
                             std::size_t);
  void (*or_u64)(std::uint64_t*, const std::uint64_t*, std::size_t);
  void (*tally_rows_u64)(std::uint64_t*, const std::uint64_t*, std::size_t);
  std::int64_t (*sum_i64)(const std::int64_t*, std::size_t);
  void (*threshold_mask_i64)(const std::int64_t*, std::size_t, std::int64_t,
                             std::uint64_t*);
  void (*gather_stride_i64)(const std::int64_t*, std::size_t, std::size_t,
                            std::int64_t*);
  void (*dt_admit_i64)(const std::int64_t*, const std::int64_t*,
                       const std::int64_t*, std::int64_t, std::int64_t*,
                       std::size_t);
  double (*sum_f64)(const double*, std::size_t);
};

/// Always present: the reference implementations, compiled with
/// auto-vectorization disabled so they stay honestly scalar.
const KernelTable& scalar_table() noexcept;

#if defined(MSAMP_SIMD_HAVE_SSE4)
const KernelTable& sse4_table() noexcept;
#endif
#if defined(MSAMP_SIMD_HAVE_AVX2)
const KernelTable& avx2_table() noexcept;
#endif
#if defined(MSAMP_SIMD_HAVE_NEON)
const KernelTable& neon_table() noexcept;
#endif

}  // namespace msamp::util::simd::internal

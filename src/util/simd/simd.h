// util::simd — runtime-dispatched SIMD kernels for the sampler, fluid-rack,
// and burst-detection hot paths.
//
// The dispatch layer detects CPU features once at startup (CPUID on x86,
// compile-time on AArch64) and routes every kernel through a function-pointer
// table to the best implementation compiled into the binary: scalar, SSE4.2,
// AVX2, or NEON. The `MSAMP_SIMD` environment variable
// (`scalar|sse4|avx2|neon|auto`) forces a path at startup; tests and benches
// use `force_path()` instead so they never mutate the environment.
//
// Determinism contract: every kernel below produces byte-identical output on
// every path. The integer kernels are exact, so cross-path identity is free;
// the double fold `sum_f64` pins a fixed-width lane-then-tree addition DAG
// (see docs/SIMD.md) that each ISA implementation must reproduce, and
// scripts/check_simd_determinism.sh enforces the whole contract end to end.
//
// Raw intrinsics live only in this subsystem; the msamp_lint rule
// `intrinsics-only-in-simd` flags `<immintrin.h>`/`<arm_neon.h>` includes and
// `_mm*`/`vld1q_*` identifiers anywhere else.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace msamp::util::simd {

/// Instruction-set paths a kernel call can be routed to. `kScalar` is always
/// compiled; the others exist only when the toolchain targets that ISA.
enum class IsaPath : std::uint8_t { kScalar = 0, kSse4 = 1, kAvx2 = 2, kNeon = 3 };

/// Stable lowercase name for `p` ("scalar", "sse4", "avx2", "neon") —
/// the same spelling `MSAMP_SIMD` accepts.
const char* path_name(IsaPath p) noexcept;

/// The path kernel calls currently route to (after detection, the
/// `MSAMP_SIMD` override, and any `force_path` call).
IsaPath active_path() noexcept;

/// The best path for this host ignoring overrides: compiled into the binary
/// and supported by the running CPU.
IsaPath detected_path() noexcept;

/// Every path compiled into the binary and supported by the running CPU,
/// in ascending IsaPath order. Always contains `kScalar`.
std::vector<IsaPath> available_paths();

/// Routes subsequent kernel calls to `p`. Returns false (and leaves the
/// active path unchanged) when `p` is not in `available_paths()`.
/// Thread-compatible: call before spawning workers, not concurrently with
/// kernel calls in flight.
bool force_path(IsaPath p) noexcept;

/// The raw `MSAMP_SIMD` value captured at first dispatch ("" when unset)
/// and whether it named an available path and was honored.
const char* env_request() noexcept;
bool env_honored() noexcept;

// ---------------------------------------------------------------------------
// u64 bucket tally kernels (core::TcFilter per-CPU counter arrays).
// ---------------------------------------------------------------------------

/// dst[i] += src[i] with wrap-around (mod 2^64), i in [0, n).
void add_u64(std::uint64_t* dst, const std::uint64_t* src,
             std::size_t n) noexcept;

/// dst[i] = dst[i] + src[i], clamped to UINT64_MAX on overflow.
void saturating_add_u64(std::uint64_t* dst, const std::uint64_t* src,
                        std::size_t n) noexcept;

/// dst[i] |= src[i] (sketch word merge).
void or_u64(std::uint64_t* dst, const std::uint64_t* src,
            std::size_t n) noexcept;

/// Word layout of one core::RawBucket row: kRowTallyWords counter words
/// followed by (kRowWords - kRowTallyWords) bitmap words. tally_rows_u64
/// folds a per-CPU array of such rows into `dst`: counter words
/// saturating-add, bitmap words bitwise-OR. `n_words` must be a multiple of
/// kRowWords.
inline constexpr std::size_t kRowWords = 7;
inline constexpr std::size_t kRowTallyWords = 5;
void tally_rows_u64(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t n_words) noexcept;

// ---------------------------------------------------------------------------
// i64 scan kernels (analysis::detect_bursts, fleet::FluidRack).
// ---------------------------------------------------------------------------

/// Sum of v[0..n) mod 2^64 (two's-complement wrap, no UB).
std::int64_t sum_i64(const std::int64_t* v, std::size_t n) noexcept;

/// Writes ceil(n/64) mask words: bit i of the mask is set iff
/// v[i] > threshold (strict). Bits at positions >= n are zero.
void threshold_mask_i64(const std::int64_t* v, std::size_t n,
                        std::int64_t threshold,
                        std::uint64_t* mask_words) noexcept;

/// A maximal run of consecutive set bits in a threshold mask.
struct Run {
  std::size_t start = 0;
  std::size_t len = 0;
};

/// Extracts all maximal runs of set bits from `mask_words` covering bit
/// positions [0, n). Path-independent by construction (one shared scalar
/// implementation over the mask words).
std::vector<Run> extract_runs(const std::uint64_t* mask_words, std::size_t n);

/// out[i] = base[i * stride_words], i in [0, n) — strided column gather out
/// of an array-of-structs (e.g. BucketSample::in_bytes).
void gather_stride_i64(const std::int64_t* base, std::size_t stride_words,
                       std::size_t n, std::int64_t* out) noexcept;

/// Element-wise DT admission arithmetic over rack queue arrays:
///   accepted[i] = min(demand[i], max(limit[i] - queue_len[i], 0) + drain)
void dt_admit_i64(const std::int64_t* demand, const std::int64_t* limit,
                  const std::int64_t* queue_len, std::int64_t drain,
                  std::int64_t* accepted, std::size_t n) noexcept;

// ---------------------------------------------------------------------------
// Canonical double fold (util::stats::canonical_sum backend).
// ---------------------------------------------------------------------------

/// Number of independent accumulator lanes in the pinned fold DAG.
inline constexpr std::size_t kFoldLanes = 4;

/// Fixed-width lane-then-tree fold over v[0..n), byte-identical on every
/// path. The pinned DAG (W = kFoldLanes):
///   lane j accumulates serially:  acc[j] += v[W*i + j]
///   tree combine:                 r = (acc[0] + acc[2]) + (acc[1] + acc[3])
///   tail (n % W trailing values): r += v[k], serially, left to right
/// Every ISA implementation must realize exactly this DAG; see docs/SIMD.md
/// for the per-ISA correspondence proof obligation.
double sum_f64(const double* v, std::size_t n) noexcept;

}  // namespace msamp::util::simd

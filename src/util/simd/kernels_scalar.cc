// Scalar reference implementations for every util::simd kernel. This
// translation unit is compiled with -fno-tree-vectorize (see
// src/util/CMakeLists.txt) so the "scalar" path stays honestly scalar: it is
// both the correctness reference the property tests compare against and the
// baseline the bench speedup numbers are measured from.
#include <cstddef>
#include <cstdint>

#include "util/simd/simd_internal.h"

namespace msamp::util::simd::internal {
namespace {

inline std::uint64_t sat_add_word(std::uint64_t a, std::uint64_t b) noexcept {
  const std::uint64_t s = a + b;
  return s < a ? ~std::uint64_t{0} : s;
}

void add_u64_scalar(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void saturating_add_u64_scalar(std::uint64_t* dst, const std::uint64_t* src,
                               std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = sat_add_word(dst[i], src[i]);
}

void or_u64_scalar(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

void tally_rows_u64_scalar(std::uint64_t* dst, const std::uint64_t* src,
                           std::size_t n_words) {
  std::size_t word_in_row = 0;
  for (std::size_t i = 0; i < n_words; ++i) {
    if (word_in_row < kRowTallyWords) {
      dst[i] = sat_add_word(dst[i], src[i]);
    } else {
      dst[i] |= src[i];
    }
    if (++word_in_row == kRowWords) word_in_row = 0;
  }
}

std::int64_t sum_i64_scalar(const std::int64_t* v, std::size_t n) {
  // Accumulate in unsigned so wrap-around is defined behavior.
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<std::uint64_t>(v[i]);
  }
  return static_cast<std::int64_t>(acc);
}

void threshold_mask_i64_scalar(const std::int64_t* v, std::size_t n,
                               std::int64_t threshold,
                               std::uint64_t* mask_words) {
  const std::size_t words = (n + 63) / 64;
  for (std::size_t w = 0; w < words; ++w) mask_words[w] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (v[i] > threshold) {
      mask_words[i / 64] |= std::uint64_t{1} << (i % 64);
    }
  }
}

void gather_stride_i64_scalar(const std::int64_t* base,
                              std::size_t stride_words, std::size_t n,
                              std::int64_t* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = base[i * stride_words];
}

void dt_admit_i64_scalar(const std::int64_t* demand, const std::int64_t* limit,
                         const std::int64_t* queue_len, std::int64_t drain,
                         std::int64_t* accepted, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t room = limit[i] - queue_len[i];
    if (room < 0) room = 0;
    room += drain;
    accepted[i] = demand[i] < room ? demand[i] : room;
  }
}

double sum_f64_scalar(const double* v, std::size_t n) {
  // The pinned lane-then-tree DAG documented in simd.h: four serial
  // accumulator chains, a fixed tree combine, then a serial tail. The vector
  // paths realize the identical DAG, so results are byte-identical.
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  std::size_t i = 0;
  for (; i + kFoldLanes <= n; i += kFoldLanes) {
    acc0 += v[i];
    acc1 += v[i + 1];
    acc2 += v[i + 2];
    acc3 += v[i + 3];
  }
  double r = (acc0 + acc2) + (acc1 + acc3);
  for (; i < n; ++i) r += v[i];
  return r;
}

}  // namespace

const KernelTable& scalar_table() noexcept {
  static constexpr KernelTable kTable = {
      IsaPath::kScalar,
      add_u64_scalar,
      saturating_add_u64_scalar,
      or_u64_scalar,
      tally_rows_u64_scalar,
      sum_i64_scalar,
      threshold_mask_i64_scalar,
      gather_stride_i64_scalar,
      dt_admit_i64_scalar,
      sum_f64_scalar,
  };
  return kTable;
}

}  // namespace msamp::util::simd::internal

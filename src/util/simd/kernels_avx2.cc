// AVX2 kernel implementations (256-bit lanes, 4x u64/i64/f64 per vector).
// Compiled with -mavx2 only in this translation unit; the dispatcher checks
// CPUID before routing here.
#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "util/simd/simd_internal.h"

namespace msamp::util::simd::internal {
namespace {

inline std::uint64_t sat_add_word(std::uint64_t a, std::uint64_t b) noexcept {
  const std::uint64_t s = a + b;
  return s < a ? ~std::uint64_t{0} : s;
}

inline __m256i sat_add_epi64(__m256i a, __m256i b) noexcept {
  const __m256i sign =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ull));
  const __m256i sum = _mm256_add_epi64(a, b);
  const __m256i ovf = _mm256_cmpgt_epi64(_mm256_xor_si256(a, sign),
                                         _mm256_xor_si256(sum, sign));
  return _mm256_or_si256(sum, ovf);
}

void add_u64_avx2(std::uint64_t* dst, const std::uint64_t* src,
                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_add_epi64(d, s));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void saturating_add_u64_avx2(std::uint64_t* dst, const std::uint64_t* src,
                             std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        sat_add_epi64(d, s));
  }
  for (; i < n; ++i) dst[i] = sat_add_word(dst[i], src[i]);
}

void or_u64_avx2(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(d, s));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void tally_rows_u64_avx2(std::uint64_t* dst, const std::uint64_t* src,
                         std::size_t n_words) {
  // 4 words per vector against 7-word rows: the word phase of a vector
  // cycles with period 7 (4 and 7 are coprime, full cycle = 28 words).
  // kOrMask[p][j] is all-ones when word (p*4 + j) mod 7 lands on a bitmap
  // word (row position >= kRowTallyWords), selecting OR over sat-add.
  static constexpr std::uint64_t kO = ~std::uint64_t{0};
  alignas(32) static constexpr std::uint64_t kOrMask[kRowWords][4] = {
      {0, 0, 0, 0},    // words 0,1,2,3
      {0, kO, kO, 0},  // words 4,5,6,0
      {0, 0, 0, 0},    // words 1,2,3,4
      {kO, kO, 0, 0},  // words 5,6,0,1
      {0, 0, 0, kO},   // words 2,3,4,5
      {kO, 0, 0, 0},   // words 6,0,1,2
      {0, 0, kO, kO},  // words 3,4,5,6
  };
  std::size_t i = 0;
  // Full 28-word cycle (lcm(4, 7)) unrolled: every vector's OR-word set is
  // then a compile-time constant, so the select is an immediate
  // vpblendd instead of a mask load + vpblendvb, and the two all-tally
  // phases skip the OR/blend entirely.
  const auto step = [&](std::size_t off, auto imm) {
    constexpr int kImm = decltype(imm)::value;
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + off));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + off));
    __m256i t = sat_add_epi64(d, s);
    if constexpr (kImm != 0) {
      t = _mm256_blend_epi32(t, _mm256_or_si256(d, s), kImm);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + off), t);
  };
  for (; i + 28 <= n_words; i += 28) {
    step(0, std::integral_constant<int, 0x00>{});   // words 0,1,2,3
    step(4, std::integral_constant<int, 0x3C>{});   // words 4,[5,6],0
    step(8, std::integral_constant<int, 0x00>{});   // words 1,2,3,4
    step(12, std::integral_constant<int, 0x0F>{});  // words [5,6],0,1
    step(16, std::integral_constant<int, 0xC0>{});  // words 2,3,4,[5]
    step(20, std::integral_constant<int, 0x03>{});  // words [6],0,1,2
    step(24, std::integral_constant<int, 0xF0>{});  // words 3,4,[5,6]
  }
  std::size_t phase = 0;
  for (; i + 4 <= n_words; i += 4) {
    __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i m =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(kOrMask[phase]));
    const __m256i tallied =
        _mm256_blendv_epi8(sat_add_epi64(d, s), _mm256_or_si256(d, s), m);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), tallied);
    if (++phase == kRowWords) phase = 0;
  }
  for (; i < n_words; ++i) {
    if (i % kRowWords < kRowTallyWords) {
      dst[i] = sat_add_word(dst[i], src[i]);
    } else {
      dst[i] |= src[i];
    }
  }
}

std::int64_t sum_i64_avx2(const std::int64_t* v, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)));
  }
  std::uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) total += static_cast<std::uint64_t>(v[i]);
  return static_cast<std::int64_t>(total);
}

void threshold_mask_i64_avx2(const std::int64_t* v, std::size_t n,
                             std::int64_t threshold,
                             std::uint64_t* mask_words) {
  const __m256i thr = _mm256_set1_epi64x(threshold);
  const std::size_t words = (n + 63) / 64;
  for (std::size_t w = 0; w < words; ++w) mask_words[w] = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const int bits =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(x, thr)));
    mask_words[i / 64] |= static_cast<std::uint64_t>(bits) << (i % 64);
  }
  for (; i < n; ++i) {
    if (v[i] > threshold) {
      mask_words[i / 64] |= std::uint64_t{1} << (i % 64);
    }
  }
}

void gather_stride_i64_avx2(const std::int64_t* base, std::size_t stride_words,
                            std::size_t n, std::int64_t* out) {
  const long long s = static_cast<long long>(stride_words);
  const __m256i idx = _mm256_setr_epi64x(0, s, 2 * s, 3 * s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i g = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(base + i * stride_words), idx, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), g);
  }
  for (; i < n; ++i) out[i] = base[i * stride_words];
}

void dt_admit_i64_avx2(const std::int64_t* demand, const std::int64_t* limit,
                       const std::int64_t* queue_len, std::int64_t drain,
                       std::int64_t* accepted, std::size_t n) {
  const __m256i drain_v = _mm256_set1_epi64x(drain);
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i dem =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(demand + i));
    const __m256i lim =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(limit + i));
    const __m256i ql =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(queue_len + i));
    __m256i room = _mm256_sub_epi64(lim, ql);
    room = _mm256_blendv_epi8(room, zero, _mm256_cmpgt_epi64(zero, room));
    room = _mm256_add_epi64(room, drain_v);
    const __m256i acc =
        _mm256_blendv_epi8(dem, room, _mm256_cmpgt_epi64(dem, room));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(accepted + i), acc);
  }
  for (; i < n; ++i) {
    std::int64_t room = limit[i] - queue_len[i];
    if (room < 0) room = 0;
    room += drain;
    accepted[i] = demand[i] < room ? demand[i] : room;
  }
}

double sum_f64_avx2(const double* v, std::size_t n) {
  // Pinned DAG, AVX2 realization: one vaddpd per step keeps each of the
  // four lanes a serial chain. Horizontal combine: low128 + high128 yields
  // {acc0+acc2, acc1+acc3}; the final scalar add is the tree root.
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + kFoldLanes <= n; i += kFoldLanes) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(v + i));
  }
  const __m128d pair =
      _mm_add_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
  double r = _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
  for (; i < n; ++i) r += v[i];
  return r;
}

}  // namespace

const KernelTable& avx2_table() noexcept {
  static constexpr KernelTable kTable = {
      IsaPath::kAvx2,
      add_u64_avx2,
      saturating_add_u64_avx2,
      or_u64_avx2,
      tally_rows_u64_avx2,
      sum_i64_avx2,
      threshold_mask_i64_avx2,
      gather_stride_i64_avx2,
      dt_admit_i64_avx2,
      sum_f64_avx2,
  };
  return kTable;
}

}  // namespace msamp::util::simd::internal

// SSE4.2 kernel implementations (128-bit lanes, 2x u64/i64/f64 per vector).
// Compiled with -msse4.2 only in this translation unit; nothing here runs
// unless the dispatcher verified CPUID support first. SSE4.2 is the floor
// (not SSE2) because the overflow/threshold compares need pcmpgtq
// (_mm_cmpgt_epi64) and the tally blend needs pblendvb.
#include <smmintrin.h>

#include <cstddef>
#include <cstdint>

#include "util/simd/simd_internal.h"

namespace msamp::util::simd::internal {
namespace {

inline std::uint64_t sat_add_word(std::uint64_t a, std::uint64_t b) noexcept {
  const std::uint64_t s = a + b;
  return s < a ? ~std::uint64_t{0} : s;
}

// Unsigned u64 overflow detection with signed compares: carry out of
// a + b happened iff (a ^ sign) >s (s ^ sign) where sign flips to a biased
// signed ordering.
inline __m128i sat_add_epi64(__m128i a, __m128i b) noexcept {
  const __m128i sign = _mm_set1_epi64x(static_cast<long long>(0x8000000000000000ull));
  const __m128i sum = _mm_add_epi64(a, b);
  const __m128i ovf =
      _mm_cmpgt_epi64(_mm_xor_si128(a, sign), _mm_xor_si128(sum, sign));
  return _mm_or_si128(sum, ovf);
}

void add_u64_sse4(std::uint64_t* dst, const std::uint64_t* src,
                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_add_epi64(d, s));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void saturating_add_u64_sse4(std::uint64_t* dst, const std::uint64_t* src,
                             std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), sat_add_epi64(d, s));
  }
  for (; i < n; ++i) dst[i] = sat_add_word(dst[i], src[i]);
}

void or_u64_sse4(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_or_si128(d, s));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void tally_rows_u64_sse4(std::uint64_t* dst, const std::uint64_t* src,
                         std::size_t n_words) {
  // Per-word select between saturating-add (counter words, row position
  // < kRowTallyWords) and OR (bitmap words). With 2 words per vector and
  // 7-word rows, the row phase of a vector cycles with period 7; blend
  // masks are precomputed per phase (all-ones lane => OR).
  alignas(16) static constexpr std::uint64_t kOrMask[kRowWords][2] = {
      {0, 0},   // phase 0: words 0,1
      {0, 0},   // phase 1: words 2,3
      {0, ~std::uint64_t{0}},  // phase 2: words 4,5
      {~std::uint64_t{0}, 0},  // phase 3: words 6,7(next row word 0)
      {0, 0},   // phase 4: words 1,2
      {0, 0},   // phase 5: words 3,4
      {~std::uint64_t{0}, ~std::uint64_t{0}},  // phase 6: words 5,6
  };
  std::size_t i = 0;
  std::size_t phase = 0;
  for (; i + 2 <= n_words; i += 2) {
    __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i m =
        _mm_load_si128(reinterpret_cast<const __m128i*>(kOrMask[phase]));
    const __m128i tallied =
        _mm_blendv_epi8(sat_add_epi64(d, s), _mm_or_si128(d, s), m);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), tallied);
    if (++phase == kRowWords) phase = 0;
  }
  for (; i < n_words; ++i) {
    if (i % kRowWords < kRowTallyWords) {
      dst[i] = sat_add_word(dst[i], src[i]);
    } else {
      dst[i] |= src[i];
    }
  }
}

std::int64_t sum_i64_sse4(const std::int64_t* v, std::size_t n) {
  __m128i acc = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    acc = _mm_add_epi64(
        acc, _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i)));
  }
  std::uint64_t lanes[2];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), acc);
  std::uint64_t total = lanes[0] + lanes[1];
  for (; i < n; ++i) total += static_cast<std::uint64_t>(v[i]);
  return static_cast<std::int64_t>(total);
}

void threshold_mask_i64_sse4(const std::int64_t* v, std::size_t n,
                             std::int64_t threshold,
                             std::uint64_t* mask_words) {
  const __m128i thr = _mm_set1_epi64x(threshold);
  const std::size_t words = (n + 63) / 64;
  for (std::size_t w = 0; w < words; ++w) mask_words[w] = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    const int bits = _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpgt_epi64(x, thr)));
    mask_words[i / 64] |= static_cast<std::uint64_t>(bits) << (i % 64);
  }
  for (; i < n; ++i) {
    if (v[i] > threshold) {
      mask_words[i / 64] |= std::uint64_t{1} << (i % 64);
    }
  }
}

void gather_stride_i64_sse4(const std::int64_t* base, std::size_t stride_words,
                            std::size_t n, std::int64_t* out) {
  // No gather instruction before AVX2; a 2x-unrolled scalar copy keeps the
  // loads pipelined without pretending to vectorize.
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    out[i] = base[i * stride_words];
    out[i + 1] = base[(i + 1) * stride_words];
  }
  for (; i < n; ++i) out[i] = base[i * stride_words];
}

void dt_admit_i64_sse4(const std::int64_t* demand, const std::int64_t* limit,
                       const std::int64_t* queue_len, std::int64_t drain,
                       std::int64_t* accepted, std::size_t n) {
  const __m128i drain_v = _mm_set1_epi64x(drain);
  const __m128i zero = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i dem =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(demand + i));
    const __m128i lim =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(limit + i));
    const __m128i ql =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(queue_len + i));
    __m128i room = _mm_sub_epi64(lim, ql);
    room = _mm_blendv_epi8(room, zero, _mm_cmpgt_epi64(zero, room));
    room = _mm_add_epi64(room, drain_v);
    const __m128i acc = _mm_blendv_epi8(dem, room, _mm_cmpgt_epi64(dem, room));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(accepted + i), acc);
  }
  for (; i < n; ++i) {
    std::int64_t room = limit[i] - queue_len[i];
    if (room < 0) room = 0;
    room += drain;
    accepted[i] = demand[i] < room ? demand[i] : room;
  }
}

double sum_f64_sse4(const double* v, std::size_t n) {
  // Pinned DAG, SSE realization: accA holds lanes {0,1}, accB lanes {2,3}.
  // accA + accB = {acc0+acc2, acc1+acc3}; the final low+high add is the
  // outer node of the tree combine — identical to the scalar reference.
  __m128d acc_a = _mm_setzero_pd();
  __m128d acc_b = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + kFoldLanes <= n; i += kFoldLanes) {
    acc_a = _mm_add_pd(acc_a, _mm_loadu_pd(v + i));
    acc_b = _mm_add_pd(acc_b, _mm_loadu_pd(v + i + 2));
  }
  const __m128d pair = _mm_add_pd(acc_a, acc_b);
  double r = _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
  for (; i < n; ++i) r += v[i];
  return r;
}

}  // namespace

const KernelTable& sse4_table() noexcept {
  static constexpr KernelTable kTable = {
      IsaPath::kSse4,
      add_u64_sse4,
      saturating_add_u64_sse4,
      or_u64_sse4,
      tally_rows_u64_sse4,
      sum_i64_sse4,
      threshold_mask_i64_sse4,
      gather_stride_i64_sse4,
      dt_admit_i64_sse4,
      sum_f64_sse4,
  };
  return kTable;
}

}  // namespace msamp::util::simd::internal

// NEON kernel implementations for AArch64 (128-bit lanes, 2x u64/i64/f64 per
// vector). NEON is architecturally mandatory on AArch64, so this path needs
// no runtime feature check — it is compiled in (and becomes the detected
// path) whenever CMAKE_SYSTEM_PROCESSOR is aarch64/arm64.
#include <arm_neon.h>

#include <cstddef>
#include <cstdint>

#include "util/simd/simd_internal.h"

namespace msamp::util::simd::internal {
namespace {

inline std::uint64_t sat_add_word(std::uint64_t a, std::uint64_t b) noexcept {
  const std::uint64_t s = a + b;
  return s < a ? ~std::uint64_t{0} : s;
}

void add_u64_neon(std::uint64_t* dst, const std::uint64_t* src,
                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vaddq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void saturating_add_u64_neon(std::uint64_t* dst, const std::uint64_t* src,
                             std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // vqaddq_u64 is a native unsigned saturating add.
    vst1q_u64(dst + i, vqaddq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] = sat_add_word(dst[i], src[i]);
}

void or_u64_neon(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vorrq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void tally_rows_u64_neon(std::uint64_t* dst, const std::uint64_t* src,
                         std::size_t n_words) {
  // Same phase scheme as the SSE path: 2 words per vector over 7-word rows,
  // mask selects OR (all-ones lane) over saturating add.
  static constexpr std::uint64_t kO = ~std::uint64_t{0};
  alignas(16) static constexpr std::uint64_t kOrMask[kRowWords][2] = {
      {0, 0}, {0, 0}, {0, kO}, {kO, 0}, {0, 0}, {0, 0}, {kO, kO},
  };
  std::size_t i = 0;
  std::size_t phase = 0;
  for (; i + 2 <= n_words; i += 2) {
    const uint64x2_t d = vld1q_u64(dst + i);
    const uint64x2_t s = vld1q_u64(src + i);
    const uint64x2_t m = vld1q_u64(kOrMask[phase]);
    vst1q_u64(dst + i, vbslq_u64(m, vorrq_u64(d, s), vqaddq_u64(d, s)));
    if (++phase == kRowWords) phase = 0;
  }
  for (; i < n_words; ++i) {
    if (i % kRowWords < kRowTallyWords) {
      dst[i] = sat_add_word(dst[i], src[i]);
    } else {
      dst[i] |= src[i];
    }
  }
}

std::int64_t sum_i64_neon(const std::int64_t* v, std::size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    acc = vaddq_u64(acc,
                    vreinterpretq_u64_s64(vld1q_s64(v + i)));
  }
  std::uint64_t total = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; i < n; ++i) total += static_cast<std::uint64_t>(v[i]);
  return static_cast<std::int64_t>(total);
}

void threshold_mask_i64_neon(const std::int64_t* v, std::size_t n,
                             std::int64_t threshold,
                             std::uint64_t* mask_words) {
  const int64x2_t thr = vdupq_n_s64(threshold);
  const std::size_t words = (n + 63) / 64;
  for (std::size_t w = 0; w < words; ++w) mask_words[w] = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t gt = vcgtq_s64(vld1q_s64(v + i), thr);
    const std::uint64_t bits = (vgetq_lane_u64(gt, 0) & 1u) |
                               ((vgetq_lane_u64(gt, 1) & 1u) << 1);
    mask_words[i / 64] |= bits << (i % 64);
  }
  for (; i < n; ++i) {
    if (v[i] > threshold) {
      mask_words[i / 64] |= std::uint64_t{1} << (i % 64);
    }
  }
}

void gather_stride_i64_neon(const std::int64_t* base, std::size_t stride_words,
                            std::size_t n, std::int64_t* out) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    out[i] = base[i * stride_words];
    out[i + 1] = base[(i + 1) * stride_words];
  }
  for (; i < n; ++i) out[i] = base[i * stride_words];
}

void dt_admit_i64_neon(const std::int64_t* demand, const std::int64_t* limit,
                       const std::int64_t* queue_len, std::int64_t drain,
                       std::int64_t* accepted, std::size_t n) {
  const int64x2_t drain_v = vdupq_n_s64(drain);
  const int64x2_t zero = vdupq_n_s64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t dem = vld1q_s64(demand + i);
    const int64x2_t lim = vld1q_s64(limit + i);
    const int64x2_t ql = vld1q_s64(queue_len + i);
    int64x2_t room = vsubq_s64(lim, ql);
    room = vbslq_s64(vcgtq_s64(zero, room), zero, room);
    room = vaddq_s64(room, drain_v);
    const int64x2_t acc = vbslq_s64(vcgtq_s64(dem, room), room, dem);
    vst1q_s64(accepted + i, acc);
  }
  for (; i < n; ++i) {
    std::int64_t room = limit[i] - queue_len[i];
    if (room < 0) room = 0;
    room += drain;
    accepted[i] = demand[i] < room ? demand[i] : room;
  }
}

double sum_f64_neon(const double* v, std::size_t n) {
  // Pinned DAG, NEON realization: accA = lanes {0,1}, accB = lanes {2,3};
  // accA + accB = {acc0+acc2, acc1+acc3}; final low+high add is the tree
  // root — identical to the scalar reference.
  float64x2_t acc_a = vdupq_n_f64(0.0);
  float64x2_t acc_b = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + kFoldLanes <= n; i += kFoldLanes) {
    acc_a = vaddq_f64(acc_a, vld1q_f64(v + i));
    acc_b = vaddq_f64(acc_b, vld1q_f64(v + i + 2));
  }
  const float64x2_t pair = vaddq_f64(acc_a, acc_b);
  double r = vgetq_lane_f64(pair, 0) + vgetq_lane_f64(pair, 1);
  for (; i < n; ++i) r += v[i];
  return r;
}

}  // namespace

const KernelTable& neon_table() noexcept {
  static constexpr KernelTable kTable = {
      IsaPath::kNeon,
      add_u64_neon,
      saturating_add_u64_neon,
      or_u64_neon,
      tally_rows_u64_neon,
      sum_i64_neon,
      threshold_mask_i64_neon,
      gather_stride_i64_neon,
      dt_admit_i64_neon,
      sum_f64_neon,
  };
  return kTable;
}

}  // namespace msamp::util::simd::internal

// Tabular output used by every bench binary: aligned console tables plus
// optional CSV export, so each bench prints the same rows/series the paper
// reports and leaves a machine-readable copy behind.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace msamp::util {

/// A simple column-aligned table. Cells are strings; numeric helpers format
/// with sensible defaults.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent `cell` calls fill it left to right.
  Table& row();

  /// Appends a preformatted cell to the current row.
  Table& cell(std::string value);

  /// Appends a formatted numeric cell (fixed, `precision` decimals).
  Table& cell(double value, int precision = 2);

  /// Appends an integer cell.
  Table& cell(long long value);
  Table& cell(unsigned long long value);
  Table& cell(int value) { return cell(static_cast<long long>(value)); }
  Table& cell(long value) { return cell(static_cast<long long>(value)); }
  Table& cell(std::size_t value) {
    return cell(static_cast<unsigned long long>(value));
  }

  /// Convenience: appends a full row at once.
  Table& add_row(std::initializer_list<std::string> cells);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return headers_.size(); }

  /// Writes the table with aligned columns and a header separator.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void write_csv(std::ostream& os) const;

  /// Writes CSV to `path`; creates parent directories if missing.
  /// Returns false (without throwing) if the file cannot be opened.
  bool write_csv_file(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` decimals (shared by Table and plots).
std::string format_double(double value, int precision);

/// Formats a byte count human-readably (e.g. "1.8MB"), as the paper quotes
/// burst volumes.
std::string format_bytes(double bytes);

}  // namespace msamp::util

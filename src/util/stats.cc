#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/simd/simd.h"

namespace msamp::util {

void StreamingStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingStats::merge(const StreamingStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double StreamingStats::stddev() const noexcept {
  return std::sqrt(variance());
}

double percentile_inplace(std::vector<double>& samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

double percentile(std::vector<double> samples, double p) {
  return percentile_inplace(samples, p);
}

BoxSummary box_summary(std::vector<double>& samples) {
  BoxSummary b;
  b.count = samples.size();
  if (samples.empty()) return b;
  std::sort(samples.begin(), samples.end());
  auto at = [&](double p) {
    const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] + frac * (samples[hi] - samples[lo]);
  };
  b.min = samples.front();
  b.max = samples.back();
  b.p25 = at(25.0);
  b.median = at(50.0);
  b.p75 = at(75.0);
  b.p90 = at(90.0);
  double sum = 0.0;
  for (double x : samples) sum += x;
  b.mean = sum / static_cast<double>(samples.size());
  return b;
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> samples,
                                    std::size_t max_points) {
  std::vector<CdfPoint> out;
  if (samples.empty() || max_points == 0) return out;
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  const std::size_t points = std::min(max_points, n);
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    // Pick the order statistic at evenly spaced cumulative probabilities,
    // always including the max so the CDF reaches 100%.
    const std::size_t idx =
        (points == 1) ? n - 1 : (i * (n - 1)) / (points - 1);
    out.push_back({samples[idx],
                   100.0 * static_cast<double>(idx + 1) /
                       static_cast<double>(n)});
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(bins == 0 ? 1 : bins)),
      counts_(bins == 0 ? 1 : bins, 0) {}

std::size_t Histogram::bin_index(double x) const noexcept {
  if (x < lo_) return 0;
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  return idx >= counts_.size() ? counts_.size() - 1 : idx;
}

void Histogram::add(double x) noexcept {
  ++counts_[bin_index(x)];
  ++total_;
}

double Histogram::bin_center(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + static_cast<double>(bin) * width_;
}

double safe_ratio(double num, double den) noexcept {
  return den == 0.0 ? 0.0 : num / den;
}

double canonical_sum(const double* data, std::size_t n) noexcept {
  // The contract is the fixed-width lane-then-tree DAG pinned in
  // util::simd::sum_f64; every ISA path must reproduce those exact bytes
  // (proven by tests/test_simd.cc and scripts/check_simd_determinism.sh).
  return simd::sum_f64(data, n);
}

double canonical_sum(const std::vector<double>& data) noexcept {
  return canonical_sum(data.data(), data.size());
}

double canonical_mean(const std::vector<double>& data) noexcept {
  if (data.empty()) return 0.0;
  return canonical_sum(data) / static_cast<double>(data.size());
}

}  // namespace msamp::util

#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace msamp::util {

int ThreadPool::resolve_values(int requested, const char* env,
                               unsigned hardware) noexcept {
  // Every path clamps to 1024 so a typo (or a pathological cpuset report)
  // degrades to "many threads", never std::system_error from exhaustion.
  constexpr int kMaxThreads = 1024;
  if (requested > 0) return std::min(requested, kMaxThreads);
  if (env != nullptr) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<int>(std::min<long>(v, kMaxThreads));
    }
  }
  if (hardware == 0) return 1;
  return static_cast<int>(
      std::min<unsigned>(hardware, static_cast<unsigned>(kMaxThreads)));
}

int ThreadPool::resolve(int requested) noexcept {
  // An explicit request wins; MSAMP_THREADS only fills in the default.
  // This getenv is one of the two documented MSAMP_* readers allowlisted
  // by msamp_lint's nondet-getenv rule (docs/STATIC_ANALYSIS.md) — it may
  // change wall-clock, never bytes.
  return resolve_values(requested, std::getenv("MSAMP_THREADS"),
                        std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int threads) {
  const int lanes = resolve(threads);
  workers_.reserve(static_cast<std::size_t>(lanes - 1));
  for (int i = 1; i < lanes; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::lock_probed(std::unique_lock<std::mutex>& lock) {
  // Tier-0 trylock probe: the uncontended case costs one try_lock (same
  // atomic op a plain lock starts with) plus a relaxed increment.
  if (lock.try_lock()) {
    counters_.count_lock(true);
    return;
  }
  counters_.count_lock(false);
  lock.lock();
}

std::size_t ThreadPool::claim_index() {
  // CAS claim loop instead of a blind fetch_add: the counter never
  // overshoots n_, and every failed exchange is a measured contention
  // event.  Returns n_ when the job is drained (or abandoned).
  counters_.cas_attempts.fetch_add(1, std::memory_order_relaxed);
  std::size_t i = next_.load(std::memory_order_relaxed);
  while (i < n_) {
    if (next_.compare_exchange_weak(i, i + 1, std::memory_order_relaxed,
                                    std::memory_order_relaxed)) {
      return i;
    }
    counters_.cas_retries.fetch_add(1, std::memory_order_relaxed);
  }
  return n_;
}

void ThreadPool::drain_current_job(int lane) {
  for (;;) {
    const std::size_t i = claim_index();
    if (i >= n_) return;
    try {
      (*body_)(lane, i);
    } catch (...) {
      {
        std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
        lock_probed(lock);
        if (!error_) error_ = std::current_exception();
      }
      // Abandon unclaimed indices so every lane falls out of the job and
      // parallel_for can rethrow; indices already claimed still finish.
      next_.store(n_, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::worker_loop(int lane) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
      lock_probed(lock);
      while (!stop_ && generation_ == seen) {
        counters_.waits.fetch_add(1, std::memory_order_relaxed);
        cv_start_.wait(lock);
      }
      if (stop_) return;
      seen = generation_;
    }
    drain_current_job(lane);
    {
      std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
      lock_probed(lock);
      if (--active_ == 0) {
        counters_.notifies.fetch_add(1, std::memory_order_relaxed);
        cv_done_.notify_one();
      }
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  parallel_for(n, std::function<void(int, std::size_t)>(
                      [&body](int, std::size_t i) { body(i); }));
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(int, std::size_t)>& body) {
  if (n == 0) return;
  bool expected = false;
  if (!busy_.compare_exchange_strong(expected, true,
                                     std::memory_order_acq_rel)) {
    throw std::logic_error(
        "ThreadPool::parallel_for is not reentrant: another parallel_for is "
        "already running on this pool, and the pool holds only one job's "
        "state (n/body/generation) — a nested or concurrent job would "
        "silently corrupt it. Nest over a SEPARATE ThreadPool instead; the "
        "pools are work-conserving, so nesting distinct pools cannot "
        "deadlock.");
  }
  struct BusyReset {
    std::atomic<bool>& flag;
    ~BusyReset() { flag.store(false, std::memory_order_release); }
  } reset{busy_};
  if (workers_.empty() || n == 1) {
    // Serial fast path: no locks, no claims — which is also what keeps
    // the 1-lane contention baseline at exactly zero (no false positives
    // from single-threaded runs).
    for (std::size_t i = 0; i < n; ++i) body(0, i);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
    lock_probed(lock);
    n_ = n;
    body_ = &body;
    error_ = nullptr;
    next_.store(0, std::memory_order_relaxed);
    active_ = workers_.size();
    ++generation_;
  }
  counters_.notifies.fetch_add(1, std::memory_order_relaxed);
  cv_start_.notify_all();
  drain_current_job(0);
  std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
  lock_probed(lock);
  while (active_ != 0) {
    counters_.waits.fetch_add(1, std::memory_order_relaxed);
    cv_done_.wait(lock);
  }
  body_ = nullptr;
  if (error_) {
    const std::exception_ptr e = std::exchange(error_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

}  // namespace msamp::util

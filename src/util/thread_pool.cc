#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

namespace msamp::util {

int ThreadPool::resolve(int requested) noexcept {
  // An explicit request wins; MSAMP_THREADS only fills in the default.
  // This getenv is one of the two documented MSAMP_* readers allowlisted
  // by msamp_lint's nondet-getenv rule (docs/STATIC_ANALYSIS.md) — it may
  // change wall-clock, never bytes.
  if (requested > 0) return std::min(requested, 1024);
  if (const char* env = std::getenv("MSAMP_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<int>(std::min<long>(v, 1024));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  const int lanes = resolve(threads);
  workers_.reserve(static_cast<std::size_t>(lanes - 1));
  for (int i = 1; i < lanes; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drain_current_job() {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return;
    try {
      (*body_)(i);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
      // Abandon unclaimed indices so every lane falls out of the job and
      // parallel_for can rethrow; indices already claimed still finish.
      next_.store(n_, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    drain_current_job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    n_ = n;
    body_ = &body;
    error_ = nullptr;
    next_.store(0, std::memory_order_relaxed);
    active_ = workers_.size();
    ++generation_;
  }
  cv_start_.notify_all();
  drain_current_job();
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return active_ == 0; });
  body_ = nullptr;
  if (error_) {
    const std::exception_ptr e = std::exchange(error_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

}  // namespace msamp::util

// Deterministic fork-join worker pool.
//
// `parallel_for(n, body)` runs body(i) for every i in [0, n) across the
// pool's workers plus the calling thread and blocks until all indices
// completed.  Indices are claimed from one shared atomic counter — no
// per-thread queues, no work stealing — so there is no scheduler state
// that could leak into results.  Determinism is the caller's side of the
// contract: body(i) must depend only on i (derive RNGs by forking from a
// keyed seed, never from execution order) and per-index results must be
// reduced in canonical index order afterwards.  Under that contract the
// output is byte-identical for any thread count, including 1.
//
// The pool carries always-on contention counters (trylock probe on its
// mutex, CAS-retry tallies on the index claim, cv wait/notify counts —
// util/contention_counters.h).  They are observability-only: nothing in
// the pool consults them, and msamp_lint's `counters-not-in-output` rule
// keeps snapshot reads out of every output path (docs/OBSERVABILITY.md).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/contention_counters.h"

namespace msamp::util {

class ThreadPool {
 public:
  /// Spawns `resolve(threads) - 1` workers (the caller is the remaining
  /// lane).  A positive `threads` is used as given; `threads == 0` means
  /// the MSAMP_THREADS environment variable when set, else all hardware
  /// cores.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (workers + the calling thread).
  int size() const noexcept { return static_cast<int>(workers_.size()) + 1; }

  /// Runs body(0) ... body(n-1), each exactly once, and returns when all
  /// are done.  The calling thread participates.  `body` must be safe to
  /// invoke concurrently for distinct indices.  If a body throws (on any
  /// lane), unclaimed indices are abandoned, the job drains, and the
  /// FIRST captured exception is rethrown on the calling thread; the pool
  /// stays reusable afterwards.  Not reentrant: the pool holds exactly
  /// one job's state, so a nested or concurrent parallel_for on the SAME
  /// pool throws std::logic_error (nest over distinct pools instead — the
  /// pools are work-conserving, so that never deadlocks).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  /// Lane-aware variant: body(lane, i) with `lane` in [0, size()) — the
  /// calling thread is lane 0, workers are 1..size()-1 — so a caller can
  /// keep per-lane state (scratch buffers, SPSC handoff rings) without
  /// thread-id hashing.  A lane runs on one fixed thread for the whole
  /// job.  Same contract as the index-only overload otherwise, including
  /// the determinism rule: results must not depend on which lane ran
  /// which index.
  void parallel_for(std::size_t n,
                    const std::function<void(int, std::size_t)>& body);

  /// Point-in-time copy of the pool's contention counters.  Cumulative
  /// over the pool's lifetime; diff two snapshots to scope one
  /// parallel_for.  Observability-only — never fold a counter into
  /// output bytes (enforced by msamp_lint's counters-not-in-output).
  ContentionSnapshot contention_snapshot() const noexcept {
    return counters_.snapshot();
  }

  /// Effective thread count: an explicit `requested` value (positive
  /// integer) wins, else the MSAMP_THREADS env var when set to a positive
  /// integer, else the hardware concurrency (at least 1).  All three
  /// paths clamp to 1024.
  static int resolve(int requested) noexcept;

  /// The pure resolution rule behind `resolve`, with the environment
  /// value and hardware concurrency passed in (exposed so the clamp on
  /// every path — including the hardware fallback — is unit-testable).
  static int resolve_values(int requested, const char* env,
                            unsigned hardware) noexcept;

 private:
  void worker_loop(int lane);
  void drain_current_job(int lane);
  std::size_t claim_index();
  void lock_probed(std::unique_lock<std::mutex>& lock);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;  ///< bumped per job; workers wait on it
  std::size_t active_ = 0;        ///< workers still inside the current job
  bool stop_ = false;

  // Current job; written under mu_ before generation_ bumps, read by
  // workers only after observing the bump (so the mutex orders access).
  std::size_t n_ = 0;
  const std::function<void(int, std::size_t)>* body_ = nullptr;
  std::atomic<std::size_t> next_{0};
  std::exception_ptr error_;  ///< first exception thrown by the job's body
  std::atomic<bool> busy_{false};  ///< re-entrancy guard for parallel_for

  ContentionCounters counters_;
};

}  // namespace msamp::util

// Always-on contention observability counters (Tier-0 trylock-probe
// design): every counter is a relaxed atomic increment on a path that was
// already synchronizing, so the probe adds no fences and no jitter —
// cheap enough to leave on in production builds.
//
// Two hard rules keep these trustworthy:
//
//  1. Every event counter has a denominator.  `lock_contended` alone says
//     nothing; `lock_contended / (lock_fast + lock_contended)` is a rate
//     you can compare across thread counts and hosts.
//  2. Counters are observability-only.  They measure execution, and
//     execution (which lane won a CAS, how often a trylock failed) is
//     exactly what the determinism contract says must never reach output
//     bytes.  msamp_lint's `counters-not-in-output` rule bans snapshot
//     reads from every output path; the one sanctioned reader is
//     bench/bench_pool_contention.cc (docs/OBSERVABILITY.md).
//
// ContentionCounters is the live struct (atomics, written by the
// instrumented paths); ContentionSnapshot is the plain-value copy a
// reader takes with `snapshot()`.  Snapshots of a live workload are
// monotonic but not transactionally consistent across fields — fine for
// rates, meaningless for exact cross-field identities mid-run.
#pragma once

#include <atomic>
#include <cstdint>

namespace msamp::util {

/// Plain-value copy of a ContentionCounters at one point in time, with
/// the derived rates.  All rates return 0.0 when their denominator is 0.
struct ContentionSnapshot {
  // Trylock probe: each mutex acquisition on an instrumented path first
  // try_locks; success is the uncontended fast path, failure falls back
  // to a blocking lock() and counts as contended.
  std::uint64_t lock_fast = 0;       ///< try_lock succeeded (no contention)
  std::uint64_t lock_contended = 0;  ///< try_lock failed, had to block

  // CAS loops (e.g. the pool's shared index-claim counter).
  std::uint64_t cas_attempts = 0;  ///< claim operations (denominator)
  std::uint64_t cas_retries = 0;   ///< failed compare_exchange iterations

  // Condition-variable traffic on the instrumented paths.
  std::uint64_t waits = 0;     ///< times a thread blocked in a cv wait
  std::uint64_t notifies = 0;  ///< notify_one/notify_all calls issued

  // SPSC handoff rings (util::SpscRing).
  std::uint64_t handoff_pushes = 0;      ///< successful pushes (denominator)
  std::uint64_t handoff_full_spins = 0;  ///< push found the ring full
  std::uint64_t handoff_pops = 0;        ///< successful pops (denominator)
  std::uint64_t handoff_empty_spins = 0; ///< pop found the ring empty

  std::uint64_t lock_acquisitions() const noexcept {
    return lock_fast + lock_contended;
  }
  double lock_contention_rate() const noexcept {
    return ratio(lock_contended, lock_acquisitions());
  }
  double cas_retry_rate() const noexcept {
    return ratio(cas_retries, cas_attempts + cas_retries);
  }
  double handoff_full_rate() const noexcept {
    return ratio(handoff_full_spins, handoff_pushes + handoff_full_spins);
  }
  double handoff_empty_rate() const noexcept {
    return ratio(handoff_empty_spins, handoff_pops + handoff_empty_spins);
  }

 private:
  static double ratio(std::uint64_t num, std::uint64_t den) noexcept {
    return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
  }
};

/// The live counters an instrumented component embeds.  Increments are
/// relaxed (no ordering is implied or needed — the instrumented paths
/// carry their own synchronization); `snapshot()` is safe from any thread
/// at any time.
struct ContentionCounters {
  std::atomic<std::uint64_t> lock_fast{0};
  std::atomic<std::uint64_t> lock_contended{0};
  std::atomic<std::uint64_t> cas_attempts{0};
  std::atomic<std::uint64_t> cas_retries{0};
  std::atomic<std::uint64_t> waits{0};
  std::atomic<std::uint64_t> notifies{0};
  std::atomic<std::uint64_t> handoff_pushes{0};
  std::atomic<std::uint64_t> handoff_full_spins{0};
  std::atomic<std::uint64_t> handoff_pops{0};
  std::atomic<std::uint64_t> handoff_empty_spins{0};

  /// Records one mutex acquisition probed via try_lock.
  void count_lock(bool fast) noexcept {
    (fast ? lock_fast : lock_contended)
        .fetch_add(1, std::memory_order_relaxed);
  }

  ContentionSnapshot snapshot() const noexcept {
    ContentionSnapshot s;
    s.lock_fast = lock_fast.load(std::memory_order_relaxed);
    s.lock_contended = lock_contended.load(std::memory_order_relaxed);
    s.cas_attempts = cas_attempts.load(std::memory_order_relaxed);
    s.cas_retries = cas_retries.load(std::memory_order_relaxed);
    s.waits = waits.load(std::memory_order_relaxed);
    s.notifies = notifies.load(std::memory_order_relaxed);
    s.handoff_pushes = handoff_pushes.load(std::memory_order_relaxed);
    s.handoff_full_spins =
        handoff_full_spins.load(std::memory_order_relaxed);
    s.handoff_pops = handoff_pops.load(std::memory_order_relaxed);
    s.handoff_empty_spins =
        handoff_empty_spins.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace msamp::util

// Terminal plotting for the bench binaries: multi-series line charts (used
// for the paper's CDFs and loss curves) drawn on a character grid.  The
// benches print these so a human can eyeball the reproduced figure shapes
// next to the numeric tables.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace msamp::util {

/// One named series of (x, y) points to plot.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Plot configuration; defaults fit an 80-column terminal.
struct PlotOptions {
  int width = 72;       ///< plot area columns
  int height = 20;      ///< plot area rows
  std::string title;    ///< printed above the plot
  std::string x_label;  ///< printed below the x axis
  std::string y_label;  ///< printed beside the y axis
  /// Force axis ranges; when min > max (default) ranges auto-fit the data.
  double x_min = 1.0, x_max = 0.0;
  double y_min = 1.0, y_max = 0.0;
};

/// Renders the series onto a character grid, one glyph per series
/// ('*', '+', 'o', 'x', ...), with a legend. Series are drawn with linear
/// interpolation between consecutive points so sparse series read as lines.
void ascii_plot(std::ostream& os, const std::vector<Series>& series,
                const PlotOptions& options);

/// Renders a raster/strip chart (Figure 5 style): rows are entities (queue
/// ids), columns time buckets; a mark where `active[row][col]` is true.
void ascii_raster(std::ostream& os, const std::vector<std::vector<bool>>& active,
                  const std::string& title, int max_width = 72);

}  // namespace msamp::util

#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace msamp::util {

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string format_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f%s", bytes, units[u]);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(std::string value) {
  if (rows_.empty()) row();
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

Table& Table::cell(long long value) {
  return cell(std::to_string(value));
}

Table& Table::cell(unsigned long long value) {
  return cell(std::to_string(value));
}

Table& Table::add_row(std::initializer_list<std::string> cells) {
  row();
  for (const auto& c : cells) cell(c);
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << "  " << v << std::string(widths[c] - v.size(), ' ');
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

void Table::write_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << quote(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
}

bool Table::write_csv_file(const std::string& path) const {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream out(path);
  if (!out) return false;
  write_csv(out);
  return static_cast<bool>(out);
}

}  // namespace msamp::util

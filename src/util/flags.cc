#include "util/flags.h"

#include <algorithm>
#include <cstring>

namespace msamp::util {

Flags::Flags(int argc, char** argv, int first, std::vector<std::string> known,
             bool allow_positionals) {
  for (int i = first; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      if (allow_positionals) {
        positionals_.emplace_back(argv[i]);
        continue;
      }
      throw UsageError(std::string("unexpected argument '") + argv[i] +
                       "' (flags look like --key value)");
    }
    const std::string key = argv[i] + 2;
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      throw UsageError("unknown flag '--" + key + "' for this command");
    }
    if (i + 1 >= argc) {
      throw UsageError("flag '--" + key + "' is missing its value");
    }
    values_[key] = argv[++i];
  }
}

bool Flags::has(const std::string& key) const {
  return values_.find(key) != values_.end();
}

std::string Flags::str(const std::string& key,
                       const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

long Flags::num(const std::string& key, long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const long v = std::stol(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const UsageError&) {
    throw;
  } catch (const std::exception&) {
    throw UsageError("flag '--" + key + "' needs an integer, got '" +
                     it->second + "'");
  }
}

double Flags::real(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const double v = std::stod(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const UsageError&) {
    throw;
  } catch (const std::exception&) {
    throw UsageError("flag '--" + key + "' needs a number, got '" +
                     it->second + "'");
  }
}

std::pair<long, long> Flags::index_count(
    const std::string& key, std::pair<long, long> fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  const auto slash = v.find('/');
  const auto bad = [&]() -> UsageError {
    return UsageError("flag '--" + key + "' needs I/N with 0 <= I < N, got '" +
                      v + "'");
  };
  if (slash == std::string::npos || slash == 0 || slash + 1 >= v.size()) {
    throw bad();
  }
  long index = 0, count = 0;
  try {
    std::size_t used = 0;
    index = std::stol(v.substr(0, slash), &used);
    if (used != slash) throw std::invalid_argument(v);
    const std::string rest = v.substr(slash + 1);
    count = std::stol(rest, &used);
    if (used != rest.size()) throw std::invalid_argument(v);
  } catch (const std::exception&) {
    throw bad();
  }
  if (index < 0 || count < 1 || index >= count) throw bad();
  return {index, count};
}

}  // namespace msamp::util

#include "util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/table.h"

namespace msamp::util {
namespace {

constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  void include(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  void finalize() {
    if (lo > hi) {
      lo = 0.0;
      hi = 1.0;
    }
    if (lo == hi) {
      lo -= 0.5;
      hi += 0.5;
    }
  }
};

}  // namespace

void ascii_plot(std::ostream& os, const std::vector<Series>& series,
                const PlotOptions& options) {
  const int w = std::max(options.width, 8);
  const int h = std::max(options.height, 4);

  Range xr, yr;
  if (options.x_min <= options.x_max) {
    xr.lo = options.x_min;
    xr.hi = options.x_max;
  } else {
    for (const auto& s : series)
      for (double v : s.x) xr.include(v);
  }
  if (options.y_min <= options.y_max) {
    yr.lo = options.y_min;
    yr.hi = options.y_max;
  } else {
    for (const auto& s : series)
      for (double v : s.y) yr.include(v);
  }
  xr.finalize();
  yr.finalize();

  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));
  auto to_col = [&](double x) {
    const double f = (x - xr.lo) / (xr.hi - xr.lo);
    return static_cast<int>(std::lround(f * (w - 1)));
  };
  auto to_row = [&](double y) {
    const double f = (y - yr.lo) / (yr.hi - yr.lo);
    return (h - 1) - static_cast<int>(std::lround(f * (h - 1)));
  };
  auto put = [&](int col, int row, char g) {
    if (col < 0 || col >= w || row < 0 || row >= h) return;
    grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = g;
  };

  for (std::size_t si = 0; si < series.size(); ++si) {
    const auto& s = series[si];
    const char g = kGlyphs[si % sizeof(kGlyphs)];
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      put(to_col(s.x[i]), to_row(s.y[i]), g);
      if (i + 1 < n) {
        // Interpolate so the series reads as a line, not scattered dots.
        const int c0 = to_col(s.x[i]), c1 = to_col(s.x[i + 1]);
        const int steps = std::abs(c1 - c0);
        for (int k = 1; k < steps; ++k) {
          const double t = static_cast<double>(k) / steps;
          put(to_col(s.x[i] + t * (s.x[i + 1] - s.x[i])),
              to_row(s.y[i] + t * (s.y[i + 1] - s.y[i])), g);
        }
      }
    }
  }

  if (!options.title.empty()) os << options.title << '\n';
  const std::string ylab_hi = format_double(yr.hi, 2);
  const std::string ylab_lo = format_double(yr.lo, 2);
  const std::size_t margin = std::max(ylab_hi.size(), ylab_lo.size()) + 1;
  for (int r = 0; r < h; ++r) {
    std::string label;
    if (r == 0) label = ylab_hi;
    else if (r == h - 1) label = ylab_lo;
    os << std::string(margin - label.size(), ' ') << label << '|'
       << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(margin, ' ') << '+' << std::string(static_cast<std::size_t>(w), '-')
     << '\n';
  const std::string xlab_lo = format_double(xr.lo, 2);
  const std::string xlab_hi = format_double(xr.hi, 2);
  os << std::string(margin + 1, ' ') << xlab_lo
     << std::string(static_cast<std::size_t>(std::max(
            1, w - static_cast<int>(xlab_lo.size() + xlab_hi.size()))), ' ')
     << xlab_hi << '\n';
  if (!options.x_label.empty() || !options.y_label.empty()) {
    os << std::string(margin + 1, ' ') << "x: " << options.x_label
       << "   y: " << options.y_label << '\n';
  }
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << "  " << kGlyphs[si % sizeof(kGlyphs)] << " = " << series[si].name
       << '\n';
  }
}

void ascii_raster(std::ostream& os, const std::vector<std::vector<bool>>& active,
                  const std::string& title, int max_width) {
  if (!title.empty()) os << title << '\n';
  if (active.empty()) return;
  std::size_t cols = 0;
  for (const auto& r : active) cols = std::max(cols, r.size());
  if (cols == 0) return;
  // Down-sample columns to fit the terminal: a cell is marked if any sample
  // in its span is active.
  const auto width = static_cast<std::size_t>(std::max(max_width, 8));
  const std::size_t span = (cols + width - 1) / width;
  for (std::size_t row = 0; row < active.size(); ++row) {
    os << (row < 10 ? " " : "") << row << " |";
    for (std::size_t c = 0; c < cols; c += span) {
      bool any = false;
      for (std::size_t k = c; k < std::min(c + span, active[row].size()); ++k) {
        any = any || active[row][k];
      }
      os << (any ? '#' : '.');
    }
    os << '\n';
  }
  os << "    (" << cols << " samples, " << span << " per column)\n";
}

}  // namespace msamp::util

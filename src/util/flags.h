// Command-line flag parser shared by the CLI front ends.
//
// Parses `--key value` pairs (later duplicates win; absent flags keep
// their fallback).  Malformed input — an unknown flag, a trailing flag
// with no value, a positional token where none is allowed, or a
// non-numeric value for a numeric accessor — throws util::UsageError.
// Front ends catch it, print the message plus their usage text, and exit
// with status 2, which keeps the historic msampctl semantics while making
// the parser directly unit-testable (tests/test_flags.cc).
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace msamp::util {

/// A malformed command line.  The message describes the offending token;
/// the catcher owns the usage text and the exit code (2 by convention).
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Flags {
 public:
  /// Parses argv[first..argc).  Every flag must appear in `known` and
  /// takes exactly one value.  Tokens that do not start with "--" are
  /// collected in order into positionals() when `allow_positionals` is
  /// true, and are a UsageError otherwise.
  Flags(int argc, char** argv, int first, std::vector<std::string> known,
        bool allow_positionals = false);

  bool has(const std::string& key) const;
  std::string str(const std::string& key, const std::string& fallback) const;

  /// Integer value; throws UsageError unless the whole token parses.
  long num(const std::string& key, long fallback) const;

  /// Floating-point value; throws UsageError unless the whole token parses.
  double real(const std::string& key, double fallback) const;

  /// "I/N" pair value (e.g. `--shard 1/3`).  Requires two integers
  /// separated by '/' with 0 <= I < N; anything else is a UsageError.
  std::pair<long, long> index_count(const std::string& key,
                                    std::pair<long, long> fallback) const;

  /// Non-flag tokens, in command-line order (empty unless the constructor
  /// allowed them).
  const std::vector<std::string>& positionals() const { return positionals_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace msamp::util

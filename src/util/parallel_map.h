// Deterministic parallel map on top of util::ThreadPool.
//
// `parallel_map(pool, n, fn)` computes fn(i) for every i in [0, n) on the
// pool's lanes and returns the results as a vector in canonical index
// order — out[i] == fn(i) no matter which lane computed it or in what
// order.  The output vector is pre-sized up front (one allocation, no
// locking on the result path), which is the first step of the ROADMAP's
// "streaming / sharded reduction" item: reducers downstream fold a
// pre-sized, index-addressed buffer instead of appending under contention.
//
// The determinism contract is inherited from ThreadPool::parallel_for and
// is the caller's side: fn(i) must depend only on i (fork RNGs from a
// keyed seed, never from execution order).  Under that contract the
// returned vector — and anything folded from it in index order — is
// byte-identical for any thread count, including 1.
//
// If fn throws, the first captured exception is rethrown on the calling
// thread (see ThreadPool::parallel_for); already-computed results are
// discarded with the vector.
#pragma once

#include <cstddef>
#include <type_traits>
#include <vector>

#include "util/thread_pool.h"

namespace msamp::util {

template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using Result = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(std::is_default_constructible_v<Result>,
                "parallel_map results are pre-sized, so the result type "
                "must be default-constructible");
  std::vector<Result> out(n);
  pool.parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace msamp::util

// Receive-side NIC model with GRO (generic receive offload) coalescing.
//
// §4.6 of the paper notes the tc layer sees segments *after* the receiving
// NIC's offloaded reassembly, so Millisampler may observe up to 64KB
// "packets" — inflating apparent burstiness at 100µs granularity.  We model
// this: consecutive in-order packets of one flow are merged into a segment
// until the segment reaches the GRO cap, a different flow arrives, a
// sequence gap appears, or a flush timeout passes.
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.h"
#include "sim/simulator.h"

namespace msamp::net {

/// GRO parameters.
struct NicConfig {
  std::int64_t gro_max_bytes = 64 << 10;            ///< 64KB segment cap
  sim::SimDuration gro_flush = 8 * sim::kMicrosecond; ///< idle flush timer
  bool gro_enabled = true;
};

/// Receive path of a host NIC; emits (possibly coalesced) segments to the
/// host stack.  Pure ACKs and multicast packets bypass coalescing.
class Nic {
 public:
  using DeliverSegment = std::function<void(const Packet&)>;

  Nic(sim::Simulator& simulator, const NicConfig& config,
      DeliverSegment deliver);

  /// Packet arrived from the wire.
  void receive(const Packet& packet);

  /// Flushes any pending coalesced segment immediately.
  void flush();

  /// Number of wire packets merged away by GRO (for tests / stats).
  std::uint64_t coalesced_packets() const noexcept { return coalesced_; }

 private:
  void arm_flush_timer();

  sim::Simulator& simulator_;
  NicConfig config_;
  DeliverSegment deliver_;

  bool has_pending_ = false;
  Packet pending_{};
  std::int64_t pending_end_seq_ = 0;
  std::uint64_t flush_event_ = 0;
  std::uint64_t coalesced_ = 0;
};

}  // namespace msamp::net

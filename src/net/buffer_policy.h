// Buffer-sharing policy layer for the shared-memory MMU.
//
// The studied fleet runs Dynamic Threshold (Choudhury-Hahne) with alpha=1;
// everything the paper measures (Figs 9, 16-19) is conditioned on that one
// choice.  `BufferSharingPolicy` generalizes the admission limit behind a
// small virtual interface so the same simulators (packet-level
// net::SharedBuffer and the fluid fleet::FluidRack) can be re-run under
// alternative sharing disciplines and compared via `msampctl sweep`.
//
// Determinism contract for implementations (see docs/POLICIES.md):
//   * no wall clock, no global mutable state, no unordered iteration —
//     a policy's output may depend only on its config and the admission
//     history delivered through on_enqueue()/on_dequeue();
//   * every tunable must live in SharedBufferConfig (or a struct nested in
//     it), travel through the wire format (src/fleet/wire.cc) and be hashed
//     by FleetConfig::fingerprint() — the `fingerprint-coverage` lint rule
//     enforces the hashing once the struct is registered in
//     tools/lint/main.cc.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

namespace msamp::net {

/// Buffer-sharing policy selector.  The studied fleet runs Dynamic
/// Threshold (Choudhury-Hahne); the alternatives implement the §10
/// related-work algorithms:
///   * kStaticPartition — each queue owns an equal fixed slice;
///   * kCompleteSharing — any queue may take all free space (no isolation);
///   * kBurstAbsorbDt   — DT, but a queue whose arrival rate just jumped
///     (a fresh burst) is temporarily allowed a larger alpha, per Shan et
///     al.'s enhanced dynamic threshold;
///   * kDelayDriven     — BShare-style: the alpha seen by a queue shrinks
///     as its queueing delay grows past a target, bounding latency while
///     letting short bursts take headroom.
enum class BufferPolicy : std::uint8_t {
  kDynamicThreshold = 0,
  kStaticPartition,
  kCompleteSharing,
  kBurstAbsorbDt,
  kDelayDriven,
};

/// Parameters of the kDelayDriven control law.
struct DelayDrivenConfig {
  double target_delay_ms = 0.5;  ///< queueing delay the controller holds
  double min_gain = 0.125;       ///< floor on the alpha multiplier
  double max_gain = 8.0;         ///< ceiling on the alpha multiplier
  double drain_gbps = 12.5;      ///< egress rate used to turn bytes into ms
};

/// Configuration of the MMU; defaults reproduce the paper's ToR.
struct SharedBufferConfig {
  std::int64_t total_bytes = 16 << 20;    ///< 16 MB packet buffer
  int quadrants = 4;                      ///< 4 x 4MB quadrants
  std::int64_t reserve_per_queue = 16 << 10;  ///< dedicated bytes per queue
  double alpha = 1.0;                     ///< DT alpha (Meta default)
  std::int64_t ecn_threshold = 120 << 10; ///< static CE-mark threshold
  BufferPolicy policy = BufferPolicy::kDynamicThreshold;
  /// kBurstAbsorbDt: alpha multiplier granted to freshly bursting queues.
  double burst_alpha_boost = 4.0;
  /// kDelayDriven control-law parameters.
  DelayDrivenConfig delay;
};

/// Snapshot of one queue's view of the buffer, assembled by the caller at
/// the instant an admission decision is needed.  `free_shared` is the
/// caller's notion of remaining shared space (the packet MMU passes it
/// unclamped, the fluid model clamps at zero) so the policies reproduce
/// each simulator's seed arithmetic bit for bit.
struct PolicyQueueState {
  std::int64_t queue_len = 0;      ///< total bytes queued (reserve + shared)
  std::int64_t shared_len = 0;     ///< bytes of queue_len in the shared pool
  std::int64_t free_shared = 0;    ///< shared capacity minus occupancy
  std::int64_t shared_capacity = 0;  ///< shared pool of the queue's quadrant
  int queues_in_quadrant = 0;      ///< queues mapped to this quadrant
  std::int64_t arriving_bytes = 0; ///< bytes asking admission right now
  /// Egress drain rate; kInfiniteDrain when the caller does not model
  /// drain (the packet MMU), which neutralizes rate-based burst detection.
  std::int64_t drain_bytes_per_ms = 0;
};

/// Drain sentinel for callers that do not model egress rate.
inline constexpr std::int64_t kInfiniteDrain =
    std::int64_t{0x7fffffffffffffff};

/// The sharing discipline proper.  One instance serves all queues of one
/// MMU (or one fluid rack); implementations may keep per-queue state fed
/// by the hooks below, and must follow the determinism contract above.
class BufferSharingPolicy {
 public:
  virtual ~BufferSharingPolicy() = default;

  /// Short stable identifier ("dt", "static", ...), used in tables, sweep
  /// cell names and CLI flags.
  virtual std::string_view name() const noexcept = 0;

  /// Maximum *shared* usage `queue` may reach right now, excluding its
  /// dedicated reserve (the caller adds the reserve).
  virtual std::int64_t policy_limit(int queue,
                                    const PolicyQueueState& qs) const = 0;

  /// Arrival observation: the packet MMU reports each admitted packet, the
  /// fluid model reports each step's offered demand.  Called after the
  /// admission decision that used policy_limit().
  virtual void on_enqueue(int queue, std::int64_t bytes) {
    (void)queue;
    (void)bytes;
  }

  /// Departure observation (packet transmitted / step drained).
  virtual void on_dequeue(int queue, std::int64_t bytes) {
    (void)queue;
    (void)bytes;
  }
};

/// Builds the policy object selected by `config.policy` for an MMU with
/// `num_queues` queues.  Deterministic: equal configs build policies with
/// identical behavior.
std::unique_ptr<BufferSharingPolicy> make_policy(
    const SharedBufferConfig& config, int num_queues);

/// Stable short name of a policy ("dt", "static", "complete",
/// "burst-absorb", "delay").
std::string_view policy_name(BufferPolicy policy) noexcept;

/// Parses a policy token as printed by policy_name().  Returns false and
/// leaves `*out` untouched on an unknown token.
bool parse_policy(std::string_view token, BufferPolicy* out) noexcept;

}  // namespace msamp::net

// Shared-memory MMU with Dynamic Threshold (DT) buffer sharing and static
// ECN marking, modeled on the ToR described in §2.1/§3 of the paper:
//
//   * total buffer B split into quadrants (16MB -> 4 x 4MB on the studied
//     ASIC); an egress queue maps to exactly one quadrant;
//   * per-queue small dedicated reserve; the remainder of each quadrant
//     (~3.6MB) is shared across its queues;
//   * a packet is admitted iff the queue's shared usage stays within the
//     Choudhury-Hahne limit  T(t) = alpha * (B_shared - Q_shared(t));
//   * packets are CE-marked when the queue length at enqueue is at or above
//     a static ECN threshold (120KB in the Meta fleet).
//
// The same arithmetic (admission + fixed point T = aB/(1+aS)) is reused by
// the millisecond-granularity fluid simulator in src/fleet.
#pragma once

#include <cstdint>
#include <vector>

namespace msamp::net {

/// Buffer-sharing policy.  The studied fleet runs Dynamic Threshold
/// (Choudhury-Hahne); the alternatives implement the §10 related-work
/// algorithms for the ablation benches:
///   * kStaticPartition — each queue owns an equal fixed slice;
///   * kCompleteSharing — any queue may take all free space (no isolation);
///   * kBurstAbsorbDt   — DT, but a queue whose arrival rate just jumped
///     (a fresh burst) is temporarily allowed a larger alpha, per Shan et
///     al.'s enhanced dynamic threshold.
enum class BufferPolicy : std::uint8_t {
  kDynamicThreshold = 0,
  kStaticPartition,
  kCompleteSharing,
  kBurstAbsorbDt,
};

/// Configuration of the MMU; defaults reproduce the paper's ToR.
struct SharedBufferConfig {
  std::int64_t total_bytes = 16 << 20;    ///< 16 MB packet buffer
  int quadrants = 4;                      ///< 4 x 4MB quadrants
  std::int64_t reserve_per_queue = 16 << 10;  ///< dedicated bytes per queue
  double alpha = 1.0;                     ///< DT alpha (Meta default)
  std::int64_t ecn_threshold = 120 << 10; ///< static CE-mark threshold
  BufferPolicy policy = BufferPolicy::kDynamicThreshold;
  /// kBurstAbsorbDt: alpha multiplier granted to freshly bursting queues.
  double burst_alpha_boost = 4.0;
};

/// Per-queue counters exported by the MMU (the "switch counters" the paper
/// reads at 1-minute granularity for Figure 17).
struct QueueCounters {
  std::int64_t enqueued_bytes = 0;
  std::int64_t dropped_bytes = 0;   ///< congestion discards, bytes
  std::int64_t dropped_packets = 0; ///< congestion discards, packets
  std::int64_t ce_marked_bytes = 0;
};

/// The MMU proper.  Queue ids are dense [0, num_queues).
class SharedBuffer {
 public:
  SharedBuffer(const SharedBufferConfig& config, int num_queues);

  /// Attempts to admit `bytes` into `queue`.  On success the queue length
  /// grows and `*mark_ce` reports whether the packet must carry CE.
  /// On failure (DT limit exceeded) the drop counters grow instead.
  bool admit(int queue, std::int64_t bytes, bool ect, bool* mark_ce);

  /// Removes `bytes` from `queue` (packet transmitted out the port).
  void release(int queue, std::int64_t bytes);

  /// Current DT limit T(t) for the quadrant that `queue` maps to, i.e. the
  /// maximum shared usage a queue may reach right now.
  std::int64_t dynamic_limit(int queue) const;

  /// Current length of `queue` in bytes.
  std::int64_t queue_len(int queue) const { return queues_.at(queue).len; }

  /// Total occupancy of the shared portion of `queue`'s quadrant.
  std::int64_t shared_occupancy(int queue) const;

  /// Number of queues with nonzero length in `queue`'s quadrant.
  int active_queues_in_quadrant(int queue) const;

  /// Per-queue counters (never reset by the MMU itself).
  const QueueCounters& counters(int queue) const {
    return queues_.at(queue).counters;
  }

  /// Sum of discard bytes across all queues.
  std::int64_t total_dropped_bytes() const;

  int num_queues() const noexcept { return static_cast<int>(queues_.size()); }
  const SharedBufferConfig& config() const noexcept { return config_; }

  /// Quadrant a queue maps to (round-robin by queue id, as an egress queue
  /// maps to a quadrant as a function of the port).
  int quadrant_of(int queue) const {
    return queue % config_.quadrants;
  }

  /// Closed-form DT fixed point: the share of the *shared* buffer one of S
  /// saturated queues converges to, T = alpha*B / (1 + alpha*S).  Exposed
  /// for Figure 1 and cross-checked against the MMU in tests.
  static double fixed_point_share(double alpha, int active_queues);

 private:
  struct Queue {
    std::int64_t len = 0;  ///< total bytes queued (reserve + shared)
    QueueCounters counters;
  };

  /// The policy's current per-queue shared-usage cap.
  std::int64_t policy_limit(int queue) const;

  /// Bytes of `len` that count against the shared pool.
  std::int64_t shared_part(std::int64_t len) const {
    const std::int64_t over = len - config_.reserve_per_queue;
    return over > 0 ? over : 0;
  }

  SharedBufferConfig config_;
  std::int64_t shared_capacity_per_quadrant_;
  std::vector<Queue> queues_;
  std::vector<std::int64_t> shared_used_;  ///< per quadrant
};

}  // namespace msamp::net

// Shared-memory MMU with pluggable buffer sharing and static ECN marking,
// modeled on the ToR described in §2.1/§3 of the paper:
//
//   * total buffer B split into quadrants (16MB -> 4 x 4MB on the studied
//     ASIC); an egress queue maps to exactly one quadrant;
//   * per-queue small dedicated reserve; the remainder of each quadrant
//     (~3.6MB) is shared across its queues;
//   * a packet is admitted iff the queue's shared usage stays within the
//     configured BufferSharingPolicy's limit — under the deployed Dynamic
//     Threshold policy, the Choudhury-Hahne limit
//     T(t) = alpha * (B_shared - Q_shared(t));
//   * packets are CE-marked when the queue length at enqueue is at or above
//     a static ECN threshold (120KB in the Meta fleet).
//
// The same arithmetic (admission + fixed point T = aB/(1+aS)) is reused by
// the millisecond-granularity fluid simulator in src/fleet.  The policy
// catalogue and its extension contract live in net/buffer_policy.h and
// docs/POLICIES.md.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/buffer_policy.h"

namespace msamp::net {

/// Per-queue counters exported by the MMU (the "switch counters" the paper
/// reads at 1-minute granularity for Figure 17).
struct QueueCounters {
  std::int64_t enqueued_bytes = 0;
  std::int64_t dropped_bytes = 0;   ///< congestion discards, bytes
  std::int64_t dropped_packets = 0; ///< congestion discards, packets
  std::int64_t ce_marked_bytes = 0;
};

/// The MMU proper.  Queue ids are dense [0, num_queues).  Owns the policy
/// object built for its config, so the class is move-only.
class SharedBuffer {
 public:
  SharedBuffer(const SharedBufferConfig& config, int num_queues);

  SharedBuffer(SharedBuffer&&) noexcept = default;
  SharedBuffer& operator=(SharedBuffer&&) noexcept = default;

  /// Attempts to admit `bytes` into `queue`.  On success the queue length
  /// grows and `*mark_ce` reports whether the packet must carry CE.
  /// On failure (policy limit exceeded) the drop counters grow instead.
  bool admit(int queue, std::int64_t bytes, bool ect, bool* mark_ce);

  /// Removes `bytes` from `queue` (packet transmitted out the port).
  void release(int queue, std::int64_t bytes);

  /// Current policy limit T(t) for `queue`, i.e. the maximum shared usage
  /// the queue may reach right now (under DT this is the dynamic
  /// threshold, hence the name).
  std::int64_t dynamic_limit(int queue) const;

  /// Current length of `queue` in bytes.
  std::int64_t queue_len(int queue) const { return queues_.at(queue).len; }

  /// Total occupancy of the shared portion of `queue`'s quadrant.
  std::int64_t shared_occupancy(int queue) const;

  /// Number of queues with nonzero length in `queue`'s quadrant.
  int active_queues_in_quadrant(int queue) const;

  /// Per-queue counters (never reset by the MMU itself).
  const QueueCounters& counters(int queue) const {
    return queues_.at(queue).counters;
  }

  /// Sum of discard bytes across all queues.
  std::int64_t total_dropped_bytes() const;

  int num_queues() const noexcept { return static_cast<int>(queues_.size()); }
  const SharedBufferConfig& config() const noexcept { return config_; }

  /// The sharing discipline in charge of admission limits.
  const BufferSharingPolicy& policy() const noexcept { return *policy_; }

  /// Quadrant a queue maps to (round-robin by queue id, as an egress queue
  /// maps to a quadrant as a function of the port).
  int quadrant_of(int queue) const {
    return queue % config_.quadrants;
  }

  /// Closed-form DT fixed point: the share of the *shared* buffer one of S
  /// saturated queues converges to, T = alpha*B / (1 + alpha*S).  Exposed
  /// for Figure 1 and cross-checked against the MMU in tests.
  static double fixed_point_share(double alpha, int active_queues);

 private:
  struct Queue {
    std::int64_t len = 0;  ///< total bytes queued (reserve + shared)
    QueueCounters counters;
  };

  /// The policy's current per-queue shared-usage cap when `arriving`
  /// bytes ask for admission.
  std::int64_t policy_limit(int queue, std::int64_t arriving) const;

  /// Bytes of `len` that count against the shared pool.
  std::int64_t shared_part(std::int64_t len) const {
    const std::int64_t over = len - config_.reserve_per_queue;
    return over > 0 ? over : 0;
  }

  SharedBufferConfig config_;
  std::int64_t shared_capacity_per_quadrant_;
  std::unique_ptr<BufferSharingPolicy> policy_;
  std::vector<Queue> queues_;
  std::vector<std::int64_t> shared_used_;  ///< per quadrant
};

}  // namespace msamp::net

#include "net/buffer_policy.h"

#include <algorithm>
#include <vector>

namespace msamp::net {

namespace {

/// Choudhury-Hahne reference implementation: the queue's shared usage may
/// not exceed alpha * (free shared space), evaluated at arrival.
class DynamicThresholdPolicy : public BufferSharingPolicy {
 public:
  explicit DynamicThresholdPolicy(double alpha) : alpha_(alpha) {}

  std::string_view name() const noexcept override { return "dt"; }

  std::int64_t policy_limit(int /*queue*/,
                            const PolicyQueueState& qs) const override {
    return static_cast<std::int64_t>(alpha_ *
                                     static_cast<double>(qs.free_shared));
  }

 private:
  double alpha_;
};

/// Each queue owns an equal fixed slice of its quadrant's shared pool.
class StaticPartitionPolicy : public BufferSharingPolicy {
 public:
  std::string_view name() const noexcept override { return "static"; }

  std::int64_t policy_limit(int /*queue*/,
                            const PolicyQueueState& qs) const override {
    return qs.shared_capacity / std::max(qs.queues_in_quadrant, 1);
  }
};

/// Any queue may take everything not used by OTHER queues (its own usage
/// does not count against it) — no isolation at all.
class CompleteSharingPolicy : public BufferSharingPolicy {
 public:
  std::string_view name() const noexcept override { return "complete"; }

  std::int64_t policy_limit(int /*queue*/,
                            const PolicyQueueState& qs) const override {
    return qs.free_shared + qs.shared_len;
  }
};

/// Enhanced DT (Shan et al.): a queue whose arrivals just jumped (a fresh
/// microburst) temporarily gets a boosted alpha so the burst can be
/// absorbed instead of dropped.  Freshness compares this instant's
/// arrivals to the last observation delivered via on_enqueue(); with an
/// unmodeled drain rate (kInfiniteDrain, the packet MMU) the rate test is
/// unreachable and the policy degenerates to plain DT.
class BurstAbsorbDtPolicy : public BufferSharingPolicy {
 public:
  BurstAbsorbDtPolicy(double alpha, double boost, int num_queues)
      : alpha_(alpha),
        boost_(boost),
        last_arrivals_(static_cast<std::size_t>(num_queues), 0) {}

  std::string_view name() const noexcept override { return "burst-absorb"; }

  std::int64_t policy_limit(int queue,
                            const PolicyQueueState& qs) const override {
    const bool fresh_burst =
        qs.arriving_bytes >
            2 * last_arrivals_[static_cast<std::size_t>(queue)] &&
        qs.arriving_bytes > qs.drain_bytes_per_ms / 2;
    const double a = fresh_burst ? alpha_ * boost_ : alpha_;
    return static_cast<std::int64_t>(a * static_cast<double>(qs.free_shared));
  }

  void on_enqueue(int queue, std::int64_t bytes) override {
    last_arrivals_[static_cast<std::size_t>(queue)] = bytes;
  }

 private:
  double alpha_;
  double boost_;
  std::vector<std::int64_t> last_arrivals_;
};

/// BShare-style delay-driven sharing: the effective alpha is scaled by
/// target_delay / observed_delay (clamped to [min_gain, max_gain]), where
/// the observed queueing delay is queue_len over the configured drain
/// rate.  An empty queue gets the full max_gain headroom; a queue already
/// holding more than `gain_at(delay) = target/delay` worth of latency is
/// squeezed below plain DT, bounding its delay near the target.
class DelayDrivenPolicy : public BufferSharingPolicy {
 public:
  DelayDrivenPolicy(double alpha, const DelayDrivenConfig& cfg)
      : alpha_(alpha),
        cfg_(cfg),
        drain_per_ms_(std::max(cfg.drain_gbps * 1e9 / 8.0 / 1000.0, 1.0)) {}

  std::string_view name() const noexcept override { return "delay"; }

  std::int64_t policy_limit(int /*queue*/,
                            const PolicyQueueState& qs) const override {
    const double delay_ms =
        static_cast<double>(qs.queue_len) / drain_per_ms_;
    const double gain =
        delay_ms > 0.0
            ? std::clamp(cfg_.target_delay_ms / delay_ms, cfg_.min_gain,
                         cfg_.max_gain)
            : cfg_.max_gain;
    return static_cast<std::int64_t>(alpha_ * gain *
                                     static_cast<double>(qs.free_shared));
  }

 private:
  double alpha_;
  DelayDrivenConfig cfg_;
  double drain_per_ms_;
};

}  // namespace

std::unique_ptr<BufferSharingPolicy> make_policy(
    const SharedBufferConfig& config, int num_queues) {
  switch (config.policy) {
    case BufferPolicy::kStaticPartition:
      return std::make_unique<StaticPartitionPolicy>();
    case BufferPolicy::kCompleteSharing:
      return std::make_unique<CompleteSharingPolicy>();
    case BufferPolicy::kBurstAbsorbDt:
      return std::make_unique<BurstAbsorbDtPolicy>(
          config.alpha, config.burst_alpha_boost, num_queues);
    case BufferPolicy::kDelayDriven:
      return std::make_unique<DelayDrivenPolicy>(config.alpha, config.delay);
    case BufferPolicy::kDynamicThreshold:
      break;
  }
  return std::make_unique<DynamicThresholdPolicy>(config.alpha);
}

std::string_view policy_name(BufferPolicy policy) noexcept {
  switch (policy) {
    case BufferPolicy::kDynamicThreshold: return "dt";
    case BufferPolicy::kStaticPartition: return "static";
    case BufferPolicy::kCompleteSharing: return "complete";
    case BufferPolicy::kBurstAbsorbDt: return "burst-absorb";
    case BufferPolicy::kDelayDriven: return "delay";
  }
  return "dt";
}

bool parse_policy(std::string_view token, BufferPolicy* out) noexcept {
  for (const BufferPolicy p :
       {BufferPolicy::kDynamicThreshold, BufferPolicy::kStaticPartition,
        BufferPolicy::kCompleteSharing, BufferPolicy::kBurstAbsorbDt,
        BufferPolicy::kDelayDriven}) {
    if (token == policy_name(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

}  // namespace msamp::net

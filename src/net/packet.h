// The wire unit of the packet-level simulator.
//
// A Packet models either a TCP data segment or a pure ACK.  Header fields
// are reduced to exactly what the paper's measurement pipeline needs:
// ECN ECT/CE bits, the Meta-style "retransmitted" header bit (§4.2), and
// enough TCP state (seq/ack) for the simplified transport.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace msamp::net {

/// Host identifiers are dense indices assigned by the topology.
using HostId = std::uint32_t;

/// Flow (connection) identifiers, unique within a simulation.
using FlowId = std::uint64_t;

/// Sentinel for "no host".
inline constexpr HostId kNoHost = 0xffffffffu;

/// Destination id at or above this value is a rack-local multicast group;
/// the ToR replicates such packets to all subscribed downlink ports.
inline constexpr HostId kMulticastBase = 0xff000000u;

/// A simulated packet.  Copied by value along the path; 64 bytes.
struct Packet {
  FlowId flow = 0;          ///< connection id (0 = none, e.g. raw tools)
  HostId src = kNoHost;     ///< sending host
  HostId dst = kNoHost;     ///< receiving host or multicast group
  std::int32_t bytes = 0;   ///< wire size of this packet (payload + header)
  std::int64_t seq = 0;     ///< first payload byte offset (data segments)
  std::int64_t ack = 0;     ///< cumulative ack (ACK packets)
  sim::SimTime sent_at = 0; ///< stamped by the sender, for RTT estimation

  bool is_ack = false;      ///< pure ACK (not counted as data volume)
  bool ect = false;         ///< ECN-capable transport (DCTCP sets this)
  bool ce = false;          ///< congestion experienced (set by the switch)
  bool ece = false;         ///< ACK echoes a CE mark back to the sender
  bool retx_mark = false;   ///< Meta "this flow just retransmitted" bit
  bool payload_retx = false;///< this data segment is itself a retransmission
};

/// True if the destination denotes a multicast group.
constexpr bool is_multicast(HostId dst) noexcept {
  return dst >= kMulticastBase && dst != kNoHost;
}

}  // namespace msamp::net

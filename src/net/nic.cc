#include "net/nic.h"

namespace msamp::net {

Nic::Nic(sim::Simulator& simulator, const NicConfig& config,
         DeliverSegment deliver)
    : simulator_(simulator), config_(config), deliver_(std::move(deliver)) {}

void Nic::receive(const Packet& packet) {
  if (!config_.gro_enabled || packet.is_ack || is_multicast(packet.dst) ||
      packet.flow == 0) {
    flush();
    deliver_(packet);
    return;
  }

  if (has_pending_) {
    const bool mergeable =
        pending_.flow == packet.flow && packet.seq == pending_end_seq_ &&
        pending_.bytes + packet.bytes <= config_.gro_max_bytes &&
        // CE state must be uniform within a GRO segment or marks would be
        // silently amplified/lost; split on a state change.
        pending_.ce == packet.ce && pending_.retx_mark == packet.retx_mark &&
        pending_.payload_retx == packet.payload_retx;
    if (mergeable) {
      pending_.bytes += packet.bytes;
      pending_end_seq_ += packet.bytes;
      ++coalesced_;
      return;
    }
    flush();
  }

  has_pending_ = true;
  pending_ = packet;
  pending_end_seq_ = packet.seq + packet.bytes;
  arm_flush_timer();
}

void Nic::flush() {
  if (!has_pending_) return;
  if (flush_event_ != 0) {
    simulator_.cancel(flush_event_);
    flush_event_ = 0;
  }
  has_pending_ = false;
  deliver_(pending_);
}

void Nic::arm_flush_timer() {
  if (flush_event_ != 0) simulator_.cancel(flush_event_);
  flush_event_ = simulator_.schedule_in(config_.gro_flush, [this] {
    flush_event_ = 0;
    flush();
  });
}

}  // namespace msamp::net

// Rack topology builder: wires N local servers and M remote hosts to a ToR
// switch, reproducing the §3 setup (12.5G server links mapped to individual
// MMU queues; remote senders reached through an uncongested fabric).
//
// Host id convention: local servers are [0, num_servers); remote hosts are
// [kRemoteBase, kRemoteBase + num_remote_hosts).
#pragma once

#include <memory>
#include <vector>

#include "net/host.h"
#include "net/switch.h"
#include "sim/simulator.h"

namespace msamp::net {

/// First remote host id.
inline constexpr HostId kRemoteBase = 100000;

/// Rack parameters.
struct RackConfig {
  int num_servers = 8;
  int num_remote_hosts = 16;
  SwitchConfig tor;
  LinkConfig server_link{.gbps = 12.5,
                         .propagation = 2 * sim::kMicrosecond,
                         .queue_limit_bytes = 4 << 20};
  /// Remote host NIC link; propagation covers half the fabric path.
  LinkConfig remote_link{.gbps = 25.0,
                         .propagation = 18 * sim::kMicrosecond,
                         .queue_limit_bytes = 8 << 20};
  NicConfig nic;
};

/// A fully wired rack.  Owns the switch and all hosts.
class Rack {
 public:
  Rack(sim::Simulator& simulator, const RackConfig& config);

  /// Host lookup by id (local or remote). Returns nullptr if unknown.
  Host* host(HostId id);

  /// Local server by index.
  Host& server(int index) { return *servers_.at(static_cast<std::size_t>(index)); }
  /// Remote host by index.
  Host& remote(int index) { return *remotes_.at(static_cast<std::size_t>(index)); }

  int num_servers() const noexcept { return static_cast<int>(servers_.size()); }
  int num_remotes() const noexcept { return static_cast<int>(remotes_.size()); }

  Switch& tor() noexcept { return *switch_; }
  const RackConfig& config() const noexcept { return config_; }

  /// Subscribes server `index` to a rack-local multicast group.
  void subscribe_multicast(HostId group, int server_index);

 private:
  sim::Simulator& simulator_;
  RackConfig config_;
  std::unique_ptr<Switch> switch_;
  std::vector<std::unique_ptr<Host>> servers_;
  std::vector<std::unique_ptr<Host>> remotes_;
};

}  // namespace msamp::net

#include "net/link.h"

namespace msamp::net {

Link::Link(sim::Simulator& simulator, const LinkConfig& config, Deliver deliver)
    : simulator_(simulator), config_(config), deliver_(std::move(deliver)) {}

bool Link::send(const Packet& packet) {
  offered_bytes_ += packet.bytes;
  if (config_.drop_every_n != 0 && ++offered_packets_ % config_.drop_every_n == 0) {
    ++drops_;
    return false;  // injected fault
  }
  if (backlog_ + packet.bytes > config_.queue_limit_bytes) {
    ++drops_;
    return false;
  }
  queue_.push_back(packet);
  backlog_ += packet.bytes;
  if (!transmitting_) start_transmission();
  return true;
}

void Link::start_transmission() {
  if (queue_.empty()) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  const Packet pkt = queue_.front();
  queue_.pop_front();
  const sim::SimDuration ser = sim::serialize_time(pkt.bytes, config_.gbps);
  // After serialization the wire is free for the next packet; the packet
  // itself arrives one propagation delay later.
  simulator_.schedule_in(ser, [this, pkt] {
    backlog_ -= pkt.bytes;
    simulator_.schedule_in(config_.propagation,
                           [this, pkt] { deliver_(pkt); });
    start_transmission();
  });
}

}  // namespace msamp::net

#include "net/shared_buffer.h"

#include <algorithm>
#include <cassert>

namespace msamp::net {

SharedBuffer::SharedBuffer(const SharedBufferConfig& config, int num_queues)
    : config_(config),
      policy_(make_policy(config, num_queues)),
      queues_(static_cast<std::size_t>(num_queues)) {
  assert(config_.quadrants > 0);
  assert(num_queues > 0);
  // Reserves are carved out of each quadrant; what remains is the shared
  // pool.  With the paper's numbers (4MB quadrant, ~24 queues, 16KB
  // reserve) this yields the ~3.6MB shared pool described in §3.
  int max_queues_in_quadrant = 0;
  for (int q = 0; q < config_.quadrants; ++q) {
    int cnt = 0;
    for (int i = q; i < num_queues; i += config_.quadrants) ++cnt;
    max_queues_in_quadrant = std::max(max_queues_in_quadrant, cnt);
  }
  const std::int64_t quadrant_bytes = config_.total_bytes / config_.quadrants;
  shared_capacity_per_quadrant_ =
      quadrant_bytes - max_queues_in_quadrant * config_.reserve_per_queue;
  if (shared_capacity_per_quadrant_ < 0) shared_capacity_per_quadrant_ = 0;
  shared_used_.assign(static_cast<std::size_t>(config_.quadrants), 0);
}

std::int64_t SharedBuffer::policy_limit(int queue,
                                        std::int64_t arriving) const {
  const int quad = quadrant_of(queue);
  PolicyQueueState qs;
  qs.queue_len = queues_[static_cast<std::size_t>(queue)].len;
  qs.shared_len = shared_part(qs.queue_len);
  qs.free_shared = shared_capacity_per_quadrant_ -
                   shared_used_[static_cast<std::size_t>(quad)];
  qs.shared_capacity = shared_capacity_per_quadrant_;
  int queues_in_quadrant = 0;
  for (int i = quad; i < num_queues(); i += config_.quadrants) {
    ++queues_in_quadrant;
  }
  qs.queues_in_quadrant = queues_in_quadrant;
  qs.arriving_bytes = arriving;
  // The packet MMU does not model egress drain, so rate-based burst
  // detection is neutralized (kBurstAbsorbDt behaves as plain DT here; the
  // fluid simulator supplies the real drain rate — see fleet/fluid_rack.cc).
  qs.drain_bytes_per_ms = kInfiniteDrain;
  return policy_->policy_limit(queue, qs);
}

bool SharedBuffer::admit(int queue, std::int64_t bytes, bool ect,
                         bool* mark_ce) {
  Queue& q = queues_.at(static_cast<std::size_t>(queue));
  const int quad = quadrant_of(queue);
  const std::int64_t before = shared_part(q.len);
  const std::int64_t after = shared_part(q.len + bytes);
  const std::int64_t delta = after - before;

  const std::int64_t limit = policy_limit(queue, bytes);
  if (delta > 0 && after > limit) {
    q.counters.dropped_bytes += bytes;
    q.counters.dropped_packets += 1;
    if (mark_ce != nullptr) *mark_ce = false;
    return false;
  }

  // Static ECN threshold, evaluated on the pre-enqueue queue length as in
  // the studied ASIC.
  const bool ce = ect && q.len >= config_.ecn_threshold;
  q.len += bytes;
  shared_used_[static_cast<std::size_t>(quad)] += delta;
  q.counters.enqueued_bytes += bytes;
  if (ce) q.counters.ce_marked_bytes += bytes;
  if (mark_ce != nullptr) *mark_ce = ce;
  policy_->on_enqueue(queue, bytes);
  return true;
}

void SharedBuffer::release(int queue, std::int64_t bytes) {
  Queue& q = queues_.at(static_cast<std::size_t>(queue));
  assert(q.len >= bytes);
  const int quad = quadrant_of(queue);
  const std::int64_t before = shared_part(q.len);
  q.len -= bytes;
  const std::int64_t after = shared_part(q.len);
  shared_used_[static_cast<std::size_t>(quad)] -= before - after;
  policy_->on_dequeue(queue, bytes);
}

std::int64_t SharedBuffer::dynamic_limit(int queue) const {
  return policy_limit(queue, 0);
}

std::int64_t SharedBuffer::shared_occupancy(int queue) const {
  return shared_used_.at(static_cast<std::size_t>(quadrant_of(queue)));
}

int SharedBuffer::active_queues_in_quadrant(int queue) const {
  const int quad = quadrant_of(queue);
  int active = 0;
  for (int i = quad; i < num_queues(); i += config_.quadrants) {
    if (queues_[static_cast<std::size_t>(i)].len > 0) ++active;
  }
  return active;
}

std::int64_t SharedBuffer::total_dropped_bytes() const {
  std::int64_t total = 0;
  for (const auto& q : queues_) total += q.counters.dropped_bytes;
  return total;
}

double SharedBuffer::fixed_point_share(double alpha, int active_queues) {
  // T = alpha*(B - S*T)  =>  T = alpha*B / (1 + alpha*S); expressed as the
  // fraction of the shared buffer a single saturated queue converges to.
  return alpha / (1.0 + alpha * static_cast<double>(active_queues));
}

}  // namespace msamp::net

#include "net/topology.h"

namespace msamp::net {

Rack::Rack(sim::Simulator& simulator, const RackConfig& config)
    : simulator_(simulator), config_(config) {
  switch_ = std::make_unique<Switch>(simulator_, config_.tor,
                                     config_.num_servers);

  // Local servers: egress goes straight to the switch; the switch's
  // downlink port delivers back into the server NIC.
  servers_.reserve(static_cast<std::size_t>(config_.num_servers));
  for (int i = 0; i < config_.num_servers; ++i) {
    const auto id = static_cast<HostId>(i);
    auto host = std::make_unique<Host>(
        simulator_, id, config_.server_link, config_.nic,
        [this](const Packet& pkt) { switch_->receive(pkt); });
    Host* raw = host.get();
    switch_->attach_port(i, id,
                         [raw](const Packet& pkt) { raw->deliver_from_wire(pkt); });
    servers_.push_back(std::move(host));
  }

  // Remote hosts: their egress link includes the fabric propagation; the
  // switch's uplink sink routes returning packets to them.
  remotes_.reserve(static_cast<std::size_t>(config_.num_remote_hosts));
  for (int i = 0; i < config_.num_remote_hosts; ++i) {
    const HostId id = kRemoteBase + static_cast<HostId>(i);
    auto host = std::make_unique<Host>(
        simulator_, id, config_.remote_link, config_.nic,
        [this](const Packet& pkt) { switch_->receive(pkt); });
    remotes_.push_back(std::move(host));
  }
  switch_->set_uplink([this](const Packet& pkt) {
    if (Host* h = host(pkt.dst)) h->deliver_from_wire(pkt);
  });
}

Host* Rack::host(HostId id) {
  if (id < servers_.size()) return servers_[id].get();
  if (id >= kRemoteBase) {
    const std::size_t idx = id - kRemoteBase;
    if (idx < remotes_.size()) return remotes_[idx].get();
  }
  return nullptr;
}

void Rack::subscribe_multicast(HostId group, int server_index) {
  switch_->subscribe_multicast(group, server_index);
}

}  // namespace msamp::net

// Top-of-rack switch: downlink ports (one egress queue per server, backed by
// the shared-memory MMU) plus an idealized uplink side.  Congestion in the
// studied fleet happens almost exclusively on the server downlinks (§3), so
// the uplink direction forwards with a fixed fabric delay and no loss.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "net/shared_buffer.h"
#include "sim/simulator.h"

namespace msamp::net {

/// ToR parameters; defaults mirror §3 (12.5G server links, 16MB buffer,
/// alpha = 1, 120KB ECN threshold).
struct SwitchConfig {
  SharedBufferConfig buffer;
  double downlink_gbps = 12.5;
  sim::SimDuration downlink_propagation = 2 * sim::kMicrosecond;
  /// One-way delay from the ToR through the fabric to a remote host.
  sim::SimDuration fabric_delay = 18 * sim::kMicrosecond;
};

/// The switch.  Ports are dense [0, num_ports); each port is one server's
/// egress queue in the MMU.
class Switch {
 public:
  using Deliver = std::function<void(const Packet&)>;

  Switch(sim::Simulator& simulator, const SwitchConfig& config, int num_ports);

  /// Binds `host` to downlink `port`; `deliver` receives packets that exit
  /// the port (i.e. arrive at the server NIC).
  void attach_port(int port, HostId host, Deliver deliver);

  /// Sets the sink for packets leaving through the uplinks (destined to
  /// hosts outside the rack).
  void set_uplink(Deliver deliver) { uplink_ = std::move(deliver); }

  /// A packet arrives at the switch (from a server link or from the fabric).
  void receive(const Packet& packet);

  /// Subscribes a downlink port to a rack-local multicast group.
  void subscribe_multicast(HostId group, int port);

  /// MMU access for instrumentation and tests.
  SharedBuffer& mmu() noexcept { return mmu_; }
  const SharedBuffer& mmu() const noexcept { return mmu_; }

  const SwitchConfig& config() const noexcept { return config_; }

 private:
  void enqueue_downlink(int port, Packet packet);
  void drain_port(int port);

  struct Port {
    HostId host = kNoHost;
    Deliver deliver;
    std::deque<Packet> fifo;
    bool transmitting = false;
  };

  sim::Simulator& simulator_;
  SwitchConfig config_;
  SharedBuffer mmu_;
  std::vector<Port> ports_;
  std::unordered_map<HostId, int> host_to_port_;
  std::unordered_map<HostId, std::vector<int>> multicast_groups_;
  Deliver uplink_;
};

}  // namespace msamp::net

#include "net/host.h"

namespace msamp::net {

Host::Host(sim::Simulator& simulator, HostId id, const LinkConfig& egress_link,
           const NicConfig& nic, Link::Deliver to_wire)
    : simulator_(simulator),
      id_(id),
      link_(simulator, egress_link, std::move(to_wire)),
      nic_(simulator, nic,
           [this](const Packet& segment) { on_ingress_segment(segment); }) {}

void Host::send(const Packet& packet) {
  egress_bytes_ += packet.bytes;
  if (hook_) hook_(packet, /*ingress=*/false);
  link_.send(packet);
}

void Host::deliver_from_wire(const Packet& packet) {
  if (stalled_) {
    stall_backlog_.push_back(packet);
    return;
  }
  nic_.receive(packet);
}

void Host::inject_stall(sim::SimDuration duration) {
  if (stalled_) return;  // one stall at a time
  stalled_ = true;
  simulator_.schedule_in(duration, [this] {
    stalled_ = false;
    // The kernel catches up: the whole backlog is processed in one batch,
    // which the tc layer timestamps "now" — the apparent burst of §4.6.
    std::vector<Packet> backlog;
    backlog.swap(stall_backlog_);
    for (const Packet& packet : backlog) nic_.receive(packet);
  });
}

void Host::on_ingress_segment(const Packet& segment) {
  ingress_bytes_ += segment.bytes;
  if (hook_) hook_(segment, /*ingress=*/true);
  if (sink_) sink_(segment);
}

}  // namespace msamp::net

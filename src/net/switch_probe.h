// Switch-based fine-grained monitoring — the approach the paper contrasts
// with Millisampler (§2.3; Zhang et al. collect 10-100µs ToR statistics).
// Faithful to its limitations: the probe samples the queue depth of ONE
// egress port at a time (the cited study "samples only a single port at a
// time"), with a bounded sample budget reflecting the cost of heavy switch
// instrumentation.  Used by tests and by the host-vs-switch cross-check
// bench to show the two views agree where they overlap — and that only the
// host view scales to every server at once.
#pragma once

#include <cstdint>
#include <vector>

#include "net/switch.h"
#include "sim/simulator.h"

namespace msamp::net {

/// Probe parameters.
struct SwitchProbeConfig {
  sim::SimDuration interval = 25 * sim::kMicrosecond;
  std::size_t max_samples = 80000;  ///< hard budget per collection
};

/// One queue-depth observation.
struct SwitchProbeSample {
  sim::SimTime at = 0;
  std::int64_t queue_bytes = 0;
  std::int64_t shared_occupancy = 0;  ///< the port's quadrant occupancy
};

/// The probe.  One port at a time; restart to move ports.
class SwitchProbe {
 public:
  SwitchProbe(sim::Simulator& simulator, Switch& tor,
              const SwitchProbeConfig& config);

  /// Starts sampling `port`.  Any previous collection is discarded.
  void start(int port);

  /// Stops sampling (samples remain readable).
  void stop();

  bool running() const noexcept { return running_; }
  int port() const noexcept { return port_; }
  const std::vector<SwitchProbeSample>& samples() const noexcept {
    return samples_;
  }

  /// Max queue depth observed in the current collection.
  std::int64_t max_queue_bytes() const;

 private:
  void tick();

  sim::Simulator& simulator_;
  Switch& tor_;
  SwitchProbeConfig config_;
  bool running_ = false;
  int port_ = 0;
  std::uint64_t event_ = 0;
  std::vector<SwitchProbeSample> samples_;
};

}  // namespace msamp::net

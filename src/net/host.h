// A simulated end host: egress link towards the ToR, receive-side NIC with
// GRO, and the two observation points Millisampler's tc filter attaches to
// (near-last step on transmit, post-GRO on receive — §4.1/§4.6).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/link.h"
#include "net/nic.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace msamp::net {

/// One host.  Transports and tools call `send`; the wire calls
/// `deliver_from_wire`; Millisampler installs a segment hook.
class Host {
 public:
  /// Observes a segment at the tc layer. `ingress` distinguishes direction.
  using SegmentHook = std::function<void(const Packet&, bool ingress)>;
  /// Receives ingress segments after the hook (the "TCP stack").
  using PacketSink = std::function<void(const Packet&)>;

  Host(sim::Simulator& simulator, HostId id, const LinkConfig& egress_link,
       const NicConfig& nic, Link::Deliver to_wire);

  /// Transmit path: tc hook -> egress link -> wire.
  void send(const Packet& packet);

  /// Wire -> NIC (GRO) -> tc hook -> stack.
  void deliver_from_wire(const Packet& packet);

  /// Fault injection (§4.6): simulates a kernel soft-irq stall.  For
  /// `duration` the host processes no incoming packets; everything that
  /// arrives queues up and is handled in one batch when the stall ends —
  /// Millisampler sees a silent gap followed by an apparent burst, even
  /// though the NIC received smoothly.
  void inject_stall(sim::SimDuration duration);

  /// True while a stall is in progress.
  bool stalled() const noexcept { return stalled_; }

  /// Installs/clears the Millisampler observation hook (nullptr detaches —
  /// a detached filter costs nothing, mirroring §4.1).
  void set_segment_hook(SegmentHook hook) { hook_ = std::move(hook); }

  /// Sets the ingress packet sink (transport dispatch).
  void set_ingress_sink(PacketSink sink) { sink_ = std::move(sink); }

  HostId id() const noexcept { return id_; }
  Link& egress_link() noexcept { return link_; }
  Nic& nic() noexcept { return nic_; }

  /// Cumulative tc-visible byte counts, for tests.
  std::int64_t ingress_bytes() const noexcept { return ingress_bytes_; }
  std::int64_t egress_bytes() const noexcept { return egress_bytes_; }

 private:
  void on_ingress_segment(const Packet& segment);

  sim::Simulator& simulator_;
  HostId id_;
  Link link_;
  Nic nic_;
  SegmentHook hook_;
  PacketSink sink_;
  std::int64_t ingress_bytes_ = 0;
  std::int64_t egress_bytes_ = 0;
  bool stalled_ = false;
  std::vector<Packet> stall_backlog_;
};

}  // namespace msamp::net

// A point-to-point link with serialization delay, propagation delay, and a
// bounded FIFO egress queue.  Used for host NIC -> ToR paths (server links)
// and for remote sender uplinks in the rack simulator.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "net/packet.h"
#include "sim/simulator.h"

namespace msamp::net {

/// Link parameters.
struct LinkConfig {
  double gbps = 12.5;                       ///< line rate
  sim::SimDuration propagation = 5 * sim::kMicrosecond;
  std::int64_t queue_limit_bytes = 2 << 20; ///< egress FIFO cap (drop-tail)
  /// Fault injection: deterministically drop every Nth packet offered
  /// (0 = disabled).  Used by tests to exercise transport recovery —
  /// including loss on the ACK path — without relying on buffer overflow.
  std::uint32_t drop_every_n = 0;
};

/// Simplex link; create two for a duplex path.
class Link {
 public:
  using Deliver = std::function<void(const Packet&)>;

  Link(sim::Simulator& simulator, const LinkConfig& config, Deliver deliver);

  /// Enqueues a packet for transmission; drops (and counts) if the egress
  /// FIFO is full.  Returns false on drop.
  bool send(const Packet& packet);

  /// Bytes currently queued (not yet fully serialized).
  std::int64_t backlog() const noexcept { return backlog_; }

  /// Packets dropped at the egress FIFO.
  std::uint64_t drops() const noexcept { return drops_; }

  /// Total bytes handed to `send` (including dropped ones).
  std::int64_t offered_bytes() const noexcept { return offered_bytes_; }

  const LinkConfig& config() const noexcept { return config_; }

 private:
  void start_transmission();

  sim::Simulator& simulator_;
  LinkConfig config_;
  Deliver deliver_;
  std::deque<Packet> queue_;
  bool transmitting_ = false;
  std::int64_t backlog_ = 0;
  std::int64_t offered_bytes_ = 0;
  std::uint64_t offered_packets_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace msamp::net

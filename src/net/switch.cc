#include "net/switch.h"

#include <cassert>

namespace msamp::net {

Switch::Switch(sim::Simulator& simulator, const SwitchConfig& config,
               int num_ports)
    : simulator_(simulator),
      config_(config),
      mmu_(config.buffer, num_ports),
      ports_(static_cast<std::size_t>(num_ports)) {}

void Switch::attach_port(int port, HostId host, Deliver deliver) {
  Port& p = ports_.at(static_cast<std::size_t>(port));
  p.host = host;
  p.deliver = std::move(deliver);
  host_to_port_[host] = port;
}

void Switch::subscribe_multicast(HostId group, int port) {
  assert(is_multicast(group));
  multicast_groups_[group].push_back(port);
}

void Switch::receive(const Packet& packet) {
  if (is_multicast(packet.dst)) {
    // Replicate to every subscriber; each copy is admitted independently
    // against its own egress queue.
    const auto it = multicast_groups_.find(packet.dst);
    if (it == multicast_groups_.end()) return;
    for (int port : it->second) enqueue_downlink(port, packet);
    return;
  }
  const auto it = host_to_port_.find(packet.dst);
  if (it != host_to_port_.end()) {
    enqueue_downlink(it->second, packet);
    return;
  }
  // Not a local server: leaves through the uplinks.  The fabric is modeled
  // as lossless with a fixed one-way delay (§3: congestion lives on the
  // server downlinks; fabric ECN is not deployed).
  if (uplink_) {
    Packet copy = packet;
    simulator_.schedule_in(config_.fabric_delay,
                           [this, copy] { uplink_(copy); });
  }
}

void Switch::enqueue_downlink(int port, Packet packet) {
  Port& p = ports_.at(static_cast<std::size_t>(port));
  bool mark_ce = false;
  if (!mmu_.admit(port, packet.bytes, packet.ect, &mark_ce)) {
    return;  // congestion discard; MMU counted it
  }
  if (mark_ce) packet.ce = true;
  p.fifo.push_back(packet);
  if (!p.transmitting) drain_port(port);
}

void Switch::drain_port(int port) {
  Port& p = ports_.at(static_cast<std::size_t>(port));
  if (p.fifo.empty()) {
    p.transmitting = false;
    return;
  }
  p.transmitting = true;
  const Packet pkt = p.fifo.front();
  p.fifo.pop_front();
  const sim::SimDuration ser =
      sim::serialize_time(pkt.bytes, config_.downlink_gbps);
  simulator_.schedule_in(ser, [this, port, pkt] {
    // Buffer is freed when the packet finishes serializing out the port.
    mmu_.release(port, pkt.bytes);
    Port& pp = ports_[static_cast<std::size_t>(port)];
    simulator_.schedule_in(config_.downlink_propagation, [&pp, pkt] {
      if (pp.deliver) pp.deliver(pkt);
    });
    drain_port(port);
  });
}

}  // namespace msamp::net

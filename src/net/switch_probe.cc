#include "net/switch_probe.h"

#include <algorithm>

namespace msamp::net {

SwitchProbe::SwitchProbe(sim::Simulator& simulator, Switch& tor,
                         const SwitchProbeConfig& config)
    : simulator_(simulator), tor_(tor), config_(config) {}

void SwitchProbe::start(int port) {
  stop();
  port_ = port;
  samples_.clear();
  samples_.reserve(std::min<std::size_t>(config_.max_samples, 1 << 16));
  running_ = true;
  tick();
}

void SwitchProbe::stop() {
  if (event_ != 0) {
    simulator_.cancel(event_);
    event_ = 0;
  }
  running_ = false;
}

void SwitchProbe::tick() {
  if (!running_) return;
  samples_.push_back({simulator_.now(), tor_.mmu().queue_len(port_),
                      tor_.mmu().shared_occupancy(port_)});
  if (samples_.size() >= config_.max_samples) {
    // Budget exhausted: heavy switch instrumentation cannot run forever.
    running_ = false;
    return;
  }
  event_ = simulator_.schedule_in(config_.interval, [this] {
    event_ = 0;
    tick();
  });
}

std::int64_t SwitchProbe::max_queue_bytes() const {
  std::int64_t best = 0;
  for (const auto& s : samples_) best = std::max(best, s.queue_bytes);
  return best;
}

}  // namespace msamp::net

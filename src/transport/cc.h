// Congestion-control interface shared by DCTCP and Cubic.  The connection
// owns the window bookkeeping; the controller owns the cwnd policy.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/time.h"

namespace msamp::transport {

/// Congestion controller for one connection.  All sizes are bytes.
class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  /// New data was cumulatively acknowledged.  `ece` is true when the ACK
  /// echoed a CE mark (DCTCP per-packet echo); `rtt` is the latest sample.
  virtual void on_ack(std::int64_t acked_bytes, bool ece, sim::SimTime now,
                      sim::SimDuration rtt) = 0;

  /// Loss detected by duplicate ACKs (fast retransmit).
  virtual void on_loss(sim::SimTime now) = 0;

  /// Retransmission timeout fired.
  virtual void on_timeout(sim::SimTime now) = 0;

  /// Current congestion window in bytes (never below one MSS).
  virtual std::int64_t cwnd() const = 0;

  /// Whether the transport negotiates ECN (sets ECT on data packets).
  virtual bool ecn_capable() const = 0;

  virtual const char* name() const = 0;
};

/// Which controller a connection uses.  In the studied fleet, in-region
/// traffic runs DCTCP and inter-region traffic runs Cubic (§3); Swift is
/// the delay-based extension motivated by §9.
enum class CcKind { kDctcp, kCubic, kSwift };

/// Shared controller tunables.
struct CcConfig {
  std::int64_t mss = 1460;
  std::int64_t init_cwnd = 10 * 1460;
  std::int64_t max_cwnd = 64 << 20;
  /// DCTCP EWMA gain g (RFC 8257 suggests 1/16).
  double dctcp_gain = 1.0 / 16.0;
  /// Cubic scaling constant C and multiplicative decrease beta.
  double cubic_c = 0.4;
  double cubic_beta = 0.7;
};

/// Factory for the configured controller kind.
std::unique_ptr<CongestionControl> make_congestion_control(
    CcKind kind, const CcConfig& config);

}  // namespace msamp::transport

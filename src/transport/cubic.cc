#include "transport/cubic.h"

#include <algorithm>
#include <cmath>

namespace msamp::transport {

Cubic::Cubic(const CcConfig& config)
    : config_(config),
      cwnd_(config.init_cwnd),
      ssthresh_(config.max_cwnd),
      w_max_segments_(static_cast<double>(config.init_cwnd) /
                      static_cast<double>(config.mss)) {}

void Cubic::clamp() {
  cwnd_ = std::clamp(cwnd_, config_.mss, config_.max_cwnd);
}

void Cubic::on_ack(std::int64_t acked_bytes, bool /*ece*/, sim::SimTime now,
                   sim::SimDuration /*rtt*/) {
  if (cwnd_ < ssthresh_) {
    cwnd_ += acked_bytes;
    clamp();
    return;
  }
  if (epoch_start_ < 0) epoch_start_ = now;
  const double t = sim::to_sec(now - epoch_start_);
  // K = cbrt(W_max * (1 - beta) / C); W(t) = C (t - K)^3 + W_max, in
  // segments, converted back to bytes as the target window.
  const double k =
      std::cbrt(w_max_segments_ * (1.0 - config_.cubic_beta) / config_.cubic_c);
  const double target_segments =
      config_.cubic_c * (t - k) * (t - k) * (t - k) + w_max_segments_;
  const auto target =
      static_cast<std::int64_t>(target_segments * static_cast<double>(config_.mss));
  if (target > cwnd_) {
    // Approach the cubic target gradually (at most one MSS per ack).
    cwnd_ += std::min<std::int64_t>(config_.mss, target - cwnd_);
  } else {
    // Reno-friendly region: grow ~one MSS per RTT.
    cwnd_ += config_.mss * acked_bytes / std::max<std::int64_t>(cwnd_, 1);
  }
  clamp();
}

void Cubic::on_loss(sim::SimTime now) {
  w_max_segments_ = static_cast<double>(cwnd_) / static_cast<double>(config_.mss);
  cwnd_ = static_cast<std::int64_t>(static_cast<double>(cwnd_) * config_.cubic_beta);
  ssthresh_ = cwnd_;
  epoch_start_ = now;
  clamp();
}

void Cubic::on_timeout(sim::SimTime now) {
  w_max_segments_ = static_cast<double>(cwnd_) / static_cast<double>(config_.mss);
  ssthresh_ = std::max(cwnd_ / 2, 2 * config_.mss);
  cwnd_ = config_.mss;
  epoch_start_ = now;
}

}  // namespace msamp::transport

// DCTCP (RFC 8257): estimate the fraction of CE-marked bytes per window and
// scale cwnd down proportionally, giving the RTT-timescale feedback loop
// whose limits (§2.2: it cannot absorb sub-RTT bursts) drive the paper's
// loss analysis.
#pragma once

#include "transport/cc.h"

namespace msamp::transport {

/// DCTCP controller.
class Dctcp final : public CongestionControl {
 public:
  explicit Dctcp(const CcConfig& config);

  void on_ack(std::int64_t acked_bytes, bool ece, sim::SimTime now,
              sim::SimDuration rtt) override;
  void on_loss(sim::SimTime now) override;
  void on_timeout(sim::SimTime now) override;
  std::int64_t cwnd() const override { return cwnd_; }
  bool ecn_capable() const override { return true; }
  const char* name() const override { return "dctcp"; }

  /// Current marking-fraction estimate (the DCTCP "alpha"), for tests.
  double alpha() const noexcept { return alpha_; }

 private:
  void clamp();

  CcConfig config_;
  std::int64_t cwnd_;
  std::int64_t ssthresh_;
  double alpha_ = 1.0;  // start conservative, as the RFC recommends

  // Per-window mark accounting: a window ends after cwnd bytes are acked.
  std::int64_t window_acked_ = 0;
  std::int64_t window_marked_ = 0;
  std::int64_t window_size_;
  std::int64_t ca_accum_ = 0;  // congestion-avoidance byte accumulator
};

}  // namespace msamp::transport

// Per-host transport dispatcher: routes ingress segments to connection
// endpoints (by flow id) or to raw handlers (measurement tools).  One
// TransportHost wraps one net::Host.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/host.h"
#include "net/packet.h"

namespace msamp::transport {

/// Transport-layer demultiplexer for one host.
class TransportHost {
 public:
  using Handler = std::function<void(const net::Packet&)>;

  explicit TransportHost(net::Host& host);

  /// Registers a handler for a flow id; replaces any existing one.
  void register_flow(net::FlowId flow, Handler handler);

  /// Removes a flow handler.
  void unregister_flow(net::FlowId flow);

  /// Handler for segments whose flow id has no registration (tools,
  /// multicast receivers). Optional.
  void set_default_handler(Handler handler) {
    default_handler_ = std::move(handler);
  }

  net::Host& host() noexcept { return host_; }

 private:
  net::Host& host_;
  std::unordered_map<net::FlowId, Handler> flows_;
  Handler default_handler_;
};

}  // namespace msamp::transport

#include "transport/tcp_connection.h"

#include <algorithm>
#include <cassert>

#include "transport/cubic.h"
#include "transport/dctcp.h"
#include "transport/swift.h"

namespace msamp::transport {

std::unique_ptr<CongestionControl> make_congestion_control(
    CcKind kind, const CcConfig& config) {
  switch (kind) {
    case CcKind::kCubic:
      return std::make_unique<Cubic>(config);
    case CcKind::kSwift:
      return std::make_unique<Swift>(config);
    case CcKind::kDctcp:
      break;
  }
  return std::make_unique<Dctcp>(config);
}

TcpConnection::TcpConnection(sim::Simulator& simulator, net::FlowId flow,
                             TransportHost& sender, TransportHost& receiver,
                             const TcpConfig& config)
    : simulator_(simulator),
      flow_(flow),
      sender_(sender),
      receiver_(receiver),
      config_(config),
      cc_(make_congestion_control(config.cc, config.cc_config)) {
  sender_.register_flow(flow_, [this](const net::Packet& pkt) {
    if (pkt.is_ack) on_ack_packet(pkt);
  });
  receiver_.register_flow(flow_, [this](const net::Packet& pkt) {
    if (!pkt.is_ack) on_data_segment(pkt);
  });
}

TcpConnection::~TcpConnection() {
  cancel_rto();
  sender_.unregister_flow(flow_);
  receiver_.unregister_flow(flow_);
}

void TcpConnection::send_app_data(std::int64_t bytes) {
  assert(bytes >= 0);
  app_limit_ += bytes;
  try_send();
}

void TcpConnection::try_send() {
  const std::int64_t window = cc_->cwnd();
  while (snd_nxt_ < app_limit_ && snd_nxt_ - snd_una_ < window) {
    const std::int64_t room =
        std::min(window - (snd_nxt_ - snd_una_), app_limit_ - snd_nxt_);
    const std::int64_t seg = std::min<std::int64_t>(config_.cc_config.mss, room);
    if (seg <= 0) break;
    emit_segment(snd_nxt_, seg, /*is_retx=*/false);
    snd_nxt_ += seg;
  }
  if (outstanding() > 0 && rto_event_ == 0) arm_rto();
}

void TcpConnection::emit_segment(std::int64_t seq, std::int64_t bytes,
                                 bool is_retx) {
  net::Packet pkt;
  pkt.flow = flow_;
  pkt.src = sender_.host().id();
  pkt.dst = receiver_.host().id();
  pkt.bytes = static_cast<std::int32_t>(bytes);
  pkt.seq = seq;
  pkt.sent_at = simulator_.now();
  pkt.ect = cc_->ecn_capable();
  pkt.payload_retx = is_retx;
  // The Meta instrumentation bit (§4.2): set on the next outgoing packet
  // after the stack performs a timeout or fast retransmission.
  if (pending_retx_mark_ || is_retx) {
    pkt.retx_mark = true;
    pending_retx_mark_ = false;
  }
  stats_.sent_bytes += bytes;
  if (is_retx) stats_.retx_bytes += bytes;
  sender_.host().send(pkt);
}

void TcpConnection::retransmit_head() {
  const std::int64_t seg = std::min<std::int64_t>(
      config_.cc_config.mss, app_limit_ - snd_una_);
  if (seg <= 0) return;
  pending_retx_mark_ = true;
  emit_segment(snd_una_, seg, /*is_retx=*/true);
}

sim::SimDuration TcpConnection::current_rto() const {
  sim::SimDuration rto = config_.initial_rto;
  if (srtt_ > 0) rto = srtt_ + 4 * rttvar_;
  rto = std::max(rto, config_.min_rto);
  return rto << std::min(rto_backoff_, 10);
}

void TcpConnection::arm_rto() {
  cancel_rto();
  rto_event_ = simulator_.schedule_in(current_rto(), [this] {
    rto_event_ = 0;
    on_rto();
  });
}

void TcpConnection::cancel_rto() {
  if (rto_event_ != 0) {
    simulator_.cancel(rto_event_);
    rto_event_ = 0;
  }
}

void TcpConnection::on_rto() {
  if (outstanding() <= 0) return;
  ++stats_.timeouts;
  ++rto_backoff_;
  cc_->on_timeout(simulator_.now());
  in_recovery_ = false;
  dup_acks_ = 0;
  // Go-back-N from the last cumulative ack; later segments will be resent
  // as the window reopens.
  snd_nxt_ = snd_una_;
  retransmit_head();
  snd_nxt_ = std::max(snd_nxt_, snd_una_ + std::min<std::int64_t>(
                                    config_.cc_config.mss,
                                    app_limit_ - snd_una_));
  arm_rto();
}

void TcpConnection::on_ack_packet(const net::Packet& ack) {
  ++stats_.acks_received;
  if (ack.ece) ++stats_.ece_acks;

  if (ack.ack > snd_una_) {
    const std::int64_t acked = ack.ack - snd_una_;
    snd_una_ = ack.ack;
    dup_acks_ = 0;
    rto_backoff_ = 0;

    // RTT sample from the echoed transmit timestamp (RFC 6298 smoothing).
    const sim::SimDuration sample = simulator_.now() - ack.sent_at;
    if (sample > 0) {
      if (srtt_ == 0) {
        srtt_ = sample;
        rttvar_ = sample / 2;
      } else {
        const sim::SimDuration err =
            sample > srtt_ ? sample - srtt_ : srtt_ - sample;
        rttvar_ = (3 * rttvar_ + err) / 4;
        srtt_ = (7 * srtt_ + sample) / 8;
      }
    }

    cc_->on_ack(acked, ack.ece, simulator_.now(), sample);

    if (in_recovery_) {
      if (snd_una_ >= recover_) {
        in_recovery_ = false;
      } else {
        // NewReno partial ack: the next hole is known lost; resend it now.
        retransmit_head();
      }
    }

    if (outstanding() > 0) {
      arm_rto();
    } else {
      cancel_rto();
    }
    try_send();
    return;
  }

  // Duplicate ACK.
  if (outstanding() > 0 && ack.ack == snd_una_) {
    ++dup_acks_;
    if (dup_acks_ == config_.dupack_threshold && !in_recovery_) {
      in_recovery_ = true;
      recover_ = snd_nxt_;
      ++stats_.fast_retransmits;
      cc_->on_loss(simulator_.now());
      retransmit_head();
      arm_rto();
    }
  }
}

void TcpConnection::on_data_segment(const net::Packet& segment) {
  const std::int64_t seg_end = segment.seq + segment.bytes;
  const std::int64_t before = rcv_nxt_;

  if (segment.seq <= rcv_nxt_ && seg_end > rcv_nxt_) {
    rcv_nxt_ = seg_end;
    // Absorb any buffered out-of-order data that is now contiguous.
    auto it = ooo_.begin();
    while (it != ooo_.end() && it->first <= rcv_nxt_) {
      rcv_nxt_ = std::max(rcv_nxt_, it->second);
      it = ooo_.erase(it);
    }
  } else if (segment.seq > rcv_nxt_) {
    // Buffer the hole-following segment (coalesce overlapping intervals).
    auto [it, inserted] = ooo_.try_emplace(segment.seq, seg_end);
    if (!inserted) it->second = std::max(it->second, seg_end);
  }
  // else: fully duplicate segment; just re-ack.

  if (rcv_nxt_ > before) {
    stats_.delivered_bytes += rcv_nxt_ - before;
    if (on_delivered_) on_delivered_(stats_.delivered_bytes);
  }
  // DCTCP-style immediate ACK echoing this segment's CE bit.
  send_ack(segment.ce, segment.sent_at);
}

void TcpConnection::send_ack(bool ece, sim::SimTime echo) {
  net::Packet ack;
  ack.flow = flow_;
  ack.src = receiver_.host().id();
  ack.dst = sender_.host().id();
  ack.bytes = 64;
  ack.ack = rcv_nxt_;
  ack.is_ack = true;
  ack.ece = ece;
  ack.sent_at = echo;
  receiver_.host().send(ack);
}

}  // namespace msamp::transport

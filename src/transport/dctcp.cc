#include "transport/dctcp.h"

#include <algorithm>

namespace msamp::transport {

Dctcp::Dctcp(const CcConfig& config)
    : config_(config),
      cwnd_(config.init_cwnd),
      ssthresh_(config.max_cwnd),
      window_size_(config.init_cwnd) {}

void Dctcp::clamp() {
  cwnd_ = std::clamp(cwnd_, config_.mss, config_.max_cwnd);
}

void Dctcp::on_ack(std::int64_t acked_bytes, bool ece, sim::SimTime /*now*/,
                   sim::SimDuration /*rtt*/) {
  window_acked_ += acked_bytes;
  if (ece) window_marked_ += acked_bytes;

  // Window growth: slow start doubles per RTT; congestion avoidance adds
  // one MSS per cwnd of acked bytes.
  if (cwnd_ < ssthresh_) {
    cwnd_ += acked_bytes;
  } else {
    ca_accum_ += acked_bytes;
    if (ca_accum_ >= cwnd_) {
      ca_accum_ -= cwnd_;
      cwnd_ += config_.mss;
    }
  }
  clamp();

  // End of observation window: fold the marked fraction into alpha and, if
  // anything was marked, apply the proportional decrease once per window.
  if (window_acked_ >= window_size_) {
    const double fraction =
        static_cast<double>(window_marked_) /
        static_cast<double>(std::max<std::int64_t>(window_acked_, 1));
    alpha_ = (1.0 - config_.dctcp_gain) * alpha_ + config_.dctcp_gain * fraction;
    if (window_marked_ > 0) {
      cwnd_ -= static_cast<std::int64_t>(static_cast<double>(cwnd_) * alpha_ / 2.0);
      ssthresh_ = cwnd_;
      clamp();
    }
    window_acked_ = 0;
    window_marked_ = 0;
    window_size_ = cwnd_;
  }
}

void Dctcp::on_loss(sim::SimTime /*now*/) {
  ssthresh_ = std::max(cwnd_ / 2, config_.mss);
  cwnd_ = ssthresh_;
  clamp();
}

void Dctcp::on_timeout(sim::SimTime /*now*/) {
  ssthresh_ = std::max(cwnd_ / 2, 2 * config_.mss);
  cwnd_ = config_.mss;
  window_acked_ = 0;
  window_marked_ = 0;
  window_size_ = cwnd_;
}

}  // namespace msamp::transport

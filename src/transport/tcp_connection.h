// A simplified but behaviorally faithful TCP connection for the packet
// simulator:
//
//   * byte-stream sender with congestion window from a pluggable controller
//     (DCTCP or Cubic), slow start, NewReno fast retransmit / partial-ack
//     recovery, and an exponentially backed-off RTO;
//   * receiver with out-of-order buffering, cumulative ACKs, and DCTCP-style
//     per-packet CE echo (ECE on the ACK for each CE-marked segment);
//   * the Meta retransmission marker (§4.2): when the stack retransmits, the
//     next outgoing packet carries a header bit that Millisampler counts as
//     retransmitted bytes.
//
// One TcpConnection owns both endpoints; all traffic still traverses the
// simulated network (host links, ToR MMU, fabric).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "net/packet.h"
#include "sim/simulator.h"
#include "transport/cc.h"
#include "transport/transport_host.h"

namespace msamp::transport {

/// Connection tunables.
struct TcpConfig {
  CcKind cc = CcKind::kDctcp;
  CcConfig cc_config{.max_cwnd = 4 << 20};
  /// Minimum / initial retransmission timeout (data-center tuned).
  sim::SimDuration min_rto = 5 * sim::kMillisecond;
  sim::SimDuration initial_rto = 10 * sim::kMillisecond;
  int dupack_threshold = 3;
};

/// Counters exposed for analysis and tests.
struct TcpStats {
  std::int64_t sent_bytes = 0;        ///< data bytes put on the wire (incl. retx)
  std::int64_t delivered_bytes = 0;   ///< bytes delivered in order to the app
  std::int64_t retx_bytes = 0;        ///< retransmitted payload bytes
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t ece_acks = 0;         ///< ACKs carrying an ECE echo
};

/// A unidirectional data connection from a sender host to a receiver host.
class TcpConnection {
 public:
  /// Called with the cumulative delivered byte count after each in-order
  /// delivery at the receiver.
  using DeliveredCallback = std::function<void(std::int64_t)>;

  TcpConnection(sim::Simulator& simulator, net::FlowId flow,
                TransportHost& sender, TransportHost& receiver,
                const TcpConfig& config);
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Appends `bytes` to the application stream; transmission starts (or
  /// resumes) immediately, window permitting.
  void send_app_data(std::int64_t bytes);

  void set_on_delivered(DeliveredCallback cb) { on_delivered_ = std::move(cb); }

  /// True when everything written so far has been cumulatively acked.
  bool idle() const noexcept { return snd_una_ == app_limit_; }

  std::int64_t cwnd() const { return cc_->cwnd(); }
  std::int64_t outstanding() const noexcept { return snd_nxt_ - snd_una_; }
  const TcpStats& stats() const noexcept { return stats_; }
  net::FlowId flow() const noexcept { return flow_; }
  const CongestionControl& congestion_control() const { return *cc_; }

 private:
  // --- sender side ---
  void try_send();
  void emit_segment(std::int64_t seq, std::int64_t bytes, bool is_retx);
  void on_ack_packet(const net::Packet& ack);
  void retransmit_head();
  void arm_rto();
  void cancel_rto();
  void on_rto();
  sim::SimDuration current_rto() const;

  // --- receiver side ---
  void on_data_segment(const net::Packet& segment);
  void send_ack(bool ece, sim::SimTime echo);

  sim::Simulator& simulator_;
  net::FlowId flow_;
  TransportHost& sender_;
  TransportHost& receiver_;
  TcpConfig config_;
  std::unique_ptr<CongestionControl> cc_;

  // Sender state.
  std::int64_t app_limit_ = 0;  ///< total bytes the app has written
  std::int64_t snd_una_ = 0;
  std::int64_t snd_nxt_ = 0;
  std::int64_t recover_ = 0;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  bool pending_retx_mark_ = false;
  std::uint64_t rto_event_ = 0;
  int rto_backoff_ = 0;
  // RTT estimation (RFC 6298).
  sim::SimDuration srtt_ = 0;
  sim::SimDuration rttvar_ = 0;

  // Receiver state: rcv_nxt plus an interval map of out-of-order data.
  std::int64_t rcv_nxt_ = 0;
  std::map<std::int64_t, std::int64_t> ooo_;  // seq -> end_seq

  TcpStats stats_;
  DeliveredCallback on_delivered_;
};

}  // namespace msamp::transport

// Swift-style delay-based congestion control (Kumar et al., SIGCOMM 2020,
// cited by the paper's related work).  The §9 implications call for
// congestion control that "can explicitly handle variability in buffer";
// a delay-target controller reacts to queueing itself rather than to ECN
// marks at a fixed threshold, so its operating point follows the DT limit
// as contention moves it.  Included as an extension for the cc-comparison
// ablation (bench_ablation_cc_compare).
//
// Simplified AIMD-on-delay rules per acked window:
//   rtt <= target:  cwnd += ai * (acked/cwnd) * mss        (additive inc.)
//   rtt >  target:  cwnd *= max(1 - beta*(rtt-target)/rtt, 1 - max_mdf)
// with a loss/timeout fallback like any TCP.
#pragma once

#include "transport/cc.h"

namespace msamp::transport {

/// Swift-specific tunables.
struct SwiftConfig {
  sim::SimDuration target_delay = 80 * sim::kMicrosecond;
  double additive_increase = 1.0;  ///< MSS per RTT when under target
  double beta = 0.8;               ///< strength of the delay response
  double max_mdf = 0.5;            ///< max multiplicative decrease per RTT
};

/// The controller.
class Swift final : public CongestionControl {
 public:
  Swift(const CcConfig& config, const SwiftConfig& swift);
  explicit Swift(const CcConfig& config) : Swift(config, SwiftConfig{}) {}

  void on_ack(std::int64_t acked_bytes, bool ece, sim::SimTime now,
              sim::SimDuration rtt) override;
  void on_loss(sim::SimTime now) override;
  void on_timeout(sim::SimTime now) override;
  std::int64_t cwnd() const override { return cwnd_; }
  /// Swift does not need ECN, but setting ECT is harmless and lets mixed
  /// deployments keep marking; we run it ECN-blind (ece ignored).
  bool ecn_capable() const override { return false; }
  const char* name() const override { return "swift"; }

  const SwiftConfig& swift_config() const noexcept { return swift_; }

 private:
  void clamp();

  CcConfig config_;
  SwiftConfig swift_;
  std::int64_t cwnd_;
  /// At most one multiplicative decrease per RTT (Swift's pacing of cuts).
  sim::SimTime last_decrease_ = -1;
  sim::SimDuration min_rtt_ = 0;  ///< lowest sample seen (base RTT estimate)
};

}  // namespace msamp::transport

#include "transport/transport_host.h"

namespace msamp::transport {

TransportHost::TransportHost(net::Host& host) : host_(host) {
  host_.set_ingress_sink([this](const net::Packet& segment) {
    const auto it = flows_.find(segment.flow);
    if (it != flows_.end()) {
      it->second(segment);
    } else if (default_handler_) {
      default_handler_(segment);
    }
  });
}

void TransportHost::register_flow(net::FlowId flow, Handler handler) {
  flows_[flow] = std::move(handler);
}

void TransportHost::unregister_flow(net::FlowId flow) {
  flows_.erase(flow);
}

}  // namespace msamp::transport

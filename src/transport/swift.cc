#include "transport/swift.h"

#include <algorithm>

namespace msamp::transport {

Swift::Swift(const CcConfig& config, const SwiftConfig& swift)
    : config_(config), swift_(swift), cwnd_(config.init_cwnd) {}

void Swift::clamp() {
  cwnd_ = std::clamp(cwnd_, config_.mss, config_.max_cwnd);
}

void Swift::on_ack(std::int64_t acked_bytes, bool /*ece*/, sim::SimTime now,
                   sim::SimDuration rtt) {
  if (rtt <= 0) return;
  if (min_rtt_ == 0 || rtt < min_rtt_) min_rtt_ = rtt;
  // The delay target sits above the base RTT: queueing delay is what we
  // control, propagation is not actionable.
  const sim::SimDuration target = min_rtt_ + swift_.target_delay;

  if (rtt <= target) {
    // Additive increase, scaled so one full acked window adds ai MSS.
    cwnd_ += static_cast<std::int64_t>(
        swift_.additive_increase * static_cast<double>(config_.mss) *
        static_cast<double>(acked_bytes) /
        static_cast<double>(std::max<std::int64_t>(cwnd_, 1)));
    clamp();
    return;
  }

  // Above target: multiplicative decrease proportional to the excess
  // delay, at most once per RTT so sub-RTT ack trains don't stack cuts.
  if (last_decrease_ >= 0 && now - last_decrease_ < rtt) return;
  last_decrease_ = now;
  const double excess = static_cast<double>(rtt - target) /
                        static_cast<double>(rtt);
  const double factor =
      std::max(1.0 - swift_.beta * excess, 1.0 - swift_.max_mdf);
  cwnd_ = static_cast<std::int64_t>(static_cast<double>(cwnd_) * factor);
  clamp();
}

void Swift::on_loss(sim::SimTime now) {
  last_decrease_ = now;
  cwnd_ = static_cast<std::int64_t>(static_cast<double>(cwnd_) *
                                    (1.0 - swift_.max_mdf));
  clamp();
}

void Swift::on_timeout(sim::SimTime now) {
  last_decrease_ = now;
  cwnd_ = config_.mss;
}

}  // namespace msamp::transport

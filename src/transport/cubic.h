// CUBIC (RFC 9438, simplified): window grows as a cubic function of time
// since the last decrease.  Used by the smaller volume of inter-region
// traffic in the studied fleet (§3); included for completeness and for the
// alpha_tuning example's non-ECN baseline.
#pragma once

#include "transport/cc.h"

namespace msamp::transport {

/// CUBIC controller (no ECN; reacts to loss only).
class Cubic final : public CongestionControl {
 public:
  explicit Cubic(const CcConfig& config);

  void on_ack(std::int64_t acked_bytes, bool ece, sim::SimTime now,
              sim::SimDuration rtt) override;
  void on_loss(sim::SimTime now) override;
  void on_timeout(sim::SimTime now) override;
  std::int64_t cwnd() const override { return cwnd_; }
  bool ecn_capable() const override { return false; }
  const char* name() const override { return "cubic"; }

 private:
  void clamp();

  CcConfig config_;
  std::int64_t cwnd_;
  std::int64_t ssthresh_;
  double w_max_segments_;       // window before last decrease, in segments
  sim::SimTime epoch_start_ = -1;
};

}  // namespace msamp::transport

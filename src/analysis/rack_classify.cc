#include "analysis/rack_classify.h"

namespace msamp::analysis {

std::string_view rack_class_name(RackClass c) {
  switch (c) {
    case RackClass::kRegATypical:
      return "RegA-Typical";
    case RackClass::kRegAHigh:
      return "RegA-High";
    case RackClass::kRegB:
      return "RegB";
  }
  return "?";
}

RackClass classify_rack(workload::RegionId region, double busy_hour_avg,
                        const ClassifyConfig& config) {
  if (region == workload::RegionId::kRegB) return RackClass::kRegB;
  return busy_hour_avg > config.high_threshold ? RackClass::kRegAHigh
                                               : RackClass::kRegATypical;
}

}  // namespace msamp::analysis

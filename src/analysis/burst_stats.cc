#include "analysis/burst_stats.h"

namespace msamp::analysis {

ServerRunStats server_run_stats(std::span<const core::BucketSample> series,
                                std::span<const Burst> bursts,
                                const BurstDetectConfig& config) {
  ServerRunStats out;
  if (series.empty()) return out;

  std::vector<bool> in_burst(series.size(), false);
  for (const auto& b : bursts) {
    for (std::size_t k = b.start; k < b.start + b.len && k < series.size(); ++k) {
      in_burst[k] = true;
    }
    out.burst_in_bytes += b.volume_bytes;
  }
  out.num_bursts = bursts.size();
  out.bursty = !bursts.empty();

  const double capacity =
      sim::bytes_in(config.interval, config.line_rate_gbps);
  double util_sum = 0.0, util_in = 0.0, util_out = 0.0;
  double conns_in = 0.0, conns_out = 0.0;
  std::size_t n_in = 0, n_out = 0;
  for (std::size_t k = 0; k < series.size(); ++k) {
    const double u = static_cast<double>(series[k].in_bytes) / capacity;
    util_sum += u;
    out.total_in_bytes += series[k].in_bytes;
    if (in_burst[k]) {
      util_in += u;
      conns_in += series[k].connections;
      ++n_in;
    } else {
      util_out += u;
      conns_out += series[k].connections;
      ++n_out;
    }
  }
  out.avg_util = util_sum / static_cast<double>(series.size());
  if (n_in > 0) {
    out.util_inside = util_in / static_cast<double>(n_in);
    out.conns_inside = conns_in / static_cast<double>(n_in);
  }
  if (n_out > 0) {
    out.util_outside = util_out / static_cast<double>(n_out);
    out.conns_outside = conns_out / static_cast<double>(n_out);
  }
  const double run_sec = sim::to_sec(config.interval) *
                         static_cast<double>(series.size());
  out.bursts_per_sec =
      run_sec > 0.0 ? static_cast<double>(bursts.size()) / run_sec : 0.0;
  return out;
}

}  // namespace msamp::analysis

// Rack classification (§7.1 / §8.1): RegA's busy-hour contention is
// bimodal, so racks split into RegA-Typical (low/moderate contention) and
// RegA-High (ML-dense, high contention); all RegB racks form one class.
#pragma once

#include <string_view>
#include <vector>

#include "workload/region_id.h"

namespace msamp::analysis {

/// The three rack classes of Table 2.
enum class RackClass { kRegATypical = 0, kRegAHigh, kRegB };
inline constexpr int kNumRackClasses = 3;

std::string_view rack_class_name(RackClass c);

/// Classification parameters: the bimodal split threshold on busy-hour
/// average contention (Figure 9's gap sits between ~2.2 and ~7.5; the
/// paper labels the top 20% as RegA-High).
struct ClassifyConfig {
  double high_threshold = 5.0;
};

/// Classifies one rack by region and busy-hour average contention.
RackClass classify_rack(workload::RegionId region, double busy_hour_avg,
                        const ClassifyConfig& config = {});

}  // namespace msamp::analysis

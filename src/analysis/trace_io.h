// Trace import/export: SyncMillisampler runs as portable CSV.
//
// The paper's authors released their (anonymized) dataset; this module lets
// the analysis pipeline ingest externally collected per-server bucket
// series (and export simulated ones in the same schema), decoupling the
// §5-§8 analyses from the simulator.
//
// Schema (one file per sync run):
//   # msamp-sync-trace v1 interval_ns=<int> grid_start_ns=<int>
//   server,sample,in_bytes,in_retx_bytes,out_bytes,out_retx_bytes,
//       in_ecn_bytes,connections            (one header row, 8 columns)
//   0,0,1048576,0,32768,0,0,12.5
//   ...
// Rows may omit all-zero samples; series lengths are implied by the max
// sample index seen (plus explicit rows), and every server listed in at
// least one row gets a full-length series.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "core/sync_controller.h"

namespace msamp::analysis {

/// Writes `run` as CSV.  All-zero samples are skipped (sparse encoding).
void write_sync_trace(const core::SyncRun& run, std::ostream& os);

/// Convenience: writes to `path`, creating parent directories.
bool write_sync_trace_file(const core::SyncRun& run, const std::string& path);

/// Parses a trace produced by `write_sync_trace` (or hand-authored in the
/// same schema).  Returns nullopt on malformed input.  Servers appear in
/// first-row order; missing samples are zero.
std::optional<core::SyncRun> read_sync_trace(std::istream& is);

/// Convenience: reads from `path`.
std::optional<core::SyncRun> read_sync_trace_file(const std::string& path);

}  // namespace msamp::analysis

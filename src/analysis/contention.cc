#include "analysis/contention.h"

#include <algorithm>

namespace msamp::analysis {

std::vector<int> contention_series(const core::SyncRun& run,
                                   const BurstDetectConfig& config) {
  const std::size_t n = run.num_samples();
  std::vector<int> contention(n, 0);
  const std::int64_t threshold = burst_threshold_bytes(config);
  for (const auto& series : run.series) {
    for (std::size_t k = 0; k < n; ++k) {
      if (series[k].in_bytes > threshold) ++contention[k];
    }
  }
  return contention;
}

ContentionSummary summarize_contention(std::span<const int> contention) {
  ContentionSummary s;
  s.samples = contention.size();
  if (contention.empty()) return s;
  long long total = 0;
  int min_active = 0;
  bool any_active = false;
  for (int c : contention) {
    total += c;
    s.max = std::max(s.max, c);
    if (c >= 1) {
      ++s.active_samples;
      min_active = any_active ? std::min(min_active, c) : c;
      any_active = true;
    }
  }
  s.avg = static_cast<double>(total) / static_cast<double>(contention.size());
  s.min_active = any_active ? min_active : 0;

  std::vector<int> sorted(contention.begin(), contention.end());
  std::sort(sorted.begin(), sorted.end());
  s.p90 = sorted[static_cast<std::size_t>(0.9 * (sorted.size() - 1))];
  return s;
}

double queue_share_at_contention(double alpha, int contention) {
  const int s = std::max(contention, 1);
  return alpha / (1.0 + alpha * static_cast<double>(s));
}

}  // namespace msamp::analysis

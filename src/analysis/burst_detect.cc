#include "analysis/burst_detect.h"

namespace msamp::analysis {

std::int64_t burst_threshold_bytes(const BurstDetectConfig& config) {
  return static_cast<std::int64_t>(
      config.threshold_frac * sim::bytes_in(config.interval,
                                            config.line_rate_gbps));
}

bool is_bursty_sample(const core::BucketSample& sample,
                      const BurstDetectConfig& config) {
  return sample.in_bytes > burst_threshold_bytes(config);
}

std::vector<Burst> detect_bursts(std::span<const core::BucketSample> series,
                                 const BurstDetectConfig& config) {
  const std::int64_t threshold = burst_threshold_bytes(config);
  std::vector<Burst> bursts;
  bool open = false;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series[i].in_bytes > threshold) {
      if (open) {
        bursts.back().len += 1;
        bursts.back().volume_bytes += series[i].in_bytes;
      } else {
        bursts.push_back({i, 1, series[i].in_bytes});
        open = true;
      }
    } else {
      open = false;
    }
  }
  return bursts;
}

}  // namespace msamp::analysis

#include "analysis/burst_detect.h"

#include <cstddef>
#include <type_traits>

#include "util/simd/simd.h"

namespace msamp::analysis {

// The SIMD scan gathers BucketSample::in_bytes as a strided i64 column; pin
// the layout assumptions the gather relies on.
static_assert(std::is_standard_layout_v<core::BucketSample>);
static_assert(offsetof(core::BucketSample, in_bytes) == 0,
              "in_bytes must be the first BucketSample field");
static_assert(sizeof(core::BucketSample) % sizeof(std::int64_t) == 0,
              "BucketSample must be a whole number of 64-bit words");

std::int64_t burst_threshold_bytes(const BurstDetectConfig& config) {
  return static_cast<std::int64_t>(
      config.threshold_frac * sim::bytes_in(config.interval,
                                            config.line_rate_gbps));
}

bool is_bursty_sample(const core::BucketSample& sample,
                      const BurstDetectConfig& config) {
  return sample.in_bytes > burst_threshold_bytes(config);
}

std::vector<Burst> detect_bursts(std::span<const core::BucketSample> series,
                                 const BurstDetectConfig& config) {
  const std::int64_t threshold = burst_threshold_bytes(config);
  const std::size_t n = series.size();
  std::vector<Burst> bursts;
  if (n == 0) return bursts;

  // Three vector stages replace the scalar sweep: gather the in_bytes
  // column, compare it against the threshold into a bitmask, then extract
  // maximal runs and sum each run's volume. All integer math, so every ISA
  // path produces the same bursts byte for byte.
  constexpr std::size_t kStride =
      sizeof(core::BucketSample) / sizeof(std::int64_t);
  std::vector<std::int64_t> in_bytes(n);
  util::simd::gather_stride_i64(
      reinterpret_cast<const std::int64_t*>(series.data()), kStride, n,
      in_bytes.data());

  std::vector<std::uint64_t> mask((n + 63) / 64);
  util::simd::threshold_mask_i64(in_bytes.data(), n, threshold, mask.data());

  for (const util::simd::Run& run : util::simd::extract_runs(mask.data(), n)) {
    bursts.push_back(
        {run.start, run.len,
         util::simd::sum_i64(in_bytes.data() + run.start, run.len)});
  }
  return bursts;
}

}  // namespace msamp::analysis

#include "analysis/diagnose.h"

#include <algorithm>

#include "analysis/burst_stats.h"
#include "analysis/contention.h"

namespace msamp::analysis {

std::vector<std::size_t> find_stall_artifacts(
    std::span<const core::BucketSample> series,
    const DiagnoseConfig& config) {
  std::vector<std::size_t> spikes;
  const double capacity =
      sim::bytes_in(config.burst.interval, config.burst.line_rate_gbps);
  const auto spike_threshold =
      static_cast<std::int64_t>(config.stall_spike_factor * capacity);
  int gap = 0;
  for (std::size_t k = 0; k < series.size(); ++k) {
    if (series[k].in_bytes == 0) {
      ++gap;
      continue;
    }
    // A bucket above line rate can only be a catch-up batch (the NIC
    // cannot deliver faster than the wire); preceded by a silent gap it
    // is the §4.6 kernel-stall signature.
    if (gap >= config.stall_min_gap && series[k].in_bytes > spike_threshold) {
      spikes.push_back(k);
    }
    gap = 0;
  }
  return spikes;
}

RackDiagnosis diagnose(const core::SyncRun& run,
                       const DiagnoseConfig& config) {
  RackDiagnosis out;
  const auto contention = contention_series(run, config.burst);
  const auto summary = summarize_contention(contention);
  out.avg_contention = summary.avg;
  if (!contention.empty()) {
    const auto it = std::max_element(contention.begin(), contention.end());
    out.worst_sample = static_cast<std::size_t>(it - contention.begin());
    out.worst_contention = *it;
    out.worst_queue_share =
        queue_share_at_contention(config.dt_alpha, *it);
  }

  out.servers.reserve(run.num_servers());
  for (std::size_t s = 0; s < run.num_servers(); ++s) {
    const auto& series = run.series[s];
    ServerDiagnosis diag;
    diag.server = s;
    const auto bursts = detect_bursts(series, config.burst);
    const auto stats = server_run_stats(series, bursts, config.burst);
    const auto lossy = lossy_bursts(series, bursts, config.loss);
    diag.bursts = bursts.size();
    diag.lossy_bursts =
        static_cast<std::size_t>(std::count(lossy.begin(), lossy.end(), true));
    diag.avg_util = stats.avg_util;
    diag.conns_inside = stats.conns_inside;
    diag.pattern = bursts.empty() ? TrafficPattern::kIdle
                   : stats.conns_inside >= config.incast_conns
                       ? TrafficPattern::kHeavyIncast
                       : TrafficPattern::kFanOut;
    diag.stall_artifacts = find_stall_artifacts(series, config);
    out.measurement_artifacts |= !diag.stall_artifacts.empty();
    out.servers.push_back(std::move(diag));
  }

  // Loss hotspots: top servers by lossy-burst count.
  std::vector<std::size_t> order(out.servers.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return out.servers[a].lossy_bursts > out.servers[b].lossy_bursts;
  });
  for (std::size_t i = 0; i < order.size() && i < 5; ++i) {
    if (out.servers[order[i]].lossy_bursts == 0) break;
    out.loss_hotspots.push_back(order[i]);
  }
  return out;
}

}  // namespace msamp::analysis

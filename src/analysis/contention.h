// Contention (§5): for each 1ms sample of a SyncMillisampler run, the
// number of rack servers that are simultaneously bursty.  Includes the
// per-run summaries of §7.3 (min over active samples, p90) and the mapping
// from contention to the DT per-queue buffer share used in Figure 15(b).
#pragma once

#include <span>
#include <vector>

#include "analysis/burst_detect.h"
#include "core/sync_controller.h"

namespace msamp::analysis {

/// Per-sample contention across the rack: contention[k] = number of
/// servers whose sample k exceeds the burst threshold.
std::vector<int> contention_series(const core::SyncRun& run,
                                   const BurstDetectConfig& config);

/// Run-level contention summary (§7.3).
struct ContentionSummary {
  double avg = 0.0;      ///< mean over ALL samples (idle samples count 0)
  int min_active = 0;    ///< min over samples with contention >= 1
  int p90 = 0;           ///< 90th percentile over all samples
  int max = 0;
  std::size_t samples = 0;
  std::size_t active_samples = 0;  ///< samples with contention >= 1

  /// The paper excludes runs whose p90 contention is zero (6.2% of runs).
  bool usable() const noexcept { return p90 > 0; }
};

ContentionSummary summarize_contention(std::span<const int> contention);

/// DT queue share (fraction of the shared buffer) a queue gets when S
/// queues contend: alpha / (1 + alpha*S), with S floored at 1 (a lone
/// burst still occupies one active queue).
double queue_share_at_contention(double alpha, int contention);

}  // namespace msamp::analysis

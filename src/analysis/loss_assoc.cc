#include "analysis/loss_assoc.h"

namespace msamp::analysis {

std::vector<bool> lossy_bursts(std::span<const core::BucketSample> series,
                               std::span<const Burst> bursts,
                               const LossAssocConfig& config) {
  // Shift the retx series back by the RTT so repairs line up with the
  // bursts that caused the losses.
  std::vector<std::int64_t> retx(series.size(), 0);
  for (std::size_t k = 0; k < series.size(); ++k) {
    const std::int64_t shifted =
        static_cast<std::int64_t>(k) - config.rtt_shift_samples;
    const std::size_t at = shifted < 0 ? 0 : static_cast<std::size_t>(shifted);
    retx[at] += series[k].in_retx_bytes;
  }
  // Prefix sums for O(1) window queries.
  std::vector<std::int64_t> prefix(series.size() + 1, 0);
  for (std::size_t k = 0; k < series.size(); ++k) {
    prefix[k + 1] = prefix[k] + retx[k];
  }

  std::vector<bool> lossy(bursts.size(), false);
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    const std::size_t lo = bursts[i].start;
    std::size_t hi = bursts[i].start + bursts[i].len +
                     static_cast<std::size_t>(config.lag_samples);
    hi = std::min(hi, series.size());
    // Do not attribute past the start of the next burst: its own repairs
    // belong to it.
    if (i + 1 < bursts.size()) hi = std::min(hi, bursts[i + 1].start);
    if (lo < hi) lossy[i] = prefix[hi] - prefix[lo] > 0;
  }
  return lossy;
}

std::int64_t total_retx_bytes(std::span<const core::BucketSample> series) {
  std::int64_t total = 0;
  for (const auto& s : series) total += s.in_retx_bytes;
  return total;
}

}  // namespace msamp::analysis

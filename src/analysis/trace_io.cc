#include "analysis/trace_io.h"

#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace msamp::analysis {
namespace {

constexpr const char* kHeaderPrefix = "# msamp-sync-trace v1";
constexpr const char* kColumns =
    "server,sample,in_bytes,in_retx_bytes,out_bytes,out_retx_bytes,"
    "in_ecn_bytes,connections";

bool is_zero(const core::BucketSample& b) {
  return b.in_bytes == 0 && b.in_retx_bytes == 0 && b.out_bytes == 0 &&
         b.out_retx_bytes == 0 && b.in_ecn_bytes == 0 && b.connections == 0.0;
}

/// Parses one signed integer field up to the next comma.
bool field_i64(const std::string& line, std::size_t& pos, std::int64_t* out) {
  const char* begin = line.data() + pos;
  const char* end = line.data() + line.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  if (ec != std::errc{}) return false;
  pos = static_cast<std::size_t>(ptr - line.data());
  if (pos < line.size() && line[pos] == ',') ++pos;
  return true;
}

}  // namespace

void write_sync_trace(const core::SyncRun& run, std::ostream& os) {
  os << kHeaderPrefix << " interval_ns=" << run.interval
     << " grid_start_ns=" << run.grid_start << "\n"
     << kColumns << "\n";
  char buf[192];
  for (std::size_t s = 0; s < run.num_servers(); ++s) {
    // Every server writes its last sample even when zero: the anchor rows
    // pin both the server set and the series length on import.
    for (std::size_t k = 0; k < run.series[s].size(); ++k) {
      const auto& b = run.series[s][k];
      const bool last = k + 1 == run.series[s].size();
      if (is_zero(b) && !last) continue;
      std::snprintf(buf, sizeof(buf),
                    "%zu,%zu,%lld,%lld,%lld,%lld,%lld,%.3f\n", s, k,
                    static_cast<long long>(b.in_bytes),
                    static_cast<long long>(b.in_retx_bytes),
                    static_cast<long long>(b.out_bytes),
                    static_cast<long long>(b.out_retx_bytes),
                    static_cast<long long>(b.in_ecn_bytes), b.connections);
      os << buf;
    }
  }
}

bool write_sync_trace_file(const core::SyncRun& run,
                           const std::string& path) {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream out(path);
  if (!out) return false;
  write_sync_trace(run, out);
  return static_cast<bool>(out);
}

std::optional<core::SyncRun> read_sync_trace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) return std::nullopt;
  if (line.rfind(kHeaderPrefix, 0) != 0) return std::nullopt;

  core::SyncRun run;
  {
    // Parse the two header attributes.
    const auto ipos = line.find("interval_ns=");
    const auto gpos = line.find("grid_start_ns=");
    if (ipos == std::string::npos || gpos == std::string::npos) {
      return std::nullopt;
    }
    std::size_t p = ipos + 12;
    std::int64_t interval = 0, grid_start = 0;
    if (!field_i64(line, p, &interval) || interval <= 0) return std::nullopt;
    p = gpos + 14;
    if (!field_i64(line, p, &grid_start)) return std::nullopt;
    run.interval = interval;
    run.grid_start = grid_start;
  }
  if (!std::getline(is, line) || line != kColumns) return std::nullopt;

  // First pass: collect rows, track geometry.
  struct Row {
    std::size_t server;
    std::size_t sample;
    core::BucketSample value;
  };
  std::vector<Row> rows;
  std::size_t num_samples = 0;
  std::map<std::size_t, bool> servers;  // ordered, deduped
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    Row row;
    std::size_t pos = 0;
    std::int64_t server = 0, sample = 0;
    if (!field_i64(line, pos, &server) || server < 0) return std::nullopt;
    if (!field_i64(line, pos, &sample) || sample < 0) return std::nullopt;
    if (!field_i64(line, pos, &row.value.in_bytes)) return std::nullopt;
    if (!field_i64(line, pos, &row.value.in_retx_bytes)) return std::nullopt;
    if (!field_i64(line, pos, &row.value.out_bytes)) return std::nullopt;
    if (!field_i64(line, pos, &row.value.out_retx_bytes)) return std::nullopt;
    if (!field_i64(line, pos, &row.value.in_ecn_bytes)) return std::nullopt;
    // Connections: fractional; parse via stod on the remaining field.
    try {
      row.value.connections = std::stod(line.substr(pos));
    } catch (...) {
      return std::nullopt;
    }
    if (row.value.connections < 0) return std::nullopt;
    row.server = static_cast<std::size_t>(server);
    row.sample = static_cast<std::size_t>(sample);
    if (row.server > 100000 || row.sample > 10000000) return std::nullopt;
    servers[row.server] = true;
    num_samples = std::max(num_samples, row.sample + 1);
    rows.push_back(row);
  }
  if (rows.empty()) return run;  // empty trace: zero servers

  // Dense server ids expected (0..N-1); reject gaps to catch mangled files.
  std::size_t expected = 0;
  for (const auto& [id, _] : servers) {
    if (id != expected++) return std::nullopt;
  }
  run.series.assign(servers.size(),
                    std::vector<core::BucketSample>(num_samples));
  run.hosts.resize(servers.size());
  for (std::size_t s = 0; s < servers.size(); ++s) {
    run.hosts[s] = static_cast<net::HostId>(s);
  }
  for (const auto& row : rows) {
    run.series[row.server][row.sample] = row.value;
  }
  return run;
}

std::optional<core::SyncRun> read_sync_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return read_sync_trace(in);
}

}  // namespace msamp::analysis

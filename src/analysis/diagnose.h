// Structured rack diagnosis: the §1/§4.2 troubleshooting workflow
// ("identifying difficult traffic patterns, and troubleshooting the
// interactions between application behavior and the network") as a library
// function.  Given one SyncMillisampler run it reports:
//
//   * the worst millisecond (peak contention) and the DT share implied;
//   * per-server roll-ups with an incast/fan-out classification from the
//     connection sketch (§4.2: "more connections (heavy incast) as opposed
//     to more traffic on fewer connections");
//   * measurement artifacts: kernel-stall signatures (§4.6 — a silent gap
//     followed by a catch-up bucket above line rate), which would
//     otherwise read as genuine bursts.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/burst_detect.h"
#include "analysis/loss_assoc.h"
#include "core/sync_controller.h"

namespace msamp::analysis {

/// How a server's in-burst connection count classifies its traffic.
enum class TrafficPattern {
  kIdle,        ///< no bursts
  kFanOut,      ///< bursts carried by a handful of fat connections
  kHeavyIncast, ///< bursts carried by tens+ of simultaneous connections
};

/// Per-server findings.
struct ServerDiagnosis {
  std::size_t server = 0;
  TrafficPattern pattern = TrafficPattern::kIdle;
  std::size_t bursts = 0;
  std::size_t lossy_bursts = 0;
  double avg_util = 0.0;
  double conns_inside = 0.0;
  /// Sample indices where a §4.6 stall artifact was detected.
  std::vector<std::size_t> stall_artifacts;
};

/// Whole-run findings.
struct RackDiagnosis {
  std::size_t worst_sample = 0;   ///< peak-contention millisecond
  int worst_contention = 0;
  double worst_queue_share = 0.0; ///< DT share at the worst millisecond
  double avg_contention = 0.0;
  std::vector<ServerDiagnosis> servers;

  /// Servers whose lossy-burst count is highest, descending (<= 5).
  std::vector<std::size_t> loss_hotspots;
  /// True if any server shows a stall artifact.
  bool measurement_artifacts = false;
};

/// Diagnosis knobs.
struct DiagnoseConfig {
  BurstDetectConfig burst{};
  LossAssocConfig loss{};
  double dt_alpha = 1.0;
  /// Incast threshold on mean in-burst connections.
  double incast_conns = 30.0;
  /// Stall artifact: at least this many consecutive all-zero samples...
  int stall_min_gap = 2;
  /// ...followed by a bucket above this multiple of line-rate capacity
  /// (only offloaded catch-up batches can exceed line rate at 1ms).
  double stall_spike_factor = 1.2;
};

/// Runs the full diagnosis.
RackDiagnosis diagnose(const core::SyncRun& run, const DiagnoseConfig& config);

/// Stall-artifact scan of a single series; exposed for tests.  Returns the
/// sample indices of catch-up spikes.
std::vector<std::size_t> find_stall_artifacts(
    std::span<const core::BucketSample> series, const DiagnoseConfig& config);

}  // namespace msamp::analysis

// Burst detection (§5): a burst is any maximal run of consecutive samples
// whose ingress utilization exceeds 50% of line rate (following Zhang et
// al.; traffic below that threshold does not typically cause buffering).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/counters.h"
#include "sim/time.h"

namespace msamp::analysis {

/// One detected burst within a server's sample series.
struct Burst {
  std::size_t start = 0;          ///< first sample index
  std::size_t len = 1;            ///< length in samples
  std::int64_t volume_bytes = 0;  ///< ingress bytes within the burst
};

/// Detection parameters.
struct BurstDetectConfig {
  double line_rate_gbps = 12.5;
  sim::SimDuration interval = sim::kMillisecond;
  double threshold_frac = 0.5;  ///< fraction of line rate defining "bursty"
};

/// Byte threshold for one sample under `config`.
std::int64_t burst_threshold_bytes(const BurstDetectConfig& config);

/// True if the sample's ingress bytes exceed the burstiness threshold.
bool is_bursty_sample(const core::BucketSample& sample,
                      const BurstDetectConfig& config);

/// Finds all bursts in a server's series.
std::vector<Burst> detect_bursts(std::span<const core::BucketSample> series,
                                 const BurstDetectConfig& config);

}  // namespace msamp::analysis

// Loss association (§4.6, §8): Millisampler observes retransmissions when
// losses are *repaired*, not when they occur, so retransmitted bytes are
// shifted back in time before being attributed to a burst.  A burst is
// "lossy" if shifted retransmission bytes land inside it (or within a short
// trailing lag window covering timeout-based repair).
#pragma once

#include <span>
#include <vector>

#include "analysis/burst_detect.h"

namespace msamp::analysis {

/// Attribution parameters.
struct LossAssocConfig {
  /// Samples to shift the retransmission series back (≈ one RTT at 1ms
  /// buckets this is one sample).
  int rtt_shift_samples = 1;
  /// Extra trailing samples after a burst still attributed to it (fast
  /// retransmit + requeue can repair several ms after the overflow).
  int lag_samples = 8;
};

/// Marks each burst lossy/not: lossy[i] corresponds to bursts[i].
std::vector<bool> lossy_bursts(std::span<const core::BucketSample> series,
                               std::span<const Burst> bursts,
                               const LossAssocConfig& config);

/// Total retransmitted ingress bytes in the series.
std::int64_t total_retx_bytes(std::span<const core::BucketSample> series);

}  // namespace msamp::analysis

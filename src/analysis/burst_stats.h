// Per-server-run statistics (§6): utilization inside/outside bursts, burst
// frequency, and connection counts inside/outside bursts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/burst_detect.h"

namespace msamp::analysis {

/// Aggregated view of one server's run.
struct ServerRunStats {
  bool bursty = false;          ///< at least one burst in the run
  double avg_util = 0.0;        ///< mean ingress utilization over the run
  double util_inside = 0.0;     ///< mean utilization within burst samples
  double util_outside = 0.0;    ///< mean utilization outside bursts
  double bursts_per_sec = 0.0;
  double conns_inside = 0.0;    ///< mean estimated connections in bursts
  double conns_outside = 0.0;
  std::int64_t total_in_bytes = 0;
  std::int64_t burst_in_bytes = 0;  ///< ingress bytes inside bursts
  std::size_t num_bursts = 0;
};

/// Computes run stats given the (already detected) bursts of the series.
ServerRunStats server_run_stats(std::span<const core::BucketSample> series,
                                std::span<const Burst> bursts,
                                const BurstDetectConfig& config);

}  // namespace msamp::analysis

// The worker role: one process, one shard.  `run_worker` streams the
// shard's windows through a disk-backed fleet::SpillSink (peak RSS is a
// few spill chunks, never the shard) and emits heartbeat lines on the
// given stream — `msampctl worker` wires it to stdout, which the
// coordinator owns through a pipe.
//
// Fault injection (test-only, off by default): with `fault_rate > 0`,
// the worker draws a deterministic plan from util::Rng keyed on
// (seed, shard index, attempt) and may `std::_Exit` mid-shard — before
// the atomic rename, so a faulted attempt never leaves a partial shard
// file.  Because the plan is keyed on the attempt number, a killed
// attempt's retry draws a fresh plan, and because generation itself is
// deterministic, whichever attempt survives writes the identical bytes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "fleet/config.h"
#include "fleet/dataset.h"
#include "fleet/spill_sink.h"

namespace msamp::cluster {

/// Exit code of a fault-injected self-kill (distinct from 1, a real
/// error, and 127, an exec failure), so logs can tell them apart.
inline constexpr int kFaultExitCode = 75;

struct WorkerConfig {
  fleet::FleetConfig fleet;
  fleet::ShardSpec shard;
  std::string out_path = "shard.bin";
  std::size_t chunk_bytes = fleet::SpillSink::kDefaultChunkBytes;
  double fault_rate = 0.0;    ///< P(self-kill) per attempt; test-only
  std::uint32_t attempt = 0;  ///< launch number, keys the fault plan
};

/// The deterministic fault plan for this (seed, shard, attempt): the
/// number of windows after which the worker self-kills (possibly equal
/// to the shard's window count, i.e. after the last window but before
/// finalize), or nullopt for no fault.
std::optional<std::uint64_t> fault_plan(const WorkerConfig& config);

/// Generates the shard into `config.out_path`, emitting heartbeats on
/// `heartbeats` (progress lines throttled to ~1% steps, then `done` or
/// `error ...`).  Returns a process exit code: 0 on success, 1 on error;
/// a planned fault does not return, it `std::_Exit(kFaultExitCode)`s.
int run_worker(const WorkerConfig& config, std::ostream& heartbeats);

}  // namespace msamp::cluster

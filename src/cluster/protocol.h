// Worker → coordinator heartbeat protocol: newline-delimited text lines
// on the worker's stdout, which the coordinator owns through a pipe.
//
//   msamp-hb progress <fraction>   shard fraction complete, in [0, 1]
//   msamp-hb done                  shard file finalized (informational;
//                                  the exit status is authoritative)
//   msamp-hb error <message>       terminal failure, human-readable
//
// Anything that is not a well-formed heartbeat line is ignored by the
// coordinator, so a worker's library code printing to stdout can never
// corrupt the control channel — at worst it delays stall detection.
#pragma once

#include <string>
#include <vector>

namespace msamp::cluster {

struct Heartbeat {
  enum class Kind { kProgress, kDone, kError };
  Kind kind = Kind::kProgress;
  double fraction = 0.0;  ///< kProgress only
  std::string message;    ///< kError only
};

/// One protocol line, without the trailing newline.
std::string encode(const Heartbeat& hb);

/// Parses one line (no trailing newline).  Returns false for anything
/// that is not a well-formed heartbeat, including out-of-range fractions.
bool decode(const std::string& line, Heartbeat* hb);

/// Splits the complete lines off the front of a pipe read buffer; the
/// trailing partial line (if any) stays in `*buf` for the next read.
std::vector<std::string> take_lines(std::string* buf);

}  // namespace msamp::cluster

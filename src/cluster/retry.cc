#include "cluster/retry.h"

namespace msamp::cluster {

bool RetryPolicy::can_retry(int attempts_done) const {
  return attempts_done < max_attempts;
}

int RetryPolicy::delay_ms(int attempts_done) const {
  if (attempts_done <= 0 || base_delay_ms <= 0) return 0;
  long delay = base_delay_ms;
  for (int i = 1; i < attempts_done && delay < max_delay_ms; ++i) {
    delay *= 2;
  }
  return static_cast<int>(delay < max_delay_ms ? delay : max_delay_ms);
}

}  // namespace msamp::cluster

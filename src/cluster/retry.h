// Capped exponential backoff for shard attempt scheduling.  Retrying a
// shard is always safe: workers are deterministic (same shard → same
// bytes) and finalize via atomic rename, so a retried shard either
// reproduces the identical file or leaves nothing.
#pragma once

namespace msamp::cluster {

struct RetryPolicy {
  int max_attempts = 5;     ///< total launches per shard, first included
  int base_delay_ms = 200;  ///< delay before the first retry
  int max_delay_ms = 5000;  ///< backoff cap

  /// True when another launch is allowed after `attempts_done` launches.
  bool can_retry(int attempts_done) const;

  /// Backoff before launch number `attempts_done + 1`:
  /// base * 2^(attempts_done - 1), capped at max_delay_ms.
  int delay_ms(int attempts_done) const;
};

}  // namespace msamp::cluster

// Policy-lab sweep: expands a buffer-sharing policy x parameter grid into
// deterministic cells (one fully-specified FleetConfig each, named after
// its parameters), generates every cell's measurement day — serially
// in-process or fanned across cluster::Coordinator worker processes — and
// reduces each dataset to the comparison metrics the paper's contention
// story is built on (burst absorption, contention CDF, loss rate).
//
// Cells are just fleet runs: each carries its own FleetConfig fingerprint,
// so the coordinator's post-merge fingerprint guard applies per cell, and
// re-running a grid reproduces byte-identical datasets and therefore
// byte-identical summary tables (`cli_sweep` ctest proves it, serial vs
// cluster).  The policy catalogue lives in net/buffer_policy.h and
// docs/POLICIES.md; the CLI front end is `msampctl sweep`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cluster/coordinator.h"
#include "fleet/config.h"
#include "fleet/dataset_view.h"
#include "net/buffer_policy.h"

namespace msamp::cluster {

/// The grid and how to run it.
struct SweepConfig {
  /// Scale/seed template every cell starts from; each cell overrides only
  /// the buffer-policy fields.
  fleet::FleetConfig base;

  /// Policies to expand, in row order.  Parameter lists apply to the
  /// policies they parameterize: `alphas` multiplies kDynamicThreshold,
  /// `boosts` multiplies kBurstAbsorbDt, `target_delays_ms` multiplies
  /// kDelayDriven; kStaticPartition/kCompleteSharing take one cell each.
  std::vector<net::BufferPolicy> policies = {
      net::BufferPolicy::kDynamicThreshold,
      net::BufferPolicy::kStaticPartition,
      net::BufferPolicy::kDelayDriven,
  };
  std::vector<double> alphas = {0.25, 1.0, 4.0};
  std::vector<double> boosts = {4.0};
  std::vector<double> target_delays_ms = {0.5};

  /// Worker processes per cell; 0 = generate serially in this process.
  int workers = 0;
  /// Where per-cell datasets (and the summary CSVs) are written.
  std::string out_dir = "sweep-out";
  /// Keep the per-cell dataset files after aggregation (default: delete;
  /// the summaries are the product).
  bool keep_datasets = false;

  /// Cluster knobs forwarded verbatim to each cell's Coordinator when
  /// `workers > 0` (see ClusterConfig).
  double fault_rate = 0.0;
  std::size_t chunk_bytes = fleet::SpillSink::kDefaultChunkBytes;
  RetryPolicy retry{};
  int stall_timeout_ms = 30000;
  int max_parallel = 0;
};

/// One grid cell: a name derived from its parameters ("dt-a0.25",
/// "static", "delay-d0.5", ...) and the fully-specified config.
struct SweepCell {
  std::string name;
  fleet::FleetConfig config;
};

/// Deterministic grid expansion: same SweepConfig -> same cells in the
/// same order with the same names.
std::vector<SweepCell> expand_grid(const SweepConfig& config);

/// Contention-CDF grid reported per cell, in percent.
inline constexpr int kSweepPercentiles[] = {10, 25, 50, 75, 90, 95, 99};

/// What one cell's measurement day reduced to.
struct CellSummary {
  std::string name;
  std::uint64_t fingerprint = 0;  ///< the cell config's fingerprint
  long bursts = 0;
  long contended = 0;  ///< bursts overlapping rack contention
  long lossy = 0;      ///< bursts overlapping switch discards
  double loss_kb_per_gb = 0.0;  ///< drop KB per delivered GB (rack runs)
  double ecn_mb_per_gb = 0.0;   ///< CE-marked MB per delivered GB
  /// Busy rack contention CDF: usable rack-runs' avg_contention at each
  /// kSweepPercentiles entry, in record order (deterministic).
  std::vector<double> contention_pct;

  double pct_contended() const {
    return bursts == 0 ? 0.0 : 100.0 * static_cast<double>(contended) /
                                   static_cast<double>(bursts);
  }
  double pct_lossy() const {
    return bursts == 0 ? 0.0 : 100.0 * static_cast<double>(lossy) /
                                   static_cast<double>(bursts);
  }
  /// Burst absorption: share of bursts the buffer rode out without loss.
  double pct_absorbed() const { return 100.0 - pct_lossy(); }
};

struct SweepResult {
  std::vector<CellSummary> cells;  ///< one per grid cell, grid order
};

/// Reduces one mapped dataset to its cell summary (exposed for tests).
CellSummary summarize_cell(const std::string& name,
                           const fleet::DatasetView& view);

/// Runs the whole grid.  `log` (optional) receives one line per cell.
/// Returns false with a reason in `*error` on the first cell that fails
/// (cluster failure, unwritable out_dir, ...).
bool run_sweep(const SweepConfig& config, SweepResult* result,
               std::ostream* log = nullptr, std::string* error = nullptr);

}  // namespace msamp::cluster

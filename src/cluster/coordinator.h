// The cluster coordinator: partitions the canonical window sequence into
// `workers` ShardSpecs, runs one worker *process* per shard (fork/exec of
// this binary in the worker role, heartbeats over a stdout pipe), detects
// crashes and stalls, retries failed shards with capped exponential
// backoff, and streams the finished shard files into the final dataset
// with fleet::merge_shards.
//
// Retries are safe because workers are deterministic and finalize via
// atomic rename: an attempt either produces the exact canonical bytes
// for its shard or leaves nothing, so the merged output is byte-identical
// to a single-process run no matter how many attempts each shard took —
// `scripts/check_cluster_determinism.sh` proves it with `cmp` under
// injected faults.  Architecture notes live in docs/CLUSTER.md.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "cluster/process.h"
#include "cluster/retry.h"
#include "fleet/config.h"
#include "fleet/dataset.h"
#include "fleet/merge.h"
#include "fleet/spill_sink.h"

namespace msamp::cluster {

struct ClusterConfig {
  fleet::FleetConfig fleet;
  int workers = 2;  ///< shard count == worker process count

  std::string out_path = "dataset.bin";
  /// Where shard files (and their spill temps) live while the run is in
  /// flight.  Empty = `<out_path>.shards`.  Removed after a successful
  /// merge unless `keep_shards`.
  std::string shard_dir;
  bool keep_shards = false;

  /// Forwarded to every worker (see WorkerConfig).  Nonzero values are
  /// for the fault-injection tests and check scripts only.
  double fault_rate = 0.0;
  std::size_t chunk_bytes = fleet::SpillSink::kDefaultChunkBytes;

  RetryPolicy retry{};
  /// A running worker that emits no heartbeat for this long is presumed
  /// wedged: killed and retried like a crash.
  int stall_timeout_ms = 30000;
  /// Concurrent worker processes; 0 = all shards at once.
  int max_parallel = 0;

  /// Test hook: builds the argv for one shard attempt.  Default =
  /// `self_exe_path()` re-exec'd in the `msampctl worker` role with the
  /// CLI-expressible FleetConfig fields forwarded as flags.  Library
  /// callers with configs the CLI cannot express must supply their own
  /// command; the post-merge fingerprint check below catches the mismatch
  /// if they forget.
  std::function<std::vector<std::string>(
      const fleet::ShardSpec& shard, std::uint32_t attempt,
      const std::string& shard_out_path)>
      spawn_command;
};

class Coordinator {
 public:
  explicit Coordinator(ClusterConfig config);

  /// Runs the cluster to completion.  `progress` (optional) receives one
  /// serialized, strictly increasing 0→1 stream for the whole day —
  /// run_fleet's contract — aggregated from the workers' heartbeats and
  /// ending at exactly 1.0 after the merge (a shard retry resets that
  /// shard's fraction, but the aggregate stream never goes backwards).
  /// `log` (optional) receives one line per scheduling event.  Returns
  /// false with a reason in `*error` when a shard exhausts its retry
  /// budget, the merge fails, or the merged fingerprint disagrees with
  /// `fleet.fingerprint()` (a worker generated from a different config).
  bool run(std::function<void(double)> progress = nullptr,
           std::ostream* log = nullptr, std::string* error = nullptr);

  /// What the final merge folded; valid after a successful run().
  const fleet::MergeStats& stats() const { return stats_; }

 private:
  struct Slot {
    fleet::ShardSpec shard;
    std::string out;
    ChildProcess child;
    std::string pipe_buf;
    std::uint32_t attempts = 0;  ///< launches so far
    double fraction = 0.0;       ///< this attempt's last reported progress
    std::int64_t last_heartbeat_ms = 0;
    std::int64_t next_start_ms = 0;  ///< backoff gate while pending
    std::string last_error;
    enum class State { kPending, kRunning, kDone } state = State::kPending;
  };

  std::vector<std::string> command_for(const Slot& slot) const;

  ClusterConfig cfg_;
  fleet::MergeStats stats_;
};

}  // namespace msamp::cluster

#include "cluster/coordinator.h"

#include <poll.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <ostream>
#include <utility>

#include "cluster/protocol.h"
#include "net/buffer_policy.h"
#include "util/stats.h"

namespace msamp::cluster {
namespace {

constexpr std::int64_t kMaxPollMs = 100;

std::string shard_label(const fleet::ShardSpec& s) {
  return "shard " + std::to_string(s.index) + "/" + std::to_string(s.count);
}

/// Shortest round-trip-exact spelling of a double: the worker re-parses
/// these flags with strtod, and its config must fingerprint identically
/// to the coordinator's or the post-merge guard fails the run.
std::string exact_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

Coordinator::Coordinator(ClusterConfig config) : cfg_(std::move(config)) {
  if (cfg_.workers < 1) cfg_.workers = 1;
  if (cfg_.shard_dir.empty()) cfg_.shard_dir = cfg_.out_path + ".shards";
}

std::vector<std::string> Coordinator::command_for(const Slot& slot) const {
  if (cfg_.spawn_command) {
    return cfg_.spawn_command(slot.shard, slot.attempts, slot.out);
  }
  const auto& f = cfg_.fleet;
  return {self_exe_path(),
          "worker",
          "--seed",
          std::to_string(f.seed),
          "--racks",
          std::to_string(f.racks_per_region),
          "--hours",
          std::to_string(f.hours),
          "--samples",
          std::to_string(f.samples_per_run),
          "--threads",
          std::to_string(f.threads),
          "--policy",
          std::string(net::policy_name(f.buffer.policy)),
          "--alpha",
          exact_double(f.buffer.alpha),
          "--boost",
          exact_double(f.buffer.burst_alpha_boost),
          "--target-delay",
          exact_double(f.buffer.delay.target_delay_ms),
          "--shard",
          std::to_string(slot.shard.index) + "/" +
              std::to_string(slot.shard.count),
          "--out",
          slot.out,
          "--attempt",
          std::to_string(slot.attempts),
          "--fault-rate",
          std::to_string(cfg_.fault_rate),
          "--chunk-bytes",
          std::to_string(cfg_.chunk_bytes)};
}

bool Coordinator::run(std::function<void(double)> progress, std::ostream* log,
                      std::string* error) {
  const auto fail = [&](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  const auto say = [&](const std::string& line) {
    if (log != nullptr) *log << "cluster: " << line << "\n" << std::flush;
  };

  std::error_code ec;
  std::filesystem::create_directories(cfg_.shard_dir, ec);
  if (ec) {
    return fail("cannot create shard directory " + cfg_.shard_dir + ": " +
                ec.message());
  }

  const std::size_t total =
      2ull * static_cast<std::size_t>(cfg_.fleet.racks_per_region) *
      static_cast<std::size_t>(cfg_.fleet.hours);
  const auto workers = static_cast<std::uint32_t>(cfg_.workers);
  std::vector<Slot> slots(workers);
  for (std::uint32_t i = 0; i < workers; ++i) {
    slots[i].shard = fleet::ShardSpec{i, workers};
    slots[i].out = (std::filesystem::path(cfg_.shard_dir) /
                    ("shard-" + std::to_string(i) + ".bin"))
                       .string();
  }
  const std::size_t max_parallel =
      cfg_.max_parallel > 0
          ? std::min<std::size_t>(static_cast<std::size_t>(cfg_.max_parallel),
                                  workers)
          : workers;

  // The aggregate progress stream: worker fractions weighted by shard
  // window counts.  Emit only strictly increasing values below 1.0 — a
  // retried shard's reset can make the raw aggregate dip, and the exact
  // 1.0 is reserved for after the merge, matching run_fleet's contract.
  double emitted = 0.0;
  const auto emit_progress = [&] {
    if (progress == nullptr || total == 0) return;
    const double done_windows =
        util::canonical_sum_over(slots, [&](const Slot& s) {
          const auto w = static_cast<double>(s.shard.end(total) -
                                             s.shard.begin(total));
          return w * (s.state == Slot::State::kDone ? 1.0 : s.fraction);
        });
    const double agg = done_windows / static_cast<double>(total);
    if (agg > emitted && agg < 1.0) {
      progress(agg);
      emitted = agg;
    }
  };

  // One shard attempt ended without a shard file: retry with backoff, or
  // give up and take the whole run down.
  const auto attempt_failed = [&](Slot& s, const std::string& why,
                                  std::string* give_up) {
    if (!cfg_.retry.can_retry(static_cast<int>(s.attempts))) {
      *give_up = shard_label(s.shard) + " failed after " +
                 std::to_string(s.attempts) + " attempt(s): " + why;
      return;
    }
    const int delay = cfg_.retry.delay_ms(static_cast<int>(s.attempts));
    s.state = Slot::State::kPending;
    s.fraction = 0.0;
    s.pipe_buf.clear();
    s.next_start_ms = steady_now_ms() + delay;
    say(shard_label(s.shard) + " attempt " + std::to_string(s.attempts) +
        " failed (" + why + "); retrying in " + std::to_string(delay) + "ms");
  };

  const auto drain = [&](Slot& s) {
    s.child.read_available(&s.pipe_buf);
    for (const std::string& line : take_lines(&s.pipe_buf)) {
      Heartbeat hb;
      if (!decode(line, &hb)) continue;  // stray output; not ours
      s.last_heartbeat_ms = steady_now_ms();
      switch (hb.kind) {
        case Heartbeat::Kind::kProgress:
          if (hb.fraction > s.fraction) s.fraction = hb.fraction;
          break;
        case Heartbeat::Kind::kError:
          s.last_error = hb.message;
          break;
        case Heartbeat::Kind::kDone:
          break;
      }
    }
  };

  while (true) {
    const std::int64_t now = steady_now_ms();
    std::size_t running = 0, done = 0;
    for (const Slot& s : slots) {
      running += s.state == Slot::State::kRunning;
      done += s.state == Slot::State::kDone;
    }
    if (done == slots.size()) break;

    // Launch eligible pending shards, lowest index first.
    for (Slot& s : slots) {
      if (running >= max_parallel) break;
      if (s.state != Slot::State::kPending || now < s.next_start_ms) continue;
      std::string why;
      const auto argv = command_for(s);
      ++s.attempts;
      if (!s.child.spawn(argv, &why)) {
        std::string give_up;
        attempt_failed(s, "spawn failed: " + why, &give_up);
        if (!give_up.empty()) return fail(give_up);
        continue;
      }
      s.state = Slot::State::kRunning;
      s.fraction = 0.0;
      s.last_error.clear();
      s.last_heartbeat_ms = now;
      say(shard_label(s.shard) + " attempt " + std::to_string(s.attempts) +
          " started (pid " + std::to_string(s.child.pid()) + ")");
      ++running;
    }

    // Sleep until something can happen: pipe data, a backoff expiring, or
    // a stall deadline.
    std::vector<pollfd> fds;
    std::int64_t timeout = kMaxPollMs;
    for (Slot& s : slots) {
      if (s.state == Slot::State::kRunning) {
        if (s.child.stdout_fd() >= 0) {
          fds.push_back({s.child.stdout_fd(), POLLIN, 0});
        }
        timeout = std::min(
            timeout, s.last_heartbeat_ms + cfg_.stall_timeout_ms - now);
      } else if (s.state == Slot::State::kPending) {
        timeout = std::min(timeout, s.next_start_ms - now);
      }
    }
    ::poll(fds.empty() ? nullptr : fds.data(),
           static_cast<nfds_t>(fds.size()),
           static_cast<int>(std::max<std::int64_t>(timeout, 0)));

    for (Slot& s : slots) {
      if (s.state != Slot::State::kRunning) continue;
      drain(s);
      int status = 0;
      if (s.child.try_wait(&status)) {
        drain(s);  // the last buffered heartbeats
        std::error_code exists_ec;
        if (exited_ok(status) &&
            std::filesystem::is_regular_file(s.out, exists_ec)) {
          s.state = Slot::State::kDone;
          say(shard_label(s.shard) + " done (attempt " +
              std::to_string(s.attempts) + ")");
        } else {
          std::string why = describe_status(status);
          if (!s.last_error.empty()) why += ": " + s.last_error;
          if (exited_ok(status)) why = "exited 0 without a shard file";
          std::string give_up;
          attempt_failed(s, why, &give_up);
          if (!give_up.empty()) return fail(give_up);
        }
      } else if (steady_now_ms() - s.last_heartbeat_ms >
                 cfg_.stall_timeout_ms) {
        s.child.kill_hard();
        std::string give_up;
        attempt_failed(s,
                       "stalled (no heartbeat for " +
                           std::to_string(cfg_.stall_timeout_ms) + "ms)",
                       &give_up);
        if (!give_up.empty()) return fail(give_up);
      }
    }
    emit_progress();
  }

  std::vector<std::string> paths;
  paths.reserve(slots.size());
  for (const Slot& s : slots) paths.push_back(s.out);
  if (auto st = fleet::merge_shards(paths, cfg_.out_path, &stats_); !st) {
    return fail("merge failed: " + st.to_string());
  }
  if (stats_.fingerprint != cfg_.fleet.fingerprint()) {
    return fail(
        "merged fingerprint disagrees with the coordinator's config — the "
        "workers generated from a different config (is every FleetConfig "
        "field expressible in the worker command?)");
  }
  if (!cfg_.keep_shards) {
    for (const Slot& s : slots) {
      for (const char* suffix : {"", ".tmp"}) {
        std::filesystem::remove(s.out + suffix, ec);
      }
      // Crashed attempts can leave per-column spill files behind
      // (<out>.spill-<section>-c<N>); finalize removes them on success.
      const std::filesystem::path dir =
          std::filesystem::path(s.out).parent_path();
      const std::string spill_prefix =
          std::filesystem::path(s.out).filename().string() + ".spill-";
      std::error_code iter_ec;
      for (const auto& entry :
           std::filesystem::directory_iterator(dir, iter_ec)) {
        if (entry.path().filename().string().rfind(spill_prefix, 0) == 0) {
          std::filesystem::remove(entry.path(), ec);
        }
      }
    }
    std::filesystem::remove(cfg_.shard_dir, ec);  // only when empty
  }
  if (progress != nullptr) progress(1.0);
  say("merged " + std::to_string(slots.size()) + " shard(s) into " +
      cfg_.out_path);
  return true;
}

}  // namespace msamp::cluster

#include "cluster/sweep.h"

#include <cstdio>
#include <filesystem>
#include <ostream>
#include <stdexcept>

#include "fleet/fleet_runner.h"
#include "fleet/spill_sink.h"
#include "util/stats.h"

namespace msamp::cluster {

namespace {

namespace fs = std::filesystem;

/// Shortest decimal spelling of a parameter value ("0.25", "1", "4"), so
/// cell names are stable and readable.
std::string trim_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

fleet::FleetConfig cell_config(const fleet::FleetConfig& base,
                               net::BufferPolicy policy) {
  fleet::FleetConfig cfg = base;
  cfg.buffer.policy = policy;
  return cfg;
}

}  // namespace

std::vector<SweepCell> expand_grid(const SweepConfig& config) {
  std::vector<SweepCell> cells;
  for (const net::BufferPolicy policy : config.policies) {
    switch (policy) {
      case net::BufferPolicy::kDynamicThreshold:
        for (const double alpha : config.alphas) {
          SweepCell cell{"dt-a" + trim_double(alpha),
                         cell_config(config.base, policy)};
          cell.config.buffer.alpha = alpha;
          cells.push_back(std::move(cell));
        }
        break;
      case net::BufferPolicy::kStaticPartition:
        cells.push_back({"static", cell_config(config.base, policy)});
        break;
      case net::BufferPolicy::kCompleteSharing:
        cells.push_back({"complete", cell_config(config.base, policy)});
        break;
      case net::BufferPolicy::kBurstAbsorbDt:
        for (const double boost : config.boosts) {
          SweepCell cell{"burst-absorb-b" + trim_double(boost),
                         cell_config(config.base, policy)};
          cell.config.buffer.burst_alpha_boost = boost;
          cells.push_back(std::move(cell));
        }
        break;
      case net::BufferPolicy::kDelayDriven:
        for (const double target : config.target_delays_ms) {
          SweepCell cell{"delay-d" + trim_double(target),
                         cell_config(config.base, policy)};
          cell.config.buffer.delay.target_delay_ms = target;
          cells.push_back(std::move(cell));
        }
        break;
    }
  }
  return cells;
}

CellSummary summarize_cell(const std::string& name,
                           const fleet::DatasetView& view) {
  CellSummary s;
  s.name = name;
  const auto& bursts = view.bursts();
  s.bursts = static_cast<long>(bursts.size());
  for (auto c : bursts.contended) s.contended += c ? 1 : 0;
  for (auto l : bursts.lossy) s.lossy += l ? 1 : 0;
  std::vector<double> contention;
  const auto& runs = view.rack_runs();
  const double in_bytes =
      util::canonical_sum(runs.in_bytes.data(), runs.in_bytes.size());
  const double drop_bytes =
      util::canonical_sum(runs.drop_bytes.data(), runs.drop_bytes.size());
  const double ecn_bytes =
      util::canonical_sum(runs.ecn_bytes.data(), runs.ecn_bytes.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (runs.usable[i]) contention.push_back(runs.avg_contention[i]);
  }
  if (in_bytes > 0.0) {
    s.loss_kb_per_gb = drop_bytes / (in_bytes / 1e9) / 1e3;
    s.ecn_mb_per_gb = ecn_bytes / (in_bytes / 1e9) / 1e6;
  }
  for (const int p : kSweepPercentiles) {
    s.contention_pct.push_back(util::percentile(contention, p));
  }
  return s;
}

bool run_sweep(const SweepConfig& config, SweepResult* result,
               std::ostream* log, std::string* error) {
  const auto fail = [&](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  const auto say = [&](const std::string& line) {
    if (log != nullptr) *log << "sweep: " << line << "\n" << std::flush;
  };

  const std::vector<SweepCell> cells = expand_grid(config);
  if (cells.empty()) return fail("empty sweep grid (no policies)");

  std::error_code ec;
  fs::create_directories(config.out_dir, ec);
  if (ec) {
    return fail("cannot create " + config.out_dir + ": " + ec.message());
  }

  result->cells.clear();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const SweepCell& cell = cells[i];
    const std::string ds_path =
        (fs::path(config.out_dir) / (cell.name + ".bin")).string();
    say("cell " + std::to_string(i + 1) + "/" +
        std::to_string(cells.size()) + " " + cell.name +
        (config.workers > 0
             ? " (" + std::to_string(config.workers) + " workers)"
             : " (serial)"));

    // Both paths produce a v6 file at ds_path and summarize it through a
    // mapped view — the summary never materializes record vectors.
    if (config.workers > 0) {
      ClusterConfig cc;
      cc.fleet = cell.config;
      cc.workers = config.workers;
      cc.out_path = ds_path;
      cc.fault_rate = config.fault_rate;
      cc.chunk_bytes = config.chunk_bytes;
      cc.retry = config.retry;
      cc.stall_timeout_ms = config.stall_timeout_ms;
      cc.max_parallel = config.max_parallel;
      Coordinator coordinator(cc);
      std::string why;
      if (!coordinator.run(nullptr, log, &why)) {
        return fail("cell " + cell.name + ": " + why);
      }
    } else {
      fleet::SpillSink sink(cell.config, fleet::ShardSpec{}, ds_path,
                            config.chunk_bytes);
      try {
        fleet::run_fleet(cell.config, fleet::ShardSpec{}, sink, nullptr);
      } catch (const std::exception& e) {
        return fail("cell " + cell.name + ": " + e.what());
      }
      if (auto st = sink.finalize(); !st) {
        return fail("cell " + cell.name + ": " + st.to_string());
      }
    }

    fleet::DatasetView view;
    if (auto st = fleet::Dataset::open_mapped(ds_path, &view); !st) {
      return fail("cell " + cell.name + ": " + st.to_string());
    }

    CellSummary summary = summarize_cell(cell.name, view);
    summary.fingerprint = cell.config.fingerprint();
    result->cells.push_back(std::move(summary));
    view.close();
    if (!config.keep_datasets) {
      fs::remove(ds_path, ec);
    }
  }
  return true;
}

}  // namespace msamp::cluster

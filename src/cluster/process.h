// POSIX child-process plumbing for the cluster coordinator: spawn a
// worker with its stdout on a pipe, read heartbeats without blocking,
// reap exits, and kill stalled workers.
//
// This layer also owns the coordinator's only clock, `steady_now_ms` —
// a monotonic wall clock used exclusively for stall detection and retry
// backoff.  Scheduling is execution detail: no timestamp ever reaches
// the dataset bytes, which stay a pure function of (config, seed).  The
// implementation file carries msamp_lint's sole `wallclock_allowed`
// exemption (docs/STATIC_ANALYSIS.md).
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

namespace msamp::cluster {

/// Milliseconds on a monotonic clock with an arbitrary epoch.  For
/// timeouts and backoff only — never for data.
std::int64_t steady_now_ms();

/// Absolute path of the running executable (via /proc/self/exe), so the
/// coordinator can re-exec itself in the worker role.  Empty on failure.
std::string self_exe_path();

/// One spawned worker: fork/exec with stdout redirected into a pipe the
/// parent reads non-blockingly.  The destructor kills and reaps a child
/// that is still running — a dying coordinator never leaks workers.
class ChildProcess {
 public:
  ChildProcess() = default;
  ~ChildProcess();
  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;

  /// Starts `argv` (argv[0] is the executable path).  Returns false with
  /// a reason in `*error` when the pipe, fork, or exec setup fails.  An
  /// exec failure inside the child surfaces as exit code 127.
  bool spawn(const std::vector<std::string>& argv, std::string* error);

  /// True between a successful spawn and the reap (try_wait/kill_hard).
  bool running() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }

  /// Pipe read end, for poll(); -1 once the child's stdout reached EOF.
  int stdout_fd() const { return out_fd_; }

  /// Appends whatever the pipe has, without blocking.  Returns false once
  /// the write end closed (child exited) and the pipe drained.
  bool read_available(std::string* buf);

  /// Non-blocking reap.  True when the child exited; `*raw_status`
  /// receives the waitpid status and the handle stops running.  Call
  /// read_available afterwards to drain the last buffered heartbeats.
  bool try_wait(int* raw_status);

  /// SIGKILL + blocking reap; no-op when not running.
  void kill_hard();

 private:
  void close_pipe();
  pid_t pid_ = -1;
  int out_fd_ = -1;
};

/// True when the waitpid status is a normal exit with code 0.
bool exited_ok(int raw_status);

/// "exit code N" / "killed by signal N" for log lines.
std::string describe_status(int raw_status);

}  // namespace msamp::cluster

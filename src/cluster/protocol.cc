#include "cluster/protocol.h"

#include <cstdio>
#include <cstdlib>

namespace msamp::cluster {
namespace {

constexpr const char* kPrefix = "msamp-hb ";
constexpr std::size_t kPrefixLen = 9;

}  // namespace

std::string encode(const Heartbeat& hb) {
  switch (hb.kind) {
    case Heartbeat::Kind::kDone:
      return "msamp-hb done";
    case Heartbeat::Kind::kError:
      return "msamp-hb error " + hb.message;
    case Heartbeat::Kind::kProgress:
    default: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.9g", hb.fraction);
      return std::string("msamp-hb progress ") + buf;
    }
  }
}

bool decode(const std::string& line, Heartbeat* hb) {
  if (line.compare(0, kPrefixLen, kPrefix) != 0) return false;
  const std::string body = line.substr(kPrefixLen);
  if (body == "done") {
    hb->kind = Heartbeat::Kind::kDone;
    hb->fraction = 0.0;
    hb->message.clear();
    return true;
  }
  if (body.compare(0, 6, "error ") == 0) {
    hb->kind = Heartbeat::Kind::kError;
    hb->fraction = 0.0;
    hb->message = body.substr(6);
    return true;
  }
  if (body.compare(0, 9, "progress ") == 0) {
    const std::string value = body.substr(9);
    if (value.empty()) return false;
    char* end = nullptr;
    const double f = std::strtod(value.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
    if (!(f >= 0.0) || !(f <= 1.0)) return false;
    hb->kind = Heartbeat::Kind::kProgress;
    hb->fraction = f;
    hb->message.clear();
    return true;
  }
  return false;
}

std::vector<std::string> take_lines(std::string* buf) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < buf->size(); ++i) {
    if ((*buf)[i] == '\n') {
      lines.push_back(buf->substr(start, i - start));
      start = i + 1;
    }
  }
  buf->erase(0, start);
  return lines;
}

}  // namespace msamp::cluster

#include "cluster/process.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace msamp::cluster {

std::int64_t steady_now_ms() {
  // The one sanctioned wall-clock read outside the bench harness: stall
  // timeouts and retry backoff need real elapsed time.  This file is the
  // sole `wallclock_allowed` path in msamp_lint for exactly this reason.
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
}

std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  return std::string(buf);
}

ChildProcess::~ChildProcess() {
  kill_hard();
  close_pipe();
}

void ChildProcess::close_pipe() {
  if (out_fd_ >= 0) {
    ::close(out_fd_);
    out_fd_ = -1;
  }
}

bool ChildProcess::spawn(const std::vector<std::string>& argv,
                         std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    return false;
  };
  if (argv.empty()) {
    if (error != nullptr) *error = "empty worker command";
    return false;
  }
  int fds[2];
  if (::pipe(fds) != 0) return fail("pipe");
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return fail("fork");
  }
  if (pid == 0) {
    // Child: stdout becomes the heartbeat pipe; stderr stays shared so
    // worker diagnostics land in the coordinator's stderr.
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    ::execv(cargv[0], cargv.data());
    ::_exit(127);
  }
  ::close(fds[1]);
  ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
  pid_ = pid;
  out_fd_ = fds[0];
  return true;
}

bool ChildProcess::read_available(std::string* buf) {
  if (out_fd_ < 0) return false;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(out_fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buf->append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      close_pipe();
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    close_pipe();
    return false;
  }
}

bool ChildProcess::try_wait(int* raw_status) {
  if (pid_ <= 0) return false;
  int status = 0;
  const pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r != pid_) return false;
  pid_ = -1;
  if (raw_status != nullptr) *raw_status = status;
  return true;
}

void ChildProcess::kill_hard() {
  if (pid_ <= 0) return;
  ::kill(pid_, SIGKILL);
  int status = 0;
  while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
  }
  pid_ = -1;
}

bool exited_ok(int raw_status) {
  return WIFEXITED(raw_status) && WEXITSTATUS(raw_status) == 0;
}

std::string describe_status(int raw_status) {
  if (WIFEXITED(raw_status)) {
    return "exit code " + std::to_string(WEXITSTATUS(raw_status));
  }
  if (WIFSIGNALED(raw_status)) {
    return "killed by signal " + std::to_string(WTERMSIG(raw_status));
  }
  return "status " + std::to_string(raw_status);
}

}  // namespace msamp::cluster

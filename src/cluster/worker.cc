#include "cluster/worker.h"

#include <cstdlib>
#include <exception>
#include <ostream>
#include <utility>

#include "cluster/protocol.h"
#include "fleet/fleet_runner.h"
#include "util/rng.h"

namespace msamp::cluster {
namespace {

/// Pass-through sink that executes the fault plan: after `kill_at`
/// windows have been delivered, the process dies without unwinding —
/// exactly like a machine loss — so no destructor, no finalize, and no
/// partial output file.
class FaultInjectingSink final : public fleet::WindowSink {
 public:
  FaultInjectingSink(fleet::WindowSink& inner,
                     std::optional<std::uint64_t> kill_at)
      : inner_(inner), kill_at_(kill_at) {}

  void on_window(std::size_t window, fleet::WindowRecords&& records) override {
    if (kill_at_.has_value() && seen_ == *kill_at_) {
      std::_Exit(kFaultExitCode);
    }
    inner_.on_window(window, std::move(records));
    ++seen_;
  }

  std::uint64_t seen() const { return seen_; }

 private:
  fleet::WindowSink& inner_;
  std::optional<std::uint64_t> kill_at_;
  std::uint64_t seen_ = 0;
};

}  // namespace

std::optional<std::uint64_t> fault_plan(const WorkerConfig& config) {
  if (config.fault_rate <= 0.0) return std::nullopt;
  // An independent stream per (seed, shard, attempt): each retry draws a
  // fresh plan, and two shards never share one.
  util::Rng rng = util::Rng(config.fleet.seed)
                      .fork(0x6661756c74ull)  // "fault"
                      .fork(config.shard.index)
                      .fork(config.attempt);
  if (!rng.bernoulli(config.fault_rate)) return std::nullopt;
  const std::size_t total =
      2ull * static_cast<std::size_t>(config.fleet.racks_per_region) *
      static_cast<std::size_t>(config.fleet.hours);
  const std::uint64_t windows =
      config.shard.end(total) - config.shard.begin(total);
  // kill_at == windows means "after the last window, before finalize" —
  // the spill files are complete but the shard file never appears.
  return rng.uniform_int(windows + 1);
}

int run_worker(const WorkerConfig& config, std::ostream& heartbeats) {
  const auto emit = [&heartbeats](const Heartbeat& hb) {
    heartbeats << encode(hb) << '\n' << std::flush;
  };
  const auto emit_error = [&](std::string message) {
    Heartbeat hb;
    hb.kind = Heartbeat::Kind::kError;
    hb.message = std::move(message);
    emit(hb);
    return 1;
  };
  try {
    fleet::SpillSink sink(config.fleet, config.shard, config.out_path,
                          config.chunk_bytes);
    const auto plan = fault_plan(config);
    FaultInjectingSink faulty(sink, plan);
    double last = -1.0;
    fleet::run_fleet(config.fleet, config.shard, faulty, [&](double p) {
      // Throttle to ~1% steps so a large shard does not flood the pipe;
      // the final exact 1.0 always goes out.
      if (p >= 1.0 || last < 0.0 || p - last >= 0.01) {
        Heartbeat hb;
        hb.kind = Heartbeat::Kind::kProgress;
        hb.fraction = p;
        emit(hb);
        last = p;
      }
    });
    if (plan.has_value() && *plan >= faulty.seen()) {
      // Empty shards never reach the sink; the pre-finalize kill point.
      std::_Exit(kFaultExitCode);
    }
    if (auto st = sink.finalize(); !st) return emit_error(st.to_string());
    Heartbeat done;
    done.kind = Heartbeat::Kind::kDone;
    emit(done);
    return 0;
  } catch (const std::exception& e) {
    return emit_error(e.what());
  }
}

}  // namespace msamp::cluster

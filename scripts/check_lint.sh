#!/usr/bin/env bash
# Static-analysis lane: msamp_lint (the project-invariant rules — see
# docs/STATIC_ANALYSIS.md) plus clang-tidy (.clang-tidy: bugprone,
# performance, concurrency) when the tool is available.
#
#   scripts/check_lint.sh [BUILD_DIR] [--lint-only|--tidy-only]
#
# Escape hatches, matching the TSan/ASan lane convention:
#   MSAMP_SKIP_LINT=1  skip the msamp_lint invariant pass
#   MSAMP_SKIP_TIDY=1  skip clang-tidy (also skipped, with a note, when
#                      clang-tidy is not installed — the reference
#                      container ships only GCC)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build
MODE=all
for arg in "$@"; do
  case "$arg" in
    --lint-only) MODE=lint ;;
    --tidy-only) MODE=tidy ;;
    *) BUILD="$arg" ;;
  esac
done

if [ "$MODE" != "tidy" ]; then
  if [ "${MSAMP_SKIP_LINT:-0}" = "1" ]; then
    echo "[check_lint] MSAMP_SKIP_LINT=1 — skipping msamp_lint"
  else
    cmake --build "$BUILD" --target msamp_lint
    # Machine-readable report for CI artifacts; per-rule counts land on
    # stderr.  Exit status still gates the lane (findings -> non-zero).
    mkdir -p "$BUILD"
    "$BUILD"/tools/msamp_lint --root . --format=json \
      --baseline tools/lint/baseline.txt > "$BUILD"/lint_report.json
    echo "[check_lint] report: $BUILD/lint_report.json"
  fi
fi

if [ "$MODE" != "lint" ]; then
  if [ "${MSAMP_SKIP_TIDY:-0}" = "1" ]; then
    echo "[check_lint] MSAMP_SKIP_TIDY=1 — skipping clang-tidy"
  elif ! command -v clang-tidy >/dev/null 2>&1; then
    echo "[check_lint] clang-tidy not installed — skipping the tidy lane"
  elif [ ! -f "$BUILD/compile_commands.json" ]; then
    echo "[check_lint] $BUILD/compile_commands.json missing — configure first" >&2
    exit 2
  else
    # Library, tool, bench, and example translation units; headers are
    # covered through HeaderFilterRegex.  Tests are excluded: gtest macros
    # expand to patterns several bugprone checks misfire on.
    find src tools bench examples \( -name '*.cc' -o -name '*.cpp' \) -print0 |
      xargs -0 clang-tidy -p "$BUILD" --quiet
  fi
fi

echo "[check_lint] OK"

#!/usr/bin/env bash
# Verifies the zero-copy read path's determinism contract with the real
# CLI: v6 dataset bytes are a pure function of the config — identical
# across MSAMP_THREADS and identical whether written whole (`fleet`) or as
# merged shards — and the mapped readers (`report`, `query`) emit
# byte-identical stdout over all of them.
#
#   scripts/check_view_determinism.sh [build-dir]     # default: build
#   ARGS="--racks 8 --hours 4 --samples 300" scripts/check_view_determinism.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
ARGS=${ARGS:-"--racks 6 --hours 8 --samples 200"}
MSAMPCTL="$PWD/$BUILD/tools/msampctl"
[ -x "$MSAMPCTL" ] || { echo "error: $MSAMPCTL not built"; exit 1; }

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT
cd "$scratch"

echo "== v6 bytes across thread counts"
MSAMP_THREADS=1 "$MSAMPCTL" fleet $ARGS --out t1.bin > /dev/null
MSAMP_THREADS=4 "$MSAMPCTL" fleet $ARGS --out t4.bin > /dev/null
if ! cmp t1.bin t4.bin; then
  echo "MISMATCH: v6 bytes depend on MSAMP_THREADS"
  exit 1
fi

echo "== fleet vs merged shards"
MSAMP_THREADS=2 "$MSAMPCTL" fleet $ARGS --shard 0/2 --out s0.bin > /dev/null
MSAMP_THREADS=3 "$MSAMPCTL" fleet $ARGS --shard 1/2 --out s1.bin > /dev/null
"$MSAMPCTL" merge s0.bin s1.bin --out merged.bin > /dev/null
if ! cmp t1.bin merged.bin; then
  echo "MISMATCH: merged shards differ from the whole-day file"
  exit 1
fi

echo "== mapped readers emit identical tables over every copy"
for cmd in "report" "query" "query --what windows --limit 0" \
           "query --region A --what bursts --limit 0"; do
  "$MSAMPCTL" $cmd --dataset t1.bin > ref.txt
  for ds in t4.bin merged.bin; do
    "$MSAMPCTL" $cmd --dataset "$ds" > got.txt
    if ! cmp -s ref.txt got.txt; then
      echo "MISMATCH: '$cmd' output differs between t1.bin and $ds"
      exit 1
    fi
  done
done
echo "VIEW DETERMINISM OK ($ARGS)"

#!/usr/bin/env bash
# Docs-drift lane: the documentation must keep up with the CLI and with
# itself.
#
#   scripts/check_docs.sh [BUILD_DIR]
#
# Checks:
#   1. Every msampctl subcommand named in the binary's usage line is
#      documented in README.md and docs/API.md (the two "command index"
#      surfaces), so a new subcommand cannot ship undocumented.
#   2. Every relative markdown link `](path.md...)` in README.md and
#      docs/*.md resolves to an existing file.
#   3. The policy handbook (docs/POLICIES.md) stays linked from
#      README.md, docs/API.md, and docs/MODEL.md.
#
# Escape hatch, matching the other lanes: MSAMP_SKIP_DOCS=1.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}

if [ "${MSAMP_SKIP_DOCS:-0}" = "1" ]; then
  echo "[check_docs] MSAMP_SKIP_DOCS=1 — skipping docs checks"
  exit 0
fi

fail=0

# --- 1. CLI subcommands are documented ---------------------------------
# usage: msampctl <simulate-rack|analyze|...> [--flag value ...]
usage_line=$("$BUILD"/tools/msampctl 2>&1 | head -1 || true)
subcommands=$(printf '%s\n' "$usage_line" |
  sed -n 's/.*<\(.*\)>.*/\1/p' | tr '|' '\n')
if [ -z "$subcommands" ]; then
  echo "[check_docs] could not parse subcommands from: $usage_line" >&2
  exit 2
fi
for doc in README.md docs/API.md; do
  for cmd in $subcommands; do
    if ! grep -q "$cmd" "$doc"; then
      echo "[check_docs] $doc does not mention msampctl subcommand '$cmd'" >&2
      fail=1
    fi
  done
done

# --- 2. Relative markdown links resolve --------------------------------
for doc in README.md docs/*.md; do
  dir=$(dirname "$doc")
  # Relative .md targets only; external URLs and anchors are out of scope.
  for target in $(grep -o '](\([^)#]*\.md\)' "$doc" | sed 's/^](//' |
                  grep -v '^http' || true); do
    if [ ! -f "$dir/$target" ]; then
      echo "[check_docs] $doc links to missing file '$target'" >&2
      fail=1
    fi
  done
done

# --- 3. The policy handbook is reachable -------------------------------
for doc in README.md docs/API.md docs/MODEL.md; do
  if ! grep -q 'POLICIES\.md' "$doc"; then
    echo "[check_docs] $doc lost its link to the policy handbook" >&2
    fail=1
  fi
done

if [ "$fail" != "0" ]; then
  echo "[check_docs] FAILED" >&2
  exit 1
fi
echo "[check_docs] OK"

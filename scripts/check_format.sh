#!/usr/bin/env bash
# Format lane: the repo's .clang-format, enforced.  Fails on any file that
# clang-format would change; run `clang-format -i` on the listed files to
# fix.  Escape hatches, matching the TSan/ASan lane convention:
#   MSAMP_SKIP_FORMAT=1  skip the lane entirely (also skipped, with a
#                        note, when clang-format is not installed — the
#                        reference container ships only GCC)
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${MSAMP_SKIP_FORMAT:-0}" = "1" ]; then
  echo "[check_format] MSAMP_SKIP_FORMAT=1 — skipping"
  exit 0
fi
if ! command -v clang-format >/dev/null 2>&1; then
  echo "[check_format] clang-format not installed — skipping the format lane"
  exit 0
fi

find src tools tests bench examples \
  \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) -print0 |
  xargs -0 clang-format --dry-run -Werror
echo "[check_format] OK"

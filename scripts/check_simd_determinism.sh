#!/usr/bin/env bash
# Verifies the util::simd determinism contract end to end with the real
# binaries: every ISA path compiled into the build (and supported by this
# CPU) must produce byte-identical fleet dataset bytes, byte-identical
# mapped-reader tables, and byte-identical bench stdout/CSVs; and the
# vector paths must actually pay for themselves on the kernels the paper's
# hot loops run (>= MIN_SPEEDUP over scalar on the u64 tally and the
# threshold scan when AVX2 is available).
#
#   scripts/check_simd_determinism.sh [build-dir]     # default: build
#   ARGS="--racks 8 --hours 4" scripts/check_simd_determinism.sh
#   BENCHES="bench_fig01_queue_share" MIN_SPEEDUP=1.5 ...
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
ARGS=${ARGS:-"--racks 4 --hours 3 --samples 120"}
BENCHES=${BENCHES:-"bench_fig01_queue_share bench_fig06_burst_frequency"}
MIN_SPEEDUP=${MIN_SPEEDUP:-2.0}
MSAMPCTL="$PWD/$BUILD/tools/msampctl"
[ -x "$MSAMPCTL" ] || { echo "error: $MSAMPCTL not built"; exit 1; }
for bench in $BENCHES bench_simd_kernels; do
  [ -x "$PWD/$BUILD/bench/$bench" ] || { echo "error: $bench not built"; exit 1; }
done

PATHS=$("$MSAMPCTL" version | awk '$1 == "simd-available" { $1 = ""; print }')
case " $PATHS " in
  *" scalar "*) ;;
  *) echo "error: 'msampctl version' lists no scalar path: $PATHS"; exit 1 ;;
esac
echo "== simd paths on this host:$PATHS"

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT
repo=$PWD
cd "$scratch"

echo "== MSAMP_SIMD routing is honored"
for p in $PATHS; do
  active=$(MSAMP_SIMD="$p" "$MSAMPCTL" version |
    awk '$1 == "simd-active" { print $2 }')
  if [ "$active" != "$p" ]; then
    echo "MISMATCH: MSAMP_SIMD=$p routed to '$active'"
    exit 1
  fi
done

echo "== fleet dataset bytes across paths ($ARGS)"
for p in $PATHS; do
  MSAMP_SIMD="$p" MSAMP_THREADS=2 "$MSAMPCTL" fleet $ARGS \
    --out "ds_$p.bin" > /dev/null
  if ! cmp "ds_scalar.bin" "ds_$p.bin"; then
    echo "MISMATCH: dataset bytes differ between scalar and $p"
    exit 1
  fi
done

echo "== mapped readers across paths"
for cmd in "report" "query --what windows --limit 0" \
           "query --what bursts --limit 0"; do
  MSAMP_SIMD=scalar "$MSAMPCTL" $cmd --dataset ds_scalar.bin > ref.txt
  for p in $PATHS; do
    MSAMP_SIMD="$p" "$MSAMPCTL" $cmd --dataset ds_scalar.bin > got.txt
    if ! cmp -s ref.txt got.txt; then
      echo "MISMATCH: '$cmd' output differs between scalar and $p"
      diff ref.txt got.txt | head -10
      exit 1
    fi
  done
done

echo "== bench stdout + CSVs across paths ($BENCHES)"
for bench in $BENCHES; do
  bin="$repo/$BUILD/bench/$bench"
  ref=""
  for p in $PATHS; do
    dir="$scratch/${bench}_$p"
    mkdir -p "$dir"
    (cd "$dir" && MSAMP_SIMD="$p" MSAMP_THREADS=2 "$bin" > stdout.txt)
    if [ -z "$ref" ]; then
      ref="$dir"
    elif ! diff -r "$ref" "$dir" > /dev/null; then
      echo "MISMATCH: $bench differs between scalar and $p"
      diff -r "$ref" "$dir" | head -20
      exit 1
    fi
  done
  echo "ok: $bench byte-identical for MSAMP_SIMD in {$PATHS }"
done

case " $PATHS " in
  *" avx2 "*|*" neon "*)
    best=$(echo "$PATHS" | tr ' ' '\n' | grep -E '^(avx2|neon)$' | head -1)
    echo "== kernel speedups ($best vs scalar, floor ${MIN_SPEEDUP}x)"
    (cd "$scratch" && "$repo/$BUILD/bench/bench_simd_kernels" > /dev/null)
    csv="$scratch/bench_out/simd_kernels.csv"
    [ -f "$csv" ] || { echo "error: $csv missing"; exit 1; }
    for kernel in tally_rows_u64 threshold_mask_i64; do
      speedup=$(awk -F, -v k="$kernel" -v p="$best" \
        '$1 == k && $2 == p { print $6 }' "$csv")
      [ -n "$speedup" ] || { echo "error: no $best row for $kernel"; exit 1; }
      echo "   $kernel: ${speedup}x"
      ok=$(awk -v s="$speedup" -v m="$MIN_SPEEDUP" \
        'BEGIN { print (s + 0 >= m + 0) ? 1 : 0 }')
      if [ "$ok" != "1" ]; then
        echo "TOO SLOW: $kernel $best speedup ${speedup}x < ${MIN_SPEEDUP}x"
        exit 1
      fi
    done
    ;;
  *)
    echo "== no avx2/neon path on this host; skipping speedup floor"
    ;;
esac

echo "SIMD DETERMINISM OK (paths:$PATHS)"

#!/usr/bin/env bash
# Verifies the bench-parallelism determinism contract: every bench that
# fans its windows out over bench::parallel_windows must emit byte-identical
# stdout and bench_out/ CSVs regardless of MSAMP_THREADS.
#
#   scripts/check_bench_determinism.sh [build-dir]     # default: build
#   THREADS="1 4 7" scripts/check_bench_determinism.sh
#
# Each bench runs once per thread count in its own scratch directory; the
# first run is the reference and every later one is diffed against it
# (stdout and the bench_out/ tree, byte for byte).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
THREADS=${THREADS:-"1 4"}
BENCHES=${BENCHES:-"
  bench_crosscheck_fluid_vs_packet
  bench_crosscheck_packet_incast
  bench_crosscheck_switch_vs_host
  bench_validation_stability
  bench_ablation_cc_compare
  bench_ablation_buffer_policies
  bench_ablation_ecn_threshold
  bench_ablation_fabric
  bench_ablation_asic_generations
  bench_ablation_gro_inflation
"}

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

fail=0
for bench in $BENCHES; do
  bin="$PWD/$BUILD/bench/$bench"
  [ -x "$bin" ] || { echo "error: $bin not built"; exit 1; }
  ref=""
  for t in $THREADS; do
    dir="$scratch/${bench}_t${t}"
    mkdir -p "$dir"
    (cd "$dir" && MSAMP_THREADS="$t" "$bin" > stdout.txt)
    if [ -z "$ref" ]; then
      ref="$dir"
    elif ! diff -r "$ref" "$dir" > /dev/null; then
      echo "MISMATCH: $bench differs between MSAMP_THREADS=${THREADS%% *} and $t"
      diff -r "$ref" "$dir" | head -20
      fail=1
    fi
  done
  echo "ok: $bench byte-identical for MSAMP_THREADS in {$THREADS}"
done

[ "$fail" -eq 0 ] && echo "BENCH DETERMINISM OK" || exit 1

#!/usr/bin/env bash
# Verifies the multi-process determinism contract end to end with the real
# CLI: a dataset generated whole must be byte-identical to the same dataset
# generated as three shards — each shard in its own msampctl process with a
# *different* MSAMP_THREADS — and folded back with `msampctl merge`.
#
#   scripts/check_shard_determinism.sh [build-dir]     # default: build
#   ARGS="--racks 8 --hours 4 --samples 300" scripts/check_shard_determinism.sh
#
# The default scale is big enough to cross the busy hour (exemplar
# selection, rack classification) yet regenerates in seconds.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
ARGS=${ARGS:-"--racks 6 --hours 8 --samples 200"}
MSAMPCTL="$PWD/$BUILD/tools/msampctl"
[ -x "$MSAMPCTL" ] || { echo "error: $MSAMPCTL not built"; exit 1; }

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT
cd "$scratch"

echo "== whole-day reference (MSAMP_THREADS=3)"
MSAMP_THREADS=3 "$MSAMPCTL" fleet $ARGS --out whole.bin > /dev/null

echo "== three shards, one process each, different thread counts"
MSAMP_THREADS=1 "$MSAMPCTL" fleet $ARGS --shard 0/3 --out s0.bin > /dev/null
MSAMP_THREADS=4 "$MSAMPCTL" fleet $ARGS --shard 1/3 --out s1.bin > /dev/null
MSAMP_THREADS=2 "$MSAMPCTL" fleet $ARGS --shard 2/3 --out s2.bin > /dev/null

echo "== merge"
"$MSAMPCTL" merge s0.bin s1.bin s2.bin --out merged.bin > /dev/null

if ! cmp whole.bin merged.bin; then
  echo "MISMATCH: merged shards differ from the single-process dataset"
  exit 1
fi
echo "SHARD DETERMINISM OK ($ARGS)"

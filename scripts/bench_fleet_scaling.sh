#!/usr/bin/env bash
# Measures serial-vs-parallel fleet dataset generation wall-clock and
# cross-checks byte-identity between thread counts.  Regenerates the
# numbers behind the speedup table in docs/PERFORMANCE.md:
#
#   scripts/bench_fleet_scaling.sh                    # 96 + 1000 racks
#   RACKS=96 THREADS="1 4" scripts/bench_fleet_scaling.sh
#
# Each (racks, threads) cell is one full two-region measurement day
# (24 hours x 700 samples by default) through `msampctl fleet`.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${BIN:-build/tools/msampctl}
RACKS=${RACKS:-"96 1000"}
THREADS=${THREADS:-"1 2 4 8"}
HOURS=${HOURS:-24}
SAMPLES=${SAMPLES:-700}

[ -x "$BIN" ] || { echo "error: $BIN not built (run cmake --build build)"; exit 1; }

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

echo "racks_per_region,threads,seconds"
for r in $RACKS; do
  ref=""
  for t in $THREADS; do
    ds="$out/ds_${r}_${t}.bin"
    start=$(date +%s.%N)
    "$BIN" fleet --racks "$r" --hours "$HOURS" --samples "$SAMPLES" \
        --threads "$t" --out "$ds" > /dev/null
    end=$(date +%s.%N)
    awk -v r="$r" -v t="$t" -v a="$start" -v b="$end" \
        'BEGIN { printf "%s,%s,%.1f\n", r, t, b - a }'
    # Determinism contract: every thread count must produce the same bytes.
    if [ -z "$ref" ]; then
      ref="$ds"
    else
      cmp -s "$ref" "$ds" || { echo "BYTE MISMATCH: $ref vs $ds"; exit 1; }
      rm -f "$ds"
    fi
  done
done

#!/usr/bin/env bash
# Measures serial-vs-parallel fleet dataset generation wall-clock and
# cross-checks byte-identity between thread counts.  Regenerates the
# numbers behind the speedup table in docs/PERFORMANCE.md:
#
#   scripts/bench_fleet_scaling.sh                    # 96 + 1000 racks
#   RACKS=96 THREADS="1 4" scripts/bench_fleet_scaling.sh
#
# Each (racks, threads) cell is one full two-region measurement day
# (24 hours x 700 samples by default) through `msampctl fleet`.
#
# Besides the CSV on stdout, each run overwrites BENCH_fleet_scaling.json
# with the same rows plus the host's core count, the SIMD path the run's
# kernels routed to (`msampctl version`'s simd-active), and the pool's lock
# contention rate at each thread count (from bench_pool_contention, null
# when that binary isn't built).  The committed file's git history is the
# perf trajectory future re-anchors read (docs/OBSERVABILITY.md).
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${BIN:-build/tools/msampctl}
CONTENTION_BIN=${CONTENTION_BIN:-build/bench/bench_pool_contention}
RACKS=${RACKS:-"96 1000"}
THREADS=${THREADS:-"1 2 4 8"}
HOURS=${HOURS:-24}
SAMPLES=${SAMPLES:-700}
JSON=${JSON:-BENCH_fleet_scaling.json}

[ -x "$BIN" ] || { echo "error: $BIN not built (run cmake --build build)"; exit 1; }

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

# The SIMD path the kernels route to: perf rows are only comparable across
# runs that took the same path (docs/SIMD.md).
simd_path=$("$BIN" version | awk '$1 == "simd-active" { print $2 }')
[ -n "$simd_path" ] || simd_path=unknown

# Refresh the contention table first (bench_out/pool_contention.csv) so
# each thread count's lock rate can ride along in the JSON rows.
contention_csv=""
if [ -x "$CONTENTION_BIN" ]; then
  "$CONTENTION_BIN" > /dev/null
  contention_csv="bench_out/pool_contention.csv"
fi

# Lock contention rate for a thread count, or the literal string `null`.
contention_rate() {
  local t="$1"
  [ -n "$contention_csv" ] && [ -f "$contention_csv" ] || { echo null; return; }
  awk -F, -v t="$t" 'NR > 1 && $1 == t { print $4; found = 1 } END { if (!found) print "null" }' \
      "$contention_csv"
}

rows=""
echo "racks_per_region,threads,seconds"
for r in $RACKS; do
  ref=""
  for t in $THREADS; do
    ds="$out/ds_${r}_${t}.bin"
    start=$(date +%s.%N)
    "$BIN" fleet --racks "$r" --hours "$HOURS" --samples "$SAMPLES" \
        --threads "$t" --out "$ds" > /dev/null
    end=$(date +%s.%N)
    secs=$(awk -v a="$start" -v b="$end" 'BEGIN { printf "%.1f", b - a }')
    echo "$r,$t,$secs"
    rate=$(contention_rate "$t")
    row=$(printf '{"racks_per_region": %s, "threads": %s, "seconds": %s, "lock_contention_rate": %s}' \
                 "$r" "$t" "$secs" "$rate")
    rows="${rows:+$rows,$'\n'    }$row"
    # Determinism contract: every thread count must produce the same bytes.
    if [ -z "$ref" ]; then
      ref="$ds"
    else
      cmp -s "$ref" "$ds" || { echo "BYTE MISMATCH: $ref vs $ds"; exit 1; }
      rm -f "$ds"
    fi
  done
done

cat > "$JSON" <<EOF
{
  "bench": "fleet_scaling",
  "hours": $HOURS,
  "samples_per_run": $SAMPLES,
  "host_cores": $(nproc),
  "simd_path": "$simd_path",
  "rows": [
    $rows
  ]
}
EOF
echo "wrote $JSON" >&2

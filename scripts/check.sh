#!/usr/bin/env bash
# Full local check: configure, build (warnings as errors), run the test
# suite, the static-analysis and format lanes, a ThreadSanitizer lane over
# the concurrency-bearing fleet/util targets, then regenerate every
# table/figure of the paper (CSV output under bench_out/).
set -euo pipefail
cd "$(dirname "$0")/.."

# Ninja when available, the platform default generator otherwise (the
# 1-core reference container ships only make).
GEN=()
command -v ninja >/dev/null 2>&1 && GEN=(-G Ninja)

cmake -B build "${GEN[@]}" -DMSAMP_WERROR=ON
cmake --build build
ctest --test-dir build --output-on-failure

# Static-analysis lane: msamp_lint (project invariants: determinism bans,
# output-path iteration order, wire-format hygiene, fingerprint coverage)
# plus clang-tidy when installed.  Skip with MSAMP_SKIP_LINT=1 /
# MSAMP_SKIP_TIDY=1.
scripts/check_lint.sh build

# Format lane: .clang-format enforced via --dry-run -Werror.  Skip with
# MSAMP_SKIP_FORMAT=1.
scripts/check_format.sh

# Docs lane: every msampctl subcommand documented, markdown cross-links
# resolve, the policy handbook stays linked.  Skip with MSAMP_SKIP_DOCS=1.
scripts/check_docs.sh build

# TSan lane: a second build tree with -DMSAMP_TSAN=ON, running the thread
# pool, parallel fleet runner, and the rest of the fleet/util suites under
# ThreadSanitizer.  Skip with MSAMP_SKIP_TSAN=1 (e.g. on toolchains
# without libtsan).
if [ "${MSAMP_SKIP_TSAN:-0}" != "1" ]; then
  cmake -B build-tsan "${GEN[@]}" -DMSAMP_TSAN=ON
  cmake --build build-tsan --target msamp_tests msamp_lint
  ctest --test-dir build-tsan --output-on-failure \
    -R '^(ThreadPool|SpscRing|FleetParallel|FleetRunner|FleetConfig|FluidRack|Dataset|DatasetView|Shard|SpillSink|Merge|Aggregate|Worker|Coordinator|Rng|Lint|BufferPolicy|Simd)'
  # Cross-check: the scalar SIMD path must pass the same suites (the vector
  # kernels' scalar twins are what every other host falls back to).
  MSAMP_SIMD=scalar ctest --test-dir build-tsan --output-on-failure \
    -R '^(FluidRack|FleetParallel|FleetRunner|Simd)'
fi

# ASan+UBSan lane: a third build tree with -DMSAMP_ASAN=ON, running the
# byte-level parsers — dataset (de)serialization including the hostile-blob
# hardening tests, and the msampctl flag-parser/CLI tests — with
# AddressSanitizer and UBSan watching the bounds checks.  Skip with
# MSAMP_SKIP_ASAN=1.
if [ "${MSAMP_SKIP_ASAN:-0}" != "1" ]; then
  cmake -B build-asan "${GEN[@]}" -DMSAMP_ASAN=ON
  cmake --build build-asan --target msamp_tests msampctl msamp_lint
  ctest --test-dir build-asan --output-on-failure \
    -R '^(Dataset|DatasetView|FleetConfig|Shard|SpillSink|SpscRing|ThreadPool|Merge|Protocol|Flags|cli_usage|cli_pipeline|cli_cluster|cli_query|cli_sweep|cli_version|Lint|Simd)'
  # Cross-check: the unaligned-load/store forms in every vector kernel run
  # under ASan via the Simd suites above; the scalar path gets the same run.
  MSAMP_SIMD=scalar ctest --test-dir build-asan --output-on-failure \
    -R '^(Simd|DatasetView)'
fi

# Bench-parallelism determinism: the parallelized benches must emit
# byte-identical stdout and bench_out/ CSVs for any MSAMP_THREADS.
scripts/check_bench_determinism.sh build

# Multi-process determinism: `msampctl fleet --shard I/N` runs (different
# thread counts per shard) merged back must equal the whole-day dataset
# byte for byte.
scripts/check_shard_determinism.sh build

# Cluster determinism: the fault-tolerant orchestrator (`msampctl cluster`,
# worker processes + spill sinks + streaming merge) must reproduce the
# single-process bytes — including with workers killed and retried under
# --fault-rate.
scripts/check_cluster_determinism.sh build

# Zero-copy read-path determinism: v6 bytes identical across MSAMP_THREADS
# and fleet-vs-merged-shards, and the mapped readers (`msampctl report`,
# `msampctl query`) emit byte-identical tables over every copy.
scripts/check_view_determinism.sh build

# SIMD determinism: every ISA path this host can run (MSAMP_SIMD=scalar/
# sse4/avx2/neon) must produce byte-identical dataset bytes, reader tables,
# and bench CSVs — and the vector kernels must actually beat scalar.
scripts/check_simd_determinism.sh build

for b in build/bench/bench_*; do
  echo "== $b"
  "$b"
done
for e in build/examples/*; do
  [ -x "$e" ] && { echo "== $e"; "$e" > /dev/null; }
done
echo "ALL CHECKS PASSED"

#!/usr/bin/env bash
# Full local check: configure, build, run the test suite, then regenerate
# every table/figure of the paper (CSV output under bench_out/).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/bench_*; do
  echo "== $b"
  "$b"
done
for e in build/examples/*; do
  [ -x "$e" ] && { echo "== $e"; "$e" > /dev/null; }
done
echo "ALL CHECKS PASSED"

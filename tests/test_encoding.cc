// Tests for the compressed run-record codec (§4.1 "compressed and stored").
#include "core/encoding.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace msamp::core {
namespace {

TEST(Varint, RoundTripValues) {
  for (std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
        0xffffffffull, 0xffffffffffffffffull}) {
    std::vector<std::uint8_t> buf;
    put_varint(buf, v);
    std::size_t pos = 0;
    const auto back = get_varint(buf, pos);
    ASSERT_TRUE(back.has_value()) << v;
    EXPECT_EQ(*back, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(Varint, SmallValuesAreOneByte) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 42);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(Varint, TruncatedFails) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 1ull << 40);
  buf.pop_back();
  std::size_t pos = 0;
  EXPECT_FALSE(get_varint(buf, pos).has_value());
}

TEST(Varint, EmptyFails) {
  std::vector<std::uint8_t> buf;
  std::size_t pos = 0;
  EXPECT_FALSE(get_varint(buf, pos).has_value());
}

TEST(ZigZag, RoundTrip) {
  for (std::int64_t v :
       std::initializer_list<std::int64_t>{0, 1, -1, 1234567, -1234567,
                                           INT64_MAX, INT64_MIN}) {
    EXPECT_EQ(unzigzag(zigzag(v)), v);
  }
  // Small magnitudes stay small after zigzag.
  EXPECT_LT(zigzag(-3), 10u);
}

RunRecord dense_record(int buckets, std::uint64_t seed) {
  RunRecord r;
  r.host = 9;
  r.start = 123 * sim::kMillisecond + 456;
  r.interval = sim::kMillisecond;
  util::Rng rng(seed);
  r.buckets.resize(static_cast<std::size_t>(buckets));
  for (auto& b : r.buckets) {
    if (rng.bernoulli(0.7)) continue;  // sparse, like a mostly-idle link
    b.in_bytes = static_cast<std::int64_t>(rng.uniform_int(1 << 21));
    b.in_retx_bytes = static_cast<std::int64_t>(rng.uniform_int(2000));
    b.out_bytes = static_cast<std::int64_t>(rng.uniform_int(1 << 16));
    b.out_retx_bytes = static_cast<std::int64_t>(rng.uniform_int(100));
    b.in_ecn_bytes = static_cast<std::int64_t>(rng.uniform_int(10000));
    b.connections = rng.uniform(0, 300);
  }
  return r;
}

TEST(CompressRun, RoundTrip) {
  const RunRecord r = dense_record(500, 3);
  const auto blob = compress_run(r);
  const auto back = decompress_run(blob);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->host, r.host);
  EXPECT_EQ(back->start, r.start);
  EXPECT_EQ(back->interval, r.interval);
  ASSERT_EQ(back->buckets.size(), r.buckets.size());
  for (std::size_t i = 0; i < r.buckets.size(); ++i) {
    EXPECT_EQ(back->buckets[i].in_bytes, r.buckets[i].in_bytes) << i;
    EXPECT_EQ(back->buckets[i].in_retx_bytes, r.buckets[i].in_retx_bytes);
    EXPECT_EQ(back->buckets[i].out_bytes, r.buckets[i].out_bytes);
    EXPECT_EQ(back->buckets[i].out_retx_bytes, r.buckets[i].out_retx_bytes);
    EXPECT_EQ(back->buckets[i].in_ecn_bytes, r.buckets[i].in_ecn_bytes);
    EXPECT_NEAR(back->buckets[i].connections, r.buckets[i].connections,
                0.0005);
  }
}

TEST(CompressRun, EmptyRunRoundTrip) {
  RunRecord r;
  r.host = 4;
  const auto back = decompress_run(compress_run(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->valid());
}

TEST(CompressRun, NeverStartedRoundTrip) {
  RunRecord r;
  r.host = 4;
  r.start = -1;  // negative start must survive (zigzag)
  r.buckets.resize(10);
  const auto back = decompress_run(compress_run(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->start, -1);
}

TEST(CompressRun, SparseRunsCompressWell) {
  // A 2000-bucket run with 3% active buckets should shrink dramatically
  // versus the raw fixed-width serialization.
  RunRecord r;
  r.host = 1;
  r.start = 0;
  r.interval = sim::kMillisecond;
  r.buckets.resize(2000);
  util::Rng rng(5);
  for (auto& b : r.buckets) {
    if (rng.bernoulli(0.03)) b.in_bytes = 1500 * 40;
  }
  const auto compressed = compress_run(r);
  const auto raw = r.serialize();
  EXPECT_LT(compressed.size() * 10, raw.size());
}

TEST(CompressRun, AllZeroRunIsTiny) {
  RunRecord r;
  r.host = 1;
  r.start = 0;
  r.interval = sim::kMillisecond;
  r.buckets.resize(2000);
  EXPECT_LT(compress_run(r).size(), 16u);
}

TEST(CompressRun, RejectsCorruption) {
  const auto blob = compress_run(dense_record(100, 7));
  {
    auto bad = blob;
    bad[0] ^= 0xff;  // magic
    EXPECT_FALSE(decompress_run(bad).has_value());
  }
  {
    auto bad = blob;
    bad.resize(bad.size() / 2);  // truncation
    EXPECT_FALSE(decompress_run(bad).has_value());
  }
  {
    auto bad = blob;
    bad.push_back(0);  // trailing garbage
    EXPECT_FALSE(decompress_run(bad).has_value());
  }
}

TEST(CompressRun, RejectsOversizedZeroRun) {
  // Hand-build a blob whose zero-run exceeds the bucket count.
  std::vector<std::uint8_t> blob{0xc5, 1};
  put_varint(blob, 1);   // host
  put_varint(blob, 0);   // start
  put_varint(blob, 1);   // interval
  put_varint(blob, 5);   // buckets
  put_varint(blob, 99);  // zero-run longer than 5
  EXPECT_FALSE(decompress_run(blob).has_value());
}

}  // namespace
}  // namespace msamp::core

// Tests for the Swift-style delay-based congestion controller.
#include "transport/swift.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "transport/tcp_connection.h"

namespace msamp::transport {
namespace {

CcConfig cfg() {
  CcConfig c;
  c.mss = 1000;
  c.init_cwnd = 10000;
  c.max_cwnd = 4 << 20;
  return c;
}

TEST(Swift, GrowsUnderTargetDelay) {
  Swift cc(cfg());
  const std::int64_t w0 = cc.cwnd();
  // First ack establishes the base RTT; low-delay acks grow the window.
  for (int i = 0; i < 20; ++i) {
    cc.on_ack(cc.cwnd(), false, i * 100000, 50 * sim::kMicrosecond);
  }
  EXPECT_GT(cc.cwnd(), w0);
}

TEST(Swift, ShrinksAboveTargetDelay) {
  Swift cc(cfg());
  cc.on_ack(1000, false, 0, 50 * sim::kMicrosecond);  // base RTT
  const std::int64_t before = cc.cwnd();
  // 1ms RTT is far above base + 80µs target.
  cc.on_ack(1000, false, sim::kSecond, sim::kMillisecond);
  EXPECT_LT(cc.cwnd(), before);
}

TEST(Swift, AtMostOneDecreasePerRtt) {
  Swift cc(cfg());
  cc.on_ack(1000, false, 0, 50 * sim::kMicrosecond);
  const std::int64_t before = cc.cwnd();
  // A burst of high-delay acks inside one RTT applies a single cut.
  cc.on_ack(1000, false, sim::kSecond, sim::kMillisecond);
  const std::int64_t after_one = cc.cwnd();
  cc.on_ack(1000, false, sim::kSecond + 10 * sim::kMicrosecond,
            sim::kMillisecond);
  cc.on_ack(1000, false, sim::kSecond + 20 * sim::kMicrosecond,
            sim::kMillisecond);
  EXPECT_EQ(cc.cwnd(), after_one);
  EXPECT_LT(after_one, before);
}

TEST(Swift, DecreaseBoundedByMaxMdf) {
  SwiftConfig sw;
  sw.max_mdf = 0.5;
  Swift cc(cfg(), sw);
  cc.on_ack(1000, false, 0, 50 * sim::kMicrosecond);
  const std::int64_t before = cc.cwnd();
  // Astronomical delay still cuts at most 50%.
  cc.on_ack(1000, false, sim::kSecond, sim::kSecond);
  EXPECT_GE(cc.cwnd(), before / 2 - 1);
}

TEST(Swift, ProportionalResponse) {
  // Slightly-over-target delay cuts less than far-over-target delay.
  Swift a(cfg()), b(cfg());
  a.on_ack(1000, false, 0, 100 * sim::kMicrosecond);
  b.on_ack(1000, false, 0, 100 * sim::kMicrosecond);
  a.on_ack(1000, false, sim::kSecond, 200 * sim::kMicrosecond);
  b.on_ack(1000, false, sim::kSecond, 800 * sim::kMicrosecond);
  EXPECT_GT(a.cwnd(), b.cwnd());
}

TEST(Swift, LossFallback) {
  Swift cc(cfg());
  const std::int64_t before = cc.cwnd();
  cc.on_loss(0);
  EXPECT_LT(cc.cwnd(), before);
  cc.on_timeout(0);
  EXPECT_EQ(cc.cwnd(), cfg().mss);
}

TEST(Swift, NeverBelowOneMss) {
  Swift cc(cfg());
  for (int i = 0; i < 50; ++i) {
    cc.on_ack(1000, false, i * sim::kSecond, sim::kSecond);
  }
  EXPECT_GE(cc.cwnd(), cfg().mss);
}

TEST(Swift, NotEcnCapable) {
  Swift cc(cfg());
  EXPECT_FALSE(cc.ecn_capable());
  EXPECT_STREQ(cc.name(), "swift");
}

TEST(Swift, EndToEndTransferCompletes) {
  sim::Simulator simulator;
  net::Rack rack(simulator, net::RackConfig{});
  TransportHost sender(rack.remote(0));
  TransportHost receiver(rack.server(0));
  TcpConfig tcp;
  tcp.cc = CcKind::kSwift;
  TcpConnection conn(simulator, 1, sender, receiver, tcp);
  conn.send_app_data(4 << 20);
  simulator.run();
  EXPECT_EQ(conn.stats().delivered_bytes, 4 << 20);
  EXPECT_TRUE(conn.idle());
  EXPECT_STREQ(conn.congestion_control().name(), "swift");
}

TEST(Swift, KeepsQueueShorterThanCubic) {
  // Delay-based control should hold a much smaller standing queue than a
  // loss-based controller filling the DT limit.
  auto run_with = [](CcKind kind) {
    sim::Simulator simulator;
    net::RackConfig rack_cfg;
    rack_cfg.tor.buffer.ecn_threshold = 1 << 30;  // ECN off for fairness
    net::Rack rack(simulator, rack_cfg);
    TransportHost sender(rack.remote(0));
    TransportHost receiver(rack.server(0));
    TcpConfig tcp;
    tcp.cc = kind;
    TcpConnection conn(simulator, 1, sender, receiver, tcp);
    conn.send_app_data(8 << 20);
    std::int64_t max_queue = 0;
    for (sim::SimTime t = 0; t < 10 * sim::kMillisecond;
         t += 100 * sim::kMicrosecond) {
      simulator.run_until(t);
      max_queue = std::max(max_queue, rack.tor().mmu().queue_len(0));
    }
    simulator.run();
    EXPECT_EQ(conn.stats().delivered_bytes, 8 << 20);
    return max_queue;
  };
  const std::int64_t swift_queue = run_with(CcKind::kSwift);
  const std::int64_t cubic_queue = run_with(CcKind::kCubic);
  EXPECT_LT(swift_queue, cubic_queue / 2);
}

}  // namespace
}  // namespace msamp::transport

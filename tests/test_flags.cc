// Tests for util::Flags, the shared --key value parser behind msampctl.
// Exercises the parse rules directly (the CLI tests in tools/ only see
// the exit-2 behavior the front end layers on top of UsageError).
#include "util/flags.h"

#include <gtest/gtest.h>

namespace msamp::util {
namespace {

/// Builds a Flags from a brace-list of tokens, prefixed by two dummy
/// tokens ("prog", "cmd") so `first = 2` mirrors the msampctl call site.
Flags parse(std::vector<std::string> tokens, std::vector<std::string> known,
            bool allow_positionals = false) {
  std::vector<std::string> storage = {"prog", "cmd"};
  storage.insert(storage.end(), tokens.begin(), tokens.end());
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data(), 2, std::move(known),
               allow_positionals);
}

TEST(Flags, ParsesKeyValuePairs) {
  const Flags f = parse({"--out", "x.bin", "--hours", "6"}, {"out", "hours"});
  EXPECT_TRUE(f.has("out"));
  EXPECT_TRUE(f.has("hours"));
  EXPECT_FALSE(f.has("seed"));
  EXPECT_EQ(f.str("out", "default"), "x.bin");
  EXPECT_EQ(f.num("hours", 24), 6);
}

TEST(Flags, AbsentFlagsKeepFallbacks) {
  const Flags f = parse({}, {"out", "hours", "rate", "shard"});
  EXPECT_EQ(f.str("out", "dataset.bin"), "dataset.bin");
  EXPECT_EQ(f.num("hours", 24), 24);
  EXPECT_DOUBLE_EQ(f.real("rate", 12.5), 12.5);
  const auto shard = f.index_count("shard", {0, 1});
  EXPECT_EQ(shard.first, 0);
  EXPECT_EQ(shard.second, 1);
}

TEST(Flags, LaterDuplicateWins) {
  const Flags f = parse({"--hours", "6", "--hours", "12"}, {"hours"});
  EXPECT_EQ(f.num("hours", 24), 12);
}

TEST(Flags, RejectsUnknownFlag) {
  EXPECT_THROW(parse({"--bogus", "1"}, {"hours"}), UsageError);
}

TEST(Flags, RejectsTrailingFlagWithoutValue) {
  EXPECT_THROW(parse({"--hours"}, {"hours"}), UsageError);
}

TEST(Flags, RejectsPositionalsUnlessAllowed) {
  EXPECT_THROW(parse({"stray"}, {"hours"}), UsageError);
  const Flags f = parse({"a.bin", "--out", "m.bin", "b.bin"}, {"out"},
                        /*allow_positionals=*/true);
  ASSERT_EQ(f.positionals().size(), 2u);
  EXPECT_EQ(f.positionals()[0], "a.bin");
  EXPECT_EQ(f.positionals()[1], "b.bin");
  EXPECT_EQ(f.str("out", ""), "m.bin");
}

TEST(Flags, NumRejectsNonIntegers) {
  for (const char* bad : {"abc", "12x", "1.5", ""}) {
    const Flags f = parse({"--hours", bad}, {"hours"});
    EXPECT_THROW(f.num("hours", 24), UsageError) << bad;
  }
}

TEST(Flags, RealParsesAndRejects) {
  const Flags f = parse({"--rate", "3.25"}, {"rate"});
  EXPECT_DOUBLE_EQ(f.real("rate", 0.0), 3.25);
  for (const char* bad : {"abc", "3.25x", ""}) {
    const Flags g = parse({"--rate", bad}, {"rate"});
    EXPECT_THROW(g.real("rate", 0.0), UsageError) << bad;
  }
}

TEST(Flags, IndexCountParsesShardPairs) {
  const Flags f = parse({"--shard", "2/5"}, {"shard"});
  const auto shard = f.index_count("shard", {0, 1});
  EXPECT_EQ(shard.first, 2);
  EXPECT_EQ(shard.second, 5);
}

TEST(Flags, IndexCountRejectsMalformedPairs) {
  // No slash, empty halves, non-numeric halves, index out of range.
  for (const char* bad : {"3", "/3", "2/", "a/3", "2/b", "2/3/4", "3/3",
                          "4/3", "-1/3", "0/0"}) {
    const Flags f = parse({"--shard", bad}, {"shard"});
    EXPECT_THROW(f.index_count("shard", {0, 1}), UsageError) << bad;
  }
}

}  // namespace
}  // namespace msamp::util

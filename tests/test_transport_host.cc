// Tests for the per-host transport demultiplexer.
#include "transport/transport_host.h"

#include "net/topology.h"
#include "transport/tcp_connection.h"

#include <gtest/gtest.h>

namespace msamp::transport {
namespace {

net::Packet pkt(net::FlowId flow) {
  net::Packet p;
  p.flow = flow;
  p.bytes = 100;
  p.is_ack = true;  // synchronous through the NIC
  return p;
}

struct HostFixture : ::testing::Test {
  sim::Simulator simulator;
  net::Host host{simulator, 1, net::LinkConfig{}, net::NicConfig{},
                 [](const net::Packet&) {}};
  TransportHost transport{host};
};

TEST_F(HostFixture, DispatchesByFlow) {
  int a = 0, b = 0;
  transport.register_flow(1, [&](const net::Packet&) { ++a; });
  transport.register_flow(2, [&](const net::Packet&) { ++b; });
  host.deliver_from_wire(pkt(1));
  host.deliver_from_wire(pkt(2));
  host.deliver_from_wire(pkt(1));
  EXPECT_EQ(a, 2);
  EXPECT_EQ(b, 1);
}

TEST_F(HostFixture, DefaultHandlerCatchesUnknownFlows) {
  int known = 0, unknown = 0;
  transport.register_flow(1, [&](const net::Packet&) { ++known; });
  transport.set_default_handler([&](const net::Packet&) { ++unknown; });
  host.deliver_from_wire(pkt(1));
  host.deliver_from_wire(pkt(99));
  EXPECT_EQ(known, 1);
  EXPECT_EQ(unknown, 1);
}

TEST_F(HostFixture, UnknownFlowWithoutDefaultIsDropped) {
  host.deliver_from_wire(pkt(42));  // must not crash
  SUCCEED();
}

TEST_F(HostFixture, UnregisterStopsDispatch) {
  int a = 0, fallback = 0;
  transport.register_flow(1, [&](const net::Packet&) { ++a; });
  transport.set_default_handler([&](const net::Packet&) { ++fallback; });
  host.deliver_from_wire(pkt(1));
  transport.unregister_flow(1);
  host.deliver_from_wire(pkt(1));
  EXPECT_EQ(a, 1);
  EXPECT_EQ(fallback, 1);
}

TEST_F(HostFixture, ReRegisterReplacesHandler) {
  int first = 0, second = 0;
  transport.register_flow(1, [&](const net::Packet&) { ++first; });
  transport.register_flow(1, [&](const net::Packet&) { ++second; });
  host.deliver_from_wire(pkt(1));
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(TransportHostLifetime, ConnectionDestructionMidFlight) {
  // Destroying a connection while its packets are still on the wire must
  // be safe: the flow is unregistered and late arrivals fall through to
  // the (absent) default handler.
  sim::Simulator simulator;
  net::Rack rack(simulator, net::RackConfig{});
  TransportHost sender(rack.remote(0));
  TransportHost receiver(rack.server(0));
  {
    TcpConnection conn(simulator, 7, sender, receiver, TcpConfig{});
    conn.send_app_data(256 << 10);
    simulator.run_until(200 * sim::kMicrosecond);  // packets in flight
  }  // connection destroyed here
  simulator.run();  // in-flight packets drain without dispatch
  SUCCEED();
}

}  // namespace
}  // namespace msamp::transport

// The umbrella header must compile standalone and expose every subsystem.
#include "msamp.h"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, AllSubsystemsVisible) {
  msamp::sim::Simulator simulator;
  msamp::util::Rng rng(1);
  msamp::core::FlowSketch sketch;
  sketch.add(rng.next());
  EXPECT_EQ(sketch.popcount(), 1);
  EXPECT_EQ(msamp::workload::kNumTaskKinds, 7);
  EXPECT_EQ(msamp::analysis::kNumRackClasses, 3);
  msamp::fleet::FleetConfig cfg;
  EXPECT_GT(cfg.fingerprint(), 0u);
  EXPECT_DOUBLE_EQ(
      msamp::net::SharedBuffer::fixed_point_share(1.0, 1), 0.5);
  EXPECT_EQ(msamp::sim::kMillisecond, 1'000'000);
}

}  // namespace

// The BufferSharingPolicy layer: factory/name round-trips, bit-exact
// parity of each policy's limit arithmetic with the pre-interface enum
// switch, the kDelayDriven control law, wire round-trip and fingerprint
// coverage of the policy parameters, and sweep-grid determinism.
#include "net/buffer_policy.h"

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/sweep.h"
#include "fleet/fleet_runner.h"
#include "fleet/wire.h"

namespace msamp::net {
namespace {

TEST(BufferPolicyNames, RoundTripThroughParse) {
  for (const BufferPolicy p :
       {BufferPolicy::kDynamicThreshold, BufferPolicy::kStaticPartition,
        BufferPolicy::kCompleteSharing, BufferPolicy::kBurstAbsorbDt,
        BufferPolicy::kDelayDriven}) {
    BufferPolicy parsed = BufferPolicy::kCompleteSharing;
    ASSERT_TRUE(parse_policy(policy_name(p), &parsed))
        << policy_name(p);
    EXPECT_EQ(parsed, p);
  }
  BufferPolicy parsed = BufferPolicy::kStaticPartition;
  EXPECT_FALSE(parse_policy("nope", &parsed));
  EXPECT_EQ(parsed, BufferPolicy::kStaticPartition) << "untouched on error";
  EXPECT_FALSE(parse_policy("", &parsed));
}

TEST(BufferPolicyFactory, BuildsTheSelectedPolicy) {
  SharedBufferConfig cfg;
  for (const BufferPolicy p :
       {BufferPolicy::kDynamicThreshold, BufferPolicy::kStaticPartition,
        BufferPolicy::kCompleteSharing, BufferPolicy::kBurstAbsorbDt,
        BufferPolicy::kDelayDriven}) {
    cfg.policy = p;
    const auto policy = make_policy(cfg, 8);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), policy_name(p));
  }
}

/// One mid-pressure queue state shared by the parity checks below.
PolicyQueueState pressured_state() {
  PolicyQueueState qs;
  qs.shared_capacity = (4 << 20) - 24 * (16 << 10);
  qs.free_shared = qs.shared_capacity / 3;
  qs.queue_len = 300 << 10;
  qs.shared_len = qs.queue_len - (16 << 10);
  qs.queues_in_quadrant = 24;
  qs.arriving_bytes = 9000;
  qs.drain_bytes_per_ms = 1562500;  // 12.5 Gbps
  return qs;
}

// Each policy must reproduce the exact arithmetic of the pre-interface
// enum switch (net/shared_buffer.cc and fleet/fluid_rack.cc before the
// refactor) — the DT-alpha=1 dataset parity guarantee rests on this.
TEST(BufferPolicyParity, DynamicThresholdMatchesSeedFormula) {
  SharedBufferConfig cfg;
  cfg.alpha = 0.7;
  cfg.policy = BufferPolicy::kDynamicThreshold;
  const auto policy = make_policy(cfg, 24);
  const PolicyQueueState qs = pressured_state();
  EXPECT_EQ(policy->policy_limit(3, qs),
            static_cast<std::int64_t>(
                cfg.alpha * static_cast<double>(qs.free_shared)));
}

TEST(BufferPolicyParity, StaticPartitionMatchesSeedFormula) {
  SharedBufferConfig cfg;
  cfg.policy = BufferPolicy::kStaticPartition;
  const auto policy = make_policy(cfg, 24);
  const PolicyQueueState qs = pressured_state();
  EXPECT_EQ(policy->policy_limit(3, qs), qs.shared_capacity / 24);
  PolicyQueueState degenerate = qs;
  degenerate.queues_in_quadrant = 0;
  EXPECT_EQ(policy->policy_limit(3, degenerate), qs.shared_capacity);
}

TEST(BufferPolicyParity, CompleteSharingMatchesSeedFormula) {
  SharedBufferConfig cfg;
  cfg.policy = BufferPolicy::kCompleteSharing;
  const auto policy = make_policy(cfg, 24);
  const PolicyQueueState qs = pressured_state();
  EXPECT_EQ(policy->policy_limit(3, qs), qs.free_shared + qs.shared_len);
}

TEST(BufferPolicyParity, BurstAbsorbBoostsOnlyFreshFastBursts) {
  SharedBufferConfig cfg;
  cfg.policy = BufferPolicy::kBurstAbsorbDt;
  cfg.alpha = 1.0;
  cfg.burst_alpha_boost = 4.0;
  const auto policy = make_policy(cfg, 24);
  PolicyQueueState qs = pressured_state();
  const auto dt =
      static_cast<std::int64_t>(static_cast<double>(qs.free_shared));
  const auto boosted =
      static_cast<std::int64_t>(4.0 * static_cast<double>(qs.free_shared));

  // No arrival history yet: anything above drain/2 is a fresh burst.
  qs.arriving_bytes = qs.drain_bytes_per_ms;
  EXPECT_EQ(policy->policy_limit(5, qs), boosted);

  // Same arrival rate again: no longer fresh (not > 2x previous).
  policy->on_enqueue(5, qs.arriving_bytes);
  EXPECT_EQ(policy->policy_limit(5, qs), dt);

  // Rate jumps past 2x the last observation: fresh again.
  qs.arriving_bytes = qs.drain_bytes_per_ms * 3;
  EXPECT_EQ(policy->policy_limit(5, qs), boosted);

  // Fast but below drain/2: never counts as a burst.
  policy->on_enqueue(5, 0);
  qs.arriving_bytes = qs.drain_bytes_per_ms / 2;
  EXPECT_EQ(policy->policy_limit(5, qs), dt);

  // Unmodeled drain (the packet MMU): the rate test is unreachable, so
  // the policy degenerates to plain DT — the seed packet-level behavior.
  qs.drain_bytes_per_ms = kInfiniteDrain;
  qs.arriving_bytes = 1 << 30;
  EXPECT_EQ(policy->policy_limit(5, qs), dt);

  // Per-queue history: queue 5's observations must not leak to queue 6.
  qs.drain_bytes_per_ms = pressured_state().drain_bytes_per_ms;
  qs.arriving_bytes = qs.drain_bytes_per_ms;
  EXPECT_EQ(policy->policy_limit(6, qs), boosted);
}

TEST(BufferPolicyDelayDriven, GainShrinksAsQueueGrows) {
  SharedBufferConfig cfg;
  cfg.policy = BufferPolicy::kDelayDriven;
  cfg.alpha = 1.0;
  cfg.delay.target_delay_ms = 0.5;
  cfg.delay.min_gain = 0.125;
  cfg.delay.max_gain = 8.0;
  cfg.delay.drain_gbps = 12.5;
  const auto policy = make_policy(cfg, 8);
  const double drain_per_ms = 12.5 * 1e9 / 8.0 / 1000.0;

  PolicyQueueState qs = pressured_state();
  // Empty queue: full max_gain headroom.
  qs.queue_len = 0;
  EXPECT_EQ(policy->policy_limit(0, qs),
            static_cast<std::int64_t>(
                8.0 * static_cast<double>(qs.free_shared)));

  // Exactly at target delay: gain 1 — plain DT.
  qs.queue_len = static_cast<std::int64_t>(0.5 * drain_per_ms);
  EXPECT_EQ(policy->policy_limit(0, qs),
            static_cast<std::int64_t>(static_cast<double>(qs.free_shared)));

  // Strictly decreasing limit as the backlog (delay) grows, down to the
  // min_gain clamp (hit exactly at delay = target/min_gain = 4ms).
  std::int64_t prev = policy->policy_limit(0, qs);
  for (int mult = 2; mult <= 8; mult *= 2) {
    qs.queue_len = static_cast<std::int64_t>(0.5 * drain_per_ms) * mult;
    const std::int64_t limit = policy->policy_limit(0, qs);
    EXPECT_LT(limit, prev) << "delay x" << mult;
    prev = limit;
  }

  // Far past target: clamped at min_gain, never negative.
  qs.queue_len = static_cast<std::int64_t>(1000.0 * drain_per_ms);
  EXPECT_EQ(policy->policy_limit(0, qs),
            static_cast<std::int64_t>(
                0.125 * static_cast<double>(qs.free_shared)));
}

TEST(BufferPolicyWire, PolicyParamsSurviveConfigRoundTrip) {
  fleet::FleetConfig cfg;
  cfg.buffer.policy = BufferPolicy::kDelayDriven;
  cfg.buffer.alpha = 2.5;
  cfg.buffer.burst_alpha_boost = 7.25;
  cfg.buffer.delay.target_delay_ms = 0.75;
  cfg.buffer.delay.min_gain = 0.0625;
  cfg.buffer.delay.max_gain = 16.0;
  cfg.buffer.delay.drain_gbps = 25.0;

  fleet::wire::Writer w;
  fleet::wire::put_config(w, cfg);
  fleet::wire::Reader r(w.out);
  fleet::FleetConfig back;
  ASSERT_TRUE(fleet::wire::get_config(r, &back));
  EXPECT_EQ(back.buffer.policy, cfg.buffer.policy);
  EXPECT_EQ(back.buffer.alpha, cfg.buffer.alpha);
  EXPECT_EQ(back.buffer.burst_alpha_boost, cfg.buffer.burst_alpha_boost);
  EXPECT_EQ(back.buffer.delay.target_delay_ms,
            cfg.buffer.delay.target_delay_ms);
  EXPECT_EQ(back.buffer.delay.min_gain, cfg.buffer.delay.min_gain);
  EXPECT_EQ(back.buffer.delay.max_gain, cfg.buffer.delay.max_gain);
  EXPECT_EQ(back.buffer.delay.drain_gbps, cfg.buffer.delay.drain_gbps);
  EXPECT_EQ(back.fingerprint(), cfg.fingerprint())
      << "round-tripped config must regenerate the same data";
}

TEST(BufferPolicyWire, OutOfRangePolicyByteRejected) {
  fleet::FleetConfig cfg;
  fleet::wire::Writer w;
  fleet::wire::put_config(w, cfg);
  // The policy byte sits right after the ecn_threshold field; find it by
  // re-serializing with every valid policy and locating the lone diff.
  fleet::FleetConfig other = cfg;
  other.buffer.policy = BufferPolicy::kDelayDriven;
  fleet::wire::Writer w2;
  fleet::wire::put_config(w2, other);
  ASSERT_EQ(w.out.size(), w2.out.size());
  std::size_t policy_at = w.out.size();
  for (std::size_t i = 0; i < w.out.size(); ++i) {
    if (w.out[i] != w2.out[i]) {
      policy_at = i;
      break;
    }
  }
  ASSERT_LT(policy_at, w.out.size());
  w.out[policy_at] =
      static_cast<std::uint8_t>(BufferPolicy::kDelayDriven) + 1;
  fleet::wire::Reader r(w.out);
  fleet::FleetConfig back;
  EXPECT_FALSE(fleet::wire::get_config(r, &back));
}

TEST(BufferPolicyFingerprint, EveryPolicyParamIsScaleRelevant) {
  const fleet::FleetConfig base;
  const std::uint64_t h0 = base.fingerprint();

  fleet::FleetConfig c = base;
  c.buffer.policy = BufferPolicy::kDelayDriven;
  EXPECT_NE(c.fingerprint(), h0);

  c = base;
  c.buffer.alpha = 0.25;
  EXPECT_NE(c.fingerprint(), h0);

  c = base;
  c.buffer.burst_alpha_boost = 2.0;
  EXPECT_NE(c.fingerprint(), h0);

  c = base;
  c.buffer.delay.target_delay_ms = 1.0;
  EXPECT_NE(c.fingerprint(), h0);

  c = base;
  c.buffer.delay.min_gain = 0.5;
  EXPECT_NE(c.fingerprint(), h0);

  c = base;
  c.buffer.delay.max_gain = 2.0;
  EXPECT_NE(c.fingerprint(), h0);

  c = base;
  c.buffer.delay.drain_gbps = 100.0;
  EXPECT_NE(c.fingerprint(), h0);

  c = base;
  c.threads = 13;
  EXPECT_EQ(c.fingerprint(), h0) << "threads never enters the fingerprint";
}

TEST(SweepGrid, ExpandsDeterministicallyWithStableNames) {
  cluster::SweepConfig cfg;
  cfg.policies = {BufferPolicy::kDynamicThreshold,
                  BufferPolicy::kStaticPartition,
                  BufferPolicy::kCompleteSharing,
                  BufferPolicy::kBurstAbsorbDt, BufferPolicy::kDelayDriven};
  cfg.alphas = {0.25, 1.0, 4.0};
  cfg.boosts = {4.0};
  cfg.target_delays_ms = {0.5};

  const auto cells = cluster::expand_grid(cfg);
  ASSERT_EQ(cells.size(), 7u);
  EXPECT_EQ(cells[0].name, "dt-a0.25");
  EXPECT_EQ(cells[1].name, "dt-a1");
  EXPECT_EQ(cells[2].name, "dt-a4");
  EXPECT_EQ(cells[3].name, "static");
  EXPECT_EQ(cells[4].name, "complete");
  EXPECT_EQ(cells[5].name, "burst-absorb-b4");
  EXPECT_EQ(cells[6].name, "delay-d0.5");
  EXPECT_EQ(cells[1].config.buffer.alpha, 1.0);
  EXPECT_EQ(cells[6].config.buffer.delay.target_delay_ms, 0.5);

  // Same config -> same cells with same fingerprints; all fingerprints
  // distinct (each cell is its own dataset identity).
  const auto again = cluster::expand_grid(cfg);
  ASSERT_EQ(again.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(again[i].name, cells[i].name);
    EXPECT_EQ(again[i].config.fingerprint(), cells[i].config.fingerprint());
    for (std::size_t j = i + 1; j < cells.size(); ++j) {
      EXPECT_NE(cells[i].config.fingerprint(), cells[j].config.fingerprint())
          << cells[i].name << " vs " << cells[j].name;
    }
  }
}

/// Keeps MSAMP_THREADS from overriding the per-test thread counts.
class ScopedNoEnvThreads {
 public:
  ScopedNoEnvThreads() {
    const char* v = std::getenv("MSAMP_THREADS");
    if (v != nullptr) saved_ = v;
    unsetenv("MSAMP_THREADS");
  }
  ~ScopedNoEnvThreads() {
    if (!saved_.empty()) setenv("MSAMP_THREADS", saved_.c_str(), 1);
  }

 private:
  std::string saved_;
};

// Dataset-level determinism through the interface: for the deployed
// DT-alpha=1 config and for the new kDelayDriven policy, any thread count
// produces byte-identical serialized datasets.
TEST(BufferPolicyFleet, DatasetBytesInvariantAcrossThreads) {
  ScopedNoEnvThreads no_env;
  fleet::FleetConfig base;
  base.racks_per_region = 3;
  base.servers_per_rack = 24;
  base.hours = 2;
  base.samples_per_run = 100;
  base.warmup_ms = 10;
  for (const BufferPolicy policy :
       {BufferPolicy::kDynamicThreshold, BufferPolicy::kDelayDriven}) {
    fleet::FleetConfig serial = base;
    serial.buffer.policy = policy;
    serial.threads = 1;
    const std::vector<std::uint8_t> blob =
        fleet::run_fleet(serial).serialize();
    fleet::FleetConfig parallel = serial;
    parallel.threads = 3;
    EXPECT_TRUE(fleet::run_fleet(parallel).serialize() == blob)
        << "policy " << policy_name(policy);
  }
}

}  // namespace
}  // namespace msamp::net

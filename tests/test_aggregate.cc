// Tests for the dataset-level aggregation library (fleet/aggregate).
// Aggregations consume a DatasetView, so the hand-rolled fixture is
// serialized to a v6 blob and attached — the same read path production
// uses.
#include "fleet/aggregate.h"

#include <gtest/gtest.h>

namespace msamp::fleet {
namespace {

BurstRecord burst(std::uint32_t rack, int region, int len, double conns,
                  int max_contention, bool lossy) {
  BurstRecord b;
  b.rack_id = rack;
  b.region = static_cast<std::uint8_t>(region);
  b.len_ms = static_cast<std::uint16_t>(len);
  b.avg_conns = static_cast<float>(conns);
  b.max_contention = static_cast<std::uint16_t>(max_contention);
  b.contended = max_contention >= 2 ? 1 : 0;
  b.lossy = lossy ? 1 : 0;
  return b;
}

Dataset make_dataset() {
  Dataset ds;
  // Canonical scale so the v6 blob validates: 2 racks per region x 2
  // hours = 8 windows, 4 racks.
  ds.config.racks_per_region = 2;
  ds.config.hours = 2;
  ds.window_begin = 0;
  ds.window_end = 8;
  // Rack 1: RegA typical; rack 2: RegA high; racks 3-4: RegB.
  for (std::uint32_t id : {1u, 2u, 3u, 4u}) {
    RackInfo info;
    info.rack_id = id;
    info.region = id >= 3 ? 1 : 0;
    info.rack_class = static_cast<std::uint8_t>(
        id == 2 ? analysis::RackClass::kRegAHigh
                : (id >= 3 ? analysis::RackClass::kRegB
                           : analysis::RackClass::kRegATypical));
    ds.racks.push_back(info);
  }
  // Typical: 4 bursts (1 lossy, 2 contended).
  ds.bursts.push_back(burst(1, 0, 1, 5, 1, false));
  ds.bursts.push_back(burst(1, 0, 3, 25, 4, true));
  ds.bursts.push_back(burst(1, 0, 8, 55, 6, false));
  ds.bursts.push_back(burst(1, 0, 2, 10, 1, false));
  // High: 2 bursts, all contended, none lossy.
  ds.bursts.push_back(burst(2, 0, 5, 8, 12, false));
  ds.bursts.push_back(burst(2, 0, 6, 9, 15, false));
  // RegB: 1 contended lossy burst.
  ds.bursts.push_back(burst(3, 1, 4, 40, 7, true));

  // Rack runs across two hours, region split.
  for (int hour : {5, 6}) {
    for (std::uint32_t id : {1u, 2u, 3u}) {
      RackRunRecord rr;
      rr.rack_id = id;
      rr.region = id == 3 ? 1 : 0;
      rr.hour = static_cast<std::uint8_t>(hour);
      rr.avg_contention = static_cast<float>(id) + (hour == 6 ? 0.5f : 0.0f);
      ds.rack_runs.push_back(rr);
    }
  }

  // Window directory: 8 windows; the first 6 carry the rack runs (one
  // each, vector order), window 0 carries every burst.  The aggregations
  // scan whole columns, so the partition is free-form as long as the
  // totals tie out.
  ds.window_counts.assign(8, WindowCounts{});
  for (int w = 0; w < 6; ++w) ds.window_counts[w].has_run = 1;
  ds.window_counts[0].bursts = static_cast<std::uint32_t>(ds.bursts.size());
  return ds;
}

/// The fixture every test reads through: the dataset above, serialized
/// to v6 and attached as a zero-copy view.
struct Fixture {
  Dataset ds = make_dataset();
  std::vector<std::uint8_t> blob = ds.serialize();
  DatasetView view;

  Fixture() {
    const auto st = DatasetView::attach(blob.data(), blob.size(), &view);
    EXPECT_TRUE(st) << st.to_string();
  }
};

TEST(Aggregate, ClassMapAndBurstClass) {
  const Fixture f;
  const ClassMap classes = build_class_map(f.view);
  EXPECT_EQ(classes.at(1), analysis::RackClass::kRegATypical);
  EXPECT_EQ(classes.at(2), analysis::RackClass::kRegAHigh);
  EXPECT_EQ(burst_class(f.ds.bursts[0], classes),
            analysis::RackClass::kRegATypical);
  EXPECT_EQ(burst_class(f.ds.bursts[4], classes),
            analysis::RackClass::kRegAHigh);
  EXPECT_EQ(burst_class(f.ds.bursts[6], classes), analysis::RackClass::kRegB);
  // Unknown RegA rack defaults to typical.
  BurstRecord stray = f.ds.bursts[0];
  stray.rack_id = 999;
  EXPECT_EQ(burst_class(stray, classes), analysis::RackClass::kRegATypical);
}

TEST(Aggregate, Table2Summary) {
  const Fixture f;
  const auto summary = table2_summary(f.view, build_class_map(f.view));
  const auto& typical =
      summary[static_cast<std::size_t>(analysis::RackClass::kRegATypical)];
  EXPECT_EQ(typical.bursts, 4);
  EXPECT_EQ(typical.contended, 2);
  EXPECT_EQ(typical.lossy, 1);
  EXPECT_DOUBLE_EQ(typical.pct_contended(), 50.0);
  EXPECT_DOUBLE_EQ(typical.pct_lossy(), 25.0);
  const auto& high =
      summary[static_cast<std::size_t>(analysis::RackClass::kRegAHigh)];
  EXPECT_EQ(high.bursts, 2);
  EXPECT_DOUBLE_EQ(high.pct_contended(), 100.0);
  EXPECT_DOUBLE_EQ(high.pct_lossy(), 0.0);
  const auto& regb =
      summary[static_cast<std::size_t>(analysis::RackClass::kRegB)];
  EXPECT_EQ(regb.bursts, 1);
  EXPECT_DOUBLE_EQ(regb.pct_lossy(), 100.0);
}

TEST(Aggregate, EmptyStatsAreZero) {
  ClassBurstStats empty;
  EXPECT_DOUBLE_EQ(empty.pct_contended(), 0.0);
  EXPECT_DOUBLE_EQ(empty.pct_lossy(), 0.0);
}

TEST(Aggregate, LossByContention) {
  const Fixture f;
  const auto curve = loss_by_contention(f.view, build_class_map(f.view),
                                        analysis::RackClass::kRegATypical,
                                        /*bin_width=*/3, /*max=*/9);
  ASSERT_EQ(curve.size(), 3u);
  // Contention 1,1 -> bin 0; 4 -> bin 1; 6 -> bin 2.
  EXPECT_EQ(curve[0].bursts, 2);
  EXPECT_EQ(curve[0].lossy, 0);
  EXPECT_EQ(curve[1].bursts, 1);
  EXPECT_EQ(curve[1].lossy, 1);
  EXPECT_DOUBLE_EQ(curve[1].pct_lossy(), 100.0);
  EXPECT_EQ(curve[2].bursts, 1);
}

TEST(Aggregate, LossByContentionClampsOverflow) {
  const Fixture f;
  const auto curve =
      loss_by_contention(f.view, build_class_map(f.view),
                         analysis::RackClass::kRegAHigh, 3, 9);
  // Contentions 12 and 15 clamp into the last bin.
  EXPECT_EQ(curve.back().bursts, 2);
}

TEST(Aggregate, LossByLengthAndFilter) {
  const Fixture f;
  const ClassMap classes = build_class_map(f.view);
  const auto all = loss_by_length(f.view, classes,
                                  analysis::RackClass::kRegATypical,
                                  BurstFilter::kAll, 10);
  ASSERT_EQ(all.size(), 10u);
  EXPECT_EQ(all[0].bursts, 1);  // the 1ms burst
  EXPECT_EQ(all[2].bursts, 1);  // the 3ms lossy burst
  EXPECT_EQ(all[2].lossy, 1);

  const auto contended = loss_by_length(
      f.view, classes, analysis::RackClass::kRegATypical,
      BurstFilter::kContended, 10);
  EXPECT_EQ(contended[0].bursts, 0);  // the 1ms burst was not contended
  EXPECT_EQ(contended[2].bursts, 1);

  const auto non = loss_by_length(f.view, classes,
                                  analysis::RackClass::kRegATypical,
                                  BurstFilter::kNonContended, 10);
  EXPECT_EQ(non[0].bursts, 1);
  EXPECT_EQ(non[2].bursts, 0);
}

TEST(Aggregate, LossByConnections) {
  const Fixture f;
  const auto curve = loss_by_connections(
      f.view, build_class_map(f.view), analysis::RackClass::kRegATypical,
      BurstFilter::kAll, /*bin_width=*/10, /*num_bins=*/6);
  ASSERT_EQ(curve.size(), 6u);
  EXPECT_EQ(curve[0].bursts, 1);  // conns 5
  EXPECT_EQ(curve[1].bursts, 1);  // conns 10
  EXPECT_EQ(curve[2].bursts, 1);  // conns 25
  EXPECT_EQ(curve[2].lossy, 1);
  EXPECT_EQ(curve[5].bursts, 1);  // conns 55 clamps into last bin
}

TEST(Aggregate, BusyHourContention) {
  const Fixture f;
  const auto rega =
      busy_hour_contention(f.view, workload::RegionId::kRegA, 6);
  ASSERT_EQ(rega.size(), 2u);  // racks 1 and 2
  EXPECT_FLOAT_EQ(static_cast<float>(rega[0]), 1.5f);
  EXPECT_FLOAT_EQ(static_cast<float>(rega[1]), 2.5f);
  const auto regb =
      busy_hour_contention(f.view, workload::RegionId::kRegB, 6);
  ASSERT_EQ(regb.size(), 1u);
  EXPECT_FLOAT_EQ(static_cast<float>(regb[0]), 3.5f);
}

}  // namespace
}  // namespace msamp::fleet

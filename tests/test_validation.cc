// The paper's §4.5 validation experiments, reproduced as integration tests:
//   1. multicast bursts are observed by all rack servers in the same
//      SyncMillisampler sample (Figure 3);
//   2. the burst-generator tool's five simultaneous bursts are identified
//      as contention level 5 by the post-analysis (Figure 4).
#include <gtest/gtest.h>

#include "analysis/burst_detect.h"
#include "analysis/contention.h"
#include "core/sync_controller.h"
#include "net/topology.h"
#include "transport/transport_host.h"
#include "workload/burst_generator_tool.h"
#include "workload/multicast_tool.h"

namespace msamp {
namespace {

TEST(Validation, MulticastBurstsAlignAcrossServers) {
  sim::Simulator simulator;
  net::RackConfig rack_cfg;
  rack_cfg.num_servers = 8;
  rack_cfg.num_remote_hosts = 1;
  net::Rack rack(simulator, rack_cfg);

  const net::HostId group = net::kMulticastBase + 1;
  for (int i = 0; i < 8; ++i) rack.subscribe_multicast(group, i);

  // NTP-grade clocks.
  util::Rng rng(11);
  core::ClockModelConfig clock_cfg;
  core::ClockModel clocks(clock_cfg, 8, rng);

  core::SamplerConfig sampler_cfg;
  sampler_cfg.filter.num_buckets = 250;  // 250ms window at 1ms
  sampler_cfg.filter.num_cpus = 2;
  sampler_cfg.grace = 20 * sim::kMillisecond;

  std::vector<std::unique_ptr<core::Sampler>> samplers;
  core::SyncController controller(simulator);
  for (int i = 0; i < 8; ++i) {
    samplers.push_back(std::make_unique<core::Sampler>(
        simulator, rack.server(i), clocks.offset(i), sampler_cfg));
    controller.add_sampler(samplers.back().get());
  }

  workload::MulticastToolConfig tool_cfg;
  tool_cfg.group = group;
  tool_cfg.period = 100 * sim::kMillisecond;
  workload::MulticastTool tool(simulator, rack.remote(0), tool_cfg);
  tool.start(600 * sim::kMillisecond);

  core::SyncRun sync;
  ASSERT_TRUE(controller.collect(sim::kMillisecond, sim::kMillisecond,
                                 [&](const core::SyncRun& s) { sync = s; }));
  simulator.run();

  ASSERT_EQ(sync.num_servers(), 8u);
  ASSERT_GT(sync.num_samples(), 100u);

  // Each server's peak-rate sample must land on the same grid index
  // (the Figure 3 overlap property).
  std::vector<std::size_t> peak(8, 0);
  for (std::size_t s = 0; s < 8; ++s) {
    std::int64_t best = -1;
    for (std::size_t k = 0; k < sync.num_samples(); ++k) {
      if (sync.series[s][k].in_bytes > best) {
        best = sync.series[s][k].in_bytes;
        peak[s] = k;
      }
    }
    EXPECT_GT(best, 0);
  }
  for (std::size_t s = 1; s < 8; ++s) {
    EXPECT_NEAR(static_cast<double>(peak[s]), static_cast<double>(peak[0]),
                1.0);
  }
  EXPECT_GE(tool.bursts_sent(), 3u);
}

TEST(Validation, BurstGeneratorContentionIdentified) {
  sim::Simulator simulator;
  net::RackConfig rack_cfg;
  rack_cfg.num_servers = 5;
  rack_cfg.num_remote_hosts = 5;
  net::Rack rack(simulator, rack_cfg);

  std::vector<std::unique_ptr<transport::TransportHost>> clients, servers;
  for (int i = 0; i < 5; ++i) {
    clients.push_back(
        std::make_unique<transport::TransportHost>(rack.server(i)));
    servers.push_back(
        std::make_unique<transport::TransportHost>(rack.remote(i)));
  }

  util::Rng rng(12);
  core::ClockModelConfig clock_cfg;
  core::ClockModel clocks(clock_cfg, 5, rng);

  core::SamplerConfig sampler_cfg;
  sampler_cfg.filter.num_buckets = 400;
  sampler_cfg.filter.num_cpus = 2;
  sampler_cfg.grace = 20 * sim::kMillisecond;
  std::vector<std::unique_ptr<core::Sampler>> samplers;
  core::SyncController controller(simulator);
  for (int i = 0; i < 5; ++i) {
    samplers.push_back(std::make_unique<core::Sampler>(
        simulator, rack.server(i), clocks.offset(i), sampler_cfg));
    controller.add_sampler(samplers.back().get());
  }

  // Five clients in one rack, five sending servers across the fabric
  // (§4.5: "five servers spread across five racks").
  std::vector<std::unique_ptr<workload::BurstGeneratorTool>> tools;
  workload::BurstGeneratorConfig tool_cfg;
  tool_cfg.burst_volume = 1800 * 1000;
  tool_cfg.period = 150 * sim::kMillisecond;
  for (int i = 0; i < 5; ++i) {
    tools.push_back(std::make_unique<workload::BurstGeneratorTool>(
        simulator, *clients[i], *servers[i],
        /*data_flow=*/100 + i, /*request_flow=*/200 + i, tool_cfg,
        clocks.offset(i)));
    tools.back()->start(800 * sim::kMillisecond);
  }

  core::SyncRun sync;
  controller.collect(sim::kMillisecond, sim::kMillisecond,
                     [&](const core::SyncRun& s) { sync = s; });
  simulator.run();

  for (const auto& tool : tools) {
    EXPECT_GE(tool->bursts_requested(), 2u);
    EXPECT_GT(tool->bytes_delivered(), 0);
  }

  ASSERT_EQ(sync.num_servers(), 5u);
  analysis::BurstDetectConfig burst_cfg;
  const auto contention = analysis::contention_series(sync, burst_cfg);
  const auto summary = analysis::summarize_contention(contention);
  // The post-analysis must identify all 5 simultaneously bursty servers.
  EXPECT_EQ(summary.max, 5);

  // Each server saw multi-ms bursts of roughly the requested volume.
  for (std::size_t s = 0; s < 5; ++s) {
    const auto bursts = analysis::detect_bursts(sync.series[s], burst_cfg);
    ASSERT_GE(bursts.size(), 1u);
    std::int64_t biggest = 0;
    std::size_t len = 0;
    for (const auto& b : bursts) {
      if (b.volume_bytes > biggest) {
        biggest = b.volume_bytes;
        len = b.len;
      }
    }
    EXPECT_GT(biggest, 1000 * 1000);
    EXPECT_GE(len, 1u);
    EXPECT_LE(len, 8u);
  }
}

}  // namespace
}  // namespace msamp

// Tests for the sharded generation API: ShardSpec partition math, the
// WindowSink streaming contract, and merge_datasets validation + the
// byte-identity guarantee (merged shards == single-process run).
#include "fleet/shard.h"

#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fleet/fleet_runner.h"
#include "fleet/merge.h"

namespace msamp::fleet {
namespace {

// Small enough for unit tests, big enough that uneven shard splits and
// both regions' racks are exercised (2 regions x 3 racks x 2 hours = 12
// windows).
FleetConfig tiny_config() {
  FleetConfig cfg;
  cfg.racks_per_region = 3;
  cfg.servers_per_rack = 12;
  cfg.hours = 2;
  cfg.samples_per_run = 60;
  cfg.warmup_ms = 5;
  cfg.threads = 2;
  return cfg;
}

std::size_t total_windows(const FleetConfig& cfg) {
  return static_cast<std::size_t>(2) * cfg.racks_per_region * cfg.hours;
}

TEST(Shard, SpecValidity) {
  EXPECT_TRUE((ShardSpec{0, 1}).valid());
  EXPECT_TRUE((ShardSpec{2, 3}).valid());
  EXPECT_FALSE((ShardSpec{0, 0}).valid());
  EXPECT_FALSE((ShardSpec{3, 3}).valid());
  EXPECT_TRUE((ShardSpec{0, 1}).full_range());
  EXPECT_FALSE((ShardSpec{0, 2}).full_range());
}

TEST(Shard, FullRangeSpecCoversEverything) {
  const ShardSpec whole{0, 1};
  EXPECT_EQ(whole.begin(12), 0u);
  EXPECT_EQ(whole.end(12), 12u);
  EXPECT_EQ(whole.begin(0), 0u);
  EXPECT_EQ(whole.end(0), 0u);
}

TEST(Shard, PartitionCoversEveryWindowExactlyOnce) {
  // For a range of totals and shard counts — including counts larger than
  // the window count, which must yield empty trailing shards — the slices
  // tile [0, total) contiguously with balanced sizes.
  for (std::size_t total : {0u, 1u, 5u, 12u, 96u, 97u}) {
    for (std::uint32_t count : {1u, 2u, 3u, 5u, 7u, 16u, 100u}) {
      std::size_t expect_begin = 0;
      for (std::uint32_t i = 0; i < count; ++i) {
        const ShardSpec s{i, count};
        ASSERT_TRUE(s.valid());
        ASSERT_EQ(s.begin(total), expect_begin)
            << "total=" << total << " shard=" << i << "/" << count;
        ASSERT_GE(s.end(total), s.begin(total));
        // Balanced: no shard differs from the ideal by a full window.
        const std::size_t size = s.end(total) - s.begin(total);
        ASSERT_LE(size, total / count + 1);
        expect_begin = s.end(total);
      }
      ASSERT_EQ(expect_begin, total) << "total=" << total << " n=" << count;
    }
  }
}

TEST(Shard, RunnerRejectsInvalidSpec) {
  const FleetConfig cfg = tiny_config();
  DatasetBuilder sink(cfg);
  EXPECT_THROW(run_fleet(cfg, ShardSpec{0, 0}, sink), std::invalid_argument);
  EXPECT_THROW(run_fleet(cfg, ShardSpec{5, 5}, sink), std::invalid_argument);
  EXPECT_THROW(DatasetBuilder(cfg, ShardSpec{2, 2}), std::invalid_argument);
}

// Sink that records the window indices it was handed, to check the
// streaming contract directly (canonical order, exact slice coverage).
class RecordingSink : public WindowSink {
 public:
  void on_window(std::size_t window, WindowRecords&& records) override {
    windows.push_back(window);
    runs += records.has_run ? 1 : 0;
  }
  std::vector<std::size_t> windows;
  int runs = 0;
};

TEST(Shard, SinkReceivesCanonicalOrderSlice) {
  const FleetConfig cfg = tiny_config();
  const ShardSpec shard{1, 3};
  RecordingSink sink;
  std::vector<double> fractions;
  run_fleet(cfg, shard, sink,
            [&](double f) { fractions.push_back(f); });

  const std::size_t total = total_windows(cfg);
  ASSERT_EQ(sink.windows.size(), shard.end(total) - shard.begin(total));
  for (std::size_t i = 0; i < sink.windows.size(); ++i) {
    EXPECT_EQ(sink.windows[i], shard.begin(total) + i);
  }
  // Progress is strictly increasing and ends at exactly 1.0.
  ASSERT_FALSE(fractions.empty());
  for (std::size_t i = 1; i < fractions.size(); ++i) {
    EXPECT_GT(fractions[i], fractions[i - 1]);
  }
  EXPECT_DOUBLE_EQ(fractions.back(), 1.0);
}

TEST(Shard, EmptyShardStillReportsCompletion) {
  // More shards than windows: the trailing shards own empty slices but
  // must still drive progress to 1.0 and produce a valid (empty) dataset.
  FleetConfig cfg = tiny_config();
  cfg.hours = 1;
  const std::size_t total = total_windows(cfg);  // 6 windows
  const ShardSpec shard{50, 100};
  ASSERT_EQ(shard.begin(total), shard.end(total));

  DatasetBuilder builder(cfg, shard);
  std::vector<double> fractions;
  run_fleet(cfg, shard, builder,
            [&](double f) { fractions.push_back(f); });
  ASSERT_EQ(fractions.size(), 1u);
  EXPECT_DOUBLE_EQ(fractions.back(), 1.0);

  const Dataset ds = builder.take();
  EXPECT_EQ(ds.window_begin, ds.window_end);
  EXPECT_TRUE(ds.window_counts.empty());
  EXPECT_TRUE(ds.rack_runs.empty());
  // The rack table is still carried in full.
  EXPECT_EQ(ds.racks.size(), total_windows(cfg) / cfg.hours);
}

TEST(Shard, BuilderRejectsOutOfOrderWindows) {
  const FleetConfig cfg = tiny_config();
  DatasetBuilder builder(cfg, ShardSpec{0, 1});
  builder.on_window(0, WindowRecords{});
  EXPECT_THROW(builder.on_window(2, WindowRecords{}), std::logic_error);
  DatasetBuilder incomplete(cfg, ShardSpec{0, 1});
  EXPECT_THROW(incomplete.take(), std::logic_error);
}

// Generates the given shard of `cfg` into a Dataset.
Dataset make_shard(const FleetConfig& cfg, std::uint32_t index,
                   std::uint32_t count) {
  DatasetBuilder builder(cfg, ShardSpec{index, count});
  run_fleet(cfg, ShardSpec{index, count}, builder);
  return builder.take();
}

std::vector<Dataset> make_shards(const FleetConfig& cfg,
                                 std::uint32_t count) {
  std::vector<Dataset> shards;
  for (std::uint32_t i = 0; i < count; ++i) {
    shards.push_back(make_shard(cfg, i, count));
  }
  return shards;
}

TEST(Merge, ThreeShardsByteIdenticalToWholeRun) {
  const FleetConfig cfg = tiny_config();
  const Dataset whole = run_fleet(cfg);

  std::string error;
  const auto merged = merge_datasets(make_shards(cfg, 3), &error);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(merged->serialize(), whole.serialize());
}

TEST(Merge, ShardOrderDoesNotMatter) {
  const FleetConfig cfg = tiny_config();
  const Dataset whole = run_fleet(cfg);

  std::vector<Dataset> shards = make_shards(cfg, 3);
  std::swap(shards[0], shards[2]);
  const auto merged = merge_datasets(std::move(shards));
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->serialize(), whole.serialize());
}

TEST(Merge, SingleFullShardMerges) {
  const FleetConfig cfg = tiny_config();
  const Dataset whole = run_fleet(cfg);
  const auto merged = merge_datasets(make_shards(cfg, 1));
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->serialize(), whole.serialize());
}

TEST(Merge, MoreShardsThanWindowsStillMerges) {
  // 12 windows split 16 ways -> several empty shards; the fold must
  // still reproduce the single-run bytes.
  const FleetConfig cfg = tiny_config();
  const Dataset whole = run_fleet(cfg);
  std::string error;
  const auto merged = merge_datasets(make_shards(cfg, 16), &error);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(merged->serialize(), whole.serialize());
}

TEST(Merge, RejectsMissingShard) {
  const FleetConfig cfg = tiny_config();
  std::vector<Dataset> shards = make_shards(cfg, 3);
  shards.pop_back();
  std::string error;
  EXPECT_FALSE(merge_datasets(std::move(shards), &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Merge, RejectsDuplicateShard) {
  const FleetConfig cfg = tiny_config();
  std::vector<Dataset> shards = make_shards(cfg, 3);
  shards[2] = shards[1];  // two copies of shard 1, none of shard 2
  std::string error;
  EXPECT_FALSE(merge_datasets(std::move(shards), &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Merge, RejectsMismatchedFingerprint) {
  const FleetConfig cfg = tiny_config();
  FleetConfig other = cfg;
  other.seed = 43;
  std::vector<Dataset> shards = make_shards(cfg, 2);
  shards[1] = make_shard(other, 1, 2);
  std::string error;
  EXPECT_FALSE(merge_datasets(std::move(shards), &error).has_value());
  EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
}

TEST(Merge, RejectsMismatchedShardCount) {
  const FleetConfig cfg = tiny_config();
  std::vector<Dataset> shards = make_shards(cfg, 2);
  shards[1] = make_shard(cfg, 1, 3);  // claims a 3-way split
  std::string error;
  EXPECT_FALSE(merge_datasets(std::move(shards), &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Merge, RejectsTamperedCountTable) {
  const FleetConfig cfg = tiny_config();
  std::vector<Dataset> shards = make_shards(cfg, 2);
  // Drop a record without touching the count table: sums disagree.
  ASSERT_FALSE(shards[0].rack_runs.empty());
  shards[0].rack_runs.pop_back();
  std::string error;
  EXPECT_FALSE(merge_datasets(std::move(shards), &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Merge, RejectsEmptyInput) {
  std::string error;
  EXPECT_FALSE(merge_datasets({}, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Merge, TruncatedShardFileFailsToLoad) {
  // The on-disk path: a truncated shard file must fail Dataset::load (and
  // therefore never reach merge_datasets with bogus contents).
  const FleetConfig cfg = tiny_config();
  const Dataset shard = make_shard(cfg, 0, 2);
  const std::string path = "test_shard_truncated.bin";
  ASSERT_TRUE(shard.save(path));
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 7);
  Dataset loaded;
  EXPECT_FALSE(loaded.load(path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace msamp::fleet

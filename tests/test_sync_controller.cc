// Tests for SyncMillisampler: combine/trim semantics and the coordinated
// collection across a rack's samplers.
#include "core/sync_controller.h"

#include <gtest/gtest.h>

namespace msamp::core {
namespace {

RunRecord record(net::HostId host, sim::SimTime start, int buckets,
                 std::int64_t fill) {
  RunRecord r;
  r.host = host;
  r.start = start;
  r.interval = sim::kMillisecond;
  r.buckets.resize(static_cast<std::size_t>(buckets));
  for (auto& b : r.buckets) b.in_bytes = fill;
  return r;
}

TEST(CombineRuns, TrimsToCommonWindow) {
  // Host A spans [0, 10ms); host B spans [3ms, 13ms).  The overlap is
  // [3ms, 10ms) -> 7 samples.
  const auto sync = combine_runs(
      {record(0, 0, 10, 100), record(1, 3 * sim::kMillisecond, 10, 200)});
  EXPECT_EQ(sync.grid_start, 3 * sim::kMillisecond);
  EXPECT_EQ(sync.num_samples(), 7u);
  EXPECT_EQ(sync.num_servers(), 2u);
  // A's samples at the shifted grid still read 100 (constant series).
  EXPECT_EQ(sync.series[0][0].in_bytes, 100);
  EXPECT_EQ(sync.series[1][0].in_bytes, 200);
}

TEST(CombineRuns, AverageTrimmedLengthMatchesPaperRatio) {
  // §5: ~2s nominal runs trim to ~1.85s on average; with sub-ms skew the
  // trim loss must be at most a couple of buckets.
  const auto sync = combine_runs({
      record(0, 0, 2000, 1),
      record(1, 300 * sim::kMicrosecond, 2000, 1),
      record(2, 700 * sim::kMicrosecond, 2000, 1),
  });
  EXPECT_GE(sync.num_samples(), 1998u);
}

TEST(CombineRuns, EmptyInput) {
  const auto sync = combine_runs({});
  EXPECT_EQ(sync.num_servers(), 0u);
  EXPECT_EQ(sync.num_samples(), 0u);
}

TEST(CombineRuns, AllInvalidYieldsEmpty) {
  RunRecord never_started;
  never_started.host = 3;
  never_started.interval = sim::kMillisecond;
  const auto sync = combine_runs({never_started});
  EXPECT_EQ(sync.num_samples(), 0u);
}

TEST(CombineRuns, IdleHostGetsZeroSeries) {
  RunRecord idle;
  idle.host = 7;
  idle.interval = sim::kMillisecond;
  const auto sync = combine_runs({record(0, 0, 10, 50), idle});
  ASSERT_EQ(sync.num_servers(), 2u);
  EXPECT_EQ(sync.hosts[1], 7u);
  for (const auto& s : sync.series[1]) EXPECT_EQ(s.in_bytes, 0);
}

TEST(CombineRuns, DisjointWindowsYieldEmpty) {
  const auto sync = combine_runs(
      {record(0, 0, 5, 1), record(1, 100 * sim::kMillisecond, 5, 1)});
  EXPECT_EQ(sync.num_samples(), 0u);
}

TEST(CombineRuns, DurationHelper) {
  const auto sync = combine_runs({record(0, 0, 10, 1)});
  EXPECT_EQ(sync.duration(), 10 * sim::kMillisecond);
}

struct ControllerFixture : ::testing::Test {
  sim::Simulator simulator;
  std::vector<std::unique_ptr<net::Host>> hosts;
  std::vector<std::unique_ptr<Sampler>> samplers;
  SyncController controller{simulator};

  void make(int n, sim::SimDuration clock_spread = 0) {
    SamplerConfig cfg;
    cfg.filter.num_buckets = 20;
    cfg.filter.num_cpus = 2;
    cfg.grace = 5 * sim::kMillisecond;
    for (int i = 0; i < n; ++i) {
      hosts.push_back(std::make_unique<net::Host>(
          simulator, static_cast<net::HostId>(i), net::LinkConfig{},
          net::NicConfig{}, [](const net::Packet&) {}));
      const sim::SimDuration offset =
          clock_spread == 0 ? 0 : (i * clock_spread) / n;
      samplers.push_back(
          std::make_unique<Sampler>(simulator, *hosts.back(), offset, cfg));
      controller.add_sampler(samplers.back().get());
    }
  }

  void traffic_all(sim::SimDuration period, sim::SimTime until) {
    for (sim::SimTime t = 0; t < until; t += period) {
      simulator.schedule_at(t, [this] {
        for (auto& h : hosts) {
          net::Packet p;
          p.flow = 9;
          p.bytes = 500;
          p.is_ack = true;
          h->deliver_from_wire(p);
        }
      });
    }
  }
};

TEST_F(ControllerFixture, CollectsAlignedRun) {
  make(4);
  traffic_all(sim::kMillisecond, 100 * sim::kMillisecond);
  SyncRun sync;
  bool done = false;
  ASSERT_TRUE(controller.collect(sim::kMillisecond, 10 * sim::kMillisecond,
                                 [&](const SyncRun& s) {
                                   sync = s;
                                   done = true;
                                 }));
  simulator.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(sync.num_servers(), 4u);
  EXPECT_GE(sync.num_samples(), 18u);
  // Every aligned series carries the per-ms traffic.
  for (const auto& series : sync.series) {
    EXPECT_EQ(series[2].in_bytes, 500);
  }
}

TEST_F(ControllerFixture, SkewedClocksStillAlign) {
  make(4, 800 * sim::kMicrosecond);  // spread just under one bucket
  traffic_all(sim::kMillisecond, 100 * sim::kMillisecond);
  SyncRun sync;
  controller.collect(sim::kMillisecond, 10 * sim::kMillisecond,
                     [&](const SyncRun& s) { sync = s; });
  simulator.run();
  ASSERT_GE(sync.num_samples(), 17u);
  // Interpolated values remain close to the true 500B/ms everywhere.
  for (const auto& series : sync.series) {
    for (std::size_t k = 1; k + 1 < sync.num_samples(); ++k) {
      EXPECT_NEAR(static_cast<double>(series[k].in_bytes), 500.0, 5.0);
    }
  }
}

TEST_F(ControllerFixture, SecondCollectWhilePendingFails) {
  make(2);
  traffic_all(sim::kMillisecond, 100 * sim::kMillisecond);
  EXPECT_TRUE(controller.collect(sim::kMillisecond, sim::kMillisecond,
                                 [](const SyncRun&) {}));
  EXPECT_FALSE(controller.collect(sim::kMillisecond, sim::kMillisecond,
                                  [](const SyncRun&) {}));
  simulator.run();
  // After completion a new collection is accepted again.
  EXPECT_TRUE(controller.collect(sim::kMillisecond, sim::kMillisecond,
                                 [](const SyncRun&) {}));
  simulator.run();
}

TEST_F(ControllerFixture, NoSamplersRejected) {
  EXPECT_FALSE(controller.collect(sim::kMillisecond, 0, [](const SyncRun&) {}));
}

}  // namespace
}  // namespace msamp::core

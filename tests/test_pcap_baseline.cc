// Tests for the tcpdump-like capture baseline (§4.3 comparison).
#include "core/pcap_baseline.h"

#include <gtest/gtest.h>

namespace msamp::core {
namespace {

net::Packet pkt(std::int32_t bytes) {
  net::Packet p;
  p.flow = 1;
  p.bytes = bytes;
  return p;
}

TEST(PcapBaseline, CapturesPackets) {
  PcapBaseline cap(PcapConfig{});
  for (int i = 0; i < 10; ++i) cap.process(pkt(1500), i);
  EXPECT_EQ(cap.captured(), 10u);
  EXPECT_EQ(cap.dropped(), 0u);
  EXPECT_EQ(cap.ring_used(), 10 * (16 + 100));
}

TEST(PcapBaseline, DropsOnRingOverrun) {
  PcapConfig cfg;
  cfg.snap_len = 100;
  cfg.ring_bytes = 1000;  // fits 8 records of 116B
  PcapBaseline cap(cfg);
  for (int i = 0; i < 20; ++i) cap.process(pkt(1500), i);
  EXPECT_EQ(cap.captured(), 8u);
  EXPECT_EQ(cap.dropped(), 12u);
}

TEST(PcapBaseline, DrainFreesSpace) {
  PcapConfig cfg;
  cfg.ring_bytes = 1000;
  PcapBaseline cap(cfg);
  for (int i = 0; i < 20; ++i) cap.process(pkt(1500), i);
  const auto dropped_before = cap.dropped();
  cap.drain(500);
  cap.process(pkt(1500), 100);
  EXPECT_EQ(cap.captured(), 9u);
  EXPECT_EQ(cap.dropped(), dropped_before);
}

TEST(PcapBaseline, DrainClampsAtZero) {
  PcapBaseline cap(PcapConfig{});
  cap.process(pkt(100), 0);
  cap.drain(1 << 30);
  EXPECT_EQ(cap.ring_used(), 0u);
}

TEST(PcapBaseline, SnapLenBoundsRecordSize) {
  PcapConfig cfg;
  cfg.snap_len = 40;
  PcapBaseline cap(cfg);
  cap.process(pkt(9000), 0);
  EXPECT_EQ(cap.ring_used(), 16u + 40u);
}

}  // namespace
}  // namespace msamp::core

// Tests for burst detection (§5 definition: consecutive samples above 50%
// of line rate).
#include "analysis/burst_detect.h"

#include <gtest/gtest.h>

namespace msamp::analysis {
namespace {

std::vector<core::BucketSample> series(std::vector<std::int64_t> in_bytes) {
  std::vector<core::BucketSample> out(in_bytes.size());
  for (std::size_t i = 0; i < in_bytes.size(); ++i) {
    out[i].in_bytes = in_bytes[i];
  }
  return out;
}

constexpr std::int64_t kLine = 1562500;  // 12.5Gb/s for 1ms

TEST(BurstDetect, ThresholdIsHalfLineRate) {
  BurstDetectConfig cfg;
  EXPECT_EQ(burst_threshold_bytes(cfg), kLine / 2);
}

TEST(BurstDetect, ThresholdScalesWithInterval) {
  BurstDetectConfig cfg;
  cfg.interval = 100 * sim::kMicrosecond;
  EXPECT_EQ(burst_threshold_bytes(cfg), kLine / 20);
}

TEST(BurstDetect, SampleClassification) {
  BurstDetectConfig cfg;
  core::BucketSample below, above;
  below.in_bytes = kLine / 2;      // exactly at threshold: NOT bursty
  above.in_bytes = kLine / 2 + 1;
  EXPECT_FALSE(is_bursty_sample(below, cfg));
  EXPECT_TRUE(is_bursty_sample(above, cfg));
}

TEST(BurstDetect, EmptySeries) {
  EXPECT_TRUE(detect_bursts({}, BurstDetectConfig{}).empty());
}

TEST(BurstDetect, NoBurstsBelowThreshold) {
  const auto s = series({100, 200, kLine / 2, 0});
  EXPECT_TRUE(detect_bursts(s, BurstDetectConfig{}).empty());
}

TEST(BurstDetect, SingleSampleBurst) {
  const auto s = series({0, kLine, 0});
  const auto bursts = detect_bursts(s, BurstDetectConfig{});
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].start, 1u);
  EXPECT_EQ(bursts[0].len, 1u);
  EXPECT_EQ(bursts[0].volume_bytes, kLine);
}

TEST(BurstDetect, ConsecutiveSamplesMerge) {
  const auto s = series({0, kLine, kLine - 1000, kLine, 0});
  const auto bursts = detect_bursts(s, BurstDetectConfig{});
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].start, 1u);
  EXPECT_EQ(bursts[0].len, 3u);
  EXPECT_EQ(bursts[0].volume_bytes, 3 * kLine - 1000);
}

TEST(BurstDetect, GapSplitsBursts) {
  const auto s = series({kLine, 0, kLine, kLine});
  const auto bursts = detect_bursts(s, BurstDetectConfig{});
  ASSERT_EQ(bursts.size(), 2u);
  EXPECT_EQ(bursts[0].start, 0u);
  EXPECT_EQ(bursts[0].len, 1u);
  EXPECT_EQ(bursts[1].start, 2u);
  EXPECT_EQ(bursts[1].len, 2u);
}

TEST(BurstDetect, BurstAtSeriesEnd) {
  const auto s = series({0, 0, kLine, kLine});
  const auto bursts = detect_bursts(s, BurstDetectConfig{});
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].start, 2u);
  EXPECT_EQ(bursts[0].len, 2u);
}

TEST(BurstDetect, CustomThresholdFraction) {
  BurstDetectConfig cfg;
  cfg.threshold_frac = 0.9;
  const auto s = series({kLine * 8 / 10, kLine * 95 / 100});
  const auto bursts = detect_bursts(s, cfg);
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].start, 1u);
}

TEST(BurstDetect, WholeSeriesBursting) {
  const auto s = series({kLine, kLine, kLine});
  const auto bursts = detect_bursts(s, BurstDetectConfig{});
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].len, 3u);
}

}  // namespace
}  // namespace msamp::analysis

// Property tests for util::simd: every compiled ISA path must agree with the
// scalar reference on adversarial inputs — unaligned offsets, lengths around
// vector-width multiples, saturation edges, and NaN/inf handling in the
// pinned float fold.  The suites all start with "Simd" so scripts/check.sh
// can select them with a single -R regex under the sanitizers.
#include "util/simd/simd.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/stats.h"

namespace msamp::util::simd {
namespace {

// Forces a path for one scope and restores the previously active path on
// exit, so test ordering never leaks a forced path into other suites.
class ScopedPath {
 public:
  explicit ScopedPath(IsaPath p) : prev_(active_path()), ok_(force_path(p)) {}
  ~ScopedPath() { force_path(prev_); }
  ScopedPath(const ScopedPath&) = delete;
  ScopedPath& operator=(const ScopedPath&) = delete;
  bool ok() const { return ok_; }

 private:
  IsaPath prev_;
  bool ok_;
};

// Lengths straddling every vector width in play: 2 (SSE/NEON u64 lanes),
// 4 (AVX2 u64 lanes / fold lanes), 28 (one AVX2 tally cycle), 64 (one mask
// word), plus ragged tails around each.
const std::vector<std::size_t>& lengths() {
  static const std::vector<std::size_t> kLens = {
      0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 27, 28, 29,
      31, 32, 33, 63, 64, 65, 100, 128, 129};
  return kLens;
}

// Misaligning the data start by 0..3 u64 words exercises the unaligned
// load/store forms in every vector kernel.
constexpr std::size_t kMaxOffset = 4;

std::vector<std::uint64_t> random_u64(Rng& rng, std::size_t n,
                                      bool near_saturation) {
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) {
    const std::uint64_t r = rng.next();
    if (near_saturation && (r & 3u) == 0u) {
      x = ~std::uint64_t{0} - (r >> 60);  // within 15 of UINT64_MAX
    } else {
      x = r;
    }
  }
  return v;
}

std::vector<std::int64_t> random_i64(Rng& rng, std::size_t n) {
  std::vector<std::int64_t> v(n);
  for (auto& x : v) {
    const std::uint64_t r = rng.next();
    switch (r & 7u) {
      case 0:
        x = std::numeric_limits<std::int64_t>::max();
        break;
      case 1:
        x = std::numeric_limits<std::int64_t>::min();
        break;
      case 2:
        x = 0;
        break;
      default:
        x = static_cast<std::int64_t>(r >> 2) - (1ll << 61);
        break;
    }
  }
  return v;
}

std::uint64_t bits_of(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

// Inside a TEST body the inherited testing::Test::Run() member hides the
// namespace-level Run type, so the reference below spells it via an alias.
using RunVec = std::vector<Run>;

// The pinned fold DAG from simd.h, restated independently of
// kernels_scalar.cc so the reference itself is under test.
double pinned_fold(const double* v, std::size_t n) {
  double acc[kFoldLanes] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + kFoldLanes <= n; i += kFoldLanes) {
    for (std::size_t j = 0; j < kFoldLanes; ++j) acc[j] += v[i + j];
  }
  double r = (acc[0] + acc[2]) + (acc[1] + acc[3]);
  for (; i < n; ++i) r += v[i];
  return r;
}

TEST(SimdDispatch, AvailablePathsContainScalarAndDetected) {
  const auto paths = available_paths();
  ASSERT_FALSE(paths.empty());
  EXPECT_EQ(paths.front(), IsaPath::kScalar);
  bool has_detected = false;
  for (IsaPath p : paths) {
    if (p == detected_path()) has_detected = true;
  }
  EXPECT_TRUE(has_detected);
}

TEST(SimdDispatch, ForcePathRoundTrips) {
  const IsaPath original = active_path();
  for (IsaPath p : available_paths()) {
    EXPECT_TRUE(force_path(p));
    EXPECT_EQ(active_path(), p);
  }
  EXPECT_TRUE(force_path(original));
  EXPECT_EQ(active_path(), original);
}

TEST(SimdDispatch, ForcingUnavailablePathFailsAndKeepsActive) {
  const auto paths = available_paths();
  const IsaPath original = active_path();
  for (IsaPath p :
       {IsaPath::kScalar, IsaPath::kSse4, IsaPath::kAvx2, IsaPath::kNeon}) {
    bool available = false;
    for (IsaPath q : paths) available = available || q == p;
    if (available) continue;
    EXPECT_FALSE(force_path(p));
    EXPECT_EQ(active_path(), original);
  }
}

TEST(SimdDispatch, PathNamesMatchEnvSpellings) {
  EXPECT_STREQ(path_name(IsaPath::kScalar), "scalar");
  EXPECT_STREQ(path_name(IsaPath::kSse4), "sse4");
  EXPECT_STREQ(path_name(IsaPath::kAvx2), "avx2");
  EXPECT_STREQ(path_name(IsaPath::kNeon), "neon");
}

TEST(SimdKernels, AddU64AllPathsAllLengthsAllOffsets) {
  Rng rng(0xadd1);
  for (std::size_t n : lengths()) {
    for (std::size_t off = 0; off < kMaxOffset; ++off) {
      const auto src = random_u64(rng, n + off, false);
      const auto dst0 = random_u64(rng, n + off, false);
      std::vector<std::uint64_t> want(dst0);
      for (std::size_t i = 0; i < n; ++i) want[off + i] += src[off + i];
      for (IsaPath p : available_paths()) {
        ScopedPath sp(p);
        ASSERT_TRUE(sp.ok());
        std::vector<std::uint64_t> dst(dst0);
        add_u64(dst.data() + off, src.data() + off, n);
        EXPECT_EQ(dst, want) << path_name(p) << " n=" << n << " off=" << off;
      }
    }
  }
}

TEST(SimdKernels, SaturatingAddU64SaturationEdges) {
  Rng rng(0x5a7u);
  // Directed edge cases first: exact boundary, one past, both maximal.
  const std::uint64_t kMax = ~std::uint64_t{0};
  const std::vector<std::uint64_t> a = {kMax, kMax - 1, kMax - 1, 1, 0, kMax};
  const std::vector<std::uint64_t> b = {kMax, 1, 2, kMax - 1, 0, 0};
  const std::vector<std::uint64_t> want = {kMax, kMax, kMax, kMax, 0, kMax};
  for (IsaPath p : available_paths()) {
    ScopedPath sp(p);
    ASSERT_TRUE(sp.ok());
    std::vector<std::uint64_t> dst(a);
    saturating_add_u64(dst.data(), b.data(), dst.size());
    EXPECT_EQ(dst, want) << path_name(p);
  }
  // Randomized sweep biased toward near-saturation values.
  for (std::size_t n : lengths()) {
    for (std::size_t off = 0; off < kMaxOffset; ++off) {
      const auto src = random_u64(rng, n + off, true);
      const auto dst0 = random_u64(rng, n + off, true);
      std::vector<std::uint64_t> ref(dst0);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t s = ref[off + i] + src[off + i];
        ref[off + i] = s < dst0[off + i] ? kMax : s;
      }
      for (IsaPath p : available_paths()) {
        ScopedPath sp(p);
        ASSERT_TRUE(sp.ok());
        std::vector<std::uint64_t> dst(dst0);
        saturating_add_u64(dst.data() + off, src.data() + off, n);
        EXPECT_EQ(dst, ref) << path_name(p) << " n=" << n << " off=" << off;
      }
    }
  }
}

TEST(SimdKernels, OrU64AllPaths) {
  Rng rng(0x0eu);
  for (std::size_t n : lengths()) {
    const auto src = random_u64(rng, n, false);
    const auto dst0 = random_u64(rng, n, false);
    std::vector<std::uint64_t> want(dst0);
    for (std::size_t i = 0; i < n; ++i) want[i] |= src[i];
    for (IsaPath p : available_paths()) {
      ScopedPath sp(p);
      ASSERT_TRUE(sp.ok());
      std::vector<std::uint64_t> dst(dst0);
      or_u64(dst.data(), src.data(), n);
      EXPECT_EQ(dst, want) << path_name(p) << " n=" << n;
    }
  }
}

TEST(SimdKernels, TallyRowsMatchesNaivePerWordFold) {
  Rng rng(0x7a11u);
  const std::uint64_t kMax = ~std::uint64_t{0};
  // Row counts around the 4-row AVX2 phase cycle (28 words = lcm(4,7)*1).
  for (std::size_t rows : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 10u, 16u}) {
    const std::size_t n_words = rows * kRowWords;
    for (std::size_t off = 0; off < kMaxOffset; ++off) {
      const auto src = random_u64(rng, n_words + off, true);
      const auto dst0 = random_u64(rng, n_words + off, true);
      std::vector<std::uint64_t> want(dst0);
      for (std::size_t i = 0; i < n_words; ++i) {
        if (i % kRowWords < kRowTallyWords) {
          const std::uint64_t s = want[off + i] + src[off + i];
          want[off + i] = s < dst0[off + i] ? kMax : s;
        } else {
          want[off + i] |= src[off + i];
        }
      }
      for (IsaPath p : available_paths()) {
        ScopedPath sp(p);
        ASSERT_TRUE(sp.ok());
        std::vector<std::uint64_t> dst(dst0);
        tally_rows_u64(dst.data() + off, src.data() + off, n_words);
        EXPECT_EQ(dst, want)
            << path_name(p) << " rows=" << rows << " off=" << off;
      }
    }
  }
}

TEST(SimdKernels, SumI64WrapsWithoutUB) {
  Rng rng(0x51u);
  for (std::size_t n : lengths()) {
    for (std::size_t off = 0; off < kMaxOffset; ++off) {
      const auto v = random_i64(rng, n + off);
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < n; ++i) {
        acc += static_cast<std::uint64_t>(v[off + i]);
      }
      const auto want = static_cast<std::int64_t>(acc);
      for (IsaPath p : available_paths()) {
        ScopedPath sp(p);
        ASSERT_TRUE(sp.ok());
        EXPECT_EQ(sum_i64(v.data() + off, n), want)
            << path_name(p) << " n=" << n << " off=" << off;
      }
    }
  }
}

TEST(SimdKernels, ThresholdMaskStrictCompareAndZeroTail) {
  Rng rng(0x7123u);
  const std::vector<std::int64_t> thresholds = {
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max(), -1, 0, 1, 1 << 20};
  for (std::size_t n : lengths()) {
    const std::size_t words = (n + 63) / 64;
    for (std::int64_t t : thresholds) {
      auto v = random_i64(rng, n);
      // Plant exact-equality values: strict > must leave them unset.
      for (std::size_t i = 0; i < n; i += 3) v[i] = t;
      std::vector<std::uint64_t> want(words, 0);
      for (std::size_t i = 0; i < n; ++i) {
        if (v[i] > t) want[i / 64] |= std::uint64_t{1} << (i % 64);
      }
      for (IsaPath p : available_paths()) {
        ScopedPath sp(p);
        ASSERT_TRUE(sp.ok());
        // Pre-poison the output: the kernel must clear tail bits itself.
        std::vector<std::uint64_t> got(words, ~std::uint64_t{0});
        threshold_mask_i64(v.data(), n, t, got.data());
        EXPECT_EQ(got, want) << path_name(p) << " n=" << n << " t=" << t;
      }
    }
  }
}

TEST(SimdKernels, ExtractRunsMatchesNaiveBitScan) {
  Rng rng(0xdeadu);
  for (std::size_t n : lengths()) {
    const std::size_t words = (n + 63) / 64;
    std::vector<std::uint64_t> mask(words, 0);
    for (auto& w : mask) {
      const std::uint64_t r = rng.next();
      // Mix of sparse, dense, all-zero, and all-one words to hit the
      // word-at-a-time fast paths.
      switch (r & 3u) {
        case 0: w = 0; break;
        case 1: w = ~std::uint64_t{0}; break;
        case 2: w = r; break;
        default: w = r & rng.next() & rng.next(); break;
      }
    }
    // Naive reference: per-bit scan.
    RunVec want;
    for (std::size_t i = 0; i < n; ++i) {
      const bool set = (mask[i / 64] >> (i % 64)) & 1u;
      if (set) {
        if (!want.empty() && want.back().start + want.back().len == i) {
          ++want.back().len;
        } else {
          want.push_back({i, 1});
        }
      }
    }
    const auto got = extract_runs(mask.data(), n);
    ASSERT_EQ(got.size(), want.size()) << "n=" << n;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].start, want[i].start);
      EXPECT_EQ(got[i].len, want[i].len);
    }
  }
}

TEST(SimdKernels, GatherStrideAllPaths) {
  Rng rng(0x6a7u);
  for (std::size_t stride : {1u, 2u, 3u, 6u, 11u}) {
    for (std::size_t n : lengths()) {
      const auto base = random_i64(rng, n * stride + 1);
      std::vector<std::int64_t> want(n);
      for (std::size_t i = 0; i < n; ++i) want[i] = base[i * stride];
      for (IsaPath p : available_paths()) {
        ScopedPath sp(p);
        ASSERT_TRUE(sp.ok());
        std::vector<std::int64_t> got(n, -1);
        gather_stride_i64(base.data(), stride, n, got.data());
        EXPECT_EQ(got, want) << path_name(p) << " stride=" << stride
                             << " n=" << n;
      }
    }
  }
}

TEST(SimdKernels, DtAdmitMatchesScalarFormula) {
  Rng rng(0xd7u);
  for (std::size_t n : lengths()) {
    std::vector<std::int64_t> demand(n), limit(n), qlen(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Realistic byte counts plus directed negatives: queues deeper than
      // the limit must clamp room to zero, not go negative.
      demand[i] = static_cast<std::int64_t>(rng.uniform_int(1u << 30));
      limit[i] = static_cast<std::int64_t>(rng.uniform_int(1u << 28));
      qlen[i] = static_cast<std::int64_t>(rng.uniform_int(1u << 29));
    }
    for (std::int64_t drain : {std::int64_t{0}, std::int64_t{1 << 16}}) {
      std::vector<std::int64_t> want(n);
      for (std::size_t i = 0; i < n; ++i) {
        std::int64_t room = limit[i] - qlen[i];
        if (room < 0) room = 0;
        room += drain;
        want[i] = demand[i] < room ? demand[i] : room;
      }
      for (IsaPath p : available_paths()) {
        ScopedPath sp(p);
        ASSERT_TRUE(sp.ok());
        std::vector<std::int64_t> got(n, -1);
        dt_admit_i64(demand.data(), limit.data(), qlen.data(), drain,
                     got.data(), n);
        EXPECT_EQ(got, want) << path_name(p) << " n=" << n
                             << " drain=" << drain;
      }
    }
  }
}

TEST(SimdFold, SumF64BitIdenticalToPinnedDagOnAllPaths) {
  Rng rng(0xf01du);
  for (std::size_t n : lengths()) {
    for (std::size_t off = 0; off < kMaxOffset; ++off) {
      std::vector<double> v(n + off);
      for (auto& x : v) x = rng.normal(0.0, 1e6);
      const double want = pinned_fold(v.data() + off, n);
      for (IsaPath p : available_paths()) {
        ScopedPath sp(p);
        ASSERT_TRUE(sp.ok());
        const double got = sum_f64(v.data() + off, n);
        EXPECT_EQ(bits_of(got), bits_of(want))
            << path_name(p) << " n=" << n << " off=" << off;
      }
    }
  }
}

TEST(SimdFold, SumF64SpecialValues) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // Deterministic specials: bitwise identity across paths.
  const std::vector<std::vector<double>> cases = {
      {},                                  // empty -> +0.0
      {-0.0, -0.0, -0.0, -0.0},            // full group of -0.0
      {-0.0},                              // tail-only -0.0
      {inf, 1.0, 2.0, 3.0, 4.0},           // inf propagates
      {-inf, -inf, 0.0, 5.0},              // -inf propagates
      {1e308, 1e308, -1e308, -1e308},      // overflow then cancel, per-lane
      {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}  // inexact decimals, ragged tail
  };
  for (const auto& v : cases) {
    const double want = pinned_fold(v.data(), v.size());
    for (IsaPath p : available_paths()) {
      ScopedPath sp(p);
      ASSERT_TRUE(sp.ok());
      const double got = sum_f64(v.data(), v.size());
      EXPECT_EQ(bits_of(got), bits_of(want))
          << path_name(p) << " n=" << v.size();
    }
  }
  // NaN in: NaN out on every path (payload propagation is ISA business, so
  // only the predicate is pinned, not the payload).
  const std::vector<double> with_nan = {1.0, nan, 2.0, 3.0, 4.0};
  for (IsaPath p : available_paths()) {
    ScopedPath sp(p);
    ASSERT_TRUE(sp.ok());
    EXPECT_TRUE(std::isnan(sum_f64(with_nan.data(), with_nan.size())))
        << path_name(p);
  }
  // inf + -inf inside one lane chain -> NaN, deterministically.
  const std::vector<double> cancel_inf = {inf, 0.0, 0.0, 0.0, -inf};
  for (IsaPath p : available_paths()) {
    ScopedPath sp(p);
    ASSERT_TRUE(sp.ok());
    EXPECT_TRUE(std::isnan(sum_f64(cancel_inf.data(), cancel_inf.size())))
        << path_name(p);
  }
}

TEST(SimdFold, CanonicalSumRoutesThroughPinnedFold) {
  Rng rng(0xca40u);
  std::vector<double> v(257);
  for (auto& x : v) x = rng.lognormal(8.0, 2.0);
  for (IsaPath p : available_paths()) {
    ScopedPath sp(p);
    ASSERT_TRUE(sp.ok());
    const double via_stats = util::canonical_sum(v.data(), v.size());
    const double via_simd = sum_f64(v.data(), v.size());
    EXPECT_EQ(bits_of(via_stats), bits_of(via_simd)) << path_name(p);
  }
}

}  // namespace
}  // namespace msamp::util::simd

// Tests for the per-server millisecond traffic generator.
#include "workload/burst_process.h"

#include <gtest/gtest.h>

namespace msamp::workload {
namespace {

BurstProcessConfig cfg() {
  BurstProcessConfig c;
  c.line_rate_gbps = 12.5;
  c.rtt_ms = 0.1;
  c.mss = 1460;
  return c;
}

TrafficProfile always_active() {
  TrafficProfile p = profile_for(TaskKind::kWeb);
  p.active_run_prob = 1.0;
  return p;
}

TEST(BurstProcess, DemandNonNegative) {
  BurstProcess bp(always_active(), cfg(), 1, util::Rng(1));
  for (int i = 0; i < 2000; ++i) {
    const StepDemand d = bp.step();
    EXPECT_GE(d.bytes, 0);
    EXPECT_GE(d.retx_bytes, 0);
    EXPECT_LE(d.retx_bytes, d.bytes);
    EXPECT_GE(d.conns, 1.0);
  }
}

TEST(BurstProcess, ProducesBurstsWhenActive) {
  BurstProcess bp(always_active(), cfg(), 1, util::Rng(2));
  int burst_steps = 0;
  for (int i = 0; i < 5000; ++i) burst_steps += bp.step().in_burst;
  EXPECT_GT(burst_steps, 10);
  EXPECT_LT(burst_steps, 4000);
}

TEST(BurstProcess, InactiveRegimeRarelyBursts) {
  TrafficProfile p = profile_for(TaskKind::kWeb);
  p.active_run_prob = 0.0;
  BurstProcess bp(p, cfg(), 1, util::Rng(3));
  int burst_steps = 0;
  for (int i = 0; i < 3000; ++i) burst_steps += bp.step().in_burst;
  EXPECT_LT(burst_steps, 150);
}

TEST(BurstProcess, MoreConnectionsInsideBursts) {
  BurstProcess bp(always_active(), cfg(), 1, util::Rng(4));
  double conns_in = 0, conns_out = 0;
  int n_in = 0, n_out = 0;
  for (int i = 0; i < 20000; ++i) {
    const StepDemand d = bp.step();
    if (d.in_burst) {
      conns_in += d.conns;
      ++n_in;
    } else {
      conns_out += d.conns;
      ++n_out;
    }
  }
  ASSERT_GT(n_in, 0);
  ASSERT_GT(n_out, 0);
  EXPECT_GT(conns_in / n_in, 1.5 * (conns_out / n_out));
}

TEST(BurstProcess, SketchMatchesConnectionScale) {
  BurstProcess bp(always_active(), cfg(), 1, util::Rng(5));
  for (int i = 0; i < 100; ++i) {
    const StepDemand d = bp.step();
    core::FlowSketch s;
    s.set_words(d.sketch[0], d.sketch[1]);
    if (d.conns > 0) {
      EXPECT_GT(s.popcount(), 0);
      EXPECT_NEAR(s.estimate(), d.conns, d.conns * 0.5 + 3.0);
    }
  }
}

TEST(BurstProcess, MarksReduceRateFactor) {
  TrafficProfile p = always_active();
  p.adaptivity = 0.9;
  BurstProcess bp(p, cfg(), 1, util::Rng(6));
  bp.step();
  const double before = bp.rate_factor();
  bp.on_feedback(/*marked=*/1.0, /*dropped=*/0);
  bp.step();
  EXPECT_LT(bp.rate_factor(), before);
}

TEST(BurstProcess, LowAdaptivityReactsWeakly) {
  TrafficProfile strong = always_active();
  strong.adaptivity = 0.95;
  TrafficProfile weak = always_active();
  weak.adaptivity = 0.05;
  BurstProcess a(strong, cfg(), 1, util::Rng(7));
  BurstProcess b(weak, cfg(), 1, util::Rng(7));
  a.step();
  b.step();
  for (int i = 0; i < 5; ++i) {
    a.on_feedback(1.0, 0);
    b.on_feedback(1.0, 0);
    a.step();
    b.step();
  }
  EXPECT_LT(a.rate_factor(), b.rate_factor());
}

TEST(BurstProcess, DropsComeBackAsRetransmissions) {
  BurstProcess bp(always_active(), cfg(), 1, util::Rng(8));
  bp.step();
  bp.on_feedback(0.0, /*dropped=*/500000);
  std::int64_t retx_seen = 0;
  for (int i = 0; i < 20; ++i) retx_seen += bp.step().retx_bytes;
  EXPECT_EQ(retx_seen, 500000);
}

TEST(BurstProcess, RetxArrivesWithLag) {
  BurstProcess bp(always_active(), cfg(), 1, util::Rng(9));
  bp.step();
  bp.on_feedback(0.0, 100000);
  // The very next step cannot already carry the retransmission (>= 2ms lag).
  const StepDemand d1 = bp.step();
  EXPECT_EQ(d1.retx_bytes, 0);
  const StepDemand d2 = bp.step();
  EXPECT_EQ(d2.retx_bytes, 0);
}

TEST(BurstProcess, RateFactorRecovers) {
  BurstProcess bp(always_active(), cfg(), 1, util::Rng(10));
  bp.step();
  bp.on_feedback(0.0, 1000000);
  bp.step();  // halves
  const double low = bp.rate_factor();
  for (int i = 0; i < 100; ++i) bp.step();
  EXPECT_GT(bp.rate_factor(), low);
  EXPECT_LE(bp.rate_factor(), 1.0);
}

TEST(BurstProcess, IncastFloorKeepsDemandHigh) {
  // A profile with massive incast cannot throttle below the floor.
  TrafficProfile p = always_active();
  p.conns_inside = 200.0;
  p.burst_rate_hz = 1000.0;  // burst immediately and continuously
  p.adaptivity = 1.0;
  BurstProcess bp(p, cfg(), 1, util::Rng(11));
  // Hammer with marks; demand during bursts must stay near the floor
  // (200 conns * 1460B / 0.1ms ~ 2.9MB/ms, capped by offered intensity).
  std::int64_t min_burst_demand = INT64_MAX;
  for (int i = 0; i < 200; ++i) {
    bp.on_feedback(1.0, 0);
    const StepDemand d = bp.step();
    if (d.in_burst) min_burst_demand = std::min(min_burst_demand, d.bytes);
  }
  ASSERT_NE(min_burst_demand, INT64_MAX);
  EXPECT_GT(min_burst_demand, 600000);  // far above a fully-throttled rate
}

TEST(BurstProcess, SmoothnessReflectsAdaptivity) {
  TrafficProfile p = always_active();
  p.adaptivity = 0.77;
  BurstProcess bp(p, cfg(), 1, util::Rng(12));
  EXPECT_DOUBLE_EQ(bp.step().smoothness, 0.77);
}

TEST(BurstProcess, DeterministicForSeed) {
  BurstProcess a(always_active(), cfg(), 1, util::Rng(13));
  BurstProcess b(always_active(), cfg(), 1, util::Rng(13));
  for (int i = 0; i < 500; ++i) {
    const StepDemand da = a.step();
    const StepDemand db = b.step();
    EXPECT_EQ(da.bytes, db.bytes);
    EXPECT_EQ(da.in_burst, db.in_burst);
  }
}

TEST(BurstProcess, BeginRunResetsTransients) {
  BurstProcess bp(always_active(), cfg(), 1, util::Rng(14));
  bp.step();
  bp.on_feedback(0.0, 999999);
  bp.begin_run();
  // Pending retransmissions die with the window (new connections).
  std::int64_t retx = 0;
  for (int i = 0; i < 20; ++i) retx += bp.step().retx_bytes;
  EXPECT_EQ(retx, 0);
}

TEST(BurstProcess, DiurnalScalesBurstFrequency) {
  BurstProcessConfig lo = cfg();
  lo.diurnal = 0.3;
  BurstProcessConfig hi = cfg();
  hi.diurnal = 3.0;
  TrafficProfile p = always_active();
  int lo_bursts = 0, hi_bursts = 0;
  BurstProcess a(p, lo, 1, util::Rng(15));
  BurstProcess b(p, hi, 1, util::Rng(15));
  for (int i = 0; i < 10000; ++i) {
    lo_bursts += a.step().in_burst;
    hi_bursts += b.step().in_burst;
  }
  EXPECT_GT(hi_bursts, 2 * lo_bursts);
}

}  // namespace
}  // namespace msamp::workload

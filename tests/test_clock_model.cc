// Tests for the NTP-grade clock model.
#include "core/clock_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace msamp::core {
namespace {

TEST(ClockModel, IdealIsZero) {
  const ClockModel clocks = ClockModel::ideal(10);
  EXPECT_EQ(clocks.num_hosts(), 10);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(clocks.offset(i), 0);
    EXPECT_EQ(clocks.host_time(i, 12345), 12345);
  }
}

TEST(ClockModel, OffsetsBoundedByMax) {
  ClockModelConfig cfg;
  cfg.offset_stddev = sim::kMillisecond;  // intentionally wide
  cfg.offset_max = 400 * sim::kMicrosecond;
  util::Rng rng(1);
  const ClockModel clocks(cfg, 1000, rng);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(std::abs(clocks.offset(i)), cfg.offset_max);
  }
}

TEST(ClockModel, SubMillisecondByDefault) {
  // §4.5: interleaved NTP keeps hosts synchronized to sub-ms precision.
  ClockModelConfig cfg;
  util::Rng rng(2);
  const ClockModel clocks(cfg, 500, rng);
  for (int i = 0; i < 500; ++i) {
    EXPECT_LT(std::abs(clocks.offset(i)), sim::kMillisecond);
  }
}

TEST(ClockModel, SpreadRoughlyMatchesStddev) {
  ClockModelConfig cfg;
  cfg.offset_stddev = 50 * sim::kMicrosecond;
  util::Rng rng(3);
  const ClockModel clocks(cfg, 5000, rng);
  double sq = 0.0;
  for (int i = 0; i < 5000; ++i) {
    sq += static_cast<double>(clocks.offset(i)) *
          static_cast<double>(clocks.offset(i));
  }
  const double stddev = std::sqrt(sq / 5000.0);
  EXPECT_NEAR(stddev, 50e3, 8e3);
}

TEST(ClockModel, DeterministicForSeed) {
  ClockModelConfig cfg;
  util::Rng r1(7), r2(7);
  const ClockModel a(cfg, 50, r1);
  const ClockModel b(cfg, 50, r2);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.offset(i), b.offset(i));
}

TEST(ClockModel, HostTimeAddsOffset) {
  ClockModelConfig cfg;
  util::Rng rng(9);
  const ClockModel clocks(cfg, 4, rng);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(clocks.host_time(i, 1000000), 1000000 + clocks.offset(i));
  }
}

}  // namespace
}  // namespace msamp::core

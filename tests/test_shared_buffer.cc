// Tests for the shared-memory MMU: Dynamic Threshold admission, ECN
// marking, quadrant isolation, and the closed-form DT fixed point the
// paper's Figure 1 plots.
#include "net/shared_buffer.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace msamp::net {
namespace {

SharedBufferConfig small_config() {
  SharedBufferConfig cfg;
  cfg.total_bytes = 4 << 20;  // one 4MB quadrant's worth
  cfg.quadrants = 1;
  cfg.reserve_per_queue = 16 << 10;
  cfg.alpha = 1.0;
  cfg.ecn_threshold = 120 << 10;
  return cfg;
}

TEST(SharedBuffer, AdmitsWithinReserve) {
  SharedBuffer buf(small_config(), 4);
  bool ce = true;
  EXPECT_TRUE(buf.admit(0, 1000, false, &ce));
  EXPECT_FALSE(ce);
  EXPECT_EQ(buf.queue_len(0), 1000);
  // Reserve usage does not consume shared space.
  EXPECT_EQ(buf.shared_occupancy(0), 0);
}

TEST(SharedBuffer, SharedAccountingAboveReserve) {
  SharedBuffer buf(small_config(), 4);
  buf.admit(0, (16 << 10) + 5000, false, nullptr);
  EXPECT_EQ(buf.shared_occupancy(0), 5000);
  buf.release(0, 5000);
  EXPECT_EQ(buf.shared_occupancy(0), 0);
  EXPECT_EQ(buf.queue_len(0), 16 << 10);
}

TEST(SharedBuffer, SingleQueueCapsAtHalfWhenAlphaOne) {
  // With alpha=1 a lone queue converges to half the shared buffer: each
  // admission requires used_after <= free_before.
  SharedBuffer buf(small_config(), 4);
  const std::int64_t pkt = 1500;
  std::int64_t admitted = 0;
  while (buf.admit(0, pkt, false, nullptr)) admitted += pkt;
  const double shared_cap = static_cast<double>((4 << 20) - 4 * (16 << 10));
  const double share =
      static_cast<double>(buf.shared_occupancy(0)) / shared_cap;
  EXPECT_NEAR(share, 0.5, 0.01);
  EXPECT_GT(admitted, 0);
}

TEST(SharedBuffer, DropCountersGrowOnReject) {
  auto cfg = small_config();
  cfg.total_bytes = 64 << 10;
  cfg.reserve_per_queue = 0;
  SharedBuffer buf(cfg, 2);
  while (buf.admit(0, 1500, false, nullptr)) {
  }
  EXPECT_GT(buf.counters(0).dropped_bytes, 0);
  EXPECT_GT(buf.counters(0).dropped_packets, 0);
  EXPECT_EQ(buf.total_dropped_bytes(), buf.counters(0).dropped_bytes);
}

TEST(SharedBuffer, EcnMarksAboveThreshold) {
  SharedBuffer buf(small_config(), 4);
  bool ce = false;
  // Fill to just below the threshold: no marks.
  std::int64_t filled = 0;
  while (filled + 1500 < (120 << 10)) {
    EXPECT_TRUE(buf.admit(0, 1500, true, &ce));
    EXPECT_FALSE(ce);
    filled += 1500;
  }
  // Push past the threshold: subsequent ECT packets get CE.
  buf.admit(0, 4000, true, &ce);
  buf.admit(0, 1500, true, &ce);
  EXPECT_TRUE(ce);
  EXPECT_GT(buf.counters(0).ce_marked_bytes, 0);
}

TEST(SharedBuffer, NonEctNeverMarked) {
  SharedBuffer buf(small_config(), 4);
  bool ce = false;
  for (int i = 0; i < 200; ++i) buf.admit(0, 1500, false, &ce);
  EXPECT_FALSE(ce);
  EXPECT_EQ(buf.counters(0).ce_marked_bytes, 0);
}

TEST(SharedBuffer, QuadrantsAreIsolated) {
  SharedBufferConfig cfg;
  cfg.total_bytes = 16 << 20;
  cfg.quadrants = 4;
  cfg.reserve_per_queue = 0;
  SharedBuffer buf(cfg, 8);  // queues 0..7; queue q -> quadrant q%4
  // Saturate queue 0 (quadrant 0).
  while (buf.admit(0, 1500, false, nullptr)) {
  }
  // Queue 1 lives in quadrant 1 and must be unaffected.
  EXPECT_EQ(buf.shared_occupancy(1), 0);
  EXPECT_TRUE(buf.admit(1, 1500, false, nullptr));
  // Queue 4 shares quadrant 0: its limit is reduced by queue 0's usage,
  // while queue 1's quadrant is untouched.
  EXPECT_LT(buf.dynamic_limit(4), buf.dynamic_limit(1) * 3 / 4);
  EXPECT_NEAR(static_cast<double>(buf.dynamic_limit(4)),
              static_cast<double>(4 << 20) / 2.0, 64.0 * 1024);
}

TEST(SharedBuffer, ActiveQueueCount) {
  SharedBufferConfig cfg;
  cfg.total_bytes = 16 << 20;
  cfg.quadrants = 4;
  SharedBuffer buf(cfg, 8);
  EXPECT_EQ(buf.active_queues_in_quadrant(0), 0);
  buf.admit(0, 100, false, nullptr);
  buf.admit(4, 100, false, nullptr);
  buf.admit(1, 100, false, nullptr);
  EXPECT_EQ(buf.active_queues_in_quadrant(0), 2);
  EXPECT_EQ(buf.active_queues_in_quadrant(1), 1);
  buf.release(0, 100);
  EXPECT_EQ(buf.active_queues_in_quadrant(0), 1);
}

TEST(SharedBuffer, FixedPointFormula) {
  // Figure 1 anchor points: alpha=1 -> 1/2, 1/3; alpha=2 -> 2/3, 2/5.
  EXPECT_DOUBLE_EQ(SharedBuffer::fixed_point_share(1.0, 1), 0.5);
  EXPECT_NEAR(SharedBuffer::fixed_point_share(1.0, 2), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(SharedBuffer::fixed_point_share(2.0, 1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(SharedBuffer::fixed_point_share(2.0, 2), 0.4, 1e-12);
}

/// Property sweep: S saturated queues converge to T = aB/(1+aS) each.
class DtFixedPointTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(DtFixedPointTest, SaturatedQueuesMatchClosedForm) {
  const double alpha = std::get<0>(GetParam());
  const int s = std::get<1>(GetParam());
  SharedBufferConfig cfg;
  cfg.total_bytes = 8 << 20;
  cfg.quadrants = 1;
  cfg.reserve_per_queue = 0;
  cfg.alpha = alpha;
  SharedBuffer buf(cfg, 10);
  // Round-robin fill until every queue is rejected.
  bool progress = true;
  while (progress) {
    progress = false;
    for (int q = 0; q < s; ++q) {
      progress |= buf.admit(q, 1500, false, nullptr);
    }
  }
  const double expected = SharedBuffer::fixed_point_share(alpha, s);
  for (int q = 0; q < s; ++q) {
    const double share = static_cast<double>(buf.queue_len(q)) /
                         static_cast<double>(cfg.total_bytes);
    EXPECT_NEAR(share, expected, 0.02) << "alpha=" << alpha << " S=" << s
                                       << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlphaAndQueues, DtFixedPointTest,
    ::testing::Combine(::testing::Values(0.25, 0.5, 1.0, 2.0, 4.0),
                       ::testing::Values(1, 2, 4, 8)));

TEST(SharedBufferPolicy, StaticPartitionFixedSlice) {
  auto cfg = small_config();
  cfg.policy = BufferPolicy::kStaticPartition;
  SharedBuffer buf(cfg, 4);
  const std::int64_t slice = buf.dynamic_limit(0);
  // A quarter of the shared pool each, independent of occupancy.
  const std::int64_t shared_cap = (4 << 20) - 4 * (16 << 10);
  EXPECT_EQ(slice, shared_cap / 4);
  while (buf.admit(0, 1500, false, nullptr)) {
  }
  EXPECT_EQ(buf.dynamic_limit(1), slice);  // unchanged by queue 0
  EXPECT_NEAR(static_cast<double>(buf.shared_occupancy(0)),
              static_cast<double>(slice), 1600.0);
}

TEST(SharedBufferPolicy, CompleteSharingTakesWholePool) {
  auto cfg = small_config();
  cfg.policy = BufferPolicy::kCompleteSharing;
  SharedBuffer buf(cfg, 4);
  while (buf.admit(0, 1500, false, nullptr)) {
  }
  const std::int64_t shared_cap = (4 << 20) - 4 * (16 << 10);
  // A lone queue can consume essentially the entire shared pool (vs half
  // under DT with alpha = 1).
  EXPECT_GT(buf.shared_occupancy(0), shared_cap * 95 / 100);
}

TEST(SharedBufferPolicy, CompleteSharingStillRejectsWhenFull) {
  auto cfg = small_config();
  cfg.policy = BufferPolicy::kCompleteSharing;
  SharedBuffer buf(cfg, 4);
  while (buf.admit(0, 1500, false, nullptr)) {
  }
  EXPECT_GT(buf.counters(0).dropped_packets, 0);
  EXPECT_FALSE(buf.admit(1, 1 << 20, false, nullptr));
}

TEST(SharedBufferPolicy, BurstAbsorbFallsBackToDtAtPacketLevel) {
  auto dt_cfg = small_config();
  auto ba_cfg = small_config();
  ba_cfg.policy = BufferPolicy::kBurstAbsorbDt;
  SharedBuffer dt(dt_cfg, 4), ba(ba_cfg, 4);
  for (int i = 0; i < 100; ++i) {
    dt.admit(0, 1500, false, nullptr);
    ba.admit(0, 1500, false, nullptr);
  }
  EXPECT_EQ(dt.dynamic_limit(0), ba.dynamic_limit(0));
}

TEST(SharedBuffer, DynamicLimitShrinksWithOccupancy) {
  SharedBuffer buf(small_config(), 4);
  const std::int64_t before = buf.dynamic_limit(0);
  buf.admit(0, 1 << 20, false, nullptr);
  const std::int64_t after = buf.dynamic_limit(0);
  EXPECT_LT(after, before);
}

/// Randomized operation fuzz: any interleaving of admits and releases must
/// preserve the MMU's accounting invariants, for every policy.
class SharedBufferFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SharedBufferFuzzTest, InvariantsHoldUnderRandomOps) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  SharedBufferConfig cfg;
  cfg.total_bytes = 2 << 20;
  cfg.quadrants = 2;
  cfg.reserve_per_queue = 8 << 10;
  cfg.policy = static_cast<BufferPolicy>(GetParam() % 5);
  constexpr int kQueues = 6;
  SharedBuffer buf(cfg, kQueues);

  // Shadow model: per-queue FIFO of admitted packet sizes.
  std::vector<std::vector<std::int64_t>> shadow(kQueues);

  for (int op = 0; op < 20000; ++op) {
    const int queue = static_cast<int>(rng.uniform_int(kQueues));
    if (rng.bernoulli(0.6)) {
      const auto bytes = static_cast<std::int64_t>(64 + rng.uniform_int(9000));
      if (buf.admit(queue, bytes, rng.bernoulli(0.5), nullptr)) {
        shadow[static_cast<std::size_t>(queue)].push_back(bytes);
      }
    } else if (!shadow[static_cast<std::size_t>(queue)].empty()) {
      buf.release(queue, shadow[static_cast<std::size_t>(queue)].back());
      shadow[static_cast<std::size_t>(queue)].pop_back();
    }

    if ((op & 1023) != 0) continue;  // full audit every 1024 ops
    std::int64_t quadrant_shared[2] = {0, 0};
    for (int q = 0; q < kQueues; ++q) {
      std::int64_t expect = 0;
      for (auto b : shadow[static_cast<std::size_t>(q)]) expect += b;
      ASSERT_EQ(buf.queue_len(q), expect) << "queue " << q << " op " << op;
      quadrant_shared[q % 2] +=
          std::max<std::int64_t>(expect - cfg.reserve_per_queue, 0);
    }
    for (int q = 0; q < 2; ++q) {
      ASSERT_EQ(buf.shared_occupancy(q), quadrant_shared[q]) << "op " << op;
      ASSERT_GE(buf.shared_occupancy(q), 0);
    }
    for (int q = 0; q < kQueues; ++q) {
      ASSERT_GE(buf.dynamic_limit(q), 0);
    }
  }
  // Drain everything: occupancy returns to exactly zero.
  for (int q = 0; q < kQueues; ++q) {
    for (auto b : shadow[static_cast<std::size_t>(q)]) buf.release(q, b);
  }
  EXPECT_EQ(buf.shared_occupancy(0), 0);
  EXPECT_EQ(buf.shared_occupancy(1), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedBufferFuzzTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace msamp::net

// Tests for the table/CSV output helpers.
#include "util/table.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace msamp::util {
namespace {

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "value"});
  t.row().cell("a").cell(1.5, 1);
  t.row().cell("long-name").cell(22.25, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("22.25"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CellTypes) {
  Table t({"a", "b", "c", "d"});
  t.row().cell(std::string("x")).cell(3.14159, 3).cell(42).cell(
      static_cast<std::size_t>(7));
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b,c,d\nx,3.142,42,7\n");
}

TEST(Table, AddRowInitializer) {
  Table t({"x", "y"});
  t.add_row({"1", "2"}).add_row({"3", "4"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, CsvQuoting) {
  Table t({"v"});
  t.row().cell("a,b");
  t.row().cell("say \"hi\"");
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "v\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST(Table, WriteCsvFileCreatesDirectories) {
  const std::string dir = "test_table_tmp_dir";
  const std::string path = dir + "/sub/out.csv";
  Table t({"h"});
  t.row().cell("v");
  ASSERT_TRUE(t.write_csv_file(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "h");
  in.close();
  std::filesystem::remove_all(dir);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(-2.5, 1), "-2.5");
}

TEST(FormatBytes, Units) {
  EXPECT_EQ(format_bytes(512), "512.00B");
  EXPECT_EQ(format_bytes(2048), "2.00KB");
  EXPECT_EQ(format_bytes(1.8 * 1024 * 1024), "1.80MB");
  EXPECT_EQ(format_bytes(3.0 * 1024 * 1024 * 1024), "3.00GB");
}

}  // namespace
}  // namespace msamp::util

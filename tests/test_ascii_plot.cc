// Tests for the terminal plotting helpers.
#include "util/ascii_plot.h"

#include <sstream>

#include <gtest/gtest.h>

namespace msamp::util {
namespace {

TEST(AsciiPlot, RendersSeriesGlyphsAndLegend) {
  Series s{"line", {0, 1, 2, 3}, {0, 1, 2, 3}};
  // Assign through std::string temporaries: GCC 12's -Wrestrict emits a
  // false positive (PR 105329) on operator=(const char*) here under -O2.
  PlotOptions opt;
  opt.title = std::string("ramp");
  opt.x_label = std::string("x");
  opt.y_label = std::string("y");
  std::ostringstream os;
  ascii_plot(os, {s}, opt);
  const std::string out = os.str();
  EXPECT_NE(out.find("ramp"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("* = line"), std::string::npos);
  EXPECT_NE(out.find("x: x"), std::string::npos);
}

TEST(AsciiPlot, MultipleSeriesDistinctGlyphs) {
  Series a{"a", {0, 1}, {0, 0}};
  Series b{"b", {0, 1}, {1, 1}};
  std::ostringstream os;
  ascii_plot(os, {a, b}, {});
  const std::string out = os.str();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(AsciiPlot, EmptySeriesNoCrash) {
  std::ostringstream os;
  ascii_plot(os, {}, {});
  EXPECT_FALSE(os.str().empty());
}

TEST(AsciiPlot, ConstantSeriesNoCrash) {
  Series s{"flat", {1, 2, 3}, {5, 5, 5}};
  std::ostringstream os;
  ascii_plot(os, {s}, {});
  EXPECT_NE(os.str().find('*'), std::string::npos);
}

TEST(AsciiPlot, ForcedRanges) {
  Series s{"dot", {0.5}, {0.5}};
  PlotOptions opt;
  opt.x_min = 0;
  opt.x_max = 1;
  opt.y_min = 0;
  opt.y_max = 1;
  std::ostringstream os;
  ascii_plot(os, {s}, opt);
  EXPECT_NE(os.str().find("1.00"), std::string::npos);
  EXPECT_NE(os.str().find("0.00"), std::string::npos);
}

TEST(AsciiRaster, MarksActiveCells) {
  std::vector<std::vector<bool>> active(2, std::vector<bool>(10, false));
  active[0][3] = true;
  std::ostringstream os;
  ascii_raster(os, active, "raster", 72);
  const std::string out = os.str();
  EXPECT_NE(out.find("raster"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('.'), std::string::npos);
}

TEST(AsciiRaster, DownsamplesWideInput) {
  std::vector<std::vector<bool>> active(1, std::vector<bool>(1000, false));
  active[0][999] = true;
  std::ostringstream os;
  ascii_raster(os, active, "", 50);
  // Output row must fit roughly within the width budget.
  const std::string out = os.str();
  const auto first_nl = out.find('\n');
  EXPECT_LT(first_nl, 70u);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(AsciiRaster, EmptyNoCrash) {
  std::ostringstream os;
  ascii_raster(os, {}, "t", 10);
  ascii_raster(os, {{}}, "t", 10);
  SUCCEED();
}

}  // namespace
}  // namespace msamp::util

// Integration tests for the fleet runner: a miniature day of collections.
#include "fleet/fleet_runner.h"

#include <filesystem>
#include <set>

#include <gtest/gtest.h>

#include "fleet/dataset_view.h"
#include "workload/diurnal.h"

namespace msamp::fleet {
namespace {

FleetConfig tiny() {
  FleetConfig cfg;
  cfg.racks_per_region = 6;
  cfg.servers_per_rack = 46;
  cfg.hours = 8;  // must include the busy hour (6)
  cfg.samples_per_run = 250;
  cfg.warmup_ms = 20;
  // Half-size racks halve contention; scale the class split accordingly.
  cfg.classify.high_threshold = 2.5;
  return cfg;
}

TEST(FleetRunner, DatasetShape) {
  const FleetConfig cfg = tiny();
  const Dataset ds = run_fleet(cfg);
  EXPECT_EQ(ds.fingerprint, cfg.fingerprint());
  EXPECT_EQ(ds.racks.size(), 12u);  // both regions
  EXPECT_EQ(ds.rack_runs.size(), 12u * 8u);
  EXPECT_EQ(ds.server_runs.size(), 12u * 8u * 46u);
  EXPECT_GT(ds.bursts.size(), 100u);
}

TEST(FleetRunner, RegionsPresent) {
  const Dataset ds = run_fleet(tiny());
  std::set<int> regions;
  for (const auto& r : ds.racks) regions.insert(r.region);
  EXPECT_EQ(regions.size(), 2u);
}

TEST(FleetRunner, HoursCovered) {
  const Dataset ds = run_fleet(tiny());
  std::set<int> hours;
  for (const auto& rr : ds.rack_runs) hours.insert(rr.hour);
  EXPECT_EQ(hours.size(), 8u);
}

TEST(FleetRunner, BusyHourClassificationFilled) {
  const Dataset ds = run_fleet(tiny());
  int high = 0;
  for (const auto& r : ds.racks) {
    if (r.region == static_cast<std::uint8_t>(workload::RegionId::kRegA)) {
      if (static_cast<analysis::RackClass>(r.rack_class) ==
          analysis::RackClass::kRegAHigh) {
        ++high;
        // High racks must be ML-dense placements (ground truth agrees
        // with the measured classification).
        EXPECT_EQ(r.ml_dense, 1);
      }
    } else {
      EXPECT_EQ(static_cast<analysis::RackClass>(r.rack_class),
                analysis::RackClass::kRegB);
    }
  }
  EXPECT_GE(high, 1);
}

TEST(FleetRunner, BurstRecordsConsistent) {
  const Dataset ds = run_fleet(tiny());
  for (const auto& b : ds.bursts) {
    EXPECT_GE(b.len_ms, 1);
    EXPECT_GT(b.volume_bytes, 0.0f);
    EXPECT_GE(b.max_contention, 1);  // a burst itself counts
    if (b.contended) {
      EXPECT_GE(b.max_contention, 2);
    }
    EXPECT_LT(b.hour, 8);
  }
}

TEST(FleetRunner, ContendedBurstsDominateInDenseRacks) {
  const Dataset ds = run_fleet(tiny());
  long dense_bursts = 0, dense_contended = 0;
  for (const auto& b : ds.bursts) {
    if (ds.class_of(b.rack_id) == analysis::RackClass::kRegAHigh) {
      ++dense_bursts;
      dense_contended += b.contended;
    }
  }
  if (dense_bursts > 100) {
    EXPECT_GT(static_cast<double>(dense_contended) /
                  static_cast<double>(dense_bursts),
              0.95);
  }
}

TEST(FleetRunner, ExemplarsCaptured) {
  const Dataset ds = run_fleet(tiny());
  // With six racks per region including dense ones, both exemplars should
  // be found during the busy hour.
  EXPECT_GT(ds.high_contention_example.num_samples, 0);
  EXPECT_EQ(ds.high_contention_example.raster.size(),
            static_cast<std::size_t>(ds.high_contention_example.num_servers) *
                ds.high_contention_example.num_samples);
}

TEST(FleetRunner, DeterministicForSeed) {
  const Dataset a = run_fleet(tiny());
  const Dataset b = run_fleet(tiny());
  ASSERT_EQ(a.bursts.size(), b.bursts.size());
  for (std::size_t i = 0; i < a.bursts.size(); ++i) {
    EXPECT_EQ(a.bursts[i].len_ms, b.bursts[i].len_ms);
    EXPECT_EQ(a.bursts[i].lossy, b.bursts[i].lossy);
  }
  ASSERT_EQ(a.rack_runs.size(), b.rack_runs.size());
  for (std::size_t i = 0; i < a.rack_runs.size(); ++i) {
    EXPECT_FLOAT_EQ(a.rack_runs[i].avg_contention,
                    b.rack_runs[i].avg_contention);
  }
}

TEST(FleetRunner, ProgressCallbackAdvances) {
  double last = -1.0;
  int calls = 0;
  FleetConfig cfg = tiny();
  cfg.hours = 2;
  run_fleet(cfg, [&](double p) {
    EXPECT_GT(p, last);
    last = p;
    ++calls;
  });
  // One serialized callback per completed (region, hour, rack) window,
  // strictly increasing and ending at exactly 1.0.
  EXPECT_EQ(calls, 2 * cfg.racks_per_region * cfg.hours);
  EXPECT_DOUBLE_EQ(last, 1.0);
}

TEST(FleetRunner, SharedDatasetCachesToDisk) {
  const std::string cache = "test_fleet_cache/ds.bin";
  std::filesystem::remove_all("test_fleet_cache");
  FleetConfig cfg = tiny();
  cfg.hours = 2;
  cfg.racks_per_region = 2;
  const Dataset& first = shared_dataset(cfg, cache);
  EXPECT_TRUE(std::filesystem::exists(cache));
  const Dataset& second = shared_dataset(cfg, cache);
  EXPECT_EQ(&first, &second);  // in-process cache hit
  // A fresh mapped open from disk parses and fingerprint-matches.
  DatasetView from_disk;
  const auto st = Dataset::open_mapped(cache, &from_disk);
  ASSERT_TRUE(st) << st.to_string();
  EXPECT_EQ(from_disk.fingerprint(), cfg.fingerprint());
  EXPECT_EQ(from_disk.bursts().size(), first.bursts.size());
  from_disk.close();
  std::filesystem::remove_all("test_fleet_cache");
}

}  // namespace
}  // namespace msamp::fleet

// Tests for the 128-bit flow sketch (§4.2): precision at low counts,
// saturation behavior, and merge semantics.
#include "core/flow_sketch.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace msamp::core {
namespace {

TEST(FlowSketch, EmptyEstimatesZero) {
  FlowSketch s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.popcount(), 0);
  EXPECT_DOUBLE_EQ(s.estimate(), 0.0);
}

TEST(FlowSketch, SingleFlow) {
  FlowSketch s;
  s.add(42);
  EXPECT_EQ(s.popcount(), 1);
  EXPECT_NEAR(s.estimate(), 1.0, 0.01);
}

TEST(FlowSketch, DuplicateAddsAreIdempotent) {
  FlowSketch s;
  for (int i = 0; i < 100; ++i) s.add(7);
  EXPECT_EQ(s.popcount(), 1);
}

TEST(FlowSketch, PreciseUpToADozen) {
  // §4.2: "precise up to a dozen connections".
  util::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    FlowSketch s;
    const int n = 12;
    for (int i = 0; i < n; ++i) s.add(rng.next());
    EXPECT_NEAR(s.estimate(), n, 2.5) << "trial " << trial;
  }
}

class SketchAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(SketchAccuracyTest, EstimateTracksTrueCount) {
  const int n = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n) * 31 + 1);
  // Average over trials: linear counting is unbiased but noisy per trial.
  double total = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    FlowSketch s;
    for (int i = 0; i < n; ++i) s.add(rng.next());
    total += s.estimate();
  }
  const double mean = total / trials;
  // Tolerance widens with n (the sketch saturates near 500).
  const double tolerance = std::max(2.0, 0.25 * n);
  EXPECT_NEAR(mean, n, tolerance);
}

INSTANTIATE_TEST_SUITE_P(Counts, SketchAccuracyTest,
                         ::testing::Values(1, 3, 8, 16, 32, 64, 128, 250));

TEST(FlowSketch, SaturatesAroundPaperValue) {
  // With far more flows than bits, the estimate pins at -m ln(1/m) ~ 621;
  // the paper describes this as saturating "around 500".
  util::Rng rng(5);
  FlowSketch s;
  for (int i = 0; i < 100000; ++i) s.add(rng.next());
  EXPECT_EQ(s.popcount(), FlowSketch::kBits);
  EXPECT_NEAR(s.estimate(), 621.06, 1.0);
}

TEST(FlowSketch, MergeIsUnion) {
  util::Rng rng(6);
  FlowSketch a, b, u;
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t f = rng.next();
    a.add(f);
    u.add(f);
  }
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t f = rng.next();
    b.add(f);
    u.add(f);
  }
  a.merge(b);
  EXPECT_EQ(a.word(0), u.word(0));
  EXPECT_EQ(a.word(1), u.word(1));
}

TEST(FlowSketch, MergeMonotone) {
  FlowSketch a, b;
  a.add(1);
  b.add(2);
  const double before = a.estimate();
  a.merge(b);
  EXPECT_GE(a.estimate(), before);
}

TEST(FlowSketch, ClearResets) {
  FlowSketch s;
  s.add(1);
  s.add(2);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.estimate(), 0.0);
}

TEST(FlowSketch, WordsRoundTrip) {
  FlowSketch s;
  s.add(123);
  s.add(456);
  FlowSketch t;
  t.set_words(s.word(0), s.word(1));
  EXPECT_EQ(t.popcount(), s.popcount());
  EXPECT_DOUBLE_EQ(t.estimate(), s.estimate());
}

TEST(FlowSketch, HashSpreadsAcrossBothWords) {
  util::Rng rng(7);
  FlowSketch s;
  for (int i = 0; i < 1000; ++i) s.add(rng.next());
  EXPECT_GT(std::popcount(s.word(0)), 32);
  EXPECT_GT(std::popcount(s.word(1)), 32);
}

}  // namespace
}  // namespace msamp::core

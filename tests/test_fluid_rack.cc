// Tests for the millisecond-granularity fluid rack simulator.
#include "fleet/fluid_rack.h"

#include <gtest/gtest.h>

#include "analysis/contention.h"

namespace msamp::fleet {
namespace {

workload::RackMeta make_rack(int servers, workload::TaskKind kind,
                             double intensity = 1.0, bool ml_dense = false) {
  workload::RackMeta rack;
  rack.rack_id = 1;
  rack.region = workload::RegionId::kRegA;
  rack.ml_dense = ml_dense;
  rack.intensity = intensity;
  rack.server_service.assign(static_cast<std::size_t>(servers), 0);
  rack.server_kind.assign(static_cast<std::size_t>(servers), kind);
  return rack;
}

FleetConfig small_config() {
  FleetConfig cfg;
  cfg.samples_per_run = 200;
  cfg.warmup_ms = 20;
  return cfg;
}

TEST(FluidRack, ProducesAlignedSyncRun) {
  const auto rack = make_rack(8, workload::TaskKind::kWeb);
  const FleetConfig cfg = small_config();
  FluidRack fluid(rack, cfg, /*hour=*/6, util::Rng(1));
  const FluidRackResult res = fluid.run();
  EXPECT_EQ(res.sync.num_servers(), 8u);
  // Background traffic keeps every host latched near the window start, so
  // trimming loses at most a couple of samples.
  EXPECT_GE(res.sync.num_samples(), 195u);
  EXPECT_LE(res.sync.num_samples(),
            static_cast<std::size_t>(cfg.samples_per_run));
  EXPECT_EQ(res.sync.interval, sim::kMillisecond);
}

TEST(FluidRack, ByteConservation) {
  const auto rack = make_rack(16, workload::TaskKind::kCache, 1.5);
  FluidRack fluid(rack, small_config(), 6, util::Rng(2));
  const FluidRackResult res = fluid.run();
  EXPECT_GT(res.offered_bytes, 0);
  // Delivered + dropped cannot exceed offered (residual queue remains).
  EXPECT_LE(res.delivered_bytes + res.drop_bytes, res.offered_bytes * 101 / 100);
  EXPECT_GE(res.delivered_bytes, 0);
  EXPECT_GE(res.drop_bytes, 0);
  EXPECT_LE(res.ecn_bytes, res.delivered_bytes);
}

TEST(FluidRack, DeliveredNeverExceedsLineRate) {
  const auto rack = make_rack(8, workload::TaskKind::kCache, 3.0);
  const FleetConfig cfg = small_config();
  FluidRack fluid(rack, cfg, 6, util::Rng(3));
  const FluidRackResult res = fluid.run();
  const std::int64_t line =
      static_cast<std::int64_t>(cfg.line_rate_gbps * 1e9 / 8.0 / 1000.0);
  for (const auto& series : res.sync.series) {
    for (const auto& s : series) {
      EXPECT_LE(s.in_bytes, line + line / 50);  // interpolation slack
      EXPECT_GE(s.in_bytes, 0);
      EXPECT_LE(s.in_retx_bytes, s.in_bytes);
      EXPECT_LE(s.in_ecn_bytes, s.in_bytes);
    }
  }
}

TEST(FluidRack, MlDenseRackHasHigherContention) {
  const FleetConfig cfg = small_config();
  FluidRack sparse(make_rack(46, workload::TaskKind::kQuiet), cfg, 6,
                   util::Rng(4));
  FluidRack dense(make_rack(46, workload::TaskKind::kMlTraining), cfg, 6,
                  util::Rng(4));
  const auto rs = sparse.run();
  const auto rd = dense.run();
  const auto cs = analysis::summarize_contention(
      analysis::contention_series(rs.sync, cfg.burst_config()));
  const auto cd = analysis::summarize_contention(
      analysis::contention_series(rd.sync, cfg.burst_config()));
  EXPECT_GT(cd.avg, 3.0 * std::max(cs.avg, 0.05));
}

TEST(FluidRack, OverloadProducesDropsAndRetx) {
  // Very high intensity cache rack: bound to overflow DT limits.
  const auto rack = make_rack(24, workload::TaskKind::kCache, 4.0);
  FluidRack fluid(rack, small_config(), 6, util::Rng(5));
  const auto res = fluid.run();
  EXPECT_GT(res.drop_bytes, 0);
  // Drops repair as retransmissions visible to Millisampler.
  std::int64_t retx = 0;
  for (const auto& series : res.sync.series) {
    for (const auto& s : series) retx += s.in_retx_bytes;
  }
  EXPECT_GT(retx, 0);
}

TEST(FluidRack, EcnMarksAppearUnderLoad) {
  // Cache tasks have the heaviest overload tail: queues must cross the
  // 120KB ECN threshold somewhere in the window.
  const auto rack = make_rack(32, workload::TaskKind::kCache, 3.0);
  FluidRack fluid(rack, small_config(), 6, util::Rng(6));
  const auto res = fluid.run();
  EXPECT_GT(res.ecn_bytes, 0);
}

TEST(FluidRack, QuietRackSeesAlmostNoLoss) {
  const auto rack = make_rack(46, workload::TaskKind::kQuiet, 0.5);
  FluidRack fluid(rack, small_config(), 2, util::Rng(7));
  const auto res = fluid.run();
  EXPECT_LT(static_cast<double>(res.drop_bytes),
            0.001 * static_cast<double>(std::max<std::int64_t>(
                        res.offered_bytes, 1)));
}

TEST(FluidRack, DeterministicForSeed) {
  const auto rack = make_rack(8, workload::TaskKind::kWeb);
  FluidRack a(rack, small_config(), 6, util::Rng(8));
  FluidRack b(rack, small_config(), 6, util::Rng(8));
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.offered_bytes, rb.offered_bytes);
  EXPECT_EQ(ra.drop_bytes, rb.drop_bytes);
  ASSERT_EQ(ra.sync.num_samples(), rb.sync.num_samples());
  for (std::size_t s = 0; s < ra.sync.num_servers(); ++s) {
    for (std::size_t k = 0; k < ra.sync.num_samples(); ++k) {
      ASSERT_EQ(ra.sync.series[s][k].in_bytes, rb.sync.series[s][k].in_bytes);
    }
  }
}

TEST(FluidRackPolicy, StaticPartitionLosesMore) {
  const auto rack = make_rack(24, workload::TaskKind::kCache, 2.5);
  FleetConfig dt_cfg = small_config();
  FleetConfig sp_cfg = small_config();
  sp_cfg.buffer.policy = net::BufferPolicy::kStaticPartition;
  FluidRack dt(rack, dt_cfg, 6, util::Rng(21));
  FluidRack sp(rack, sp_cfg, 6, util::Rng(21));
  const auto rd = dt.run();
  const auto rs = sp.run();
  EXPECT_GT(rs.drop_bytes, rd.drop_bytes);
}

TEST(FluidRackPolicy, CompleteSharingAbsorbsMore) {
  const auto rack = make_rack(24, workload::TaskKind::kCache, 2.5);
  FleetConfig dt_cfg = small_config();
  FleetConfig cs_cfg = small_config();
  cs_cfg.buffer.policy = net::BufferPolicy::kCompleteSharing;
  FluidRack dt(rack, dt_cfg, 6, util::Rng(22));
  FluidRack cs(rack, cs_cfg, 6, util::Rng(22));
  const auto rd = dt.run();
  const auto rc = cs.run();
  EXPECT_LE(rc.drop_bytes, rd.drop_bytes);
}

TEST(FluidRackPolicy, BurstAbsorbNoWorseThanDt) {
  const auto rack = make_rack(24, workload::TaskKind::kWeb, 2.5);
  FleetConfig dt_cfg = small_config();
  FleetConfig ba_cfg = small_config();
  ba_cfg.buffer.policy = net::BufferPolicy::kBurstAbsorbDt;
  FluidRack dt(rack, dt_cfg, 6, util::Rng(23));
  FluidRack ba(rack, ba_cfg, 6, util::Rng(23));
  const auto rd = dt.run();
  const auto rb = ba.run();
  EXPECT_LE(rb.drop_bytes, rd.drop_bytes * 11 / 10);
}

TEST(FluidRackFabric, DisabledByDefaultNoFabricDrops) {
  const auto rack = make_rack(24, workload::TaskKind::kCache, 3.0);
  FluidRack fluid(rack, small_config(), 6, util::Rng(31));
  EXPECT_EQ(fluid.run().fabric_drop_bytes, 0);
}

TEST(FluidRackFabric, ConservationHolds) {
  const auto rack = make_rack(46, workload::TaskKind::kMlTraining, 1.6);
  FleetConfig cfg = small_config();
  cfg.fabric.enabled = true;
  FluidRack fluid(rack, cfg, 6, util::Rng(32));
  const auto res = fluid.run();
  // Offered counts post-fabric arrivals; fabric drops were removed first.
  EXPECT_LE(res.delivered_bytes + res.drop_bytes,
            res.offered_bytes + res.offered_bytes / 100);
  EXPECT_GE(res.fabric_drop_bytes, 0);
}

TEST(FluidRackFabric, UplinkCapProducesFabricDrops) {
  // 92 servers at heavy ML load offer far more than a 100G trunk.
  const auto rack = make_rack(92, workload::TaskKind::kMlTraining, 2.5);
  FleetConfig cfg = small_config();
  cfg.fabric.enabled = true;
  cfg.fabric.uplink_gbps = 100.0;
  FluidRack fluid(rack, cfg, 6, util::Rng(33));
  const auto res = fluid.run();
  EXPECT_GT(res.fabric_drop_bytes, 0);
}

TEST(FluidRackFabric, SmoothingReducesTorLossUnderDenseLoad) {
  const auto rack = make_rack(92, workload::TaskKind::kMlTraining, 1.6);
  FleetConfig off_cfg = small_config();
  FleetConfig on_cfg = small_config();
  on_cfg.fabric.enabled = true;
  FluidRack off(rack, off_cfg, 6, util::Rng(34));
  FluidRack on(rack, on_cfg, 6, util::Rng(34));
  const auto r_off = off.run();
  const auto r_on = on.run();
  // Smoothed arrivals must not increase ToR discards.
  EXPECT_LE(r_on.drop_bytes, r_off.drop_bytes + r_off.drop_bytes / 5 + 1500);
}

TEST(FluidRack, ConnectionEstimatesPopulated) {
  const auto rack = make_rack(8, workload::TaskKind::kCache);
  FluidRack fluid(rack, small_config(), 6, util::Rng(9));
  const auto res = fluid.run();
  double max_conns = 0;
  for (const auto& series : res.sync.series) {
    for (const auto& s : series) max_conns = std::max(max_conns, s.connections);
  }
  EXPECT_GT(max_conns, 5.0);  // sketch estimates flow through the pipeline
}

/// Property sweep: conservation and measurement invariants must hold for
/// every (task kind, buffer policy) combination.
class FluidInvariantTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FluidInvariantTest, ConservationAndBounds) {
  const auto kind = static_cast<workload::TaskKind>(std::get<0>(GetParam()));
  const auto policy = static_cast<net::BufferPolicy>(std::get<1>(GetParam()));
  const auto rack = make_rack(16, kind, 1.8);
  FleetConfig cfg = small_config();
  cfg.buffer.policy = policy;
  FluidRack fluid(rack, cfg, 6, util::Rng(77));
  const auto res = fluid.run();

  // Byte conservation with residual-queue slack.
  EXPECT_GE(res.offered_bytes, 0);
  EXPECT_LE(res.delivered_bytes + res.drop_bytes,
            res.offered_bytes + res.offered_bytes / 100);
  EXPECT_LE(res.ecn_bytes, res.delivered_bytes);

  // Measured series stay within physical bounds.
  const std::int64_t line =
      static_cast<std::int64_t>(cfg.line_rate_gbps * 1e9 / 8.0 / 1000.0);
  std::int64_t measured = 0;
  for (const auto& series : res.sync.series) {
    for (const auto& s : series) {
      EXPECT_GE(s.in_bytes, 0);
      EXPECT_LE(s.in_bytes, line + line / 50);
      EXPECT_LE(s.in_retx_bytes, s.in_bytes);
      EXPECT_LE(s.in_ecn_bytes, s.in_bytes);
      EXPECT_GE(s.connections, 0.0);
      measured += s.in_bytes;
    }
  }
  // The samplers saw (almost) everything delivered in the window — minus
  // trim loss at the edges, never more than delivered.
  EXPECT_LE(measured, res.delivered_bytes + 16 * 2 * line);
  EXPECT_GE(measured, res.delivered_bytes / 2);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndPolicies, FluidInvariantTest,
    ::testing::Combine(::testing::Range(0, workload::kNumTaskKinds),
                       ::testing::Range(0, 4)));

}  // namespace
}  // namespace msamp::fleet

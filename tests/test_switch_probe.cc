// Tests for the switch-side monitoring probe (§2.3 comparison substrate).
#include "net/switch_probe.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "transport/tcp_connection.h"

namespace msamp::net {
namespace {

TEST(SwitchProbe, SamplesAtConfiguredCadence) {
  sim::Simulator simulator;
  Switch tor(simulator, SwitchConfig{}, 4);
  SwitchProbeConfig cfg;
  cfg.interval = 10 * sim::kMicrosecond;
  cfg.max_samples = 11;
  SwitchProbe probe(simulator, tor, cfg);
  probe.start(0);
  simulator.run();
  ASSERT_EQ(probe.samples().size(), 11u);
  EXPECT_EQ(probe.samples()[0].at, 0);
  EXPECT_EQ(probe.samples()[10].at, 100 * sim::kMicrosecond);
  EXPECT_FALSE(probe.running());  // budget exhausted
}

TEST(SwitchProbe, ObservesQueueBuildUp) {
  sim::Simulator simulator;
  Switch tor(simulator, SwitchConfig{}, 4);
  int delivered = 0;
  tor.attach_port(0, 0, [&](const Packet&) { ++delivered; });
  SwitchProbeConfig cfg;
  cfg.interval = 10 * sim::kMicrosecond;
  cfg.max_samples = 200;
  SwitchProbe probe(simulator, tor, cfg);
  probe.start(0);
  // Dump 100 packets instantaneously: the queue must be visible draining.
  for (int i = 0; i < 100; ++i) {
    Packet p;
    p.flow = 1;
    p.dst = 0;
    p.bytes = 1500;
    tor.receive(p);
  }
  simulator.run();
  EXPECT_GT(probe.max_queue_bytes(), 100000);
  // Last samples show the queue drained.
  EXPECT_EQ(probe.samples().back().queue_bytes, 0);
  EXPECT_EQ(delivered, 100);
}

TEST(SwitchProbe, StopHaltsSampling) {
  sim::Simulator simulator;
  Switch tor(simulator, SwitchConfig{}, 2);
  SwitchProbeConfig cfg;
  cfg.interval = 10 * sim::kMicrosecond;
  SwitchProbe probe(simulator, tor, cfg);
  probe.start(1);
  simulator.run_until(55 * sim::kMicrosecond);
  probe.stop();
  const auto count = probe.samples().size();
  simulator.run();
  EXPECT_EQ(probe.samples().size(), count);
  EXPECT_EQ(probe.port(), 1);
}

TEST(SwitchProbe, RestartMovesPortsAndClears) {
  sim::Simulator simulator;
  Switch tor(simulator, SwitchConfig{}, 2);
  SwitchProbeConfig cfg;
  cfg.interval = 10 * sim::kMicrosecond;
  cfg.max_samples = 5;
  SwitchProbe probe(simulator, tor, cfg);
  probe.start(0);
  simulator.run();
  ASSERT_EQ(probe.samples().size(), 5u);
  probe.start(1);  // one port at a time: previous collection discarded
  simulator.run();
  EXPECT_EQ(probe.port(), 1);
  EXPECT_EQ(probe.samples().size(), 5u);
}

TEST(SwitchProbe, AgreesWithHostViewOnTotals) {
  // The switch probe integrates queue occupancy; the host sees delivered
  // bytes.  For one TCP transfer the probe's peak must be consistent with
  // the DT limit and the host must receive everything — the §2.3 claim
  // that both vantage points describe the same event.
  sim::Simulator simulator;
  net::RackConfig rack_cfg;
  rack_cfg.tor.buffer.ecn_threshold = 1 << 30;  // let the queue grow
  net::Rack rack(simulator, rack_cfg);
  SwitchProbeConfig cfg;
  cfg.interval = 25 * sim::kMicrosecond;
  SwitchProbe probe(simulator, rack.tor(), cfg);
  probe.start(0);
  transport::TransportHost sender(rack.remote(0));
  transport::TransportHost receiver(rack.server(0));
  transport::TcpConfig tcp;
  tcp.cc = transport::CcKind::kCubic;
  transport::TcpConnection conn(simulator, 1, sender, receiver, tcp);
  conn.send_app_data(2 << 20);
  simulator.run();
  EXPECT_EQ(conn.stats().delivered_bytes, 2 << 20);
  EXPECT_GT(probe.max_queue_bytes(), 0);
  // The queue can never exceed the lone-queue DT bound (~half the shared
  // quadrant plus reserve).
  EXPECT_LT(probe.max_queue_bytes(), (4 << 20) / 2 + (64 << 10));
}

}  // namespace
}  // namespace msamp::net

// Tests for the on-disk run store (§4.1-§4.2 persistence + retention).
#include "core/run_store.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace msamp::core {
namespace {

namespace fs = std::filesystem;

struct RunStoreFixture : ::testing::Test {
  std::string dir = "test_run_store_tmp";

  void TearDown() override { fs::remove_all(dir); }

  RunStoreConfig cfg() {
    RunStoreConfig c;
    c.directory = dir;
    return c;
  }

  RunRecord record(sim::SimTime start, std::int64_t fill = 1000) {
    RunRecord r;
    r.host = 1;
    r.start = start;
    r.interval = sim::kMillisecond;
    r.buckets.resize(50);
    for (std::size_t i = 0; i < r.buckets.size(); i += 3) {
      r.buckets[i].in_bytes = fill + static_cast<std::int64_t>(i);
    }
    return r;
  }
};

TEST_F(RunStoreFixture, PutAndGet) {
  RunStore store(cfg());
  ASSERT_TRUE(store.put(record(5 * sim::kSecond)));
  EXPECT_EQ(store.size(), 1u);
  const auto back = store.get(5 * sim::kSecond);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->start, 5 * sim::kSecond);
  EXPECT_EQ(back->buckets.size(), 50u);
  EXPECT_EQ(back->buckets[0].in_bytes, 1000);
  EXPECT_FALSE(store.get(6 * sim::kSecond).has_value());
}

TEST_F(RunStoreFixture, InvalidRunRejected) {
  RunStore store(cfg());
  RunRecord never_started;
  never_started.host = 1;
  EXPECT_FALSE(store.put(never_started));
  EXPECT_EQ(store.size(), 0u);
}

TEST_F(RunStoreFixture, QueryRangeSorted) {
  RunStore store(cfg());
  // Insert out of order.
  store.put(record(30 * sim::kSecond));
  store.put(record(10 * sim::kSecond));
  store.put(record(20 * sim::kSecond));
  store.put(record(40 * sim::kSecond));
  const auto runs =
      store.query(10 * sim::kSecond, 40 * sim::kSecond);  // [10, 40)
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].start, 10 * sim::kSecond);
  EXPECT_EQ(runs[1].start, 20 * sim::kSecond);
  EXPECT_EQ(runs[2].start, 30 * sim::kSecond);
}

TEST_F(RunStoreFixture, PersistsAcrossInstances) {
  {
    RunStore store(cfg());
    store.put(record(7 * sim::kSecond));
  }
  RunStore reopened(cfg());
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_TRUE(reopened.get(7 * sim::kSecond).has_value());
}

TEST_F(RunStoreFixture, SweepByAge) {
  auto c = cfg();
  c.retention = 60 * sim::kSecond;
  RunStore store(c);
  store.put(record(10 * sim::kSecond));
  store.put(record(100 * sim::kSecond));
  store.put(record(110 * sim::kSecond));
  // At t=120s, the 10s run is older than the 60s retention.
  EXPECT_EQ(store.sweep(120 * sim::kSecond), 1u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_FALSE(store.get(10 * sim::kSecond).has_value());
}

TEST_F(RunStoreFixture, SweepByBudgetEvictsOldest) {
  auto c = cfg();
  const auto one_run_bytes = [&] {
    RunStore probe(c);
    probe.put(record(1));
    const auto bytes = probe.total_bytes();
    probe.sweep(1LL << 60);
    return bytes;
  }();
  c.max_bytes = one_run_bytes * 2 + one_run_bytes / 2;  // fits two runs
  RunStore store(c);
  store.put(record(10 * sim::kSecond));
  store.put(record(20 * sim::kSecond));
  store.put(record(30 * sim::kSecond));
  EXPECT_GE(store.sweep(40 * sim::kSecond), 1u);
  EXPECT_LE(store.total_bytes(), c.max_bytes);
  // The newest runs survive.
  EXPECT_TRUE(store.get(30 * sim::kSecond).has_value());
  EXPECT_FALSE(store.get(10 * sim::kSecond).has_value());
}

TEST_F(RunStoreFixture, CorruptFileSkipped) {
  RunStore store(cfg());
  store.put(record(10 * sim::kSecond));
  // Truncate the stored file to garbage.
  for (const auto& dirent : fs::directory_iterator(dir)) {
    std::ofstream out(dirent.path(), std::ios::binary | std::ios::trunc);
    out << "junk";
  }
  const auto runs = store.query(0, 1LL << 60);
  EXPECT_TRUE(runs.empty());
  EXPECT_EQ(store.size(), 1u);  // file exists but does not parse
}

TEST_F(RunStoreFixture, ForeignFilesIgnored) {
  RunStore store(cfg());
  std::ofstream(fs::path(dir) / "README.txt") << "not a run";
  store.put(record(10 * sim::kSecond));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.query(0, 1LL << 60).size(), 1u);
}

TEST_F(RunStoreFixture, CompressionKeepsFilesSmall) {
  RunStore store(cfg());
  store.put(record(10 * sim::kSecond));
  // 50 buckets of raw fixed-width serialization would be ~2.4KB; the
  // sparse compressed file stays well under that.
  EXPECT_LT(store.total_bytes(), 800u);
}

}  // namespace
}  // namespace msamp::core

// Tests for util statistics: Welford accumulators, percentiles, CDFs,
// box summaries and histograms.
#include "util/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace msamp::util {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(StreamingStats, BasicMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, MergeMatchesSequential) {
  Rng rng(1);
  StreamingStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i < 400 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, EmptyIsZero) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_EQ(percentile({7.0}, 50.0), 7.0);
  EXPECT_EQ(percentile({7.0}, 100.0), 7.0);
}

TEST(Percentile, LinearInterpolation) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 17.5);
}

TEST(Percentile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({30.0, 10.0, 40.0, 20.0}, 50.0), 25.0);
}

TEST(Percentile, ClampedP) {
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, -10.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 200.0), 2.0);
}

TEST(BoxSummary, KnownValues) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(static_cast<double>(i));
  const BoxSummary b = box_summary(v);
  EXPECT_EQ(b.count, 101u);
  EXPECT_EQ(b.min, 1.0);
  EXPECT_EQ(b.max, 101.0);
  EXPECT_DOUBLE_EQ(b.median, 51.0);
  EXPECT_DOUBLE_EQ(b.p25, 26.0);
  EXPECT_DOUBLE_EQ(b.p75, 76.0);
  EXPECT_DOUBLE_EQ(b.p90, 91.0);
  EXPECT_DOUBLE_EQ(b.mean, 51.0);
}

TEST(BoxSummary, Empty) {
  std::vector<double> v;
  const BoxSummary b = box_summary(v);
  EXPECT_EQ(b.count, 0u);
}

TEST(EmpiricalCdf, MonotoneAndComplete) {
  Rng rng(2);
  std::vector<double> v;
  for (int i = 0; i < 5000; ++i) v.push_back(rng.normal(0, 1));
  const auto cdf = empirical_cdf(v, 50);
  ASSERT_EQ(cdf.size(), 50u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].percent, cdf[i - 1].percent);
  }
  EXPECT_DOUBLE_EQ(cdf.back().percent, 100.0);
}

TEST(EmpiricalCdf, FewerSamplesThanPoints) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0}, 100);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_EQ(cdf.front().value, 1.0);
  EXPECT_EQ(cdf.back().value, 3.0);
}

TEST(EmpiricalCdf, Empty) {
  EXPECT_TRUE(empirical_cdf({}, 10).empty());
}

TEST(Histogram, BinAssignment) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);    // bin 0
  h.add(0.99);   // bin 0
  h.add(1.0);    // bin 1
  h.add(9.99);   // bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClamps) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(1e9);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(Histogram, BinGeometry) {
  Histogram h(2.0, 12.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 11.0);
  EXPECT_EQ(h.bin_index(2.0), 0u);
  EXPECT_EQ(h.bin_index(3.999), 0u);
  EXPECT_EQ(h.bin_index(4.0), 1u);
}

TEST(SafeRatio, Basics) {
  EXPECT_DOUBLE_EQ(safe_ratio(6.0, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(safe_ratio(6.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(safe_ratio(0.0, 0.0), 0.0);
}

}  // namespace
}  // namespace msamp::util

// Tests for per-server-run statistics (§6).
#include "analysis/burst_stats.h"

#include <gtest/gtest.h>

namespace msamp::analysis {
namespace {

constexpr std::int64_t kLine = 1562500;

std::vector<core::BucketSample> series(
    std::vector<std::pair<std::int64_t, double>> samples) {
  std::vector<core::BucketSample> out(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    out[i].in_bytes = samples[i].first;
    out[i].connections = samples[i].second;
  }
  return out;
}

TEST(BurstStats, EmptySeries) {
  const auto s = server_run_stats({}, {}, BurstDetectConfig{});
  EXPECT_FALSE(s.bursty);
  EXPECT_EQ(s.total_in_bytes, 0);
}

TEST(BurstStats, NonBurstyRun) {
  const auto ser = series({{1000, 2}, {2000, 3}});
  const auto bursts = detect_bursts(ser, BurstDetectConfig{});
  const auto s = server_run_stats(ser, bursts, BurstDetectConfig{});
  EXPECT_FALSE(s.bursty);
  EXPECT_EQ(s.num_bursts, 0u);
  EXPECT_DOUBLE_EQ(s.bursts_per_sec, 0.0);
  EXPECT_EQ(s.total_in_bytes, 3000);
  EXPECT_DOUBLE_EQ(s.util_inside, 0.0);
  EXPECT_GT(s.util_outside, 0.0);
}

TEST(BurstStats, InsideOutsideSplit) {
  const auto ser = series({
      {1000, 2.0},    // outside
      {kLine, 20.0},  // burst
      {kLine, 30.0},  // burst
      {2000, 4.0},    // outside
  });
  const auto bursts = detect_bursts(ser, BurstDetectConfig{});
  const auto s = server_run_stats(ser, bursts, BurstDetectConfig{});
  EXPECT_TRUE(s.bursty);
  EXPECT_EQ(s.num_bursts, 1u);
  EXPECT_NEAR(s.util_inside, 1.0, 0.01);
  EXPECT_NEAR(s.util_outside, 1500.0 / kLine, 1e-6);
  EXPECT_DOUBLE_EQ(s.conns_inside, 25.0);
  EXPECT_DOUBLE_EQ(s.conns_outside, 3.0);
  EXPECT_EQ(s.burst_in_bytes, 2 * kLine);
  EXPECT_EQ(s.total_in_bytes, 2 * kLine + 3000);
}

TEST(BurstStats, BurstsPerSecond) {
  // 4 bursts in a 1000-sample (1s) run.
  std::vector<std::pair<std::int64_t, double>> raw(1000, {0, 1.0});
  for (std::size_t at : {10u, 200u, 500u, 900u}) raw[at] = {kLine, 5.0};
  const auto ser = series(raw);
  const auto bursts = detect_bursts(ser, BurstDetectConfig{});
  const auto s = server_run_stats(ser, bursts, BurstDetectConfig{});
  EXPECT_EQ(s.num_bursts, 4u);
  EXPECT_DOUBLE_EQ(s.bursts_per_sec, 4.0);
}

TEST(BurstStats, AvgUtilCombines) {
  const auto ser = series({{kLine, 1}, {0, 1}});
  const auto bursts = detect_bursts(ser, BurstDetectConfig{});
  const auto s = server_run_stats(ser, bursts, BurstDetectConfig{});
  EXPECT_NEAR(s.avg_util, 0.5, 0.01);
}

TEST(BurstStats, AllSamplesInBurst) {
  const auto ser = series({{kLine, 10}, {kLine, 10}});
  const auto bursts = detect_bursts(ser, BurstDetectConfig{});
  const auto s = server_run_stats(ser, bursts, BurstDetectConfig{});
  EXPECT_DOUBLE_EQ(s.util_outside, 0.0);
  EXPECT_DOUBLE_EQ(s.conns_outside, 0.0);
  EXPECT_NEAR(s.util_inside, 1.0, 1e-9);
}

}  // namespace
}  // namespace msamp::analysis

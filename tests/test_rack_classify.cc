// Tests for rack classification (§7.1 bimodal split).
#include "analysis/rack_classify.h"

#include <gtest/gtest.h>

namespace msamp::analysis {
namespace {

TEST(RackClassify, RegBAlwaysRegB) {
  EXPECT_EQ(classify_rack(workload::RegionId::kRegB, 0.0),
            RackClass::kRegB);
  EXPECT_EQ(classify_rack(workload::RegionId::kRegB, 100.0),
            RackClass::kRegB);
}

TEST(RackClassify, RegAThreshold) {
  EXPECT_EQ(classify_rack(workload::RegionId::kRegA, 1.0),
            RackClass::kRegATypical);
  EXPECT_EQ(classify_rack(workload::RegionId::kRegA, 5.0),
            RackClass::kRegATypical);  // threshold is exclusive
  EXPECT_EQ(classify_rack(workload::RegionId::kRegA, 5.01),
            RackClass::kRegAHigh);
  EXPECT_EQ(classify_rack(workload::RegionId::kRegA, 12.0),
            RackClass::kRegAHigh);
}

TEST(RackClassify, CustomThreshold) {
  ClassifyConfig cfg;
  cfg.high_threshold = 2.0;
  EXPECT_EQ(classify_rack(workload::RegionId::kRegA, 3.0, cfg),
            RackClass::kRegAHigh);
}

TEST(RackClassify, Names) {
  EXPECT_EQ(rack_class_name(RackClass::kRegATypical), "RegA-Typical");
  EXPECT_EQ(rack_class_name(RackClass::kRegAHigh), "RegA-High");
  EXPECT_EQ(rack_class_name(RackClass::kRegB), "RegB");
}

}  // namespace
}  // namespace msamp::analysis

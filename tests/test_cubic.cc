// Tests for the CUBIC congestion controller.
#include "transport/cubic.h"

#include <gtest/gtest.h>

namespace msamp::transport {
namespace {

CcConfig cfg() {
  CcConfig c;
  c.mss = 1000;
  c.init_cwnd = 10000;
  c.max_cwnd = 10 << 20;
  return c;
}

TEST(Cubic, NotEcnCapable) {
  Cubic cc(cfg());
  EXPECT_FALSE(cc.ecn_capable());
  EXPECT_STREQ(cc.name(), "cubic");
}

TEST(Cubic, SlowStartInitially) {
  Cubic cc(cfg());
  const std::int64_t w0 = cc.cwnd();
  cc.on_ack(w0, false, 0, 100);
  EXPECT_EQ(cc.cwnd(), 2 * w0);
}

TEST(Cubic, LossMultiplicativeDecrease) {
  Cubic cc(cfg());
  for (int i = 0; i < 5; ++i) cc.on_ack(cc.cwnd(), false, 0, 100);
  const std::int64_t before = cc.cwnd();
  cc.on_loss(sim::kSecond);
  EXPECT_NEAR(static_cast<double>(cc.cwnd()),
              0.7 * static_cast<double>(before),
              static_cast<double>(cfg().mss));
}

TEST(Cubic, GrowsBackTowardWmax) {
  Cubic cc(cfg());
  for (int i = 0; i < 5; ++i) cc.on_ack(cc.cwnd(), false, 0, 100);
  const std::int64_t w_max = cc.cwnd();
  cc.on_loss(0);
  // Ack steadily for simulated seconds; cubic should recover toward w_max.
  sim::SimTime now = 0;
  for (int i = 0; i < 3000; ++i) {
    now += sim::kMillisecond;
    cc.on_ack(cfg().mss, false, now, 100);
  }
  EXPECT_GT(cc.cwnd(), w_max * 8 / 10);
}

TEST(Cubic, ConcaveThenConvex) {
  // Growth rate should slow as cwnd approaches w_max (concave region),
  // then accelerate past it (convex region).
  Cubic cc(cfg());
  for (int i = 0; i < 5; ++i) cc.on_ack(cc.cwnd(), false, 0, 100);
  cc.on_loss(0);
  sim::SimTime now = 0;
  std::int64_t early_growth = 0, late_growth = 0;
  std::int64_t prev = cc.cwnd();
  for (int i = 0; i < 400; ++i) {
    now += sim::kMillisecond;
    cc.on_ack(cfg().mss, false, now, 100);
  }
  early_growth = cc.cwnd() - prev;
  prev = cc.cwnd();
  for (int i = 0; i < 400; ++i) {
    now += 10 * sim::kMillisecond;
    cc.on_ack(cfg().mss, false, now, 100);
  }
  late_growth = cc.cwnd() - prev;
  EXPECT_GT(late_growth, early_growth);
}

TEST(Cubic, TimeoutDropsToOneMss) {
  Cubic cc(cfg());
  for (int i = 0; i < 5; ++i) cc.on_ack(cc.cwnd(), false, 0, 100);
  cc.on_timeout(0);
  EXPECT_EQ(cc.cwnd(), cfg().mss);
}

TEST(Cubic, NeverBelowOneMss) {
  Cubic cc(cfg());
  for (int i = 0; i < 50; ++i) cc.on_loss(static_cast<sim::SimTime>(i));
  EXPECT_GE(cc.cwnd(), cfg().mss);
}

TEST(Cubic, IgnoresEceFlag) {
  // Cubic does not react to ECN echoes, only to loss.
  Cubic cc(cfg());
  for (int i = 0; i < 5; ++i) cc.on_ack(cc.cwnd(), false, 0, 100);
  const std::int64_t before = cc.cwnd();
  cc.on_ack(cfg().mss, true, sim::kSecond, 100);
  EXPECT_GE(cc.cwnd(), before);
}

}  // namespace
}  // namespace msamp::transport

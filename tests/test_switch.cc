// Tests for the ToR switch: forwarding, MMU-backed drops, multicast
// replication, and uplink fabric behavior.
#include "net/switch.h"

#include <vector>

#include <gtest/gtest.h>

namespace msamp::net {
namespace {

Packet data(HostId dst, std::int32_t bytes, FlowId flow = 1, bool ect = false) {
  Packet p;
  p.flow = flow;
  p.src = 99;
  p.dst = dst;
  p.bytes = bytes;
  p.ect = ect;
  return p;
}

struct SwitchFixture : ::testing::Test {
  sim::Simulator simulator;
  SwitchConfig cfg;
  std::unique_ptr<Switch> sw;
  std::vector<std::vector<Packet>> port_rx;
  std::vector<Packet> uplink_rx;

  void make(int ports) {
    sw = std::make_unique<Switch>(simulator, cfg, ports);
    port_rx.assign(static_cast<std::size_t>(ports), {});
    for (int i = 0; i < ports; ++i) {
      sw->attach_port(i, static_cast<HostId>(i), [this, i](const Packet& p) {
        port_rx[static_cast<std::size_t>(i)].push_back(p);
      });
    }
    sw->set_uplink([this](const Packet& p) { uplink_rx.push_back(p); });
  }
};

TEST_F(SwitchFixture, ForwardsToAttachedPort) {
  make(4);
  sw->receive(data(2, 1500));
  simulator.run();
  EXPECT_EQ(port_rx[2].size(), 1u);
  EXPECT_TRUE(port_rx[0].empty());
}

TEST_F(SwitchFixture, UnknownDestinationGoesUplink) {
  make(4);
  sw->receive(data(12345, 1500));
  simulator.run();
  ASSERT_EQ(uplink_rx.size(), 1u);
  EXPECT_EQ(uplink_rx[0].dst, 12345u);
}

TEST_F(SwitchFixture, UplinkHasFabricDelay) {
  cfg.fabric_delay = 5000;
  make(2);
  sim::SimTime arrival = -1;
  sw->set_uplink([&](const Packet&) { arrival = simulator.now(); });
  sw->receive(data(9999, 100));
  simulator.run();
  EXPECT_EQ(arrival, 5000);
}

TEST_F(SwitchFixture, DownlinkDrainsAtPortRate) {
  cfg.downlink_gbps = 12.5;
  cfg.downlink_propagation = 0;
  make(2);
  sw->receive(data(0, 1500));
  sw->receive(data(0, 1500));
  simulator.run();
  ASSERT_EQ(port_rx[0].size(), 2u);
  // Serialization is 960ns per 1500B packet at 12.5G.
  EXPECT_EQ(simulator.now(), 1920);
}

TEST_F(SwitchFixture, MulticastReplicatesToSubscribers) {
  make(4);
  const HostId group = kMulticastBase + 7;
  sw->subscribe_multicast(group, 0);
  sw->subscribe_multicast(group, 2);
  sw->receive(data(group, 1000));
  simulator.run();
  EXPECT_EQ(port_rx[0].size(), 1u);
  EXPECT_TRUE(port_rx[1].empty());
  EXPECT_EQ(port_rx[2].size(), 1u);
  EXPECT_TRUE(port_rx[3].empty());
}

TEST_F(SwitchFixture, MulticastToUnknownGroupDropsSilently) {
  make(2);
  sw->receive(data(kMulticastBase + 3, 1000));
  simulator.run();
  EXPECT_TRUE(port_rx[0].empty());
  EXPECT_TRUE(uplink_rx.empty());
}

TEST_F(SwitchFixture, MmuRejectsWhenFull) {
  cfg.buffer.total_bytes = 64 << 10;
  cfg.buffer.quadrants = 1;
  cfg.buffer.reserve_per_queue = 0;
  make(1);
  // Offer far more than the buffer can hold instantaneously.
  for (int i = 0; i < 200; ++i) sw->receive(data(0, 1500));
  EXPECT_GT(sw->mmu().counters(0).dropped_packets, 0);
  simulator.run();
  EXPECT_LT(port_rx[0].size(), 200u);
  // Everything admitted was eventually delivered.
  EXPECT_EQ(static_cast<std::int64_t>(port_rx[0].size()) * 1500,
            sw->mmu().counters(0).enqueued_bytes);
}

TEST_F(SwitchFixture, CeMarkAppliedToDeliveredPacket) {
  cfg.buffer.ecn_threshold = 3000;
  make(1);
  for (int i = 0; i < 5; ++i) sw->receive(data(0, 1500, 1, /*ect=*/true));
  simulator.run();
  ASSERT_EQ(port_rx[0].size(), 5u);
  EXPECT_FALSE(port_rx[0][0].ce);  // queue was short on arrival
  EXPECT_TRUE(port_rx[0][4].ce);   // queue was past 3000B on arrival
}

TEST_F(SwitchFixture, BufferFreedAfterTransmission) {
  make(1);
  sw->receive(data(0, 1500));
  EXPECT_EQ(sw->mmu().queue_len(0), 1500);
  simulator.run();
  EXPECT_EQ(sw->mmu().queue_len(0), 0);
}

}  // namespace
}  // namespace msamp::net

// Tests for the DCTCP congestion controller.
#include "transport/dctcp.h"

#include <gtest/gtest.h>

namespace msamp::transport {
namespace {

CcConfig cfg() {
  CcConfig c;
  c.mss = 1000;
  c.init_cwnd = 10000;
  c.max_cwnd = 1 << 20;
  return c;
}

TEST(Dctcp, SlowStartDoublesPerWindow) {
  Dctcp cc(cfg());
  const std::int64_t w0 = cc.cwnd();
  // Ack one full window without marks: slow start adds acked bytes.
  cc.on_ack(w0, false, 0, 100);
  EXPECT_EQ(cc.cwnd(), 2 * w0);
}

TEST(Dctcp, EcnCapable) {
  Dctcp cc(cfg());
  EXPECT_TRUE(cc.ecn_capable());
  EXPECT_STREQ(cc.name(), "dctcp");
}

TEST(Dctcp, FullMarkingHalvesEventually) {
  Dctcp cc(cfg());
  // Alpha starts at 1 (conservative); a fully marked window cuts ~in half.
  const std::int64_t w0 = cc.cwnd();
  cc.on_ack(w0, true, 0, 100);
  EXPECT_LT(cc.cwnd(), w0 + w0 / 2);  // growth then proportional cut
}

TEST(Dctcp, AlphaConvergesToMarkFraction) {
  Dctcp cc(cfg());
  // Feed many windows with ~25% marked bytes.
  for (int w = 0; w < 200; ++w) {
    const std::int64_t window = cc.cwnd();
    const std::int64_t chunk = window / 4;
    cc.on_ack(chunk, true, 0, 100);
    cc.on_ack(window - chunk, false, 0, 100);
  }
  EXPECT_NEAR(cc.alpha(), 0.25, 0.1);
}

TEST(Dctcp, UnmarkedTrafficDrivesAlphaToZero) {
  Dctcp cc(cfg());
  for (int w = 0; w < 100; ++w) cc.on_ack(cc.cwnd(), false, 0, 100);
  EXPECT_LT(cc.alpha(), 0.02);
}

TEST(Dctcp, ProportionalDecreaseGentlerThanHalving) {
  // With low alpha, marks barely reduce cwnd — DCTCP's key property.
  Dctcp cc(cfg());
  for (int w = 0; w < 100; ++w) cc.on_ack(cc.cwnd(), false, 0, 100);
  const std::int64_t before = cc.cwnd();
  // One lightly marked window.
  cc.on_ack(cc.cwnd() / 20, true, 0, 100);
  cc.on_ack(before - before / 20, false, 0, 100);
  EXPECT_GT(cc.cwnd(), before * 8 / 10);
}

TEST(Dctcp, LossHalves) {
  Dctcp cc(cfg());
  for (int i = 0; i < 8; ++i) cc.on_ack(cc.cwnd(), false, 0, 100);
  const std::int64_t before = cc.cwnd();
  cc.on_loss(0);
  EXPECT_EQ(cc.cwnd(), before / 2);
}

TEST(Dctcp, TimeoutResetsToOneMss) {
  Dctcp cc(cfg());
  for (int i = 0; i < 8; ++i) cc.on_ack(cc.cwnd(), false, 0, 100);
  cc.on_timeout(0);
  EXPECT_EQ(cc.cwnd(), cfg().mss);
}

TEST(Dctcp, NeverBelowOneMss) {
  Dctcp cc(cfg());
  for (int i = 0; i < 50; ++i) cc.on_loss(0);
  EXPECT_GE(cc.cwnd(), cfg().mss);
}

TEST(Dctcp, RespectsMaxCwnd) {
  auto c = cfg();
  c.max_cwnd = 50000;
  Dctcp cc(c);
  for (int i = 0; i < 100; ++i) cc.on_ack(cc.cwnd(), false, 0, 100);
  EXPECT_LE(cc.cwnd(), 50000);
}

TEST(Dctcp, CongestionAvoidanceLinearAfterLoss) {
  Dctcp cc(cfg());
  cc.on_loss(0);  // ssthresh = cwnd/2, now in CA at ssthresh
  const std::int64_t w = cc.cwnd();
  // One window of acks in CA adds ~one MSS.
  std::int64_t acked = 0;
  while (acked < w) {
    cc.on_ack(1000, false, 0, 100);
    acked += 1000;
  }
  EXPECT_LE(cc.cwnd() - w, 2 * cfg().mss);
  EXPECT_GE(cc.cwnd() - w, cfg().mss);
}

}  // namespace
}  // namespace msamp::transport

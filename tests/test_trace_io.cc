// Tests for the sync-trace CSV import/export.
#include "analysis/trace_io.h"

#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "analysis/contention.h"
#include "fleet/fluid_rack.h"

namespace msamp::analysis {
namespace {

core::SyncRun sample_run() {
  core::SyncRun run;
  run.grid_start = 7 * sim::kMillisecond;
  run.interval = sim::kMillisecond;
  run.hosts = {0, 1, 2};
  run.series.assign(3, std::vector<core::BucketSample>(5));
  run.series[0][1].in_bytes = 1000000;
  run.series[0][1].connections = 12.5;
  run.series[0][3].in_bytes = 1500000;
  run.series[0][3].in_retx_bytes = 4000;
  run.series[1][2].out_bytes = 777;
  run.series[1][2].in_ecn_bytes = 0;
  // server 2 stays all-zero (idle)
  return run;
}

TEST(TraceIo, RoundTrip) {
  const core::SyncRun run = sample_run();
  std::stringstream ss;
  write_sync_trace(run, ss);
  const auto back = read_sync_trace(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->grid_start, run.grid_start);
  EXPECT_EQ(back->interval, run.interval);
  ASSERT_EQ(back->num_servers(), 3u);
  ASSERT_EQ(back->num_samples(), 5u);
  EXPECT_EQ(back->series[0][1].in_bytes, 1000000);
  EXPECT_NEAR(back->series[0][1].connections, 12.5, 1e-3);
  EXPECT_EQ(back->series[0][3].in_retx_bytes, 4000);
  EXPECT_EQ(back->series[1][2].out_bytes, 777);
  // Idle server reconstructed as all-zero.
  for (const auto& s : back->series[2]) EXPECT_EQ(s.in_bytes, 0);
}

TEST(TraceIo, SparseEncodingSkipsZeros) {
  std::stringstream ss;
  write_sync_trace(sample_run(), ss);
  const std::string text = ss.str();
  // 2 header lines + 3 data rows for server 0/1 + 1 anchor each for
  // servers 1 and 2 (last sample).  Count lines.
  int lines = 0;
  for (char c : text) lines += c == '\n';
  EXPECT_LE(lines, 9);
}

TEST(TraceIo, RejectsMalformed) {
  auto parse = [](const std::string& text) {
    std::stringstream ss(text);
    return read_sync_trace(ss).has_value();
  };
  EXPECT_FALSE(parse(""));
  EXPECT_FALSE(parse("garbage\n"));
  EXPECT_FALSE(parse("# msamp-sync-trace v1\nwrong_columns\n"));
  EXPECT_FALSE(parse("# msamp-sync-trace v1 interval_ns=0 grid_start_ns=0\n"));
  // Valid header, corrupt row.
  std::stringstream good;
  write_sync_trace(sample_run(), good);
  std::string text = good.str();
  EXPECT_FALSE(parse(text + "not,a,row\n"));
  // Server-id gap (0 then 5).
  std::stringstream gap;
  gap << "# msamp-sync-trace v1 interval_ns=1000000 grid_start_ns=0\n"
      << "server,sample,in_bytes,in_retx_bytes,out_bytes,out_retx_bytes,"
         "in_ecn_bytes,connections\n"
      << "0,0,1,0,0,0,0,0.0\n"
      << "5,0,1,0,0,0,0,0.0\n";
  EXPECT_FALSE(read_sync_trace(gap).has_value());
}

TEST(TraceIo, EmptyTraceIsValid) {
  std::stringstream ss;
  ss << "# msamp-sync-trace v1 interval_ns=1000000 grid_start_ns=0\n"
     << "server,sample,in_bytes,in_retx_bytes,out_bytes,out_retx_bytes,"
        "in_ecn_bytes,connections\n";
  const auto run = read_sync_trace(ss);
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->num_servers(), 0u);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = "test_trace_tmp/run.csv";
  ASSERT_TRUE(write_sync_trace_file(sample_run(), path));
  const auto back = read_sync_trace_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->num_servers(), 3u);
  std::filesystem::remove_all("test_trace_tmp");
}

TEST(TraceIo, MissingFileFails) {
  EXPECT_FALSE(read_sync_trace_file("no/such/file.csv").has_value());
}

TEST(TraceIo, FluidRunSurvivesExportImportAnalysis) {
  // The full path an external-data user takes: simulate, export, import,
  // analyze — contention results must be identical.
  workload::RackMeta rack;
  rack.rack_id = 1;
  rack.region = workload::RegionId::kRegA;
  rack.intensity = 1.5;
  rack.server_service.assign(12, 0);
  rack.server_kind.assign(12, workload::TaskKind::kCache);
  fleet::FleetConfig cfg;
  cfg.samples_per_run = 120;
  cfg.warmup_ms = 10;
  fleet::FluidRack fluid(rack, cfg, 6, util::Rng(5));
  const core::SyncRun original = fluid.run().sync;

  std::stringstream ss;
  write_sync_trace(original, ss);
  const auto imported = read_sync_trace(ss);
  ASSERT_TRUE(imported.has_value());

  const auto cfg_b = cfg.burst_config();
  const auto c1 = contention_series(original, cfg_b);
  const auto c2 = contention_series(*imported, cfg_b);
  EXPECT_EQ(c1, c2);
}

}  // namespace
}  // namespace msamp::analysis

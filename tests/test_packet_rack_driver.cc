// Tests for the packet-level rack workload driver.
#include "workload/packet_rack_driver.h"

#include <gtest/gtest.h>

#include "analysis/burst_detect.h"
#include "core/sampler.h"

namespace msamp::workload {
namespace {

struct DriverFixture : ::testing::Test {
  sim::Simulator simulator;
  net::RackConfig rack_cfg;
  std::unique_ptr<net::Rack> rack;
  PacketRackDriverConfig cfg;

  void make(int servers, int remotes, TaskKind kind) {
    rack_cfg.num_servers = servers;
    rack_cfg.num_remote_hosts = remotes;
    rack = std::make_unique<net::Rack>(simulator, rack_cfg);
    cfg.server_tasks.assign(static_cast<std::size_t>(servers), kind);
  }
};

TEST_F(DriverFixture, GeneratesTrafficAndBursts) {
  // ML training has the highest active-run probability, so bursts are
  // guaranteed to appear in a short window.
  make(4, 8, TaskKind::kMlTraining);
  cfg.intensity = 2.0;
  PacketRackDriver driver(simulator, *rack, cfg, util::Rng(1));
  driver.start(300 * sim::kMillisecond);
  simulator.run();
  EXPECT_GT(driver.total_delivered(), 1 << 20);
  EXPECT_GT(driver.bursts_issued(), 3u);
}

TEST_F(DriverFixture, QuietTaskStaysQuiet) {
  make(4, 8, TaskKind::kQuiet);
  PacketRackDriver driver(simulator, *rack, cfg, util::Rng(2));
  driver.start(200 * sim::kMillisecond);
  simulator.run();
  // Background only: well under 5% of 4 x 12.5G x 0.2s.
  EXPECT_LT(driver.total_delivered(), 60 << 20);
}

TEST_F(DriverFixture, SamplerSeesRealBursts) {
  make(2, 12, TaskKind::kCache);
  cfg.intensity = 2.5;
  core::SamplerConfig sampler_cfg;
  sampler_cfg.filter.num_buckets = 300;
  sampler_cfg.filter.num_cpus = 4;
  core::Sampler sampler(simulator, rack->server(0), 0, sampler_cfg);
  PacketRackDriver driver(simulator, *rack, cfg, util::Rng(3));
  core::RunRecord record;
  sampler.start_run(sim::kMillisecond,
                    [&](const core::RunRecord& r) { record = r; });
  driver.start(350 * sim::kMillisecond);
  simulator.run();
  ASSERT_TRUE(record.valid());
  const auto bursts =
      analysis::detect_bursts(record.buckets, analysis::BurstDetectConfig{});
  EXPECT_GE(bursts.size(), 1u);
}

TEST_F(DriverFixture, DeterministicForSeed) {
  make(3, 6, TaskKind::kWeb);
  PacketRackDriver a(simulator, *rack, cfg, util::Rng(4));
  a.start(100 * sim::kMillisecond);
  simulator.run();
  const auto delivered_a = a.total_delivered();

  sim::Simulator sim2;
  net::Rack rack2(sim2, rack_cfg);
  PacketRackDriver b(sim2, rack2, cfg, util::Rng(4));
  b.start(100 * sim::kMillisecond);
  sim2.run();
  EXPECT_EQ(delivered_a, b.total_delivered());
}

TEST_F(DriverFixture, StopsAtDeadline) {
  make(2, 4, TaskKind::kCache);
  PacketRackDriver driver(simulator, *rack, cfg, util::Rng(5));
  driver.start(50 * sim::kMillisecond);
  simulator.run();
  // All generation ceased at the deadline; only tail transfers and their
  // backed-off retransmission timers may run on for a few seconds 
  EXPECT_LT(simulator.now(), 10 * sim::kSecond);
}

}  // namespace
}  // namespace msamp::workload

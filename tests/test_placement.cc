// Tests for the service placement generator (§7.1 patterns).
#include "workload/placement.h"

#include <set>

#include <gtest/gtest.h>

#include "util/stats.h"

namespace msamp::workload {
namespace {

TEST(Placement, RackShapeMatchesConfig) {
  util::Rng rng(1);
  const auto cfg = default_placement(RegionId::kRegA, 50, 92);
  const auto racks = generate_racks(cfg, 0, rng);
  ASSERT_EQ(racks.size(), 50u);
  for (const auto& r : racks) {
    EXPECT_EQ(r.server_service.size(), 92u);
    EXPECT_EQ(r.server_kind.size(), 92u);
    EXPECT_EQ(r.region, RegionId::kRegA);
    EXPECT_GT(r.intensity, 0.0);
  }
}

TEST(Placement, RackIdsSequential) {
  util::Rng rng(2);
  const auto racks =
      generate_racks(default_placement(RegionId::kRegA, 10, 8), 100, rng);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(racks[static_cast<std::size_t>(i)].rack_id, 100 + i);
  }
}

TEST(Placement, RegAHasMlDenseFraction) {
  util::Rng rng(3);
  const auto cfg = default_placement(RegionId::kRegA, 100, 92);
  const auto racks = generate_racks(cfg, 0, rng);
  int dense = 0;
  for (const auto& r : racks) dense += r.ml_dense;
  EXPECT_EQ(dense, 20);  // 20% of racks (§7.1)
}

TEST(Placement, MlDenseRacksDominatedByOneMlService) {
  util::Rng rng(4);
  const auto cfg = default_placement(RegionId::kRegA, 60, 92);
  const auto racks = generate_racks(cfg, 0, rng);
  std::set<int> dominant_services;
  for (const auto& r : racks) {
    if (!r.ml_dense) continue;
    EXPECT_GE(r.dominant_share(), 0.55) << "rack " << r.rack_id;
    int ml_servers = 0;
    for (auto k : r.server_kind) ml_servers += k == TaskKind::kMlTraining;
    EXPECT_GE(ml_servers, 92 * 55 / 100);
    // The dominant service id must be the shared fleet-wide ML service.
    dominant_services.insert(cfg.pool_services);
  }
  // The paper: the top task of every RegA-High rack is the SAME ML task.
  EXPECT_LE(dominant_services.size(), 1u);
}

TEST(Placement, TypicalRacksDiverse) {
  util::Rng rng(5);
  const auto cfg = default_placement(RegionId::kRegA, 100, 92);
  const auto racks = generate_racks(cfg, 0, rng);
  std::vector<double> distinct, dominant;
  for (const auto& r : racks) {
    if (r.ml_dense) continue;
    distinct.push_back(r.distinct_tasks());
    dominant.push_back(r.dominant_share());
  }
  // Median typical rack runs ~14 distinct tasks with a ~25% dominant share.
  EXPECT_NEAR(util::percentile(distinct, 50), 14.0, 3.0);
  EXPECT_NEAR(util::percentile(dominant, 50), 0.25, 0.12);
}

TEST(Placement, MlDenseRacksRunFewerTasks) {
  util::Rng rng(6);
  const auto cfg = default_placement(RegionId::kRegA, 100, 92);
  const auto racks = generate_racks(cfg, 0, rng);
  std::vector<double> dense_distinct, typical_distinct;
  for (const auto& r : racks) {
    (r.ml_dense ? dense_distinct : typical_distinct)
        .push_back(r.distinct_tasks());
  }
  EXPECT_LT(util::percentile(dense_distinct, 50),
            util::percentile(typical_distinct, 50));
}

TEST(Placement, RegBHasNoDenseRacksButMlLean) {
  util::Rng rng(7);
  const auto cfg = default_placement(RegionId::kRegB, 100, 92);
  const auto racks = generate_racks(cfg, 0, rng);
  int dense = 0;
  int racks_with_ml = 0;
  for (const auto& r : racks) {
    dense += r.ml_dense;
    int ml = 0;
    for (auto k : r.server_kind) {
      ml += k == TaskKind::kMlTraining || k == TaskKind::kMlInference;
    }
    racks_with_ml += ml > 0;
  }
  EXPECT_EQ(dense, 0);
  EXPECT_GT(racks_with_ml, 60);  // lean spreads ML across most racks
}

TEST(Placement, DominantShareConsistency) {
  RackMeta r;
  r.server_service = {1, 1, 2, 3};
  EXPECT_DOUBLE_EQ(r.dominant_share(), 0.5);
  EXPECT_EQ(r.distinct_tasks(), 3);
  RackMeta empty;
  EXPECT_DOUBLE_EQ(empty.dominant_share(), 0.0);
  EXPECT_EQ(empty.distinct_tasks(), 0);
}

TEST(Placement, DeterministicForSeed) {
  util::Rng r1(8), r2(8);
  const auto cfg = default_placement(RegionId::kRegA, 20, 16);
  const auto a = generate_racks(cfg, 0, r1);
  const auto b = generate_racks(cfg, 0, r2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].server_service, b[i].server_service);
    EXPECT_EQ(a[i].ml_dense, b[i].ml_dense);
    EXPECT_DOUBLE_EQ(a[i].intensity, b[i].intensity);
  }
}

TEST(Placement, DistinctTasksBounded) {
  util::Rng rng(9);
  auto cfg = default_placement(RegionId::kRegA, 200, 92);
  const auto racks = generate_racks(cfg, 0, rng);
  for (const auto& r : racks) {
    EXPECT_GE(r.distinct_tasks(), 1);
    EXPECT_LE(r.distinct_tasks(), cfg.distinct_max + 1);  // +1: ML service
  }
}

}  // namespace
}  // namespace msamp::workload

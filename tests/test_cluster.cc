// src/cluster/ unit and integration tests: heartbeat protocol framing,
// retry backoff arithmetic, POSIX child plumbing, the deterministic
// fault plan, the in-process worker, and the coordinator driven through
// its spawn_command test hook with /bin/sh stand-in workers — covering
// the success path, crash-then-retry, retry exhaustion, stall detection,
// the no-shard-file exit, and the post-merge fingerprint guard.  The
// real fork/exec-of-msampctl path is exercised end to end by the
// cli_cluster ctest and scripts/check_cluster_determinism.sh.
#include "cluster/coordinator.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/process.h"
#include "cluster/protocol.h"
#include "cluster/retry.h"
#include "cluster/worker.h"
#include "fleet/fleet_runner.h"
#include "fleet/shard.h"

namespace msamp::cluster {
namespace {

namespace fs = std::filesystem;

fleet::FleetConfig tiny_config() {
  fleet::FleetConfig config;
  config.racks_per_region = 1;
  config.hours = 1;
  config.samples_per_run = 100;
  config.threads = 1;
  return config;
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::current_path() / ("cluster_test_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// --- protocol ----------------------------------------------------------

TEST(Protocol, ProgressRoundTripsThroughEncodeDecode) {
  Heartbeat hb;
  hb.kind = Heartbeat::Kind::kProgress;
  hb.fraction = 0.375;
  Heartbeat parsed;
  ASSERT_TRUE(decode(encode(hb), &parsed));
  EXPECT_EQ(parsed.kind, Heartbeat::Kind::kProgress);
  EXPECT_DOUBLE_EQ(parsed.fraction, 0.375);
}

TEST(Protocol, DoneAndErrorRoundTrip) {
  Heartbeat done;
  done.kind = Heartbeat::Kind::kDone;
  Heartbeat parsed;
  ASSERT_TRUE(decode(encode(done), &parsed));
  EXPECT_EQ(parsed.kind, Heartbeat::Kind::kDone);

  Heartbeat error;
  error.kind = Heartbeat::Kind::kError;
  error.message = "disk full: /tmp/shard-0.bin";
  ASSERT_TRUE(decode(encode(error), &parsed));
  EXPECT_EQ(parsed.kind, Heartbeat::Kind::kError);
  EXPECT_EQ(parsed.message, "disk full: /tmp/shard-0.bin");
}

TEST(Protocol, MalformedLinesAreRejectedNotCrashed) {
  const char* bad[] = {
      "",
      "hello world",                // a worker's library printf
      "msamp-hb",                   // no verb
      "msamp-hb nonsense",          // unknown verb
      "msamp-hb progress",          // missing fraction
      "msamp-hb progress abc",      // non-numeric
      "msamp-hb progress 1.5",      // out of range
      "msamp-hb progress -0.1",     // out of range
      "msamp-hb progress 0.5 tail"  // trailing junk
  };
  Heartbeat hb;
  for (const char* line : bad) {
    EXPECT_FALSE(decode(line, &hb)) << "accepted: \"" << line << "\"";
  }
}

TEST(Protocol, TakeLinesSplitsCompleteLinesAndKeepsThePartialTail) {
  std::string buf = "msamp-hb progress 0.5\nmsamp-hb do";
  auto lines = take_lines(&buf);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "msamp-hb progress 0.5");
  EXPECT_EQ(buf, "msamp-hb do");

  buf += "ne\n";
  lines = take_lines(&buf);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "msamp-hb done");
  EXPECT_TRUE(buf.empty());
}

// --- retry policy ------------------------------------------------------

TEST(Retry, BudgetCountsTotalLaunches) {
  RetryPolicy policy;  // max_attempts = 5
  EXPECT_TRUE(policy.can_retry(0));
  EXPECT_TRUE(policy.can_retry(4));
  EXPECT_FALSE(policy.can_retry(5));
  EXPECT_FALSE(policy.can_retry(6));
}

TEST(Retry, BackoffDoublesAndCaps) {
  RetryPolicy policy;  // base 200ms, cap 5000ms
  EXPECT_EQ(policy.delay_ms(0), 0);  // first launch: no delay
  EXPECT_EQ(policy.delay_ms(1), 200);
  EXPECT_EQ(policy.delay_ms(2), 400);
  EXPECT_EQ(policy.delay_ms(3), 800);
  EXPECT_EQ(policy.delay_ms(10), 5000);  // 200 * 2^9 clipped to the cap
}

// --- child processes ---------------------------------------------------

TEST(ChildProcess, CapturesStdoutAndExitStatus) {
  ChildProcess child;
  std::string why;
  ASSERT_TRUE(child.spawn({"/bin/sh", "-c", "echo hello; exit 0"}, &why))
      << why;
  std::string out;
  while (child.read_available(&out)) {
  }
  int status = 0;
  while (!child.try_wait(&status)) {
  }
  child.read_available(&out);
  EXPECT_NE(out.find("hello"), std::string::npos);
  EXPECT_TRUE(exited_ok(status));
  EXPECT_EQ(describe_status(status), "exit code 0");
}

TEST(ChildProcess, NonZeroExitIsNotOk) {
  ChildProcess child;
  std::string why;
  ASSERT_TRUE(child.spawn({"/bin/sh", "-c", "exit 3"}, &why)) << why;
  int status = 0;
  while (!child.try_wait(&status)) {
  }
  EXPECT_FALSE(exited_ok(status));
  EXPECT_EQ(describe_status(status), "exit code 3");
}

TEST(ChildProcess, ExecFailureSurfacesAsExit127) {
  ChildProcess child;
  std::string why;
  ASSERT_TRUE(child.spawn({"/no/such/binary/anywhere"}, &why)) << why;
  int status = 0;
  while (!child.try_wait(&status)) {
  }
  EXPECT_FALSE(exited_ok(status));
  EXPECT_EQ(describe_status(status), "exit code 127");
}

TEST(ChildProcess, KillHardReapsARunningChild) {
  ChildProcess child;
  std::string why;
  ASSERT_TRUE(child.spawn({"/bin/sh", "-c", "sleep 30"}, &why)) << why;
  EXPECT_TRUE(child.running());
  child.kill_hard();
  EXPECT_FALSE(child.running());
}

TEST(ChildProcess, SelfExePathResolves) {
  const std::string exe = self_exe_path();
  ASSERT_FALSE(exe.empty());
  EXPECT_TRUE(fs::exists(exe)) << exe;
}

// --- fault plan --------------------------------------------------------

TEST(FaultPlan, ZeroRateNeverFaults) {
  WorkerConfig config;
  config.fleet = tiny_config();
  config.fault_rate = 0.0;
  EXPECT_FALSE(fault_plan(config).has_value());
}

TEST(FaultPlan, CertainRateAlwaysFaultsWithinTheShard) {
  WorkerConfig config;
  config.fleet = tiny_config();  // 2 canonical windows
  config.fault_rate = 1.0;
  for (std::uint32_t attempt = 0; attempt < 8; ++attempt) {
    config.attempt = attempt;
    const auto plan = fault_plan(config);
    ASSERT_TRUE(plan.has_value()) << "attempt " << attempt;
    EXPECT_LE(*plan, 2u);  // may fire after the last window, pre-finalize
  }
}

TEST(FaultPlan, IsDeterministicPerSeedShardAndAttempt) {
  WorkerConfig config;
  config.fleet = tiny_config();
  config.fault_rate = 0.5;
  config.shard = fleet::ShardSpec{1, 3};
  config.attempt = 2;
  const auto a = fault_plan(config);
  const auto b = fault_plan(config);
  EXPECT_EQ(a, b);
}

// --- worker ------------------------------------------------------------

TEST(Worker, GeneratesTheShardAndEmitsWellFormedHeartbeats) {
  const fs::path dir = fresh_dir("worker");
  WorkerConfig config;
  config.fleet = tiny_config();
  config.out_path = (dir / "shard.bin").string();

  std::ostringstream heartbeats;
  ASSERT_EQ(run_worker(config, heartbeats), 0);
  ASSERT_TRUE(fs::exists(config.out_path));

  // The shard file is the canonical full-day bytes (shard 0/1).
  const fs::path ref = dir / "ref.bin";
  ASSERT_TRUE(fleet::run_fleet(config.fleet).save(ref.string()));
  EXPECT_EQ(file_bytes(config.out_path), file_bytes(ref));

  // Every line decodes; progress is strictly increasing and ends with a
  // final `done`.
  std::string buf = heartbeats.str();
  const auto lines = take_lines(&buf);
  ASSERT_FALSE(lines.empty());
  double last = -1.0;
  for (const auto& line : lines) {
    Heartbeat hb;
    ASSERT_TRUE(decode(line, &hb)) << line;
    if (hb.kind == Heartbeat::Kind::kProgress) {
      EXPECT_GT(hb.fraction, last);
      last = hb.fraction;
    }
  }
  Heartbeat final_hb;
  ASSERT_TRUE(decode(lines.back(), &final_hb));
  EXPECT_EQ(final_hb.kind, Heartbeat::Kind::kDone);
  fs::remove_all(dir);
}

// --- coordinator (spawn_command stub workers) --------------------------

// Stages real shard files for `workers` shards of `config` under
// `dir`/staged-<i>.bin and returns their paths, so /bin/sh stub workers
// can `cp` them into place.
std::vector<std::string> stage_shards(const fleet::FleetConfig& config,
                                      int workers, const fs::path& dir) {
  std::vector<std::string> staged;
  for (int i = 0; i < workers; ++i) {
    const fleet::ShardSpec shard{static_cast<std::uint32_t>(i),
                                 static_cast<std::uint32_t>(workers)};
    fleet::DatasetBuilder builder(config, shard);
    fleet::run_fleet(config, shard, builder);
    const fs::path path = dir / ("staged-" + std::to_string(i) + ".bin");
    EXPECT_TRUE(builder.take().save(path.string()));
    staged.push_back(path.string());
  }
  return staged;
}

ClusterConfig stub_cluster(const fs::path& dir, int workers) {
  ClusterConfig config;
  config.fleet = tiny_config();
  config.workers = workers;
  config.out_path = (dir / "merged.bin").string();
  config.retry.base_delay_ms = 1;
  config.retry.max_delay_ms = 4;
  return config;
}

TEST(Coordinator, MergesStubWorkersByteIdenticallyWithMonotonicProgress) {
  const fs::path dir = fresh_dir("coord_ok");
  ClusterConfig config = stub_cluster(dir, 2);
  const auto staged = stage_shards(config.fleet, 2, dir);
  config.spawn_command = [&staged](const fleet::ShardSpec& shard,
                                   std::uint32_t /*attempt*/,
                                   const std::string& out) {
    const std::string script = "echo 'msamp-hb progress 0.5'; cp " +
                               staged[shard.index] + " " + out +
                               "; echo 'msamp-hb done'";
    return std::vector<std::string>{"/bin/sh", "-c", script};
  };

  std::vector<double> progress;
  std::string why;
  Coordinator coordinator(config);
  ASSERT_TRUE(coordinator.run([&](double p) { progress.push_back(p); },
                              nullptr, &why))
      << why;

  const fs::path ref = dir / "ref.bin";
  ASSERT_TRUE(fleet::run_fleet(config.fleet).save(ref.string()));
  EXPECT_EQ(file_bytes(config.out_path), file_bytes(ref));
  EXPECT_EQ(coordinator.stats().shards, 2u);
  EXPECT_EQ(coordinator.stats().fingerprint, config.fleet.fingerprint());

  // One serialized, strictly increasing stream ending at exactly 1.0 —
  // run_fleet's progress contract.
  ASSERT_FALSE(progress.empty());
  for (std::size_t i = 1; i < progress.size(); ++i) {
    EXPECT_GT(progress[i], progress[i - 1]);
  }
  EXPECT_EQ(progress.back(), 1.0);
  // Shard files were cleaned up after the merge.
  EXPECT_FALSE(fs::exists(dir / "merged.bin.shards" / "shard-0.bin"));
  fs::remove_all(dir);
}

TEST(Coordinator, RetriesACrashedWorkerAndStillMatchesTheBytes) {
  const fs::path dir = fresh_dir("coord_retry");
  ClusterConfig config = stub_cluster(dir, 2);
  const auto staged = stage_shards(config.fleet, 2, dir);
  // Shard 1's first attempt dies without output; its retry succeeds.
  config.spawn_command = [&staged](const fleet::ShardSpec& shard,
                                   std::uint32_t attempt,
                                   const std::string& out) {
    std::string script;
    if (shard.index == 1 && attempt == 0) {
      script = "exit 9";
    } else {
      script = "cp " + staged[shard.index] + " " + out;
    }
    return std::vector<std::string>{"/bin/sh", "-c", script};
  };

  std::string why;
  Coordinator coordinator(config);
  ASSERT_TRUE(coordinator.run(nullptr, nullptr, &why)) << why;

  const fs::path ref = dir / "ref.bin";
  ASSERT_TRUE(fleet::run_fleet(config.fleet).save(ref.string()));
  EXPECT_EQ(file_bytes(config.out_path), file_bytes(ref));
  fs::remove_all(dir);
}

TEST(Coordinator, ReportsFailureWhenTheRetryBudgetIsExhausted) {
  const fs::path dir = fresh_dir("coord_exhaust");
  ClusterConfig config = stub_cluster(dir, 2);
  config.retry.max_attempts = 2;
  config.spawn_command = [](const fleet::ShardSpec&, std::uint32_t,
                            const std::string&) {
    return std::vector<std::string>{"/bin/sh", "-c", "exit 7"};
  };

  std::string why;
  Coordinator coordinator(config);
  EXPECT_FALSE(coordinator.run(nullptr, nullptr, &why));
  EXPECT_NE(why.find("after 2 attempt(s)"), std::string::npos) << why;
  EXPECT_NE(why.find("exit code 7"), std::string::npos) << why;
  EXPECT_FALSE(fs::exists(config.out_path));
  fs::remove_all(dir);
}

TEST(Coordinator, StallDetectionKillsAWedgedWorker) {
  const fs::path dir = fresh_dir("coord_stall");
  ClusterConfig config = stub_cluster(dir, 1);
  config.retry.max_attempts = 1;
  config.stall_timeout_ms = 100;
  config.spawn_command = [](const fleet::ShardSpec&, std::uint32_t,
                            const std::string&) {
    // Wedged: never heartbeats, never exits on its own.
    return std::vector<std::string>{"/bin/sh", "-c", "sleep 30"};
  };

  std::string why;
  Coordinator coordinator(config);
  EXPECT_FALSE(coordinator.run(nullptr, nullptr, &why));
  EXPECT_NE(why.find("stalled"), std::string::npos) << why;
  fs::remove_all(dir);
}

TEST(Coordinator, CleanExitWithoutAShardFileIsAFailedAttempt) {
  const fs::path dir = fresh_dir("coord_nofile");
  ClusterConfig config = stub_cluster(dir, 1);
  config.retry.max_attempts = 1;
  config.spawn_command = [](const fleet::ShardSpec&, std::uint32_t,
                            const std::string&) {
    return std::vector<std::string>{"/bin/sh", "-c", "exit 0"};
  };

  std::string why;
  Coordinator coordinator(config);
  EXPECT_FALSE(coordinator.run(nullptr, nullptr, &why));
  EXPECT_NE(why.find("shard file"), std::string::npos) << why;
  fs::remove_all(dir);
}

TEST(Coordinator, RejectsShardsGeneratedFromADifferentConfig) {
  // Workers that silently ran the wrong config (a non-CLI-expressible
  // field lost in translation) merge fine among themselves but must be
  // rejected against the coordinator's own fingerprint.
  const fs::path dir = fresh_dir("coord_fprint");
  ClusterConfig config = stub_cluster(dir, 1);
  fleet::FleetConfig other = config.fleet;
  other.seed = 4242;
  const auto staged = stage_shards(other, 1, dir);
  config.spawn_command = [&staged](const fleet::ShardSpec&, std::uint32_t,
                                   const std::string& out) {
    return std::vector<std::string>{"/bin/sh", "-c",
                                    "cp " + staged[0] + " " + out};
  };

  std::string why;
  Coordinator coordinator(config);
  EXPECT_FALSE(coordinator.run(nullptr, nullptr, &why));
  EXPECT_NE(why.find("fingerprint"), std::string::npos) << why;
  fs::remove_all(dir);
}

}  // namespace
}  // namespace msamp::cluster

// Tests for the point-to-point link model.
#include "net/link.h"

#include <vector>

#include <gtest/gtest.h>

namespace msamp::net {
namespace {

Packet pkt(std::int32_t bytes, FlowId flow = 1) {
  Packet p;
  p.flow = flow;
  p.bytes = bytes;
  return p;
}

TEST(Link, DeliversAfterSerializationPlusPropagation) {
  sim::Simulator simulator;
  std::vector<sim::SimTime> arrivals;
  LinkConfig cfg{.gbps = 12.5, .propagation = 1000, .queue_limit_bytes = 1 << 20};
  Link link(simulator, cfg, [&](const Packet&) {
    arrivals.push_back(simulator.now());
  });
  link.send(pkt(1500));  // 960ns serialize + 1000ns propagation
  simulator.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], 1960);
}

TEST(Link, BackToBackPacketsPipelineOnTheWire) {
  sim::Simulator simulator;
  std::vector<sim::SimTime> arrivals;
  LinkConfig cfg{.gbps = 12.5, .propagation = 1000, .queue_limit_bytes = 1 << 20};
  Link link(simulator, cfg, [&](const Packet&) {
    arrivals.push_back(simulator.now());
  });
  link.send(pkt(1500));
  link.send(pkt(1500));
  simulator.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Second packet starts serializing when the first finishes.
  EXPECT_EQ(arrivals[0], 1960);
  EXPECT_EQ(arrivals[1], 2920);
}

TEST(Link, PreservesFifoOrder) {
  sim::Simulator simulator;
  std::vector<FlowId> order;
  LinkConfig cfg;
  Link link(simulator, cfg, [&](const Packet& p) { order.push_back(p.flow); });
  for (FlowId f = 1; f <= 5; ++f) link.send(pkt(1500, f));
  simulator.run();
  EXPECT_EQ(order, (std::vector<FlowId>{1, 2, 3, 4, 5}));
}

TEST(Link, DropsWhenQueueFull) {
  sim::Simulator simulator;
  int delivered = 0;
  LinkConfig cfg{.gbps = 1.0, .propagation = 0, .queue_limit_bytes = 4000};
  Link link(simulator, cfg, [&](const Packet&) { ++delivered; });
  EXPECT_TRUE(link.send(pkt(1500)));
  EXPECT_TRUE(link.send(pkt(1500)));
  EXPECT_FALSE(link.send(pkt(1500)));  // 4500 > 4000
  EXPECT_EQ(link.drops(), 1u);
  simulator.run();
  EXPECT_EQ(delivered, 2);
}

TEST(Link, BacklogTracksQueuedBytes) {
  sim::Simulator simulator;
  LinkConfig cfg{.gbps = 1.0, .propagation = 0, .queue_limit_bytes = 1 << 20};
  Link link(simulator, cfg, [](const Packet&) {});
  link.send(pkt(1000));
  link.send(pkt(2000));
  EXPECT_EQ(link.backlog(), 3000);
  simulator.run();
  EXPECT_EQ(link.backlog(), 0);
}

TEST(Link, OfferedBytesIncludesDrops) {
  sim::Simulator simulator;
  LinkConfig cfg{.gbps = 1.0, .propagation = 0, .queue_limit_bytes = 1000};
  Link link(simulator, cfg, [](const Packet&) {});
  link.send(pkt(800));
  link.send(pkt(800));  // dropped
  EXPECT_EQ(link.offered_bytes(), 1600);
  EXPECT_EQ(link.drops(), 1u);
  simulator.run();
}

TEST(Link, InjectedDropsAreDeterministic) {
  sim::Simulator simulator;
  int delivered = 0;
  LinkConfig cfg;
  cfg.drop_every_n = 3;
  Link link(simulator, cfg, [&](const Packet&) { ++delivered; });
  for (int i = 0; i < 9; ++i) link.send(pkt(100));
  simulator.run();
  EXPECT_EQ(delivered, 6);  // packets 3, 6, 9 dropped
  EXPECT_EQ(link.drops(), 3u);
}

TEST(Link, DropInjectionDisabledByDefault) {
  sim::Simulator simulator;
  int delivered = 0;
  Link link(simulator, LinkConfig{}, [&](const Packet&) { ++delivered; });
  for (int i = 0; i < 100; ++i) link.send(pkt(100));
  simulator.run();
  EXPECT_EQ(delivered, 100);
}

TEST(Link, FasterLinkSerializesQuicker) {
  sim::Simulator simulator;
  sim::SimTime t_slow = 0, t_fast = 0;
  LinkConfig slow{.gbps = 12.5, .propagation = 0, .queue_limit_bytes = 1 << 20};
  LinkConfig fast{.gbps = 100.0, .propagation = 0, .queue_limit_bytes = 1 << 20};
  Link l1(simulator, slow, [&](const Packet&) { t_slow = simulator.now(); });
  Link l2(simulator, fast, [&](const Packet&) { t_fast = simulator.now(); });
  l1.send(pkt(1500));
  l2.send(pkt(1500));
  simulator.run();
  EXPECT_EQ(t_slow, 960);
  EXPECT_EQ(t_fast, 120);
}

}  // namespace
}  // namespace msamp::net

// Tests for the user-space sampler daemon: run lifecycle, detach behavior,
// history storage, periodic scheduling, and RSS steering.
#include "core/sampler.h"

#include <filesystem>
#include <set>

#include <gtest/gtest.h>

namespace msamp::core {
namespace {

struct SamplerFixture : ::testing::Test {
  sim::Simulator simulator;
  std::unique_ptr<net::Host> host;
  SamplerConfig cfg;

  void make_host() {
    host = std::make_unique<net::Host>(simulator, 1, net::LinkConfig{},
                                       net::NicConfig{},
                                       [](const net::Packet&) {});
  }

  /// Sends one ingress ACK-ish packet (bypasses GRO) every `period` from
  /// the current simulation time until now+`until`.
  void traffic(sim::SimDuration period, sim::SimDuration until,
               net::FlowId flow = 5, std::int32_t bytes = 1000) {
    const sim::SimTime base = simulator.now();
    for (sim::SimTime t = base; t < base + until; t += period) {
      simulator.schedule_at(t, [this, flow, bytes] {
        net::Packet p;
        p.flow = flow;
        p.bytes = bytes;
        p.is_ack = true;  // synchronous delivery through the NIC
        host->deliver_from_wire(p);
      });
    }
  }
};

TEST_F(SamplerFixture, RunProducesRecord) {
  make_host();
  cfg.filter.num_buckets = 20;
  cfg.filter.num_cpus = 4;
  Sampler sampler(simulator, *host, 0, cfg);
  traffic(sim::kMillisecond, 30 * sim::kMillisecond);
  RunRecord record;
  bool done = false;
  ASSERT_TRUE(sampler.start_run(sim::kMillisecond, [&](const RunRecord& r) {
    record = r;
    done = true;
  }));
  simulator.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(record.valid());
  EXPECT_EQ(record.host, 1u);
  EXPECT_EQ(record.interval, sim::kMillisecond);
  EXPECT_EQ(record.buckets.size(), 20u);
  // One 1000B packet per 1ms bucket.
  EXPECT_EQ(record.buckets[0].in_bytes, 1000);
  EXPECT_EQ(record.buckets[10].in_bytes, 1000);
  EXPECT_EQ(record.total_ingress_bytes(), 20 * 1000);
}

TEST_F(SamplerFixture, SecondStartWhileActiveFails) {
  make_host();
  cfg.filter.num_buckets = 10;
  Sampler sampler(simulator, *host, 0, cfg);
  EXPECT_TRUE(sampler.start_run(sim::kMillisecond, nullptr));
  EXPECT_FALSE(sampler.start_run(sim::kMillisecond, nullptr));
  simulator.run();
  EXPECT_FALSE(sampler.active());
  EXPECT_TRUE(sampler.start_run(sim::kMillisecond, nullptr));
  simulator.run();
}

TEST_F(SamplerFixture, DetachesAfterRun) {
  make_host();
  cfg.filter.num_buckets = 5;
  Sampler sampler(simulator, *host, 0, cfg);
  traffic(sim::kMillisecond, 200 * sim::kMillisecond);
  sampler.start_run(sim::kMillisecond, nullptr);
  simulator.run();
  const std::uint64_t processed = sampler.packets_processed();
  EXPECT_GT(processed, 0u);
  // Traffic after the run is over must not be processed: filter detached.
  net::Packet p;
  p.flow = 5;
  p.bytes = 100;
  p.is_ack = true;
  host->deliver_from_wire(p);
  EXPECT_EQ(sampler.packets_processed(), processed);
}

TEST_F(SamplerFixture, EmptyRunIsInvalid) {
  make_host();
  cfg.filter.num_buckets = 5;
  Sampler sampler(simulator, *host, 0, cfg);
  RunRecord record;
  sampler.start_run(sim::kMillisecond, [&](const RunRecord& r) { record = r; });
  simulator.run();  // no traffic at all
  EXPECT_FALSE(record.valid());
  EXPECT_EQ(record.start, -1);
}

TEST_F(SamplerFixture, ClockOffsetShiftsRecordedStart) {
  make_host();
  cfg.filter.num_buckets = 5;
  const sim::SimDuration offset = 250 * sim::kMicrosecond;
  Sampler sampler(simulator, *host, offset, cfg);
  traffic(sim::kMillisecond, 10 * sim::kMillisecond);
  RunRecord record;
  sampler.start_run(sim::kMillisecond, [&](const RunRecord& r) { record = r; });
  simulator.run();
  ASSERT_TRUE(record.valid());
  // First packet at true time 0 is stamped with the host clock.
  EXPECT_EQ(record.start, offset);
}

TEST_F(SamplerFixture, HistoryKeepsSerializedRuns) {
  make_host();
  cfg.filter.num_buckets = 5;
  cfg.history_limit = 3;
  Sampler sampler(simulator, *host, 0, cfg);
  for (int i = 0; i < 5; ++i) {
    // Fresh traffic for each run window (earlier schedules have already
    // fired by the time simulator.run() returns).
    traffic(sim::kMillisecond, 200 * sim::kMillisecond);
    sampler.start_run(sim::kMillisecond, nullptr);
    simulator.run();
  }
  // Bounded history ("about a week" in production).
  EXPECT_EQ(sampler.history().size(), 3u);
  const RunRecord r = sampler.history_run(2);
  EXPECT_TRUE(r.valid());
  EXPECT_EQ(r.buckets.size(), 5u);
}

TEST_F(SamplerFixture, PeriodicModeSchedulesRuns) {
  make_host();
  cfg.filter.num_buckets = 5;
  cfg.intervals = {sim::kMillisecond};
  cfg.grace = sim::kMillisecond;
  Sampler sampler(simulator, *host, 0, cfg);
  traffic(sim::kMillisecond, 500 * sim::kMillisecond);
  sampler.start_periodic(100 * sim::kMillisecond);
  simulator.run_until(450 * sim::kMillisecond);
  sampler.stop_periodic();
  simulator.run();
  // ~5 periodic runs in 450ms.
  EXPECT_GE(sampler.history().size(), 4u);
  EXPECT_LE(sampler.history().size(), 6u);
}

TEST_F(SamplerFixture, PeriodicModeRotatesIntervals) {
  make_host();
  cfg.filter.num_buckets = 5;
  cfg.intervals = {sim::kMillisecond, 10 * sim::kMillisecond};
  cfg.grace = sim::kMillisecond;
  Sampler sampler(simulator, *host, 0, cfg);
  traffic(sim::kMillisecond, 800 * sim::kMillisecond);
  sampler.start_periodic(150 * sim::kMillisecond);
  simulator.run_until(700 * sim::kMillisecond);
  sampler.stop_periodic();
  simulator.run();
  ASSERT_GE(sampler.history().size(), 2u);
  // Consecutive runs alternate between the configured intervals (§4.1).
  EXPECT_EQ(sampler.history_run(0).interval, sim::kMillisecond);
  EXPECT_EQ(sampler.history_run(1).interval, 10 * sim::kMillisecond);
}

TEST_F(SamplerFixture, HistoryIsCompressed) {
  make_host();
  cfg.filter.num_buckets = 200;
  Sampler sampler(simulator, *host, 0, cfg);
  // Sparse traffic: a packet every 50ms in a 200ms window.
  traffic(50 * sim::kMillisecond, 200 * sim::kMillisecond);
  sampler.start_run(sim::kMillisecond, nullptr);
  simulator.run();
  ASSERT_EQ(sampler.history().size(), 1u);
  // The compressed blob is far smaller than the raw fixed-width record.
  const RunRecord r = sampler.history_run(0);
  EXPECT_TRUE(r.valid());
  EXPECT_LT(sampler.history_bytes() * 5, r.serialize().size());
}

TEST_F(SamplerFixture, RssSpreadsFlowsAcrossCpus) {
  make_host();
  cfg.filter.num_buckets = 2;
  cfg.filter.num_cpus = 8;
  Sampler sampler(simulator, *host, 0, cfg);
  // Many flows, one packet each, all in bucket 0.
  sampler.start_run(sim::kMillisecond, nullptr);
  for (net::FlowId f = 1; f <= 64; ++f) {
    net::Packet p;
    p.flow = f;
    p.bytes = 10;
    p.is_ack = true;
    host->deliver_from_wire(p);
  }
  // Count how many CPU rows got traffic.
  int cpus_used = 0;
  for (int c = 0; c < 8; ++c) {
    cpus_used += sampler.filter().raw(c, 0).in_bytes > 0 ? 1 : 0;
  }
  EXPECT_GE(cpus_used, 5);  // 64 flows over 8 CPUs should hit most rows
  simulator.run();
}

TEST_F(SamplerFixture, PersistsRunsToStore) {
  make_host();
  cfg.filter.num_buckets = 10;
  RunStoreConfig store_cfg;
  store_cfg.directory = "test_sampler_store_tmp";
  RunStore store(store_cfg);
  Sampler sampler(simulator, *host, 0, cfg);
  sampler.set_store(&store);
  traffic(sim::kMillisecond, 50 * sim::kMillisecond);
  sampler.start_run(sim::kMillisecond, nullptr);
  simulator.run();
  EXPECT_EQ(store.size(), 1u);
  const auto runs = store.query(0, 1LL << 60);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].buckets.size(), 10u);
  std::filesystem::remove_all(store_cfg.directory);
}

TEST_F(SamplerFixture, HundredMicrosecondRun) {
  // The paper's finest interval: 100µs buckets over a shorter window.
  make_host();
  cfg.filter.num_buckets = 100;  // 10ms window
  Sampler sampler(simulator, *host, 0, cfg);
  traffic(200 * sim::kMicrosecond, 15 * sim::kMillisecond, 5, 400);
  RunRecord record;
  sampler.start_run(100 * sim::kMicrosecond,
                    [&](const RunRecord& r) { record = r; });
  simulator.run();
  ASSERT_TRUE(record.valid());
  EXPECT_EQ(record.interval, 100 * sim::kMicrosecond);
  // A packet every other 100µs bucket.
  EXPECT_EQ(record.buckets[0].in_bytes, 400);
  EXPECT_EQ(record.buckets[1].in_bytes, 0);
  EXPECT_EQ(record.buckets[2].in_bytes, 400);
}

TEST_F(SamplerFixture, EgressAlsoCounted) {
  make_host();
  cfg.filter.num_buckets = 5;
  Sampler sampler(simulator, *host, 0, cfg);
  sampler.start_run(sim::kMillisecond, nullptr);
  net::Packet p;
  p.flow = 3;
  p.bytes = 700;
  host->send(p);
  RunRecord r;
  r.host = host->id();
  r.start = sampler.filter().start_time();
  r.interval = sampler.filter().interval();
  r.buckets = sampler.filter().read_aggregated();
  EXPECT_EQ(r.buckets[0].out_bytes, 700);
  simulator.run();
}

}  // namespace
}  // namespace msamp::core

// Tests for contention computation (§5, §7.3) and the Figure 1 / Figure 15
// queue-share mapping.
#include "analysis/contention.h"

#include <gtest/gtest.h>

namespace msamp::analysis {
namespace {

constexpr std::int64_t kLine = 1562500;

core::SyncRun make_run(std::vector<std::vector<std::int64_t>> per_server) {
  core::SyncRun run;
  run.grid_start = 0;
  run.interval = sim::kMillisecond;
  for (std::size_t s = 0; s < per_server.size(); ++s) {
    run.hosts.push_back(static_cast<net::HostId>(s));
    std::vector<core::BucketSample> series(per_server[s].size());
    for (std::size_t k = 0; k < per_server[s].size(); ++k) {
      series[k].in_bytes = per_server[s][k];
    }
    run.series.push_back(std::move(series));
  }
  return run;
}

TEST(Contention, CountsSimultaneouslyBurstyServers) {
  const auto run = make_run({
      {kLine, kLine, 0, 0},
      {kLine, 0, 0, 0},
      {kLine, kLine, kLine, 0},
  });
  const auto c = contention_series(run, BurstDetectConfig{});
  EXPECT_EQ(c, (std::vector<int>{3, 2, 1, 0}));
}

TEST(Contention, ThresholdBoundary) {
  const auto run = make_run({{kLine / 2}, {kLine / 2 + 1}});
  const auto c = contention_series(run, BurstDetectConfig{});
  EXPECT_EQ(c[0], 1);  // only the strictly-above sample counts
}

TEST(Contention, EmptyRun) {
  core::SyncRun run;
  EXPECT_TRUE(contention_series(run, BurstDetectConfig{}).empty());
  const auto s = summarize_contention({});
  EXPECT_EQ(s.samples, 0u);
  EXPECT_FALSE(s.usable());
}

TEST(ContentionSummary, Statistics) {
  const std::vector<int> c{0, 1, 3, 2, 0, 0, 5, 1, 1, 1};
  const auto s = summarize_contention(c);
  EXPECT_EQ(s.samples, 10u);
  EXPECT_EQ(s.active_samples, 7u);
  EXPECT_DOUBLE_EQ(s.avg, 1.4);
  EXPECT_EQ(s.min_active, 1);  // min over samples with >= 1
  EXPECT_EQ(s.max, 5);
  EXPECT_EQ(s.p90, 3);
  EXPECT_TRUE(s.usable());
}

TEST(ContentionSummary, AllIdle) {
  const std::vector<int> c{0, 0, 0};
  const auto s = summarize_contention(c);
  EXPECT_EQ(s.min_active, 0);
  EXPECT_EQ(s.p90, 0);
  // §7.3 excludes zero-p90 runs (6.2% of runs in the paper).
  EXPECT_FALSE(s.usable());
}

TEST(ContentionSummary, MinOverActiveOnly) {
  // Idle samples must not drag the minimum to zero.
  const std::vector<int> c{0, 4, 7, 0, 3};
  const auto s = summarize_contention(c);
  EXPECT_EQ(s.min_active, 3);
}

TEST(QueueShare, MatchesFigureOneAnchors) {
  EXPECT_DOUBLE_EQ(queue_share_at_contention(1.0, 1), 0.5);
  EXPECT_NEAR(queue_share_at_contention(1.0, 2), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(queue_share_at_contention(2.0, 1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(queue_share_at_contention(2.0, 2), 0.4, 1e-12);
  EXPECT_NEAR(queue_share_at_contention(0.25, 1), 0.2, 1e-12);
}

TEST(QueueShare, ZeroContentionTreatedAsOneQueue) {
  EXPECT_DOUBLE_EQ(queue_share_at_contention(1.0, 0),
                   queue_share_at_contention(1.0, 1));
}

TEST(QueueShare, MonotoneDecreasing) {
  for (double alpha : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    for (int s = 1; s < 10; ++s) {
      EXPECT_GT(queue_share_at_contention(alpha, s),
                queue_share_at_contention(alpha, s + 1));
    }
  }
}

TEST(QueueShare, PaperExampleDrop) {
  // §7.3: going from contention 1 to 2 drops the share from 50% to 33.3%,
  // a 33.4% relative reduction.
  const double high = queue_share_at_contention(1.0, 1);
  const double low = queue_share_at_contention(1.0, 2);
  EXPECT_NEAR((high - low) / high, 0.334, 0.01);
}

}  // namespace
}  // namespace msamp::analysis

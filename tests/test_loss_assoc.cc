// Tests for loss attribution (§4.6/§8 methodology).
#include "analysis/loss_assoc.h"

#include <gtest/gtest.h>

namespace msamp::analysis {
namespace {

constexpr std::int64_t kLine = 1562500;

std::vector<core::BucketSample> series(std::vector<std::int64_t> in_bytes,
                                       std::vector<std::int64_t> retx) {
  std::vector<core::BucketSample> out(in_bytes.size());
  for (std::size_t i = 0; i < in_bytes.size(); ++i) {
    out[i].in_bytes = in_bytes[i];
    out[i].in_retx_bytes = i < retx.size() ? retx[i] : 0;
  }
  return out;
}

TEST(LossAssoc, NoRetxNoLossyBursts) {
  const auto ser = series({kLine, kLine, 0, 0}, {});
  const auto bursts = detect_bursts(ser, BurstDetectConfig{});
  const auto lossy = lossy_bursts(ser, bursts, LossAssocConfig{});
  ASSERT_EQ(lossy.size(), 1u);
  EXPECT_FALSE(lossy[0]);
}

TEST(LossAssoc, RetxInsideBurstMarksIt) {
  const auto ser = series({0, kLine, kLine, 0}, {0, 0, 5000, 0});
  const auto bursts = detect_bursts(ser, BurstDetectConfig{});
  const auto lossy = lossy_bursts(ser, bursts, LossAssocConfig{});
  ASSERT_EQ(lossy.size(), 1u);
  EXPECT_TRUE(lossy[0]);
}

TEST(LossAssoc, RttShiftPullsRepairBack) {
  // Retx appears one sample after the burst ends; the RTT shift of one
  // sample attributes it to the burst.
  const auto ser = series({kLine, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
                          {0, 3000, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  const auto bursts = detect_bursts(ser, BurstDetectConfig{});
  LossAssocConfig cfg;
  cfg.rtt_shift_samples = 1;
  cfg.lag_samples = 0;
  const auto lossy = lossy_bursts(ser, bursts, cfg);
  EXPECT_TRUE(lossy[0]);
}

TEST(LossAssoc, LagWindowCatchesTimeoutRepairs) {
  // Repair lands 5 samples after the burst: inside the default lag window.
  const auto ser = series({kLine, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
                          {0, 0, 0, 0, 0, 0, 3000, 0, 0, 0, 0, 0});
  const auto bursts = detect_bursts(ser, BurstDetectConfig{});
  const auto lossy = lossy_bursts(ser, bursts, LossAssocConfig{});
  EXPECT_TRUE(lossy[0]);
}

TEST(LossAssoc, BeyondLagNotAttributed) {
  LossAssocConfig cfg;
  cfg.rtt_shift_samples = 0;
  cfg.lag_samples = 2;
  const auto ser = series({kLine, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
                          {0, 0, 0, 0, 0, 0, 0, 0, 3000, 0, 0, 0});
  const auto bursts = detect_bursts(ser, BurstDetectConfig{});
  const auto lossy = lossy_bursts(ser, bursts, cfg);
  EXPECT_FALSE(lossy[0]);
}

TEST(LossAssoc, NextBurstOwnsItsRepairs) {
  // Two bursts close together: retx during the second burst must not be
  // attributed to the first via the lag window.
  const auto ser = series({kLine, 0, kLine, 0, 0, 0, 0, 0, 0, 0, 0, 0},
                          {0, 0, 0, 4000, 0, 0, 0, 0, 0, 0, 0, 0});
  const auto bursts = detect_bursts(ser, BurstDetectConfig{});
  ASSERT_EQ(bursts.size(), 2u);
  LossAssocConfig cfg;
  cfg.rtt_shift_samples = 1;
  cfg.lag_samples = 8;
  const auto lossy = lossy_bursts(ser, bursts, cfg);
  EXPECT_FALSE(lossy[0]);
  EXPECT_TRUE(lossy[1]);
}

TEST(LossAssoc, ShiftAtSeriesStartClamps) {
  // Retx in sample 0 with a shift of 1 must not underflow.
  const auto ser = series({kLine, 0, 0, 0}, {1000, 0, 0, 0});
  const auto bursts = detect_bursts(ser, BurstDetectConfig{});
  const auto lossy = lossy_bursts(ser, bursts, LossAssocConfig{});
  EXPECT_TRUE(lossy[0]);
}

TEST(LossAssoc, TotalRetxBytes) {
  const auto ser = series({0, 0, 0}, {100, 0, 250});
  EXPECT_EQ(total_retx_bytes(ser), 350);
  EXPECT_EQ(total_retx_bytes({}), 0);
}

TEST(LossAssoc, MultipleBurstsIndependent) {
  const auto ser = series(
      {kLine, 0, 0, 0, 0, kLine, 0, 0, 0, 0, kLine, 0, 0, 0, 0},
      {2000, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2000, 0, 0, 0});
  const auto bursts = detect_bursts(ser, BurstDetectConfig{});
  ASSERT_EQ(bursts.size(), 3u);
  LossAssocConfig cfg;
  cfg.rtt_shift_samples = 1;
  cfg.lag_samples = 3;
  const auto lossy = lossy_bursts(ser, bursts, cfg);
  EXPECT_TRUE(lossy[0]);
  EXPECT_FALSE(lossy[1]);
  EXPECT_TRUE(lossy[2]);
}

}  // namespace
}  // namespace msamp::analysis

// Packet-level end-to-end integration: DCTCP incast through the shared-
// buffer ToR, measured by a real Millisampler run — the full §4
// measurement pipeline on the full §3 substrate.
#include <gtest/gtest.h>

#include "analysis/burst_detect.h"
#include "core/sampler.h"
#include "net/topology.h"
#include "transport/transport_host.h"
#include "workload/incast.h"

namespace msamp {
namespace {

struct IntegrationFixture : ::testing::Test {
  sim::Simulator simulator;
  net::RackConfig rack_cfg;
  std::unique_ptr<net::Rack> rack;
  std::vector<std::unique_ptr<transport::TransportHost>> remotes;
  std::unique_ptr<transport::TransportHost> receiver;

  void make(int fanout) {
    rack_cfg.num_remote_hosts = fanout;
    rack = std::make_unique<net::Rack>(simulator, rack_cfg);
    receiver = std::make_unique<transport::TransportHost>(rack->server(0));
    for (int i = 0; i < fanout; ++i) {
      remotes.push_back(
          std::make_unique<transport::TransportHost>(rack->remote(i)));
    }
  }

  std::vector<transport::TransportHost*> senders() {
    std::vector<transport::TransportHost*> out;
    for (auto& r : remotes) out.push_back(r.get());
    return out;
  }
};

TEST_F(IntegrationFixture, IncastDeliversAllBytes) {
  make(16);
  workload::IncastConfig cfg;
  cfg.bytes_per_sender = 128 << 10;
  workload::IncastDriver incast(simulator, senders(), *receiver, 1000, cfg);
  bool done = false;
  incast.trigger([&] { done = true; });
  simulator.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(incast.total_delivered(), 16 * (128 << 10));
}

TEST_F(IntegrationFixture, SamplerObservesIncastTraffic) {
  make(12);
  core::SamplerConfig sampler_cfg;
  sampler_cfg.filter.num_buckets = 100;
  sampler_cfg.filter.num_cpus = 8;
  sampler_cfg.grace = 20 * sim::kMillisecond;
  core::Sampler sampler(simulator, rack->server(0), 0, sampler_cfg);

  workload::IncastConfig cfg;
  cfg.bytes_per_sender = 256 << 10;
  workload::IncastDriver incast(simulator, senders(), *receiver, 2000, cfg);

  core::RunRecord record;
  sampler.start_run(sim::kMillisecond,
                    [&](const core::RunRecord& r) { record = r; });
  incast.trigger(nullptr);
  simulator.run();

  ASSERT_TRUE(record.valid());
  // All delivered payload bytes were observed at the tc layer.
  EXPECT_GE(record.total_ingress_bytes(), incast.total_delivered());
  // A 3MB incast at 12.5G is a multi-ms burst: detection must fire.
  analysis::BurstDetectConfig burst_cfg;
  const auto bursts = analysis::detect_bursts(record.buckets, burst_cfg);
  ASSERT_GE(bursts.size(), 1u);
  EXPECT_GE(bursts[0].len, 1u);
  // Connection sketch sees the fan-in.
  double max_conns = 0;
  for (const auto& b : record.buckets) {
    max_conns = std::max(max_conns, b.connections);
  }
  EXPECT_GT(max_conns, 6.0);
}

TEST_F(IntegrationFixture, HeavyIncastTriggersEcnAndSamplerCountsIt) {
  rack_cfg.tor.buffer.ecn_threshold = 60 << 10;
  make(24);
  core::SamplerConfig sampler_cfg;
  sampler_cfg.filter.num_buckets = 200;
  sampler_cfg.filter.num_cpus = 4;
  core::Sampler sampler(simulator, rack->server(0), 0, sampler_cfg);

  workload::IncastConfig cfg;
  cfg.bytes_per_sender = 256 << 10;
  workload::IncastDriver incast(simulator, senders(), *receiver, 3000, cfg);
  core::RunRecord record;
  sampler.start_run(sim::kMillisecond,
                    [&](const core::RunRecord& r) { record = r; });
  incast.trigger(nullptr);
  simulator.run();

  ASSERT_TRUE(record.valid());
  std::int64_t ecn = 0;
  for (const auto& b : record.buckets) ecn += b.in_ecn_bytes;
  EXPECT_GT(ecn, 0);
}

TEST_F(IntegrationFixture, TinyBufferIncastLosesAndSamplerSeesRetx) {
  rack_cfg.tor.buffer.total_bytes = 512 << 10;
  rack_cfg.tor.buffer.reserve_per_queue = 0;
  rack_cfg.tor.buffer.ecn_threshold = 1 << 30;  // disable ECN: force loss
  make(32);
  core::SamplerConfig sampler_cfg;
  sampler_cfg.filter.num_buckets = 400;
  sampler_cfg.filter.num_cpus = 4;
  core::Sampler sampler(simulator, rack->server(0), 0, sampler_cfg);

  workload::IncastConfig cfg;
  cfg.bytes_per_sender = 128 << 10;
  cfg.tcp.cc = transport::CcKind::kCubic;
  workload::IncastDriver incast(simulator, senders(), *receiver, 4000, cfg);
  core::RunRecord record;
  sampler.start_run(sim::kMillisecond,
                    [&](const core::RunRecord& r) { record = r; });
  bool done = false;
  incast.trigger([&] { done = true; });
  simulator.run();

  // Despite heavy loss, TCP repairs everything.
  EXPECT_TRUE(done);
  EXPECT_EQ(incast.total_delivered(), 32 * (128 << 10));
  EXPECT_GT(incast.total_retx_bytes(), 0);
  EXPECT_GT(rack->tor().mmu().counters(0).dropped_packets, 0);
  // And the sampler observed retransmission-marked ingress bytes (§4.2).
  ASSERT_TRUE(record.valid());
  std::int64_t retx = 0;
  for (const auto& b : record.buckets) retx += b.in_retx_bytes;
  EXPECT_GT(retx, 0);
}

TEST_F(IntegrationFixture, DtProtectsVictimQueueDuringIncast) {
  // Incast on server 0 must not starve a modest transfer to server 1:
  // DT guarantees the victim queue its dynamic share.
  make(24);
  auto victim_host = std::make_unique<transport::TransportHost>(rack->server(1));
  workload::IncastConfig cfg;
  cfg.bytes_per_sender = 512 << 10;
  workload::IncastDriver incast(simulator, senders(), *receiver, 5000, cfg);
  transport::TcpConnection victim(simulator, 9999, *remotes[0], *victim_host,
                                  transport::TcpConfig{});
  incast.trigger(nullptr);
  victim.send_app_data(1 << 20);
  simulator.run();
  EXPECT_EQ(victim.stats().delivered_bytes, 1 << 20);
}

}  // namespace
}  // namespace msamp

// Tests for the tc-filter state machine (§4.1): start latching, bucket
// arithmetic, auto-stop, per-CPU isolation, aggregation, the batch fast
// path, and the §4.3 memory-footprint math.
#include "core/tc_filter.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace msamp::core {
namespace {

net::Packet seg(net::FlowId flow, std::int32_t bytes, bool retx = false,
                bool ce = false) {
  net::Packet p;
  p.flow = flow;
  p.bytes = bytes;
  p.retx_mark = retx;
  p.ce = ce;
  return p;
}

TcFilterConfig small() {
  TcFilterConfig cfg;
  cfg.num_cpus = 4;
  cfg.num_buckets = 10;
  return cfg;
}

TEST(TcFilter, DisabledCountsNothing) {
  TcFilter f(small());
  EXPECT_FALSE(f.process(0, seg(1, 100), true, 0));
  const auto agg = f.read_aggregated();
  EXPECT_EQ(agg[0].in_bytes, 0);
}

TEST(TcFilter, StartLatchedByFirstPacket) {
  TcFilter f(small());
  f.enable(sim::kMillisecond);
  EXPECT_FALSE(f.started());
  f.process(0, seg(1, 100), true, 5 * sim::kMillisecond);
  EXPECT_TRUE(f.started());
  EXPECT_EQ(f.start_time(), 5 * sim::kMillisecond);
  // The first packet lands in bucket 0 regardless of absolute time.
  EXPECT_EQ(f.read_aggregated()[0].in_bytes, 100);
}

TEST(TcFilter, BucketArithmetic) {
  TcFilter f(small());
  f.enable(sim::kMillisecond);
  const sim::SimTime t0 = 7 * sim::kMillisecond + 123;
  f.process(0, seg(1, 10), true, t0);
  f.process(0, seg(1, 20), true, t0 + sim::kMillisecond - 1);  // still bucket 0
  f.process(0, seg(1, 30), true, t0 + sim::kMillisecond);      // bucket 1
  f.process(0, seg(1, 40), true, t0 + 9 * sim::kMillisecond);  // bucket 9
  const auto agg = f.read_aggregated();
  EXPECT_EQ(agg[0].in_bytes, 30);
  EXPECT_EQ(agg[1].in_bytes, 30);
  EXPECT_EQ(agg[9].in_bytes, 40);
}

TEST(TcFilter, AutoStopPastLastBucket) {
  TcFilter f(small());
  f.enable(sim::kMillisecond);
  f.process(0, seg(1, 10), true, 0);
  EXPECT_TRUE(f.enabled());
  // Past bucket 9: the filter clears its own enabled flag (§4.1) and the
  // packet is not counted.
  EXPECT_FALSE(f.process(0, seg(1, 10), true, 10 * sim::kMillisecond));
  EXPECT_FALSE(f.enabled());
  // Further packets are on the cheap early-out path.
  EXPECT_FALSE(f.process(0, seg(1, 10), true, 3 * sim::kMillisecond));
  EXPECT_EQ(f.read_aggregated()[0].in_bytes, 10);
}

TEST(TcFilter, EnableClearsCounters) {
  TcFilter f(small());
  f.enable(sim::kMillisecond);
  f.process(0, seg(1, 100), true, 0);
  f.enable(sim::kMillisecond);
  EXPECT_EQ(f.read_aggregated()[0].in_bytes, 0);
  EXPECT_FALSE(f.started());
}

TEST(TcFilter, DirectionalCounters) {
  TcFilter f(small());
  f.enable(sim::kMillisecond);
  f.process(0, seg(1, 100), true, 0);             // in
  f.process(0, seg(1, 50), false, 0);             // out
  f.process(0, seg(1, 25, /*retx=*/true), true, 0);
  f.process(0, seg(1, 10, /*retx=*/true), false, 0);
  f.process(0, seg(1, 9, false, /*ce=*/true), true, 0);
  const auto agg = f.read_aggregated();
  EXPECT_EQ(agg[0].in_bytes, 134);
  EXPECT_EQ(agg[0].out_bytes, 60);
  EXPECT_EQ(agg[0].in_retx_bytes, 25);
  EXPECT_EQ(agg[0].out_retx_bytes, 10);
  EXPECT_EQ(agg[0].in_ecn_bytes, 9);
}

TEST(TcFilter, CeOnEgressNotCounted) {
  // Millisampler only counts ECN-marked *ingress* bytes.
  TcFilter f(small());
  f.enable(sim::kMillisecond);
  f.process(0, seg(1, 100, false, /*ce=*/true), false, 0);
  EXPECT_EQ(f.read_aggregated()[0].in_ecn_bytes, 0);
}

TEST(TcFilter, PerCpuRowsAreIsolated) {
  TcFilter f(small());
  f.enable(sim::kMillisecond);
  f.process(0, seg(1, 100), true, 0);
  f.process(2, seg(2, 50), true, 0);
  EXPECT_EQ(f.raw(0, 0).in_bytes, 100u);
  EXPECT_EQ(f.raw(2, 0).in_bytes, 50u);
  EXPECT_EQ(f.raw(1, 0).in_bytes, 0u);
  // Aggregation sums across CPUs.
  EXPECT_EQ(f.read_aggregated()[0].in_bytes, 150);
}

TEST(TcFilter, CpuIndexWraps) {
  TcFilter f(small());
  f.enable(sim::kMillisecond);
  f.process(6, seg(1, 10), true, 0);  // 6 % 4 == 2
  EXPECT_EQ(f.raw(2, 0).in_bytes, 10u);
}

TEST(TcFilter, FlowCountingAcrossCpus) {
  TcFilter f(small());
  f.enable(sim::kMillisecond);
  // Three distinct flows on three CPUs, same bucket.
  f.process(0, seg(11, 10), true, 0);
  f.process(1, seg(22, 10), true, 0);
  f.process(2, seg(33, 10), true, 0);
  EXPECT_NEAR(f.read_aggregated()[0].connections, 3.0, 0.2);
}

TEST(TcFilter, FlowCountingDisabled) {
  auto cfg = small();
  cfg.count_flows = false;
  TcFilter f(cfg);
  f.enable(sim::kMillisecond);
  f.process(0, seg(11, 10), true, 0);
  EXPECT_DOUBLE_EQ(f.read_aggregated()[0].connections, 0.0);
}

TEST(TcFilter, FlowZeroNotSketched) {
  TcFilter f(small());
  f.enable(sim::kMillisecond);
  f.process(0, seg(0, 10), true, 0);  // raw tool traffic has flow id 0
  EXPECT_DOUBLE_EQ(f.read_aggregated()[0].connections, 0.0);
  EXPECT_EQ(f.read_aggregated()[0].in_bytes, 10);
}

TEST(TcFilter, BackwardsClockDropsSample) {
  TcFilter f(small());
  f.enable(sim::kMillisecond);
  f.process(0, seg(1, 10), true, 5 * sim::kMillisecond);
  EXPECT_FALSE(f.process(0, seg(1, 10), true, 4 * sim::kMillisecond));
  EXPECT_TRUE(f.enabled());
}

TEST(TcFilter, MemoryFootprintMatchesPaper) {
  // §4.3: ~3.6MB for counters of each type, 2000 samples, per CPU core.
  TcFilterConfig cfg;
  cfg.num_cpus = 32;
  cfg.num_buckets = 2000;
  TcFilter f(cfg);
  EXPECT_EQ(f.memory_footprint(), 32u * 2000u * sizeof(RawBucket));
  // 32 cores x 2000 buckets x 56B = 3.58 (decimal) MB ~ the paper's 3.6MB.
  EXPECT_NEAR(static_cast<double>(f.memory_footprint()) / 1e6, 3.6, 0.1);
}

TEST(TcFilter, BatchMatchesPerPacketProcessing) {
  // Property: process_batch must be equivalent to the per-packet path.
  util::Rng rng(9);
  TcFilterConfig cfg;
  cfg.num_cpus = 2;
  cfg.num_buckets = 50;
  TcFilter per_packet(cfg), batched(cfg);
  per_packet.enable(sim::kMillisecond);
  batched.enable(sim::kMillisecond);

  for (int bucket = 0; bucket < 50; ++bucket) {
    const sim::SimTime t = bucket * sim::kMillisecond + 10;
    SegmentBatch batch;
    FlowSketch sketch;
    const int packets = 1 + static_cast<int>(rng.uniform_int(8));
    for (int i = 0; i < packets; ++i) {
      const net::FlowId flow = 1 + rng.uniform_int(5);
      const auto bytes = static_cast<std::int32_t>(100 + rng.uniform_int(1400));
      const bool retx = rng.bernoulli(0.1);
      const bool ce = rng.bernoulli(0.2);
      const bool ingress = rng.bernoulli(0.8);
      per_packet.process(0, seg(flow, bytes, retx, ce), ingress, t);
      if (ingress) {
        batch.in_bytes += bytes;
        if (retx) batch.in_retx_bytes += bytes;
        if (ce) batch.in_ecn_bytes += bytes;
      } else {
        batch.out_bytes += bytes;
        if (retx) batch.out_retx_bytes += bytes;
      }
      sketch.add(flow);
    }
    batch.sketch[0] = sketch.word(0);
    batch.sketch[1] = sketch.word(1);
    batched.process_batch(0, batch, t);
  }

  const auto a = per_packet.read_aggregated();
  const auto b = batched.read_aggregated();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].in_bytes, b[i].in_bytes) << i;
    EXPECT_EQ(a[i].in_retx_bytes, b[i].in_retx_bytes) << i;
    EXPECT_EQ(a[i].in_ecn_bytes, b[i].in_ecn_bytes) << i;
    EXPECT_EQ(a[i].out_bytes, b[i].out_bytes) << i;
    EXPECT_EQ(a[i].out_retx_bytes, b[i].out_retx_bytes) << i;
    EXPECT_DOUBLE_EQ(a[i].connections, b[i].connections) << i;
  }
}

TEST(TcFilter, BatchAutoStops) {
  TcFilter f(small());
  f.enable(sim::kMillisecond);
  SegmentBatch b;
  b.in_bytes = 10;
  f.process_batch(0, b, 0);
  EXPECT_FALSE(f.process_batch(0, b, 10 * sim::kMillisecond));
  EXPECT_FALSE(f.enabled());
}

class IntervalTest : public ::testing::TestWithParam<sim::SimDuration> {};

TEST_P(IntervalTest, BucketsScaleWithInterval) {
  // The paper runs 100µs, 1ms and 10ms intervals with 2000 fixed buckets.
  const sim::SimDuration interval = GetParam();
  TcFilterConfig cfg;
  cfg.num_cpus = 1;
  cfg.num_buckets = 2000;
  TcFilter f(cfg);
  f.enable(interval);
  f.process(0, seg(1, 1), true, 0);
  // A packet at exactly 1999 intervals is in the last bucket...
  EXPECT_TRUE(f.process(0, seg(1, 2), true, 1999 * interval));
  // ...and one interval later the run self-terminates.
  EXPECT_FALSE(f.process(0, seg(1, 4), true, 2000 * interval));
  EXPECT_FALSE(f.enabled());
  const auto agg = f.read_aggregated();
  EXPECT_EQ(agg[1999].in_bytes, 2);
}

INSTANTIATE_TEST_SUITE_P(PaperIntervals, IntervalTest,
                         ::testing::Values(100 * sim::kMicrosecond,
                                           sim::kMillisecond,
                                           10 * sim::kMillisecond));

}  // namespace
}  // namespace msamp::core

// End-to-end transport tests over the simulated rack: reliable delivery,
// ECN echo, loss recovery, and the Meta retransmit header bit.
#include "transport/tcp_connection.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "net/topology.h"

namespace msamp::transport {
namespace {

struct TcpFixture : ::testing::Test {
  sim::Simulator simulator;
  net::RackConfig rack_cfg;
  std::unique_ptr<net::Rack> rack;
  std::vector<std::unique_ptr<TransportHost>> hosts;

  void make_rack() {
    rack = std::make_unique<net::Rack>(simulator, rack_cfg);
    for (int i = 0; i < rack->num_servers(); ++i) {
      hosts.push_back(std::make_unique<TransportHost>(rack->server(i)));
    }
    for (int i = 0; i < rack->num_remotes(); ++i) {
      hosts.push_back(std::make_unique<TransportHost>(rack->remote(i)));
    }
  }

  TransportHost& server(int i) { return *hosts[static_cast<std::size_t>(i)]; }
  TransportHost& remote(int i) {
    return *hosts[static_cast<std::size_t>(rack->num_servers() + i)];
  }
};

TEST_F(TcpFixture, DeliversAllBytesInOrder) {
  make_rack();
  TcpConfig cfg;
  TcpConnection conn(simulator, 1, remote(0), server(0), cfg);
  std::vector<std::int64_t> deliveries;
  conn.set_on_delivered([&](std::int64_t d) { deliveries.push_back(d); });
  conn.send_app_data(1 << 20);
  simulator.run();
  EXPECT_EQ(conn.stats().delivered_bytes, 1 << 20);
  EXPECT_TRUE(conn.idle());
  // Cumulative delivery is monotone.
  for (std::size_t i = 1; i < deliveries.size(); ++i) {
    EXPECT_GT(deliveries[i], deliveries[i - 1]);
  }
  EXPECT_EQ(deliveries.back(), 1 << 20);
}

TEST_F(TcpFixture, MultipleWritesAppend) {
  make_rack();
  TcpConnection conn(simulator, 1, remote(0), server(0), TcpConfig{});
  conn.send_app_data(10000);
  conn.send_app_data(20000);
  simulator.run();
  EXPECT_EQ(conn.stats().delivered_bytes, 30000);
}

TEST_F(TcpFixture, CleanPathHasNoRetransmissions) {
  make_rack();
  TcpConnection conn(simulator, 1, remote(0), server(0), TcpConfig{});
  conn.send_app_data(256 << 10);
  simulator.run();
  EXPECT_EQ(conn.stats().retx_bytes, 0);
  EXPECT_EQ(conn.stats().timeouts, 0u);
  EXPECT_EQ(conn.stats().fast_retransmits, 0u);
}

TEST_F(TcpFixture, DctcpReceivesEcnEchoesUnderLoad) {
  // Shrink the ECN threshold so the ToR marks quickly.
  rack_cfg.tor.buffer.ecn_threshold = 30 << 10;
  make_rack();
  TcpConfig cfg;
  TcpConnection conn(simulator, 1, remote(0), server(0), cfg);
  conn.send_app_data(2 << 20);
  simulator.run();
  EXPECT_EQ(conn.stats().delivered_bytes, 2 << 20);
  EXPECT_GT(conn.stats().ece_acks, 0u);
}

TEST_F(TcpFixture, EcnKeepsQueueBoundedWithoutLoss) {
  rack_cfg.tor.buffer.ecn_threshold = 60 << 10;
  make_rack();
  TcpConnection conn(simulator, 1, remote(0), server(0), TcpConfig{});
  conn.send_app_data(4 << 20);
  simulator.run();
  // DCTCP should complete a large transfer with marks instead of drops.
  EXPECT_EQ(conn.stats().delivered_bytes, 4 << 20);
  EXPECT_EQ(rack->tor().mmu().counters(0).dropped_packets, 0);
}

TEST_F(TcpFixture, RecoversFromBufferDrops) {
  // A tiny, non-marking buffer forces real losses.
  rack_cfg.tor.buffer.total_bytes = 256 << 10;
  rack_cfg.tor.buffer.quadrants = 1;
  rack_cfg.tor.buffer.reserve_per_queue = 0;
  rack_cfg.tor.buffer.ecn_threshold = 1 << 30;  // never mark
  make_rack();
  TcpConfig cfg;
  cfg.cc = CcKind::kCubic;  // loss-driven CC exercises recovery harder
  TcpConnection conn(simulator, 1, remote(0), server(0), cfg);
  conn.send_app_data(4 << 20);
  simulator.run();
  EXPECT_EQ(conn.stats().delivered_bytes, 4 << 20);
  EXPECT_TRUE(conn.idle());
  EXPECT_GT(rack->tor().mmu().counters(0).dropped_packets, 0);
  EXPECT_GT(conn.stats().retx_bytes, 0);
}

TEST_F(TcpFixture, RetransmissionsCarryTheMetaBit) {
  rack_cfg.tor.buffer.total_bytes = 256 << 10;
  rack_cfg.tor.buffer.quadrants = 1;
  rack_cfg.tor.buffer.reserve_per_queue = 0;
  rack_cfg.tor.buffer.ecn_threshold = 1 << 30;
  make_rack();
  std::int64_t marked_ingress = 0;
  rack->server(0).set_segment_hook([&](const net::Packet& p, bool ingress) {
    if (ingress && p.retx_mark) marked_ingress += p.bytes;
  });
  TcpConfig cfg;
  cfg.cc = CcKind::kCubic;
  TcpConnection conn(simulator, 1, remote(0), server(0), cfg);
  conn.send_app_data(4 << 20);
  simulator.run();
  ASSERT_GT(conn.stats().retx_bytes, 0);
  // The receiver-side tc layer observed the retransmit bit (§4.2).
  EXPECT_GT(marked_ingress, 0);
}

TEST_F(TcpFixture, TwoConnectionsShareTheDownlink) {
  make_rack();
  TcpConnection a(simulator, 1, remote(0), server(0), TcpConfig{});
  TcpConnection b(simulator, 2, remote(1), server(0), TcpConfig{});
  a.send_app_data(1 << 20);
  b.send_app_data(1 << 20);
  simulator.run();
  EXPECT_EQ(a.stats().delivered_bytes, 1 << 20);
  EXPECT_EQ(b.stats().delivered_bytes, 1 << 20);
}

TEST_F(TcpFixture, OutstandingBoundedByCwnd) {
  make_rack();
  TcpConnection conn(simulator, 1, remote(0), server(0), TcpConfig{});
  conn.send_app_data(1 << 20);
  // Step the simulation in slices and check the invariant.
  for (sim::SimTime t = 0; t < 50 * sim::kMillisecond;
       t += sim::kMillisecond) {
    simulator.run_until(t);
    EXPECT_LE(conn.outstanding(), conn.cwnd() + 2 * 1460);
  }
  simulator.run();
}

TEST_F(TcpFixture, ServerToServerConnectionWorks) {
  make_rack();
  TcpConnection conn(simulator, 9, server(1), server(0), TcpConfig{});
  conn.send_app_data(128 << 10);
  simulator.run();
  EXPECT_EQ(conn.stats().delivered_bytes, 128 << 10);
}

TEST_F(TcpFixture, SurvivesInjectedDataPathLoss) {
  // Drop every 50th packet on the sender's link: steady forward loss.
  rack_cfg.remote_link.drop_every_n = 50;
  make_rack();
  TcpConnection conn(simulator, 1, remote(0), server(0), TcpConfig{});
  conn.send_app_data(2 << 20);
  simulator.run();
  EXPECT_EQ(conn.stats().delivered_bytes, 2 << 20);
  EXPECT_TRUE(conn.idle());
  EXPECT_GT(conn.stats().retx_bytes, 0);
}

TEST_F(TcpFixture, SurvivesInjectedAckPathLoss) {
  // Drop every 20th packet on the receiver's egress (the ACK path):
  // cumulative ACKs make individual ACK losses harmless.
  rack_cfg.server_link.drop_every_n = 20;
  make_rack();
  TcpConnection conn(simulator, 1, remote(0), server(0), TcpConfig{});
  conn.send_app_data(2 << 20);
  simulator.run();
  EXPECT_EQ(conn.stats().delivered_bytes, 2 << 20);
  EXPECT_TRUE(conn.idle());
}

TEST_F(TcpFixture, SurvivesBidirectionalLoss) {
  rack_cfg.remote_link.drop_every_n = 37;
  rack_cfg.server_link.drop_every_n = 41;
  make_rack();
  TcpConnection conn(simulator, 1, remote(0), server(0), TcpConfig{});
  conn.send_app_data(1 << 20);
  simulator.run();
  EXPECT_EQ(conn.stats().delivered_bytes, 1 << 20);
}

TEST_F(TcpFixture, HeavyInjectedLossStillCompletes) {
  // One in eight packets lost: timeout-driven recovery territory.
  rack_cfg.remote_link.drop_every_n = 8;
  make_rack();
  TcpConfig cfg;
  cfg.cc = CcKind::kCubic;
  TcpConnection conn(simulator, 1, remote(0), server(0), cfg);
  conn.send_app_data(512 << 10);
  simulator.run();
  EXPECT_EQ(conn.stats().delivered_bytes, 512 << 10);
  EXPECT_GT(conn.stats().timeouts + conn.stats().fast_retransmits, 0u);
}

TEST_F(TcpFixture, DctcpFlowsShareFairly) {
  // Two long DCTCP flows into the same server queue should converge to
  // roughly equal shares (the ECN feedback loop equalizes windows).
  make_rack();
  TcpConnection a(simulator, 1, remote(0), server(0), TcpConfig{});
  TcpConnection b(simulator, 2, remote(1), server(0), TcpConfig{});
  a.send_app_data(12 << 20);
  b.send_app_data(12 << 20);
  // Sample progress midway through the transfer.
  simulator.run_until(8 * sim::kMillisecond);
  const double da = static_cast<double>(a.stats().delivered_bytes);
  const double db = static_cast<double>(b.stats().delivered_bytes);
  ASSERT_GT(da, 0);
  ASSERT_GT(db, 0);
  const double ratio = da > db ? da / db : db / da;
  EXPECT_LT(ratio, 2.0);
  simulator.run();
  EXPECT_EQ(a.stats().delivered_bytes, 12 << 20);
  EXPECT_EQ(b.stats().delivered_bytes, 12 << 20);
}

TEST_F(TcpFixture, AggregateThroughputNearLineRate) {
  make_rack();
  TcpConnection conn(simulator, 1, remote(0), server(0), TcpConfig{});
  conn.send_app_data(8 << 20);
  simulator.run();
  // 8MB at 12.5Gb/s is ~5.4ms on the wire; allow ramp-up slack.
  EXPECT_LT(sim::to_ms(simulator.now()), 12.0);
}

TEST_F(TcpFixture, ZeroByteWriteIsHarmless) {
  make_rack();
  TcpConnection conn(simulator, 1, remote(0), server(0), TcpConfig{});
  conn.send_app_data(0);
  simulator.run();
  EXPECT_TRUE(conn.idle());
  EXPECT_EQ(conn.stats().delivered_bytes, 0);
}

/// Property sweep: delivery must complete under every congestion
/// controller and injected-loss pattern combination.
class TcpRobustnessTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(TcpRobustnessTest, AlwaysDeliversEverything) {
  const auto cc = static_cast<CcKind>(std::get<0>(GetParam()));
  const std::uint32_t drop_every_n = std::get<1>(GetParam());
  sim::Simulator simulator;
  net::RackConfig rack_cfg;
  rack_cfg.remote_link.drop_every_n = drop_every_n;
  net::Rack rack(simulator, rack_cfg);
  TransportHost sender(rack.remote(0));
  TransportHost receiver(rack.server(0));
  TcpConfig cfg;
  cfg.cc = cc;
  TcpConnection conn(simulator, 1, sender, receiver, cfg);
  conn.send_app_data(768 << 10);
  simulator.run();
  EXPECT_EQ(conn.stats().delivered_bytes, 768 << 10);
  EXPECT_TRUE(conn.idle());
}

INSTANTIATE_TEST_SUITE_P(
    CcAndLoss, TcpRobustnessTest,
    ::testing::Combine(::testing::Values(0, 1),  // kDctcp, kCubic
                       ::testing::Values(0u, 97u, 23u, 11u)));

}  // namespace
}  // namespace msamp::transport

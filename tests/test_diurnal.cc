// Tests for the diurnal load profiles (§7.2).
#include "workload/diurnal.h"

#include <gtest/gtest.h>

namespace msamp::workload {
namespace {

TEST(Diurnal, AveragesNearOne) {
  for (const auto region : {RegionId::kRegA, RegionId::kRegB}) {
    double sum = 0;
    for (int h = 0; h < 24; ++h) sum += diurnal_multiplier(region, h);
    EXPECT_NEAR(sum / 24.0, 1.0, 0.03) << region_name(region);
  }
}

TEST(Diurnal, RegAPeaksInMorningWindow) {
  // §7.2: RegA contention (and volume) rises between hours 4 and 10.
  double peak_window = 0, off_window = 0;
  for (int h = 4; h <= 10; ++h) {
    peak_window += diurnal_multiplier(RegionId::kRegA, h);
  }
  for (int h = 14; h <= 20; ++h) {
    off_window += diurnal_multiplier(RegionId::kRegA, h);
  }
  EXPECT_GT(peak_window / 7.0, 1.05);
  EXPECT_GT(peak_window, off_window);
}

TEST(Diurnal, BusyHourIsElevatedInBothRegions) {
  EXPECT_GT(diurnal_multiplier(RegionId::kRegA, kBusyHour), 1.0);
  EXPECT_GT(diurnal_multiplier(RegionId::kRegB, kBusyHour), 0.85);
}

TEST(Diurnal, RegBPeaksLater) {
  double morning = 0, afternoon = 0;
  for (int h = 2; h <= 6; ++h) morning += diurnal_multiplier(RegionId::kRegB, h);
  for (int h = 12; h <= 18; ++h) {
    afternoon += diurnal_multiplier(RegionId::kRegB, h);
  }
  EXPECT_GT(afternoon / 7.0, morning / 5.0);
}

TEST(Diurnal, HourWrapsSafely) {
  EXPECT_DOUBLE_EQ(diurnal_multiplier(RegionId::kRegA, 24),
                   diurnal_multiplier(RegionId::kRegA, 0));
  EXPECT_DOUBLE_EQ(diurnal_multiplier(RegionId::kRegA, -1),
                   diurnal_multiplier(RegionId::kRegA, 23));
  EXPECT_DOUBLE_EQ(diurnal_multiplier(RegionId::kRegB, 49),
                   diurnal_multiplier(RegionId::kRegB, 1));
}

TEST(Diurnal, AllMultipliersPositive) {
  for (int h = 0; h < 24; ++h) {
    EXPECT_GT(diurnal_multiplier(RegionId::kRegA, h), 0.5);
    EXPECT_GT(diurnal_multiplier(RegionId::kRegB, h), 0.5);
    EXPECT_LT(diurnal_multiplier(RegionId::kRegA, h), 1.5);
    EXPECT_LT(diurnal_multiplier(RegionId::kRegB, h), 1.5);
  }
}

}  // namespace
}  // namespace msamp::workload

// Tests for dataset record serialization, including byte-level hardening
// of deserialize() against truncated, mutated, and hostile blobs.
#include "fleet/dataset.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "fleet/dataset_view.h"
#include "fleet/fleet_runner.h"
#include "fleet/wire.h"

namespace msamp::fleet {
namespace {

Dataset sample_dataset() {
  Dataset ds;
  ds.fingerprint = 0xabcdef;
  // A consistent (hand-built) shard header: one rack per region and one
  // hour -> two canonical windows, of which the first produced records.
  ds.config.racks_per_region = 1;
  ds.config.hours = 1;
  ds.window_begin = 0;
  ds.window_end = 2;
  ds.window_counts.push_back({/*has_run=*/1, /*server_runs=*/1,
                              /*bursts=*/1});
  ds.window_counts.push_back({});
  RackInfo rack;
  rack.rack_id = 3;
  rack.region = 0;
  rack.ml_dense = 1;
  rack.distinct_tasks = 8;
  rack.dominant_share = 0.8f;
  rack.busy_hour_avg_contention = 7.5f;
  rack.rack_class = static_cast<std::uint8_t>(analysis::RackClass::kRegAHigh);
  ds.racks.push_back(rack);
  // v6 requires the complete canonical table: one RegB rack rounds out
  // the 2 * racks_per_region entries.
  RackInfo regb;
  regb.rack_id = 4;
  regb.region = 1;
  regb.rack_class = static_cast<std::uint8_t>(analysis::RackClass::kRegB);
  ds.racks.push_back(regb);

  RackRunRecord rr;
  rr.rack_id = 3;
  rr.hour = 6;
  rr.avg_contention = 7.25f;
  rr.p90_contention = 12;
  rr.usable = 1;
  rr.in_bytes = 1e9;
  rr.drop_bytes = 1e5;
  ds.rack_runs.push_back(rr);

  ServerRunRecord sr;
  sr.rack_id = 3;
  sr.bursty = 1;
  sr.bursts_per_sec = 7.5f;
  ds.server_runs.push_back(sr);

  BurstRecord b;
  b.rack_id = 3;
  b.len_ms = 4;
  b.volume_bytes = 1.8e6f;
  b.max_contention = 9;
  b.contended = 1;
  b.lossy = 1;
  ds.bursts.push_back(b);

  ds.low_contention_example.rack_id = 1;
  ds.low_contention_example.num_servers = 2;
  ds.low_contention_example.num_samples = 3;
  ds.low_contention_example.raster = {1, 0, 0, 0, 1, 0};
  ds.low_contention_example.contention = {1, 1, 0};
  ds.high_contention_example.rack_id = 2;
  return ds;
}

TEST(Dataset, SerializeRoundTrip) {
  const Dataset ds = sample_dataset();
  Dataset copy;
  ASSERT_TRUE(copy.deserialize(ds.serialize()));
  EXPECT_EQ(copy.fingerprint, ds.fingerprint);
  ASSERT_EQ(copy.racks.size(), 2u);
  EXPECT_EQ(copy.racks[0].rack_id, 3u);
  EXPECT_EQ(copy.racks[0].ml_dense, 1);
  EXPECT_FLOAT_EQ(copy.racks[0].busy_hour_avg_contention, 7.5f);
  ASSERT_EQ(copy.rack_runs.size(), 1u);
  EXPECT_FLOAT_EQ(copy.rack_runs[0].avg_contention, 7.25f);
  EXPECT_DOUBLE_EQ(copy.rack_runs[0].in_bytes, 1e9);
  ASSERT_EQ(copy.server_runs.size(), 1u);
  EXPECT_FLOAT_EQ(copy.server_runs[0].bursts_per_sec, 7.5f);
  ASSERT_EQ(copy.bursts.size(), 1u);
  EXPECT_EQ(copy.bursts[0].max_contention, 9);
  EXPECT_EQ(copy.bursts[0].lossy, 1);
  EXPECT_EQ(copy.low_contention_example.raster,
            ds.low_contention_example.raster);
  EXPECT_EQ(copy.low_contention_example.contention,
            ds.low_contention_example.contention);
}

/// A real (small) generated dataset, so the hardening tests mutate blobs
/// with genuine record counts, exemplars, and trailing structure.
const std::vector<std::uint8_t>& real_blob() {
  static const std::vector<std::uint8_t> blob = [] {
    FleetConfig cfg;
    cfg.racks_per_region = 2;
    cfg.servers_per_rack = 16;
    cfg.hours = 2;
    cfg.samples_per_run = 60;
    cfg.warmup_ms = 5;
    cfg.threads = 1;
    return run_fleet(cfg).serialize();
  }();
  return blob;
}

TEST(Dataset, RejectsCorruption) {
  auto blob = sample_dataset().serialize();
  Dataset ds;
  blob[0] ^= 0x1;
  EXPECT_FALSE(ds.deserialize(blob));
}

TEST(Dataset, RejectsTruncation) {
  auto blob = sample_dataset().serialize();
  blob.resize(blob.size() / 2);
  Dataset ds;
  EXPECT_FALSE(ds.deserialize(blob));
}

TEST(Dataset, RejectsTrailingGarbage) {
  auto blob = sample_dataset().serialize();
  blob.push_back(7);
  Dataset ds;
  EXPECT_FALSE(ds.deserialize(blob));
}

TEST(Dataset, SaveThenOpenMapped) {
  const std::string path = "test_dataset_tmp/ds.bin";
  const Dataset ds = sample_dataset();
  ASSERT_TRUE(ds.save(path));
  DatasetView view;
  const auto st = Dataset::open_mapped(path, &view);
  ASSERT_TRUE(st) << st.to_string();
  EXPECT_EQ(view.fingerprint(), ds.fingerprint);
  EXPECT_EQ(view.bursts().size(), ds.bursts.size());
  const Dataset loaded = Dataset::from_view(view);
  EXPECT_EQ(loaded.fingerprint, ds.fingerprint);
  EXPECT_EQ(loaded.bursts.size(), ds.bursts.size());
  view.close();
  std::filesystem::remove_all("test_dataset_tmp");
}

TEST(Dataset, LoadRejectsV6WithMigrationHint) {
  // The legacy row-wise loader refuses a v6 file and tells the operator
  // how to proceed instead of failing opaquely.
  const std::string path = "test_dataset_reject_tmp/ds6.bin";
  ASSERT_TRUE(sample_dataset().save(path));
  Dataset loaded;
  const auto st = loaded.load(path);
  EXPECT_FALSE(st);
  EXPECT_NE(st.to_string().find("migrate"), std::string::npos)
      << st.to_string();
  std::filesystem::remove_all("test_dataset_reject_tmp");
}

TEST(Dataset, LoadReadsLegacyV4AndV5) {
  const Dataset ds = sample_dataset();
  for (std::uint32_t version : {4u, 5u}) {
    const std::string path = "test_dataset_legacy_tmp/legacy.bin";
    std::filesystem::create_directories("test_dataset_legacy_tmp");
    const auto blob = wire::legacy_serialize(ds, version);
    {
      std::ofstream out(path, std::ios::binary);
      out.write(reinterpret_cast<const char*>(blob.data()),
                static_cast<std::streamsize>(blob.size()));
    }
    Dataset loaded;
    const auto st = loaded.load(path);
    ASSERT_TRUE(st) << "v" << version << ": " << st.to_string();
    EXPECT_EQ(loaded.fingerprint, ds.fingerprint);
    EXPECT_EQ(loaded.bursts.size(), ds.bursts.size());
    EXPECT_EQ(loaded.racks.size(), ds.racks.size());
    std::filesystem::remove_all("test_dataset_legacy_tmp");
  }
}

TEST(Dataset, LoadMissingFileFails) {
  Dataset ds;
  EXPECT_FALSE(ds.load("does/not/exist.bin"));
}

TEST(Dataset, LoadDirectoryFails) {
  // On Linux a directory can be opened for reading but tellg() is -1;
  // load must fail cleanly rather than size a 2^64-byte buffer.
  Dataset ds;
  EXPECT_FALSE(ds.load("."));
}

TEST(Dataset, RealBlobRoundTrips) {
  Dataset ds;
  ASSERT_TRUE(ds.deserialize(real_blob()));
  EXPECT_EQ(ds.serialize(), real_blob());
  EXPECT_FALSE(ds.rack_runs.empty());
  EXPECT_FALSE(ds.server_runs.empty());
}

TEST(Dataset, RejectsTruncationAtEveryLength) {
  const auto& blob = real_blob();
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    Dataset ds;
    const std::vector<std::uint8_t> prefix(blob.begin(),
                                           blob.begin() + cut);
    EXPECT_FALSE(ds.deserialize(prefix)) << "cut=" << cut;
  }
}

TEST(Dataset, RejectsTrailingGarbageOnRealBlob) {
  auto blob = real_blob();
  blob.push_back(0);
  Dataset ds;
  EXPECT_FALSE(ds.deserialize(blob));
}

TEST(Dataset, RejectsWrongMagicAndVersion) {
  {
    auto blob = real_blob();
    blob[0] ^= 0xff;  // magic
    Dataset ds;
    EXPECT_FALSE(ds.deserialize(blob));
  }
  {
    auto blob = real_blob();
    blob[4] ^= 0xff;  // version
    Dataset ds;
    EXPECT_FALSE(ds.deserialize(blob));
  }
}

/// Byte offset of the shard header in a v6 fixed prefix: it follows
/// magic u32, version u32, fingerprint u64, and the serialized config.
std::size_t shard_header_off() { return 16 + wire::config_wire_size(); }

TEST(Dataset, RejectsOversizedRecordCounts) {
  // An adversarial or corrupted record count must fail the layout check
  // (the recomputed column offsets no longer match the section directory
  // or the file size), not drive a huge resize/memcpy.  The four record
  // counts sit right after the shard header's window range.
  const std::size_t counts_off = shard_header_off() + 4 + 4 + 8 + 8;
  for (std::size_t field = 0; field < 4; ++field) {
    for (std::uint64_t hostile :
         {std::uint64_t{0x7fffffffffffffffULL}, std::uint64_t{1} << 32,
          std::uint64_t{0xffffffffffffffffULL}}) {
      auto blob = real_blob();
      std::memcpy(blob.data() + counts_off + 8 * field, &hostile,
                  sizeof(hostile));
      Dataset ds;
      EXPECT_FALSE(ds.deserialize(blob))
          << "field=" << field << " len=" << hostile;
    }
  }
}

TEST(Dataset, RejectsTamperedShardHeader) {
  // The shard header: index u32, count u32, window_begin u64,
  // window_end u64.
  const std::size_t shard_off = shard_header_off();
  {
    // count = 0 is never a valid spec.
    auto blob = real_blob();
    const std::uint32_t zero = 0;
    std::memcpy(blob.data() + shard_off + 4, &zero, sizeof(zero));
    Dataset ds;
    EXPECT_FALSE(ds.deserialize(blob));
  }
  {
    // index >= count.
    auto blob = real_blob();
    const std::uint32_t idx = 1;
    std::memcpy(blob.data() + shard_off, &idx, sizeof(idx));
    Dataset ds;
    EXPECT_FALSE(ds.deserialize(blob));
  }
  {
    // A window range that is not the canonical slice for (shard, config).
    auto blob = real_blob();
    std::uint64_t end = 0;
    std::memcpy(&end, blob.data() + shard_off + 16, sizeof(end));
    ++end;
    std::memcpy(blob.data() + shard_off + 16, &end, sizeof(end));
    Dataset ds;
    EXPECT_FALSE(ds.deserialize(blob));
  }
}

TEST(Dataset, RejectsWindowCountRecordMismatch) {
  // Inflate one window's burst count in the window directory: the
  // per-window counts no longer sum to the section's record count and
  // the parse must fail.
  auto blob = real_blob();
  wire::V6Header h;
  wire::V6Layout lay;
  ASSERT_TRUE(wire::read_header_v6(blob.data(), blob.size(), blob.size(),
                                   &h, &lay));
  const std::uint64_t bursts_col = lay.columns[wire::kSecWindows][2];
  std::uint32_t bursts = 0;
  std::memcpy(&bursts, blob.data() + bursts_col, sizeof(bursts));
  ++bursts;
  std::memcpy(blob.data() + bursts_col, &bursts, sizeof(bursts));
  Dataset ds;
  EXPECT_FALSE(ds.deserialize(blob));
}

TEST(Dataset, PartialShardRoundTrips) {
  // A partial shard is a first-class file: header preserved byte for byte.
  FleetConfig cfg;
  cfg.racks_per_region = 2;
  cfg.servers_per_rack = 12;
  cfg.hours = 2;
  cfg.samples_per_run = 50;
  cfg.warmup_ms = 5;
  cfg.threads = 1;
  const ShardSpec shard{1, 3};
  DatasetBuilder builder(cfg, shard);
  run_fleet(cfg, shard, builder);
  const Dataset ds = builder.take();
  EXPECT_EQ(ds.shard.index, 1u);
  EXPECT_EQ(ds.shard.count, 3u);
  Dataset copy;
  ASSERT_TRUE(copy.deserialize(ds.serialize()));
  EXPECT_EQ(copy.shard.index, 1u);
  EXPECT_EQ(copy.shard.count, 3u);
  EXPECT_EQ(copy.window_begin, ds.window_begin);
  EXPECT_EQ(copy.window_end, ds.window_end);
  EXPECT_EQ(copy.serialize(), ds.serialize());
}

TEST(Dataset, SingleByteMutationsNeverCrash) {
  // Any byte-level mutation must either parse (content changes that stay
  // structurally valid) or return false — never read out of bounds or
  // throw.  Run under the ASan/UBSan lane this is a real fuzz of the
  // reader's bounds checks.
  const auto& blob = real_blob();
  for (std::size_t i = 0; i < blob.size(); ++i) {
    auto mutated = blob;
    mutated[i] ^= 0xa5;
    Dataset ds;
    (void)ds.deserialize(mutated);
  }
}

TEST(Dataset, ClassLookup) {
  const Dataset ds = sample_dataset();
  EXPECT_EQ(ds.class_of(3), analysis::RackClass::kRegAHigh);
  // Unknown racks default to typical.
  EXPECT_EQ(ds.class_of(999), analysis::RackClass::kRegATypical);
}

TEST(FleetConfig, FingerprintSensitivity) {
  FleetConfig a, b;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.seed = 43;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b = a;
  b.racks_per_region = 7;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b = a;
  b.buffer.alpha = 2.0;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  // Knobs that reshape the simulated traffic or the measurement pipeline
  // must re-key the cache too (each was once missing from the hash).
  b = a;
  b.rtt_ms = 0.25;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b = a;
  b.mss = 9000;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b = a;
  b.buffer.reserve_per_queue += 1024;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b = a;
  b.loss.rtt_shift_samples += 1;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b = a;
  b.loss.lag_samples += 1;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b = a;
  b.clocks.offset_stddev *= 2;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  // Execution detail: the thread count must NOT re-key the cache.
  b = a;
  b.threads = 7;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

}  // namespace
}  // namespace msamp::fleet

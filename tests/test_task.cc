// Sanity tests on the task catalog: every profile must be internally
// consistent and encode the paper's qualitative mechanisms.
#include "workload/task.h"

#include <gtest/gtest.h>

namespace msamp::workload {
namespace {

class TaskProfileTest : public ::testing::TestWithParam<int> {};

TEST_P(TaskProfileTest, ProfileIsWellFormed) {
  const auto kind = static_cast<TaskKind>(GetParam());
  const TrafficProfile& p = profile_for(kind);
  EXPECT_GT(p.burst_rate_hz, 0.0);
  EXPECT_GT(p.burst_len_sigma, 0.0);
  EXPECT_GT(p.intensity_lo, 0.0);
  EXPECT_GE(p.intensity_hi, p.intensity_lo);
  // Bursts must be detectable: intensity low bound above the 50% threshold.
  EXPECT_GE(p.intensity_lo, 0.5);
  EXPECT_GT(p.background_util, 0.0);
  EXPECT_LT(p.background_util, 0.5);  // links are largely idle (§6)
  EXPECT_GE(p.conns_inside, p.conns_outside);
  EXPECT_GE(p.adaptivity, 0.0);
  EXPECT_LE(p.adaptivity, 1.0);
  EXPECT_GE(p.active_run_prob, 0.0);
  EXPECT_LE(p.active_run_prob, 1.0);
  EXPECT_FALSE(task_name(kind).empty());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, TaskProfileTest,
                         ::testing::Range(0, kNumTaskKinds));

TEST(TaskCatalog, MlIsAdaptiveAndFewFlow) {
  const auto& ml = profile_for(TaskKind::kMlTraining);
  const auto& cache = profile_for(TaskKind::kCache);
  // The RegA-High mechanism: adapted, persistent, few-flow ML bursts.
  EXPECT_GE(ml.adaptivity, 0.7);
  EXPECT_LT(ml.conns_inside, cache.conns_inside / 2);
  EXPECT_GT(ml.active_run_prob, cache.active_run_prob);
}

TEST(TaskCatalog, CacheIsHeaviestIncast) {
  double max_conns = 0;
  for (int k = 0; k < kNumTaskKinds; ++k) {
    max_conns = std::max(max_conns,
                         profile_for(static_cast<TaskKind>(k)).conns_inside);
  }
  EXPECT_DOUBLE_EQ(profile_for(TaskKind::kCache).conns_inside, max_conns);
}

TEST(TaskCatalog, WebCacheArePoorlyAdapted) {
  EXPECT_LT(profile_for(TaskKind::kWeb).adaptivity, 0.5);
  EXPECT_LT(profile_for(TaskKind::kCache).adaptivity, 0.5);
}

TEST(TaskCatalog, QuietIsNearIdle) {
  const auto& q = profile_for(TaskKind::kQuiet);
  EXPECT_LT(q.background_util, 0.03);
  EXPECT_LT(q.active_run_prob, 0.1);
}

TEST(TaskCatalog, NamesAreDistinct) {
  for (int a = 0; a < kNumTaskKinds; ++a) {
    for (int b = a + 1; b < kNumTaskKinds; ++b) {
      EXPECT_NE(task_name(static_cast<TaskKind>(a)),
                task_name(static_cast<TaskKind>(b)));
    }
  }
}

}  // namespace
}  // namespace msamp::workload

// SpillSink is the disk-backed WindowSink behind cluster workers.  The
// load-bearing property is byte identity: the file it assembles must be
// exactly what DatasetBuilder + Dataset::save would have produced, for
// full, partial, and empty shards, at any chunk size.  The lifecycle
// tests pin the crash-safety contract worker retries rely on: windows
// out of order or an early/double finalize throw, and a sink destroyed
// without finalize leaves no output file and no spill temps behind.
#include "fleet/spill_sink.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "fleet/fleet_runner.h"
#include "fleet/shard.h"

namespace msamp::fleet {
namespace {

namespace fs = std::filesystem;

FleetConfig tiny_config() {
  FleetConfig config;
  config.racks_per_region = 2;
  config.hours = 2;
  config.samples_per_run = 120;
  config.threads = 2;
  return config;
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::current_path() / ("spill_test_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// Generates `shard` through both sinks and returns (builder bytes,
// spill bytes) for comparison.
std::pair<std::string, std::string> both_paths(const FleetConfig& config,
                                               ShardSpec shard,
                                               const fs::path& dir,
                                               std::size_t chunk_bytes) {
  const fs::path via_builder = dir / "builder.bin";
  const fs::path via_spill = dir / "spill.bin";

  DatasetBuilder builder(config, shard);
  run_fleet(config, shard, builder);
  EXPECT_TRUE(builder.take().save(via_builder.string()));

  SpillSink sink(config, shard, via_spill.string(), chunk_bytes);
  run_fleet(config, shard, sink);
  const auto st = sink.finalize();
  EXPECT_TRUE(st) << st.to_string();

  return {file_bytes(via_builder), file_bytes(via_spill)};
}

TEST(SpillSink, FullDayMatchesDatasetBuilderBytes) {
  const fs::path dir = fresh_dir("full");
  const auto [builder, spill] = both_paths(tiny_config(), ShardSpec{}, dir,
                                           SpillSink::kDefaultChunkBytes);
  EXPECT_FALSE(builder.empty());
  EXPECT_EQ(builder, spill);
  fs::remove_all(dir);
}

TEST(SpillSink, PartialShardsMatchAtTinyChunkSize) {
  // chunk_bytes far below one window's records forces mid-shard flushes
  // on every spill file; the bytes must not depend on flush boundaries.
  const FleetConfig config = tiny_config();
  const fs::path dir = fresh_dir("partial");
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto [builder, spill] =
        both_paths(config, ShardSpec{i, 3}, dir, /*chunk_bytes=*/64);
    EXPECT_EQ(builder, spill) << "shard " << i << "/3";
  }
  fs::remove_all(dir);
}

TEST(SpillSink, EmptyShardMatches) {
  // 8 windows over 16 shards: shard 0 owns [0, 0) — no windows at all —
  // yet must still produce a well-formed (mergeable) shard file.
  const fs::path dir = fresh_dir("empty");
  const auto [builder, spill] = both_paths(tiny_config(), ShardSpec{0, 16},
                                           dir, SpillSink::kDefaultChunkBytes);
  EXPECT_EQ(builder, spill);
  fs::remove_all(dir);
}

TEST(SpillSink, RejectsInvalidShard) {
  const fs::path dir = fresh_dir("invalid");
  EXPECT_THROW(
      SpillSink(tiny_config(), ShardSpec{3, 2}, (dir / "out.bin").string()),
      std::invalid_argument);
  fs::remove_all(dir);
}

TEST(SpillSink, OutOfOrderWindowThrows) {
  const fs::path dir = fresh_dir("order");
  SpillSink sink(tiny_config(), ShardSpec{}, (dir / "out.bin").string());
  EXPECT_THROW(sink.on_window(1, WindowRecords{}), std::logic_error);
  fs::remove_all(dir);
}

TEST(SpillSink, FinalizeBeforeRangeCompleteThrows) {
  const fs::path dir = fresh_dir("early");
  SpillSink sink(tiny_config(), ShardSpec{}, (dir / "out.bin").string());
  sink.on_window(0, WindowRecords{});
  EXPECT_THROW(sink.finalize(), std::logic_error);
  fs::remove_all(dir);
}

TEST(SpillSink, DoubleFinalizeThrows) {
  // One rack, one hour: two canonical windows, fed by hand (empty
  // records are legal — a window need not have a run).
  FleetConfig config = tiny_config();
  config.racks_per_region = 1;
  config.hours = 1;
  const fs::path dir = fresh_dir("double");
  SpillSink sink(config, ShardSpec{}, (dir / "out.bin").string());
  sink.on_window(0, WindowRecords{});
  sink.on_window(1, WindowRecords{});
  ASSERT_TRUE(sink.finalize());
  EXPECT_THROW(sink.finalize(), std::logic_error);
  fs::remove_all(dir);
}

TEST(SpillSink, AbandonedSinkLeavesNoOutputAndNoSpillTemps) {
  // A worker killed mid-shard destroys (or simply never finalizes) its
  // sink: the output path must not exist, and the destructor removes the
  // spill temps so a retry starts from a clean slate either way.
  const fs::path dir = fresh_dir("abandon");
  const fs::path out = dir / "out.bin";
  {
    SpillSink sink(tiny_config(), ShardSpec{}, out.string(),
                   /*chunk_bytes=*/64);
    sink.on_window(0, WindowRecords{});
    sink.on_window(1, WindowRecords{});
  }
  EXPECT_FALSE(fs::exists(out));
  EXPECT_FALSE(fs::exists(dir / "out.bin.tmp"));
  EXPECT_TRUE(fs::is_empty(dir));
  fs::remove_all(dir);
}

TEST(SpillSink, FinalizedRunRemovesSpillTempsAndLeavesOnlyTheOutput) {
  FleetConfig config = tiny_config();
  config.racks_per_region = 1;
  config.hours = 1;
  const fs::path dir = fresh_dir("clean");
  const fs::path out = dir / "out.bin";
  {
    SpillSink sink(config, ShardSpec{}, out.string());
    sink.on_window(0, WindowRecords{});
    sink.on_window(1, WindowRecords{});
    ASSERT_TRUE(sink.finalize());
  }
  EXPECT_TRUE(fs::exists(out));
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);  // only out.bin — no .tmp, no .spill-*
  fs::remove_all(dir);
}

TEST(SpillSink, VanishedSpillFileFailsFinalizeInsteadOfThrowing) {
  // Fault injection for the assemble step: between the last on_window and
  // finalize, one spill temp is replaced by a directory, so both the
  // ifstream read and (crucially) std::filesystem::file_size on it fail.
  // finalize must funnel that into a false return with a reason — never
  // let filesystem_error unwind through the worker.
  FleetConfig config = tiny_config();
  config.racks_per_region = 1;
  config.hours = 1;
  const fs::path dir = fresh_dir("vanish");
  const fs::path out = dir / "out.bin";
  SpillSink sink(config, ShardSpec{}, out.string());
  sink.on_window(0, WindowRecords{});
  sink.on_window(1, WindowRecords{});

  const fs::path runs_spill = dir / "out.bin.spill-runs-c0";
  fs::remove(runs_spill);
  fs::create_directory(runs_spill);  // file_size on this sets error_code

  util::Status st;
  EXPECT_NO_THROW(st = sink.finalize());
  EXPECT_FALSE(st);
  EXPECT_FALSE(st.to_string().empty());
  EXPECT_FALSE(fs::exists(out));
  EXPECT_FALSE(fs::exists(dir / "out.bin.tmp"));  // tmp cleaned up
  fs::remove_all(dir);
}

TEST(SpillSink, TruncatesSpillTempsLeftByAKilledAttempt) {
  // Retry idempotence: garbage spill temps from a previous attempt must
  // not leak into the next attempt's bytes.
  FleetConfig config = tiny_config();
  config.racks_per_region = 1;
  config.hours = 1;
  const fs::path dir = fresh_dir("retry");
  const fs::path out = dir / "out.bin";
  std::ofstream(dir / "out.bin.spill-runs-c0")
      << "stale garbage from attempt 0";

  std::string clean_bytes;
  {
    const fs::path ref = dir / "ref.bin";
    DatasetBuilder builder(config, ShardSpec{});
    builder.on_window(0, WindowRecords{});
    builder.on_window(1, WindowRecords{});
    ASSERT_TRUE(builder.take().save(ref.string()));
    clean_bytes = file_bytes(ref);
    fs::remove(ref);
  }

  SpillSink sink(config, ShardSpec{}, out.string());
  sink.on_window(0, WindowRecords{});
  sink.on_window(1, WindowRecords{});
  ASSERT_TRUE(sink.finalize());
  EXPECT_EQ(file_bytes(out), clean_bytes);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace msamp::fleet

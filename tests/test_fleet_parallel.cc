// The parallel fleet runner's determinism contract: any thread count
// produces a Dataset byte-identical to the serial sweep (same serialized
// blob, same fingerprint), progress is serialized/monotone, and
// shared_dataset is safe under concurrent first-callers.
#include "fleet/fleet_runner.h"

#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fleet/dataset_view.h"
#include "fleet/merge.h"
#include "workload/diurnal.h"

namespace msamp::fleet {
namespace {

/// Keeps MSAMP_THREADS from overriding the per-test thread counts.
class ScopedNoEnvThreads {
 public:
  ScopedNoEnvThreads() {
    const char* v = std::getenv("MSAMP_THREADS");
    if (v != nullptr) saved_ = v;
    unsetenv("MSAMP_THREADS");
  }
  ~ScopedNoEnvThreads() {
    if (!saved_.empty()) setenv("MSAMP_THREADS", saved_.c_str(), 1);
  }

 private:
  std::string saved_;
};

/// Small day that still crosses the busy hour (6), so the exemplar
/// selection — the only order-sensitive reduction step — is exercised.
FleetConfig small_day() {
  FleetConfig cfg;
  cfg.racks_per_region = 4;
  cfg.servers_per_rack = 30;
  cfg.hours = 7;
  cfg.samples_per_run = 120;
  cfg.warmup_ms = 10;
  cfg.classify.high_threshold = 2.0;
  return cfg;
}

/// A second shape: different scale, fabric stage on, non-default buffer
/// policy, different seed.
FleetConfig fabric_day() {
  FleetConfig cfg;
  cfg.seed = 1234;
  cfg.racks_per_region = 3;
  cfg.servers_per_rack = 24;
  cfg.hours = 3;
  cfg.samples_per_run = 100;
  cfg.warmup_ms = 10;
  cfg.fabric.enabled = true;
  cfg.buffer.policy = net::BufferPolicy::kBurstAbsorbDt;
  return cfg;
}

TEST(FleetParallel, ByteIdenticalToSerialAcrossThreadCounts) {
  ScopedNoEnvThreads no_env;
  for (const FleetConfig& base : {small_day(), fabric_day()}) {
    FleetConfig serial_cfg = base;
    serial_cfg.threads = 1;
    const std::vector<std::uint8_t> serial_blob =
        run_fleet(serial_cfg).serialize();
    for (int threads : {2, 4, 7}) {
      FleetConfig cfg = base;
      cfg.threads = threads;
      const Dataset parallel = run_fleet(cfg);
      EXPECT_EQ(parallel.fingerprint, serial_cfg.fingerprint())
          << "threads must not enter the fingerprint";
      EXPECT_TRUE(parallel.serialize() == serial_blob)
          << "dataset bytes differ at threads=" << threads
          << " seed=" << base.seed;
    }
  }
}

TEST(FleetParallel, ProgressSerializedStrictlyIncreasingEndsAtOne) {
  ScopedNoEnvThreads no_env;
  FleetConfig cfg = small_day();
  cfg.threads = 4;
  std::vector<double> fractions;
  run_fleet(cfg, [&](double p) {
    // The runner serializes callbacks, so no locking is needed here.
    fractions.push_back(p);
  });
  const std::size_t windows =
      static_cast<std::size_t>(2 * cfg.racks_per_region) *
      static_cast<std::size_t>(cfg.hours);
  ASSERT_EQ(fractions.size(), windows);
  for (std::size_t i = 1; i < fractions.size(); ++i) {
    EXPECT_GT(fractions[i], fractions[i - 1]);
  }
  EXPECT_GT(fractions.front(), 0.0);
  EXPECT_DOUBLE_EQ(fractions.back(), 1.0);
}

TEST(FleetParallel, MergedShardsByteIdenticalAcrossThreadCounts) {
  // The multi-process contract end to end: three shards generated with
  // *different* thread counts, merged, must equal the serial whole-day
  // run byte for byte.
  ScopedNoEnvThreads no_env;
  FleetConfig serial_cfg = small_day();
  serial_cfg.threads = 1;
  const std::vector<std::uint8_t> serial_blob =
      run_fleet(serial_cfg).serialize();

  std::vector<Dataset> shards;
  const int per_shard_threads[] = {1, 3, 4};
  for (std::uint32_t i = 0; i < 3; ++i) {
    FleetConfig cfg = small_day();
    cfg.threads = per_shard_threads[i];
    const ShardSpec shard{i, 3};
    DatasetBuilder builder(cfg, shard);
    run_fleet(cfg, shard, builder);
    shards.push_back(builder.take());
  }
  // A shard round-trips through its file format without disturbing the
  // merge (this is the path msampctl fleet --shard / merge exercises).
  for (Dataset& s : shards) {
    Dataset copy;
    ASSERT_TRUE(copy.deserialize(s.serialize()));
    s = std::move(copy);
  }
  std::string error;
  const auto merged = merge_datasets(std::move(shards), &error);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_TRUE(merged->serialize() == serial_blob)
      << "merged shard bytes differ from the single-process run";
}

TEST(FleetParallel, SharedDatasetRejectsPartialShardCache) {
  // A partial shard file at the cache path must be regenerated, never
  // silently served as the whole day.
  ScopedNoEnvThreads no_env;
  const std::string cache = "test_fleet_partial_cache/ds.bin";
  std::filesystem::remove_all("test_fleet_partial_cache");
  FleetConfig cfg = fabric_day();
  cfg.seed = 55341;  // unique fingerprint: avoids the process-wide cache
  cfg.threads = 2;
  const ShardSpec shard{0, 2};
  DatasetBuilder builder(cfg, shard);
  run_fleet(cfg, shard, builder);
  std::filesystem::create_directories("test_fleet_partial_cache");
  ASSERT_TRUE(builder.take().save(cache));

  const Dataset& ds = shared_dataset(cfg, cache);
  EXPECT_TRUE(ds.shard.full_range());
  const std::size_t windows =
      static_cast<std::size_t>(2 * cfg.racks_per_region) *
      static_cast<std::size_t>(cfg.hours);
  EXPECT_EQ(ds.window_end - ds.window_begin, windows);
  std::filesystem::remove_all("test_fleet_partial_cache");
}

TEST(FleetParallel, SharedDatasetRacedFirstCallersReturnOneInstance) {
  ScopedNoEnvThreads no_env;
  const std::string cache = "test_fleet_parallel_cache/ds.bin";
  std::filesystem::remove_all("test_fleet_parallel_cache");
  FleetConfig cfg = fabric_day();
  cfg.seed = 99177;  // unique fingerprint: forces a fresh generation
  cfg.threads = 2;
  std::vector<const Dataset*> seen(4, nullptr);
  std::vector<std::thread> callers;
  for (std::size_t t = 0; t < seen.size(); ++t) {
    callers.emplace_back(
        [&, t] { seen[t] = &shared_dataset(cfg, cache); });
  }
  for (auto& th : callers) th.join();
  for (const Dataset* p : seen) {
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p, seen[0]);  // one generation, one shared instance
  }
  EXPECT_EQ(seen[0]->fingerprint, cfg.fingerprint());
  // The cache landed via atomic rename: the final file parses, and no
  // temp file is left behind.
  DatasetView from_disk;
  const auto st = Dataset::open_mapped(cache, &from_disk);
  ASSERT_TRUE(st) << st.to_string();
  EXPECT_EQ(from_disk.fingerprint(), cfg.fingerprint());
  from_disk.close();
  EXPECT_FALSE(std::filesystem::exists(cache + ".tmp"));
  std::filesystem::remove_all("test_fleet_parallel_cache");
}

}  // namespace
}  // namespace msamp::fleet

// Tests for RunRecord serialization and helpers.
#include "core/run_record.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace msamp::core {
namespace {

RunRecord sample_record() {
  RunRecord r;
  r.host = 42;
  r.start = 123456789;
  r.interval = sim::kMillisecond;
  util::Rng rng(3);
  r.buckets.resize(50);
  for (auto& b : r.buckets) {
    b.in_bytes = static_cast<std::int64_t>(rng.uniform_int(1 << 20));
    b.in_retx_bytes = static_cast<std::int64_t>(rng.uniform_int(1000));
    b.out_bytes = static_cast<std::int64_t>(rng.uniform_int(1 << 18));
    b.out_retx_bytes = static_cast<std::int64_t>(rng.uniform_int(100));
    b.in_ecn_bytes = static_cast<std::int64_t>(rng.uniform_int(5000));
    b.connections = rng.uniform(0, 200);
  }
  return r;
}

TEST(RunRecord, SerializeRoundTrip) {
  const RunRecord r = sample_record();
  const auto blob = r.serialize();
  RunRecord copy;
  ASSERT_TRUE(copy.deserialize(blob));
  EXPECT_EQ(copy.host, r.host);
  EXPECT_EQ(copy.start, r.start);
  EXPECT_EQ(copy.interval, r.interval);
  ASSERT_EQ(copy.buckets.size(), r.buckets.size());
  for (std::size_t i = 0; i < r.buckets.size(); ++i) {
    EXPECT_EQ(copy.buckets[i].in_bytes, r.buckets[i].in_bytes);
    EXPECT_EQ(copy.buckets[i].in_retx_bytes, r.buckets[i].in_retx_bytes);
    EXPECT_EQ(copy.buckets[i].out_bytes, r.buckets[i].out_bytes);
    EXPECT_EQ(copy.buckets[i].out_retx_bytes, r.buckets[i].out_retx_bytes);
    EXPECT_EQ(copy.buckets[i].in_ecn_bytes, r.buckets[i].in_ecn_bytes);
    EXPECT_DOUBLE_EQ(copy.buckets[i].connections, r.buckets[i].connections);
  }
}

TEST(RunRecord, EmptyRecordRoundTrip) {
  RunRecord r;
  r.host = 1;
  const auto blob = r.serialize();
  RunRecord copy;
  ASSERT_TRUE(copy.deserialize(blob));
  EXPECT_FALSE(copy.valid());
  EXPECT_TRUE(copy.buckets.empty());
}

TEST(RunRecord, RejectsGarbage) {
  RunRecord r;
  EXPECT_FALSE(r.deserialize({}));
  EXPECT_FALSE(r.deserialize({1, 2, 3}));
  std::vector<std::uint8_t> blob = sample_record().serialize();
  blob[0] ^= 0xff;  // corrupt the magic
  EXPECT_FALSE(r.deserialize(blob));
}

TEST(RunRecord, RejectsTruncation) {
  const auto blob = sample_record().serialize();
  RunRecord r;
  for (std::size_t cut : {blob.size() - 1, blob.size() / 2, std::size_t{10}}) {
    std::vector<std::uint8_t> truncated(blob.begin(),
                                        blob.begin() + static_cast<long>(cut));
    EXPECT_FALSE(r.deserialize(truncated)) << "cut=" << cut;
  }
}

TEST(RunRecord, RejectsTrailingBytes) {
  auto blob = sample_record().serialize();
  blob.push_back(0);
  RunRecord r;
  EXPECT_FALSE(r.deserialize(blob));
}

TEST(RunRecord, RejectsBogusCount) {
  RunRecord src;
  src.host = 1;
  src.start = 0;
  src.interval = 1;
  auto blob = src.serialize();
  // Patch the bucket count field (offset 28) to a huge value.
  blob[28] = 0xff;
  blob[29] = 0xff;
  blob[30] = 0xff;
  RunRecord r;
  EXPECT_FALSE(r.deserialize(blob));
}

TEST(RunRecord, Validity) {
  RunRecord r;
  EXPECT_FALSE(r.valid());  // no start, no buckets
  r.start = 100;
  EXPECT_FALSE(r.valid());  // still no buckets
  r.buckets.resize(3);
  EXPECT_TRUE(r.valid());
  r.start = -1;
  EXPECT_FALSE(r.valid());
}

TEST(RunRecord, Duration) {
  RunRecord r;
  r.interval = sim::kMillisecond;
  r.buckets.resize(2000);
  EXPECT_EQ(r.duration(), 2 * sim::kSecond);
}

TEST(RunRecord, IngressUtilization) {
  RunRecord r;
  r.start = 0;
  r.interval = sim::kMillisecond;
  r.buckets.resize(2);
  // 12.5Gb/s for 1ms is 1.5625MB; half of that is 50% utilization.
  r.buckets[0].in_bytes = 781250;
  EXPECT_NEAR(r.ingress_utilization(0, 12.5), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(r.ingress_utilization(1, 12.5), 0.0);
  EXPECT_DOUBLE_EQ(r.ingress_utilization(99, 12.5), 0.0);  // out of range
}

}  // namespace
}  // namespace msamp::core

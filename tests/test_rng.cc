// Tests for util::Rng: determinism, forking, and distribution sanity.
#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace msamp::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, NearbySeedsDecorrelated) {
  // splitmix64 seeding should decorrelate seed and seed+1.
  Rng a(1), b(2);
  double mean_a = 0, mean_b = 0;
  for (int i = 0; i < 1000; ++i) {
    mean_a += a.uniform();
    mean_b += b.uniform();
  }
  EXPECT_NEAR(mean_a / 1000, 0.5, 0.05);
  EXPECT_NEAR(mean_b / 1000, 0.5, 0.05);
}

TEST(Rng, ForkIndependentOfParentContinuation) {
  Rng parent(42);
  Rng child = parent.fork(1);
  const std::uint64_t c0 = child.next();
  // A fresh parent forked the same way yields the same child stream.
  Rng parent2(42);
  Rng child2 = parent2.fork(1);
  EXPECT_EQ(c0, child2.next());
}

TEST(Rng, ForkSaltsDiffer) {
  Rng p1(42), p2(42);
  Rng a = p1.fork(1);
  Rng b = p2.fork(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(2.5, 7.5);
    EXPECT_GE(u, 2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t v = r.uniform_int(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(Rng, UniformIntOneAlwaysZero) {
  Rng r(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_int(1), 0u);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-1.0));
    EXPECT_TRUE(r.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng r(8);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng r(9);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, LognormalMedian) {
  Rng r(10);
  std::vector<double> xs;
  for (int i = 0; i < 10001; ++i) xs.push_back(r.lognormal(1.0, 0.5));
  std::nth_element(xs.begin(), xs.begin() + 5000, xs.end());
  EXPECT_NEAR(xs[5000], std::exp(1.0), 0.15);
}

TEST(Rng, ExponentialMean) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / 20000, 0.25, 0.02);
}

TEST(Rng, ParetoBounded) {
  Rng r(12);
  for (int i = 0; i < 5000; ++i) {
    const double x = r.pareto(1.0, 100.0, 1.2);
    EXPECT_GE(x, 1.0 - 1e-9);
    EXPECT_LE(x, 100.0 + 1e-9);
  }
}

TEST(Rng, ParetoSkewsLow) {
  Rng r(13);
  int low = 0;
  for (int i = 0; i < 5000; ++i) low += r.pareto(1.0, 100.0, 1.5) < 3.0;
  EXPECT_GT(low, 3500);  // heavy mass near the lower bound
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, MeanMatches) {
  const double mean = GetParam();
  Rng r(static_cast<std::uint64_t>(mean * 1000) + 1);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.poisson(mean));
  EXPECT_NEAR(sum / n, mean, std::max(0.05, mean * 0.05));
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonMeanTest,
                         ::testing::Values(0.5, 2.0, 8.0, 25.0, 60.0, 200.0));

TEST(Rng, PoissonZeroMean) {
  Rng r(14);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.poisson(0.0), 0u);
}

TEST(Rng, ZipfBounds) {
  Rng r(15);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(r.zipf(50, 1.0), 50u);
    EXPECT_LT(r.zipf(50, 0.0), 50u);
    EXPECT_EQ(r.zipf(1, 1.0), 0u);
  }
}

TEST(Rng, ZipfSkewsToLowRanks) {
  Rng r(16);
  int rank0 = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) rank0 += r.zipf(100, 1.0) == 0;
  // Under Zipf(1) rank 0 should hold far more than the uniform 1%.
  EXPECT_GT(rank0, n / 25);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  r.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng r(18);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  r.shuffle(v);
  int moved = 0;
  for (int i = 0; i < 100; ++i) moved += v[static_cast<std::size_t>(i)] != i;
  EXPECT_GT(moved, 80);
}

}  // namespace
}  // namespace msamp::util

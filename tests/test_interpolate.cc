// Tests for SyncMillisampler series alignment (§4.4 linear interpolation).
#include "core/interpolate.h"

#include <gtest/gtest.h>

namespace msamp::core {
namespace {

RunRecord make_record(sim::SimTime start, std::vector<std::int64_t> in_bytes) {
  RunRecord r;
  r.host = 1;
  r.start = start;
  r.interval = sim::kMillisecond;
  for (std::int64_t v : in_bytes) {
    BucketSample s;
    s.in_bytes = v;
    s.connections = static_cast<double>(v) / 100.0;
    r.buckets.push_back(s);
  }
  return r;
}

TEST(LerpSample, Blend) {
  BucketSample a, b;
  a.in_bytes = 100;
  b.in_bytes = 200;
  a.connections = 1.0;
  b.connections = 3.0;
  const BucketSample mid = lerp_sample(a, b, 0.5);
  EXPECT_EQ(mid.in_bytes, 150);
  EXPECT_DOUBLE_EQ(mid.connections, 2.0);
  EXPECT_EQ(lerp_sample(a, b, 0.0).in_bytes, 100);
  EXPECT_EQ(lerp_sample(a, b, 1.0).in_bytes, 200);
}

TEST(AlignSeries, IdentityWhenAligned) {
  const RunRecord r = make_record(5 * sim::kMillisecond, {10, 20, 30, 40});
  const auto out = align_series(r, 5 * sim::kMillisecond, 4);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].in_bytes, 10);
  EXPECT_EQ(out[3].in_bytes, 40);
}

TEST(AlignSeries, HalfBucketShiftBlends) {
  const RunRecord r = make_record(0, {100, 200, 300});
  // Grid shifted by half an interval: outputs are midpoints.
  const auto out = align_series(r, sim::kMillisecond / 2, 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].in_bytes, 150);
  EXPECT_EQ(out[1].in_bytes, 250);
}

TEST(AlignSeries, BeforeStartIsZero) {
  const RunRecord r = make_record(10 * sim::kMillisecond, {100, 200});
  const auto out = align_series(r, 0, 5);
  for (const auto& s : out) EXPECT_EQ(s.in_bytes, 0);
}

TEST(AlignSeries, PastEndIsZero) {
  const RunRecord r = make_record(0, {100, 200});
  const auto out = align_series(r, 0, 5);
  EXPECT_EQ(out[0].in_bytes, 100);
  EXPECT_EQ(out[1].in_bytes, 200);
  EXPECT_EQ(out[2].in_bytes, 0);
  EXPECT_EQ(out[4].in_bytes, 0);
}

TEST(AlignSeries, InvalidRecordAllZero) {
  RunRecord r;  // never started
  r.interval = sim::kMillisecond;
  const auto out = align_series(r, 0, 3);
  ASSERT_EQ(out.size(), 3u);
  for (const auto& s : out) EXPECT_EQ(s.in_bytes, 0);
}

TEST(AlignSeries, SubMillisecondSkewSmallError) {
  // A 100µs skew (well-synced NTP) distorts each sample by at most 10%
  // of the bucket-to-bucket delta — the §4.5 validation property.
  const RunRecord r = make_record(100 * sim::kMicrosecond,
                                  {1000, 1000, 1000, 1000});
  const auto out = align_series(r, 0, 4);
  // Constant series stays constant under interpolation (sample 0 precedes
  // the record start and is zero).
  EXPECT_EQ(out[1].in_bytes, 1000);
  EXPECT_EQ(out[2].in_bytes, 1000);
}

TEST(AlignSeries, ConnectionsInterpolated) {
  const RunRecord r = make_record(0, {100, 300});
  const auto out = align_series(r, sim::kMillisecond / 4, 1);
  EXPECT_NEAR(out[0].connections, 1.0 + 0.25 * 2.0, 1e-9);
}

}  // namespace
}  // namespace msamp::core

// Tests for the rack diagnosis report and the §4.6 stall-artifact detector.
#include "analysis/diagnose.h"

#include <gtest/gtest.h>

#include "fleet/fluid_rack.h"

namespace msamp::analysis {
namespace {

constexpr std::int64_t kLine = 1562500;

std::vector<core::BucketSample> series(std::vector<std::int64_t> in_bytes) {
  std::vector<core::BucketSample> out(in_bytes.size());
  for (std::size_t i = 0; i < in_bytes.size(); ++i) {
    out[i].in_bytes = in_bytes[i];
  }
  return out;
}

TEST(StallArtifacts, DetectsGapThenSpike) {
  // Smooth 300KB/ms, then 3 silent ms, then a 2x-line-rate catch-up.
  const auto s = series({300000, 300000, 0, 0, 0, 2 * kLine, 300000});
  const auto spikes = find_stall_artifacts(s, DiagnoseConfig{});
  ASSERT_EQ(spikes.size(), 1u);
  EXPECT_EQ(spikes[0], 5u);
}

TEST(StallArtifacts, GapWithoutSpikeIsNotFlagged) {
  // A quiet period followed by normal traffic is just idleness.
  const auto s = series({300000, 0, 0, 0, 300000});
  EXPECT_TRUE(find_stall_artifacts(s, DiagnoseConfig{}).empty());
}

TEST(StallArtifacts, SpikeWithoutGapIsNotFlagged) {
  // GRO/interpolation can nudge a bucket slightly over line rate without
  // any stall; without a preceding silent gap it is not an artifact.
  const auto s = series({300000, 300000, 2 * kLine, 300000});
  EXPECT_TRUE(find_stall_artifacts(s, DiagnoseConfig{}).empty());
}

TEST(StallArtifacts, SubLineSpikeIsNotFlagged) {
  const auto s = series({300000, 0, 0, 0, kLine - 1, 300000});
  EXPECT_TRUE(find_stall_artifacts(s, DiagnoseConfig{}).empty());
}

TEST(StallArtifacts, MultipleStalls) {
  const auto s = series({kLine / 2, 0, 0, 2 * kLine, kLine / 2, 0, 0, 0,
                         3 * kLine, 100});
  const auto spikes = find_stall_artifacts(s, DiagnoseConfig{});
  ASSERT_EQ(spikes.size(), 2u);
  EXPECT_EQ(spikes[0], 3u);
  EXPECT_EQ(spikes[1], 8u);
}

core::SyncRun synthetic_run() {
  core::SyncRun run;
  run.grid_start = 0;
  run.interval = sim::kMillisecond;
  // Server 0: heavy-incast lossy burster.  Server 1: fan-out burster.
  // Server 2: idle.  Server 3: smooth traffic with a stall artifact.
  run.hosts = {0, 1, 2, 3};
  run.series.assign(4, std::vector<core::BucketSample>(20));
  for (std::size_t k = 4; k < 8; ++k) {
    run.series[0][k].in_bytes = kLine;
    run.series[0][k].connections = 60.0;
    run.series[1][k].in_bytes = kLine;
    run.series[1][k].connections = 5.0;
  }
  run.series[0][8].in_retx_bytes = 5000;  // repair lands after the burst
  for (std::size_t k = 0; k < 20; ++k) {
    run.series[3][k].in_bytes = 200000;
  }
  run.series[3][10].in_bytes = 0;
  run.series[3][11].in_bytes = 0;
  run.series[3][12].in_bytes = 0;
  run.series[3][13].in_bytes = 3 * kLine;  // catch-up batch
  return run;
}

TEST(Diagnose, FullReport) {
  const auto report = diagnose(synthetic_run(), DiagnoseConfig{});
  // Worst millisecond: samples 4-7 have both bursters (+ the stall server
  // is below threshold) -> contention 2, share 1/(1+2).
  EXPECT_GE(report.worst_sample, 4u);
  EXPECT_LE(report.worst_sample, 7u);
  EXPECT_EQ(report.worst_contention, 2);
  EXPECT_NEAR(report.worst_queue_share, 1.0 / 3.0, 1e-9);

  ASSERT_EQ(report.servers.size(), 4u);
  EXPECT_EQ(report.servers[0].pattern, TrafficPattern::kHeavyIncast);
  EXPECT_EQ(report.servers[1].pattern, TrafficPattern::kFanOut);
  EXPECT_EQ(report.servers[2].pattern, TrafficPattern::kIdle);
  EXPECT_EQ(report.servers[0].lossy_bursts, 1u);
  EXPECT_EQ(report.servers[1].lossy_bursts, 0u);

  // The stall artifact is found on server 3 and flagged at run level.
  EXPECT_TRUE(report.measurement_artifacts);
  ASSERT_EQ(report.servers[3].stall_artifacts.size(), 1u);
  EXPECT_EQ(report.servers[3].stall_artifacts[0], 13u);

  // Loss hotspot list leads with server 0 and omits lossless servers.
  ASSERT_EQ(report.loss_hotspots.size(), 1u);
  EXPECT_EQ(report.loss_hotspots[0], 0u);
}

TEST(Diagnose, CleanFluidRunHasNoArtifacts) {
  workload::RackMeta rack;
  rack.rack_id = 1;
  rack.region = workload::RegionId::kRegA;
  rack.intensity = 1.5;
  rack.server_service.assign(16, 0);
  rack.server_kind.assign(16, workload::TaskKind::kCache);
  fleet::FleetConfig cfg;
  cfg.samples_per_run = 200;
  cfg.warmup_ms = 20;
  fleet::FluidRack fluid(rack, cfg, 6, util::Rng(9));
  const auto report = diagnose(fluid.run().sync, DiagnoseConfig{});
  // Genuine traffic cannot exceed line rate per bucket, so no artifacts.
  EXPECT_FALSE(report.measurement_artifacts);
  EXPECT_EQ(report.servers.size(), 16u);
  EXPECT_GT(report.avg_contention, 0.0);
}

TEST(Diagnose, EmptyRun) {
  const auto report = diagnose(core::SyncRun{}, DiagnoseConfig{});
  EXPECT_TRUE(report.servers.empty());
  EXPECT_FALSE(report.measurement_artifacts);
  EXPECT_EQ(report.worst_contention, 0);
}

}  // namespace
}  // namespace msamp::analysis

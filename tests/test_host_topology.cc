// Tests for hosts and rack wiring: hook placement, end-to-end delivery
// through the ToR, and remote-host paths.
#include "core/sampler.h"
#include "net/host.h"
#include "net/topology.h"

#include <vector>

#include <gtest/gtest.h>

namespace msamp::net {
namespace {

TEST(Host, EgressHookSeesSegmentsBeforeWire) {
  sim::Simulator simulator;
  std::vector<Packet> wire;
  Host host(simulator, 1, LinkConfig{}, NicConfig{},
            [&](const Packet& p) { wire.push_back(p); });
  int hook_egress = 0;
  host.set_segment_hook([&](const Packet&, bool ingress) {
    if (!ingress) ++hook_egress;
  });
  Packet p;
  p.flow = 1;
  p.bytes = 1000;
  host.send(p);
  EXPECT_EQ(hook_egress, 1);  // hook fires synchronously at the tc layer
  simulator.run();
  EXPECT_EQ(wire.size(), 1u);
  EXPECT_EQ(host.egress_bytes(), 1000);
}

TEST(Host, IngressHookSeesPostGroSegments) {
  sim::Simulator simulator;
  Host host(simulator, 1, LinkConfig{}, NicConfig{}, [](const Packet&) {});
  std::vector<std::int32_t> sizes;
  host.set_segment_hook([&](const Packet& p, bool ingress) {
    if (ingress) sizes.push_back(p.bytes);
  });
  Packet a;
  a.flow = 2;
  a.seq = 0;
  a.bytes = 1500;
  Packet b = a;
  b.seq = 1500;
  host.deliver_from_wire(a);
  host.deliver_from_wire(b);
  host.nic().flush();
  // GRO merged the two wire packets into one observed segment.
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], 3000);
  EXPECT_EQ(host.ingress_bytes(), 3000);
}

TEST(Host, DetachedHookCostsNothing) {
  sim::Simulator simulator;
  Host host(simulator, 1, LinkConfig{}, NicConfig{}, [](const Packet&) {});
  host.set_segment_hook(nullptr);
  Packet p;
  p.flow = 1;
  p.bytes = 100;
  host.send(p);  // must not crash with no hook or sink
  simulator.run();
  SUCCEED();
}

TEST(Host, IngressSinkReceivesAfterHook) {
  sim::Simulator simulator;
  Host host(simulator, 1, LinkConfig{}, NicConfig{}, [](const Packet&) {});
  std::vector<int> order;
  host.set_segment_hook([&](const Packet&, bool) { order.push_back(1); });
  host.set_ingress_sink([&](const Packet&) { order.push_back(2); });
  Packet p;
  p.flow = 1;
  p.bytes = 100;
  p.is_ack = true;  // bypasses GRO: synchronous
  host.deliver_from_wire(p);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Rack, ServerToServerThroughTor) {
  sim::Simulator simulator;
  RackConfig cfg;
  cfg.num_servers = 4;
  cfg.num_remote_hosts = 2;
  Rack rack(simulator, cfg);
  std::vector<Packet> got;
  rack.server(2).set_ingress_sink([&](const Packet& p) { got.push_back(p); });
  Packet p;
  p.flow = 5;
  p.src = rack.server(0).id();
  p.dst = rack.server(2).id();
  p.bytes = 1500;
  p.is_ack = true;  // skip GRO buffering for determinism
  rack.server(0).send(p);
  simulator.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].flow, 5u);
}

TEST(Rack, RemoteToServerAndBack) {
  sim::Simulator simulator;
  RackConfig cfg;
  cfg.num_servers = 2;
  cfg.num_remote_hosts = 2;
  Rack rack(simulator, cfg);
  std::vector<sim::SimTime> server_rx, remote_rx;
  rack.server(0).set_ingress_sink(
      [&](const Packet&) { server_rx.push_back(simulator.now()); });
  rack.remote(0).set_ingress_sink(
      [&](const Packet&) { remote_rx.push_back(simulator.now()); });

  Packet fwd;
  fwd.flow = 1;
  fwd.src = rack.remote(0).id();
  fwd.dst = rack.server(0).id();
  fwd.bytes = 1500;
  fwd.is_ack = true;
  rack.remote(0).send(fwd);
  simulator.run();
  ASSERT_EQ(server_rx.size(), 1u);

  Packet back;
  back.flow = 1;
  back.src = rack.server(0).id();
  back.dst = rack.remote(0).id();
  back.bytes = 64;
  back.is_ack = true;
  rack.server(0).send(back);
  simulator.run();
  ASSERT_EQ(remote_rx.size(), 1u);
  // Round trip must include fabric delay both ways.
  EXPECT_GT(remote_rx[0], 2 * rack.config().tor.fabric_delay);
}

TEST(Rack, HostLookup) {
  sim::Simulator simulator;
  RackConfig cfg;
  cfg.num_servers = 3;
  cfg.num_remote_hosts = 2;
  Rack rack(simulator, cfg);
  EXPECT_EQ(rack.host(0), &rack.server(0));
  EXPECT_EQ(rack.host(2), &rack.server(2));
  EXPECT_EQ(rack.host(3), nullptr);
  EXPECT_EQ(rack.host(kRemoteBase), &rack.remote(0));
  EXPECT_EQ(rack.host(kRemoteBase + 5), nullptr);
}

TEST(Host, StallBuffersThenBatches) {
  sim::Simulator simulator;
  Host host(simulator, 1, LinkConfig{}, NicConfig{}, [](const Packet&) {});
  std::vector<sim::SimTime> seen;
  host.set_segment_hook([&](const Packet&, bool ingress) {
    if (ingress) seen.push_back(simulator.now());
  });
  host.inject_stall(10 * sim::kMillisecond);
  EXPECT_TRUE(host.stalled());
  // Smooth arrivals during the stall...
  for (int i = 0; i < 5; ++i) {
    simulator.schedule_at(i * sim::kMillisecond, [&host, i] {
      Packet p;
      p.flow = 1;
      p.bytes = 1000;
      p.seq = i * 1000;
      p.is_ack = true;  // bypass GRO for exact counts
      host.deliver_from_wire(p);
    });
  }
  simulator.run();
  EXPECT_FALSE(host.stalled());
  // ...are all observed in one batch at stall end (§4.6's apparent burst).
  ASSERT_EQ(seen.size(), 5u);
  for (sim::SimTime t : seen) EXPECT_EQ(t, 10 * sim::kMillisecond);
  EXPECT_EQ(host.ingress_bytes(), 5000);
}

TEST(Host, StallCreatesApparentBurstInSampler) {
  // The §4.6 diagnosis scenario end to end: a kernel stall turns smooth
  // 20% utilization into a silent gap plus an over-line-rate bucket.
  sim::Simulator simulator;
  Host host(simulator, 1, LinkConfig{}, NicConfig{}, [](const Packet&) {});
  core::SamplerConfig cfg;
  cfg.filter.num_buckets = 40;
  core::Sampler sampler(simulator, host, 0, cfg);
  // Smooth traffic: 312KB per ms (20% of line rate) for 40ms.
  for (int ms = 0; ms < 40; ++ms) {
    simulator.schedule_at(ms * sim::kMillisecond, [&host] {
      Packet p;
      p.flow = 2;
      p.bytes = 312500;
      p.is_ack = true;
      host.deliver_from_wire(p);
    });
  }
  sampler.start_run(sim::kMillisecond, nullptr);
  simulator.schedule_at(10 * sim::kMillisecond,
                        [&host] { host.inject_stall(8 * sim::kMillisecond); });
  simulator.run();
  const auto buckets = sampler.filter().read_aggregated();
  // Silent gap during the stall...
  EXPECT_EQ(buckets[12].in_bytes, 0);
  EXPECT_EQ(buckets[15].in_bytes, 0);
  // ...then a catch-up bucket holding ~8 intervals' worth of bytes.
  EXPECT_GE(buckets[18].in_bytes, 7 * 312500);
}

TEST(Rack, MulticastSubscriptionDelivers) {
  sim::Simulator simulator;
  RackConfig cfg;
  cfg.num_servers = 4;
  Rack rack(simulator, cfg);
  const HostId group = kMulticastBase + 1;
  rack.subscribe_multicast(group, 1);
  rack.subscribe_multicast(group, 3);
  int rx1 = 0, rx3 = 0;
  rack.server(1).set_ingress_sink([&](const Packet&) { ++rx1; });
  rack.server(3).set_ingress_sink([&](const Packet&) { ++rx3; });
  Packet p;
  p.src = rack.remote(0).id();
  p.dst = group;
  p.bytes = 1000;
  rack.remote(0).send(p);
  simulator.run();
  EXPECT_EQ(rx1, 1);
  EXPECT_EQ(rx3, 1);
}

}  // namespace
}  // namespace msamp::net

// Unit and stress tests for util::SpscRing: FIFO order, wraparound,
// full/empty edges, destructor cleanup of in-flight items, move-only
// payloads, and a producer/consumer stress pair whose cross-thread
// publication the TSan lane verifies (scripts/check.sh runs SpscRing.*
// under -fsanitize=thread).
#include "util/spsc_ring.h"

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace msamp::util {
namespace {

TEST(SpscRing, FifoRoundTrip) {
  SpscRing<int> ring(8);
  for (int v = 0; v < 5; ++v) EXPECT_TRUE(ring.try_push(int{v}));
  for (int v = 0; v < 5; ++v) {
    int out = -1;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, v);
  }
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRing, FullAndEmptyEdges) {
  SpscRing<int> ring(4);
  ASSERT_EQ(ring.capacity(), 4u);
  for (int v = 0; v < 4; ++v) EXPECT_TRUE(ring.try_push(int{v}));
  EXPECT_FALSE(ring.try_push(99));  // full: value untouched
  EXPECT_EQ(ring.size(), 4u);

  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(4));  // slot freed by the pop

  for (int expect : {1, 2, 3, 4}) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, expect);
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty());

  const ContentionSnapshot s = ring.contention_snapshot();
  EXPECT_EQ(s.handoff_pushes, 5u);
  EXPECT_EQ(s.handoff_full_spins, 1u);
  EXPECT_EQ(s.handoff_pops, 5u);
  EXPECT_EQ(s.handoff_empty_spins, 1u);
  EXPECT_GT(s.handoff_full_rate(), 0.0);
  EXPECT_GT(s.handoff_empty_rate(), 0.0);
}

TEST(SpscRing, WraparoundManyTimesKeepsFifoOrder) {
  SpscRing<std::size_t> ring(4);  // indices wrap every 4 operations
  std::size_t next_pop = 0;
  for (std::size_t v = 0; v < 1000; ++v) {
    while (!ring.try_push(std::size_t{v})) {
      std::size_t out = 0;
      ASSERT_TRUE(ring.try_pop(out));
      ASSERT_EQ(out, next_pop++);
    }
  }
  std::size_t out = 0;
  while (ring.try_pop(out)) ASSERT_EQ(out, next_pop++);
  EXPECT_EQ(next_pop, 1000u);
}

TEST(SpscRing, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(4);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

TEST(SpscRing, DestructorDestroysInFlightItems) {
  auto live = std::make_shared<int>(0);  // use_count tracks live copies
  {
    SpscRing<std::shared_ptr<int>> ring(8);
    for (int v = 0; v < 5; ++v) {
      ASSERT_TRUE(ring.try_push(std::shared_ptr<int>(live)));
    }
    std::shared_ptr<int> out;
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_TRUE(ring.try_pop(out));
    out.reset();
    EXPECT_EQ(live.use_count(), 1 + 3);  // ours + 3 still in the ring
  }
  EXPECT_EQ(live.use_count(), 1);  // ring destructor released the rest
}

TEST(SpscRing, ProducerConsumerStress) {
  constexpr std::size_t kItems = 100000;
  SpscRing<std::size_t> ring(16);
  std::uint64_t sum = 0;
  std::size_t expect = 0;
  std::thread producer([&ring] {
    for (std::size_t v = 0; v < kItems; ++v) {
      while (!ring.try_push(std::size_t{v})) std::this_thread::yield();
    }
  });
  for (std::size_t got = 0; got < kItems;) {
    std::size_t out = 0;
    if (!ring.try_pop(out)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(out, expect++);  // strict FIFO across threads
    sum += out;
    ++got;
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<std::uint64_t>(kItems) * (kItems - 1) / 2);
  EXPECT_TRUE(ring.empty());
  const ContentionSnapshot s = ring.contention_snapshot();
  EXPECT_EQ(s.handoff_pushes, kItems);
  EXPECT_EQ(s.handoff_pops, kItems);
}

TEST(SpscRing, PublishesPointedToMemoryAcrossThreads) {
  // The fleet runner's usage shape: the producer writes a slot, then
  // pushes just the slot index; the release/acquire edge on the ring must
  // make the slot contents visible to the consumer.  TSan proves this is
  // a synchronized handoff, not a data race that happens to pass.
  constexpr std::size_t kSlots = 4096;
  std::vector<std::uint64_t> slots(kSlots, 0);
  SpscRing<std::size_t> ring(8);
  std::thread producer([&] {
    for (std::size_t i = 0; i < kSlots; ++i) {
      slots[i] = i * 3 + 1;  // plain store, published by the push below
      while (!ring.try_push(std::size_t{i})) std::this_thread::yield();
    }
  });
  for (std::size_t got = 0; got < kSlots;) {
    std::size_t i = 0;
    if (!ring.try_pop(i)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(slots[i], i * 3 + 1);
    ++got;
  }
  producer.join();
}

}  // namespace
}  // namespace msamp::util

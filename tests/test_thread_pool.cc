// Unit tests for the deterministic fork-join pool and parallel_map.
#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <functional>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/parallel_map.h"

namespace msamp::util {
namespace {

/// Clears MSAMP_THREADS for the test's duration so `resolve` and pool
/// sizing see only the requested value, and restores it afterwards.
class ScopedNoEnvThreads {
 public:
  ScopedNoEnvThreads() {
    const char* v = std::getenv("MSAMP_THREADS");
    if (v != nullptr) saved_ = v;
    unsetenv("MSAMP_THREADS");
  }
  ~ScopedNoEnvThreads() {
    if (!saved_.empty()) setenv("MSAMP_THREADS", saved_.c_str(), 1);
  }

 private:
  std::string saved_;
};

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ScopedNoEnvThreads no_env;
  for (int threads : {1, 2, 4, 7}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(kN, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ThreadPool, MoreLanesThanWork) {
  ScopedNoEnvThreads no_env;
  ThreadPool pool(8);
  EXPECT_EQ(pool.size(), 8);
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(3, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroItemsIsANoop) {
  ScopedNoEnvThreads no_env;
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ScopedNoEnvThreads no_env;
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(100, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 20L * (99L * 100L / 2));
}

TEST(ThreadPool, ResolvePrefersRequestThenEnvThenHardware) {
  ScopedNoEnvThreads no_env;
  EXPECT_EQ(ThreadPool::resolve(5), 5);
  EXPECT_GE(ThreadPool::resolve(0), 1);  // hardware concurrency, >= 1
  setenv("MSAMP_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::resolve(0), 3);
  EXPECT_EQ(ThreadPool::resolve(16), 16);  // explicit request beats env
  setenv("MSAMP_THREADS", "garbage", 1);
  EXPECT_EQ(ThreadPool::resolve(2), 2);  // unparsable env is ignored
  setenv("MSAMP_THREADS", "-4", 1);
  EXPECT_EQ(ThreadPool::resolve(2), 2);  // non-positive env is ignored
  unsetenv("MSAMP_THREADS");
}

TEST(ThreadPool, ResolveClampsBothRequestAndEnv) {
  ScopedNoEnvThreads no_env;
  EXPECT_EQ(ThreadPool::resolve(5000), 1024);
  setenv("MSAMP_THREADS", "999999", 1);
  EXPECT_EQ(ThreadPool::resolve(0), 1024);
  unsetenv("MSAMP_THREADS");
}

TEST(ThreadPool, ResolveValuesClampsEveryPath) {
  // The pure rule behind resolve(): request, env, and — the regression
  // this test exists for — the hardware_concurrency fallback all clamp
  // to 1024.
  EXPECT_EQ(ThreadPool::resolve_values(5, nullptr, 8), 5);
  EXPECT_EQ(ThreadPool::resolve_values(5000, nullptr, 8), 1024);
  EXPECT_EQ(ThreadPool::resolve_values(0, "12", 8), 12);
  EXPECT_EQ(ThreadPool::resolve_values(0, "999999", 8), 1024);
  EXPECT_EQ(ThreadPool::resolve_values(0, "garbage", 8), 8);
  EXPECT_EQ(ThreadPool::resolve_values(0, nullptr, 8), 8);
  EXPECT_EQ(ThreadPool::resolve_values(0, nullptr, 5000u), 1024);
  EXPECT_EQ(ThreadPool::resolve_values(0, nullptr, 0), 1);  // unknown hw
}

TEST(ThreadPool, NestedParallelForOnSamePoolThrows) {
  ScopedNoEnvThreads no_env;
  for (int threads : {1, 4}) {  // serial fast path and the worker path
    ThreadPool pool(threads);
    EXPECT_THROW(pool.parallel_for(
                     4,
                     [&](std::size_t) {
                       pool.parallel_for(2, [](std::size_t) {});
                     }),
                 std::logic_error)
        << "threads=" << threads;
    // The guard must release: the pool stays usable after the throw.
    std::atomic<long> sum{0};
    pool.parallel_for(10, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 45L);
  }
}

TEST(ThreadPool, ConcurrentParallelForFromAnotherThreadThrows) {
  ScopedNoEnvThreads no_env;
  ThreadPool pool(2);
  std::atomic<bool> threw{false};
  pool.parallel_for(4, [&](std::size_t i) {
    if (i != 0) return;
    // While this body (and therefore the outer job) is live, a second
    // thread's attempt to use the same pool must fail loudly.
    std::thread second([&] {
      try {
        pool.parallel_for(2, [](std::size_t) {});
      } catch (const std::logic_error&) {
        threw.store(true, std::memory_order_relaxed);
      }
    });
    second.join();
  });
  EXPECT_TRUE(threw.load());
}

TEST(ThreadPool, NestedParallelForOnDistinctPoolsWorks) {
  // Regression guard for the nested benches: nesting is fine as long as
  // each nesting level runs on its own pool.
  ScopedNoEnvThreads no_env;
  ThreadPool outer(2);
  std::vector<std::unique_ptr<ThreadPool>> inner;
  inner.push_back(std::make_unique<ThreadPool>(2));
  inner.push_back(std::make_unique<ThreadPool>(2));
  std::atomic<long> sum{0};
  outer.parallel_for(2, [&](std::size_t i) {
    inner[i]->parallel_for(100, [&](std::size_t j) {
      sum.fetch_add(static_cast<long>(j), std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(sum.load(), 2L * (99L * 100L / 2));
}

TEST(ThreadPool, LaneAwareOverloadPinsLanesAndCoversAllIndices) {
  ScopedNoEnvThreads no_env;
  ThreadPool pool(4);
  constexpr std::size_t kN = 2000;
  std::vector<std::atomic<int>> lane_of(kN);
  for (auto& l : lane_of) l.store(-1);
  pool.parallel_for(kN, std::function<void(int, std::size_t)>(
                            [&](int lane, std::size_t i) {
                              EXPECT_GE(lane, 0);
                              EXPECT_LT(lane, pool.size());
                              lane_of[i].store(lane,
                                               std::memory_order_relaxed);
                            }));
  for (std::size_t i = 0; i < kN; ++i) EXPECT_GE(lane_of[i].load(), 0);
}

TEST(ThreadPool, CounterSnapshotsAreMonotonic) {
  ScopedNoEnvThreads no_env;
  ThreadPool pool(4);
  const ContentionSnapshot s0 = pool.contention_snapshot();
  pool.parallel_for(500, [](std::size_t) {});
  const ContentionSnapshot s1 = pool.contention_snapshot();
  pool.parallel_for(500, [](std::size_t) {});
  const ContentionSnapshot s2 = pool.contention_snapshot();

  const auto leq = [](const ContentionSnapshot& a,
                      const ContentionSnapshot& b) {
    EXPECT_LE(a.lock_fast, b.lock_fast);
    EXPECT_LE(a.lock_contended, b.lock_contended);
    EXPECT_LE(a.cas_attempts, b.cas_attempts);
    EXPECT_LE(a.cas_retries, b.cas_retries);
    EXPECT_LE(a.waits, b.waits);
    EXPECT_LE(a.notifies, b.notifies);
  };
  leq(s0, s1);
  leq(s1, s2);
  // Each of the 500 claimed indices is one CAS claim (plus each lane's
  // final drained-check), so the per-job delta has a hard floor.
  EXPECT_GE(s1.cas_attempts - s0.cas_attempts, 500u);
  EXPECT_GE(s2.cas_attempts - s1.cas_attempts, 500u);
  EXPECT_GT(s1.lock_acquisitions(), s0.lock_acquisitions());
  EXPECT_GE(s1.notifies, 1u);
  // Denominator-free rates stay in [0, 1].
  EXPECT_GE(s2.lock_contention_rate(), 0.0);
  EXPECT_LE(s2.lock_contention_rate(), 1.0);
  EXPECT_GE(s2.cas_retry_rate(), 0.0);
  EXPECT_LE(s2.cas_retry_rate(), 1.0);
}

TEST(ThreadPool, SerialFastPathLeavesCountersAtZero) {
  ScopedNoEnvThreads no_env;
  ThreadPool one(1);
  one.parallel_for(100, [](std::size_t) {});
  const ContentionSnapshot s = one.contention_snapshot();
  EXPECT_EQ(s.lock_acquisitions(), 0u);
  EXPECT_EQ(s.cas_attempts, 0u);
  EXPECT_EQ(s.waits, 0u);
  EXPECT_EQ(s.notifies, 0u);
  EXPECT_EQ(s.lock_contention_rate(), 0.0);  // 0/0 reads as 0, not NaN

  // n == 1 takes the serial path on any pool: no counter movement.
  ThreadPool four(4);
  const ContentionSnapshot before = four.contention_snapshot();
  four.parallel_for(1, [](std::size_t) {});
  const ContentionSnapshot after = four.contention_snapshot();
  EXPECT_EQ(before.cas_attempts, after.cas_attempts);
  EXPECT_EQ(before.lock_acquisitions(), after.lock_acquisitions());
}

TEST(ThreadPool, SnapshotIsSafeConcurrentWithARunningJob) {
  // Race-freedom of snapshot() while lanes hammer the counters — the
  // TSan lane (scripts/check.sh) is what gives this test its teeth.
  ScopedNoEnvThreads no_env;
  ThreadPool pool(4);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    ContentionSnapshot last;
    while (!stop.load(std::memory_order_relaxed)) {
      const ContentionSnapshot s = pool.contention_snapshot();
      EXPECT_GE(s.cas_attempts, last.cas_attempts);  // monotone under load
      last = s;
    }
  });
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(200, [](std::size_t) {});
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
}

TEST(ThreadPool, ThrowingBodyPropagatesAndPoolStaysUsable) {
  ScopedNoEnvThreads no_env;
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    for (int round = 0; round < 3; ++round) {
      EXPECT_THROW(
          pool.parallel_for(200,
                            [&](std::size_t i) {
                              if (i == 150) throw std::runtime_error("boom");
                            }),
          std::runtime_error)
          << "threads=" << threads << " round=" << round;
      // The pool must come back clean: the next job runs every index.
      std::atomic<long> sum{0};
      pool.parallel_for(100, [&](std::size_t i) {
        sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
      });
      EXPECT_EQ(sum.load(), 99L * 100L / 2);
    }
  }
}

TEST(ThreadPool, ThrowKeepsTheMessage) {
  ScopedNoEnvThreads no_env;
  ThreadPool pool(4);
  try {
    pool.parallel_for(50, [](std::size_t i) {
      if (i == 10) throw std::runtime_error("window 10 failed");
    });
    FAIL() << "expected the body's exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "window 10 failed");
  }
}

TEST(ParallelMap, CanonicalOrderForAnyThreadCount) {
  ScopedNoEnvThreads no_env;
  for (int threads : {1, 2, 4, 7}) {
    ThreadPool pool(threads);
    const auto out = parallel_map(
        pool, 500, [](std::size_t i) { return static_cast<long>(i * i); });
    ASSERT_EQ(out.size(), 500u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<long>(i * i)) << "threads=" << threads;
    }
  }
}

TEST(ParallelMap, EmptyRangeAndThrowingFn) {
  ScopedNoEnvThreads no_env;
  ThreadPool pool(4);
  EXPECT_TRUE(parallel_map(pool, 0, [](std::size_t i) { return i; }).empty());
  EXPECT_THROW(parallel_map(pool, 20,
                            [](std::size_t i) -> int {
                              if (i == 7) throw std::runtime_error("bad");
                              return static_cast<int>(i);
                            }),
               std::runtime_error);
}

TEST(ThreadPool, SizeCountsTheCallingThread) {
  ScopedNoEnvThreads no_env;
  ThreadPool one(1);
  EXPECT_EQ(one.size(), 1);
  ThreadPool four(4);
  EXPECT_EQ(four.size(), 4);
}

}  // namespace
}  // namespace msamp::util

// Unit tests for the deterministic fork-join pool and parallel_map.
#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/parallel_map.h"

namespace msamp::util {
namespace {

/// Clears MSAMP_THREADS for the test's duration so `resolve` and pool
/// sizing see only the requested value, and restores it afterwards.
class ScopedNoEnvThreads {
 public:
  ScopedNoEnvThreads() {
    const char* v = std::getenv("MSAMP_THREADS");
    if (v != nullptr) saved_ = v;
    unsetenv("MSAMP_THREADS");
  }
  ~ScopedNoEnvThreads() {
    if (!saved_.empty()) setenv("MSAMP_THREADS", saved_.c_str(), 1);
  }

 private:
  std::string saved_;
};

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ScopedNoEnvThreads no_env;
  for (int threads : {1, 2, 4, 7}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(kN, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ThreadPool, MoreLanesThanWork) {
  ScopedNoEnvThreads no_env;
  ThreadPool pool(8);
  EXPECT_EQ(pool.size(), 8);
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(3, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroItemsIsANoop) {
  ScopedNoEnvThreads no_env;
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ScopedNoEnvThreads no_env;
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(100, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 20L * (99L * 100L / 2));
}

TEST(ThreadPool, ResolvePrefersRequestThenEnvThenHardware) {
  ScopedNoEnvThreads no_env;
  EXPECT_EQ(ThreadPool::resolve(5), 5);
  EXPECT_GE(ThreadPool::resolve(0), 1);  // hardware concurrency, >= 1
  setenv("MSAMP_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::resolve(0), 3);
  EXPECT_EQ(ThreadPool::resolve(16), 16);  // explicit request beats env
  setenv("MSAMP_THREADS", "garbage", 1);
  EXPECT_EQ(ThreadPool::resolve(2), 2);  // unparsable env is ignored
  setenv("MSAMP_THREADS", "-4", 1);
  EXPECT_EQ(ThreadPool::resolve(2), 2);  // non-positive env is ignored
  unsetenv("MSAMP_THREADS");
}

TEST(ThreadPool, ResolveClampsBothRequestAndEnv) {
  ScopedNoEnvThreads no_env;
  EXPECT_EQ(ThreadPool::resolve(5000), 1024);
  setenv("MSAMP_THREADS", "999999", 1);
  EXPECT_EQ(ThreadPool::resolve(0), 1024);
  unsetenv("MSAMP_THREADS");
}

TEST(ThreadPool, ThrowingBodyPropagatesAndPoolStaysUsable) {
  ScopedNoEnvThreads no_env;
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    for (int round = 0; round < 3; ++round) {
      EXPECT_THROW(
          pool.parallel_for(200,
                            [&](std::size_t i) {
                              if (i == 150) throw std::runtime_error("boom");
                            }),
          std::runtime_error)
          << "threads=" << threads << " round=" << round;
      // The pool must come back clean: the next job runs every index.
      std::atomic<long> sum{0};
      pool.parallel_for(100, [&](std::size_t i) {
        sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
      });
      EXPECT_EQ(sum.load(), 99L * 100L / 2);
    }
  }
}

TEST(ThreadPool, ThrowKeepsTheMessage) {
  ScopedNoEnvThreads no_env;
  ThreadPool pool(4);
  try {
    pool.parallel_for(50, [](std::size_t i) {
      if (i == 10) throw std::runtime_error("window 10 failed");
    });
    FAIL() << "expected the body's exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "window 10 failed");
  }
}

TEST(ParallelMap, CanonicalOrderForAnyThreadCount) {
  ScopedNoEnvThreads no_env;
  for (int threads : {1, 2, 4, 7}) {
    ThreadPool pool(threads);
    const auto out = parallel_map(
        pool, 500, [](std::size_t i) { return static_cast<long>(i * i); });
    ASSERT_EQ(out.size(), 500u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<long>(i * i)) << "threads=" << threads;
    }
  }
}

TEST(ParallelMap, EmptyRangeAndThrowingFn) {
  ScopedNoEnvThreads no_env;
  ThreadPool pool(4);
  EXPECT_TRUE(parallel_map(pool, 0, [](std::size_t i) { return i; }).empty());
  EXPECT_THROW(parallel_map(pool, 20,
                            [](std::size_t i) -> int {
                              if (i == 7) throw std::runtime_error("bad");
                              return static_cast<int>(i);
                            }),
               std::runtime_error);
}

TEST(ThreadPool, SizeCountsTheCallingThread) {
  ScopedNoEnvThreads no_env;
  ThreadPool one(1);
  EXPECT_EQ(one.size(), 1);
  ThreadPool four(4);
  EXPECT_EQ(four.size(), 4);
}

}  // namespace
}  // namespace msamp::util

// msamp_lint rule-engine tests: every rule gets a violating and a clean
// fixture, plus the suppression-comment and allowlist paths, asserting
// exact `file:line: rule-id` findings.  Fixtures live in raw strings —
// the lexer strips string literals, so scanning this file with the real
// binary can never trip on its own fixtures.
#include "lint/rules.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using msamp::lint::check_fingerprint_coverage;
using msamp::lint::FileRole;
using msamp::lint::Finding;
using msamp::lint::lint_source;
using msamp::lint::parse_struct_fields;
using msamp::lint::StructSource;

std::vector<std::string> locations(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  for (const auto& f : findings) {
    out.push_back(f.file + ":" + std::to_string(f.line) + ": " + f.rule);
  }
  return out;
}

TEST(LintLexer, StringsCommentsAndPreprocessorAreInvisible) {
  const char* src = R"(#include <ctime>
// a comment mentioning rand() and time()
const char* s = "rand() time() getenv() std::random_device";
const char* r = R"x(rand() inside a raw string)x";
int safe = 1;
)";
  const auto findings = lint_source("src/core/fixture.cc", src);
  EXPECT_TRUE(findings.empty()) << msamp::lint::to_string(findings.front());
}

TEST(LintNondet, RandIsFlaggedWithExactLocation) {
  const char* src = R"(int f() {
  return rand();
}
)";
  const auto findings = lint_source("src/core/fixture.cc", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(locations(findings),
            (std::vector<std::string>{"src/core/fixture.cc:2: nondet-random"}));
}

TEST(LintNondet, RandomDeviceIsFlagged) {
  const char* src = R"(#include <random>
std::random_device rd;
)";
  const auto findings = lint_source("src/workload/fixture.cc", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "nondet-random");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintNondet, SeededProjectRngIsClean) {
  const char* src = R"(double f(msamp::util::Rng& rng) {
  return rng.uniform();
}
)";
  EXPECT_TRUE(lint_source("src/workload/fixture.cc", src).empty());
}

TEST(LintNondet, WallClockTimeIsFlagged) {
  const char* src = R"(long f() {
  long t = time(nullptr);
  auto now = std::chrono::steady_clock::now();
  return t + now.time_since_epoch().count();
}
)";
  const auto findings = lint_source("src/analysis/fixture.cc", src);
  EXPECT_EQ(locations(findings),
            (std::vector<std::string>{
                "src/analysis/fixture.cc:2: nondet-time",
                "src/analysis/fixture.cc:3: nondet-time"}));
}

TEST(LintNondet, SimulatedTimeHelpersAreClean) {
  const char* src = R"(double f(msamp::sim::SimDuration d) {
  return msamp::sim::to_ms(d);
}
)";
  EXPECT_TRUE(lint_source("src/analysis/fixture.cc", src).empty());
}

TEST(LintNondet, MemberNamedTimeIsNotAFreeCall) {
  const char* src = R"(double f(const Sample& s) {
  return s.time() + obj->time();
}
)";
  EXPECT_TRUE(lint_source("src/core/fixture.cc", src).empty());
}

TEST(LintNondet, GetenvOutsideAllowlistIsFlagged) {
  const char* src = R"(const char* f() {
  return std::getenv("MSAMP_THREADS");
}
)";
  const auto findings = lint_source("src/fleet/fixture.cc", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "nondet-getenv");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintNondet, GetenvAllowlistCoversDocumentedReaders) {
  const char* src = R"(const char* f() {
  return std::getenv("MSAMP_THREADS");
}
)";
  // The documented MSAMP_* readers pass by path classification...
  EXPECT_TRUE(lint_source("src/util/thread_pool.cc", src).empty());
  EXPECT_TRUE(lint_source("bench/common.cc", src).empty());
  // ...and any role can be granted explicitly (as the tests' own role is).
  FileRole role;
  role.getenv_allowed = true;
  EXPECT_TRUE(lint_source("src/fleet/fixture.cc", src, &role).empty());
}

TEST(LintNondet, RngImplementationFilesAreExempt) {
  const char* src = R"(unsigned f() {
  std::random_device rd;
  return rd();
}
)";
  EXPECT_TRUE(lint_source("src/util/rng.cc", src).empty());
  ASSERT_FALSE(lint_source("src/util/stats.cc", src).empty());
}

TEST(LintSuppression, AllowCommentSilencesExactlyThatRule) {
  const char* src = R"(int f() {
  int a = rand();  // msamp-lint: allow(nondet-random)
  int b = rand();  // msamp-lint: allow(nondet-time) -- wrong rule
  return a + b;
}
)";
  const auto findings = lint_source("src/core/fixture.cc", src);
  EXPECT_EQ(locations(findings),
            (std::vector<std::string>{"src/core/fixture.cc:3: nondet-random"}));
}

TEST(LintSuppression, AllowAllSilencesEveryRuleOnTheLine) {
  const char* src = R"(long f() {
  return time(nullptr) + rand();  // msamp-lint: allow(all)
}
)";
  EXPECT_TRUE(lint_source("src/core/fixture.cc", src).empty());
}

TEST(LintUnordered, RangeForOverUnorderedMapInOutputPathIsFlagged) {
  const char* src = R"(#include <unordered_map>
void emit(std::ostream& os) {
  std::unordered_map<int, double> per_rack;
  for (const auto& [rack, v] : per_rack) {
    os << rack << "," << v << "\n";
  }
}
)";
  const auto findings = lint_source("bench/fixture.cc", src);
  EXPECT_EQ(locations(findings),
            (std::vector<std::string>{"bench/fixture.cc:4: unordered-iter"}));
}

TEST(LintUnordered, OrderedContainersAreClean) {
  const char* src = R"(#include <map>
void emit(std::ostream& os) {
  std::map<int, double> per_rack;
  for (const auto& [rack, v] : per_rack) {
    os << rack << "," << v << "\n";
  }
}
)";
  EXPECT_TRUE(lint_source("bench/fixture.cc", src).empty());
}

TEST(LintUnordered, UsingAliasDoesNotHideTheContainer) {
  const char* src = R"(using ClassMap = std::unordered_map<int, int>;
void emit(const ClassMap& classes) {
  for (const auto& kv : classes) {
    (void)kv;
  }
}
)";
  const auto findings = lint_source("src/fleet/fixture.cc", src);
  EXPECT_EQ(locations(findings),
            (std::vector<std::string>{"src/fleet/fixture.cc:3: unordered-iter"}));
}

TEST(LintUnordered, LookupsWithoutIterationAreClean) {
  const char* src = R"(#include <unordered_map>
int count(const std::vector<int>& xs) {
  std::unordered_map<int, int> counts;
  int best = 0;
  for (int x : xs) best = std::max(best, ++counts[x]);
  return best;
}
)";
  EXPECT_TRUE(lint_source("src/fleet/fixture.cc", src).empty());
}

TEST(LintUnordered, RuleOnlyAppliesToOutputPaths) {
  const char* src = R"(#include <unordered_map>
void walk() {
  std::unordered_map<int, int> m;
  for (const auto& kv : m) {
    (void)kv;
  }
}
)";
  // Same snippet: flagged in a CSV-emitting bench, tolerated in a
  // simulation-internal file where order never reaches any output.
  EXPECT_FALSE(lint_source("bench/fixture.cc", src).empty());
  EXPECT_TRUE(lint_source("src/net/fixture.cc", src).empty());
}

TEST(LintNondet, SchedulerClockFileMayReadTheWallClock) {
  // The cluster coordinator's monotonic clock is the one sanctioned
  // wall-clock reader: stall timeouts and retry backoff never reach
  // dataset bytes.  The identical snippet is flagged anywhere else.
  const char* src = R"(long long now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
)";
  EXPECT_TRUE(lint_source("src/cluster/process.cc", src).empty());
  EXPECT_FALSE(lint_source("src/cluster/coordinator.cc", src).empty());
  FileRole role;
  role.wallclock_allowed = true;
  EXPECT_TRUE(lint_source("src/core/fixture.cc", src, &role).empty());
}

TEST(LintFloatKey, DoubleKeyedMapInOutputPathIsFlagged) {
  const char* src = R"(#include <map>
void emit(std::ostream& os) {
  std::map<double, int> by_rate;
  for (const auto& [rate, n] : by_rate) {
    os << rate << "," << n << "\n";
  }
}
)";
  const auto findings = lint_source("bench/fixture.cc", src);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].rule, "float-key");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintFloatKey, FloatSetAndUnorderedMapAreFlagged) {
  const char* src = R"(#include <set>
#include <unordered_map>
std::set<float> cutoffs;
std::unordered_map<double, int> hist;
)";
  const auto findings = lint_source("src/fleet/fixture.cc", src);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "float-key");
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_EQ(findings[1].rule, "float-key");
  EXPECT_EQ(findings[1].line, 4);
}

TEST(LintFloatKey, IntegerKeysAndFloatValuesAreClean) {
  // Float *values* are fine; only the key position orders the output.
  const char* src = R"(#include <map>
std::map<int, double> per_rack;
std::map<std::uint64_t, float> per_window;
)";
  EXPECT_TRUE(lint_source("bench/fixture.cc", src).empty());
}

TEST(LintFloatKey, ComparisonsAreNotTemplateArguments) {
  // `a < b` followed by `double` tokens elsewhere must not parse as a
  // container instantiation.
  const char* src = R"(#include <map>
bool f(const std::map<int, int>& m, int a, int b) {
  double x = a < b ? 1.0 : 2.0;
  return m.count(a) != 0 && x > 0;
}
)";
  EXPECT_TRUE(lint_source("bench/fixture.cc", src).empty());
}

TEST(LintFloatKey, RuleOnlyAppliesToOutputPaths) {
  const char* src = R"(#include <map>
std::map<double, int> internal_thresholds;
)";
  EXPECT_FALSE(lint_source("src/fleet/fixture.cc", src).empty());
  EXPECT_TRUE(lint_source("src/net/fixture.cc", src).empty());
}

TEST(LintWire, StructSizeofInDatasetCodecIsFlagged) {
  const char* src = R"(void put(std::vector<unsigned char>& out, const RackInfo& r) {
  out.resize(out.size() + sizeof(RackInfo));
  std::memcpy(out.data(), &r, sizeof(RackInfo));
}
)";
  const auto findings = lint_source("src/fleet/dataset.cc", src);
  EXPECT_EQ(locations(findings),
            (std::vector<std::string>{"src/fleet/dataset.cc:2: wire-struct-copy",
                                      "src/fleet/dataset.cc:3: wire-struct-copy"}));
}

TEST(LintWire, ScalarTemplateSizeofIsClean) {
  const char* src = R"(template <typename T>
void put(std::vector<unsigned char>& out, const T& v) {
  static_assert(!std::is_class_v<T>);
  out.resize(out.size() + sizeof(T));
  std::memcpy(out.data(), &v, sizeof(T));
}
)";
  EXPECT_TRUE(lint_source("src/fleet/dataset.cc", src).empty());
}

TEST(LintWire, RuleIsScopedToTheWireFormatFiles) {
  const char* src = R"(std::size_t f() { return sizeof(RackInfo); }
)";
  // fleet_runner.cc never touches serialized bytes; merge.cc and
  // spill_sink.cc do, so the same snippet is flagged there.
  EXPECT_TRUE(lint_source("src/fleet/fleet_runner.cc", src).empty());
  EXPECT_FALSE(lint_source("src/fleet/merge.cc", src).empty());
  EXPECT_FALSE(lint_source("src/fleet/spill_sink.cc", src).empty());
}

TEST(LintCounters, CounterReadInOutputPathIsFlagged) {
  const char* src = R"(void emit_rows() {
  const auto s = pool.contention_snapshot();
  csv << s.cas_retries;
}
)";
  const auto findings = lint_source("src/fleet/fleet_runner.cc", src);
  EXPECT_EQ(locations(findings),
            (std::vector<std::string>{
                "src/fleet/fleet_runner.cc:2: counters-not-in-output"}));
  // Same snippet trips in every other output path: the cluster
  // orchestrator, ordinary benches, and the CLI.
  EXPECT_FALSE(lint_source("src/cluster/worker.cc", src).empty());
  EXPECT_FALSE(lint_source("bench/bench_table1_dataset.cc", src).empty());
  EXPECT_FALSE(lint_source("tools/msampctl.cc", src).empty());
}

TEST(LintCounters, NamingTheCounterTypesIsFlaggedToo) {
  const char* src = R"(#include "util/contention_counters.h"
msamp::util::ContentionSnapshot grab();
void keep(const msamp::util::ContentionCounters& c);
)";
  const auto findings = lint_source("src/fleet/merge.cc", src);
  EXPECT_EQ(locations(findings),
            (std::vector<std::string>{
                "src/fleet/merge.cc:2: counters-not-in-output",
                "src/fleet/merge.cc:3: counters-not-in-output"}));
}

TEST(LintCounters, SanctionedBenchAndNonOutputPathsAreClean) {
  const char* src = R"(void report() {
  const auto s = pool.contention_snapshot();
  table.cell(s.lock_contention_rate(), 4);
}
)";
  // The one sanctioned reader: the contention bench itself.
  EXPECT_TRUE(lint_source("bench/bench_pool_contention.cc", src).empty());
  // Non-output paths (the instrumented components, their tests) may of
  // course name their own counters.
  EXPECT_TRUE(lint_source("src/util/thread_pool.cc", src).empty());
  EXPECT_TRUE(lint_source("src/util/spsc_ring.h", src).empty());
  EXPECT_TRUE(lint_source("tests/test_thread_pool.cc", src).empty());
}

TEST(LintCounters, SuppressionCommentSilencesTheRule) {
  const char* src = R"(void debug_dump() {
  auto s = pool.contention_snapshot();  // msamp-lint: allow(counters-not-in-output)
  log(s.waits);
}
)";
  EXPECT_TRUE(lint_source("src/fleet/fleet_runner.cc", src).empty());
}

TEST(LintViewsOnly, MaterializingLoadInAnalysisOrBenchIsFlagged) {
  const char* src = R"(void read(const std::string& path) {
  msamp::fleet::Dataset ds;
  if (!ds.load(path)) return;
  use(ds.bursts);
}
)";
  for (const char* file :
       {"src/analysis/fixture.cc", "bench/bench_fixture.cc"}) {
    const auto findings = lint_source(file, src);
    ASSERT_EQ(findings.size(), 1u) << file;
    EXPECT_EQ(findings[0].rule, "no-load-in-analysis");
    EXPECT_EQ(findings[0].line, 3);
  }
}

TEST(LintViewsOnly, SharedDatasetIsFlaggedByName) {
  const char* src = R"(const msamp::fleet::Dataset& ds() {
  return msamp::fleet::shared_dataset(config(), cache_path());
}
)";
  const auto findings = lint_source("bench/common_fixture.cc", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-load-in-analysis");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintViewsOnly, AtomicLoadsAreNotDatasetLoads) {
  // std::atomic reads: no argument, or an explicit std::memory_order.
  const char* src = R"(bool f(const std::atomic<bool>& done) {
  return done.load() || done.load(std::memory_order_acquire);
}
)";
  EXPECT_TRUE(lint_source("bench/bench_fixture.cc", src).empty());
  EXPECT_TRUE(lint_source("src/analysis/fixture.cc", src).empty());
}

TEST(LintViewsOnly, ViewReadsAndWriterPathsAreClean) {
  const char* view_src = R"(void read(const std::string& path) {
  msamp::fleet::DatasetView view;
  const auto st = msamp::fleet::Dataset::open_mapped(path, &view);
  use(view.bursts());
}
)";
  EXPECT_TRUE(lint_source("bench/bench_fixture.cc", view_src).empty());
  const char* load_src = R"(void migrate(const std::string& path) {
  msamp::fleet::Dataset ds;
  if (!ds.load(path)) return;
}
)";
  // Writers, migration, and tests keep the legacy materializing loader.
  EXPECT_TRUE(lint_source("tools/msampctl.cc", load_src).empty());
  EXPECT_TRUE(lint_source("src/fleet/dataset_view.cc", load_src).empty());
  EXPECT_TRUE(lint_source("tests/test_dataset.cc", load_src).empty());
}

TEST(LintViewsOnly, SuppressionCommentSilencesTheRule) {
  const char* src = R"(void f(const std::string& p) {
  Dataset ds;
  ds.load(p);  // msamp-lint: allow(no-load-in-analysis)
}
)";
  EXPECT_TRUE(lint_source("src/analysis/fixture.cc", src).empty());
}

// --- fingerprint coverage ----------------------------------------------

constexpr const char* kConfigHeader = R"(#pragma once
struct NestedConfig {
  double alpha = 1.0;
  int quadrants = 4;
};
struct TestConfig {
  unsigned long seed = 42;
  int racks = 96;
  int threads = 0;  // fingerprint-exempt: execution detail, never data
  NestedConfig buffer{};
  double helper() const { return alpha_sum(); }
  unsigned long fingerprint() const;
};
)";

TEST(LintFingerprint, ParsesFieldsTypesAndExemptions) {
  const auto fields = parse_struct_fields(kConfigHeader, "TestConfig");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0].name, "seed");
  EXPECT_EQ(fields[1].name, "racks");
  EXPECT_EQ(fields[2].name, "threads");
  EXPECT_TRUE(fields[2].exempt);
  EXPECT_EQ(fields[3].name, "buffer");
  EXPECT_EQ(fields[3].type, "NestedConfig");
  EXPECT_FALSE(fields[0].exempt);
}

TEST(LintFingerprint, FullyHashedConfigIsClean) {
  const char* impl = R"(unsigned long TestConfig::fingerprint() const {
  unsigned long h = seed;
  h = step(h, racks);
  h = step(h, buffer.alpha);
  h = step(h, buffer.quadrants);
  return h;
}
)";
  const std::vector<StructSource> structs = {
      {"TestConfig", "fixture/config.h", kConfigHeader},
      {"NestedConfig", "fixture/config.h", kConfigHeader}};
  const auto findings = check_fingerprint_coverage(structs, "TestConfig",
                                                   "fixture/impl.cc", impl);
  EXPECT_TRUE(findings.empty()) << msamp::lint::to_string(findings.front());
}

TEST(LintFingerprint, MissingTopLevelAndNestedFieldsAreFlagged) {
  // `racks` dropped entirely; `buffer.quadrants` dropped from the nested
  // struct — exactly the PR 3 bug class (fingerprint() silently omitting
  // fields so two differing configs share a cache file).
  const char* impl = R"(unsigned long TestConfig::fingerprint() const {
  unsigned long h = seed;
  h = step(h, buffer.alpha);
  return h;
}
)";
  const std::vector<StructSource> structs = {
      {"TestConfig", "fixture/config.h", kConfigHeader},
      {"NestedConfig", "fixture/config.h", kConfigHeader}};
  const auto findings = check_fingerprint_coverage(structs, "TestConfig",
                                                   "fixture/impl.cc", impl);
  EXPECT_EQ(locations(findings),
            (std::vector<std::string>{
                "fixture/config.h:4: fingerprint-coverage",
                "fixture/config.h:8: fingerprint-coverage"}));
  // The nested finding names the full member chain.
  EXPECT_NE(findings[0].message.find("buffer.quadrants"), std::string::npos);
}

TEST(LintFingerprint, ExemptFieldNeedsNoHashStep) {
  // `threads` is absent from the body but carries the exempt comment.
  const char* impl = R"(unsigned long TestConfig::fingerprint() const {
  unsigned long h = seed;
  h = step(h, racks);
  h = step(h, buffer.alpha);
  h = step(h, buffer.quadrants);
  return h;
}
)";
  const std::vector<StructSource> structs = {
      {"TestConfig", "fixture/config.h", kConfigHeader},
      {"NestedConfig", "fixture/config.h", kConfigHeader}};
  EXPECT_TRUE(check_fingerprint_coverage(structs, "TestConfig",
                                         "fixture/impl.cc", impl)
                  .empty());
}

TEST(LintFingerprint, MissingDefinitionIsItselfAFinding) {
  const std::vector<StructSource> structs = {
      {"TestConfig", "fixture/config.h", kConfigHeader}};
  const auto findings = check_fingerprint_coverage(
      structs, "TestConfig", "fixture/impl.cc", "int unrelated() { return 1; }");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "fingerprint-coverage");
}

}  // namespace
